package h2tap

import (
	"math"
	"os"
	"testing"
)

func TestOpenQuickstartFlow(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	tx := db.Begin()
	a, err := tx.AddNode("Person", map[string]Value{"name": Str("alice")})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := tx.AddNode("Person", map[string]Value{"name": Str("bob")})
	c, _ := tx.AddNode("Person", map[string]Value{"name": Str("carol")})
	tx.AddRel(a, b, "knows", 1)
	tx.AddRel(b, c, "knows", 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	res, err := db.RunAnalytics(BFS, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[c] != 2 {
		t.Fatalf("BFS level of carol = %d, want 2", res.Levels[c])
	}
	st := db.Stats()
	if st.LiveNodes != 3 || st.LiveRels != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBulkLoadAndAnalytics(t *testing.T) {
	db, err := Open(Options{Replica: DynamicHash})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	nodes := make([]NodeSpec, 10)
	for i := range nodes {
		nodes[i] = NodeSpec{Label: "V"}
	}
	var edges []EdgeSpec
	for i := 0; i < 9; i++ {
		edges = append(edges, EdgeSpec{Src: uint64(i), Dst: uint64(i + 1), Weight: 2})
	}
	if err := db.BulkLoad(nodes, edges); err != nil {
		t.Fatal(err)
	}
	res, err := db.RunAnalytics(SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dists[9] != 18 {
		t.Fatalf("SSSP to node 9 = %v, want 18", res.Dists[9])
	}
}

func TestDeltasBeforeEngineStartNotReapplied(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Insert and then delete an edge BEFORE the engine starts; the replica
	// must not resurrect it (the pre-engine deltas are discarded because
	// the initial build covers them).
	tx := db.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	rid, _ := tx.AddRel(a, b, "knows", 1)
	tx.Commit()

	if err := db.StartEngine(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	if err := tx2.DeleteRel(rid); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	res, err := db.RunAnalytics(BFS, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[b] != -1 {
		t.Fatalf("deleted edge resurrected: level[b] = %d", res.Levels[b])
	}
}

func TestPersistentOptions(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{PersistDir: dir, PersistPoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	tx.AddRel(a, b, "knows", 1)
	tx.Commit()
	if !db.DeltaStore().Persistent() {
		t.Fatal("persistent option did not produce a persistent delta store")
	}
	if _, err := db.RunAnalytics(PageRank, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelOption(t *testing.T) {
	db, err := Open(Options{EnableCostModel: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	nodes := make([]NodeSpec, 200)
	for i := range nodes {
		nodes[i] = NodeSpec{Label: "V"}
	}
	var edges []EdgeSpec
	for i := 0; i < 199; i++ {
		edges = append(edges, EdgeSpec{Src: uint64(i), Dst: uint64(i + 1), Weight: 1})
	}
	if err := db.BulkLoad(nodes, edges); err != nil {
		t.Fatal(err)
	}
	if err := db.StartEngine(); err != nil {
		t.Fatal(err)
	}
	// The calibrated threshold should be installed (non-zero or explicitly
	// "never": both acceptable — just not left at the unset default 0
	// while claiming cost-model mode).
	if db.DeltaStore().Threshold() == 0 {
		t.Fatal("cost model enabled but no threshold installed")
	}
}

func TestSubmitQueue(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	nodes := make([]NodeSpec, 50)
	for i := range nodes {
		nodes[i] = NodeSpec{Label: "V"}
	}
	var edges []EdgeSpec
	for i := 0; i < 49; i++ {
		edges = append(edges, EdgeSpec{Src: uint64(i), Dst: uint64(i + 1), Weight: 1})
	}
	db.BulkLoad(nodes, edges)

	t1, err := db.Submit(PageRank, 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.Submit(WCC, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := t1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := t2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range r1.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank sum = %v", sum)
	}
	if r2.Comp[0] != r2.Comp[49] {
		t.Fatal("chain should be one component")
	}
}

func TestPersistDirReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{PersistDir: dir, PersistPoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	tx.AddRel(a, b, "knows", 1)
	tx.Commit()
	recs := db.Stats().DeltaRecords
	if recs == 0 {
		t.Fatal("no delta records captured")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the persistent delta store must recover its records instead
	// of being truncated.
	db2, err := Open(Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Stats().DeltaRecords; got != recs {
		t.Fatalf("recovered %d delta records, want %d", got, recs)
	}
	if !db2.DeltaStore().Persistent() {
		t.Fatal("reopened store not persistent")
	}
}

func TestFullDurabilityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{PersistDir: dir, PersistPoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	a, _ := tx.AddNode("Person", map[string]Value{"name": Str("ada")})
	b, _ := tx.AddNode("Person", map[string]Value{"name": Str("bob")})
	tx.AddRel(a, b, "knows", 2)
	tx.Commit()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the main graph recovers from the WAL, the delta store from
	// its pool; analytics work immediately on the recovered state.
	db2, err := Open(Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st := db2.Stats()
	if st.LiveNodes != 2 || st.LiveRels != 1 {
		t.Fatalf("recovered graph = %d/%d", st.LiveNodes, st.LiveRels)
	}
	res, err := db2.RunAnalytics(BFS, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[b] != 1 {
		t.Fatalf("recovered BFS = %v", res.Levels)
	}
	// And new transactions keep flowing into the recovered WAL.
	tx2 := db2.Begin()
	c, _ := tx2.AddNode("Person", nil)
	if _, err := tx2.AddRel(b, c, "knows", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if db2.Stats().LiveNodes != 3 {
		t.Fatal("post-recovery commit lost")
	}
}

func TestCheckpointThroughFacade(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{PersistDir: dir, PersistPoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Churn, then checkpoint, then one more commit, then restart.
	tx := db.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	tx.Commit()
	for i := 0; i < 50; i++ {
		tx := db.Begin()
		rid, _ := tx.AddRel(a, b, "k", 1)
		tx.Commit()
		tx2 := db.Begin()
		tx2.DeleteRel(rid)
		tx2.Commit()
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx3 := db.Begin()
	if _, err := tx3.AddRel(a, b, "k", 7); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st := db2.Stats()
	if st.LiveNodes != 2 || st.LiveRels != 1 {
		t.Fatalf("post-checkpoint recovery = %d/%d", st.LiveNodes, st.LiveRels)
	}
}

func TestUndirectedOption(t *testing.T) {
	db, err := Open(Options{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx := db.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	tx.AddRel(a, b, "knows", 1)
	tx.Commit()
	// BFS reaches b from a AND a from b.
	r1, err := db.RunAnalytics(BFS, a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.RunAnalytics(BFS, b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Levels[b] != 1 || r2.Levels[a] != 1 {
		t.Fatalf("undirected reachability broken: %v / %v", r1.Levels, r2.Levels)
	}
}

func TestOpenBadPersistDir(t *testing.T) {
	// A file where the directory should be: MkdirAll fails.
	dir := t.TempDir()
	blocker := dir + "/blocked"
	if err := osWriteFile(blocker, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{PersistDir: blocker + "/sub"}); err == nil {
		t.Fatal("Open with unusable persist dir succeeded")
	}
}

func TestStatsAndAccessors(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.LastCommitted() != 0 {
		t.Fatal("fresh DB has commits")
	}
	tx := db.Begin()
	tx.AddNode("P", nil)
	tx.Commit()
	if db.LastCommitted() == 0 {
		t.Fatal("LastCommitted not advanced")
	}
	if db.SnapshotTS() == 0 {
		t.Fatal("SnapshotTS zero")
	}
	if db.Store() == nil || db.DeltaStore() == nil {
		t.Fatal("accessors nil")
	}
	if db.Engine() != nil {
		t.Fatal("engine exists before StartEngine")
	}
	if err := db.StartEngine(); err != nil {
		t.Fatal(err)
	}
	if db.Engine() == nil {
		t.Fatal("engine nil after StartEngine")
	}
	st := db.Stats()
	if st.ReplicaTS == 0 || st.DeviceMemUsed == 0 {
		t.Fatalf("engine stats not populated: %+v", st)
	}
	// Checkpoint without PersistDir is a no-op.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestPropagateThroughFacade(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx := db.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	tx.Commit()
	if err := db.StartEngine(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	tx2.AddRel(a, b, "k", 1)
	tx2.Commit()
	rep, err := db.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records == 0 {
		t.Fatalf("propagation consumed nothing: %+v", rep)
	}
}

func osWriteFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

func TestValueConstructors(t *testing.T) {
	if Int(3).AsInt() != 3 || Float(2.5).AsFloat() != 2.5 ||
		Str("x").AsString() != "x" || !Bool(true).AsBool() {
		t.Fatal("re-exported constructors broken")
	}
}
