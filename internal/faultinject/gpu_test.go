package faultinject

import (
	"errors"
	"testing"
)

func TestGPUPlanCountsWithoutRules(t *testing.T) {
	p := NewGPUPlan()
	for i := 0; i < 3; i++ {
		if err := p.Check(GPUMalloc); err != nil {
			t.Fatalf("unarmed check failed: %v", err)
		}
	}
	if err := p.Check(GPULaunch); err != nil {
		t.Fatalf("unarmed check failed: %v", err)
	}
	if p.Count(GPUMalloc) != 3 || p.Count(GPULaunch) != 1 || p.Count(GPUIngest) != 0 {
		t.Fatalf("counts = %v", p.Counts())
	}
	if p.Injected() != 0 {
		t.Fatalf("injected = %d without rules", p.Injected())
	}
}

func TestGPUPlanTransientFiresOnce(t *testing.T) {
	p := NewGPUPlan()
	p.Arm(GPUReplace, 2, Transient)
	if err := p.Check(GPUReplace); err != nil {
		t.Fatalf("occurrence 1 faulted: %v", err)
	}
	if err := p.Check(GPUReplace); !errors.Is(err, ErrGPUInjected) {
		t.Fatalf("occurrence 2 = %v, want injected fault", err)
	}
	// Transient: the retry succeeds.
	if err := p.Check(GPUReplace); err != nil {
		t.Fatalf("occurrence 3 faulted: %v", err)
	}
	if p.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", p.Injected())
	}
	// Other ops are untouched.
	if err := p.Check(GPUMalloc); err != nil {
		t.Fatalf("unrelated op faulted: %v", err)
	}
}

func TestGPUPlanPersistentUntilHeal(t *testing.T) {
	p := NewGPUPlan()
	p.Arm(GPUIngest, 1, Persistent)
	for i := 0; i < 3; i++ {
		if err := p.Check(GPUIngest); !errors.Is(err, ErrGPUInjected) {
			t.Fatalf("occurrence %d = %v, want injected fault", i+1, err)
		}
	}
	if p.Injected() != 3 {
		t.Fatalf("injected = %d, want 3", p.Injected())
	}
	p.Heal()
	if err := p.Check(GPUIngest); err != nil {
		t.Fatalf("post-heal check faulted: %v", err)
	}
}

func TestGPUPlanArmResetsOpCounter(t *testing.T) {
	p := NewGPUPlan()
	for i := 0; i < 5; i++ {
		if err := p.Check(GPUUpload); err != nil {
			t.Fatal(err)
		}
	}
	// Arming counts occurrences from the arm point, not process start.
	p.Arm(GPUUpload, 1, Transient)
	if err := p.Check(GPUUpload); !errors.Is(err, ErrGPUInjected) {
		t.Fatalf("first post-arm occurrence = %v, want injected fault", err)
	}
}
