// Package faultinject wraps a vfs.FS with deterministic fault injection at
// the granularity of individual persist operations — writes, syncs,
// truncates, renames, removes, and mutating opens. Every mutating operation
// gets a 1-based sequence number; a plan can make operation N fail (an I/O
// error the caller sees and must handle) or crash (the operation is dropped
// or torn, and from then on every mutation is blocked, freezing the backing
// files in exactly the state a power loss at that instant would leave).
//
// The crash model is write-through with ordered writes: everything applied
// before the crash point is durable, the crashing write may be torn
// (TearHalf), and nothing after the crash reaches storage. This matches the
// durability model of the simulated persistent memory (internal/pmem), where
// each write-through is the persist fence, and gives the WAL its
// prefix-durability assumption.
//
// internal/crashtest enumerates crash points over a full workload; this
// package only implements the mechanism.
package faultinject

import (
	"errors"
	"os"
	"strings"
	"sync"

	"h2tap/internal/vfs"
)

// Errors returned by injected faults.
var (
	// ErrInjected is the I/O error returned by an operation selected with
	// FailAt. The filesystem stays usable afterwards.
	ErrInjected = errors.New("faultinject: injected I/O error")
	// ErrCrashed is returned by the crashing operation and by every mutating
	// operation after it.
	ErrCrashed = errors.New("faultinject: crashed")
)

// TearMode controls how much of the crashing operation is applied.
type TearMode int

const (
	// TearNone drops the crashing operation entirely (crash just before).
	TearNone TearMode = iota
	// TearHalf applies the first half of a crashing write (a torn write);
	// non-write operations are dropped.
	TearHalf
	// TearAll applies the crashing operation fully, then crashes (crash
	// just after).
	TearAll
)

// String names the tear mode.
func (m TearMode) String() string {
	switch m {
	case TearHalf:
		return "tear-half"
	case TearAll:
		return "tear-all"
	default:
		return "tear-none"
	}
}

// FS wraps an inner filesystem with fault injection. The zero value is not
// usable; call New.
type FS struct {
	inner vfs.FS

	mu      sync.Mutex
	ops     int64
	failAt  int64
	crashAt int64
	tear    TearMode
	crashed bool
	scope   string
}

// New wraps inner with fault injection. With no plan installed it only
// counts mutating operations (see Ops), which is how a harness discovers the
// persist points of a workload before enumerating crashes at each.
func New(inner vfs.FS) *FS { return &FS{inner: inner} }

// FailAt makes mutating operation n (1-based) return ErrInjected without
// being applied; 0 disables. The filesystem keeps working afterwards.
func (f *FS) FailAt(n int64) {
	f.mu.Lock()
	f.failAt = n
	f.mu.Unlock()
}

// CrashAt makes mutating operation n (1-based) crash the filesystem: the
// operation is dropped, torn, or applied per tear, and every later mutation
// returns ErrCrashed. 0 disables.
func (f *FS) CrashAt(n int64, tear TearMode) {
	f.mu.Lock()
	f.crashAt = n
	f.tear = tear
	f.mu.Unlock()
}

// FailIn arms FailAt k mutating operations from now, atomically with the
// current operation count (a racing committer cannot slip between the read
// of Ops and the arming).
func (f *FS) FailIn(k int64) {
	f.mu.Lock()
	f.failAt = f.ops + k
	f.mu.Unlock()
}

// CrashIn arms CrashAt k mutating operations from now; see FailIn.
func (f *FS) CrashIn(k int64, tear TearMode) {
	f.mu.Lock()
	f.crashAt = f.ops + k
	f.tear = tear
	f.mu.Unlock()
}

// SetScope restricts fault injection to paths with the given prefix. Only
// in-scope operations are counted toward the sequence and are subject to
// the armed plan; out-of-scope operations always pass through untouched,
// even after a crash — the crash models one failure domain (a shard
// directory) losing its device while the rest of the machine keeps working.
// The empty prefix (the default) scopes every path.
func (f *FS) SetScope(prefix string) {
	f.mu.Lock()
	f.scope = prefix
	f.mu.Unlock()
}

// Heal clears the crashed state and any armed plan, restoring pass-through
// behavior. The operation counter is preserved so sequence numbers stay
// meaningful across heal cycles. Files opened before the crash resume
// working; the caller is responsible for reopening state whose durability
// the crash made unknown (that is the point of recovery).
func (f *FS) Heal() {
	f.mu.Lock()
	f.crashed = false
	f.failAt = 0
	f.crashAt = 0
	f.mu.Unlock()
}

// inScope reports whether name is subject to the plan. Callers must hold mu.
func (f *FS) inScope(name string) bool {
	return f.scope == "" || strings.HasPrefix(name, f.scope)
}

// Ops reports how many mutating operations have been observed.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has been reached.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// verdict is the decision for one mutating operation.
type verdict int

const (
	vApply verdict = iota // apply normally
	vFail                 // return ErrInjected, not applied
	vDrop                 // crash, not applied
	vTorn                 // crash, apply a torn prefix (writes only)
	vAfter                // crash, apply fully first
)

// step assigns the next sequence number and decides the fate of a mutating
// operation on path. Out-of-scope operations are neither counted nor
// touched by the plan.
func (f *FS) step(path string) verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.inScope(path) {
		return vApply
	}
	if f.crashed {
		return vDrop
	}
	f.ops++
	if f.ops == f.failAt {
		return vFail
	}
	if f.ops == f.crashAt {
		f.crashed = true
		switch f.tear {
		case TearHalf:
			return vTorn
		case TearAll:
			return vAfter
		default:
			return vDrop
		}
	}
	return vApply
}

// crashedFor reports whether path is inside a crashed scope.
func (f *FS) crashedFor(path string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed && f.inScope(path)
}

// mutating is true for open flags that change the filesystem.
func mutatingOpen(name string, flag int, fsys vfs.FS) bool {
	if flag&os.O_TRUNC != 0 {
		return true
	}
	if flag&os.O_CREATE != 0 {
		if _, err := fsys.Stat(name); err != nil {
			return true // would create the file
		}
	}
	return false
}

var _ vfs.FS = (*FS)(nil)

// OpenFile opens name. Opens that create or truncate count as mutating.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	if mutatingOpen(name, flag, f.inner) {
		switch f.step(name) {
		case vFail:
			return nil, ErrInjected
		case vDrop, vTorn:
			return nil, ErrCrashed
		}
		// vAfter: apply the open, then block later mutations (already armed).
	} else if f.crashedFor(name) && flag&(os.O_WRONLY|os.O_RDWR) != 0 {
		// Post-crash, writable handles are refused so no path can mutate
		// durable state after the simulated power loss.
		return nil, ErrCrashed
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, path: name}, nil
}

// Rename renames oldname to newname (one mutating operation).
func (f *FS) Rename(oldname, newname string) error {
	switch f.step(oldname) {
	case vFail:
		return ErrInjected
	case vDrop, vTorn:
		return ErrCrashed
	case vAfter:
		if err := f.inner.Rename(oldname, newname); err != nil {
			return err
		}
		return ErrCrashed
	}
	return f.inner.Rename(oldname, newname)
}

// Remove deletes name (one mutating operation).
func (f *FS) Remove(name string) error {
	switch f.step(name) {
	case vFail:
		return ErrInjected
	case vDrop, vTorn:
		return ErrCrashed
	case vAfter:
		if err := f.inner.Remove(name); err != nil {
			return err
		}
		return ErrCrashed
	}
	return f.inner.Remove(name)
}

// Stat passes through (read-only).
func (f *FS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

// MkdirAll passes through: directory scaffolding is setup, not a persist
// point the recovery invariants depend on.
func (f *FS) MkdirAll(name string, perm os.FileMode) error {
	if f.crashedFor(name) {
		return ErrCrashed
	}
	return f.inner.MkdirAll(name, perm)
}

// SyncDir is one mutating operation (it publishes renames/creations).
func (f *FS) SyncDir(name string) error {
	switch f.step(name) {
	case vFail:
		return ErrInjected
	case vDrop, vTorn:
		return ErrCrashed
	case vAfter:
		if err := f.inner.SyncDir(name); err != nil {
			return err
		}
		return ErrCrashed
	}
	return f.inner.SyncDir(name)
}

// faultFile routes a file's mutating operations through the FS plan.
type faultFile struct {
	f    vfs.File
	fs   *FS
	path string
}

var _ vfs.File = (*faultFile)(nil)

func (w *faultFile) Read(p []byte) (int, error)                { return w.f.Read(p) }
func (w *faultFile) ReadAt(p []byte, off int64) (int, error)   { return w.f.ReadAt(p, off) }
func (w *faultFile) Seek(off int64, whence int) (int64, error) { return w.f.Seek(off, whence) }
func (w *faultFile) Stat() (os.FileInfo, error)                { return w.f.Stat() }
func (w *faultFile) Close() error                              { return w.f.Close() }

func (w *faultFile) Write(p []byte) (int, error) {
	switch w.fs.step(w.path) {
	case vFail:
		return 0, ErrInjected
	case vDrop:
		return 0, ErrCrashed
	case vTorn:
		n, _ := w.f.Write(p[:len(p)/2])
		return n, ErrCrashed
	case vAfter:
		if n, err := w.f.Write(p); err != nil {
			return n, err
		}
		return len(p), ErrCrashed
	}
	return w.f.Write(p)
}

func (w *faultFile) WriteAt(p []byte, off int64) (int, error) {
	switch w.fs.step(w.path) {
	case vFail:
		return 0, ErrInjected
	case vDrop:
		return 0, ErrCrashed
	case vTorn:
		n, _ := w.f.WriteAt(p[:len(p)/2], off)
		return n, ErrCrashed
	case vAfter:
		if n, err := w.f.WriteAt(p, off); err != nil {
			return n, err
		}
		return len(p), ErrCrashed
	}
	return w.f.WriteAt(p, off)
}

func (w *faultFile) Truncate(size int64) error {
	switch w.fs.step(w.path) {
	case vFail:
		return ErrInjected
	case vDrop, vTorn:
		return ErrCrashed
	case vAfter:
		if err := w.f.Truncate(size); err != nil {
			return err
		}
		return ErrCrashed
	}
	return w.f.Truncate(size)
}

func (w *faultFile) Sync() error {
	switch w.fs.step(w.path) {
	case vFail:
		return ErrInjected
	case vDrop, vTorn:
		return ErrCrashed
	case vAfter:
		if err := w.f.Sync(); err != nil {
			return err
		}
		return ErrCrashed
	}
	return w.f.Sync()
}
