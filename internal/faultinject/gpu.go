// GPU fault plane: deterministic fault injection at the granularity of
// individual device operations, mirroring what this package does for
// filesystem persist operations. The simulated GPU (internal/gpu) consults
// a GPUPlan at every fault point — allocation, upload, replica replace
// (plain and streamed), dynamic ingest, kernel launch — before the
// operation takes effect, so an injected fault never leaves the simulated
// device state half-mutated. This matches real accelerator semantics:
// cudaMalloc/cudaMemcpy/launch errors surface at submission, before the
// operation runs.
//
// Two fault kinds model the failure taxonomy of fallible device memory and
// transfers (Awad et al., dynamic GPU graphs):
//
//   - Transient: the Nth occurrence of the op fails once; the retry
//     succeeds. Models ECC hiccups, transient OOM from a competing tenant,
//     recoverable transfer errors.
//   - Persistent: every occurrence from the Nth on fails until Heal is
//     called. Models a wedged device that needs a reset — the case that
//     drives the engine through its rebuild fallback into Degraded mode.
package faultinject

import (
	"errors"
	"sync"
)

// ErrGPUInjected is the error returned by a device operation selected by a
// GPUPlan rule. The engine's retry ladder treats it like any other device
// error; tests use errors.Is to tell injected faults from real ones.
var ErrGPUInjected = errors.New("faultinject: injected GPU fault")

// GPU operation names — the fault points internal/gpu checks. Plain
// strings so the gpu package does not need to import this one.
const (
	GPUMalloc          = "malloc"
	GPUUpload          = "upload"
	GPUReplace         = "replace"
	GPUReplaceStreamed = "replace-streamed"
	GPUIngest          = "ingest"
	GPULaunch          = "launch"
)

// GPUOps lists every fault point, for harnesses that enumerate them.
var GPUOps = []string{GPUMalloc, GPUUpload, GPUReplace, GPUReplaceStreamed, GPUIngest, GPULaunch}

// GPUFaultKind selects transient (fail once) or persistent (fail until
// healed) behavior for an armed rule.
type GPUFaultKind int

const (
	// Transient faults fail exactly the Nth occurrence of the op.
	Transient GPUFaultKind = iota
	// Persistent faults fail the Nth and every later occurrence until Heal.
	Persistent
)

// String names the fault kind.
func (k GPUFaultKind) String() string {
	if k == Persistent {
		return "persistent"
	}
	return "transient"
}

// gpuRule is one armed fault.
type gpuRule struct {
	at   int64
	kind GPUFaultKind
}

// GPUPlan counts device operations per op name and injects faults per the
// armed rules. With no rules armed it only counts, which is how a harness
// discovers the fault points of a workload before enumerating them. The
// zero value is not usable; call NewGPUPlan. All methods are safe for
// concurrent use.
type GPUPlan struct {
	mu       sync.Mutex
	counts   map[string]int64
	rules    map[string]gpuRule
	injected int64
}

// NewGPUPlan returns an empty plan (counting only).
func NewGPUPlan() *GPUPlan {
	return &GPUPlan{counts: make(map[string]int64), rules: make(map[string]gpuRule)}
}

// Arm makes occurrence n (1-based, counted from now on — ResetCounts is
// implied for the op) of the named op fail with the given kind. Arming an
// op replaces its previous rule.
func (p *GPUPlan) Arm(op string, n int64, kind GPUFaultKind) {
	p.mu.Lock()
	p.counts[op] = 0
	p.rules[op] = gpuRule{at: n, kind: kind}
	p.mu.Unlock()
}

// Heal clears every armed rule (a persistent fault's "device reset").
// Counters keep running.
func (p *GPUPlan) Heal() {
	p.mu.Lock()
	p.rules = make(map[string]gpuRule)
	p.mu.Unlock()
}

// ResetCounts zeroes every op counter (rules keep their positions relative
// to the new zero only if re-armed; typically called before arming).
func (p *GPUPlan) ResetCounts() {
	p.mu.Lock()
	p.counts = make(map[string]int64)
	p.mu.Unlock()
}

// Count reports how many occurrences of op have been observed since the
// last ResetCounts/Arm for that op.
func (p *GPUPlan) Count(op string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[op]
}

// Counts returns a copy of all op counters.
func (p *GPUPlan) Counts() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

// Injected reports how many faults have fired.
func (p *GPUPlan) Injected() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// Check assigns the next sequence number to op and returns ErrGPUInjected
// if a rule selects it. It implements the gpu.FaultInjector hook.
func (p *GPUPlan) Check(op string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts[op]++
	r, ok := p.rules[op]
	if !ok {
		return nil
	}
	n := p.counts[op]
	fire := false
	switch r.kind {
	case Transient:
		fire = n == r.at
	case Persistent:
		fire = n >= r.at
	}
	if !fire {
		return nil
	}
	p.injected++
	return ErrGPUInjected
}
