package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"h2tap/internal/vfs"
)

func write(t *testing.T, fsys vfs.FS, path string, data []byte) error {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestCountsMutatingOpsOnly(t *testing.T) {
	dir := t.TempDir()
	ffs := New(vfs.OS())
	path := filepath.Join(dir, "a")

	if err := write(t, ffs, path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Creating open (1) + write (2).
	if got := ffs.Ops(); got != 2 {
		t.Fatalf("ops = %d, want 2", got)
	}
	// Read-only traffic is free.
	f, err := ffs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ffs.Stat(path); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Ops(); got != 2 {
		t.Fatalf("ops after reads = %d, want 2", got)
	}
	// Re-opening an existing file without O_TRUNC is not mutating; with
	// O_TRUNC it is.
	f, err = ffs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := ffs.Ops(); got != 2 {
		t.Fatalf("ops after plain reopen = %d, want 2", got)
	}
	f, err = ffs.OpenFile(path, os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := ffs.Ops(); got != 3 {
		t.Fatalf("ops after truncating reopen = %d, want 3", got)
	}
}

func TestFailAtIsTransient(t *testing.T) {
	dir := t.TempDir()
	ffs := New(vfs.OS())
	path := filepath.Join(dir, "a")
	if err := write(t, ffs, path, []byte("one")); err != nil {
		t.Fatal(err)
	}

	ffs.FailAt(ffs.Ops() + 1)
	f, err := ffs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("X"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected write: %v, want ErrInjected", err)
	}
	// The failure is one-shot: the same handle works again, the file was
	// not modified by the failed write.
	if _, err := f.WriteAt([]byte("two"), 0); err != nil {
		t.Fatalf("write after transient failure: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("content = %q, want %q", got, "two")
	}
	if ffs.Crashed() {
		t.Fatal("FailAt crashed the filesystem")
	}
}

func TestCrashTearHalf(t *testing.T) {
	dir := t.TempDir()
	ffs := New(vfs.OS())
	path := filepath.Join(dir, "a")
	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ffs.CrashAt(ffs.Ops()+1, TearHalf)
	if _, err := f.Write([]byte("helloworld")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write: %v, want ErrCrashed", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "hello" {
		t.Fatalf("torn write left %q, want first half %q", got, "hello")
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() false after crash point")
	}

	// Everything mutating is dead after the crash.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash truncate: %v", err)
	}
	if err := ffs.Rename(path, path+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	if err := ffs.Remove(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove: %v", err)
	}
	if err := ffs.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash syncdir: %v", err)
	}
	if _, err := ffs.OpenFile(path, os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash writable open: %v", err)
	}
	// Read-only access still works: recovery inspects the frozen state.
	rf, err := ffs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("post-crash read-only open: %v", err)
	}
	rf.Close()
	// The frozen bytes survived all of the above.
	got, _ = os.ReadFile(path)
	if string(got) != "hello" {
		t.Fatalf("post-crash mutations leaked through: %q", got)
	}
}

func TestCrashTearAllAppliesThenBlocks(t *testing.T) {
	dir := t.TempDir()
	ffs := New(vfs.OS())
	path := filepath.Join(dir, "a")
	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ffs.CrashAt(ffs.Ops()+1, TearAll)
	if _, err := f.Write([]byte("whole")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write: %v, want ErrCrashed", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "whole" {
		t.Fatalf("tear-all write left %q, want %q", got, "whole")
	}
	if _, err := f.Write([]byte("after")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
}

func TestCrashTearNoneDrops(t *testing.T) {
	dir := t.TempDir()
	ffs := New(vfs.OS())
	path := filepath.Join(dir, "a")
	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ffs.CrashAt(ffs.Ops()+1, TearNone)
	if _, err := f.Write([]byte("gone")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write: %v, want ErrCrashed", err)
	}
	got, _ := os.ReadFile(path)
	if len(got) != 0 {
		t.Fatalf("tear-none applied bytes: %q", got)
	}
}

func TestCrashAtRenameTearAll(t *testing.T) {
	dir := t.TempDir()
	ffs := New(vfs.OS())
	oldp := filepath.Join(dir, "tmp")
	newp := filepath.Join(dir, "final")
	if err := write(t, ffs, oldp, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	ffs.CrashAt(ffs.Ops()+1, TearAll)
	if err := ffs.Rename(oldp, newp); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing rename: %v, want ErrCrashed", err)
	}
	if _, err := os.Stat(newp); err != nil {
		t.Fatalf("tear-all rename not applied: %v", err)
	}
	if _, err := os.Stat(oldp); err == nil {
		t.Fatal("tear-all rename left the old name")
	}
}
