// Package gpu simulates the analytics accelerator of the paper's testbed
// (an NVIDIA A100 with 40 GB over PCIe 4.0, §6.1). Computation runs on the
// host; the device tracks memory occupancy and charges simulated durations
// for transfers and kernel launches from the calibrated models in
// internal/sim. DESIGN.md §2 explains why this substitution preserves the
// paper's measured shapes.
package gpu

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/dyngraph"
	"h2tap/internal/sim"
)

// ErrOutOfMemory reports device memory exhaustion — the case §4.3 notes
// would require partitioning / unified-memory techniques.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// Fault-point op names, consulted against the installed FaultInjector.
// They match internal/faultinject's GPU* constants; plain strings keep the
// two packages decoupled.
const (
	OpMalloc          = "malloc"
	OpUpload          = "upload"
	OpReplace         = "replace"
	OpReplaceStreamed = "replace-streamed"
	OpIngest          = "ingest"
	OpLaunch          = "launch"
)

// FaultInjector is the hook the device consults before each fallible
// operation. faultinject.GPUPlan implements it. Check is called at
// operation submission — before any simulated device state mutates — so an
// injected fault is always failure-atomic, matching real accelerator
// semantics where allocation/copy/launch errors surface at the API call.
type FaultInjector interface {
	Check(op string) error
}

// Config describes a simulated device.
type Config struct {
	Name     string
	MemBytes int64
	PCIe     sim.PCIeModel
	Kernels  map[string]sim.KernelModel
}

// Device is a simulated GPU.
type Device struct {
	cfg     Config
	memUsed atomic.Int64

	inject atomic.Value // FaultInjector, nil until SetFaultInjector

	mu       sync.Mutex
	simTotal sim.Duration // accumulated simulated busy time
	launches int64
	hToD     int64 // bytes moved host→device
	dToH     int64 // bytes moved device→host

	// Per-op success counters and the injected-fault tally, for metrics
	// exposition (pull-based: read at scrape time via Stats).
	mallocs          atomic.Int64
	uploads          atomic.Int64
	replaces         atomic.Int64
	replacesStreamed atomic.Int64
	ingests          atomic.Int64
	faultsInjected   atomic.Int64
}

// DeviceStats is a snapshot of the device's operation counters.
type DeviceStats struct {
	Mallocs          int64
	Uploads          int64
	Replaces         int64
	ReplacesStreamed int64
	Ingests          int64
	Launches         int64
	FaultsInjected   int64
	BytesToDevice    int64
	BytesToHost      int64
	MemUsed          int64
	SimTotal         sim.Duration
}

// Stats snapshots the operation counters for metrics exposition.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	launches, hToD, dToH, simTotal := d.launches, d.hToD, d.dToH, d.simTotal
	d.mu.Unlock()
	return DeviceStats{
		Mallocs:          d.mallocs.Load(),
		Uploads:          d.uploads.Load(),
		Replaces:         d.replaces.Load(),
		ReplacesStreamed: d.replacesStreamed.Load(),
		Ingests:          d.ingests.Load(),
		Launches:         launches,
		FaultsInjected:   d.faultsInjected.Load(),
		BytesToDevice:    hToD,
		BytesToHost:      dToH,
		MemUsed:          d.memUsed.Load(),
		SimTotal:         simTotal,
	}
}

// PredictTransfer evaluates the device's PCIe model for n bytes without
// charging the bus — the predicted transfer cost the drift tracker compares
// against the measured one.
func (d *Device) PredictTransfer(n int64) sim.Duration {
	return d.cfg.PCIe.Transfer(n)
}

// SetFaultInjector installs (or, with nil, removes) the fault-injection
// hook. Intended for tests and the fault-soak harness.
func (d *Device) SetFaultInjector(fi FaultInjector) {
	d.inject.Store(&fi)
}

// fault consults the installed injector for one operation.
func (d *Device) fault(op string) error {
	if p, _ := d.inject.Load().(*FaultInjector); p != nil && *p != nil {
		if err := (*p).Check(op); err != nil {
			d.faultsInjected.Add(1)
			return err
		}
	}
	return nil
}

// DefaultA100 returns a device with the paper-calibrated defaults: 40 GB of
// memory, PCIe 4.0 transfer model, Table-1-fitted kernel throughputs.
func DefaultA100() *Device {
	return NewDevice(Config{
		Name:     "sim-a100",
		MemBytes: 40 << 30,
		PCIe:     sim.DefaultPCIe(),
		Kernels:  sim.DefaultKernels(),
	})
}

// NewDevice returns a device with the given configuration.
func NewDevice(cfg Config) *Device {
	if cfg.Kernels == nil {
		cfg.Kernels = sim.DefaultKernels()
	}
	return &Device{cfg: cfg}
}

// Name reports the device name.
func (d *Device) Name() string { return d.cfg.Name }

// MemUsed reports allocated device memory.
func (d *Device) MemUsed() int64 { return d.memUsed.Load() }

// MemCapacity reports total device memory.
func (d *Device) MemCapacity() int64 { return d.cfg.MemBytes }

// SimTime reports the device's accumulated simulated busy time.
func (d *Device) SimTime() sim.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.simTotal
}

// Launches reports the number of kernel launches.
func (d *Device) Launches() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.launches
}

// BytesToDevice reports the cumulative host→device transfer volume.
func (d *Device) BytesToDevice() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hToD
}

func (d *Device) charge(t sim.Duration) {
	d.mu.Lock()
	d.simTotal += t
	d.mu.Unlock()
}

// Buffer is a device memory allocation.
type Buffer struct {
	dev   *Device
	bytes int64
	freed atomic.Bool
}

// Malloc allocates device memory.
func (d *Device) Malloc(n int64) (*Buffer, error) {
	if n < 0 {
		return nil, fmt.Errorf("gpu: Malloc(%d): negative size", n)
	}
	if err := d.fault(OpMalloc); err != nil {
		return nil, err
	}
	for {
		used := d.memUsed.Load()
		if used+n > d.cfg.MemBytes {
			return nil, fmt.Errorf("%w: need %d, %d free", ErrOutOfMemory, n, d.cfg.MemBytes-used)
		}
		if d.memUsed.CompareAndSwap(used, used+n) {
			d.mallocs.Add(1)
			return &Buffer{dev: d, bytes: n}, nil
		}
	}
}

// Bytes reports the buffer size.
func (b *Buffer) Bytes() int64 { return b.bytes }

// Free releases the buffer; double-free is a no-op.
func (b *Buffer) Free() {
	if b != nil && b.freed.CompareAndSwap(false, true) {
		b.dev.memUsed.Add(-b.bytes)
	}
}

// HostToDevice charges a host→device transfer of n bytes and returns its
// simulated duration.
func (d *Device) HostToDevice(n int64) sim.Duration {
	t := d.cfg.PCIe.Transfer(n)
	d.mu.Lock()
	d.simTotal += t
	d.hToD += n
	d.mu.Unlock()
	return t
}

// DeviceToHost charges a device→host transfer.
func (d *Device) DeviceToHost(n int64) sim.Duration {
	t := d.cfg.PCIe.Transfer(n)
	d.mu.Lock()
	d.simTotal += t
	d.dToH += n
	d.mu.Unlock()
	return t
}

// Launch charges a kernel of the given class with the given amount of work
// (class-specific units; graph kernels use traversed edges).
func (d *Device) Launch(class string, work float64) (sim.Duration, error) {
	m, ok := d.cfg.Kernels[class]
	if !ok {
		return 0, fmt.Errorf("gpu: unknown kernel class %q", class)
	}
	if err := d.fault(OpLaunch); err != nil {
		return 0, err
	}
	t := m.Run(work)
	d.mu.Lock()
	d.simTotal += t
	d.launches++
	d.mu.Unlock()
	return t, nil
}

// ResidentCSR is a CSR replica resident in device memory — the static
// replica of Fig 1 (bottom right). Replace swaps in a new CSR, modelling
// the "new CSR transferred to the GPU to replace the old CSR" step (§5.4).
type ResidentCSR struct {
	dev *Device
	buf *Buffer
	c   *csr.CSR
}

// UploadCSR allocates device memory for c and transfers it.
func UploadCSR(d *Device, c *csr.CSR) (*ResidentCSR, sim.Duration, error) {
	if err := d.fault(OpUpload); err != nil {
		return nil, 0, err
	}
	buf, err := d.Malloc(c.Bytes())
	if err != nil {
		return nil, 0, err
	}
	t := d.HostToDevice(c.Bytes())
	d.uploads.Add(1)
	return &ResidentCSR{dev: d, buf: buf, c: c}, t, nil
}

// CSR exposes the device-resident CSR content (host-backed in the
// simulation) for kernels.
func (r *ResidentCSR) CSR() *csr.CSR { return r.c }

// Replace uploads the new CSR and frees the old replica's memory. On
// error (injected fault or OOM) the replica keeps serving its previous
// content: r.c is only swapped after the transfer, so a failed Replace is
// failure-atomic with respect to the replica's readable state. (The old
// buffer may have been freed for the OOM retry; a later successful Replace
// re-establishes the accounting — Free is idempotent.)
func (r *ResidentCSR) Replace(c *csr.CSR) (sim.Duration, error) {
	if err := r.dev.fault(OpReplace); err != nil {
		return 0, err
	}
	buf, err := r.dev.Malloc(c.Bytes())
	if err != nil {
		// The A100 holds two SF30 CSRs comfortably; if it cannot, free
		// first and retry — trading the brief double-residency away.
		r.buf.Free()
		buf, err = r.dev.Malloc(c.Bytes())
		if err != nil {
			return 0, err
		}
	} else {
		r.buf.Free()
	}
	t := r.dev.HostToDevice(c.Bytes())
	r.buf = buf
	r.c = c
	r.dev.replaces.Add(1)
	return t, nil
}

// Free releases the replica's device memory.
func (r *ResidentCSR) Free() { r.buf.Free() }

// StreamSegment is one ready-to-ship piece of a new CSR: Bytes of payload
// that became available Ready after the merge started (wall clock of the
// producing merge worker).
type StreamSegment struct {
	Bytes int64
	Ready time.Duration
}

// ReplaceStreamed uploads the new CSR as a sequence of segments pipelined
// against their production: segment i's transfer starts when both the bus
// is free and the segment is ready, so early segments ship while later rows
// are still being merged (§5.4's transfer overlapped with the parallel
// merge). mergeWall is the wall-clock duration of the whole merge.
//
// It returns the *exposed* transfer time — the simulated bus time extending
// past the merge, which is what the propagation cycle actually waits for —
// and the total bus busy time (the sum of per-segment transfers, also
// charged to the device as HostToDevice). With no overlap (every segment
// ready at mergeWall) exposed equals the full transfer, matching Replace.
func (r *ResidentCSR) ReplaceStreamed(c *csr.CSR, segs []StreamSegment, mergeWall time.Duration) (exposed, bus sim.Duration, err error) {
	if err := r.dev.fault(OpReplaceStreamed); err != nil {
		return 0, 0, err
	}
	buf, err := r.dev.Malloc(c.Bytes())
	if err != nil {
		r.buf.Free()
		buf, err = r.dev.Malloc(c.Bytes())
		if err != nil {
			return 0, 0, err
		}
	} else {
		r.buf.Free()
	}

	// Pipelined bus timeline in simulated time. Wall-clock ready times map
	// 1:1 onto the simulated timeline: the host-side merge runs for real
	// here, the bus is the simulated part.
	var busFree, total sim.Duration
	var streamed int64
	for _, s := range segs {
		ready := sim.Duration(s.Ready)
		if ready > busFree {
			busFree = ready
		}
		t := r.dev.HostToDevice(s.Bytes)
		busFree += t
		total += t
		streamed += s.Bytes
	}
	// Whatever the segments did not cover (e.g. the Off[0] word, or an
	// empty segment list) ships after the merge completes.
	if rest := c.Bytes() - streamed; rest > 0 {
		t := r.dev.HostToDevice(rest)
		if w := sim.Duration(mergeWall); busFree < w {
			busFree = w
		}
		busFree += t
		total += t
	}
	exposed = busFree - sim.Duration(mergeWall)
	if exposed < 0 {
		exposed = 0
	}
	r.buf = buf
	r.c = c
	r.dev.replacesStreamed.Add(1)
	return exposed, total, nil
}

// ResidentDyn is a dynamic-structure replica in device memory — the dynamic
// path of Fig 1 (top right). Ingest coalesces a propagation batch, ships it
// in a single transfer (§5.4: "copy them to the GPU memory all at once")
// and charges the batched-ingestion kernel.
type ResidentDyn struct {
	dev *Device
	buf *Buffer
	g   *dyngraph.Graph
}

// dynBytes estimates device memory for the hash-table structure: table
// headers per vertex slot plus bucket entries at 2× load-factor headroom.
func dynBytes(g *dyngraph.Graph) int64 {
	return int64(g.NumVertexSlots())*16 + g.NumEdges()*16*2
}

// UploadDyn allocates and transfers the dynamic structure.
func UploadDyn(d *Device, g *dyngraph.Graph) (*ResidentDyn, sim.Duration, error) {
	if err := d.fault(OpUpload); err != nil {
		return nil, 0, err
	}
	buf, err := d.Malloc(dynBytes(g))
	if err != nil {
		return nil, 0, err
	}
	t := d.HostToDevice(int64(g.NumVertexSlots())*16 + g.NumEdges()*16)
	d.uploads.Add(1)
	return &ResidentDyn{dev: d, buf: buf, g: g}, t, nil
}

// Graph exposes the device-resident dynamic graph.
func (r *ResidentDyn) Graph() *dyngraph.Graph { return r.g }

// Ingest applies a propagation batch: one coalesced transfer plus the
// batched update kernel (Algorithm 1), with the default worker count.
func (r *ResidentDyn) Ingest(b *delta.Batch) (sim.Duration, dyngraph.Stats, error) {
	return r.IngestWorkers(b, 0)
}

// IngestWorkers is Ingest with an explicit worker count for the host-side
// hash-table updates (workers <= 0 selects GOMAXPROCS).
//
// Ingest is failure-atomic: every fallible step — the injected-fault
// check, the growth allocation, the kernel launch — happens at submission,
// before the host-side twin mutates, so on error the replica still serves
// exactly its previous content and the same batch can be retried or
// abandoned. The launch's work term is predicted by dyngraph.PlanBatch,
// which returns exactly the Stats the application will report.
func (r *ResidentDyn) IngestWorkers(b *delta.Batch, workers int) (sim.Duration, dyngraph.Stats, error) {
	if err := r.dev.fault(OpIngest); err != nil {
		return 0, dyngraph.Stats{}, err
	}
	planned, slots, maxEdges := r.g.PlanBatch(b)
	// Reserve growth up front at the post-batch upper bound; the
	// conservative size is kept rather than re-allocated exactly, because a
	// second allocation after the mutation would be a fallible op past the
	// atomicity point.
	var grown *Buffer
	if newBytes := int64(slots)*16 + maxEdges*16*2; newBytes > r.buf.Bytes() {
		nb, err := r.dev.Malloc(newBytes)
		if err != nil {
			return 0, planned, err
		}
		grown = nb
	}
	t := r.dev.HostToDevice(b.TransferBytes())
	kt, err := r.dev.Launch(sim.KernelIngest, float64(planned.Ops()))
	if err != nil {
		grown.Free()
		return 0, planned, err
	}
	st := r.g.ApplyBatchWorkers(b, workers)
	if grown != nil {
		r.buf.Free()
		r.buf = grown
	}
	r.dev.ingests.Add(1)
	return t + kt, st, nil
}

// Free releases the replica's device memory.
func (r *ResidentDyn) Free() { r.buf.Free() }
