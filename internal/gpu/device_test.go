package gpu

import (
	"errors"
	"testing"
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/dyngraph"
	"h2tap/internal/sim"
)

func smallCSR() *csr.CSR {
	return &csr.CSR{
		Off: []int64{0, 2, 3, 3},
		Col: []uint64{1, 2, 2},
		Val: []float64{1, 2, 3},
	}
}

func TestMallocFreeAccounting(t *testing.T) {
	d := NewDevice(Config{Name: "d", MemBytes: 1000, PCIe: sim.DefaultPCIe()})
	b1, err := d.Malloc(600)
	if err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 600 {
		t.Fatalf("MemUsed = %d", d.MemUsed())
	}
	if _, err := d.Malloc(500); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-alloc = %v, want ErrOutOfMemory", err)
	}
	b1.Free()
	b1.Free() // double-free is a no-op
	if d.MemUsed() != 0 {
		t.Fatalf("MemUsed after free = %d", d.MemUsed())
	}
	if _, err := d.Malloc(1000); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestTransfersChargeSimTime(t *testing.T) {
	d := NewDevice(Config{MemBytes: 1 << 30, PCIe: sim.PCIeModel{BytesPerSec: 1e9}})
	got := d.HostToDevice(1e9)
	if got != sim.Duration(time.Second) {
		t.Fatalf("HostToDevice = %v", got)
	}
	d.DeviceToHost(2e9)
	if d.SimTime() != sim.Duration(3*time.Second) {
		t.Fatalf("SimTime = %v", d.SimTime())
	}
	if d.BytesToDevice() != 1e9 {
		t.Fatalf("BytesToDevice = %d", d.BytesToDevice())
	}
}

func TestLaunch(t *testing.T) {
	d := DefaultA100()
	dur, err := d.Launch(sim.KernelBFS, 260e6)
	if err != nil {
		t.Fatal(err)
	}
	if s := dur.Seconds(); s < 0.05 || s > 0.10 {
		t.Fatalf("BFS launch on 260M edges = %v, want ≈0.07s", dur)
	}
	if d.Launches() != 1 {
		t.Fatalf("Launches = %d", d.Launches())
	}
	if _, err := d.Launch("warp-drive", 1); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestUploadAndReplaceCSR(t *testing.T) {
	d := DefaultA100()
	c := smallCSR()
	r, dur, err := UploadCSR(d, c)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("upload charged no time")
	}
	if d.MemUsed() != c.Bytes() {
		t.Fatalf("MemUsed = %d, want %d", d.MemUsed(), c.Bytes())
	}
	if r.CSR() != c {
		t.Fatal("resident CSR mismatch")
	}

	bigger := &csr.CSR{
		Off: []int64{0, 1, 2, 3, 4},
		Col: []uint64{1, 2, 3, 0},
		Val: []float64{1, 1, 1, 1},
	}
	if _, err := r.Replace(bigger); err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != bigger.Bytes() {
		t.Fatalf("MemUsed after replace = %d, want %d", d.MemUsed(), bigger.Bytes())
	}
	r.Free()
	if d.MemUsed() != 0 {
		t.Fatalf("MemUsed after Free = %d", d.MemUsed())
	}
}

func TestReplaceTightMemoryFallback(t *testing.T) {
	c := smallCSR()
	// Device fits exactly one copy: Replace must free-then-alloc.
	d := NewDevice(Config{MemBytes: c.Bytes() + 8, PCIe: sim.DefaultPCIe()})
	r, _, err := UploadCSR(d, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replace(c.Copy()); err != nil {
		t.Fatalf("tight-memory replace failed: %v", err)
	}
	if d.MemUsed() != c.Bytes() {
		t.Fatalf("MemUsed = %d", d.MemUsed())
	}
}

func TestUploadTooBig(t *testing.T) {
	d := NewDevice(Config{MemBytes: 10, PCIe: sim.DefaultPCIe()})
	if _, _, err := UploadCSR(d, smallCSR()); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("upload beyond capacity = %v", err)
	}
}

func TestDynIngest(t *testing.T) {
	d := DefaultA100()
	g := dyngraph.FromCSR(smallCSR())
	r, _, err := UploadDyn(d, g)
	if err != nil {
		t.Fatal(err)
	}
	before := d.SimTime()
	dur, st, err := r.Ingest(&delta.Batch{Deltas: []delta.Combined{
		{Node: 0, Ins: []delta.Edge{{Dst: 0, W: 1}}},
		{Node: 5, Inserted: true, Ins: []delta.Edge{{Dst: 1, W: 2}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.EdgeInserts != 2 || st.NodeInserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if dur <= 0 || d.SimTime() <= before {
		t.Fatal("ingest charged no simulated time")
	}
	if !r.Graph().HasVertex(5) {
		t.Fatal("ingest lost the inserted vertex")
	}
	r.Free()
	if d.MemUsed() != 0 {
		t.Fatalf("MemUsed after free = %d", d.MemUsed())
	}
}

func TestMallocNegative(t *testing.T) {
	d := DefaultA100()
	if _, err := d.Malloc(-1); err == nil {
		t.Fatal("negative Malloc accepted")
	}
}
