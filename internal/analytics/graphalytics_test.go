package analytics

import (
	"math"
	"reflect"
	"testing"

	"h2tap/internal/csr"
	"h2tap/internal/dyngraph"
)

// triangle plus a tail: 0↔1↔2↔0 (directed cycle both ways), 3→0, 4 isolated.
func triangleCSR() *csr.CSR {
	return &csr.CSR{
		Off: []int64{0, 2, 4, 6, 7, 7},
		Col: []uint64{1, 2, 0, 2, 0, 1, 0},
		Val: []float64{1, 1, 1, 1, 1, 1, 1},
	}
}

func TestCDLPConvergesOnCommunities(t *testing.T) {
	// Two disjoint triangles: each converges to one community labeled by
	// its smallest member.
	c := &csr.CSR{
		Off: []int64{0, 2, 4, 6, 8, 10, 12},
		Col: []uint64{1, 2, 0, 2, 0, 1, 4, 5, 3, 5, 3, 4},
		Val: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
	}
	labels, st := CDLP(CSRGraph{c}, 10)
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[0] != 0 {
		t.Fatalf("first triangle labels = %v", labels[:3])
	}
	if labels[3] != labels[4] || labels[4] != labels[5] || labels[3] != 3 {
		t.Fatalf("second triangle labels = %v", labels[3:])
	}
	if st.Iterations != 10 || st.Edges == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCDLPIsolatedKeepsOwnLabel(t *testing.T) {
	labels, _ := CDLP(CSRGraph{triangleCSR()}, 5)
	if labels[4] != 4 {
		t.Fatalf("isolated vertex label = %d", labels[4])
	}
}

func TestLCCTriangle(t *testing.T) {
	coef, st := LCC(CSRGraph{triangleCSR()})
	// Vertices 0,1,2 form a complete directed triangle: every ordered
	// neighbor pair is connected → coefficient 1.
	for u := 0; u < 3; u++ {
		if math.Abs(coef[u]-1) > 1e-12 {
			t.Fatalf("triangle vertex %d coef = %v", u, coef[u])
		}
	}
	// Degree-1 vertex 3 and isolated 4: coefficient 0.
	if coef[3] != 0 || coef[4] != 0 {
		t.Fatalf("low-degree coefs = %v %v", coef[3], coef[4])
	}
	if st.Edges == 0 {
		t.Fatal("no probes counted")
	}
}

func TestLCCPartial(t *testing.T) {
	// 0→{1,2,3}; among neighbors only 1→2 exists: links=1 out of 3·2=6.
	c := &csr.CSR{
		Off: []int64{0, 3, 4, 4, 4},
		Col: []uint64{1, 2, 3, 2},
		Val: []float64{1, 1, 1, 1},
	}
	coef, _ := LCC(CSRGraph{c})
	if math.Abs(coef[0]-1.0/6.0) > 1e-12 {
		t.Fatalf("coef[0] = %v, want 1/6", coef[0])
	}
}

func TestGraphalyticsAgreeAcrossStructures(t *testing.T) {
	c := randomCSR(21, 200, 4)
	dg := dyngraph.FromCSR(c)
	l1, _ := CDLP(CSRGraph{c}, 5)
	l2, _ := CDLP(dg, 5)
	if !reflect.DeepEqual(l1, l2) {
		t.Fatal("CDLP differs between CSR and dynamic structure")
	}
	c1, _ := LCC(CSRGraph{c})
	c2, _ := LCC(dg)
	for i := range c1 {
		if math.Abs(c1[i]-c2[i]) > 1e-12 {
			t.Fatalf("LCC differs at %d", i)
		}
	}
}

func TestLCCBounds(t *testing.T) {
	c := randomCSR(33, 150, 5)
	coef, _ := LCC(CSRGraph{c})
	for i, x := range coef {
		if x < 0 || x > 1 {
			t.Fatalf("coef[%d] = %v out of [0,1]", i, x)
		}
	}
}
