package analytics

import "fmt"

// Output bundles the result arrays of one kernel execution. Exactly one
// result slice is set, matching the requested kind.
type Output struct {
	Levels []int32   // bfs
	Dists  []float64 // sssp
	Ranks  []float64 // pagerank
	Comp   []uint64  // wcc, cdlp
	Coef   []float64 // lcc
	Work   WorkStats
}

// Run dispatches one kernel by name — the htap.AnalyticsKind strings
// ("bfs", "pagerank", "sssp", "wcc", "cdlp", "lcc") — over any Graph view.
// It is the single execution path shared by the per-shard engine and the
// cross-shard stitcher, so both compute identical results on identical
// views. iters and damping parameterize PageRank (and iters bounds CDLP).
func Run(g Graph, kind string, src uint64, iters int, damping float64) (Output, error) {
	var out Output
	switch kind {
	case "bfs":
		out.Levels, out.Work = BFS(g, src)
	case "pagerank":
		out.Ranks, out.Work = PageRank(g, iters, damping)
	case "sssp":
		out.Dists, out.Work = SSSP(g, src)
	case "wcc":
		out.Comp, out.Work = WCC(g)
	case "cdlp":
		out.Comp, out.Work = CDLP(g, iters)
	case "lcc":
		out.Coef, out.Work = LCC(g)
	default:
		return out, fmt.Errorf("analytics: unknown kernel %q", kind)
	}
	return out, nil
}
