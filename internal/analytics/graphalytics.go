package analytics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// CDLP runs community detection by label propagation (the LDBC Graphalytics
// CDLP algorithm): every vertex starts in its own community; each iteration
// every vertex adopts the most frequent community label among its
// out-neighbors, smallest label winning ties. Runs for a fixed number of
// iterations, synchronously (all vertices update from the previous round's
// labels).
func CDLP(g Graph, iters int) ([]uint64, WorkStats) {
	n := g.NumVertexSlots()
	labels := make([]uint64, n)
	for i := range labels {
		labels[i] = uint64(i)
	}
	next := make([]uint64, n)
	var st WorkStats

	for it := 0; it < iters; it++ {
		st.Iterations++
		var edges atomic.Int64
		parallelFor(n, func(lo, hi int) {
			counts := make(map[uint64]int)
			var traversed int64
			for u := lo; u < hi; u++ {
				if g.Degree(uint64(u)) == 0 {
					next[u] = labels[u]
					continue
				}
				clear(counts)
				g.ForEachNeighbor(uint64(u), func(v uint64, _ float64) bool {
					traversed++
					counts[labels[v]]++
					return true
				})
				best, bestCount := labels[u], 0
				for lbl, c := range counts {
					if c > bestCount || (c == bestCount && lbl < best) {
						best, bestCount = lbl, c
					}
				}
				next[u] = best
			}
			edges.Add(traversed)
		})
		st.Edges += float64(edges.Load())
		labels, next = next, labels
	}
	return labels, st
}

// LCC computes each vertex's local clustering coefficient over its
// out-neighborhood: the fraction of ordered neighbor pairs (v, w) with an
// edge v→w, i.e. |{(v,w) : v,w ∈ N(u), v→w}| / (d(u)·(d(u)−1)). Vertices
// with out-degree < 2 get coefficient 0 (the Graphalytics convention).
//
// Work is counted as neighbor-pair probes, the quantity the GPU kernel's
// throughput model is calibrated in.
func LCC(g Graph) ([]float64, WorkStats) {
	n := g.NumVertexSlots()
	coef := make([]float64, n)

	// Materialize sorted neighbor lists once so edge-existence probes are
	// binary searches regardless of the backing structure.
	adj := make([][]uint64, n)
	parallelFor(n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			d := g.Degree(uint64(u))
			if d == 0 {
				continue
			}
			nbrs := make([]uint64, 0, d)
			g.ForEachNeighbor(uint64(u), func(v uint64, _ float64) bool {
				nbrs = append(nbrs, v)
				return true
			})
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
			adj[u] = nbrs
		}
	})

	var probes atomic.Int64
	var wg sync.WaitGroup
	w := workers()
	chunk := (n + w - 1) / w
	if chunk == 0 {
		chunk = 1
	}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var local int64
			for u := lo; u < hi; u++ {
				nbrs := adj[u]
				d := len(nbrs)
				if d < 2 {
					continue
				}
				links := 0
				for _, v := range nbrs {
					vAdj := adj[v]
					for _, w := range nbrs {
						if w == v {
							continue
						}
						local++
						i := sort.Search(len(vAdj), func(i int) bool { return vAdj[i] >= w })
						if i < len(vAdj) && vAdj[i] == w {
							links++
						}
					}
				}
				coef[u] = float64(links) / float64(d*(d-1))
			}
			probes.Add(local)
		}(lo, hi)
	}
	wg.Wait()
	return coef, WorkStats{Edges: float64(probes.Load()), Iterations: 1}
}
