package analytics

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"h2tap/internal/csr"
	"h2tap/internal/dyngraph"
)

// chain: 0→1→2→3, plus 4 isolated.
func chainCSR() *csr.CSR {
	return &csr.CSR{
		Off: []int64{0, 1, 2, 3, 3, 3},
		Col: []uint64{1, 2, 3},
		Val: []float64{1, 2, 3},
	}
}

// diamond: 0→1 (w1), 0→2 (w4), 1→3 (w1), 2→3 (w1)
func diamondCSR() *csr.CSR {
	return &csr.CSR{
		Off: []int64{0, 2, 3, 4, 4},
		Col: []uint64{1, 2, 3, 3},
		Val: []float64{1, 4, 1, 1},
	}
}

func TestBFSChain(t *testing.T) {
	levels, st := BFS(CSRGraph{chainCSR()}, 0)
	want := []int32{0, 1, 2, 3, Unreachable}
	if !reflect.DeepEqual(levels, want) {
		t.Fatalf("levels = %v, want %v", levels, want)
	}
	if st.Edges != 3 || st.Iterations != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBFSFromMiddleAndOutOfRange(t *testing.T) {
	levels, _ := BFS(CSRGraph{chainCSR()}, 2)
	if levels[0] != Unreachable || levels[2] != 0 || levels[3] != 1 {
		t.Fatalf("levels = %v", levels)
	}
	levels, st := BFS(CSRGraph{chainCSR()}, 99)
	for _, l := range levels {
		if l != Unreachable {
			t.Fatalf("out-of-range source reached something: %v", levels)
		}
	}
	if st.Edges != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSSSPDiamond(t *testing.T) {
	dists, st := SSSP(CSRGraph{diamondCSR()}, 0)
	want := []float64{0, 1, 4, 2}
	if !reflect.DeepEqual(dists, want) {
		t.Fatalf("dists = %v, want %v", dists, want)
	}
	if st.Edges < 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSSSPUnreachableIsInf(t *testing.T) {
	dists, _ := SSSP(CSRGraph{chainCSR()}, 0)
	if !math.IsInf(dists[4], 1) {
		t.Fatalf("isolated node dist = %v", dists[4])
	}
}

func TestSSSPNegativeWeightPanics(t *testing.T) {
	bad := &csr.CSR{Off: []int64{0, 1, 1}, Col: []uint64{1}, Val: []float64{-1}}
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	SSSP(CSRGraph{bad}, 0)
}

func TestPageRankSumsToOne(t *testing.T) {
	for _, c := range []*csr.CSR{chainCSR(), diamondCSR()} {
		ranks, st := PageRank(CSRGraph{c}, 10, 0.85)
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("rank sum = %v", sum)
		}
		if st.Iterations != 10 {
			t.Fatalf("stats = %+v", st)
		}
	}
}

func TestPageRankOrdering(t *testing.T) {
	// In the diamond, node 3 receives from two paths and should outrank
	// nodes 1 and 2.
	ranks, _ := PageRank(CSRGraph{diamondCSR()}, 30, 0.85)
	if !(ranks[3] > ranks[1] && ranks[3] > ranks[2]) {
		t.Fatalf("ranks = %v", ranks)
	}
}

func TestWCC(t *testing.T) {
	// Components: {0,1,2,3} via chain, {4} isolated.
	comp, st := WCC(CSRGraph{chainCSR()})
	if comp[0] != comp[3] || comp[0] != 0 {
		t.Fatalf("chain components = %v", comp)
	}
	if comp[4] != 4 {
		t.Fatalf("isolated component = %v", comp[4])
	}
	if st.Edges != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Direction must not matter: reverse edge graph gives same partition.
	rev := &csr.CSR{Off: []int64{0, 0, 1, 2, 3, 3}, Col: []uint64{0, 1, 2}, Val: []float64{1, 1, 1}}
	comp2, _ := WCC(CSRGraph{rev})
	if comp2[0] != comp2[3] {
		t.Fatalf("reversed chain components = %v", comp2)
	}
}

// randomCSR builds a random simple graph for cross-implementation checks.
func randomCSR(seed int64, n, avgDeg int) *csr.CSR {
	r := rand.New(rand.NewSource(seed))
	c := &csr.CSR{Off: make([]int64, n+1)}
	for u := 0; u < n; u++ {
		deg := r.Intn(avgDeg * 2)
		used := map[uint64]bool{}
		var cols []uint64
		for len(cols) < deg {
			v := uint64(r.Intn(n))
			if !used[v] {
				used[v] = true
				cols = append(cols, v)
			}
		}
		sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
		for _, v := range cols {
			c.Col = append(c.Col, v)
			c.Val = append(c.Val, float64(r.Intn(9)+1))
		}
		c.Off[u+1] = int64(len(c.Col))
	}
	return c
}

// The same graph served by CSR and by the dynamic structure must give
// identical analytics results (neighbor iteration order may differ, results
// may not).
func TestKernelsAgreeAcrossStructures(t *testing.T) {
	c := randomCSR(11, 300, 4)
	dg := dyngraph.FromCSR(c)

	l1, _ := BFS(CSRGraph{c}, 0)
	l2, _ := BFS(dg, 0)
	if !reflect.DeepEqual(l1, l2) {
		t.Fatal("BFS differs between CSR and dynamic structure")
	}

	d1, _ := SSSP(CSRGraph{c}, 0)
	d2, _ := SSSP(dg, 0)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("SSSP differs at %d: %v vs %v", i, d1[i], d2[i])
		}
	}

	r1, _ := PageRank(CSRGraph{c}, 5, 0.85)
	r2, _ := PageRank(dg, 5, 0.85)
	for i := range r1 {
		if math.Abs(r1[i]-r2[i]) > 1e-12 {
			t.Fatalf("PageRank differs at %d: %v vs %v", i, r1[i], r2[i])
		}
	}

	c1, _ := WCC(CSRGraph{c})
	c2, _ := WCC(dg)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("WCC differs between CSR and dynamic structure")
	}
}

// Property checks on random graphs.
func TestBFSInvariants(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c := randomCSR(seed, 200, 3)
		g := CSRGraph{c}
		levels, _ := BFS(g, 0)
		if levels[0] != 0 {
			t.Fatal("source level != 0")
		}
		// Edge relaxation: level[v] <= level[u]+1 for reachable u.
		for u := 0; u < c.NumNodes(); u++ {
			if levels[u] == Unreachable {
				continue
			}
			g.ForEachNeighbor(uint64(u), func(v uint64, _ float64) bool {
				if levels[v] == Unreachable || levels[v] > levels[u]+1 {
					t.Fatalf("seed %d: BFS level invariant broken on %d→%d (%d, %d)",
						seed, u, v, levels[u], levels[v])
				}
				return true
			})
		}
	}
}

func TestSSSPInvariants(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c := randomCSR(seed+100, 200, 3)
		g := CSRGraph{c}
		dist, _ := SSSP(g, 0)
		if dist[0] != 0 {
			t.Fatal("source dist != 0")
		}
		// Triangle inequality on every edge from a reachable node.
		for u := 0; u < c.NumNodes(); u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			g.ForEachNeighbor(uint64(u), func(v uint64, w float64) bool {
				if dist[v] > dist[u]+w+1e-9 {
					t.Fatalf("seed %d: SSSP not settled on %d→%d", seed, u, v)
				}
				return true
			})
		}
		// Consistency with BFS reachability.
		levels, _ := BFS(g, 0)
		for i := range dist {
			if (levels[i] == Unreachable) != math.IsInf(dist[i], 1) {
				t.Fatalf("seed %d: BFS/SSSP reachability disagrees at %d", seed, i)
			}
		}
	}
}

func TestWCCMatchesReferenceDFS(t *testing.T) {
	c := randomCSR(5, 120, 2)
	comp, _ := WCC(CSRGraph{c})
	// Reference: undirected DFS.
	adj := make([][]uint64, c.NumNodes())
	for u := 0; u < c.NumNodes(); u++ {
		col, _ := c.Row(uint64(u))
		for _, v := range col {
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], uint64(u))
		}
	}
	ref := make([]uint64, c.NumNodes())
	for i := range ref {
		ref[i] = math.MaxUint64
	}
	for s := 0; s < c.NumNodes(); s++ {
		if ref[s] != math.MaxUint64 {
			continue
		}
		stack := []uint64{uint64(s)}
		ref[s] = uint64(s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if ref[v] == math.MaxUint64 {
					ref[v] = uint64(s)
					stack = append(stack, v)
				}
			}
		}
	}
	for i := range comp {
		for j := range comp {
			if (comp[i] == comp[j]) != (ref[i] == ref[j]) {
				t.Fatalf("WCC partition differs from DFS at (%d,%d)", i, j)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	empty := &csr.CSR{Off: []int64{0}}
	if r, _ := PageRank(CSRGraph{empty}, 3, 0.85); r != nil {
		t.Fatalf("PageRank on empty graph = %v", r)
	}
	if l, _ := BFS(CSRGraph{empty}, 0); len(l) != 0 {
		t.Fatalf("BFS on empty graph = %v", l)
	}
	if c, _ := WCC(CSRGraph{empty}); len(c) != 0 {
		t.Fatalf("WCC on empty graph = %v", c)
	}
}
