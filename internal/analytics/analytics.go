// Package analytics implements the graph algorithms of the paper's
// analytical workload — BFS, PageRank and SSSP from LDBC Graphalytics
// (§6.2), plus WCC (§1) — over a common read-only graph view served by
// either replica structure (CSR or the dynamic hash-table graph) or by the
// CPU-side Sortledton structure.
//
// Algorithms compute real results on the host and report their work in
// traversed edges; callers executing "on the GPU" charge that work to the
// simulated device's kernel model (internal/gpu), which is how Table 1's
// GPU analytics times are reproduced.
package analytics

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"h2tap/internal/csr"
)

// Graph is the read-only view the kernels traverse.
type Graph interface {
	// NumVertexSlots reports the vertex ID space (absent slots allowed).
	NumVertexSlots() int
	// Degree reports the out-degree of u.
	Degree(u uint64) int
	// ForEachNeighbor visits u's out-edges until fn returns false.
	ForEachNeighbor(u uint64, fn func(dst uint64, w float64) bool)
}

// CSRGraph adapts a csr.CSR to the Graph interface.
type CSRGraph struct{ C *csr.CSR }

// NumVertexSlots implements Graph.
func (g CSRGraph) NumVertexSlots() int { return g.C.NumNodes() }

// Degree implements Graph.
func (g CSRGraph) Degree(u uint64) int { return g.C.Degree(u) }

// ForEachNeighbor implements Graph.
func (g CSRGraph) ForEachNeighbor(u uint64, fn func(dst uint64, w float64) bool) {
	col, val := g.C.Row(u)
	for i := range col {
		if !fn(col[i], val[i]) {
			return
		}
	}
}

// WorkStats reports the work a kernel performed, in the units its device
// cost model is calibrated in (traversed/relaxed edges).
type WorkStats struct {
	Edges      float64
	Iterations int
}

// Unreachable is the BFS level of vertices not reached from the source.
const Unreachable int32 = -1

func workers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		return 1
	}
	return w
}

// parallelFor splits [0, n) across workers.
func parallelFor(n int, fn func(lo, hi int)) {
	w := workers()
	if n < 1024 || w == 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// BFS computes breadth-first levels from src. Level-synchronous with a
// shared frontier, the standard GPU formulation.
func BFS(g Graph, src uint64) ([]int32, WorkStats) {
	n := g.NumVertexSlots()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = Unreachable
	}
	if int(src) >= n {
		return levels, WorkStats{}
	}
	claimed := make([]atomic.Bool, n)
	levels[src] = 0
	claimed[src].Store(true)

	frontier := []uint64{src}
	var st WorkStats
	for depth := int32(1); len(frontier) > 0; depth++ {
		st.Iterations++
		next := make([][]uint64, workers())
		var edges atomic.Int64
		var wg sync.WaitGroup
		chunk := (len(frontier) + workers() - 1) / workers()
		if chunk == 0 {
			chunk = 1
		}
		wi := 0
		for lo := 0; lo < len(frontier); lo += chunk {
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(wi int, part []uint64) {
				defer wg.Done()
				var local []uint64
				var traversed int64
				for _, u := range part {
					g.ForEachNeighbor(u, func(v uint64, _ float64) bool {
						traversed++
						if !claimed[v].Load() && claimed[v].CompareAndSwap(false, true) {
							levels[v] = depth
							local = append(local, v)
						}
						return true
					})
				}
				next[wi] = local
				edges.Add(traversed)
			}(wi, frontier[lo:hi])
			wi++
		}
		wg.Wait()
		st.Edges += float64(edges.Load())
		frontier = frontier[:0]
		for _, part := range next {
			frontier = append(frontier, part...)
		}
	}
	return levels, st
}

// PageRank runs the classic power iteration with the given damping factor
// for a fixed number of iterations (the Graphalytics formulation). Dangling
// mass is redistributed uniformly. Ranks sum to 1 over all vertex slots.
func PageRank(g Graph, iters int, damping float64) ([]float64, WorkStats) {
	n := g.NumVertexSlots()
	if n == 0 {
		return nil, WorkStats{}
	}
	rank := make([]float64, n)
	init := 1.0 / float64(n)
	for i := range rank {
		rank[i] = init
	}
	nextBits := make([]atomic.Uint64, n)
	var st WorkStats

	for it := 0; it < iters; it++ {
		st.Iterations++
		base := (1 - damping) / float64(n)
		var danglingMu sync.Mutex
		var danglingSum float64

		parallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				nextBits[i].Store(0)
			}
		})
		var edges atomic.Int64
		parallelFor(n, func(lo, hi int) {
			var localDangling float64
			var traversed int64
			for u := lo; u < hi; u++ {
				deg := g.Degree(uint64(u))
				if deg == 0 {
					localDangling += rank[u]
					continue
				}
				share := damping * rank[u] / float64(deg)
				g.ForEachNeighbor(uint64(u), func(v uint64, _ float64) bool {
					traversed++
					atomicAddFloat(&nextBits[v], share)
					return true
				})
			}
			danglingMu.Lock()
			danglingSum += localDangling
			danglingMu.Unlock()
			edges.Add(traversed)
		})
		st.Edges += float64(edges.Load())
		redistribute := damping * danglingSum / float64(n)
		parallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rank[i] = base + redistribute + math.Float64frombits(nextBits[i].Load())
			}
		})
	}
	return rank, st
}

func atomicAddFloat(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		new_ := math.Float64bits(math.Float64frombits(old) + x)
		if bits.CompareAndSwap(old, new_) {
			return
		}
	}
}

// SSSP computes single-source shortest paths with a frontier-based
// Bellman-Ford (the common GPU formulation). Weights must be non-negative;
// a negative weight panics.
func SSSP(g Graph, src uint64) ([]float64, WorkStats) {
	n := g.NumVertexSlots()
	distBits := make([]atomic.Uint64, n)
	infBits := math.Float64bits(math.Inf(1))
	for i := range distBits {
		distBits[i].Store(infBits)
	}
	if int(src) >= n {
		return distsFrom(distBits), WorkStats{}
	}
	distBits[src].Store(0)
	inNext := make([]atomic.Bool, n)
	frontier := []uint64{src}
	var st WorkStats
	var negEdge atomic.Int64 // packs (src<<32|dst)+1 of an offending edge

	for len(frontier) > 0 {
		st.Iterations++
		next := make([][]uint64, workers())
		var edges atomic.Int64
		var wg sync.WaitGroup
		chunk := (len(frontier) + workers() - 1) / workers()
		if chunk == 0 {
			chunk = 1
		}
		wi := 0
		for lo := 0; lo < len(frontier); lo += chunk {
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(wi int, part []uint64) {
				defer wg.Done()
				var local []uint64
				var relaxed int64
				for _, u := range part {
					du := math.Float64frombits(distBits[u].Load())
					g.ForEachNeighbor(u, func(v uint64, w float64) bool {
						if w < 0 {
							negEdge.Store(int64(u)<<32 | int64(v) + 1)
							return false
						}
						relaxed++
						cand := du + w
						// Non-negative IEEE floats order like their bit
						// patterns, so CAS-min over bits is a valid
						// relaxation.
						for {
							old := distBits[v].Load()
							if math.Float64frombits(old) <= cand {
								break
							}
							if distBits[v].CompareAndSwap(old, math.Float64bits(cand)) {
								if !inNext[v].Load() && inNext[v].CompareAndSwap(false, true) {
									local = append(local, v)
								}
								break
							}
						}
						return true
					})
				}
				next[wi] = local
				edges.Add(relaxed)
			}(wi, frontier[lo:hi])
			wi++
		}
		wg.Wait()
		if e := negEdge.Load(); e != 0 {
			panic(fmt.Sprintf("analytics: SSSP negative weight on %d→%d", (e-1)>>32, (e-1)&0xffffffff))
		}
		st.Edges += float64(edges.Load())
		frontier = frontier[:0]
		for _, part := range next {
			frontier = append(frontier, part...)
		}
		for _, v := range frontier {
			inNext[v].Store(false)
		}
	}
	return distsFrom(distBits), st
}

func distsFrom(bits []atomic.Uint64) []float64 {
	out := make([]float64, len(bits))
	for i := range bits {
		out[i] = math.Float64frombits(bits[i].Load())
	}
	return out
}

// WCC computes weakly connected components (edges treated as undirected)
// via union-find with path halving. Each vertex's component is identified
// by its smallest member ID. Absent slots (degree 0 and untouched) form
// singleton components.
func WCC(g Graph) ([]uint64, WorkStats) {
	n := g.NumVertexSlots()
	parent := make([]uint64, n)
	for i := range parent {
		parent[i] = uint64(i)
	}
	var find func(x uint64) uint64
	find = func(x uint64) uint64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	var st WorkStats
	st.Iterations = 1
	for u := 0; u < n; u++ {
		g.ForEachNeighbor(uint64(u), func(v uint64, _ float64) bool {
			st.Edges++
			ru, rv := find(uint64(u)), find(v)
			if ru != rv {
				if ru < rv {
					parent[rv] = ru
				} else {
					parent[ru] = rv
				}
			}
			return true
		})
	}
	comp := make([]uint64, n)
	for i := range comp {
		comp[i] = find(uint64(i))
	}
	return comp, st
}
