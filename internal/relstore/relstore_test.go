package relstore

import (
	"math/rand"
	"testing"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
)

func seedGraph(t *testing.T, n int) *graph.Store {
	t.Helper()
	s := graph.NewStore()
	specs := make([]graph.NodeSpec, n)
	for i := range specs {
		specs[i] = graph.NodeSpec{Label: "P"}
	}
	if _, err := s.BulkLoad(specs, nil); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCaptureStoresFullObjects(t *testing.T) {
	s := seedGraph(t, 4)
	rs := New(s)
	s.AddCapturer(rs)

	tx := s.Begin()
	tx.AddRel(0, 1, "k", 1)
	tx.AddRel(0, 2, "k", 2)
	tx.Commit()
	tx2 := s.Begin()
	tx2.AddRel(0, 3, "k", 3)
	tx2.Commit()

	if rs.Records() != 2 {
		t.Fatalf("records = %d, want 2 (one version row per txn)", rs.Records())
	}
	// Full-object rows: record image + full adjacency each time.
	want := uint64(2*128 + (2+3)*16)
	if rs.ArrayBytes() != want {
		t.Fatalf("ArrayBytes = %d, want %d", rs.ArrayBytes(), want)
	}
}

func TestFootprintExceedsDeltaFE(t *testing.T) {
	s := seedGraph(t, 4)
	rs := New(s)
	fe := deltastore.NewVolatile()
	s.AddCapturer(rs)
	s.AddCapturer(fe)
	tx := s.Begin()
	tx.AddRel(0, 1, "k", 1)
	tx.Commit()
	if rs.ArrayBytes() < fe.ArrayBytes()*4 {
		t.Fatalf("R footprint %d not ≫ DELTA_FE %d", rs.ArrayBytes(), fe.ArrayBytes())
	}
}

func TestScanVisibilityAndConsumption(t *testing.T) {
	s := seedGraph(t, 4)
	rs := New(s)
	s.AddCapturer(rs)
	tx1 := s.Begin()
	tx1.AddRel(0, 1, "k", 1)
	tx1.Commit()
	tx2 := s.Begin()
	tx2.AddRel(2, 3, "k", 1)
	tx2.Commit()

	snap := rs.Scan(tx2.TS()) // tx2 invisible
	if snap.Records != 1 || len(snap.Rows) != 1 || snap.Rows[0].Node != 0 {
		t.Fatalf("snap = %+v", snap)
	}
	snap2 := rs.Scan(tx2.TS() + 1)
	if snap2.Records != 1 || snap2.Rows[0].Node != 2 {
		t.Fatalf("second cycle = %+v", snap2)
	}
	if again := rs.Scan(1 << 40); again.Records != 0 {
		t.Fatal("re-consumed rows")
	}
}

func TestNewestVersionWins(t *testing.T) {
	s := seedGraph(t, 4)
	rs := New(s)
	s.AddCapturer(rs)
	tx1 := s.Begin()
	tx1.AddRel(0, 1, "k", 1)
	tx1.Commit()
	tx2 := s.Begin()
	tx2.AddRel(0, 2, "k", 1)
	tx2.Commit()
	snap := rs.Scan(1 << 40)
	if len(snap.Rows) != 1 || len(snap.Rows[0].Adj) != 2 {
		t.Fatalf("newest full state should carry 2 edges: %+v", snap.Rows)
	}
}

// R and DELTA_FE must converge to identical replicas over a random
// transactional workload, each via its own merge path (the §6.8 comparison
// is about cost, not semantics).
func TestMergeMatchesDeltaFE(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		s := seedGraph(t, 16)
		fe := deltastore.NewVolatile()
		rs := New(s)
		s.AddCapturer(fe)
		s.AddCapturer(rs)
		base := csr.Build(s, s.Oracle().LastCommitted())
		feCSR, rCSR := base, base

		r := rand.New(rand.NewSource(seed))
		for cycle := 0; cycle < 4; cycle++ {
			for q := 0; q < 40; q++ {
				tx := s.Begin()
				a := uint64(r.Intn(int(s.NumNodeSlots())))
				var err error
				switch r.Intn(8) {
				case 0, 1, 2, 3:
					_, err = tx.AddRel(a, uint64(r.Intn(int(s.NumNodeSlots()))), "k", float64(r.Intn(9)+1))
				case 4, 5:
					var id uint64
					id, err = tx.AddNode("P", nil)
					if err == nil {
						_, err = tx.AddRel(a, id, "k", 1)
					}
				case 6:
					rels, oerr := tx.OutRels(a)
					if oerr != nil || len(rels) == 0 {
						tx.Abort()
						continue
					}
					err = tx.DeleteRel(rels[r.Intn(len(rels))].ID)
				case 7:
					err = tx.DeleteNode(a)
				}
				if err != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
			}
			tp := s.Oracle().Begin()
			feBatch := fe.Scan(tp.TS())
			rSnap := rs.Scan(tp.TS())
			tp.Commit()
			feCSR, _ = csr.Merge(feCSR, feBatch)
			rCSR = MergeCSR(rCSR, rSnap)
			if !csr.Equal(feCSR, rCSR) {
				t.Fatalf("seed %d cycle %d: R and DELTA_FE replicas diverge", seed, cycle)
			}
		}
	}
}

func TestClear(t *testing.T) {
	s := seedGraph(t, 2)
	rs := New(s)
	rs.Capture(&delta.TxDelta{TS: 1, Nodes: []delta.NodeDelta{{Node: 0, Inserted: true}}})
	rs.Clear()
	if rs.Records() != 0 || rs.ArrayBytes() != 0 {
		t.Fatal("clear left data")
	}
}

func TestEmptyDeltaIgnored(t *testing.T) {
	s := seedGraph(t, 2)
	rs := New(s)
	rs.Capture(&delta.TxDelta{TS: 1})
	if rs.Records() != 0 {
		t.Fatal("empty delta stored")
	}
}
