// Package relstore implements R, the §6.8 baseline: a direct conversion of
// relational HTAP delta-store designs (SQL Server column-store deltas [46],
// RateupDB's DeltaStore [47]) to graphs.
//
// The conversion carries over exactly the properties §6.8 blames for its
// suboptimal performance:
//
//  1. Entries store *full graph objects with complete MVCC information*:
//     each version row materializes the whole updated node object — its
//     record image plus its full adjacency state — with txn-id/begin/end/
//     read-timestamp columns, "thereby increasing the delta store size and
//     the update propagation overhead".
//  2. Entries are *updateable*: rows live in a keyed index (the clustered
//     row-store index of [46]); every commit performs a lookup and a
//     visibility walk over the node's version chain before installing the
//     new version — "additional overhead in lookups during transaction
//     commits", instead of DELTA_FE's lookup-free contention-free appends.
//  3. The scan walks version chains applying MVCC visibility per row and
//     reads the full object payloads.
//
// Replica updates therefore use whole-row replacement (like DELTA_I's
// merge), since each row carries the node's full state.
package relstore

import (
	"sort"
	"sync"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/deltai"
	"h2tap/internal/mvto"
)

// recordImageBytes models the fixed part of a materialized node object
// (record header, label, property block reference, MVCC columns).
const recordImageBytes = 128

// versionRow is one MVCC version of one node's delta entry: the full
// object image as of the writing transaction.
type versionRow struct {
	// MVCC columns.
	txnID uint64
	bts   mvto.TS
	ets   mvto.TS
	rts   mvto.TS

	valid   bool
	deleted bool
	adj     []delta.Edge // full adjacency state (the "full graph object")
	image   [recordImageBytes]byte
}

// Store is the R delta store: a keyed index of updateable version chains.
type Store struct {
	src delta.AdjacencySource

	mu    sync.Mutex
	rows  map[uint64][]*versionRow
	count int
	bytes uint64

	scanSum uint64 // sink for the scan's full-payload reads
}

// New returns an empty R store reading full object states from src (the
// main graph), like a relational delta store materializing updated rows.
func New(src delta.AdjacencySource) *Store {
	return &Store{src: src, rows: make(map[uint64][]*versionRow)}
}

var _ delta.Capturer = (*Store)(nil)

// Capture installs one version row per updated node: an index lookup, an
// MVCC visibility walk over the node's existing chain, and a full-object
// materialization — the §6.8 commit-time overhead.
func (s *Store) Capture(d *delta.TxDelta) {
	if d.Empty() {
		return
	}
	// Materialize full object states outside the latch (graph reads),
	// then install under it.
	type staged struct {
		node    uint64
		deleted bool
		adj     []delta.Edge
	}
	rows := make([]staged, 0, len(d.Nodes))
	for i := range d.Nodes {
		nd := &d.Nodes[i]
		st := staged{node: nd.Node, deleted: nd.Deleted}
		if !nd.Deleted {
			st.adj = s.src.OutEdgesAt(nd.Node, d.TS)
		}
		rows = append(rows, st)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range rows {
		chain := s.rows[st.node] // keyed lookup
		// MVCC walk: find the newest version visible to this transaction
		// (the updateable-entry discipline; the result is superseded by
		// the new version).
		for i := len(chain) - 1; i >= 0; i-- {
			v := chain[i]
			if v.bts <= d.TS && d.TS < v.ets {
				v.ets = d.TS // close the superseded version's window
				break
			}
		}
		row := &versionRow{
			txnID: uint64(d.TS), bts: d.TS, ets: mvto.Infinity,
			valid: true, deleted: st.deleted,
			adj: append([]delta.Edge(nil), st.adj...),
		}
		for j := range row.image {
			row.image[j] = byte(st.node >> (j % 8 * 8))
		}
		s.rows[st.node] = append(chain, row)
		s.count++
		s.bytes += recordImageBytes + uint64(len(row.adj))*16
	}
}

// Records reports the number of version rows.
func (s *Store) Records() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(s.count)
}

// ArrayBytes reports the store footprint: full object images plus
// adjacency payloads (the §6.8 size comparison basis).
func (s *Store) ArrayBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Scan consumes rows visible to tp: for each chain, every valid row's
// visibility is MVCC-checked and its full payload read; the newest visible
// one becomes the node's staged state (whole-object semantics). Output
// rows are sorted by node and merge via whole-row replacement.
func (s *Store) Scan(tp mvto.TS) *deltai.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &deltai.Snapshot{TS: tp}
	var sum uint64 // forces the full-payload reads below to happen
	for node, chain := range s.rows {
		var newest *versionRow
		for _, row := range chain {
			if !row.valid || row.bts >= tp {
				continue
			}
			row.valid = false
			row.rts = tp // the propagation transaction's read, recorded
			snap.Records++
			// Full-payload read: each consumed row's whole object image is
			// fetched and decoded (the data-volume cost of full-object
			// rows that §6.8 attributes to the conversion).
			for _, e := range row.adj {
				sum += e.Dst
			}
			sum += uint64(row.image[0]) + uint64(row.image[recordImageBytes-1])
			if newest == nil || row.bts > newest.bts {
				newest = row
			}
		}
		if newest == nil {
			continue
		}
		adj := make([]delta.Edge, len(newest.adj))
		copy(adj, newest.adj)
		snap.Rows = append(snap.Rows, deltai.Row{
			Node: node, Deleted: newest.deleted, Adj: adj,
		})
	}
	s.scanSum = sum
	sort.Slice(snap.Rows, func(i, j int) bool { return snap.Rows[i].Node < snap.Rows[j].Node })
	return snap
}

// MergeCSR applies a scan snapshot to a CSR by whole-row replacement (the
// only merge full-object rows support).
func MergeCSR(old *csr.CSR, snap *deltai.Snapshot) *csr.CSR {
	return deltai.MergeCSR(old, snap)
}

// Clear empties the store.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = make(map[uint64][]*versionRow)
	s.count = 0
	s.bytes = 0
}
