package htap

import (
	"sync"
	"testing"

	"h2tap/internal/csr"
	"h2tap/internal/workload"
)

// runEngineRace races committer goroutines against propagation cycles and
// returns the total records the cycles consumed. Each mid-race cycle only
// checks structural invariants (concurrent commits make the exact replica
// content a moving target); the caller quiesces and verifies equivalence.
func runEngineRace(t *testing.T, e *Engine, ops []workload.Op, committers, cycles int) int {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	var res workload.Result
	go func() {
		defer wg.Done()
		res = workload.RunParallel(e.Store(), ops, committers)
	}()

	consumed := 0
	lastTS := e.ReplicaTS()
	for i := 0; i < cycles; i++ {
		rep, err := e.Propagate()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		consumed += rep.Records
		if rep.TS < lastTS {
			t.Fatalf("cycle %d: replica TS went backwards (%d -> %d)", i, lastTS, rep.TS)
		}
		lastTS = rep.TS
		if c := e.HostCSR(); c != nil {
			if err := c.Validate(); err != nil {
				t.Fatalf("cycle %d: replica CSR invalid: %v", i, err)
			}
		}
	}
	wg.Wait()
	if res.Committed == 0 {
		t.Fatal("committers committed nothing")
	}
	return consumed
}

// TestEnginePropagateRaceStress is the full-engine extension of the delta
// store's capture race test: N committer goroutines race M Propagate
// cycles. After quiescing and one final cycle, the replica must equal the
// committed-prefix CSR, and the cycles together must have consumed every
// captured record exactly once — a record applied twice or dropped would
// break either the record accounting or the final equivalence (a
// re-applied insert resurrects an edge a later delta deleted).
func TestEnginePropagateRaceStress(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"static-serial", Config{Replica: StaticCSR, Workers: 1}},
		{"static-parallel", Config{Replica: StaticCSR, Workers: 4}},
		{"dynamic-parallel", Config{Replica: DynamicHash, Workers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, d := newLoadedEngine(t, tc.cfg)
			ts := e.Store().Oracle().LastCommitted()
			win := workload.DegreeWindow(e.Store(), ts, alivePersons(e, d), workload.HiDeg, 20)
			nOps := 4000
			if testing.Short() {
				nOps = 800
			}
			g := workload.NewGenerator(win, d.Posts, 42)
			ops := g.Mixed(nOps)

			consumed := runEngineRace(t, e, ops, 6, 8)

			// Quiesce: committers are done; one final cycle drains whatever
			// the racing cycles skipped (records unpublished at scan time).
			rep, err := e.Propagate()
			if err != nil {
				t.Fatal(err)
			}
			consumed += rep.Records

			if total := int(e.DeltaStore().Records()); consumed != total {
				t.Fatalf("cycles consumed %d records, store captured %d (lost or double-applied)",
					consumed, total)
			}
			want := csr.Build(e.Store(), rep.TS-1)
			var got *csr.CSR
			switch tc.cfg.Replica {
			case StaticCSR:
				got = e.HostCSR()
			case DynamicHash:
				got = e.dynRep.Graph().ToCSR()
				if err := e.dynRep.Graph().Validate(); err != nil {
					t.Fatal(err)
				}
			}
			if !csr.Equal(got, want) {
				n := got.NumNodes()
				if want.NumNodes() > n {
					n = want.NumNodes()
				}
				diffs := 0
				for u := 0; u < n && diffs < 5; u++ {
					gc, gv := got.Row(uint64(u))
					wc, wv := want.Row(uint64(u))
					if len(gc) != len(wc) {
						t.Logf("node %d: replica row %v %v, store row %v %v", u, gc, gv, wc, wv)
						diffs++
						continue
					}
					for i := range gc {
						if gc[i] != wc[i] || gv[i] != wv[i] {
							t.Logf("node %d: replica row %v %v, store row %v %v", u, gc, gv, wc, wv)
							diffs++
							break
						}
					}
				}
				t.Fatal("replica diverged from committed-prefix CSR after quiesce")
			}
			if !e.Fresh() {
				t.Fatal("engine stale after quiesce + propagate")
			}
		})
	}
}

// TestPropagateOverlapsTransfer checks the workers>1 static path: merged
// node-range segments stream to the device while later shards merge, so
// the report carries the full bus time and only the exposed tail on the
// critical path — and the replica bytes are unaffected by the pipelining.
func TestPropagateOverlapsTransfer(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR, Workers: 4})
	runMixed(t, e, d, 300, 11)
	rep, err := e.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Overlapped || rep.Workers != 4 {
		t.Fatalf("report = %+v, want overlapped with 4 workers", rep)
	}
	if rep.TransferBusSim <= 0 {
		t.Fatal("no bus time charged")
	}
	if rep.TransferSim > rep.TransferBusSim {
		t.Fatalf("exposed transfer %v exceeds bus time %v", rep.TransferSim, rep.TransferBusSim)
	}
	want := csr.Build(e.Store(), rep.TS-1)
	if !csr.Equal(e.HostCSR(), want) {
		t.Fatal("replica diverged after overlapped propagation")
	}
	// The device must have been charged the whole CSR, not just the tail.
	if e.Device().BytesToDevice() < e.HostCSR().Bytes() {
		t.Fatal("streamed replace moved fewer bytes than the replica holds")
	}
}
