package htap

import (
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"h2tap/internal/analytics"
	"h2tap/internal/costmodel"
	"h2tap/internal/csr"
	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
	"h2tap/internal/ldbc"
	"h2tap/internal/mvto"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
	"h2tap/internal/workload"
)

func newLoadedEngine(t *testing.T, cfg Config) (*Engine, *ldbc.Dataset) {
	t.Helper()
	d := ldbc.GenerateSNB(ldbc.SNBConfig{SF: 1, Downscale: 100, Seed: 1})
	s := graph.NewStore()
	if _, err := d.Load(s); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func runMixed(t *testing.T, e *Engine, d *ldbc.Dataset, n int, seed int64) {
	t.Helper()
	ts := e.Store().Oracle().LastCommitted()
	win := workload.DegreeWindow(e.Store(), ts, alivePersons(e, d), workload.HiDeg, 20)
	g := workload.NewGenerator(win, d.Posts, seed)
	res := workload.Run(e.Store(), g.Mixed(n))
	if res.Committed == 0 {
		t.Fatal("mixed workload committed nothing")
	}
}

func alivePersons(e *Engine, d *ldbc.Dataset) []graph.NodeID {
	ts := e.Store().Oracle().LastCommitted()
	var out []graph.NodeID
	for _, id := range d.Persons {
		if e.Store().NodeExistsAt(id, ts) {
			out = append(out, id)
		}
	}
	return out
}

func TestEngineInitFresh(t *testing.T) {
	e, _ := newLoadedEngine(t, Config{Replica: StaticCSR})
	if !e.Fresh() {
		t.Fatal("engine stale right after init")
	}
	// Replica equals a direct build.
	want := csr.Build(e.Store(), e.Store().Oracle().LastCommitted())
	if !csr.Equal(e.HostCSR(), want) {
		t.Fatal("initial replica differs from build")
	}
	if e.Device().MemUsed() == 0 {
		t.Fatal("replica occupies no device memory")
	}
}

func TestStaleThenPropagate(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR})
	runMixed(t, e, d, 300, 7)
	if e.Fresh() {
		t.Fatal("engine fresh despite committed updates")
	}
	rep, err := e.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Triggered || rep.Records == 0 || rep.Rebuild {
		t.Fatalf("report = %+v", rep)
	}
	if rep.TransferSim <= 0 {
		t.Fatal("no transfer charged")
	}
	if !e.Fresh() {
		t.Fatal("engine stale after propagation")
	}
	want := csr.Build(e.Store(), rep.TS-1)
	if !csr.Equal(e.HostCSR(), want) {
		t.Fatal("replica diverged after propagation")
	}
}

func TestPropertyOnlyTxnsStayFresh(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR})
	tx := e.Store().Begin()
	if err := tx.SetNodeProp(d.Persons[0], "age", graph.Int(30)); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if !e.Fresh() {
		t.Fatal("property-only commit marked replica stale")
	}
}

func TestRunAnalyticsTriggersPropagation(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR})
	runMixed(t, e, d, 200, 3)
	res, err := e.RunAnalytics(BFS, d.Persons[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Propagation.Triggered {
		t.Fatal("no propagation before analytics on stale replica")
	}
	if res.KernelSim <= 0 || res.TotalLatency() <= 0 {
		t.Fatalf("latency breakdown = %+v", res)
	}
	// Correctness: same result as running on a fresh rebuild.
	want, _ := analytics.BFS(analytics.CSRGraph{C: csr.Build(e.Store(), res.Propagation.TS-1)}, d.Persons[0])
	if !reflect.DeepEqual(res.Levels, want) {
		t.Fatal("analytics after propagation differ from rebuild truth")
	}
	// Second run without new commits: no propagation.
	res2, err := e.RunAnalytics(BFS, d.Persons[0])
	if err != nil {
		t.Fatal(err)
	}
	if res2.Propagation.Triggered {
		t.Fatal("redundant propagation on fresh replica")
	}
}

func TestDynamicReplicaPath(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: DynamicHash})
	runMixed(t, e, d, 300, 5)
	res, err := e.RunAnalytics(PageRank, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Propagation.Triggered {
		t.Fatal("dynamic path skipped propagation")
	}
	// Cross-check against a static engine fed the same final graph state.
	want, _ := analytics.PageRank(
		analytics.CSRGraph{C: csr.Build(e.Store(), res.Propagation.TS-1)}, 10, 0.85)
	for i := range want {
		if math.Abs(res.Ranks[i]-want[i]) > 1e-9 {
			t.Fatalf("dynamic-path PageRank differs at %d", i)
		}
	}
}

func TestAllAnalyticsKinds(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR})
	for _, kind := range []AnalyticsKind{BFS, PageRank, SSSP, WCC, CDLP, LCC} {
		res, err := e.RunAnalytics(kind, d.Persons[0])
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		switch kind {
		case BFS:
			if res.Levels == nil {
				t.Fatalf("%s: no result", kind)
			}
		case PageRank:
			if res.Ranks == nil {
				t.Fatalf("%s: no result", kind)
			}
		case SSSP:
			if res.Dists == nil {
				t.Fatalf("%s: no result", kind)
			}
		case WCC, CDLP:
			if res.Comp == nil {
				t.Fatalf("%s: no result", kind)
			}
		case LCC:
			if res.Coef == nil {
				t.Fatalf("%s: no result", kind)
			}
		}
		if res.KernelSim <= 0 {
			t.Fatalf("%s: no simulated kernel time", kind)
		}
	}
	if _, err := e.RunAnalytics("pagerank2", 0); !errors.Is(err, ErrUnknownAnalytics) {
		t.Fatalf("unknown kind = %v", err)
	}
}

func TestCostModelRebuildPath(t *testing.T) {
	// A model whose threshold is tiny forces rebuild mode quickly.
	m := &costmodel.Model{
		Scan:    costmodel.Linear{A: 0, B: 1}, // absurdly expensive per delta
		Modify:  costmodel.Linear{A: 0, B: 1},
		Copy:    costmodel.Linear{A: 0, B: 0},
		Rebuild: costmodel.Linear{A: 10, B: 0}, // rebuild costs 10s flat → threshold = 5
	}
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR, CostModel: m})
	if e.DeltaStore().Threshold() != 5 {
		t.Fatalf("threshold = %d, want 5", e.DeltaStore().Threshold())
	}
	runMixed(t, e, d, 400, 11)
	if e.DeltaStore().DeltaMode() {
		t.Fatal("delta mode survived threshold overflow")
	}
	rep, err := e.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rebuild {
		t.Fatal("propagation did not rebuild")
	}
	if !e.DeltaStore().DeltaMode() {
		t.Fatal("delta mode not re-enabled after rebuild (§6.4)")
	}
	if e.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d", e.Rebuilds())
	}
	// Replica consistent after the rebuild path.
	want := csr.Build(e.Store(), rep.TS-1)
	if !csr.Equal(e.HostCSR(), want) {
		t.Fatal("rebuilt replica diverged")
	}
	// And the delta path works again afterwards.
	runMixed(t, e, d, 3, 13)
	rep2, err := e.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Rebuild {
		t.Fatal("second propagation should merge, not rebuild")
	}
}

func TestPersistentCSRCopy(t *testing.T) {
	pool, err := pmem.Create(filepath.Join(t.TempDir(), "csr.pool"), 256<<20, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR, PersistPool: pool})
	runMixed(t, e, d, 100, 2)
	rep, err := e.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PersistWall <= 0 {
		t.Fatal("persistent copy not made")
	}
	if pool.SimTime() <= 0 {
		t.Fatal("persistent copy charged no media time")
	}
}

func TestQueueConcurrentAndStale(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR})
	q := NewQueue(e)

	// Fresh batch: all run on the same replica version.
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := q.Submit(BFS, d.Persons[i])
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Propagations() != 0 {
		t.Fatalf("fresh submissions triggered %d propagations", e.Propagations())
	}

	// Stale request: exactly one propagation.
	runMixed(t, e, d, 100, 21)
	tk1, _ := q.Submit(PageRank, 0)
	tk2, _ := q.Submit(SSSP, d.Persons[0])
	r1, err := tk1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk2.Wait(); err != nil {
		t.Fatal(err)
	}
	if !r1.Propagation.Triggered {
		t.Fatal("stale request did not propagate")
	}
	if e.Propagations() != 1 {
		t.Fatalf("propagations = %d, want 1 (second request reuses fresh replica)", e.Propagations())
	}

	q.Close()
	if _, err := q.Submit(BFS, 0); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after close = %v", err)
	}
}

func TestCalibrateProducesUsableModel(t *testing.T) {
	d := ldbc.GenerateSNB(ldbc.SNBConfig{SF: 1, Downscale: 50, Seed: 1})
	s := graph.NewStore()
	if _, err := d.Load(s); err != nil {
		t.Fatal(err)
	}
	m, err := Calibrate(s)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted model must at least order the regimes correctly: rebuild
	// cost grows with graph size, scan cost with delta count.
	if m.Rebuild.Predict(1e6) <= m.Rebuild.Predict(1e3) {
		t.Fatalf("rebuild model not increasing: %+v", m.Rebuild)
	}
	if m.Scan.Predict(1e6) <= m.Scan.Predict(1e3) {
		t.Fatalf("scan model not increasing: %+v", m.Scan)
	}
}

func TestNewEngineWithExistingCapturer(t *testing.T) {
	d := ldbc.GenerateSNB(ldbc.SNBConfig{SF: 1, Downscale: 100, Seed: 1})
	s := graph.NewStore()
	ds := deltastore.NewVolatile()
	s.AddCapturer(ds)
	if _, err := d.Load(s); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngineWithExistingCapturer(s, Config{}); err == nil {
		t.Fatal("missing DeltaStore accepted")
	}
	e, err := NewEngineWithExistingCapturer(s, Config{DeltaStore: ds})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-engine deltas were consumed (the load predates the capturer, but
	// even explicit pre-engine commits must not double-apply).
	if e.DeltaStore().PendingAt(1 << 40) {
		t.Fatal("pre-engine deltas still pending")
	}
	// One capturer only: a commit produces exactly one batch of records.
	tx := s.Begin()
	a := d.Persons[0]
	b := d.Posts[0]
	if _, err := tx.AddRel(a, b, "likes", 1); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if got := ds.Records(); got != 1 {
		t.Fatalf("records after one commit = %d (double registration?)", got)
	}
}

func TestReplicaKindStrings(t *testing.T) {
	if StaticCSR.String() != "static-csr" || DynamicHash.String() != "dynamic" {
		t.Fatal("replica kind names wrong")
	}
}

func TestDynamicRebuildPath(t *testing.T) {
	m := &costmodel.Model{
		Scan:    costmodel.Linear{B: 1},
		Modify:  costmodel.Linear{B: 1},
		Rebuild: costmodel.Linear{A: 10},
	}
	e, d := newLoadedEngine(t, Config{Replica: DynamicHash, CostModel: m})
	runMixed(t, e, d, 400, 17)
	if e.DeltaStore().DeltaMode() {
		t.Fatal("delta mode survived threshold overflow")
	}
	rep, err := e.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rebuild {
		t.Fatal("dynamic replica did not rebuild")
	}
	// The rebuilt dynamic replica serves correct analytics.
	res, err := e.RunAnalytics(BFS, d.Persons[0])
	if err != nil {
		t.Fatal(err)
	}
	want, _ := analytics.BFS(analytics.CSRGraph{C: csr.Build(e.Store(), rep.TS-1)}, d.Persons[0])
	if !reflect.DeepEqual(res.Levels, want) {
		t.Fatal("dynamic rebuild produced wrong replica")
	}
}

// The §4.3 pipeline under fire: a continuous update stream racing a stream
// of queued analytics. Every result must be internally consistent and the
// freshness watermark must only move forward.
func TestQueuePipelineUnderConcurrentUpdates(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR})
	q := NewQueue(e)
	defer q.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ts := e.Store().Oracle().LastCommitted()
		win := workload.DegreeWindow(e.Store(), ts, d.Persons, workload.HiDeg, 50)
		g := workload.NewGenerator(win, d.Posts, 77)
		for {
			select {
			case <-stop:
				return
			default:
			}
			workload.Run(e.Store(), g.Mixed(50))
		}
	}()

	var lastTS mvto.TS
	for round := 0; round < 15; round++ {
		t1, err := q.Submit(BFS, d.Persons[0])
		if err != nil {
			t.Fatal(err)
		}
		t2, err := q.Submit(WCC, 0)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := t1.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := t2.Wait(); err != nil {
			t.Fatal(err)
		}
		if r1.Levels[d.Persons[0]] != 0 {
			t.Fatal("BFS source corrupted")
		}
		cur := e.ReplicaTS()
		if cur < lastTS {
			t.Fatalf("freshness watermark regressed: %d < %d", cur, lastTS)
		}
		lastTS = cur
	}
	close(stop)
	<-done

	// Quiesce, propagate, verify the replica converged to the main graph.
	rep, err := e.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	want := csr.Build(e.Store(), rep.TS-1)
	if !csr.Equal(e.HostCSR(), want) {
		t.Fatal("replica diverged after pipelined rounds")
	}
}

func TestQueueCloseIdempotent(t *testing.T) {
	e, _ := newLoadedEngine(t, Config{Replica: StaticCSR})
	q := NewQueue(e)
	q.Close()
	q.Close()
}
