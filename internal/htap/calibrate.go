package htap

import (
	"math/rand"
	"time"

	"h2tap/internal/costmodel"
	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
	"h2tap/internal/mvto"
)

// Calibrate measures the four §6.4 cost components on the current graph and
// fits the cost model at the default worker count: CSR rebuild and copy
// against graph size, delta store scan and merge-modify against delta
// count. Scan and merge samples use a scratch delta store fed synthetic
// single-edge deltas, so calibration leaves the production delta store
// untouched.
func Calibrate(store *graph.Store) (*costmodel.Model, error) {
	return CalibrateWorkers(store, 0)
}

// CalibrateAll fits one model per worker count, for Config.CostModels: the
// scan/copy/modify/rebuild coefficients all shift with the degree of
// parallelism, so the merge-vs-rebuild threshold is only meaningful when
// evaluated against the worker count propagation actually uses.
func CalibrateAll(store *graph.Store, counts []int) (*costmodel.WorkerModels, error) {
	wm := costmodel.NewWorkerModels()
	for _, w := range counts {
		m, err := CalibrateWorkers(store, w)
		if err != nil {
			return nil, err
		}
		wm.Put(w, m)
	}
	return wm, nil
}

// CalibrateWorkers is Calibrate with an explicit worker count for the
// scan, merge and rebuild measurements (<= 0 selects the default).
func CalibrateWorkers(store *graph.Store, workers int) (*costmodel.Model, error) {
	ts := store.Oracle().LastCommitted()
	var cal costmodel.Calibration

	// Rebuild and copy vs graph size: two points, the empty snapshot and
	// the current graph (linear interpolation matches the memcpy-bound
	// behaviour the paper measures in Fig 9).
	emptyStart := time.Now()
	empty := csr.BuildWorkers(store, 0, workers)
	cal.AddRebuild(float64(empty.NumEdges()), time.Since(emptyStart).Seconds())

	fullStart := time.Now()
	full := csr.BuildWorkers(store, ts, workers)
	cal.AddRebuild(float64(full.NumEdges()), time.Since(fullStart).Seconds())

	copyStart := time.Now()
	_ = empty.Copy()
	cal.AddCopy(float64(empty.NumEdges()), time.Since(copyStart).Seconds())
	copyStart = time.Now()
	_ = full.Copy()
	copySecs := time.Since(copyStart).Seconds()
	cal.AddCopy(float64(full.NumEdges()), copySecs)

	// Scan and modify vs delta count: synthetic single-insert deltas over
	// the existing node range at three sizes.
	n := store.NumNodeSlots()
	if n < 2 {
		n = 2
	}
	r := rand.New(rand.NewSource(0x43414c))
	for _, deltas := range []int{1 << 10, 1 << 12, 1 << 14} {
		scratch := deltastore.NewVolatile()
		for i := 0; i < deltas; i++ {
			scratch.Capture(&delta.TxDelta{
				TS: mvto.TS(i + 1),
				Nodes: []delta.NodeDelta{{
					Node: uint64(r.Intn(int(n))),
					Ins:  []delta.Edge{{Dst: uint64(r.Intn(int(n))), W: 1}},
				}},
			})
		}
		scanStart := time.Now()
		batch := scratch.ScanWorkers(mvto.TS(deltas+2), workers)
		cal.AddScan(float64(deltas), time.Since(scanStart).Seconds())

		mergeStart := time.Now()
		merged, _ := csr.MergeWorkers(full, batch, workers)
		mergeSecs := time.Since(mergeStart).Seconds()
		_ = merged
		modify := mergeSecs - copySecs
		if modify < 0 {
			modify = 0
		}
		cal.AddModify(float64(deltas), modify)
	}
	return cal.Fit()
}
