// Engine-side wiring into the observability layer (internal/obs). The
// substrates below the engine (mvto, deltastore, wal, gpu) stay obs-free:
// they expose plain func hooks and pull-based counters, and this file is
// where an engine with cfg.Obs set connects them — push hooks for the
// per-event histograms (commit latency, delta appends), GaugeFunc /
// CounterFunc registrations evaluated at scrape time for everything the
// substrates already count. With cfg.Obs nil, none of this runs and the hot
// paths pay a single nil check.
package htap

import (
	"log"
	"strconv"
	"time"

	"h2tap/internal/gpu"
	"h2tap/internal/obs"
)

// itoa is strconv.Itoa, short enough to use in span args inline.
func itoa(n int) string { return strconv.Itoa(n) }

// modelDur converts a cost-model prediction in seconds to a duration,
// clamping the negative values a linear fit's intercept can produce.
func modelDur(secs float64) time.Duration {
	if secs <= 0 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}

// wireObs connects the engine and its substrates to cfg.Obs. Called once
// from newEngine; re-registration over a shared Observer (experiments
// building several engines) follows last-wins semantics for funcs and
// gauges, while counters and histograms keep accumulating.
func (e *Engine) wireObs() {
	o := e.cfg.Obs
	if o == nil {
		return
	}

	e.store.Oracle().SetCommitObserver(o.ObserveCommit)
	e.ds.SetAppendObserver(func(records, ins, dels int) { o.DeltaAppend(records, ins, dels) })
	o.SetHealthSource(func() (bool, string) {
		h, err := e.Health()
		if h == Degraded {
			st := e.Staleness()
			detail := "degraded"
			if err != nil {
				detail = err.Error()
			}
			return false, detail + "; pending=" + itoa(st.PendingRecords) +
				" ts_lag=" + strconv.FormatUint(st.TSLag, 10)
		}
		return true, "replica fresh within bound"
	})

	r := o.Reg
	r.GaugeFunc("h2tap_health_state",
		"Engine availability state: 0 healthy, 1 degraded.",
		func() float64 {
			if h, _ := e.Health(); h == Degraded {
				return 1
			}
			return 0
		})
	r.GaugeFunc("h2tap_staleness_ts_lag",
		"Upper bound on commit timestamps the replica may be missing.",
		func() float64 { return float64(e.Staleness().TSLag) })
	r.GaugeFunc("h2tap_staleness_pending_records",
		"Captured, still-unconsumed delta records from finished transactions.",
		func() float64 { return float64(e.Staleness().PendingRecords) })
	r.GaugeFunc("h2tap_replica_ts",
		"Replica freshness watermark (reflects every transaction below it).",
		func() float64 { return float64(e.ReplicaTS()) })

	r.GaugeFunc("h2tap_delta_depth",
		"Published-but-unconsumed DELTA_FE records (replica ingestion backlog).",
		func() float64 { return float64(e.ds.Depth()) })
	r.GaugeFunc("h2tap_delta_array_bytes",
		"Byte footprint of the DELTA_FE payload arrays.",
		func() float64 { return float64(e.ds.ArrayBytes()) })
	r.GaugeFunc("h2tap_delta_mode",
		"§6.4 delta-mode flag: 1 while delta propagation beats a rebuild.",
		func() float64 {
			if e.ds.DeltaMode() {
				return 1
			}
			return 0
		})
	r.CounterFunc("h2tap_delta_skipped_txns_total",
		"Committed transactions whose deltas were skipped (rebuild mode).",
		func() float64 { return float64(e.ds.SkippedTxns()) })

	for _, g := range []struct {
		op string
		fn func(gpu.DeviceStats) int64
	}{
		{"malloc", func(s gpu.DeviceStats) int64 { return s.Mallocs }},
		{"upload", func(s gpu.DeviceStats) int64 { return s.Uploads }},
		{"replace", func(s gpu.DeviceStats) int64 { return s.Replaces }},
		{"replace-streamed", func(s gpu.DeviceStats) int64 { return s.ReplacesStreamed }},
		{"ingest", func(s gpu.DeviceStats) int64 { return s.Ingests }},
		{"launch", func(s gpu.DeviceStats) int64 { return s.Launches }},
	} {
		fn := g.fn
		r.CounterFunc("h2tap_gpu_ops_total",
			"Successful simulated device operations by kind.",
			func() float64 { return float64(fn(e.dev.Stats())) }, obs.L("op", g.op))
	}
	r.CounterFunc("h2tap_gpu_faults_injected_total",
		"Device operations failed by the fault injector.",
		func() float64 { return float64(e.dev.Stats().FaultsInjected) })
	r.CounterFunc("h2tap_gpu_bytes_total",
		"Bytes moved across the simulated PCIe link by direction.",
		func() float64 { return float64(e.dev.Stats().BytesToDevice) }, obs.L("dir", "h2d"))
	r.CounterFunc("h2tap_gpu_bytes_total",
		"Bytes moved across the simulated PCIe link by direction.",
		func() float64 { return float64(e.dev.Stats().BytesToHost) }, obs.L("dir", "d2h"))
	r.GaugeFunc("h2tap_gpu_mem_used_bytes",
		"Allocated simulated device memory.",
		func() float64 { return float64(e.dev.MemUsed()) })
	r.CounterFunc("h2tap_gpu_sim_seconds_total",
		"Accumulated simulated device busy time.",
		func() float64 { return e.dev.Stats().SimTotal.Seconds() })
}

// observeCycle finishes one propagation cycle's observability: trace cycle
// args and publication, phase histograms, cycle counters, cost-model drift,
// the slow-cycle log line, and the OnCycle callback. Runs under propMu.
func (e *Engine) observeCycle(rep *PropagationReport, tc *obs.Cycle, err error) {
	o := e.cfg.Obs

	if tc != nil {
		tc.Arg("ts", strconv.FormatUint(uint64(rep.TS), 10))
		tc.Arg("records", itoa(rep.Records))
		tc.Arg("workers", itoa(rep.Workers))
		if rep.Rebuild {
			tc.Arg("rebuild", "cost-model")
		}
		if rep.FallbackRebuild {
			tc.Arg("rebuild", "fallback")
		}
		if err != nil {
			tc.Arg("err", err.Error())
		}
		tc.Finish()
	}

	if o != nil {
		if rep.ScanWall > 0 {
			o.ObservePhase("scan", rep.ScanWall)
		}
		if rep.MergeWall > 0 {
			if rep.Rebuild || rep.FallbackRebuild {
				o.ObservePhase("rebuild", rep.MergeWall)
			} else {
				o.ObservePhase("merge", rep.MergeWall)
			}
		}
		if rep.TransferBusSim > 0 {
			o.ObservePhase("transfer", time.Duration(rep.TransferBusSim))
		}
		if rep.IngestSim > 0 {
			o.ObservePhase("ingest", time.Duration(rep.IngestSim))
		}
		if rep.PersistWall > 0 {
			o.ObservePhase("persist", rep.PersistWall)
		}
		if rep.RetryWall > 0 {
			o.ObservePhase("retry", rep.RetryWall)
		}
		o.ObserveCycleDone(obs.CycleStats{
			OK:              err == nil,
			Total:           rep.Total.Total(),
			Records:         rep.Records,
			Deltas:          rep.Deltas,
			Attempts:        rep.Attempts,
			Rebuild:         rep.Rebuild || rep.FallbackRebuild,
			FallbackRebuild: rep.FallbackRebuild,
		})

		// Drift: compare the §6.4 predictions against the walls they model.
		// Only clean delta cycles feed scan/merge (a fallback's MergeWall
		// mixes a failed merge into the rebuild; rebuild drift is recorded
		// at the measurement site in rebuildReplica). Transfer drift uses
		// the full bus busy time, which is what the PCIe model predicts.
		if err == nil && rep.Predicted.FromModel && !rep.Rebuild && !rep.FallbackRebuild {
			o.RecordDrift("scan", rep.Predicted.Scan.Seconds(), rep.ScanWall.Seconds())
			if rep.Predicted.Merge > 0 {
				o.RecordDrift("merge", rep.Predicted.Merge.Seconds(), rep.MergeWall.Seconds())
			}
		}
		if err == nil && e.cfg.Replica == StaticCSR && rep.Predicted.Transfer > 0 && rep.TransferBusSim > 0 {
			o.RecordDrift("transfer", rep.Predicted.Transfer.Seconds(), rep.TransferBusSim.Seconds())
		}
	}

	if e.cfg.SlowCycle > 0 && rep.Total.Total() >= e.cfg.SlowCycle {
		logf := e.cfg.SlowCycleLog
		if logf == nil {
			logf = log.Printf
		}
		logf("htap: slow propagation cycle: total=%v scan=%v merge=%v transfer=%v(bus %v) ingest=%v persist=%v retry=%v attempts=%d records=%d deltas=%d workers=%d rebuild=%t fallback=%t health=%s err=%v",
			rep.Total.Total(), rep.ScanWall, rep.MergeWall, rep.TransferSim, rep.TransferBusSim,
			rep.IngestSim, rep.PersistWall, rep.RetryWall, rep.Attempts, rep.Records, rep.Deltas,
			rep.Workers, rep.Rebuild, rep.FallbackRebuild, rep.Health, err)
	}

	if e.cfg.OnCycle != nil {
		e.cfg.OnCycle(rep)
	}
}
