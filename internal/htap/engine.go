// Package htap wires the substrates into the paper's H2TAP system (Fig 1):
// transactions execute on the CPU main property graph, committing their
// topology changes into the DELTA_FE delta store; analytics execute on a
// GPU-resident structural replica (static CSR or dynamic hash-table graph)
// that update propagation keeps fresh (§4.2, §4.3). The engine implements
// the propagation transaction, the freshness check, the cost-model-driven
// merge-vs-rebuild decision (§6.4), and the optional persistent CSR copy
// for recovery (§6.5).
package htap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"h2tap/internal/analytics"
	"h2tap/internal/costmodel"
	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/deltastore"
	"h2tap/internal/dyngraph"
	"h2tap/internal/gpu"
	"h2tap/internal/graph"
	"h2tap/internal/mvto"
	"h2tap/internal/obs"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
)

// ReplicaKind selects the GPU-side data structure (§5.4).
type ReplicaKind int

// Replica kinds.
const (
	// StaticCSR keeps a CSR replica updated by delta merge + full transfer.
	StaticCSR ReplicaKind = iota
	// DynamicHash keeps a hash-table-per-vertex replica updated by
	// coalesced delta transfer + batched ingestion.
	DynamicHash
)

// String names the replica kind.
func (k ReplicaKind) String() string {
	if k == DynamicHash {
		return "dynamic"
	}
	return "static-csr"
}

// AnalyticsKind identifies a graph algorithm.
type AnalyticsKind string

// The supported analytics: the §6.2 Graphalytics selection (BFS, PageRank,
// SSSP) plus the remaining Graphalytics kernels (WCC, CDLP, LCC).
const (
	BFS      AnalyticsKind = "bfs"
	PageRank AnalyticsKind = "pagerank"
	SSSP     AnalyticsKind = "sssp"
	WCC      AnalyticsKind = "wcc"
	CDLP     AnalyticsKind = "cdlp"
	LCC      AnalyticsKind = "lcc"
)

// Config parameterizes an Engine.
type Config struct {
	Replica ReplicaKind
	// Device is the simulated GPU; nil selects gpu.DefaultA100.
	Device *gpu.Device
	// DeltaStore is the DELTA_FE instance; nil selects a fresh volatile
	// store. Pass a pmem-backed store for the §6.5 persistent variant.
	DeltaStore *deltastore.Store
	// CostModel, when set, installs the §6.4 threshold so overflowing
	// delta counts switch propagation to rebuild mode.
	CostModel *costmodel.Model
	// CostModels, when set, provides worker-count-aware coefficients: the
	// threshold is derived from the model calibrated at (or nearest to) the
	// engine's worker count, taking precedence over CostModel.
	CostModels *costmodel.WorkerModels
	// Workers is the propagation worker count used for the delta scan's
	// grouping pass, the CSR merge/rebuild, and the dynamic-structure
	// ingest. <= 0 selects GOMAXPROCS. With more than one worker the
	// static path also streams merged node-range segments to the device as
	// they finish, overlapping transfer with the merge.
	Workers int
	// PersistPool, when set (static replica only), maintains the §6.5
	// persistent CSR copy after each propagation.
	PersistPool *pmem.Pool
	// PageRankIters and Damping parameterize PageRank (defaults 10, 0.85).
	PageRankIters int
	Damping       float64
	// Retry bounds the per-rung replica-apply attempts of a propagation
	// cycle and their backoff; zero fields select defaults (3 attempts,
	// 1ms base backoff doubling to 50ms).
	Retry RetryPolicy
	// HighWater, when > 0, installs the delta-store record high-water
	// mark: crossing it triggers an emergency propagation, and — if the
	// engine is Degraded so propagation cannot drain the store — puts the
	// engine into Backpressure so committers stop feeding it.
	HighWater uint64
	// Obs, when set, wires the engine into the observability layer: commit
	// and delta-append hooks, propagation phase histograms and counters,
	// cycle traces, cost-model drift, health/staleness/device gauges. Nil
	// keeps every hot path at a single nil check.
	Obs *obs.Observer
	// OnCycle, when set, receives every finished propagation report (after
	// health and staleness are filled in). Called under propMu — keep it
	// cheap; the bench uses it to emit per-cycle JSON lines.
	OnCycle func(*PropagationReport)
	// SlowCycle, when > 0, logs a single-line phase breakdown of every
	// propagation cycle whose critical-path total meets the threshold.
	SlowCycle time.Duration
	// SlowCycleLog overrides the slow-cycle log destination (nil selects
	// log.Printf).
	SlowCycleLog func(format string, args ...any)
}

// PropagationReport describes one update-propagation cycle (§4.2's second
// phase; the metric of Figs 5, 10 and §6.6).
type PropagationReport struct {
	Triggered bool
	// Rebuild reports that the cost model had switched the delta store off
	// and this cycle rebuilt the CSR instead of merging (§6.4).
	Rebuild bool
	TS      mvto.TS

	Records int // delta records consumed
	Deltas  int // combined per-node deltas
	Workers int // propagation worker count used this cycle

	ScanWall    time.Duration // delta store scan (§5.2)
	MergeWall   time.Duration // CSR merge (§5.4) or rebuild
	MergeStats  csr.MergeStats
	PersistWall time.Duration // §6.5 persistent CSR copy (off critical path)

	// TransferSim is the transfer cost on the critical path. When
	// Overlapped, early merge shards streamed to the device while later
	// shards were still merging, so this is only the exposed tail;
	// TransferBusSim is the full bus busy time.
	TransferSim    sim.Duration
	TransferBusSim sim.Duration
	Overlapped     bool
	IngestSim      sim.Duration // dynamic-structure ingest kernel

	// Attempts counts replica-apply attempts across the cycle's escalation
	// rungs (1 for a clean cycle); RetryWall is the wall time the failed
	// attempts and backoff sleeps cost, included in Total.
	Attempts  int
	RetryWall time.Duration
	// FallbackRebuild reports that the delta apply exhausted its retries
	// and the cycle fell back to a full CSR rebuild.
	FallbackRebuild bool
	// Health and Staleness describe the engine after the cycle: a failed
	// cycle leaves the engine Degraded with a non-zero staleness bound.
	Health    Health
	Staleness Staleness
	// PersistErr records a §6.5 persistent-CSR-copy failure. The copy is
	// recovery-only and off the critical path, so it does not fail the
	// cycle: the replica is fresh and consistent regardless.
	PersistErr error

	// Predicted holds the §6.4 cost-model predictions for this cycle's
	// phases, when a model is installed — the drift tracker compares them
	// against the measured walls above.
	Predicted PredictedCosts

	Total sim.Latency // critical-path cost: scan+merge wall, transfer+ingest sim
}

// PredictedCosts are the cost-model predictions for one propagation cycle.
// Zero fields mean "no prediction" (no model installed, or the phase did
// not run).
type PredictedCosts struct {
	// FromModel reports that a §6.4 cost model was installed this cycle.
	FromModel bool
	// Scan is the scan model evaluated at the cycle's record count.
	Scan time.Duration
	// Merge is copy(graph size) + modify(record count) — the delta path.
	Merge time.Duration
	// Rebuild is the rebuild model at the rebuilt graph's edge count.
	Rebuild time.Duration
	// Transfer is the PCIe model at the shipped byte volume.
	Transfer sim.Duration
}

// Result is one analytics execution with its latency breakdown — the Table
// 1 decomposition (update propagation + analytics on GPU).
type Result struct {
	Kind        AnalyticsKind
	Propagation PropagationReport
	KernelSim   sim.Duration  // simulated GPU execution time
	HostWall    time.Duration // host time spent computing the real result

	// Degraded reports that the freshness propagation failed and the
	// kernel ran on the last-good replica instead; Staleness is the bound
	// on what the result may be missing.
	Degraded  bool
	Staleness Staleness

	// Exactly one of the following is set, matching Kind.
	Levels []int32   // BFS
	Dists  []float64 // SSSP
	Ranks  []float64 // PageRank
	Comp   []uint64  // WCC and CDLP (components / community labels)
	Coef   []float64 // LCC

	Work analytics.WorkStats
}

// TotalLatency is the modeled end-to-end latency: propagation critical path
// plus the device kernel.
func (r *Result) TotalLatency() time.Duration {
	return r.Propagation.Total.Total() + time.Duration(r.KernelSim)
}

// Engine is the H2TAP system.
type Engine struct {
	store *graph.Store
	ds    *deltastore.Store
	dev   *gpu.Device
	cfg   Config

	// replicaMu guards replica swaps; kernels hold it shared for the
	// duration of a run (one replica version at a time, §4.3).
	replicaMu sync.RWMutex
	staticRep *gpu.ResidentCSR
	hostCSR   *csr.CSR // the CPU copy the merge reads (§5.4)
	dynRep    *gpu.ResidentDyn
	replicaTS mvto.TS

	// propMu serializes propagation cycles (and scrubs).
	propMu sync.Mutex

	propagations int64
	rebuilds     int64

	// Fault-tolerance state (see health.go).
	healthMu         sync.RWMutex
	health           Health
	lastFault        error
	emergency        atomic.Bool // high-water emergency propagation in flight
	retries          int64       // guarded by propMu
	fallbackRebuilds int64       // guarded by propMu
	degradedCycles   int64       // guarded by propMu
}

// Errors.
var (
	// ErrUnknownAnalytics reports an unsupported analytics kind.
	ErrUnknownAnalytics = errors.New("htap: unknown analytics kind")
	// ErrBackpressure rejects a commit because the engine is Degraded and
	// the delta store has grown past its high-water mark. The facade
	// re-exports it (h2tap.ErrBackpressure); the message keeps the facade
	// prefix because that is where callers meet it.
	ErrBackpressure = errors.New("h2tap: engine degraded and delta store over high-water mark; commit rejected")
)

// NewEngine builds the engine over an existing main graph and initializes
// the replica from the current committed snapshot. The engine registers the
// delta store as a capturer; transactions must go through store.Begin as
// usual.
func NewEngine(store *graph.Store, cfg Config) (*Engine, error) {
	return newEngine(store, cfg, true)
}

// NewEngineWithExistingCapturer builds the engine over a store whose delta
// store (cfg.DeltaStore) is already registered as a capturer. Deltas
// captured before engine start are discarded: the initial replica build
// covers them, and re-propagating them could undo later deletions.
func NewEngineWithExistingCapturer(store *graph.Store, cfg Config) (*Engine, error) {
	if cfg.DeltaStore == nil {
		return nil, errors.New("htap: NewEngineWithExistingCapturer requires cfg.DeltaStore")
	}
	return newEngine(store, cfg, false)
}

func newEngine(store *graph.Store, cfg Config, register bool) (*Engine, error) {
	if cfg.Device == nil {
		cfg.Device = gpu.DefaultA100()
	}
	if cfg.DeltaStore == nil {
		cfg.DeltaStore = deltastore.NewVolatile()
	}
	if cfg.PageRankIters == 0 {
		cfg.PageRankIters = 10
	}
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	e := &Engine{store: store, ds: cfg.DeltaStore, dev: cfg.Device, cfg: cfg}
	if register {
		store.AddCapturer(e.ds)
	}
	if cfg.HighWater > 0 {
		// Backstop against unbounded delta-store growth: crossing the
		// high-water mark kicks off an emergency propagation; if the device
		// is wedged and that fails, the engine degrades and Backpressure()
		// starts rejecting commits at the facade.
		e.ds.SetHighWater(cfg.HighWater)
		e.ds.OnHighWater(e.emergencyPropagate)
	}

	ts := store.Oracle().LastCommitted()
	// Consume any deltas the initial snapshot already covers (pre-engine
	// captures and recovered records from a pre-crash session whose
	// replica state we are rebuilding from scratch here).
	e.ds.Scan(ts + 1)
	base := csr.BuildWorkers(store, ts, e.workers())
	if m := e.model(); m != nil {
		e.ds.SetThreshold(clampThreshold(m.Threshold(float64(base.NumEdges()))))
	}
	switch cfg.Replica {
	case StaticCSR:
		rep, _, err := gpu.UploadCSR(cfg.Device, base)
		if err != nil {
			return nil, fmt.Errorf("htap: initial replica upload: %w", err)
		}
		e.staticRep = rep
		e.hostCSR = base
	case DynamicHash:
		rep, _, err := gpu.UploadDyn(cfg.Device, dyngraph.FromCSR(base))
		if err != nil {
			return nil, fmt.Errorf("htap: initial replica upload: %w", err)
		}
		e.dynRep = rep
	default:
		return nil, fmt.Errorf("htap: unknown replica kind %d", cfg.Replica)
	}
	e.replicaTS = ts + 1 // covers all commits < ts+1, i.e. ≤ ts
	e.wireObs()
	return e, nil
}

// workers resolves the configured propagation worker count.
func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return csr.DefaultWorkers()
}

// Workers reports the resolved propagation worker count.
func (e *Engine) Workers() int { return e.workers() }

// model picks the cost model governing the merge-vs-rebuild threshold:
// the worker-count-aware set if present, the flat model otherwise.
func (e *Engine) model() *costmodel.Model {
	if m := e.cfg.CostModels.For(e.workers()); m != nil {
		return m
	}
	return e.cfg.CostModel
}

// Store exposes the main graph.
func (e *Engine) Store() *graph.Store { return e.store }

// DeltaStore exposes the delta store.
func (e *Engine) DeltaStore() *deltastore.Store { return e.ds }

// Device exposes the simulated GPU.
func (e *Engine) Device() *gpu.Device { return e.dev }

// ReplicaTS reports the freshness watermark: the replica reflects every
// transaction with timestamp below it.
func (e *Engine) ReplicaTS() mvto.TS {
	e.replicaMu.RLock()
	defer e.replicaMu.RUnlock()
	return e.replicaTS
}

// Propagations reports completed propagation cycles.
func (e *Engine) Propagations() int64 {
	e.propMu.Lock()
	defer e.propMu.Unlock()
	return e.propagations
}

// Rebuilds reports propagation cycles that used the rebuild path.
func (e *Engine) Rebuilds() int64 {
	e.propMu.Lock()
	defer e.propMu.Unlock()
	return e.rebuilds
}

// Fresh reports whether the replica already reflects every committed
// transaction — the §4.3 freshness check.
func (e *Engine) Fresh() bool {
	last := e.store.Oracle().LastCommitted()
	if e.ReplicaTS() > last {
		return true
	}
	if !e.ds.DeltaMode() {
		// Rebuild mode: commits are not being captured, so the replica is
		// stale until the next propagation rebuilds it (§6.4).
		return false
	}
	// The watermark lags but there may be nothing to apply (e.g. only
	// property updates committed, which don't alter topology).
	return !e.ds.PendingAt(last + 1)
}

// Propagate runs one update-propagation cycle unconditionally: scan the
// delta store within a propagation transaction and apply the batch to the
// replica (merge+replace for static, coalesce+ingest for dynamic). If the
// cost model flipped the delta store into rebuild mode, the CSR is rebuilt
// instead and delta mode re-enabled (§6.4).
//
// The cycle is failure-atomic and fault-tolerant end to end: the scan is
// staged, so delta consumption commits only after the replica swap
// succeeded — on any failure the store is as-if the cycle never ran and no
// committed update can be dropped. Device faults climb the escalation
// ladder: bounded, backoff-spaced retries of the replica apply; then a
// full rebuild fallback (itself retried); then the engine enters Degraded
// (see health.go) with the cycle's error returned and a staleness bound in
// the report.
func (e *Engine) Propagate() (*PropagationReport, error) {
	e.propMu.Lock()
	defer e.propMu.Unlock()

	tp := e.store.Oracle().Begin()
	defer tp.Commit()
	// Visibility bound: timestamps are allocated at Begin, so a newer
	// transaction can finish (and capture its delta) while an older one is
	// still running. Consuming up to tp would let a record slip in *behind*
	// the scan with a lower timestamp than deltas already applied to the
	// replica — applied next cycle, it would regress that node (e.g.
	// resurrect an edge a later delta deleted). Bounding by the oracle's
	// stable timestamp — below it every transaction has finished and
	// published its capture — keeps per-node replica application in
	// timestamp order. tp itself is unfinished, so bound <= tp.TS().
	bound := e.store.Oracle().StableTS() + 1
	rep := &PropagationReport{Triggered: true, TS: bound}

	tc := e.cfg.Obs.StartCycle("propagation")
	err := e.runCycle(bound, rep, tc)
	if err != nil {
		e.degradedCycles++
		e.setHealth(Degraded, err)
	} else {
		e.propagations++
		if rep.Rebuild {
			e.rebuilds++
		}
		e.setHealth(Healthy, nil)
	}
	rep.Health, _ = e.Health()
	rep.Staleness = e.Staleness()
	e.observeCycle(rep, tc, err)
	return rep, err
}

// runCycle executes one propagation cycle's work under propMu.
func (e *Engine) runCycle(bound mvto.TS, rep *PropagationReport, tc *obs.Cycle) error {
	workers := e.workers()
	rep.Workers = workers

	if !e.ds.DeltaMode() {
		rep.Rebuild = true
		return e.rebuildReplica(bound, rep, tc)
	}

	sp := tc.Span("scan")
	scanStart := time.Now()
	sc := e.ds.StageScanWorkers(bound, workers)
	rep.ScanWall = time.Since(scanStart)
	sp.Arg("records", itoa(sc.Batch.Records))
	sp.End()
	rep.Records = sc.Batch.Records
	rep.Deltas = len(sc.Batch.Deltas)
	rep.Total.AddWall(rep.ScanWall)
	if m := e.model(); m != nil {
		rep.Predicted.FromModel = true
		rep.Predicted.Scan = modelDur(m.Scan.Predict(float64(rep.Records)))
		if e.cfg.Replica == StaticCSR {
			// The copy/modify models describe the CSR merge.
			rep.Predicted.Merge = modelDur(m.Copy.Predict(float64(e.hostCSR.NumEdges())) +
				m.Modify.Predict(float64(rep.Records)))
		}
	}

	if err := e.applyBatch(sc.Batch, bound, rep, workers, tc); err != nil {
		// Rung 2: the delta apply exhausted its retries — fall back to a
		// full rebuild from the main graph, which covers every committed
		// update including the staged records.
		rep.FallbackRebuild = true
		e.fallbackRebuilds++
		if rerr := e.rebuildReplica(bound, rep, tc); rerr != nil {
			// Rung 3: nothing worked. Abandon the stage — every staged
			// record stays valid for the next cycle — and degrade.
			sc.Abandon()
			return rerr
		}
		// The rebuild re-enabled delta mode, clearing the store; Commit
		// detects the clear and no-ops. (Explicit for clarity.)
		sc.Commit()
		return nil
	}

	// The replica swap succeeded: commit the consumption. This is the
	// protocol's commit point — before it, the store could replay the
	// whole batch; after it, the replica provably contains the batch.
	sc.Commit()

	// §6.5: the persistent CSR copy is only for recovery and does not gate
	// analytics, so it runs outside the critical path — and a failure is
	// recorded, not returned: the replica itself is fresh and consistent.
	if e.cfg.Replica == StaticCSR && e.cfg.PersistPool != nil {
		sp := tc.Span("persist")
		pStart := time.Now()
		if _, err := csr.PersistTo(e.cfg.PersistPool, e.hostCSR); err != nil {
			rep.PersistErr = fmt.Errorf("htap: persistent CSR copy: %w", err)
			sp.Arg("err", err.Error())
		}
		rep.PersistWall = time.Since(pStart)
		sp.End()
	}
	return nil
}

// applyBatch is rung 1 of the escalation ladder: apply one staged batch to
// the replica with bounded, backoff-spaced retries. The merge (static) is
// host-side and infallible and runs once; only the device-side swap
// retries. Replica state (hostCSR, dynamic structure, replicaTS) advances
// only inside a successful attempt, so a failed rung leaves the replica on
// its last-good version.
func (e *Engine) applyBatch(batch *delta.Batch, bound mvto.TS, rep *PropagationReport, workers int, tc *obs.Cycle) error {
	switch e.cfg.Replica {
	case StaticCSR:
		// With parallel workers, record when each merged node-range shard
		// finishes so the device transfer of early shards can be pipelined
		// against the merging of later ones (§5.4's transfer, overlapped).
		var segMu sync.Mutex
		var shards []csr.MergeShard
		var readys []time.Duration
		var onShard func(csr.MergeShard)
		mergeStart := time.Now()
		if workers > 1 {
			onShard = func(s csr.MergeShard) {
				ready := time.Since(mergeStart)
				segMu.Lock()
				shards = append(shards, s)
				readys = append(readys, ready)
				segMu.Unlock()
			}
		}
		sp := tc.Span("merge")
		merged, st := csr.MergeObserved(e.hostCSR, batch, workers, onShard)
		rep.MergeWall = time.Since(mergeStart)
		rep.MergeStats = st
		rep.Total.AddWall(rep.MergeWall)
		sp.End()
		rep.Predicted.Transfer = e.dev.PredictTransfer(merged.Bytes())

		err := e.retryLoop(rep, tc, "transfer", func(n int) error {
			e.replicaMu.Lock()
			defer e.replicaMu.Unlock()
			if workers > 1 && n == 1 {
				// The simulated bus ships shards in row order (the layout
				// order on the device); a shard can ship once it and —
				// transitively — nothing before it is still being written,
				// so its effective ready time is the max over itself and
				// its predecessors. Only the first attempt streams: on a
				// retry the merge has long finished and the ready times
				// are meaningless, so a plain replace is both simpler and
				// accurate.
				segs := make([]gpu.StreamSegment, len(shards))
				for i, s := range shards {
					segs[s.Index] = gpu.StreamSegment{Bytes: s.Bytes, Ready: readys[i]}
				}
				var latest time.Duration
				for i := range segs {
					if segs[i].Ready > latest {
						latest = segs[i].Ready
					}
					segs[i].Ready = latest
				}
				exposed, bus, err := e.staticRep.ReplaceStreamed(merged, segs, rep.MergeWall)
				if err != nil {
					return fmt.Errorf("htap: replica replace: %w", err)
				}
				rep.TransferSim = exposed
				rep.TransferBusSim = bus
				rep.Overlapped = true
			} else {
				t, err := e.staticRep.Replace(merged)
				if err != nil {
					return fmt.Errorf("htap: replica replace: %w", err)
				}
				rep.TransferSim = t
				rep.TransferBusSim = t
				rep.Overlapped = false
			}
			e.hostCSR = merged
			e.replicaTS = bound
			return nil
		})
		if err != nil {
			return err
		}
		rep.Total.AddSim(rep.TransferSim)
		return nil

	case DynamicHash:
		rep.Predicted.Transfer = e.dev.PredictTransfer(batch.TransferBytes())
		err := e.retryLoop(rep, tc, "ingest", func(int) error {
			e.replicaMu.Lock()
			defer e.replicaMu.Unlock()
			// IngestWorkers is failure-atomic (all fallible device ops
			// happen before the structure mutates), so retrying the same
			// batch cannot double-apply.
			t, _, err := e.dynRep.IngestWorkers(batch, workers)
			if err != nil {
				return fmt.Errorf("htap: dynamic ingest: %w", err)
			}
			rep.TransferSim = t
			rep.TransferBusSim = t
			e.replicaTS = bound
			return nil
		})
		if err != nil {
			return err
		}
		rep.Total.AddSim(rep.TransferSim)
		return nil
	}
	return nil
}

// rebuildReplica is the §6.4 rebuild (and the fault ladder's rung-2
// fallback): build a fresh CSR from the main graph at the propagation
// snapshot, ship it with bounded retries, clear the delta store and
// re-enable delta mode.
func (e *Engine) rebuildReplica(tp mvto.TS, rep *PropagationReport, tc *obs.Cycle) error {
	sp := tc.Span("rebuild")
	start := time.Now()
	rebuilt := csr.BuildWorkers(e.store, tp-1, e.workers())
	var dynFresh *dyngraph.Graph
	if e.cfg.Replica == DynamicHash {
		dynFresh = dyngraph.FromCSR(rebuilt)
	}
	buildWall := time.Since(start)
	rep.MergeWall += buildWall
	rep.Total.AddWall(buildWall)
	sp.End()
	if m := e.model(); m != nil {
		rep.Predicted.FromModel = true
		rep.Predicted.Rebuild = modelDur(m.Rebuild.Predict(float64(rebuilt.NumEdges())))
		// The rebuild wall is measured here (the report's MergeWall can mix
		// in a failed merge on the fallback path), so its drift observation
		// is recorded here too.
		e.cfg.Obs.RecordDrift("rebuild", m.Rebuild.Predict(float64(rebuilt.NumEdges())), buildWall.Seconds())
	}
	if e.cfg.Replica == StaticCSR {
		rep.Predicted.Transfer = e.dev.PredictTransfer(rebuilt.Bytes())
	}

	err := e.retryLoop(rep, tc, "transfer", func(int) error {
		e.replicaMu.Lock()
		defer e.replicaMu.Unlock()
		switch e.cfg.Replica {
		case StaticCSR:
			t, err := e.staticRep.Replace(rebuilt)
			if err != nil {
				return fmt.Errorf("htap: rebuild replace: %w", err)
			}
			e.hostCSR = rebuilt
			rep.TransferSim = t
		case DynamicHash:
			old := e.dynRep
			fresh, t, err := gpu.UploadDyn(e.dev, dynFresh)
			if err != nil {
				return fmt.Errorf("htap: rebuild dynamic upload: %w", err)
			}
			old.Free()
			e.dynRep = fresh
			rep.TransferSim = t
		}
		e.replicaTS = tp
		return nil
	})
	if err != nil {
		return err
	}
	rep.TransferBusSim = rep.TransferSim
	rep.Total.AddSim(rep.TransferSim)

	e.ds.EnableDeltaMode()
	if m := e.model(); m != nil {
		e.ds.SetThreshold(clampThreshold(m.Threshold(float64(rebuilt.NumEdges()))))
	}
	return nil
}

// clampThreshold maps the cost model's "always rebuild" answer (0) to the
// smallest enforceable threshold: in the delta store 0 means "no
// threshold", so a literal 0 would never flip delta mode.
func clampThreshold(th uint64) uint64 {
	if th == 0 {
		return 1
	}
	return th
}

// RunAnalytics executes one analytics request with §4.3 semantics: if the
// replica is stale with respect to the request's arrival time, update
// propagation runs first; the kernel then executes on the (simulated)
// device. src is the source vertex for BFS and SSSP.
//
// Degraded mode: a failed propagation does not fail the request. The
// staged-consumption protocol guarantees the last-good replica is a
// consistent committed prefix, so the kernel runs on it and the result is
// marked Degraded with an explicit staleness bound instead.
func (e *Engine) RunAnalytics(kind AnalyticsKind, src uint64) (*Result, error) {
	res := &Result{Kind: kind}
	if !e.Fresh() {
		rep, err := e.Propagate()
		res.Propagation = *rep
		if err != nil {
			res.Degraded = true
			res.Staleness = rep.Staleness
		}
	}
	if err := e.runKernel(res, kind, src); err != nil {
		return nil, err
	}
	return res, nil
}

// runKernel executes the algorithm on the current replica under a shared
// lock (concurrent analytics on the same replica version, §4.3 case 2).
func (e *Engine) runKernel(res *Result, kind AnalyticsKind, src uint64) error {
	e.replicaMu.RLock()
	defer e.replicaMu.RUnlock()

	var view analytics.Graph
	switch e.cfg.Replica {
	case StaticCSR:
		view = analytics.CSRGraph{C: e.staticRep.CSR()}
	case DynamicHash:
		view = e.dynRep.Graph()
	}

	start := time.Now()
	out, err := analytics.Run(view, string(kind), src, e.cfg.PageRankIters, e.cfg.Damping)
	if err != nil {
		return fmt.Errorf("%w: %q", ErrUnknownAnalytics, kind)
	}
	res.Levels, res.Dists, res.Ranks, res.Comp, res.Coef = out.Levels, out.Dists, out.Ranks, out.Comp, out.Coef
	res.Work = out.Work
	class, ok := KernelClass(kind)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAnalytics, kind)
	}
	res.HostWall = time.Since(start)

	kt, err := e.dev.Launch(class, res.Work.Edges)
	if err != nil {
		return err
	}
	res.KernelSim = kt
	return nil
}

// KernelClass maps an analytics kind to its simulated-device kernel class.
func KernelClass(kind AnalyticsKind) (string, bool) {
	switch kind {
	case BFS:
		return sim.KernelBFS, true
	case PageRank:
		return sim.KernelPageRank, true
	case SSSP:
		return sim.KernelSSSP, true
	case WCC:
		return sim.KernelWCC, true
	case CDLP:
		return sim.KernelCDLP, true
	case LCC:
		return sim.KernelLCC, true
	}
	return "", false
}

// AcquireReplica pins the current replica version against swaps and returns
// its analytics view together with the freshness watermark it covers. The
// returned release function MUST be called when the caller is done with the
// view; propagation cycles block on the swap until every acquirer releases.
//
// The cross-shard stitcher holds several shards' replicas at once through
// this; like PrepareCommit, multi-shard acquisition must follow ascending
// shard order so reader wait chains terminate against concurrent
// propagation writers.
func (e *Engine) AcquireReplica() (analytics.Graph, mvto.TS, func()) {
	e.replicaMu.RLock()
	var view analytics.Graph
	switch e.cfg.Replica {
	case StaticCSR:
		view = analytics.CSRGraph{C: e.staticRep.CSR()}
	case DynamicHash:
		view = e.dynRep.Graph()
	}
	return view, e.replicaTS, e.replicaMu.RUnlock
}

// HostCSR exposes the CPU-side CSR copy (static replica only), for
// benchmarking the merge in isolation.
func (e *Engine) HostCSR() *csr.CSR {
	e.replicaMu.RLock()
	defer e.replicaMu.RUnlock()
	return e.hostCSR
}
