package htap

import (
	"errors"
	"sync"

	"h2tap/internal/mvto"
)

// ErrQueueClosed reports a submission to a closed queue.
var ErrQueueClosed = errors.New("htap: analytics queue closed")

// Queue dispatches analytics with the §4.3 semantics: requests are served
// in arrival order from a queue; a request whose arrival time the replica
// already covers executes concurrently with any running analytics (same
// replica version); a stale request triggers update propagation in a
// pipelined fashion — the scan and merge overlap with running analytics,
// and the replica swap waits for them to drain (the engine's reader/writer
// lock enforces "the replica is updated when B finishes").
type Queue struct {
	e    *Engine
	reqs chan *Ticket

	mu      sync.Mutex
	closed  bool
	drained sync.WaitGroup // dispatcher + in-flight kernels
}

// Ticket is a submitted analytics request.
type Ticket struct {
	kind    AnalyticsKind
	src     uint64
	arrival mvto.TS

	done chan struct{}
	res  *Result
	err  error
}

// Wait blocks until the request finishes and returns its result.
func (t *Ticket) Wait() (*Result, error) {
	<-t.done
	return t.res, t.err
}

// NewQueue starts a dispatcher over the engine.
func NewQueue(e *Engine) *Queue {
	q := &Queue{e: e, reqs: make(chan *Ticket, 128)}
	q.drained.Add(1)
	go q.dispatch()
	return q
}

// Submit enqueues an analytics request, recording its arrival time (the
// freshness reference point of §4.3).
func (q *Queue) Submit(kind AnalyticsKind, src uint64) (*Ticket, error) {
	t := &Ticket{
		kind:    kind,
		src:     src,
		arrival: q.e.store.Oracle().LastCommitted(),
		done:    make(chan struct{}),
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrQueueClosed
	}
	q.drained.Add(1)
	q.reqs <- t
	return t, nil
}

// Close stops accepting requests and waits for all in-flight analytics to
// finish.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.reqs)
	}
	q.mu.Unlock()
	q.drained.Wait()
}

// freshAt reports whether the replica covers every transaction committed up
// to the arrival timestamp.
func (e *Engine) freshAt(arrival mvto.TS) bool {
	if e.ReplicaTS() > arrival {
		return true
	}
	if !e.ds.DeltaMode() {
		return false
	}
	return !e.ds.PendingAt(arrival + 1)
}

func (q *Queue) dispatch() {
	defer q.drained.Done()
	for t := range q.reqs {
		t := t
		if q.e.freshAt(t.arrival) {
			// §4.3 case 2: execute concurrently on the same replica
			// version; the dispatcher moves on immediately.
			go func() {
				defer q.drained.Done()
				t.res = &Result{Kind: t.kind}
				t.err = q.e.runKernel(t.res, t.kind, t.src)
				close(t.done)
			}()
			continue
		}
		// Stale: propagate with respect to the arrival time. The scan and
		// merge run now (pipelined with any executing analytics); the
		// replica swap inside Propagate blocks on their shared locks.
		// A failed propagation degrades the request, not the queue: the
		// kernel still runs on the last-good replica (a consistent
		// committed prefix) and the result carries the staleness bound.
		rep, err := q.e.Propagate()
		go func() {
			defer q.drained.Done()
			t.res = &Result{Kind: t.kind, Propagation: *rep}
			if err != nil {
				t.res.Degraded = true
				t.res.Staleness = rep.Staleness
			}
			t.err = q.e.runKernel(t.res, t.kind, t.src)
			close(t.done)
		}()
	}
}
