package htap

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"h2tap/internal/costmodel"
	"h2tap/internal/faultinject"
	"h2tap/internal/gpu"
	"h2tap/internal/obs"
)

func exposition(t *testing.T, o *obs.Observer) string {
	t.Helper()
	var b strings.Builder
	o.Reg.WritePrometheus(&b)
	return b.String()
}

// mustContain fails if any want line is absent from the exposition.
func mustContain(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
	}
}

// cheapDeltaModel keeps the §6.4 threshold effectively infinite (delta mode
// always wins) while still marking predictions as model-backed, so drift is
// recorded on clean cycles.
func cheapDeltaModel() *costmodel.Model {
	return &costmodel.Model{
		Scan:    costmodel.Linear{B: 1e-12},
		Modify:  costmodel.Linear{B: 1e-12},
		Copy:    costmodel.Linear{B: 1e-12},
		Rebuild: costmodel.Linear{A: 1000},
	}
}

// TestObsCleanCycle drives one clean delta-propagation cycle with the full
// observability wiring: metric families populated, the cycle traced with
// phase spans, scan/merge/transfer drift recorded, the slow-cycle log and
// OnCycle callback fired, and /healthz-style health reporting fresh.
func TestObsCleanCycle(t *testing.T) {
	o := obs.New()
	var logged []string
	var seen []*PropagationReport
	e, d := newLoadedEngine(t, Config{
		Replica:   StaticCSR,
		CostModel: cheapDeltaModel(),
		Obs:       o,
		SlowCycle: time.Nanosecond, // every cycle is "slow"
		SlowCycleLog: func(format string, args ...any) {
			logged = append(logged, fmt.Sprintf(format, args...))
		},
		OnCycle: func(rep *PropagationReport) { seen = append(seen, rep) },
	})
	runMixed(t, e, d, 300, 7)
	rep, err := e.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rebuild || rep.Records == 0 {
		t.Fatalf("expected clean delta cycle, got %+v", rep)
	}

	if len(seen) != 1 || seen[0] != rep {
		t.Fatalf("OnCycle fired %d times", len(seen))
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "slow propagation cycle") {
		t.Fatalf("slow-cycle log = %q", logged)
	}

	out := exposition(t, o)
	mustContain(t, out,
		`h2tap_propagation_cycles_total{result="ok"} 1`,
		`h2tap_propagation_cycles_total{result="degraded"} 0`,
		fmt.Sprintf("h2tap_propagation_records_total %d", rep.Records),
		"h2tap_propagation_total_seconds_count 1",
		`h2tap_propagation_phase_seconds_count{phase="scan"} 1`,
		`h2tap_propagation_phase_seconds_count{phase="merge"} 1`,
		`h2tap_propagation_phase_seconds_count{phase="transfer"} 1`,
		"h2tap_health_state 0",
		"h2tap_staleness_pending_records 0",
		"h2tap_delta_depth 0",
		"h2tap_delta_mode 1",
		`h2tap_gpu_ops_total{op="`,
	)
	// Push hooks below the engine fired: commits and delta appends counted.
	if strings.Contains(out, "h2tap_commit_seconds_count 0\n") {
		t.Fatal("no MVTO commits observed")
	}
	if strings.Contains(out, "h2tap_delta_appends_total 0\n") {
		t.Fatal("no delta appends observed")
	}

	// Drift recorded for every model a clean static cycle exercises.
	for _, m := range []string{"scan", "merge", "transfer"} {
		if o.Drift.Count(m) != 1 {
			t.Fatalf("drift %s count = %d, want 1", m, o.Drift.Count(m))
		}
	}
	if o.Drift.Count("rebuild") != 0 {
		t.Fatal("rebuild drift recorded on a delta cycle")
	}

	// The cycle trace carries the phase spans.
	var tr bytes.Buffer
	if err := obs.WriteChromeTrace(&tr, o.Tracer.Cycles(0)); err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{`"propagation"`, `"scan"`, `"merge"`, `"transfer"`} {
		if !strings.Contains(tr.String(), span) {
			t.Fatalf("trace missing %s span:\n%s", span, tr.String())
		}
	}

	if ok, detail := o.Health(); !ok || detail != "replica fresh within bound" {
		t.Fatalf("Health = %v %q", ok, detail)
	}
}

// TestObsRebuildDrift: a cost-model-triggered rebuild records rebuild drift
// at the measurement site and counts under cause="cost-model", without
// polluting the scan/merge series (whose walls a rebuild cycle does not
// cleanly measure).
func TestObsRebuildDrift(t *testing.T) {
	o := obs.New()
	m := &costmodel.Model{
		Scan:    costmodel.Linear{B: 1},
		Modify:  costmodel.Linear{B: 1},
		Rebuild: costmodel.Linear{A: 10}, // threshold = 5 deltas
	}
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR, CostModel: m, Obs: o})
	runMixed(t, e, d, 400, 11)
	rep, err := e.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rebuild {
		t.Fatal("propagation did not rebuild")
	}
	mustContain(t, exposition(t, o),
		`h2tap_propagation_rebuilds_total{cause="cost-model"} 1`,
		`h2tap_propagation_phase_seconds_count{phase="rebuild"} 1`,
	)
	if o.Drift.Count("rebuild") != 1 {
		t.Fatalf("rebuild drift count = %d, want 1", o.Drift.Count("rebuild"))
	}
	if o.Drift.Count("scan") != 0 || o.Drift.Count("merge") != 0 {
		t.Fatal("scan/merge drift recorded on a rebuild cycle")
	}
}

// TestObsDegradedCycle: a persistent device fault walks the escalation
// ladder into Degraded — the observer sees the degraded cycle, the retry
// counters, the health transition and an unhealthy /healthz with backlog
// detail; healing and one clean cycle transition it back.
func TestObsDegradedCycle(t *testing.T) {
	o := obs.New()
	dev := gpu.DefaultA100()
	plan := faultinject.NewGPUPlan()
	dev.SetFaultInjector(plan)
	e, d := newLoadedEngine(t, Config{
		Replica: StaticCSR,
		Device:  dev,
		Obs:     o,
		Retry:   RetryPolicy{MaxAttempts: 2, Backoff: 100 * time.Microsecond, MaxBackoff: 200 * time.Microsecond},
	})
	runMixed(t, e, d, 200, 9)
	for _, op := range []string{faultinject.GPUReplace, faultinject.GPUReplaceStreamed, faultinject.GPUUpload} {
		plan.Arm(op, 1, faultinject.Persistent)
	}
	if _, err := e.Propagate(); !errors.Is(err, faultinject.ErrGPUInjected) {
		t.Fatalf("propagate err = %v, want injected fault", err)
	}

	mustContain(t, exposition(t, o),
		`h2tap_propagation_cycles_total{result="degraded"} 1`,
		`h2tap_health_transitions_total{to="degraded"} 1`,
		"h2tap_health_state 1",
	)
	if strings.Contains(exposition(t, o), "h2tap_propagation_retries_total 0\n") {
		t.Fatal("no retries counted on the failed cycle")
	}
	if strings.Contains(exposition(t, o), "h2tap_gpu_faults_injected_total 0\n") {
		t.Fatal("injected faults not counted")
	}
	ok, detail := o.Health()
	if ok || !strings.Contains(detail, "pending=") {
		t.Fatalf("degraded Health = %v %q, want backlog detail", ok, detail)
	}

	plan.Heal()
	if _, err := e.Propagate(); err != nil {
		t.Fatal(err)
	}
	mustContain(t, exposition(t, o),
		`h2tap_health_transitions_total{to="healthy"} 1`,
		"h2tap_health_state 0",
	)
	if ok, _ := o.Health(); !ok {
		t.Fatal("health source still degraded after recovery")
	}
}
