package htap

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/faultinject"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
)

// tightRetry keeps fault tests fast: two attempts per rung, microsecond
// backoff.
func tightRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 2, Backoff: 10 * time.Microsecond, MaxBackoff: 20 * time.Microsecond}
}

// TestHealthStateTable drives each replica kind through the full
// availability cycle — Healthy, Degraded under a persistent device fault,
// recovered after the device heals — asserting that analytics stay
// servable throughout and that the staleness bound tracks reality.
func TestHealthStateTable(t *testing.T) {
	cases := []struct {
		name    string
		replica ReplicaKind
		// faultOps wedge both the delta apply and the rebuild fallback.
		faultOps []string
	}{
		{"static", StaticCSR, []string{faultinject.GPUReplace, faultinject.GPUReplaceStreamed}},
		{"dynamic", DynamicHash, []string{faultinject.GPUIngest, faultinject.GPUUpload}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, d := newLoadedEngine(t, Config{Replica: tc.replica, Retry: tightRetry()})
			if h, err := e.Health(); h != Healthy || err != nil {
				t.Fatalf("initial health = %v (%v)", h, err)
			}
			if !e.Staleness().Fresh() {
				t.Fatalf("initial staleness = %+v", e.Staleness())
			}

			runMixed(t, e, d, 200, 11)
			plan := faultinject.NewGPUPlan()
			for _, op := range tc.faultOps {
				plan.Arm(op, 1, faultinject.Persistent)
			}
			e.Device().SetFaultInjector(plan)

			// Degrade: the cycle climbs both rungs (2 apply attempts, a
			// fallback rebuild, 2 more attempts) and fails.
			rep, err := e.Propagate()
			if !errors.Is(err, faultinject.ErrGPUInjected) {
				t.Fatalf("propagate under persistent fault = %v", err)
			}
			if rep == nil || rep.Health != Degraded {
				t.Fatalf("report = %+v", rep)
			}
			if rep.Attempts != 4 {
				t.Fatalf("attempts = %d, want 2 per rung", rep.Attempts)
			}
			if !rep.FallbackRebuild {
				t.Fatal("failed cycle did not record the rebuild fallback")
			}
			if h, herr := e.Health(); h != Degraded || herr == nil {
				t.Fatalf("health after failed cycle = %v (%v)", h, herr)
			}
			if st := rep.Staleness; st.Fresh() || st.PendingRecords == 0 {
				t.Fatalf("degraded staleness = %+v, want pending records", st)
			}
			if e.DegradedCycles() != 1 || e.FallbackRebuilds() != 1 || e.Retries() != 4 {
				t.Fatalf("counters: degraded=%d fallback=%d retries=%d",
					e.DegradedCycles(), e.FallbackRebuilds(), e.Retries())
			}

			// Degraded availability: analytics answer from the last-good
			// replica, marked with the staleness bound.
			res, aerr := e.RunAnalytics(BFS, alivePersons(e, d)[0])
			if aerr != nil {
				t.Fatalf("degraded analytics failed: %v", aerr)
			}
			if !res.Degraded || res.Staleness.PendingRecords == 0 {
				t.Fatalf("degraded result = degraded:%v staleness:%+v", res.Degraded, res.Staleness)
			}
			if res.Levels == nil {
				t.Fatal("degraded analytics returned no answer")
			}

			// Recover: heal the device; the next cycle succeeds and the
			// engine returns to Healthy with a zero staleness bound.
			plan.Heal()
			rep2, err := e.Propagate()
			if err != nil {
				t.Fatalf("healed propagate: %v", err)
			}
			if rep2.Health != Healthy || !rep2.Staleness.Fresh() {
				t.Fatalf("recovered report = health:%v staleness:%+v", rep2.Health, rep2.Staleness)
			}
			if h, herr := e.Health(); h != Healthy || herr != nil {
				t.Fatalf("health after recovery = %v (%v)", h, herr)
			}
			if !e.Fresh() {
				t.Fatal("engine stale after recovery")
			}
			res2, err := e.RunAnalytics(BFS, alivePersons(e, d)[0])
			if err != nil || res2.Degraded {
				t.Fatalf("post-recovery analytics = %v degraded:%v", err, res2.Degraded)
			}
			// No committed update was lost across the degraded window.
			sr, err := e.Scrub()
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if sr.Diverged {
				t.Fatal("replica diverged across the degraded window")
			}
		})
	}
}

// TestTransientFaultAbsorbedByRetry checks rung 1 of the ladder: a single
// transient device fault costs one retry, not the cycle.
func TestTransientFaultAbsorbedByRetry(t *testing.T) {
	// Workers pinned above 1 so the first attempt uses the streamed
	// replace and the retry demonstrably falls back to the plain one.
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR, Retry: tightRetry(), Workers: 2})
	runMixed(t, e, d, 200, 12)

	plan := faultinject.NewGPUPlan()
	plan.Arm(faultinject.GPUReplaceStreamed, 1, faultinject.Transient)
	e.Device().SetFaultInjector(plan)

	rep, err := e.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	if rep.Attempts != 2 || rep.RetryWall <= 0 {
		t.Fatalf("attempts=%d retryWall=%v, want a charged retry", rep.Attempts, rep.RetryWall)
	}
	if rep.Total.Wall < rep.RetryWall {
		t.Fatalf("Total.Wall %v < RetryWall %v: retry cost not accounted", rep.Total.Wall, rep.RetryWall)
	}
	// The retry used the plain (non-streamed) replace.
	if rep.Overlapped {
		t.Fatal("retried replace still claims streaming overlap")
	}
	if rep.FallbackRebuild {
		t.Fatal("transient fault escalated to rebuild")
	}
	if h, _ := e.Health(); h != Healthy {
		t.Fatalf("health = %v after absorbed fault", h)
	}
	if e.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", e.Retries())
	}
	if !e.Fresh() {
		t.Fatal("engine stale after absorbed fault")
	}
	want := csr.Build(e.Store(), e.ReplicaTS()-1)
	if !csr.Equal(e.HostCSR(), want) {
		t.Fatal("replica differs from build after retried apply")
	}
}

// TestIngestFailureFallsBackToRebuild checks rung 2: a persistent
// dynamic-ingest fault exhausts the delta apply, and the cycle completes
// through the full-rebuild fallback instead.
func TestIngestFailureFallsBackToRebuild(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: DynamicHash, Retry: tightRetry()})
	runMixed(t, e, d, 200, 13)

	plan := faultinject.NewGPUPlan()
	plan.Arm(faultinject.GPUIngest, 1, faultinject.Persistent)
	e.Device().SetFaultInjector(plan)

	rep, err := e.Propagate()
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	if !rep.FallbackRebuild {
		t.Fatal("cycle did not record the rebuild fallback")
	}
	if e.FallbackRebuilds() != 1 {
		t.Fatalf("fallbackRebuilds = %d", e.FallbackRebuilds())
	}
	if h, _ := e.Health(); h != Healthy {
		t.Fatalf("health = %v after successful fallback", h)
	}
	if !e.Fresh() {
		t.Fatal("engine stale after fallback rebuild")
	}
	// The rebuild covered the staged records; nothing is pending and the
	// replica matches the main graph.
	sr, err := e.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if sr.Diverged {
		t.Fatal("replica diverged after fallback rebuild")
	}
}

// TestPersistErrRecordedNotFatal is the regression test for the §6.5
// persistent-copy semantics: the copy is recovery-only, so its failure
// after a successful replica swap is recorded in the report, not returned
// as a cycle failure.
func TestPersistErrRecordedNotFatal(t *testing.T) {
	// A pool far too small for the CSR: PersistTo must fail.
	pool, err := pmem.Create(filepath.Join(t.TempDir(), "csr.pool"), 64<<10, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR, PersistPool: pool})
	runMixed(t, e, d, 100, 14)

	rep, err := e.Propagate()
	if err != nil {
		t.Fatalf("propagate failed on a persist-copy error: %v", err)
	}
	if rep.PersistErr == nil {
		t.Fatal("persist failure not recorded in the report")
	}
	if !errors.Is(rep.PersistErr, pmem.ErrOutOfSpace) {
		t.Fatalf("PersistErr = %v, want pool exhaustion", rep.PersistErr)
	}
	// The replica itself is fresh and the engine healthy.
	if h, _ := e.Health(); h != Healthy || !e.Fresh() {
		t.Fatalf("health=%v fresh=%v after recorded persist failure", h, e.Fresh())
	}
}

// TestFailedCycleChargesPartialCost is the regression test for honest
// accounting on early error returns: a cycle that failed after scanning
// and retrying still reports the wall time it burned.
func TestFailedCycleChargesPartialCost(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR, Retry: tightRetry()})
	runMixed(t, e, d, 200, 15)

	plan := faultinject.NewGPUPlan()
	plan.Arm(faultinject.GPUReplace, 1, faultinject.Persistent)
	plan.Arm(faultinject.GPUReplaceStreamed, 1, faultinject.Persistent)
	e.Device().SetFaultInjector(plan)

	rep, err := e.Propagate()
	if err == nil {
		t.Fatal("propagate succeeded under a wedged device")
	}
	if rep == nil {
		t.Fatal("failed cycle returned no report")
	}
	if rep.ScanWall <= 0 {
		t.Fatal("failed cycle reports no scan cost")
	}
	if rep.RetryWall <= 0 {
		t.Fatal("failed cycle reports no retry cost")
	}
	if rep.Total.Wall < rep.ScanWall+rep.RetryWall {
		t.Fatalf("Total.Wall %v < scan %v + retry %v: partial cost dropped",
			rep.Total.Wall, rep.ScanWall, rep.RetryWall)
	}
}

// TestScrubRepairsDivergence forces a corrupted replica and checks that
// Scrub detects the divergence and rebuilds.
func TestScrubRepairsDivergence(t *testing.T) {
	e, d := newLoadedEngine(t, Config{Replica: StaticCSR})
	runMixed(t, e, d, 200, 16)
	if _, err := e.Propagate(); err != nil {
		t.Fatal(err)
	}
	sr, err := e.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if sr.Diverged {
		t.Fatal("clean replica reported divergent")
	}

	// Corrupt the replica: drop an edge from the host copy.
	e.replicaMu.Lock()
	corrupted := csr.Build(e.store, 0) // ancient snapshot, certainly different
	e.hostCSR = corrupted
	e.replicaMu.Unlock()

	sr, err = e.Scrub()
	if err != nil {
		t.Fatalf("scrub of corrupted replica: %v", err)
	}
	if !sr.Diverged || !sr.Rebuilt {
		t.Fatalf("scrub = %+v, want diverged and rebuilt", sr)
	}
	// The forced rebuild restored integrity.
	sr, err = e.Scrub()
	if err != nil {
		t.Fatalf("re-scrub: %v", err)
	}
	if sr.Diverged {
		t.Fatal("replica still divergent after forced rebuild")
	}
	if h, _ := e.Health(); h != Healthy {
		t.Fatalf("health = %v after repair", h)
	}
}
