// Engine health: the failure-atomic propagation protocol's escalation
// ladder ends in an explicit availability state. A propagation cycle that
// exhausts its retries and its rebuild fallback leaves the engine
// Degraded: analytics keep running on the last-good replica — whose
// consistency the staged delta consumption guarantees (§6.3's committed
// prefix) — with an explicit staleness bound, until a later cycle
// succeeds and the engine recovers to Healthy.
package htap

import (
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/mvto"
	"h2tap/internal/obs"
)

// Health is the engine's availability state.
type Health int

const (
	// Healthy: the last propagation cycle (if any) succeeded; the replica
	// tracks the committed prefix the freshness protocol promises.
	Healthy Health = iota
	// Degraded: the last cycle failed through every rung of the retry
	// ladder. The replica still serves its last-good version; results
	// carry a staleness bound. The engine recovers on the next successful
	// cycle (every stale analytics request attempts one).
	Degraded
)

// String names the health state.
func (h Health) String() string {
	if h == Degraded {
		return "degraded"
	}
	return "healthy"
}

// Staleness bounds how far the replica lags the main graph: the freshness
// watermark against the newest commit, and the count of captured delta
// records a propagation has yet to apply. A fresh replica reports zero for
// both.
type Staleness struct {
	// ReplicaTS is the freshness watermark: the replica reflects every
	// transaction with a timestamp below it.
	ReplicaTS mvto.TS
	// LastCommitted is the newest committed transaction timestamp.
	LastCommitted mvto.TS
	// TSLag is the number of commit timestamps in [ReplicaTS,
	// LastCommitted] — an upper bound on the commits the replica may be
	// missing (property-only commits inflate it; PendingRecords is the
	// exact topology-record count).
	TSLag uint64
	// PendingRecords counts captured, still-unconsumed delta records from
	// finished transactions.
	PendingRecords int
}

// Fresh reports a zero staleness bound.
func (s Staleness) Fresh() bool { return s.TSLag == 0 && s.PendingRecords == 0 }

// RetryPolicy bounds the replica-apply attempts of one escalation rung of
// a propagation cycle (delta apply, then rebuild fallback). Transient
// device faults are absorbed by backoff-spaced retries; a fault that
// outlives both rungs degrades the engine.
type RetryPolicy struct {
	// MaxAttempts per rung (default 3).
	MaxAttempts int
	// Backoff before the first retry, doubling per retry (default 1ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 50ms).
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	return p
}

// Health reports the engine's availability state and, when Degraded, the
// fault that caused it.
func (e *Engine) Health() (Health, error) {
	e.healthMu.RLock()
	defer e.healthMu.RUnlock()
	return e.health, e.lastFault
}

// setHealth records a cycle outcome, counting actual state transitions.
func (e *Engine) setHealth(h Health, err error) {
	e.healthMu.Lock()
	changed := e.health != h
	e.health = h
	if h == Healthy {
		err = nil
	}
	e.lastFault = err
	e.healthMu.Unlock()
	if changed {
		e.cfg.Obs.HealthTransition(h == Degraded)
	}
}

// Staleness reports the current staleness bound. Healthy engines report a
// (near-)zero bound; in Degraded mode this is the guarantee attached to
// every analytics result.
func (e *Engine) Staleness() Staleness {
	last := e.store.Oracle().LastCommitted()
	rts := e.ReplicaTS()
	st := Staleness{ReplicaTS: rts, LastCommitted: last}
	// Agree with the §4.3 freshness check: commits above the watermark that
	// captured no topology deltas (property-only transactions, propagation
	// transactions themselves) don't stale the replica, so the bound is
	// zero exactly when Fresh() holds.
	if e.Fresh() {
		return st
	}
	if last >= rts {
		st.TSLag = uint64(last - rts + 1)
	}
	if e.ds.DeltaMode() {
		st.PendingRecords = e.ds.PendingCount(last + 1)
	}
	return st
}

// Backpressure reports whether committers should be throttled: the engine
// is Degraded (retries are failing, so propagation cannot drain the store)
// and the delta store has grown past its high-water mark. The h2tap facade
// turns this into failed commits so a wedged device cannot hide unbounded
// delta-store growth.
func (e *Engine) Backpressure() bool {
	h, _ := e.Health()
	return h == Degraded && e.ds.OverHighWater()
}

// Retries reports the total failed replica-apply attempts that were
// retried or escalated.
func (e *Engine) Retries() int64 {
	e.propMu.Lock()
	defer e.propMu.Unlock()
	return e.retries
}

// FallbackRebuilds reports propagation cycles whose delta apply gave up
// and fell back to a full rebuild.
func (e *Engine) FallbackRebuilds() int64 {
	e.propMu.Lock()
	defer e.propMu.Unlock()
	return e.fallbackRebuilds
}

// DegradedCycles reports propagation cycles that failed outright (both
// rungs exhausted).
func (e *Engine) DegradedCycles() int64 {
	e.propMu.Lock()
	defer e.propMu.Unlock()
	return e.degradedCycles
}

// emergencyPropagate is the delta-store high-water hook. It runs on the
// committing goroutine, so it only kicks off an asynchronous propagation
// (at most one in flight); if that fails, the engine degrades and
// Backpressure takes over.
func (e *Engine) emergencyPropagate() {
	if !e.emergency.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.emergency.Store(false)
		_, _ = e.Propagate()
	}()
}

// retryLoop drives one rung of the escalation ladder: attempt() until it
// succeeds or the policy's attempts are exhausted, with exponential
// backoff between tries. Failed attempts are real cost — their wall time
// and the backoff sleeps are charged to the report (RetryWall and Total),
// so retry accounting stays honest. Runs under propMu.
func (e *Engine) retryLoop(rep *PropagationReport, tc *obs.Cycle, rung string, attempt func(n int) error) error {
	pol := e.cfg.Retry.withDefaults()
	backoff := pol.Backoff
	for n := 1; ; n++ {
		rep.Attempts++
		sp := tc.Span(rung)
		sp.Arg("attempt", itoa(n))
		start := time.Now()
		err := attempt(n)
		if err == nil {
			sp.End()
			return nil
		}
		sp.Arg("err", err.Error())
		sp.End()
		wasted := time.Since(start)
		rep.RetryWall += wasted
		rep.Total.AddWall(wasted)
		e.retries++
		if n >= pol.MaxAttempts {
			return err
		}
		bs := tc.Span("backoff")
		time.Sleep(backoff)
		bs.End()
		rep.RetryWall += backoff
		rep.Total.AddWall(backoff)
		if backoff *= 2; backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

// ScrubReport is the outcome of one replica integrity scrub.
type ScrubReport struct {
	// TS is the main-graph snapshot the replica was checked against (the
	// replica's freshness watermark minus one).
	TS mvto.TS
	// Diverged reports that the replica did not match the snapshot.
	Diverged bool
	// Rebuilt reports that a forced rebuild repaired the divergence.
	Rebuilt bool
	// Wall is the scrub's host time (snapshot build + diff + repair).
	Wall time.Duration
}

// Scrub is the on-demand replica integrity check: it rebuilds a main-graph
// snapshot at the replica's own freshness watermark, diffs it against the
// replica content (host CSR or dynamic structure), and — on divergence —
// forces a full rebuild at the current stable timestamp. A clean scrub of
// a Degraded engine confirms the last-good replica is exactly the
// committed prefix it claims to be.
func (e *Engine) Scrub() (*ScrubReport, error) {
	e.propMu.Lock()
	defer e.propMu.Unlock()
	start := time.Now()

	e.replicaMu.RLock()
	ts := e.replicaTS - 1
	var have *csr.CSR
	switch e.cfg.Replica {
	case StaticCSR:
		have = e.hostCSR
	case DynamicHash:
		have = e.dynRep.Graph().ToCSR()
	}
	e.replicaMu.RUnlock()

	rep := &ScrubReport{TS: ts}
	want := csr.BuildWorkers(e.store, ts, e.workers())
	if !scrubEqual(have, want) {
		rep.Diverged = true
		// Repair: a full rebuild at the current stable bound, inside a
		// propagation transaction like any cycle.
		tp := e.store.Oracle().Begin()
		defer tp.Commit()
		bound := e.store.Oracle().StableTS() + 1
		prep := &PropagationReport{Triggered: true, TS: bound, Workers: e.workers()}
		if err := e.rebuildReplica(bound, prep, nil); err != nil {
			e.setHealth(Degraded, err)
			rep.Wall = time.Since(start)
			return rep, err
		}
		e.setHealth(Healthy, nil)
		rep.Rebuilt = true
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

// scrubEqual compares the replica content against a freshly built
// main-graph CSR. The fresh build sizes its offset table from the *current*
// node-slot count, so nodes committed after the replica's watermark
// contribute empty rows the replica cannot have yet: extra trailing slots
// in want are fine as long as they are empty; every common row must match
// exactly.
func scrubEqual(have, want *csr.CSR) bool {
	if have.NumNodes() > want.NumNodes() {
		return false
	}
	for u := 0; u < have.NumNodes(); u++ {
		hc, hv := have.Row(uint64(u))
		wc, wv := want.Row(uint64(u))
		if len(hc) != len(wc) {
			return false
		}
		for i := range hc {
			if hc[i] != wc[i] || hv[i] != wv[i] {
				return false
			}
		}
	}
	for u := have.NumNodes(); u < want.NumNodes(); u++ {
		if wc, _ := want.Row(uint64(u)); len(wc) != 0 {
			return false
		}
	}
	return true
}
