package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ReqTracer is the request-scoped counterpart of the propagation-cycle
// Tracer: every admitted HTTP request can carry a *Req through the server,
// facade, engine, WAL and 2PC layers, collecting named spans tagged with a
// latency phase (admission, session, engine, wal, wal-fsync, 2pc, stitch).
// Like the cycle tracer it is nil-receiver-safe end to end — a nil
// *ReqTracer hands out nil *Req, and every method on a nil *Req or a
// zero RSpan is a no-op — so uninstrumented paths pay one nil check.
//
// Retention is x/net/trace-style, three classes:
//   - active: requests started but not finished, in an id-keyed map;
//   - recent: the last recentCap finished requests, a ring;
//   - slow:   requests at least SlowThreshold long, retained in their own
//     ring as value snapshots so a burst of fast traffic cannot evict the
//     one trace that explains the tail.
//
// Req objects are pooled: eviction from the recent ring returns the
// request (and its span slot capacity) to the pool. Readers therefore
// never retain a *Req — Snapshot copies everything out under the locks.
type ReqTracer struct {
	now     func() time.Time
	sampleN atomic.Int64 // trace 1 in N requests; <= 1 traces all
	slowNs  atomic.Int64 // wall time at which a request is retained as slow
	tick    atomic.Uint64
	pool    sync.Pool

	mu      sync.Mutex
	seq     uint64
	active  map[uint64]*Req
	recent  []*Req // oldest first
	recCap  int
	slow    []ReqSnapshot // oldest first, value copies
	slowCap int
}

// DefaultSlowThreshold retains any request slower than this in the slow
// ring until evicted by newer slow requests.
const DefaultSlowThreshold = 100 * time.Millisecond

// maxReqSpans bounds the spans one request may record; pathological loops
// (e.g. a stitch barrier retrying hundreds of times) drop spans past it
// rather than growing without bound.
const maxReqSpans = 256

// NewReqTracer returns a tracer retaining the last recent finished
// requests and the last slow over-threshold requests (defaults 64 and 32
// when <= 0).
func NewReqTracer(recent, slow int) *ReqTracer {
	if recent <= 0 {
		recent = 64
	}
	if slow <= 0 {
		slow = 32
	}
	t := &ReqTracer{
		now:     time.Now,
		active:  make(map[uint64]*Req),
		recCap:  recent,
		slowCap: slow,
	}
	t.sampleN.Store(1)
	t.slowNs.Store(int64(DefaultSlowThreshold))
	t.pool.New = func() any { return new(Req) }
	return t
}

// SetClock substitutes the time source (tests). Not for concurrent use
// with tracing.
func (t *ReqTracer) SetClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.now = now
}

// SetSampling traces one in n requests; n <= 1 traces every request.
func (t *ReqTracer) SetSampling(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.sampleN.Store(int64(n))
}

// SetSlowThreshold sets the wall time past which a finished request is
// retained in the slow ring.
func (t *ReqTracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.slowNs.Store(int64(d))
}

// Start begins tracing one request, or returns nil when the tracer is nil
// or the request is sampled out. The returned *Req must not be used after
// Finish.
func (t *ReqTracer) Start(name string) *Req {
	if t == nil {
		return nil
	}
	if n := t.sampleN.Load(); n > 1 && t.tick.Add(1)%uint64(n) != 0 {
		return nil
	}
	r := t.pool.Get().(*Req)
	r.tr = t
	r.name = name
	r.start = t.now()
	r.end = time.Time{}
	r.dominant = ""
	r.spans = r.spans[:0]
	r.args = r.args[:0]
	t.mu.Lock()
	t.seq++
	r.id = t.seq
	t.active[r.id] = r
	t.mu.Unlock()
	return r
}

// Req is one in-flight traced request. Span recording is safe from
// multiple goroutines (the WAL group-commit leader stamps batch times read
// by followers), though a request is normally owned by one handler.
type Req struct {
	tr *ReqTracer
	id uint64

	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	dominant string
	spans    []reqSpan
	args     []Label
}

type reqSpan struct {
	name  string
	phase string
	start time.Time
	end   time.Time
	args  []Label
}

// RSpan is a handle on one open span; the zero value is a no-op.
type RSpan struct {
	r *Req
	i int
}

// newSpanLocked appends a span slot, reusing pooled capacity (including
// each slot's args backing array). Returns -1 past the span cap.
func (r *Req) newSpanLocked(name, phase string, start, end time.Time) int {
	if len(r.spans) >= maxReqSpans {
		return -1
	}
	if len(r.spans) < cap(r.spans) {
		r.spans = r.spans[:len(r.spans)+1]
		sp := &r.spans[len(r.spans)-1]
		sp.name, sp.phase, sp.start, sp.end = name, phase, start, end
		sp.args = sp.args[:0]
	} else {
		r.spans = append(r.spans, reqSpan{name: name, phase: phase, start: start, end: end})
	}
	return len(r.spans) - 1
}

// Span opens a live span; close it with End.
func (r *Req) Span(name, phase string) RSpan {
	if r == nil {
		return RSpan{}
	}
	now := r.tr.now()
	r.mu.Lock()
	i := r.newSpanLocked(name, phase, now, time.Time{})
	r.mu.Unlock()
	if i < 0 {
		return RSpan{}
	}
	return RSpan{r: r, i: i}
}

// AddSpan records an already-measured span with explicit bounds — the WAL
// follower path reconstructs its enqueue/write/fsync/ack breakdown from
// leader-stamped batch timestamps after the ack.
func (r *Req) AddSpan(name, phase string, start, end time.Time, args ...Label) {
	if r == nil || start.IsZero() {
		return
	}
	r.mu.Lock()
	if i := r.newSpanLocked(name, phase, start, end); i >= 0 && len(args) > 0 {
		r.spans[i].args = append(r.spans[i].args, args...)
	}
	r.mu.Unlock()
}

// Arg attaches a key/value to the request.
func (r *Req) Arg(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.args = append(r.args, Label{Key: key, Value: value})
	r.mu.Unlock()
}

// End closes the span.
func (s RSpan) End() {
	if s.r == nil {
		return
	}
	now := s.r.tr.now()
	s.r.mu.Lock()
	if s.i < len(s.r.spans) && s.r.spans[s.i].end.IsZero() {
		s.r.spans[s.i].end = now
	}
	s.r.mu.Unlock()
}

// Arg attaches a key/value to the span.
func (s RSpan) Arg(key, value string) {
	if s.r == nil {
		return
	}
	s.r.mu.Lock()
	if s.i < len(s.r.spans) {
		s.r.spans[s.i].args = append(s.r.spans[s.i].args, Label{Key: key, Value: value})
	}
	s.r.mu.Unlock()
}

// Finish completes the request: computes the dominant phase (the phase
// whose spans sum largest; "untraced" with no spans), files the request
// into the recent ring — and, past the slow threshold, a snapshot into the
// slow ring — and reports (dominant, wall time). The *Req must not be used
// after Finish: eviction from the recent ring recycles it.
//
// On a nil *Req (tracer off or sampled out) it reports ("untraced", 0).
func (r *Req) Finish() (dominant string, wall time.Duration) {
	if r == nil {
		return "untraced", 0
	}
	t := r.tr
	now := t.now()
	t.mu.Lock()
	r.mu.Lock()
	r.end = now
	wall = r.end.Sub(r.start)
	r.dominant = dominantPhase(r.spans, r.end)
	dominant = r.dominant
	slow := int64(wall) >= t.slowNs.Load()
	var snap ReqSnapshot
	if slow {
		snap = r.snapshotLocked()
	}
	r.mu.Unlock()

	delete(t.active, r.id)
	if len(t.recent) >= t.recCap {
		ev := t.recent[0]
		copy(t.recent, t.recent[1:])
		t.recent[len(t.recent)-1] = nil
		t.recent = t.recent[:len(t.recent)-1]
		t.pool.Put(ev)
	}
	t.recent = append(t.recent, r)
	if slow {
		if len(t.slow) >= t.slowCap {
			copy(t.slow, t.slow[1:])
			t.slow = t.slow[:len(t.slow)-1]
		}
		t.slow = append(t.slow, snap)
	}
	t.mu.Unlock()
	return dominant, wall
}

// dominantPhase sums span wall time per phase (unclosed spans count to the
// request end) and returns the largest.
func dominantPhase(spans []reqSpan, end time.Time) string {
	if len(spans) == 0 {
		return "untraced"
	}
	type sum struct {
		phase string
		ns    int64
	}
	var sums [16]sum
	n := 0
	for i := range spans {
		sp := &spans[i]
		e := sp.end
		if e.IsZero() {
			e = end
		}
		d := e.Sub(sp.start)
		if d < 0 {
			d = 0
		}
		j := 0
		for ; j < n; j++ {
			if sums[j].phase == sp.phase {
				sums[j].ns += int64(d)
				break
			}
		}
		if j == n && n < len(sums) {
			sums[n] = sum{phase: sp.phase, ns: int64(d)}
			n++
		}
	}
	best := 0
	for j := 1; j < n; j++ {
		if sums[j].ns > sums[best].ns {
			best = j
		}
	}
	return sums[best].phase
}

// ReqSnapshot is one request copied out of the tracer; safe to retain.
type ReqSnapshot struct {
	ID       uint64         `json:"id"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	End      time.Time      `json:"end,omitempty"` // zero while active
	WallMs   float64        `json:"wall_ms"`
	Active   bool           `json:"active,omitempty"`
	Dominant string         `json:"dominant_phase,omitempty"`
	Args     []Label        `json:"args,omitempty"`
	Spans    []SpanSnapshot `json:"spans,omitempty"`
}

// SpanSnapshot is one span copied out of a request.
type SpanSnapshot struct {
	Name  string    `json:"name"`
	Phase string    `json:"phase"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end,omitempty"` // zero while open
	DurMs float64   `json:"dur_ms"`
	Args  []Label   `json:"args,omitempty"`
}

// snapshotLocked copies the request; r.mu must be held.
func (r *Req) snapshotLocked() ReqSnapshot {
	s := ReqSnapshot{
		ID:       r.id,
		Name:     r.name,
		Start:    r.start,
		End:      r.end,
		Active:   r.end.IsZero(),
		Dominant: r.dominant,
	}
	if !r.end.IsZero() {
		s.WallMs = float64(r.end.Sub(r.start)) / float64(time.Millisecond)
	}
	if len(r.args) > 0 {
		s.Args = append([]Label(nil), r.args...)
	}
	if len(r.spans) > 0 {
		s.Spans = make([]SpanSnapshot, len(r.spans))
		for i := range r.spans {
			sp := &r.spans[i]
			ss := SpanSnapshot{Name: sp.name, Phase: sp.phase, Start: sp.start, End: sp.end}
			if !sp.end.IsZero() {
				ss.DurMs = float64(sp.end.Sub(sp.start)) / float64(time.Millisecond)
			}
			if len(sp.args) > 0 {
				ss.Args = append([]Label(nil), sp.args...)
			}
			s.Spans[i] = ss
		}
	}
	return s
}

// ReqTrace is the full /debug/requests view.
type ReqTrace struct {
	Active []ReqSnapshot `json:"active"`
	Recent []ReqSnapshot `json:"recent"`
	Slow   []ReqSnapshot `json:"slow"`
}

// Snapshot copies the tracer state out; nil tracers report empty slices.
// Active requests are ordered by id, recent and slow oldest first.
func (t *ReqTracer) Snapshot() ReqTrace {
	out := ReqTrace{
		Active: []ReqSnapshot{},
		Recent: []ReqSnapshot{},
		Slow:   []ReqSnapshot{},
	}
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.active {
		r.mu.Lock()
		out.Active = append(out.Active, r.snapshotLocked())
		r.mu.Unlock()
	}
	sort.Slice(out.Active, func(i, j int) bool { return out.Active[i].ID < out.Active[j].ID })
	for _, r := range t.recent {
		r.mu.Lock()
		out.Recent = append(out.Recent, r.snapshotLocked())
		r.mu.Unlock()
	}
	out.Slow = append(out.Slow, t.slow...)
	return out
}

// WriteJSON renders the /debug/requests body.
func (t *ReqTracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Snapshot())
}

// WriteChromeTraceMerged renders propagation cycles and request traces as
// one Chrome trace-event stream on a shared epoch (the earliest start
// across both), so a commit's fsync wait lines up visually with the
// propagation cycle that delayed it. Cycles keep their PID 1 / TID seq
// layout from WriteChromeTrace; requests get PID 2 with TID = request id,
// request spans categorized by phase. Duplicate request ids (a slow
// request still in the recent ring) are emitted once.
func WriteChromeTraceMerged(w io.Writer, cycles []*Cycle, reqs []ReqSnapshot) error {
	var epoch time.Time
	note := func(ts time.Time) {
		if !ts.IsZero() && (epoch.IsZero() || ts.Before(epoch)) {
			epoch = ts
		}
	}
	for _, c := range cycles {
		note(c.start)
	}
	seen := make(map[uint64]bool, len(reqs))
	kept := reqs[:0:0]
	for _, r := range reqs {
		if seen[r.ID] {
			continue
		}
		seen[r.ID] = true
		kept = append(kept, r)
		note(r.Start)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].ID < kept[j].ID })

	out := chromeTrace{TraceEvents: []traceEvent{}}
	for _, c := range cycles {
		out.TraceEvents = append(out.TraceEvents, cycleEvents(c, epoch)...)
	}
	for _, r := range kept {
		end := r.End
		if end.IsZero() {
			end = r.Start
		}
		ev := traceEvent{
			Name: r.Name,
			Cat:  "request",
			Ph:   "X",
			TS:   r.Start.Sub(epoch).Microseconds(),
			Dur:  end.Sub(r.Start).Microseconds(),
			PID:  2,
			TID:  r.ID,
			Args: argMap(r.Args),
		}
		if r.Dominant != "" {
			if ev.Args == nil {
				ev.Args = map[string]string{}
			}
			ev.Args["dominant_phase"] = r.Dominant
		}
		out.TraceEvents = append(out.TraceEvents, ev)
		for _, sp := range r.Spans {
			send := sp.End
			if send.IsZero() {
				send = sp.Start
			}
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: sp.Name,
				Cat:  sp.Phase,
				Ph:   "X",
				TS:   sp.Start.Sub(epoch).Microseconds(),
				Dur:  send.Sub(sp.Start).Microseconds(),
				PID:  2,
				TID:  r.ID,
				Args: argMap(sp.Args),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
