package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), rec.Header()
}

func TestMetricsEndpoint(t *testing.T) {
	o := New()
	o.ObserveCommit(time.Millisecond)
	code, body, hdr := get(t, Handler(o), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(body, "h2tap_commit_seconds_count 1") {
		t.Fatalf("metrics body missing commit count:\n%s", body)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	o := New()
	h := Handler(o)
	if code, body, _ := get(t, h, "/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok: ") {
		t.Fatalf("default healthz = %d %q", code, body)
	}
	o.SetHealthSource(func() (bool, string) { return false, "pending=12" })
	code, body, _ := get(t, h, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded: pending=12") {
		t.Fatalf("degraded healthz = %d %q", code, body)
	}
	o.SetHealthSource(func() (bool, string) { return true, "replica fresh" })
	if code, _, _ := get(t, h, "/healthz"); code != http.StatusOK {
		t.Fatalf("recovered healthz = %d", code)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	o := New()
	o.Tracer.SetClock(fakeClock())
	for i := 0; i < 3; i++ {
		c := o.StartCycle("propagation")
		c.Span("scan").End()
		c.Finish()
	}
	h := Handler(o)

	code, body, hdr := get(t, h, "/debug/trace")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("trace = %d %q", code, hdr.Get("Content-Type"))
	}
	var out chromeTrace
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 6 { // 3 cycles × (cycle + scan span)
		t.Fatalf("events = %d, want 6", len(out.TraceEvents))
	}

	// ?n=1 returns only the newest cycle.
	_, body, _ = get(t, h, "/debug/trace?n=1")
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 2 || out.TraceEvents[0].TID != 3 {
		t.Fatalf("n=1 events = %+v", out.TraceEvents)
	}
}

func TestPprofEndpoint(t *testing.T) {
	code, body, _ := get(t, Handler(New()), "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d", code)
	}
}

func TestServe(t *testing.T) {
	o := New()
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "h2tap_commit_seconds") {
		t.Fatalf("live /metrics = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
