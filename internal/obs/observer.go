package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Observer bundles the three observability substrates — metrics registry,
// cycle tracer, drift tracker — plus the pre-resolved instruments the hot
// paths hit. Every method is nil-receiver-safe: a nil *Observer is the
// zero-config no-op, so instrumented code calls unconditionally and pays
// one nil check when observability is off.
type Observer struct {
	Reg      *Registry
	Tracer   *Tracer
	Requests *ReqTracer
	Drift    *Drift

	commitHist *Histogram

	deltaAppends *Counter
	deltaRecords *Counter
	deltaIns     *Counter
	deltaDels    *Counter

	phaseMu sync.RWMutex
	phase   map[string]*Histogram
	total   *Histogram

	cyclesOK       *Counter
	cyclesDegraded *Counter
	rebuildsCost   *Counter
	rebuildsFall   *Counter
	recsConsumed   *Counter
	deltasCombined *Counter
	attempts       *Counter
	retries        *Counter

	healthToDegraded *Counter
	healthToHealthy  *Counter

	healthMu  sync.RWMutex
	healthSrc func() (ok bool, detail string)
}

// Phase names pre-registered in the propagation phase histogram family, so
// every family appears in the exposition from the first scrape.
var phaseNames = []string{"scan", "merge", "rebuild", "transfer", "ingest", "persist", "retry"}

// New returns an Observer with a fresh registry, a 64-cycle tracer and a
// 128-observation drift window, with every static metric family
// pre-registered (families are visible from the first scrape even at zero).
func New() *Observer {
	o := &Observer{
		Reg:      NewRegistry(),
		Tracer:   NewTracer(64),
		Requests: NewReqTracer(64, 32),
		Drift:    NewDrift(128),
		phase:    make(map[string]*Histogram),
	}
	r := o.Reg

	// Process identity and runtime health: who is this binary and is its
	// runtime sane, answerable from /metrics alone.
	r.Gauge("h2tap_build_info",
		"Build identity; always 1, with the version carried in labels.",
		L("version", buildVersion()), L("go_version", runtime.Version())).Set(1)
	started := time.Now()
	r.GaugeFunc("h2tap_uptime_seconds",
		"Seconds since this observer (process, in practice) was created.",
		func() float64 { return time.Since(started).Seconds() })
	r.GaugeFunc("h2tap_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	o.commitHist = r.Histogram("h2tap_commit_seconds",
		"MVTO transaction commit latency (commit hooks + oracle publication).", nil)

	o.deltaAppends = r.Counter("h2tap_delta_appends_total",
		"Committed transactions whose topology deltas were appended to DELTA_FE.")
	o.deltaRecords = r.Counter("h2tap_delta_append_records_total",
		"Delta records appended to DELTA_FE.")
	o.deltaIns = r.Counter("h2tap_delta_append_inserts_total",
		"Inserted-edge payload elements appended to DELTA_FE.")
	o.deltaDels = r.Counter("h2tap_delta_append_deletes_total",
		"Deleted-edge payload elements appended to DELTA_FE.")

	for _, p := range phaseNames {
		o.phase[p] = r.Histogram("h2tap_propagation_phase_seconds",
			"Per-phase wall (scan/merge/rebuild/persist/retry) or simulated (transfer/ingest) time of propagation cycles.",
			nil, L("phase", p))
	}
	o.total = r.Histogram("h2tap_propagation_total_seconds",
		"Critical-path total (wall + simulated) of propagation cycles.", nil)

	o.cyclesOK = r.Counter("h2tap_propagation_cycles_total",
		"Completed propagation cycles by outcome.", L("result", "ok"))
	o.cyclesDegraded = r.Counter("h2tap_propagation_cycles_total",
		"Completed propagation cycles by outcome.", L("result", "degraded"))
	o.rebuildsCost = r.Counter("h2tap_propagation_rebuilds_total",
		"Propagation cycles that rebuilt the CSR instead of merging, by cause.", L("cause", "cost-model"))
	o.rebuildsFall = r.Counter("h2tap_propagation_rebuilds_total",
		"Propagation cycles that rebuilt the CSR instead of merging, by cause.", L("cause", "fallback"))
	o.recsConsumed = r.Counter("h2tap_propagation_records_total",
		"Delta records consumed by propagation cycles.")
	o.deltasCombined = r.Counter("h2tap_propagation_deltas_total",
		"Combined per-node deltas applied by propagation cycles.")
	o.attempts = r.Counter("h2tap_propagation_attempts_total",
		"Replica-apply attempts across all cycles and escalation rungs.")
	o.retries = r.Counter("h2tap_propagation_retries_total",
		"Failed replica-apply attempts that were retried or escalated.")

	o.healthToDegraded = r.Counter("h2tap_health_transitions_total",
		"Engine health-state transitions.", L("to", "degraded"))
	o.healthToHealthy = r.Counter("h2tap_health_transitions_total",
		"Engine health-state transitions.", L("to", "healthy"))

	for _, m := range DriftModels {
		m := m
		r.GaugeFunc("h2tap_costmodel_rel_error",
			"Rolling mean relative error |predicted-actual|/actual of the cost model component.",
			func() float64 { return o.Drift.RelErr(m) }, L("model", m))
		r.CounterFunc("h2tap_costmodel_predictions_total",
			"Predicted-vs-actual observations recorded per cost model component.",
			func() float64 { return float64(o.Drift.Count(m)) }, L("model", m))
	}
	return o
}

// buildVersion reports the main module version baked into the binary, or
// "devel" when built from a working tree.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "devel"
}

// StartRequest opens a request trace (nil-safe; may return nil when
// sampled out).
func (o *Observer) StartRequest(name string) *Req {
	if o == nil {
		return nil
	}
	return o.Requests.Start(name)
}

// ObserveCommit records one MVTO commit latency.
func (o *Observer) ObserveCommit(d time.Duration) {
	if o == nil {
		return
	}
	o.commitHist.ObserveDuration(d)
}

// DeltaAppend records one delta-store Capture: records appended plus
// insert/delete payload elements.
func (o *Observer) DeltaAppend(records, ins, dels int) {
	if o == nil {
		return
	}
	o.deltaAppends.Inc()
	o.deltaRecords.Add(uint64(records))
	o.deltaIns.Add(uint64(ins))
	o.deltaDels.Add(uint64(dels))
}

// StartCycle opens a propagation cycle trace (nil-safe, may return nil).
func (o *Observer) StartCycle(name string) *Cycle {
	if o == nil {
		return nil
	}
	return o.Tracer.StartCycle(name)
}

// ObservePhase records one phase duration of a propagation cycle.
func (o *Observer) ObservePhase(phase string, d time.Duration) {
	if o == nil {
		return
	}
	o.phaseMu.RLock()
	h := o.phase[phase]
	o.phaseMu.RUnlock()
	if h == nil {
		h = o.Reg.Histogram("h2tap_propagation_phase_seconds",
			"Per-phase wall (scan/merge/rebuild/persist/retry) or simulated (transfer/ingest) time of propagation cycles.",
			nil, L("phase", phase))
		o.phaseMu.Lock()
		o.phase[phase] = h
		o.phaseMu.Unlock()
	}
	h.ObserveDuration(d)
}

// CycleStats summarizes one finished propagation cycle for the counters.
type CycleStats struct {
	OK              bool
	Total           time.Duration
	Records, Deltas int
	Attempts        int
	Rebuild         bool
	FallbackRebuild bool
}

// ObserveCycleDone records the cycle-level counters and the total
// histogram.
func (o *Observer) ObserveCycleDone(s CycleStats) {
	if o == nil {
		return
	}
	if s.OK {
		o.cyclesOK.Inc()
	} else {
		o.cyclesDegraded.Inc()
	}
	o.total.ObserveDuration(s.Total)
	o.recsConsumed.Add(uint64(s.Records))
	o.deltasCombined.Add(uint64(s.Deltas))
	o.attempts.Add(uint64(s.Attempts))
	if s.Attempts > 1 {
		o.retries.Add(uint64(s.Attempts - 1))
	}
	if s.Rebuild {
		if s.FallbackRebuild {
			o.rebuildsFall.Inc()
		} else {
			o.rebuildsCost.Inc()
		}
	}
}

// HealthTransition records an engine health-state change.
func (o *Observer) HealthTransition(degraded bool) {
	if o == nil {
		return
	}
	if degraded {
		o.healthToDegraded.Inc()
	} else {
		o.healthToHealthy.Inc()
	}
}

// RecordDrift adds one predicted-vs-actual observation (seconds) for a
// cost-model component.
func (o *Observer) RecordDrift(model string, predicted, actual float64) {
	if o == nil {
		return
	}
	o.Drift.Record(model, predicted, actual)
}

// SetHealthSource wires /healthz to the engine's availability state. The
// last registration wins, matching the gauge semantics when an engine is
// recreated over the same observer.
func (o *Observer) SetHealthSource(fn func() (ok bool, detail string)) {
	if o == nil {
		return
	}
	o.healthMu.Lock()
	o.healthSrc = fn
	o.healthMu.Unlock()
}

// Health evaluates the registered health source; with none registered the
// observer is trivially healthy.
func (o *Observer) Health() (bool, string) {
	if o == nil {
		return true, "no observer"
	}
	o.healthMu.RLock()
	fn := o.healthSrc
	o.healthMu.RUnlock()
	if fn == nil {
		return true, "no engine"
	}
	return fn()
}
