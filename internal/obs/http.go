package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler serves the observability surface for an Observer:
//
//	/metrics         Prometheus text exposition of the registry
//	/healthz         200 while the engine is Healthy, 503 when Degraded
//	/debug/trace     last-N propagation cycles merged with retained request
//	                 traces as Chrome trace-event JSON on one clock
//	                 (?n= caps the cycle count; default all retained)
//	/debug/requests  active / recent / slow request traces as JSON
//	/debug/pprof     the standard Go profiling endpoints
func Handler(o *Observer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		ok, detail := o.Health()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded: %s\n", detail)
			return
		}
		fmt.Fprintf(w, "ok: %s\n", detail)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		snap := o.Requests.Snapshot()
		reqs := append(snap.Recent, snap.Slow...)
		if err := WriteChromeTraceMerged(w, o.Tracer.Cycles(n), reqs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.Requests.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability HTTP listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. "127.0.0.1:0" for
// an ephemeral port) and serves in a background goroutine. Use Addr for
// the bound address and Close to shut down.
func Serve(addr string, o *Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(o), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return &Server{ln: ln, srv: srv}, nil
}

// Addr reports the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// closeTimeout bounds how long Close waits for in-flight scrapes. DB.Close
// calls Close while scrapers may be mid-request; a hung or slow-reading
// scraper must not be able to wedge database shutdown.
const closeTimeout = 2 * time.Second

// Close shuts the listener down gracefully: it stops accepting, gives
// in-flight requests up to closeTimeout to finish, then hard-closes any
// stragglers. Safe to call while requests are being served.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
