package obs

import (
	"strings"
	"testing"
	"time"
)

func TestNilObserverSafe(t *testing.T) {
	var o *Observer
	o.ObserveCommit(time.Millisecond)
	o.DeltaAppend(1, 1, 0)
	o.ObservePhase("scan", time.Millisecond)
	o.ObserveCycleDone(CycleStats{OK: true})
	o.HealthTransition(true)
	o.RecordDrift("scan", 1, 1)
	o.SetHealthSource(func() (bool, string) { return false, "x" })
	if c := o.StartCycle("p"); c != nil {
		t.Fatal("nil observer handed out a cycle")
	}
	if ok, detail := o.Health(); !ok || detail != "no observer" {
		t.Fatalf("nil Health = %v %q", ok, detail)
	}
}

// TestFamiliesPreRegistered: every static family is visible from the first
// scrape, at zero, before any instrumentation fires — so dashboards and the
// smoke test can assert presence without racing the first propagation.
func TestFamiliesPreRegistered(t *testing.T) {
	out := expo(New().Reg)
	for _, family := range []string{
		"h2tap_commit_seconds",
		"h2tap_delta_appends_total",
		"h2tap_delta_append_records_total",
		"h2tap_delta_append_inserts_total",
		"h2tap_delta_append_deletes_total",
		`h2tap_propagation_phase_seconds_bucket{phase="scan",le="+Inf"}`,
		`h2tap_propagation_phase_seconds_bucket{phase="transfer",le="+Inf"}`,
		"h2tap_propagation_total_seconds",
		`h2tap_propagation_cycles_total{result="ok"} 0`,
		`h2tap_propagation_cycles_total{result="degraded"} 0`,
		`h2tap_propagation_rebuilds_total{cause="cost-model"} 0`,
		`h2tap_propagation_rebuilds_total{cause="fallback"} 0`,
		"h2tap_propagation_records_total",
		"h2tap_propagation_attempts_total",
		"h2tap_propagation_retries_total",
		`h2tap_health_transitions_total{to="degraded"} 0`,
		`h2tap_costmodel_rel_error{model="scan"} 0`,
		`h2tap_costmodel_rel_error{model="merge"} 0`,
		`h2tap_costmodel_rel_error{model="rebuild"} 0`,
		`h2tap_costmodel_rel_error{model="transfer"} 0`,
		`h2tap_costmodel_predictions_total{model="scan"} 0`,
	} {
		if !strings.Contains(out, family) {
			t.Fatalf("family %q absent from first scrape:\n%s", family, out)
		}
	}
}

func TestObserveCycleDoneCounters(t *testing.T) {
	o := New()
	o.ObserveCycleDone(CycleStats{OK: true, Total: time.Second, Records: 10, Deltas: 7, Attempts: 1})
	o.ObserveCycleDone(CycleStats{OK: false, Total: time.Second, Attempts: 4})
	o.ObserveCycleDone(CycleStats{OK: true, Attempts: 1, Rebuild: true})
	o.ObserveCycleDone(CycleStats{OK: true, Attempts: 2, Rebuild: true, FallbackRebuild: true})
	out := expo(o.Reg)
	for _, line := range []string{
		`h2tap_propagation_cycles_total{result="ok"} 3`,
		`h2tap_propagation_cycles_total{result="degraded"} 1`,
		"h2tap_propagation_records_total 10",
		"h2tap_propagation_deltas_total 7",
		"h2tap_propagation_attempts_total 8",
		"h2tap_propagation_retries_total 4", // (4-1) + (2-1)
		`h2tap_propagation_rebuilds_total{cause="cost-model"} 1`,
		`h2tap_propagation_rebuilds_total{cause="fallback"} 1`,
		"h2tap_propagation_total_seconds_count 4",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

func TestDeltaAppendAndCommit(t *testing.T) {
	o := New()
	o.ObserveCommit(time.Millisecond)
	o.ObserveCommit(2 * time.Millisecond)
	o.DeltaAppend(3, 2, 1)
	out := expo(o.Reg)
	for _, line := range []string{
		"h2tap_commit_seconds_count 2",
		"h2tap_delta_appends_total 1",
		"h2tap_delta_append_records_total 3",
		"h2tap_delta_append_inserts_total 2",
		"h2tap_delta_append_deletes_total 1",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

func TestObservePhaseLazyRegistration(t *testing.T) {
	o := New()
	o.ObservePhase("scrub", time.Millisecond) // not a pre-registered phase
	if !strings.Contains(expo(o.Reg), `h2tap_propagation_phase_seconds_count{phase="scrub"} 1`) {
		t.Fatal("unknown phase not lazily registered")
	}
}

func TestHealthSource(t *testing.T) {
	o := New()
	if ok, detail := o.Health(); !ok || detail != "no engine" {
		t.Fatalf("default Health = %v %q", ok, detail)
	}
	o.SetHealthSource(func() (bool, string) { return false, "first" })
	o.SetHealthSource(func() (bool, string) { return false, "degraded; pending=9" })
	ok, detail := o.Health()
	if ok || detail != "degraded; pending=9" {
		t.Fatalf("Health = %v %q, want last-registered source", ok, detail)
	}
	o.HealthTransition(true)
	o.HealthTransition(false)
	out := expo(o.Reg)
	if !strings.Contains(out, `h2tap_health_transitions_total{to="degraded"} 1`) ||
		!strings.Contains(out, `h2tap_health_transitions_total{to="healthy"} 1`) {
		t.Fatalf("transition counters wrong:\n%s", out)
	}
}

func TestRecordDriftExposed(t *testing.T) {
	o := New()
	o.RecordDrift("transfer", 1.5, 1.0)
	out := expo(o.Reg)
	if !strings.Contains(out, `h2tap_costmodel_predictions_total{model="transfer"} 1`) {
		t.Fatalf("prediction counter not pulled:\n%s", out)
	}
	if !strings.Contains(out, `h2tap_costmodel_rel_error{model="transfer"} 0.5`) {
		t.Fatalf("rel error gauge not pulled:\n%s", out)
	}
}
