// Package obs is the engine's observability layer: a dependency-free
// (stdlib-only) metrics registry with Prometheus text exposition, a
// ring-buffered span tracer for propagation cycles exportable as Chrome
// trace-event JSON, and a cost-model drift tracker comparing the §6.4
// predictions against measured wall time. Every hook the hot paths call is
// nil-receiver-safe, so an uninstrumented engine pays only a nil check.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair.
type Label struct{ Key, Value string }

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// desc is the identity of one metric series: family name, help, type, and
// its label set.
type desc struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []Label
}

// key uniquely identifies the series within the registry.
func (d *desc) key() string { return d.name + labelString(d.labels) }

// labelString renders a label set as {k="v",...}, or "" when empty.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// metric is one registered series.
type metric interface {
	desc() *desc
	// write appends the series' sample lines in exposition format.
	write(w io.Writer)
}

// Registry is a race-safe metric registry. Creation methods are
// get-or-create: asking for an existing (name, labels) series returns the
// same instrument, so packages can resolve their handles independently.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]metric)}
}

// lookup returns the existing series for d, or installs make().
func (r *Registry) lookup(d desc, mk func() metric) metric {
	key := d.key()
	r.mu.RLock()
	m := r.byKey[key]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byKey[key]; m != nil {
		return m
	}
	m = mk()
	r.byKey[key] = m
	return m
}

// Counter returns the monotonically increasing counter for (name, labels),
// creating it if needed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	d := desc{name: name, help: help, typ: "counter", labels: labels}
	m := r.lookup(d, func() metric { return &Counter{d: d} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as %s", d.key(), m.desc().typ))
	}
	return c
}

// Gauge returns the settable gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	d := desc{name: name, help: help, typ: "gauge", labels: labels}
	m := r.lookup(d, func() metric { return &Gauge{d: d} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as %s", d.key(), m.desc().typ))
	}
	return g
}

// GaugeFunc registers a gauge evaluated at exposition time. Re-registering
// the same series swaps the callback (last registration wins), so a
// recreated engine can re-point the gauges at itself.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.funcMetric("gauge", name, help, fn, labels)
}

// CounterFunc registers a counter whose value is pulled from fn at
// exposition time — for subsystems that already count atomically (device op
// counts, WAL appends) where a push hook would double the bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.funcMetric("counter", name, help, fn, labels)
}

func (r *Registry) funcMetric(typ, name, help string, fn func() float64, labels []Label) {
	d := desc{name: name, help: help, typ: typ, labels: labels}
	m := r.lookup(d, func() metric { return &funcMetric{d: d} })
	f, ok := m.(*funcMetric)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as %s", d.key(), m.desc().typ))
	}
	f.fn.Store(&fn)
}

// Histogram returns the fixed-bucket histogram for (name, labels). buckets
// are ascending upper bounds (an implicit +Inf bucket is appended); nil
// selects DefBuckets. Bucket layouts are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	d := desc{name: name, help: help, typ: "histogram", labels: labels}
	m := r.lookup(d, func() metric { return newHistogram(d, buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as %s", d.key(), m.desc().typ))
	}
	return h
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format, grouped by family with one HELP/TYPE header each.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	metrics := make([]metric, 0, len(r.byKey))
	for _, m := range r.byKey {
		metrics = append(metrics, m)
	}
	r.mu.RUnlock()

	sort.Slice(metrics, func(i, j int) bool {
		di, dj := metrics[i].desc(), metrics[j].desc()
		if di.name != dj.name {
			return di.name < dj.name
		}
		return labelString(di.labels) < labelString(dj.labels)
	})
	lastFamily := ""
	for _, m := range metrics {
		d := m.desc()
		if d.name != lastFamily {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", d.name, d.help, d.name, d.typ)
			lastFamily = d.name
		}
		m.write(w)
	}
}

// Counter is a monotonically increasing uint64 counter.
type Counter struct {
	d desc
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) desc() *desc { return &c.d }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s%s %d\n", c.d.name, labelString(c.d.labels), c.v.Load())
}

// Gauge is a settable float64 gauge.
type Gauge struct {
	d    desc
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates delta (CAS loop; gauges are read-mostly).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) desc() *desc { return &g.d }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s%s %s\n", g.d.name, labelString(g.d.labels), formatFloat(g.Value()))
}

// funcMetric is a pull-evaluated series (GaugeFunc / CounterFunc).
type funcMetric struct {
	d  desc
	fn atomic.Pointer[func() float64]
}

func (f *funcMetric) desc() *desc { return &f.d }
func (f *funcMetric) write(w io.Writer) {
	var v float64
	if fn := f.fn.Load(); fn != nil {
		v = (*fn)()
	}
	fmt.Fprintf(w, "%s%s %s\n", f.d.name, labelString(f.d.labels), formatFloat(v))
}

// DefBuckets are the default histogram buckets, in seconds: 1µs to 10s,
// roughly logarithmic — sized for commit latencies (µs) through propagation
// cycles (ms–s).
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram. Observations are lock-free: one
// atomic add on the bucket plus a CAS-add on the sum.
type Histogram struct {
	d      desc
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(d desc, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending", d.name))
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{d: d, bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value (seconds for duration histograms).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts by
// linear interpolation within the containing bucket — the standard
// histogram_quantile estimate. Returns NaN with no observations; values in
// the +Inf bucket clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) desc() *desc { return &h.d }
func (h *Histogram) write(w io.Writer) {
	base := h.d.labels
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.d.name,
			labelString(append(append([]Label(nil), base...), L("le", formatFloat(b)))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.d.name,
		labelString(append(append([]Label(nil), base...), L("le", "+Inf"))), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", h.d.name, labelString(base), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.d.name, labelString(base), h.total.Load())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
