package obs

import (
	"math"
	"testing"
)

func TestDriftRelErr(t *testing.T) {
	d := NewDrift(8)
	if d.RelErr("scan") != 0 || d.Count("scan") != 0 {
		t.Fatal("unknown model not zero")
	}
	d.Record("scan", 2, 1)   // |2-1|/1 = 1
	d.Record("scan", 1, 2)   // |1-2|/2 = 0.5
	d.Record("scan", 3, 3)   // 0
	if got, want := d.RelErr("scan"), 0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("RelErr = %v, want %v", got, want)
	}
	if d.Count("scan") != 3 {
		t.Fatalf("Count = %d, want 3", d.Count("scan"))
	}
	// Models are independent.
	if d.RelErr("merge") != 0 {
		t.Fatal("merge leaked scan observations")
	}
}

func TestDriftZeroActualSkipped(t *testing.T) {
	d := NewDrift(8)
	d.Record("merge", 1, 0) // unusable: would divide by zero
	if d.RelErr("merge") != 0 {
		t.Fatalf("RelErr = %v, want 0 with only a zero-actual sample", d.RelErr("merge"))
	}
	if d.Count("merge") != 1 {
		t.Fatal("zero-actual sample not counted as an observation")
	}
	d.Record("merge", 2, 1)
	if got := d.RelErr("merge"); math.Abs(got-1) > 1e-9 {
		t.Fatalf("RelErr = %v, want 1 (zero-actual skipped from the mean)", got)
	}
}

func TestDriftWindowRolls(t *testing.T) {
	d := NewDrift(2)
	d.Record("rebuild", 10, 1) // relerr 9, will be evicted
	d.Record("rebuild", 2, 1)  // relerr 1
	d.Record("rebuild", 3, 1)  // relerr 2, evicts the first
	if got, want := d.RelErr("rebuild"), 1.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("RelErr = %v, want %v (window of 2)", got, want)
	}
	// Count is total, not window-capped.
	if d.Count("rebuild") != 3 {
		t.Fatalf("Count = %d, want 3", d.Count("rebuild"))
	}
}

func TestDriftNilSafe(t *testing.T) {
	var d *Drift
	d.Record("scan", 1, 1)
	if d.RelErr("scan") != 0 || d.Count("scan") != 0 {
		t.Fatal("nil drift not a no-op")
	}
}
