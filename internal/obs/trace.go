package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer records propagation cycles as span trees in a fixed-size ring:
// the newest N finished cycles are retained, older ones are dropped. A nil
// *Tracer is a valid no-op tracer; every method (and every method of the
// nil *Cycle it hands out) is safe to call, so instrumented code needs no
// conditionals.
type Tracer struct {
	mu   sync.Mutex
	ring []*Cycle
	cap  int
	seq  uint64
	now  func() time.Time
}

// NewTracer returns a tracer retaining the last n finished cycles.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = 64
	}
	return &Tracer{cap: n, now: time.Now}
}

// SetClock overrides the tracer's time source (tests and golden files).
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

func (t *Tracer) clock() time.Time {
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	return now()
}

// StartCycle opens a new cycle trace. The cycle is not visible to Cycles
// until Finish is called.
func (t *Tracer) StartCycle(name string) *Cycle {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seq++
	seq := t.seq
	now := t.now
	t.mu.Unlock()
	return &Cycle{tr: t, seq: seq, name: name, start: now()}
}

// finish pushes a completed cycle into the ring.
func (t *Tracer) finish(c *Cycle) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == t.cap {
		copy(t.ring, t.ring[1:])
		t.ring[len(t.ring)-1] = c
		return
	}
	t.ring = append(t.ring, c)
}

// Cycles snapshots the retained finished cycles, oldest first. With n > 0
// only the newest n are returned.
func (t *Tracer) Cycles(n int) []*Cycle {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.ring
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return append([]*Cycle(nil), out...)
}

// Cycle is one propagation cycle's span tree. Spans are recorded flat with
// the phase nesting expressed by time containment, which is how trace
// viewers reconstruct the tree.
type Cycle struct {
	tr    *Tracer
	seq   uint64
	name  string
	start time.Time

	mu    sync.Mutex
	end   time.Time
	spans []*Span
	args  []Label
}

// Span is one timed phase within a cycle.
type Span struct {
	c     *Cycle
	name  string
	start time.Time

	mu   sync.Mutex
	end  time.Time
	args []Label
}

// Span opens a child span. End must be called on the returned span.
func (c *Cycle) Span(name string) *Span {
	if c == nil {
		return nil
	}
	s := &Span{c: c, name: name, start: c.tr.clock()}
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
	return s
}

// Arg attaches a key/value annotation to the cycle.
func (c *Cycle) Arg(key, value string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.args = append(c.args, L(key, value))
	c.mu.Unlock()
}

// Finish closes the cycle and publishes it to the tracer's ring.
func (c *Cycle) Finish() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.end = c.tr.clock()
	c.mu.Unlock()
	c.tr.finish(c)
}

// End closes the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.end = s.c.tr.clock()
	s.mu.Unlock()
}

// Arg attaches a key/value annotation to the span.
func (s *Span) Arg(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.args = append(s.args, L(key, value))
	s.mu.Unlock()
}

// traceEvent is one Chrome trace-event ("X" complete event), the format
// Perfetto and chrome://tracing load directly.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // microseconds since trace epoch
	Dur  int64             `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the trace-event JSON envelope.
type chromeTrace struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// WriteChromeTrace renders cycles as Chrome trace-event JSON. Each cycle is
// a complete event on its own track (tid = cycle sequence number) with its
// spans as nested complete events; timestamps are microseconds relative to
// the earliest cycle start, so the trace loads at t=0.
func WriteChromeTrace(w io.Writer, cycles []*Cycle) error {
	var epoch time.Time
	for _, c := range cycles {
		if epoch.IsZero() || c.start.Before(epoch) {
			epoch = c.start
		}
	}
	out := chromeTrace{TraceEvents: []traceEvent{}}
	for _, c := range cycles {
		out.TraceEvents = append(out.TraceEvents, cycleEvents(c, epoch)...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// cycleEvents renders one cycle (and its spans) as trace events relative
// to epoch — shared by WriteChromeTrace and WriteChromeTraceMerged.
func cycleEvents(c *Cycle, epoch time.Time) []traceEvent {
	micros := func(t time.Time) int64 { return t.Sub(epoch).Microseconds() }
	c.mu.Lock()
	events := []traceEvent{{
		Name: c.name, Cat: "propagation", Ph: "X",
		TS: micros(c.start), Dur: c.end.Sub(c.start).Microseconds(),
		PID: 1, TID: c.seq, Args: argMap(c.args),
	}}
	spans := append([]*Span(nil), c.spans...)
	c.mu.Unlock()
	for _, s := range spans {
		s.mu.Lock()
		end := s.end
		if end.IsZero() {
			end = s.start // unclosed span: zero-length marker
		}
		events = append(events, traceEvent{
			Name: s.name, Cat: "phase", Ph: "X",
			TS: micros(s.start), Dur: end.Sub(s.start).Microseconds(),
			PID: 1, TID: c.seq, Args: argMap(s.args),
		})
		s.mu.Unlock()
	}
	return events
}

func argMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}
