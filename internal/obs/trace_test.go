package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a deterministic time source advancing 1ms per call,
// starting at a fixed epoch.
func fakeClock() func() time.Time {
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.SetClock(time.Now)
	c := tr.StartCycle("x")
	if c != nil {
		t.Fatal("nil tracer handed out a cycle")
	}
	// The nil cycle and its nil spans absorb everything.
	s := c.Span("scan")
	s.Arg("k", "v")
	s.End()
	c.Arg("k", "v")
	c.Finish()
	if got := tr.Cycles(0); got != nil {
		t.Fatalf("nil tracer cycles = %v", got)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(2)
	tr.SetClock(fakeClock())
	for i := 0; i < 3; i++ {
		tr.StartCycle("c").Finish()
	}
	got := tr.Cycles(0)
	if len(got) != 2 {
		t.Fatalf("retained %d cycles, want 2", len(got))
	}
	// Oldest first, and the first cycle (seq 1) was evicted.
	if got[0].seq != 2 || got[1].seq != 3 {
		t.Fatalf("seqs = %d,%d, want 2,3", got[0].seq, got[1].seq)
	}
	if one := tr.Cycles(1); len(one) != 1 || one[0].seq != 3 {
		t.Fatalf("Cycles(1) = %+v, want newest only", one)
	}
}

func TestUnfinishedCycleInvisible(t *testing.T) {
	tr := NewTracer(4)
	c := tr.StartCycle("open")
	if len(tr.Cycles(0)) != 0 {
		t.Fatal("unfinished cycle visible")
	}
	c.Finish()
	if len(tr.Cycles(0)) != 1 {
		t.Fatal("finished cycle not visible")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, nil); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceEvents == nil || len(out.TraceEvents) != 0 {
		t.Fatalf("empty trace = %s, want traceEvents: []", b.String())
	}
}

// TestChromeTraceGolden drives the tracer on a fake clock through two
// cycles — spans with args, one span left unclosed — and compares the
// Chrome trace-event JSON byte-for-byte against the golden file. Run with
// -update to regenerate.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer(4)
	tr.SetClock(fakeClock())

	c1 := tr.StartCycle("propagation") // t=0ms
	c1.Arg("records", "42")
	s := c1.Span("scan") // t=1ms
	s.Arg("records", "42")
	s.End()               // t=2ms
	m := c1.Span("merge") // t=3ms
	m.End()               // t=4ms
	c1.Finish()           // t=5ms

	c2 := tr.StartCycle("propagation") // t=6ms
	c2.Arg("rebuild", "fallback")
	c2.Span("rebuild") // t=7ms, never ended: zero-length marker
	c2.Finish()        // t=8ms

	var b bytes.Buffer
	if err := WriteChromeTrace(&b, tr.Cycles(0)); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("trace differs from golden:\n--- got ---\n%s\n--- want ---\n%s", b.Bytes(), want)
	}

	// And it is structurally valid trace-event JSON a viewer can load.
	var out chromeTrace
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(out.TraceEvents))
	}
	ev := out.TraceEvents[0]
	if ev.Name != "propagation" || ev.Ph != "X" || ev.TS != 0 || ev.Dur != 5000 || ev.TID != 1 {
		t.Fatalf("cycle event = %+v", ev)
	}
	if scan := out.TraceEvents[1]; scan.Name != "scan" || scan.TS != 1000 || scan.Dur != 1000 || scan.Args["records"] != "42" {
		t.Fatalf("scan event = %+v", scan)
	}
	if open := out.TraceEvents[4]; open.Name != "rebuild" || open.Dur != 0 {
		t.Fatalf("unclosed span event = %+v", open)
	}
}
