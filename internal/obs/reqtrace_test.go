package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilReqTracerSafe(t *testing.T) {
	var tr *ReqTracer
	tr.SetSampling(4)
	tr.SetSlowThreshold(time.Second)
	rq := tr.Start("commit")
	if rq != nil {
		t.Fatal("nil tracer handed out a request")
	}
	// The nil request and zero spans absorb everything.
	sp := rq.Span("wal.fsync", "wal-fsync")
	sp.Arg("k", "v")
	sp.End()
	rq.Arg("k", "v")
	rq.AddSpan("x", "y", time.Now(), time.Now())
	if dom, wall := rq.Finish(); dom != "untraced" || wall != 0 {
		t.Fatalf("nil Finish = (%q, %v), want (untraced, 0)", dom, wall)
	}
	snap := tr.Snapshot()
	if len(snap.Active)+len(snap.Recent)+len(snap.Slow) != 0 {
		t.Fatalf("nil tracer snapshot non-empty: %+v", snap)
	}
}

func TestReqSampling(t *testing.T) {
	tr := NewReqTracer(8, 8)
	tr.SetSampling(4)
	traced := 0
	for i := 0; i < 16; i++ {
		if rq := tr.Start("commit"); rq != nil {
			traced++
			rq.Finish()
		}
	}
	if traced != 4 {
		t.Fatalf("traced %d of 16 at 1-in-4 sampling, want 4", traced)
	}
}

func TestReqDominantPhaseAndRetention(t *testing.T) {
	tr := NewReqTracer(2, 2)
	tr.SetClock(fakeClock())
	// The fake clock ticks 1ms per read: the first request below reads it
	// 8 times (8ms wall), the second 17 times — only the second is slow.
	tr.SetSlowThreshold(10 * time.Millisecond)

	// Fast request: 1ms each of admission and wal-fsync, 2ms of engine
	// (one closed span plus one left open, which counts to request end).
	rq := tr.Start("commit")
	rq.Span("admission.deadline", "admission").End()
	sp := rq.Span("wal.fsync", "wal-fsync")
	sp.End()
	rq.Span("delta.build", "engine").End()
	_ = rq.Span("engine.apply", "engine") // left open: counts to request end
	dom, wall := rq.Finish()
	if dom != "engine" {
		t.Fatalf("dominant = %q, want engine", dom)
	}
	if wall <= 0 {
		t.Fatalf("wall = %v", wall)
	}

	// Slow request: 10 explicit 1ms clock ticks push it over the 3ms
	// threshold into the slow ring.
	rq = tr.Start("commit")
	for i := 0; i < 8; i++ {
		rq.Span("wal.fsync", "wal-fsync").End()
	}
	if dom, _ = rq.Finish(); dom != "wal-fsync" {
		t.Fatalf("slow dominant = %q, want wal-fsync", dom)
	}

	// Evict the fast request from the 2-slot recent ring with two more.
	tr.Start("a").Finish()
	tr.Start("b").Finish()

	snap := tr.Snapshot()
	if len(snap.Recent) != 2 {
		t.Fatalf("recent = %d, want 2", len(snap.Recent))
	}
	if len(snap.Slow) != 1 || snap.Slow[0].Dominant != "wal-fsync" {
		t.Fatalf("slow ring = %+v, want the wal-fsync request retained", snap.Slow)
	}
	// The slow snapshot survives recent-ring eviction with its spans intact.
	if len(snap.Slow[0].Spans) != 8 {
		t.Fatalf("slow snapshot kept %d spans, want 8", len(snap.Slow[0].Spans))
	}
}

func TestReqSpanCap(t *testing.T) {
	tr := NewReqTracer(4, 4)
	rq := tr.Start("stitch")
	for i := 0; i < maxReqSpans+50; i++ {
		rq.Span("stitch.barrier", "stitch").End()
	}
	rq.mu.Lock()
	n := len(rq.spans)
	rq.mu.Unlock()
	if n != maxReqSpans {
		t.Fatalf("span count = %d, want capped at %d", n, maxReqSpans)
	}
	rq.Finish()
}

// TestReqTracerConcurrentReaders is the -race stress for the request ring:
// writers Start/Span/Finish (recycling pooled Reqs through eviction) while
// readers snapshot and render /debug/requests JSON concurrently.
func TestReqTracerConcurrentReaders(t *testing.T) {
	tr := NewReqTracer(8, 4)
	tr.SetSlowThreshold(time.Nanosecond) // everything lands in both rings
	const writers, readers, iters = 4, 2, 300

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rq := tr.Start("commit")
				sp := rq.Span("wal.enqueue", "wal")
				sp.Arg("batch", "1")
				sp.End()
				rq.AddSpan("wal.fsync", "wal-fsync", time.Now(), time.Now(), L("pos", "0"))
				rq.Arg("status", "200")
				rq.Finish()
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				snap := tr.Snapshot()
				for _, rs := range snap.Recent {
					_ = rs.Spans
				}
				var buf bytes.Buffer
				if err := tr.WriteJSON(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestWriteChromeTraceMergedGolden(t *testing.T) {
	clock := fakeClock()

	ct := NewTracer(4)
	ct.SetClock(clock)
	c := ct.StartCycle("propagation")
	s := c.Span("capture")
	s.End()
	c.Arg("records", "12")
	c.Finish()

	rt := NewReqTracer(4, 4)
	rt.SetClock(clock)
	rt.SetSlowThreshold(2 * time.Millisecond)
	rq := rt.Start("commit")
	rq.Arg("gtx", "7")
	rq.Span("admission.deadline", "admission").End()
	sp := rq.Span("wal.fsync", "wal-fsync")
	sp.Arg("batch", "3")
	sp.End()
	rq.Finish()

	snap := rt.Snapshot()
	// The slow request appears in both rings; the merged export dedups it.
	reqs := append(snap.Recent, snap.Slow...)
	var buf bytes.Buffer
	if err := WriteChromeTraceMerged(&buf, ct.Cycles(0), reqs); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "merged_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("merged trace drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestDebugRequestsEndpoint(t *testing.T) {
	o := New()
	o.Requests.SetClock(fakeClock())
	// The fake clock ticks 1ms per read: the fast request (begin + one
	// span + finish) takes exactly 3ms, the slow one 13ms.
	o.Requests.SetSlowThreshold(5 * time.Millisecond)

	// One fast, one slow (6 clock ticks of spans) request.
	rq := o.StartRequest("commit")
	rq.Span("engine.apply", "engine").End()
	rq.Finish()
	rq = o.StartRequest("commit")
	for i := 0; i < 6; i++ {
		rq.Span("wal.fsync", "wal-fsync").End()
	}
	rq.Finish()
	active := o.StartRequest("analytics") // left unfinished
	defer active.Finish()

	h := Handler(o)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/requests = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var out ReqTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if len(out.Active) != 1 || out.Active[0].Name != "analytics" || !out.Active[0].Active {
		t.Fatalf("active = %+v, want the unfinished analytics request", out.Active)
	}
	if len(out.Recent) != 2 {
		t.Fatalf("recent = %d, want 2", len(out.Recent))
	}
	if len(out.Slow) != 1 || out.Slow[0].Dominant != "wal-fsync" {
		t.Fatalf("slow = %+v, want the wal-fsync request", out.Slow)
	}

	// The merged /debug/trace view contains both surfaces.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"traceEvents"`) || !strings.Contains(body, `"wal.fsync"`) {
		t.Fatalf("merged trace missing request spans:\n%s", body)
	}
}
