package obs

import "sync"

// DriftModels are the cost-model components whose predictions the engine
// checks against measured wall time: the §6.4 scan/merge/rebuild linear
// models and the PCIe transfer model.
var DriftModels = []string{"scan", "merge", "rebuild", "transfer"}

// Drift tracks predicted-vs-actual cost per model over a rolling window and
// exposes the rolling mean relative error — the evidence that the §6.4
// threshold is being computed from coefficients that still match reality.
type Drift struct {
	mu     sync.Mutex
	window int
	series map[string]*driftSeries
}

type driftSeries struct {
	pred, act []float64 // ring buffers
	next      int
	n         int // observations in the window
	total     uint64
}

// NewDrift returns a tracker with the given rolling-window size per model.
func NewDrift(window int) *Drift {
	if window <= 0 {
		window = 128
	}
	return &Drift{window: window, series: make(map[string]*driftSeries)}
}

// Record adds one (predicted, actual) observation in seconds.
func (d *Drift) Record(model string, predicted, actual float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.series[model]
	if s == nil {
		s = &driftSeries{pred: make([]float64, d.window), act: make([]float64, d.window)}
		d.series[model] = s
	}
	s.pred[s.next] = predicted
	s.act[s.next] = actual
	s.next = (s.next + 1) % d.window
	if s.n < d.window {
		s.n++
	}
	s.total++
}

// RelErr reports the rolling mean relative error |pred-actual|/actual of
// the model's window; observations with actual == 0 are skipped. Returns 0
// with no usable observations.
func (d *Drift) RelErr(model string) float64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.series[model]
	if s == nil {
		return 0
	}
	var sum float64
	var n int
	for i := 0; i < s.n; i++ {
		if s.act[i] == 0 {
			continue
		}
		e := (s.pred[i] - s.act[i]) / s.act[i]
		if e < 0 {
			e = -e
		}
		sum += e
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Count reports the total observations recorded for the model (not capped
// by the window).
func (d *Drift) Count(model string) uint64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.series[model]
	if s == nil {
		return 0
	}
	return s.total
}
