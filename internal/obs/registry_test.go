package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func expo(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs_total", "requests")
	c2 := r.Counter("reqs_total", "requests")
	if c1 != c2 {
		t.Fatal("same (name) did not return the same counter")
	}
	c3 := r.Counter("reqs_total", "requests", L("code", "200"))
	if c3 == c1 {
		t.Fatal("labeled series aliased the unlabeled one")
	}
	c1.Inc()
	c1.Add(2)
	if c1.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c1.Value())
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	if g != r.Gauge("depth", "queue depth") {
		t.Fatal("get-or-create returned a different gauge")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter did not panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestFuncMetricLastWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("live", "h", func() float64 { return 1 })
	r.GaugeFunc("live", "h", func() float64 { return 2 })
	if !strings.Contains(expo(r), "live 2\n") {
		t.Fatalf("last-registered func did not win:\n%s", expo(r))
	}
	r.CounterFunc("pulled_total", "h", func() float64 { return 7 }, L("op", "x"))
	out := expo(r)
	if !strings.Contains(out, `pulled_total{op="x"} 7`) {
		t.Fatalf("counter func missing:\n%s", out)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("family_total", "the family", L("k", "b")).Inc()
	r.Counter("family_total", "the family", L("k", "a")).Add(2)
	r.Gauge("zgauge", "a gauge").Set(1.5)
	out := expo(r)

	// One HELP/TYPE header per family, before its samples.
	if strings.Count(out, "# HELP family_total") != 1 || strings.Count(out, "# TYPE family_total counter") != 1 {
		t.Fatalf("family headers wrong:\n%s", out)
	}
	// Series within a family sort by label string.
	a := strings.Index(out, `family_total{k="a"} 2`)
	b := strings.Index(out, `family_total{k="b"} 1`)
	if a < 0 || b < 0 || a > b {
		t.Fatalf("sample lines missing or unsorted (a=%d b=%d):\n%s", a, b, out)
	}
	if !strings.Contains(out, "# TYPE zgauge gauge\nzgauge 1.5\n") {
		t.Fatalf("gauge exposition wrong:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("v", "a\"b\\c\nd")).Inc()
	if !strings.Contains(expo(r), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", expo(r))
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 18.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	out := expo(r)
	// Cumulative le buckets: le is always the LAST label.
	for _, line := range []string{
		`lat_seconds_bucket{le="1"} 2`, // 0.5 and the boundary value 1
		`lat_seconds_bucket{le="2"} 4`,
		`lat_seconds_bucket{le="5"} 5`,
		`lat_seconds_bucket{le="+Inf"} 6`,
		`lat_seconds_sum 18`,
		`lat_seconds_count 6`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

func TestHistogramLabeledBucketOrder(t *testing.T) {
	r := NewRegistry()
	r.Histogram("phase_seconds", "h", []float64{1}, L("phase", "scan")).Observe(0.5)
	out := expo(r)
	if !strings.Contains(out, `phase_seconds_bucket{phase="scan",le="1"} 1`) {
		t.Fatalf("le not appended after base labels:\n%s", out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "h", []float64{1, 2, 3, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("quantile of empty histogram not NaN")
	}
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Observe(v)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 0}, {0.5, 2}, {1, 4}, {-1, 0}, {2, 4}, // out-of-range q clamps
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// +Inf bucket clamps to the highest finite bound.
	h2 := r.Histogram("q2_seconds", "h", []float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("+Inf quantile = %v, want clamp to 2", got)
	}
}

func TestHistogramDefBucketsAndDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "h", nil)
	h.ObserveDuration(2500 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatal("duration not observed")
	}
	// 2.5ms lands exactly on the 2.5e-3 DefBucket boundary (le-inclusive).
	if !strings.Contains(expo(r), `d_seconds_bucket{le="0.0025"} 1`) {
		t.Fatalf("2.5ms not in le=0.0025 bucket:\n%s", expo(r))
	}
}

func TestHistogramBadBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "h", []float64{2, 1})
}

// TestRegistryRace hammers the registry from concurrent writers (counter
// increments, gauge stores, histogram observations, get-or-create lookups,
// func re-registrations) while readers render the exposition. Run with
// -race; correctness of the final counter value is asserted too.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const writers, iters = 8, 400
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.WritePrometheus(io.Discard)
				}
			}
		}()
	}

	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(id int) {
			defer ww.Done()
			for i := 0; i < iters; i++ {
				r.Counter("race_total", "h").Inc()
				r.Gauge("race_gauge", "h").Set(float64(i))
				r.Histogram("race_seconds", "h", nil).Observe(float64(i) * 1e-6)
				r.Counter("race_by_id_total", "h", L("id", string(rune('a'+id)))).Inc()
				r.GaugeFunc("race_func", "h", func() float64 { return float64(id) })
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got := r.Counter("race_total", "h").Value(); got != writers*iters {
		t.Fatalf("race_total = %d, want %d", got, writers*iters)
	}
	if got := r.Histogram("race_seconds", "h", nil).Count(); got != writers*iters {
		t.Fatalf("race_seconds count = %d, want %d", got, writers*iters)
	}
}
