package sortledton

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"h2tap/internal/analytics"
	"h2tap/internal/csr"
	"h2tap/internal/delta"
)

func smallCSR() *csr.CSR {
	return &csr.CSR{
		Off: []int64{0, 2, 3, 3},
		Col: []uint64{1, 2, 2},
		Val: []float64{1, 2, 3},
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	c := smallCSR()
	s := FromCSR(c)
	if !csr.Equal(s.ToCSR(), c) {
		t.Fatal("round trip mismatch")
	}
	if s.NumEdges() != 3 || s.NumVertexSlots() != 3 {
		t.Fatalf("dims %d/%d", s.NumVertexSlots(), s.NumEdges())
	}
}

func TestInsertKeepsSorted(t *testing.T) {
	s := New()
	s.InsertVertex(0)
	for _, dst := range []uint64{5, 1, 9, 3, 7} {
		s.InsertEdge(0, dst, float64(dst))
	}
	var got []uint64
	s.ForEachNeighbor(0, func(dst uint64, w float64) bool {
		got = append(got, dst)
		if w != float64(dst) {
			t.Fatalf("weight mismatch on %d: %v", dst, w)
		}
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("neighborhood not sorted: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("degree = %d", len(got))
	}
}

func TestInsertExistingUpdatesWeight(t *testing.T) {
	s := New()
	s.InsertEdge(0, 1, 1)
	s.InsertEdge(0, 1, 9)
	if s.Degree(0) != 1 {
		t.Fatalf("degree = %d", s.Degree(0))
	}
	s.ForEachNeighbor(0, func(dst uint64, w float64) bool {
		if w != 9 {
			t.Fatalf("weight = %v", w)
		}
		return true
	})
}

func TestDeleteEdgeAndVertex(t *testing.T) {
	s := FromCSR(smallCSR())
	s.DeleteEdge(0, 1)
	if s.Degree(0) != 1 {
		t.Fatalf("degree after delete = %d", s.Degree(0))
	}
	s.DeleteEdge(0, 77) // missing: no-op
	s.DeleteVertex(1)
	if s.HasVertex(1) {
		t.Fatal("vertex survived delete")
	}
	if s.Degree(1) != 0 {
		t.Fatal("deleted vertex has degree")
	}
}

func TestApplyBatchMatchesCSRMerge(t *testing.T) {
	base := smallCSR()
	s := FromCSR(base)
	batch := &delta.Batch{Deltas: []delta.Combined{
		{Node: 0, Ins: []delta.Edge{{Dst: 0, W: 7}}, Del: []uint64{2}},
		{Node: 2, Deleted: true},
		{Node: 4, Inserted: true, Ins: []delta.Edge{{Dst: 1, W: 3}}},
	}}
	s.ApplyBatch(batch)
	merged, _ := csr.Merge(base, batch)
	if !csr.Equal(s.ToCSR(), merged) {
		t.Fatalf("sortledton after batch = %+v, csr merge = %+v", s.ToCSR(), merged)
	}
}

func TestAnalyticsInterfaceAgreesWithCSR(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := &csr.CSR{Off: make([]int64, 201)}
	for u := 0; u < 200; u++ {
		used := map[uint64]bool{}
		for k := 0; k < r.Intn(5); k++ {
			v := uint64(r.Intn(200))
			if !used[v] {
				used[v] = true
			}
		}
		var cols []uint64
		for v := range used {
			cols = append(cols, v)
		}
		sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
		for _, v := range cols {
			c.Col = append(c.Col, v)
			c.Val = append(c.Val, 1)
		}
		c.Off[u+1] = int64(len(c.Col))
	}
	s := FromCSR(c)
	l1, _ := analytics.BFS(analytics.CSRGraph{C: c}, 0)
	l2, _ := analytics.BFS(s, 0)
	if !reflect.DeepEqual(l1, l2) {
		t.Fatal("BFS differs between CSR and sortledton")
	}
}

// The §6.7 scenario: analytics and updates run concurrently on the same
// instance without corruption.
func TestConcurrentUpdatesAndAnalytics(t *testing.T) {
	c := smallCSR()
	s := FromCSR(c)
	for i := 3; i < 64; i++ {
		s.InsertVertex(uint64(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // updater
		defer wg.Done()
		r := rand.New(rand.NewSource(1))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src, dst := uint64(r.Intn(64)), uint64(r.Intn(64))
			if i%3 == 0 {
				s.DeleteEdge(src, dst)
			} else {
				s.InsertEdge(src, dst, 1)
			}
		}
	}()
	for k := 0; k < 20; k++ {
		levels, _ := analytics.BFS(s, 0)
		if levels[0] != 0 {
			t.Fatal("BFS source level corrupted")
		}
		analytics.PageRank(s, 2, 0.85)
	}
	close(stop)
	wg.Wait()
	// Post-quiesce invariant: all neighborhoods sorted and duplicate-free.
	snapshot := s.ToCSR()
	if err := snapshot.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAbsentVertexQueries(t *testing.T) {
	s := New()
	if s.HasVertex(5) || s.Degree(5) != 0 {
		t.Fatal("phantom vertex")
	}
	s.ForEachNeighbor(5, func(uint64, float64) bool {
		t.Fatal("visited neighbor of absent vertex")
		return false
	})
	s.DeleteEdge(5, 6)    // no-op
	s.DeleteVertex(99)    // no-op
	s.InsertEdge(5, 6, 1) // auto-creates
	if !s.HasVertex(5) || s.Degree(5) != 1 {
		t.Fatal("auto-create on edge insert failed")
	}
}
