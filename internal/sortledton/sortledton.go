// Package sortledton reimplements the CPU-side dynamic structural graph the
// paper compares against in §6.7: Sortledton [26], a transactional
// adjacency structure with per-vertex sorted neighborhoods supporting
// concurrent updates and analytics on the same instance.
//
// The comparison-relevant properties are preserved: sorted adjacency sets
// with binary-search insertion, per-vertex reader/writer locking so
// analytics and updates run concurrently on one graph (and interfere, which
// is the effect §6.7 measures — "extra performance penalties due to a lack
// of performance isolation"), and no delta storage or GPU offload.
package sortledton

import (
	"sort"
	"sync"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/mvto"
)

type edge struct {
	dst uint64
	w   float64
}

// vert is one vertex's sorted neighborhood.
type vert struct {
	mu        sync.RWMutex
	neighbors []edge // sorted by dst
}

// Store is the dynamic structural graph.
type Store struct {
	mu    sync.RWMutex // guards the vertex directory
	verts []*vert
}

// New returns an empty store.
func New() *Store { return &Store{} }

// FromCSR loads a CSR snapshot.
func FromCSR(c *csr.CSR) *Store {
	s := &Store{verts: make([]*vert, c.NumNodes())}
	for u := 0; u < c.NumNodes(); u++ {
		col, val := c.Row(uint64(u))
		v := &vert{neighbors: make([]edge, len(col))}
		for i := range col {
			v.neighbors[i] = edge{dst: col[i], w: val[i]}
		}
		s.verts[u] = v
	}
	return s
}

// FromSnapshot loads the main graph at a commit timestamp.
func FromSnapshot(src csr.Snapshot, ts mvto.TS) *Store {
	return FromCSR(csr.Build(src, ts))
}

func (s *Store) vertex(u uint64) *vert {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if u >= uint64(len(s.verts)) {
		return nil
	}
	return s.verts[u]
}

// InsertVertex makes vertex id present (growing the directory as needed).
// Inserting an existing vertex is a no-op.
func (s *Store) InsertVertex(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for uint64(len(s.verts)) <= id {
		s.verts = append(s.verts, nil)
	}
	if s.verts[id] == nil {
		s.verts[id] = &vert{}
	}
}

// DeleteVertex removes the vertex. Edges pointing to it from other vertices
// are the caller's responsibility (the workload issues explicit edge
// deletes, mirroring the delta semantics).
func (s *Store) DeleteVertex(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < uint64(len(s.verts)) {
		s.verts[id] = nil
	}
}

// HasVertex reports whether the vertex exists.
func (s *Store) HasVertex(id uint64) bool { return s.vertex(id) != nil }

// InsertEdge inserts or updates src→dst with the given weight, keeping the
// neighborhood sorted (binary search + in-place insertion, the Sortledton
// sorted-set discipline). Absent endpoints are created.
func (s *Store) InsertEdge(src, dst uint64, w float64) {
	v := s.vertex(src)
	if v == nil {
		s.InsertVertex(src)
		v = s.vertex(src)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	i := sort.Search(len(v.neighbors), func(i int) bool { return v.neighbors[i].dst >= dst })
	if i < len(v.neighbors) && v.neighbors[i].dst == dst {
		v.neighbors[i].w = w
		return
	}
	v.neighbors = append(v.neighbors, edge{})
	copy(v.neighbors[i+1:], v.neighbors[i:])
	v.neighbors[i] = edge{dst: dst, w: w}
}

// DeleteEdge removes src→dst; deleting a missing edge is a no-op.
func (s *Store) DeleteEdge(src, dst uint64) {
	v := s.vertex(src)
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	i := sort.Search(len(v.neighbors), func(i int) bool { return v.neighbors[i].dst >= dst })
	if i < len(v.neighbors) && v.neighbors[i].dst == dst {
		v.neighbors = append(v.neighbors[:i], v.neighbors[i+1:]...)
	}
}

// ApplyBatch applies a combined-delta batch (used when driving identical
// workloads into Sortledton and the replicas for comparison).
func (s *Store) ApplyBatch(b *delta.Batch) {
	for i := range b.Deltas {
		d := &b.Deltas[i]
		switch {
		case d.Deleted:
			s.DeleteVertex(d.Node)
		default:
			if d.Inserted {
				s.InsertVertex(d.Node)
			}
			for _, dst := range d.Del {
				s.DeleteEdge(d.Node, dst)
			}
			for _, e := range d.Ins {
				s.InsertEdge(d.Node, e.Dst, e.W)
			}
		}
	}
}

// NumVertexSlots implements analytics.Graph.
func (s *Store) NumVertexSlots() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.verts)
}

// Degree implements analytics.Graph.
func (s *Store) Degree(u uint64) int {
	v := s.vertex(u)
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.neighbors)
}

// ForEachNeighbor implements analytics.Graph. The per-vertex read lock is
// held for the duration of the scan — the source of the update/analytics
// interference §6.7 measures.
func (s *Store) ForEachNeighbor(u uint64, fn func(dst uint64, w float64) bool) {
	v := s.vertex(u)
	if v == nil {
		return
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, e := range v.neighbors {
		if !fn(e.dst, e.w) {
			return
		}
	}
}

// NumEdges counts stored edges.
func (s *Store) NumEdges() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, v := range s.verts {
		if v != nil {
			v.mu.RLock()
			n += int64(len(v.neighbors))
			v.mu.RUnlock()
		}
	}
	return n
}

// ToCSR exports a CSR snapshot for equivalence checks.
func (s *Store) ToCSR() *csr.CSR {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &csr.CSR{Off: make([]int64, len(s.verts)+1)}
	for u, v := range s.verts {
		if v != nil {
			v.mu.RLock()
			for _, e := range v.neighbors {
				c.Col = append(c.Col, e.dst)
				c.Val = append(c.Val, e.w)
			}
			v.mu.RUnlock()
		}
		c.Off[u+1] = int64(len(c.Col))
	}
	return c
}
