package graph

import (
	"fmt"
	"sync"

	"h2tap/internal/mvto"
	"h2tap/internal/obs"
)

// The paper's main graph is durable (Poseidon keeps it in persistent
// memory, §6.1/§6.5). This file provides the equivalent for the volatile
// in-memory store: a logical operation log. When a logger is registered,
// every transaction accumulates its operations and hands them to the logger
// *before* the MVTO commit finalizes (write-ahead discipline); internal/wal
// persists them and replays them into Store.Restore on recovery.

// OpKind discriminates logged operations.
type OpKind uint8

// Logged operation kinds.
const (
	OpAddNode OpKind = iota + 1
	OpAddRel
	OpDeleteNode
	OpDeleteRel
	OpSetNodeProp
	OpSetRelProp
	OpSetRelWeight
)

// LoggedOp is one logical operation of a committed transaction, carrying
// the IDs the operation actually used so replay is ID-faithful (aborted
// transactions consume table slots, so replay cannot re-derive IDs).
type LoggedOp struct {
	Kind     OpKind
	ID       uint64 // node ID or relationship ID, per Kind
	Src, Dst NodeID // OpAddRel
	Label    string // OpAddNode, OpAddRel
	Weight   float64
	Key      string // property ops
	Val      Value  // property ops
	Props    map[string]Value
}

// OpLogger receives the operations of committing transactions. LogCommit
// runs before the transaction becomes visible; returning an error aborts
// the commit.
type OpLogger interface {
	LogCommit(ts mvto.TS, ops []LoggedOp) error
}

// TracedOpLogger is an OpLogger that can attribute its append to a request
// trace (enqueue/write/fsync/ack spans). Loggers that wrap durable storage
// implement it; pass-through guards need not.
type TracedOpLogger interface {
	OpLogger
	LogCommitTraced(ts mvto.TS, ops []LoggedOp, rq *obs.Req) error
}

type opLoggers struct {
	mu      sync.RWMutex
	loggers []OpLogger
}

// AddOpLogger registers a logical operation logger (write-ahead logging).
// Register during setup, before concurrent transactions.
func (s *Store) AddOpLogger(l OpLogger) {
	s.oplog.mu.Lock()
	s.oplog.loggers = append(s.oplog.loggers, l)
	s.oplog.mu.Unlock()
	s.logging.Store(true)
}

// SetOpLoggers replaces the registered logger set — the log-rotation hook
// used after a checkpoint swaps in a fresh log file. Callers quiesce
// committing transactions around the swap.
func (s *Store) SetOpLoggers(loggers ...OpLogger) {
	s.oplog.mu.Lock()
	s.oplog.loggers = append([]OpLogger(nil), loggers...)
	s.oplog.mu.Unlock()
	s.logging.Store(len(loggers) > 0)
}

// WithCommitBarrier runs fn while no transaction is inside its
// logCommit→publish span: every in-flight commit finishes first and new
// commits block until fn returns. The h2tap facade checkpoints under this
// barrier, which makes log rotation safe with fully concurrent writers (no
// "maintenance window" needed).
func (s *Store) WithCommitBarrier(fn func() error) error {
	s.commitGate.Lock()
	defer s.commitGate.Unlock()
	return fn()
}

func (s *Store) logCommit(ts mvto.TS, ops []LoggedOp, rq *obs.Req) error {
	s.oplog.mu.RLock()
	loggers := s.oplog.loggers
	s.oplog.mu.RUnlock()
	for _, l := range loggers {
		if rq != nil {
			if tl, ok := l.(TracedOpLogger); ok {
				if err := tl.LogCommitTraced(ts, ops, rq); err != nil {
					return err
				}
				continue
			}
		}
		if err := l.LogCommit(ts, ops); err != nil {
			return err
		}
	}
	return nil
}

// logOp appends to the transaction's op list when logging is enabled.
func (tx *Tx) logOp(op LoggedOp) {
	if tx.s.logging.Load() {
		tx.st.ops = append(tx.st.ops, op)
	}
}

// RestoredNode is one live node in a recovered snapshot.
type RestoredNode struct {
	ID    NodeID
	Label string
	Props map[string]Value
}

// RestoredRel is one live relationship in a recovered snapshot.
type RestoredRel struct {
	ID       RelID
	Src, Dst NodeID
	Label    string
	Weight   float64
	Props    map[string]Value
}

// Restore materializes a recovered snapshot into an empty store: objects
// land at their recorded IDs (holes stay holes), all visible as of a single
// recovery timestamp, and the oracle fast-forwards past maxTS so new
// transactions are newer than everything replayed.
func (s *Store) Restore(nodes []RestoredNode, rels []RestoredRel, maxTS mvto.TS) error {
	if s.nodes.Len() != 0 || s.rels.Len() != 0 {
		return fmt.Errorf("graph: Restore requires an empty store")
	}
	s.oracle.AdvanceTo(maxTS)
	ts := s.oracle.LastCommitted()
	if ts == 0 {
		ts = 1
		s.oracle.AdvanceTo(1)
	}

	var maxNode, maxRel uint64
	for i := range nodes {
		if nodes[i].ID >= maxNode {
			maxNode = nodes[i].ID + 1
		}
	}
	for i := range rels {
		if rels[i].ID >= maxRel {
			maxRel = rels[i].ID + 1
		}
		if rels[i].Src >= maxNode || rels[i].Dst >= maxNode {
			return fmt.Errorf("graph: Restore: relationship %d references node beyond %d", rels[i].ID, maxNode)
		}
	}
	s.nodes.EnsureLen(maxNode)
	s.rels.EnsureLen(maxRel)

	for i := range nodes {
		rn := &nodes[i]
		n := s.nodes.At(rn.ID)
		n.label = s.dict.Code(rn.Label)
		v := &objVersion{props: s.internProps(rn.Props)}
		v.meta.InitInsert(ts)
		v.meta.Unlock(ts)
		n.versions = append(n.versions, v)
		s.labels.add(n.label, rn.ID)
	}
	for i := range rels {
		rr := &rels[i]
		r := s.rels.At(rr.ID)
		r.label = s.dict.Code(rr.Label)
		r.src, r.dst = rr.Src, rr.Dst
		v := &objVersion{weight: rr.Weight, props: s.internProps(rr.Props)}
		v.meta.InitInsert(ts)
		v.meta.Unlock(ts)
		r.versions = append(r.versions, v)

		sn := s.nodes.At(rr.Src)
		if len(sn.versions) == 0 {
			return fmt.Errorf("graph: Restore: relationship %d from dead node %d", rr.ID, rr.Src)
		}
		sn.out = append(sn.out, rr.ID)
		if s.undirected {
			if rr.Dst != rr.Src {
				s.nodes.At(rr.Dst).out = append(s.nodes.At(rr.Dst).out, rr.ID)
			}
		} else {
			s.nodes.At(rr.Dst).in = append(s.nodes.At(rr.Dst).in, rr.ID)
		}
	}
	s.liveNodes.Store(int64(len(nodes)))
	s.liveRels.Store(int64(len(rels)))
	return nil
}
