package graph

import (
	"fmt"
	"runtime"
	"sync"

	"h2tap/internal/mvto"
)

// NodeSpec describes one node for bulk loading.
type NodeSpec struct {
	Label string
	Props map[string]Value
}

// EdgeSpec describes one relationship for bulk loading.
type EdgeSpec struct {
	Src, Dst NodeID
	Label    string
	Weight   float64
}

// BulkLoad loads an initial dataset directly, bypassing per-operation
// transaction machinery (the offline load of §6.2: "we load the data into
// our Poseidon system as the main graph"). All objects become visible as of
// a single commit timestamp, which is returned. Delta capturers are not
// invoked — the initial replica is built from this snapshot, not from
// deltas.
//
// BulkLoad may only be called on a store with no concurrent transactions.
func (s *Store) BulkLoad(nodes []NodeSpec, edges []EdgeSpec) (mvto.TS, error) {
	tx := s.oracle.Begin()
	ts := tx.TS()
	base := s.nodes.Reserve(len(nodes))

	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}

	// Nodes: independent slots, embarrassingly parallel.
	var wg sync.WaitGroup
	chunk := (len(nodes) + workers - 1) / workers
	for w := 0; w < workers && w*chunk < len(nodes); w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(nodes) {
			hi = len(nodes)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				id := base + uint64(i)
				n := s.nodes.At(id)
				n.label = s.dict.Code(nodes[i].Label)
				v := &objVersion{props: s.internProps(nodes[i].Props)}
				v.meta.InitInsert(ts)
				v.meta.Unlock(ts)
				n.versions = append(n.versions, v)
				s.labels.add(n.label, id)
			}
		}(lo, hi)
	}
	wg.Wait()

	// Validate edges before touching adjacency.
	limit := s.nodes.Len()
	for i := range edges {
		if edges[i].Src >= limit || edges[i].Dst >= limit {
			tx.Abort()
			return 0, fmt.Errorf("graph: bulk edge %d references node beyond %d", i, limit)
		}
	}

	relBase := s.rels.Reserve(len(edges))
	chunk = (len(edges) + workers - 1) / workers
	for w := 0; w < workers && w*chunk < len(edges); w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				e := &edges[i]
				rid := relBase + uint64(i)
				r := s.rels.At(rid)
				r.label = s.dict.Code(e.Label)
				r.src, r.dst = e.Src, e.Dst
				v := &objVersion{weight: e.Weight}
				v.meta.InitInsert(ts)
				v.meta.Unlock(ts)
				r.versions = append(r.versions, v)

				sn := s.nodes.At(e.Src)
				sn.chain.Lock()
				sn.out = append(sn.out, rid)
				sn.chain.Unlock()
				dn := s.nodes.At(e.Dst)
				if s.undirected {
					if e.Dst != e.Src {
						dn.chain.Lock()
						dn.out = append(dn.out, rid)
						dn.chain.Unlock()
					}
				} else {
					dn.chain.Lock()
					dn.in = append(dn.in, rid)
					dn.chain.Unlock()
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	s.liveNodes.Add(int64(len(nodes)))
	s.liveRels.Add(int64(len(edges)))

	// Write-ahead log the load as one large commit so recovery replays it.
	// The commit gate spans logging through publication, mirroring
	// Tx.Commit, so a concurrent checkpoint barrier cannot split them.
	s.commitGate.RLock()
	defer s.commitGate.RUnlock()
	if s.logging.Load() {
		ops := make([]LoggedOp, 0, len(nodes)+len(edges))
		for i := range nodes {
			ops = append(ops, LoggedOp{
				Kind: OpAddNode, ID: base + uint64(i),
				Label: nodes[i].Label, Props: nodes[i].Props,
			})
		}
		for i := range edges {
			ops = append(ops, LoggedOp{
				Kind: OpAddRel, ID: relBase + uint64(i),
				Src: edges[i].Src, Dst: edges[i].Dst,
				Label: edges[i].Label, Weight: edges[i].Weight,
			})
		}
		if err := s.logCommit(ts, ops, nil); err != nil {
			tx.Abort()
			return 0, fmt.Errorf("graph: bulk load log: %w", err)
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return ts, nil
}
