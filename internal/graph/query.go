package graph

import (
	"fmt"

	"h2tap/internal/mvto"
)

// This file implements the transactional read workloads of §1 beyond point
// lookups: "retrieving nodes with specific labels and/or property values,
// traversing the neighborhood of certain nodes, exploring a portion of the
// graph filtered by specific relationship labels and/or property values".
// The API is a small fluent traversal: start from a label or explicit IDs,
// filter by properties, expand along (optionally label-filtered)
// relationships, and collect. All reads are MVTO transactional reads at the
// query transaction's timestamp.

// Pred is a property predicate.
type Pred func(Value) bool

// Eq matches values equal to v.
func Eq(v Value) Pred { return func(x Value) bool { return x.Equal(v) } }

// IntRange matches integer values in [lo, hi].
func IntRange(lo, hi int64) Pred {
	return func(x Value) bool {
		return x.Kind == KindInt && x.AsInt() >= lo && x.AsInt() <= hi
	}
}

// Exists matches any non-nil value.
func Exists() Pred { return func(x Value) bool { return x.Kind != KindNil } }

// Traversal is a lazy node-set pipeline bound to a transaction.
type Traversal struct {
	tx    *Tx
	ids   []NodeID
	err   error
	limit int
}

// Match starts a traversal from all visible nodes with the given label
// (via the label index).
func (tx *Tx) Match(label string) *Traversal {
	ids := tx.s.NodesByLabelAt(label, tx.m.TS())
	// Transactional semantics: record reads on the matched nodes.
	for _, id := range ids {
		if n, err := tx.s.node(id); err == nil {
			if v := n.visible(tx.m.TS()); v != nil {
				v.meta.RecordRead(tx.m.TS())
			}
		}
	}
	return &Traversal{tx: tx, ids: ids}
}

// From starts a traversal from explicit node IDs (invisible ones are
// dropped).
func (tx *Tx) From(ids ...NodeID) *Traversal {
	kept := make([]NodeID, 0, len(ids))
	for _, id := range ids {
		if tx.NodeExists(id) {
			kept = append(kept, id)
		}
	}
	return &Traversal{tx: tx, ids: kept}
}

// Where keeps nodes whose property key satisfies pred.
func (t *Traversal) Where(key string, pred Pred) *Traversal {
	if t.err != nil {
		return t
	}
	kept := t.ids[:0:0]
	for _, id := range t.ids {
		v, err := t.tx.GetNodeProp(id, key)
		if err != nil {
			continue // node vanished between steps: treat as filtered out
		}
		if pred(v) {
			kept = append(kept, id)
		}
	}
	t.ids = kept
	return t
}

// WhereLabel keeps nodes with the given label (useful after expansion).
func (t *Traversal) WhereLabel(label string) *Traversal {
	if t.err != nil {
		return t
	}
	kept := t.ids[:0:0]
	for _, id := range t.ids {
		if l, err := t.tx.NodeLabel(id); err == nil && l == label {
			kept = append(kept, id)
		}
	}
	t.ids = kept
	return t
}

// Out expands to out-neighbors along relationships, optionally filtered by
// relationship label (empty string = any). The result is deduplicated,
// preserving first-reached order.
func (t *Traversal) Out(relLabel string) *Traversal {
	if t.err != nil {
		return t
	}
	seen := make(map[NodeID]bool)
	var next []NodeID
	for _, id := range t.ids {
		rels, err := t.tx.OutRels(id)
		if err != nil {
			continue
		}
		for _, r := range rels {
			if relLabel != "" && r.Label != relLabel {
				continue
			}
			dst := r.Dst
			if t.tx.s.undirected && dst == id {
				dst = r.Src
			}
			if !seen[dst] {
				seen[dst] = true
				next = append(next, dst)
			}
		}
	}
	t.ids = next
	return t
}

// OutWhere expands along relationships whose weight satisfies pred.
func (t *Traversal) OutWhere(relLabel string, weightPred func(float64) bool) *Traversal {
	if t.err != nil {
		return t
	}
	seen := make(map[NodeID]bool)
	var next []NodeID
	for _, id := range t.ids {
		rels, err := t.tx.OutRels(id)
		if err != nil {
			continue
		}
		for _, r := range rels {
			if relLabel != "" && r.Label != relLabel {
				continue
			}
			if weightPred != nil && !weightPred(r.Weight) {
				continue
			}
			if !seen[r.Dst] {
				seen[r.Dst] = true
				next = append(next, r.Dst)
			}
		}
	}
	t.ids = next
	return t
}

// Limit caps the result set (applied at Collect/Count time, preserving
// order).
func (t *Traversal) Limit(n int) *Traversal {
	t.limit = n
	return t
}

// Collect returns the traversal's node IDs.
func (t *Traversal) Collect() ([]NodeID, error) {
	if t.err != nil {
		return nil, t.err
	}
	ids := t.ids
	if t.limit > 0 && len(ids) > t.limit {
		ids = ids[:t.limit]
	}
	out := make([]NodeID, len(ids))
	copy(out, ids)
	return out, nil
}

// Count returns the traversal's cardinality.
func (t *Traversal) Count() (int, error) {
	ids, err := t.Collect()
	return len(ids), err
}

// CollectProps fetches one property for each result node, in order.
func (t *Traversal) CollectProps(key string) ([]Value, error) {
	ids, err := t.Collect()
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(ids))
	for i, id := range ids {
		v, err := t.tx.GetNodeProp(id, key)
		if err != nil {
			return nil, fmt.Errorf("collect %q of node %d: %w", key, id, err)
		}
		out[i] = v
	}
	return out, nil
}

// GroupCountByLabel is a BI-style aggregation over a snapshot (§1's
// "Business-Intelligence-like queries that heavily involve complex grouping
// and aggregation"): the number of visible nodes per label at ts.
func (s *Store) GroupCountByLabel(ts mvto.TS) map[string]int {
	out := make(map[string]int)
	s.ForEachNodeAt(ts, func(_ NodeID, label uint32) bool {
		out[s.dict.String(label)]++
		return true
	})
	return out
}

// DegreeHistogramAt returns counts of visible nodes bucketed by out-degree:
// bucket i counts nodes with degree in [2^(i-1), 2^i) (bucket 0 = degree 0).
func (s *Store) DegreeHistogramAt(ts mvto.TS) []int {
	var hist []int
	s.ForEachNodeAt(ts, func(id NodeID, _ uint32) bool {
		deg := s.DegreeAt(id, ts)
		bucket := 0
		for d := deg; d > 0; d >>= 1 {
			bucket++
		}
		for len(hist) <= bucket {
			hist = append(hist, 0)
		}
		hist[bucket]++
		return true
	})
	return hist
}
