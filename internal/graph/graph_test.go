package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
)

// recordingCapturer remembers every captured delta. Per the Capturer
// no-retain contract the delta aliases pooled builder storage, so it deep-
// copies what it keeps.
type recordingCapturer struct {
	mu     sync.Mutex
	deltas []*delta.TxDelta
}

func (c *recordingCapturer) Capture(d *delta.TxDelta) {
	cp := &delta.TxDelta{TS: d.TS, Nodes: make([]delta.NodeDelta, len(d.Nodes))}
	for i := range d.Nodes {
		n := d.Nodes[i]
		n.Ins = append([]delta.Edge(nil), n.Ins...)
		n.Del = append([]uint64(nil), n.Del...)
		cp.Nodes[i] = n
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deltas = append(c.deltas, cp)
}

func (c *recordingCapturer) all() []*delta.TxDelta {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*delta.TxDelta(nil), c.deltas...)
}

func TestAddNodeCommitVisibility(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	id, err := tx.AddNode("Person", map[string]Value{"name": Str("ada")})
	if err != nil {
		t.Fatal(err)
	}
	if !tx.NodeExists(id) {
		t.Fatal("node invisible to its own transaction")
	}

	other := s.Begin()
	if other.NodeExists(id) {
		t.Fatal("uncommitted node visible to another transaction")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// MVTO orders by timestamp: other is newer than the writer, so after
	// commit the insert becomes visible to it.
	if !other.NodeExists(id) {
		t.Fatal("committed insert invisible to newer concurrent transaction")
	}
	other.Abort()

	later := s.Begin()
	defer later.Abort()
	if !later.NodeExists(id) {
		t.Fatal("committed node invisible to newer transaction")
	}
	got, err := later.GetNodeProp(id, "name")
	if err != nil {
		t.Fatal(err)
	}
	if got.AsString() != "ada" {
		t.Fatalf("property = %v", got)
	}
	if lbl, _ := later.NodeLabel(id); lbl != "Person" {
		t.Fatalf("label = %q", lbl)
	}
	if s.LiveNodes() != 1 {
		t.Fatalf("LiveNodes = %d", s.LiveNodes())
	}
}

func TestInsertInvisibleToOlderTransaction(t *testing.T) {
	s := NewStore()
	older := s.Begin() // ts below the writer's
	writer := s.Begin()
	id, _ := writer.AddNode("Person", nil)
	writer.Commit()
	defer older.Abort()
	if older.NodeExists(id) {
		t.Fatal("insert visible to transaction older than its bts")
	}
}

func TestAbortUndoesInsert(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	id, _ := tx.AddNode("Person", nil)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	r := s.Begin()
	defer r.Abort()
	if r.NodeExists(id) {
		t.Fatal("aborted node visible")
	}
	if s.LiveNodes() != 0 {
		t.Fatalf("LiveNodes = %d after abort", s.LiveNodes())
	}
}

func TestAddRelAdjacency(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("Person", nil)
	b, _ := tx.AddNode("Person", nil)
	c, _ := tx.AddNode("Post", nil)
	if _, err := tx.AddRel(a, c, "likes", 2.0); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.AddRel(a, b, "knows", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	ts := s.Oracle().LastCommitted()
	out := s.OutEdgesAt(a, ts)
	if len(out) != 2 {
		t.Fatalf("out edges = %d, want 2", len(out))
	}
	// Sorted by destination.
	if out[0].Dst != b || out[1].Dst != c {
		t.Fatalf("out edges unsorted: %+v", out)
	}
	in := s.InEdgesAt(c, ts)
	if len(in) != 1 || in[0].Dst != a || in[0].W != 2.0 {
		t.Fatalf("in edges of c = %+v", in)
	}
	if s.DegreeAt(a, ts) != 2 {
		t.Fatalf("degree = %d", s.DegreeAt(a, ts))
	}
}

func TestAddRelToMissingNode(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("Person", nil)
	if _, err := tx.AddRel(a, 999, "knows", 1); err == nil {
		t.Fatal("AddRel to out-of-range node succeeded")
	}
	tx.Abort()

	// A committed-but-deleted destination is also rejected.
	tx2 := s.Begin()
	a2, _ := tx2.AddNode("Person", nil)
	b2, _ := tx2.AddNode("Person", nil)
	tx2.Commit()
	tx3 := s.Begin()
	if err := tx3.DeleteNode(b2); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	tx4 := s.Begin()
	defer tx4.Abort()
	if _, err := tx4.AddRel(a2, b2, "knows", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AddRel to deleted node = %v, want ErrNotFound", err)
	}
}

func TestDeleteRelSnapshot(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("Person", nil)
	b, _ := tx.AddNode("Post", nil)
	rid, _ := tx.AddRel(a, b, "likes", 1.0)
	tx.Commit()
	preTS := s.Oracle().LastCommitted()

	del := s.Begin()
	if err := del.DeleteRel(rid); err != nil {
		t.Fatal(err)
	}
	// Before commit, everyone still sees the edge.
	if got := s.OutEdgesAt(a, preTS); len(got) != 1 {
		t.Fatalf("pre-commit snapshot lost the edge: %+v", got)
	}
	del.Commit()

	// The old snapshot still sees it; a new one does not.
	if got := s.OutEdgesAt(a, preTS); len(got) != 1 {
		t.Fatalf("old snapshot lost the edge after delete: %+v", got)
	}
	if got := s.OutEdgesAt(a, s.Oracle().LastCommitted()); len(got) != 0 {
		t.Fatalf("new snapshot still sees deleted edge: %+v", got)
	}
	if s.LiveRels() != 0 {
		t.Fatalf("LiveRels = %d", s.LiveRels())
	}
}

func TestDeleteRelTwiceFails(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("Person", nil)
	b, _ := tx.AddNode("Post", nil)
	rid, _ := tx.AddRel(a, b, "likes", 1.0)
	tx.Commit()

	d1 := s.Begin()
	if err := d1.DeleteRel(rid); err != nil {
		t.Fatal(err)
	}
	d1.Commit()
	d2 := s.Begin()
	defer d2.Abort()
	if err := d2.DeleteRel(rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete = %v, want ErrNotFound", err)
	}
}

func TestConcurrentDeleteConflict(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("Person", nil)
	b, _ := tx.AddNode("Post", nil)
	rid, _ := tx.AddRel(a, b, "likes", 1.0)
	tx.Commit()

	d1 := s.Begin()
	d2 := s.Begin()
	if err := d1.DeleteRel(rid); err != nil {
		t.Fatal(err)
	}
	err := d2.DeleteRel(rid)
	if !errors.Is(err, mvto.ErrLocked) {
		t.Fatalf("conflicting delete = %v, want ErrLocked", err)
	}
	d2.Abort()
	d1.Commit()
}

func TestDeleteNodeCascades(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("Person", nil)
	b, _ := tx.AddNode("Person", nil)
	c, _ := tx.AddNode("Person", nil)
	tx.AddRel(b, a, "knows", 1.0) // incoming to a
	tx.AddRel(a, c, "knows", 1.0) // outgoing from a
	tx.AddRel(b, c, "knows", 1.0) // unrelated
	tx.Commit()

	del := s.Begin()
	if err := del.DeleteNode(a); err != nil {
		t.Fatal(err)
	}
	del.Commit()

	ts := s.Oracle().LastCommitted()
	if s.NodeExistsAt(a, ts) {
		t.Fatal("deleted node still visible")
	}
	if got := s.OutEdgesAt(b, ts); len(got) != 1 || got[0].Dst != c {
		t.Fatalf("b's surviving edges = %+v, want only b→c", got)
	}
	if s.LiveNodes() != 2 || s.LiveRels() != 1 {
		t.Fatalf("live counts = %d nodes, %d rels", s.LiveNodes(), s.LiveRels())
	}
}

func TestWriteDeniedAfterNewerRead(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	id, _ := tx.AddNode("Person", map[string]Value{"age": Int(30)})
	tx.Commit()

	older := s.Begin()
	newer := s.Begin()
	if !newer.NodeExists(id) { // records the read with newer's ts
		t.Fatal("node missing")
	}
	err := older.SetNodeProp(id, "age", Int(31))
	if !errors.Is(err, mvto.ErrReadByNewer) {
		t.Fatalf("older write after newer read = %v, want ErrReadByNewer", err)
	}
	older.Abort()
	newer.Abort()
}

func TestSetNodePropVersioning(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	id, _ := tx.AddNode("Person", map[string]Value{"age": Int(30)})
	tx.Commit()
	oldTS := s.Oracle().LastCommitted()

	up := s.Begin()
	if err := up.SetNodeProp(id, "age", Int(31)); err != nil {
		t.Fatal(err)
	}
	up.Commit()

	// Reader snapshots: a transaction cannot be created at an old ts, but
	// version windows are checkable via the snapshot read path plus a fresh
	// transactional read.
	r := s.Begin()
	defer r.Abort()
	v, err := r.GetNodeProp(id, "age")
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 31 {
		t.Fatalf("new reader sees age %d, want 31", v.AsInt())
	}
	// The old version's window closed exactly at the updater's ts.
	n, _ := s.node(id)
	if got := n.versions[0].meta.ETS(); got != up.TS() {
		t.Fatalf("old version ets = %d, want %d", got, up.TS())
	}
	_ = oldTS
}

func TestSetNodePropAbortRestores(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	id, _ := tx.AddNode("Person", map[string]Value{"age": Int(30)})
	tx.Commit()

	up := s.Begin()
	if err := up.SetNodeProp(id, "age", Int(99)); err != nil {
		t.Fatal(err)
	}
	up.Abort()

	r := s.Begin()
	defer r.Abort()
	v, err := r.GetNodeProp(id, "age")
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 30 {
		t.Fatalf("aborted update leaked: age = %d", v.AsInt())
	}
	// A later writer can lock the object again.
	up2 := s.Begin()
	if err := up2.SetNodeProp(id, "age", Int(31)); err != nil {
		t.Fatalf("write after aborted write = %v", err)
	}
	up2.Commit()
}

func TestDeltaCaptureInsertRel(t *testing.T) {
	s := NewStore()
	cap := &recordingCapturer{}
	s.AddCapturer(cap)

	tx := s.Begin()
	a, _ := tx.AddNode("Person", nil)
	b, _ := tx.AddNode("Post", nil)
	tx.Commit()
	if len(cap.all()) != 1 {
		t.Fatalf("captures after node txn = %d", len(cap.all()))
	}

	tx2 := s.Begin()
	tx2.AddRel(a, b, "likes", 2.5)
	tx2.Commit()
	ds := cap.all()
	d := ds[len(ds)-1]
	if d.TS != tx2.TS() {
		t.Fatalf("delta ts = %d, want %d", d.TS, tx2.TS())
	}
	if len(d.Nodes) != 1 || d.Nodes[0].Node != a ||
		len(d.Nodes[0].Ins) != 1 || d.Nodes[0].Ins[0] != (delta.Edge{Dst: b, W: 2.5}) {
		t.Fatalf("insert-rel delta = %+v", d.Nodes)
	}
}

func TestDeltaCaptureDeleteNode(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("Person", nil)
	b, _ := tx.AddNode("Person", nil)
	tx.AddRel(b, a, "knows", 1) // incoming to a
	tx.AddRel(a, b, "knows", 1) // outgoing from a
	tx.Commit()

	cap := &recordingCapturer{}
	s.AddCapturer(cap)
	del := s.Begin()
	if err := del.DeleteNode(a); err != nil {
		t.Fatal(err)
	}
	del.Commit()

	ds := cap.all()
	if len(ds) != 1 {
		t.Fatalf("captures = %d", len(ds))
	}
	var aDelta, bDelta *delta.NodeDelta
	for i := range ds[0].Nodes {
		nd := &ds[0].Nodes[i]
		switch nd.Node {
		case a:
			aDelta = nd
		case b:
			bDelta = nd
		}
	}
	if aDelta == nil || !aDelta.Deleted || len(aDelta.Ins) != 0 || len(aDelta.Del) != 0 {
		t.Fatalf("deleted-node delta = %+v", aDelta)
	}
	if bDelta == nil || len(bDelta.Del) != 1 || bDelta.Del[0] != a {
		t.Fatalf("source-of-incoming delta = %+v", bDelta)
	}
}

func TestNoCaptureOnAbortOrPropertyOnly(t *testing.T) {
	s := NewStore()
	cap := &recordingCapturer{}
	s.AddCapturer(cap)

	tx := s.Begin()
	tx.AddNode("Person", nil)
	tx.Abort()
	if len(cap.all()) != 0 {
		t.Fatal("aborted transaction captured a delta")
	}

	tx2 := s.Begin()
	id, _ := tx2.AddNode("Person", map[string]Value{"age": Int(1)})
	tx2.Commit()
	before := len(cap.all())

	tx3 := s.Begin()
	if err := tx3.SetNodeProp(id, "age", Int(2)); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	if len(cap.all()) != before {
		t.Fatal("property-only transaction captured a topology delta")
	}
}

func TestInsertAndDeleteSameTxnCancels(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("Person", nil)
	b, _ := tx.AddNode("Person", nil)
	tx.Commit()

	cap := &recordingCapturer{}
	s.AddCapturer(cap)
	tx2 := s.Begin()
	rid, _ := tx2.AddRel(a, b, "knows", 1)
	if err := tx2.DeleteRel(rid); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if len(cap.all()) != 0 {
		t.Fatalf("net-zero transaction captured deltas: %+v", cap.all())
	}
	if got := s.OutEdgesAt(a, s.Oracle().LastCommitted()); len(got) != 0 {
		t.Fatalf("edge survived insert+delete: %+v", got)
	}
}

func TestDeleteThenReinsertSameTxn(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	tx.AddRel(a, b, "k", 1)
	tx.Commit()

	cap := &recordingCapturer{}
	s.AddCapturer(cap)
	tx2 := s.Begin()
	rels, _ := tx2.OutRels(a)
	if err := tx2.DeleteRel(rels[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.AddRel(a, b, "k", 9); err != nil {
		t.Fatalf("re-insert after in-txn delete = %v", err)
	}
	tx2.Commit()

	ts := s.Oracle().LastCommitted()
	got := s.OutEdgesAt(a, ts)
	if len(got) != 1 || got[0].W != 9 {
		t.Fatalf("edges after delete+reinsert = %+v", got)
	}
	// The captured delta must fold to a bare weight-updating insert.
	ds := cap.all()
	if len(ds) != 1 || len(ds[0].Nodes) != 1 {
		t.Fatalf("captures = %+v", ds)
	}
	nd := ds[0].Nodes[0]
	if len(nd.Del) != 0 || len(nd.Ins) != 1 || nd.Ins[0].W != 9 {
		t.Fatalf("delta = %+v", nd)
	}
}

func TestBulkLoad(t *testing.T) {
	s := NewStore()
	nodes := []NodeSpec{
		{Label: "Person"}, {Label: "Person"}, {Label: "Post"},
	}
	edges := []EdgeSpec{
		{Src: 0, Dst: 1, Label: "knows", Weight: 1},
		{Src: 0, Dst: 2, Label: "likes", Weight: 2},
		{Src: 1, Dst: 2, Label: "likes", Weight: 3},
	}
	ts, err := s.BulkLoad(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	if s.LiveNodes() != 3 || s.LiveRels() != 3 {
		t.Fatalf("live = %d/%d", s.LiveNodes(), s.LiveRels())
	}
	if got := s.OutEdgesAt(0, ts); len(got) != 2 {
		t.Fatalf("node 0 out = %+v", got)
	}
	if ids := s.NodesByLabelAt("Person", ts); len(ids) != 2 {
		t.Fatalf("Person nodes = %v", ids)
	}
	// Loaded data is transactionally usable afterwards.
	tx := s.Begin()
	if _, err := tx.AddRel(2, 0, "replyOf", 1); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
}

func TestBulkLoadRejectsBadEdge(t *testing.T) {
	s := NewStore()
	_, err := s.BulkLoad([]NodeSpec{{Label: "A"}}, []EdgeSpec{{Src: 0, Dst: 5}})
	if err == nil {
		t.Fatal("bulk load with out-of-range edge succeeded")
	}
}

func TestForEachNodeAtOrder(t *testing.T) {
	s := NewStore()
	s.BulkLoad([]NodeSpec{{Label: "A"}, {Label: "B"}, {Label: "C"}}, nil)
	tx := s.Begin()
	tx.DeleteNode(1)
	tx.Commit()
	ts := s.Oracle().LastCommitted()
	var ids []NodeID
	s.ForEachNodeAt(ts, func(id NodeID, _ uint32) bool {
		ids = append(ids, id)
		return true
	})
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("visible nodes = %v, want [0 2]", ids)
	}
}

func TestConcurrentTransactionsStress(t *testing.T) {
	s := NewStore()
	// Seed nodes.
	specs := make([]NodeSpec, 64)
	for i := range specs {
		specs[i] = NodeSpec{Label: "Person"}
	}
	if _, err := s.BulkLoad(specs, nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var commits, aborts int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			localCommits, localAborts := int64(0), int64(0)
			for i := 0; i < 300; i++ {
				tx := s.Begin()
				src := NodeID(r.Intn(64))
				dst := NodeID(r.Intn(64))
				var err error
				switch r.Intn(3) {
				case 0:
					_, err = tx.AddRel(src, dst, "knows", 1)
				case 1:
					var rels []RelInfo
					rels, err = tx.OutRels(src)
					if err == nil && len(rels) > 0 {
						err = tx.DeleteRel(rels[r.Intn(len(rels))].ID)
					}
				case 2:
					err = tx.SetNodeProp(src, "x", Int(int64(i)))
				}
				if err != nil {
					tx.Abort()
					localAborts++
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				localCommits++
			}
			mu.Lock()
			commits += localCommits
			aborts += localAborts
			mu.Unlock()
		}(int64(w))
	}
	wg.Wait()
	if commits == 0 {
		t.Fatal("no transaction committed under contention")
	}
	// Consistency: live counter matches a full snapshot count.
	ts := s.Oracle().LastCommitted()
	var visRels int64
	for id := uint64(0); id < s.NumNodeSlots(); id++ {
		visRels += int64(len(s.OutEdgesAt(id, ts)))
	}
	if visRels != s.LiveRels() {
		t.Fatalf("snapshot rels = %d, counter = %d", visRels, s.LiveRels())
	}
	t.Logf("stress: %d commits, %d aborts, %d live rels", commits, aborts, s.LiveRels())
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Code("Person")
	b := d.Code("Post")
	if a == b || a == 0 || b == 0 {
		t.Fatalf("codes: %d, %d", a, b)
	}
	if d.Code("Person") != a {
		t.Fatal("re-interning changed the code")
	}
	if d.String(a) != "Person" {
		t.Fatalf("String(%d) = %q", a, d.String(a))
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup invented a code")
	}
	if d.Len() != 3 { // "", Person, Post
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Str("hi"), `"hi"`},
		{Bool(true), "true"},
		{Value{}, "nil"},
	}
	for _, c := range cases {
		if c.v.String() != c.want {
			t.Errorf("String() = %q, want %q", c.v.String(), c.want)
		}
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Fatal("bool round trip failed")
	}
	if !Int(7).Equal(Int(7)) || Int(7).Equal(Int(8)) {
		t.Fatal("Equal broken")
	}
}

// Property-style test: a random committed workload against a map-based
// model; the visible topology must match exactly.
func TestRandomWorkloadMatchesModel(t *testing.T) {
	s := NewStore()
	const nSeed = 32
	specs := make([]NodeSpec, nSeed)
	for i := range specs {
		specs[i] = NodeSpec{Label: "Person"}
	}
	s.BulkLoad(specs, nil)

	type edgeKey struct{ src, dst NodeID }
	model := map[edgeKey]float64{} // simple graph: (src,dst) unique
	alive := map[NodeID]bool{}
	for i := NodeID(0); i < nSeed; i++ {
		alive[i] = true
	}
	nextID := NodeID(nSeed)

	r := rand.New(rand.NewSource(12345))
	aliveList := func() []NodeID {
		var ids []NodeID
		for id, ok := range alive {
			if ok {
				ids = append(ids, id)
			}
		}
		return ids
	}
	for i := 0; i < 800; i++ {
		tx := s.Begin()
		ids := aliveList()
		if len(ids) < 2 {
			tx.Abort()
			break
		}
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert rel
			src := ids[r.Intn(len(ids))]
			dst := ids[r.Intn(len(ids))]
			w := float64(r.Intn(100))
			_, err := tx.AddRel(src, dst, "knows", w)
			if _, exists := model[edgeKey{src, dst}]; exists {
				if !errors.Is(err, ErrDuplicateEdge) {
					t.Fatalf("duplicate edge insert = %v, want ErrDuplicateEdge", err)
				}
				tx.Abort()
				continue
			}
			if err != nil {
				tx.Abort()
				continue
			}
			tx.Commit()
			model[edgeKey{src, dst}] = w
		case 6, 7: // insert node (+edge to it)
			id, _ := tx.AddNode("Person", nil)
			src := ids[r.Intn(len(ids))]
			if _, err := tx.AddRel(src, id, "knows", 1); err != nil {
				tx.Abort()
				continue
			}
			tx.Commit()
			if id != nextID {
				t.Fatalf("node id %d, expected %d", id, nextID)
			}
			nextID++
			alive[id] = true
			model[edgeKey{src, id}] = 1
		case 8: // delete rel
			src := ids[r.Intn(len(ids))]
			rels, err := tx.OutRels(src)
			if err != nil || len(rels) == 0 {
				tx.Abort()
				continue
			}
			pick := rels[r.Intn(len(rels))]
			if err := tx.DeleteRel(pick.ID); err != nil {
				tx.Abort()
				continue
			}
			tx.Commit()
			delete(model, edgeKey{pick.Src, pick.Dst})
		case 9: // delete node
			id := ids[r.Intn(len(ids))]
			if err := tx.DeleteNode(id); err != nil {
				tx.Abort()
				continue
			}
			tx.Commit()
			alive[id] = false
			for k := range model {
				if k.src == id || k.dst == id {
					delete(model, k)
				}
			}
		}
	}

	ts := s.Oracle().LastCommitted()
	got := map[edgeKey]float64{}
	for id := uint64(0); id < s.NumNodeSlots(); id++ {
		if !alive[id] && s.NodeExistsAt(id, ts) {
			t.Fatalf("node %d should be dead", id)
		}
		if alive[id] && !s.NodeExistsAt(id, ts) {
			t.Fatalf("node %d should be alive", id)
		}
		for _, e := range s.OutEdgesAt(id, ts) {
			if _, dup := got[edgeKey{id, e.Dst}]; dup {
				t.Fatalf("duplicate (src,dst) pair %d→%d in store", id, e.Dst)
			}
			got[edgeKey{id, e.Dst}] = e.W
		}
	}
	if !reflect.DeepEqual(got, model) {
		t.Fatalf("store topology diverged from model: %d vs %d edges", len(got), len(model))
	}
}
