package graph

import (
	"errors"
	"testing"

	"h2tap/internal/mvto"
)

func relFixture(t *testing.T) (*Store, NodeID, NodeID, RelID) {
	t.Helper()
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	rid, err := tx.AddRel(a, b, "knows", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s, a, b, rid
}

func TestRelPropRoundTrip(t *testing.T) {
	s, _, _, rid := relFixture(t)
	up := s.Begin()
	if err := up.SetRelProp(rid, "since", Int(2019)); err != nil {
		t.Fatal(err)
	}
	up.Commit()

	r := s.Begin()
	defer r.Abort()
	v, err := r.GetRelProp(rid, "since")
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 2019 {
		t.Fatalf("since = %v", v)
	}
	// The weight is untouched by property updates.
	info, err := r.GetRelInfo(rid)
	if err != nil {
		t.Fatal(err)
	}
	if info.Weight != 1.5 {
		t.Fatalf("weight = %v", info.Weight)
	}
}

func TestSetRelWeightVersioned(t *testing.T) {
	s, a, _, rid := relFixture(t)
	preTS := s.Oracle().LastCommitted()

	cap := &recordingCapturer{}
	s.AddCapturer(cap)
	up := s.Begin()
	if err := up.SetRelWeight(rid, 9.0); err != nil {
		t.Fatal(err)
	}
	up.Commit()

	// Old snapshot sees the old weight; new snapshot the new one.
	if got := s.OutEdgesAt(a, preTS); got[0].W != 1.5 {
		t.Fatalf("old snapshot weight = %v", got[0].W)
	}
	if got := s.OutEdgesAt(a, s.Oracle().LastCommitted()); got[0].W != 9.0 {
		t.Fatalf("new snapshot weight = %v", got[0].W)
	}
	// The change reaches the replica as an insert-with-overwrite delta.
	ds := cap.all()
	if len(ds) != 1 || len(ds[0].Nodes) != 1 ||
		len(ds[0].Nodes[0].Ins) != 1 || ds[0].Nodes[0].Ins[0].W != 9.0 {
		t.Fatalf("weight-update delta = %+v", ds)
	}
}

func TestSetRelWeightTwiceInOneTxn(t *testing.T) {
	s, _, b, rid := relFixture(t)
	cap := &recordingCapturer{}
	s.AddCapturer(cap)
	up := s.Begin()
	if err := up.SetRelWeight(rid, 5); err != nil {
		t.Fatal(err)
	}
	if err := up.SetRelWeight(rid, 7); err != nil {
		t.Fatal(err)
	}
	up.Commit()
	nd := cap.all()[0].Nodes[0]
	if len(nd.Ins) != 1 || nd.Ins[0].Dst != b || nd.Ins[0].W != 7 {
		t.Fatalf("duplicate weight updates not collapsed: %+v", nd)
	}
}

func TestSetRelWeightAbort(t *testing.T) {
	s, a, _, rid := relFixture(t)
	up := s.Begin()
	up.SetRelWeight(rid, 42)
	up.Abort()
	if got := s.OutEdgesAt(a, s.Oracle().LastCommitted()); got[0].W != 1.5 {
		t.Fatalf("aborted weight update leaked: %v", got[0].W)
	}
}

func TestRelOpsOnDeletedRel(t *testing.T) {
	s, _, _, rid := relFixture(t)
	del := s.Begin()
	del.DeleteRel(rid)
	del.Commit()
	tx := s.Begin()
	defer tx.Abort()
	if _, err := tx.GetRelInfo(rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetRelInfo on deleted rel = %v", err)
	}
	if err := tx.SetRelWeight(rid, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetRelWeight on deleted rel = %v", err)
	}
	if err := tx.SetRelProp(rid, "k", Int(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetRelProp on deleted rel = %v", err)
	}
}

func TestLabelIndex(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	var people, posts []NodeID
	for i := 0; i < 5; i++ {
		id, _ := tx.AddNode("Person", nil)
		people = append(people, id)
	}
	for i := 0; i < 3; i++ {
		id, _ := tx.AddNode("Post", nil)
		posts = append(posts, id)
	}
	tx.Commit()
	ts := s.Oracle().LastCommitted()

	if got := s.NodesByLabelAt("Person", ts); len(got) != 5 {
		t.Fatalf("Person = %v", got)
	}
	if got := s.CountByLabelAt("Post", ts); got != 3 {
		t.Fatalf("Post count = %d", got)
	}
	if got := s.NodesByLabelAt("Comment", ts); got != nil {
		t.Fatalf("unknown label = %v", got)
	}

	// Deleted nodes drop out of the index view; old snapshots keep them.
	del := s.Begin()
	del.DeleteNode(people[0])
	del.Commit()
	now := s.Oracle().LastCommitted()
	if got := s.CountByLabelAt("Person", now); got != 4 {
		t.Fatalf("Person count after delete = %d", got)
	}
	if got := s.CountByLabelAt("Person", ts); got != 5 {
		t.Fatalf("old snapshot Person count = %d", got)
	}

	// Aborted nodes never appear.
	ab := s.Begin()
	ab.AddNode("Person", nil)
	ab.Abort()
	if got := s.CountByLabelAt("Person", s.Oracle().LastCommitted()); got != 4 {
		t.Fatalf("aborted node visible in index: %d", got)
	}

	// Results are ID-ordered.
	ids := s.NodesByLabelAt("Person", mvto.TS(now))
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("index result unordered: %v", ids)
		}
	}
}
