package graph

import (
	"fmt"
	"strconv"
)

// Kind discriminates property value types.
type Kind uint8

// Property value kinds.
const (
	KindNil Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// Value is a property value: a small tagged union, kept flat so property
// maps stay allocation-light.
type Value struct {
	Kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{Kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{Kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: KindBool, i: i}
}

// AsInt reports the integer payload (valid for KindInt and KindBool).
func (v Value) AsInt() int64 { return v.i }

// AsFloat reports the float payload.
func (v Value) AsFloat() float64 { return v.f }

// AsString reports the string payload.
func (v Value) AsString() string { return v.s }

// AsBool reports the boolean payload.
func (v Value) AsBool() bool { return v.i != 0 }

// Equal reports deep equality.
func (v Value) Equal(o Value) bool { return v == o }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.i != 0)
	default:
		return fmt.Sprintf("value(kind=%d)", v.Kind)
	}
}
