package graph

import (
	"errors"
	"testing"

	"h2tap/internal/mvto"
)

func TestOpsOnFinishedTxnFail(t *testing.T) {
	s := NewStore()
	setup := s.Begin()
	id, _ := setup.AddNode("P", nil)
	setup.Commit()

	tx := s.Begin()
	tx.Commit()
	if _, err := tx.AddNode("P", nil); !errors.Is(err, mvto.ErrTxnDone) {
		t.Fatalf("AddNode on finished txn = %v", err)
	}
	if _, err := tx.AddRel(id, id, "k", 1); !errors.Is(err, mvto.ErrTxnDone) {
		t.Fatalf("AddRel on finished txn = %v", err)
	}
	if err := tx.DeleteNode(id); !errors.Is(err, mvto.ErrTxnDone) {
		t.Fatalf("DeleteNode on finished txn = %v", err)
	}
	if err := tx.DeleteRel(0); !errors.Is(err, mvto.ErrTxnDone) {
		t.Fatalf("DeleteRel on finished txn = %v", err)
	}
	if err := tx.SetNodeProp(id, "k", Int(1)); !errors.Is(err, mvto.ErrTxnDone) {
		t.Fatalf("SetNodeProp on finished txn = %v", err)
	}
}

func TestGetMissingProperty(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	id, _ := tx.AddNode("P", map[string]Value{"a": Int(1)})
	tx.Commit()
	r := s.Begin()
	defer r.Abort()
	v, err := r.GetNodeProp(id, "nope")
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != KindNil {
		t.Fatalf("missing property = %v", v)
	}
	// Existing key on a node that doesn't have it set.
	tx2 := s.Begin()
	id2, _ := tx2.AddNode("P", nil)
	tx2.Commit()
	r2 := s.Begin()
	defer r2.Abort()
	if v, _ := r2.GetNodeProp(id2, "a"); v.Kind != KindNil {
		t.Fatalf("unset property = %v", v)
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	for i := 0; i < 5; i++ {
		b, _ := tx.AddNode("P", nil)
		tx.AddRel(a, b, "k", 1)
	}
	tx.Commit()
	r := s.Begin()
	defer r.Abort()
	count := 0
	if err := r.Neighbors(a, func(NodeID, float64) bool {
		count++
		return count < 2
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestNodeLabelAtSnapshot(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	id, _ := tx.AddNode("Person", nil)
	tx.Commit()
	ts := s.Oracle().LastCommitted()
	if lbl, ok := s.NodeLabelAt(id, ts); !ok || lbl != "Person" {
		t.Fatalf("label = %q, %v", lbl, ok)
	}
	if _, ok := s.NodeLabelAt(999, ts); ok {
		t.Fatal("label of missing node")
	}
	del := s.Begin()
	del.DeleteNode(id)
	del.Commit()
	if _, ok := s.NodeLabelAt(id, s.Oracle().LastCommitted()); ok {
		t.Fatal("label of deleted node")
	}
	// Old snapshot still resolves.
	if _, ok := s.NodeLabelAt(id, ts); !ok {
		t.Fatal("old snapshot lost the label")
	}
}

func TestDeleteNodePoisonsOnConflict(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	rid, _ := tx.AddRel(a, b, "k", 1)
	tx.Commit()

	// blocker locks the relationship first.
	blocker := s.Begin()
	if err := blocker.DeleteRel(rid); err != nil {
		t.Fatal(err)
	}

	victim := s.Begin()
	err := victim.DeleteNode(a)
	if err == nil {
		t.Fatal("cascade through a locked relationship succeeded")
	}
	// The victim is poisoned: commit must refuse and abort.
	if cerr := victim.Commit(); !errors.Is(cerr, ErrMustAbort) {
		t.Fatalf("commit of poisoned txn = %v, want ErrMustAbort", cerr)
	}
	blocker.Abort()

	// After everything aborted, the graph is intact.
	ts := s.Oracle().LastCommitted()
	if !s.NodeExistsAt(a, ts) || len(s.OutEdgesAt(a, ts)) != 1 {
		t.Fatal("aborted operations damaged the graph")
	}
	// And a retry succeeds.
	retry := s.Begin()
	if err := retry.DeleteNode(a); err != nil {
		t.Fatalf("retry after aborts = %v", err)
	}
	if err := retry.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteConflictOnNewerVersion(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	id, _ := tx.AddNode("P", map[string]Value{"v": Int(0)})
	tx.Commit()

	older := s.Begin() // lower timestamp
	newer := s.Begin()
	if err := newer.SetNodeProp(id, "v", Int(2)); err != nil {
		t.Fatal(err)
	}
	newer.Commit()
	// older now writes against an object whose newest version is newer
	// than itself: a write-write conflict.
	err := older.SetNodeProp(id, "v", Int(1))
	if !errors.Is(err, ErrWriteConflict) && !errors.Is(err, mvto.ErrLocked) {
		t.Fatalf("stale write = %v, want ErrWriteConflict", err)
	}
	older.Abort()
}

func TestOutRelsOnDeletedNode(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	id, _ := tx.AddNode("P", nil)
	tx.Commit()
	del := s.Begin()
	del.DeleteNode(id)
	del.Commit()
	r := s.Begin()
	defer r.Abort()
	if _, err := r.OutRels(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("OutRels on deleted node = %v", err)
	}
	if err := r.Neighbors(id, func(NodeID, float64) bool { return true }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Neighbors on deleted node = %v", err)
	}
}

func TestSelfLoopDirected(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	if _, err := tx.AddRel(a, a, "self", 2); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	ts := s.Oracle().LastCommitted()
	got := s.OutEdgesAt(a, ts)
	if len(got) != 1 || got[0].Dst != a || got[0].W != 2 {
		t.Fatalf("self-loop = %+v", got)
	}
	// Deleting the node removes the loop without double-processing.
	del := s.Begin()
	if err := del.DeleteNode(a); err != nil {
		t.Fatal(err)
	}
	del.Commit()
	if s.LiveRels() != 0 || s.LiveNodes() != 0 {
		t.Fatalf("live counts after self-loop delete: %d/%d", s.LiveNodes(), s.LiveRels())
	}
}

func TestStressManyVersions(t *testing.T) {
	// One node updated many times: version chain growth and snapshot
	// resolution stay correct.
	s := NewStore()
	tx := s.Begin()
	id, _ := tx.AddNode("P", map[string]Value{"v": Int(0)})
	tx.Commit()
	for i := 1; i <= 100; i++ {
		up := s.Begin()
		if err := up.SetNodeProp(id, "v", Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		up.Commit()
	}
	r := s.Begin()
	defer r.Abort()
	v, err := r.GetNodeProp(id, "v")
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 100 {
		t.Fatalf("newest value = %d", v.AsInt())
	}
}
