// Package graph implements the CPU-resident main property graph — the
// transactional store the paper builds on (Poseidon, [39]): labeled nodes
// and relationships with properties, fixed-size records in chunked tables,
// and MVTO concurrency control (§2.3). Committing transactions describe
// their topology changes to registered delta capturers (§4.2 update
// storage).
package graph

import (
	"fmt"
	"sync"
)

// Dictionary interns strings (labels, property keys) to dense uint32 codes,
// the usual trick for keeping fixed-size records fixed-size.
type Dictionary struct {
	mu     sync.RWMutex
	toCode map[string]uint32
	toStr  []string
}

// NewDictionary returns an empty dictionary. Code 0 is reserved for "no
// label".
func NewDictionary() *Dictionary {
	return &Dictionary{toCode: map[string]uint32{"": 0}, toStr: []string{""}}
}

// Code interns s, returning its code.
func (d *Dictionary) Code(s string) uint32 {
	d.mu.RLock()
	c, ok := d.toCode[s]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.toCode[s]; ok {
		return c
	}
	c = uint32(len(d.toStr))
	d.toCode[s] = c
	d.toStr = append(d.toStr, s)
	return c
}

// Lookup reports the code for s without interning.
func (d *Dictionary) Lookup(s string) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.toCode[s]
	return c, ok
}

// String returns the string for a code.
func (d *Dictionary) String(c uint32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(c) >= len(d.toStr) {
		panic(fmt.Sprintf("graph: dictionary code %d out of range %d", c, len(d.toStr)))
	}
	return d.toStr[c]
}

// Len reports the number of interned strings (including the reserved "").
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.toStr)
}
