package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
	"h2tap/internal/storage"
)

// NodeID identifies a node. IDs are dense slot indexes in the node table,
// which is what lets the replica structures (CSR rows, per-vertex hash
// tables) index by node ID directly.
type NodeID = uint64

// RelID identifies a relationship (a slot index in the relationship table).
type RelID = uint64

// objVersion is one MVTO version of a node or relationship: concurrency
// metadata plus the property state as of that version. The property map is
// immutable once the version is published; updates copy-on-write a new
// version (§2.3 Update). For relationships the weight (the replica's edge
// value) is versioned too, so snapshot reads see the weight as of their
// timestamp.
type objVersion struct {
	meta   mvto.Meta
	props  map[uint32]Value
	weight float64 // relationships only
}

// node is a node record. Versions and adjacency are append-only; the chain
// mutex serializes structural appends while readers snapshot under it
// briefly. Relationship visibility, not list membership, decides what a
// reader sees, so aborted inserts may leave permanently-invisible entries
// behind without harm.
type node struct {
	chain    mvto.VersionChain
	label    uint32
	versions []*objVersion // newest last
	out      []RelID
	in       []RelID
}

// rel is a relationship record: fixed identity fields plus an MVTO version
// chain carrying existence, properties and the weight — the edge value the
// structural replica mirrors (§5.1).
type rel struct {
	chain    mvto.VersionChain
	label    uint32
	src, dst NodeID
	versions []*objVersion
}

// Store is the main property graph.
type Store struct {
	oracle *mvto.Oracle
	dict   *Dictionary
	nodes  *storage.ChunkedVector[node]
	rels   *storage.ChunkedVector[rel]

	// undirected switches the store to the paper's undirected mode: each
	// relationship is incident to both endpoints (one entry in each
	// adjacency list) and committing transactions append two deltas per
	// relationship, one mapped to each endpoint (§5.1).
	undirected bool

	labels *labelIndex

	oplog   opLoggers
	logging atomic.Bool

	// commitGate lets a checkpoint exclude the logCommit→publish span of
	// every committing transaction: commits hold it shared, the checkpoint
	// barrier holds it exclusively, so no transaction can be logged to the
	// old WAL but publish after the snapshot was taken (which would lose it
	// from durable history).
	commitGate sync.RWMutex

	capMu     sync.RWMutex
	capturers []delta.Capturer

	liveNodes atomic.Int64
	liveRels  atomic.Int64
}

// NewStore returns an empty directed graph store (the paper's default:
// "for the remainder of this paper, we consider only directed graphs").
func NewStore() *Store {
	return &Store{
		oracle: mvto.NewOracle(),
		dict:   NewDictionary(),
		nodes:  storage.NewChunkedVector[node](0),
		rels:   storage.NewChunkedVector[rel](0),
		labels: newLabelIndex(),
	}
}

// NewUndirectedStore returns an empty undirected graph store (§5.1's
// two-delta encoding). The structural replica of an undirected graph is
// symmetric: every edge appears in both endpoints' rows.
func NewUndirectedStore() *Store {
	s := NewStore()
	s.undirected = true
	return s
}

// Undirected reports the store's edge orientation mode.
func (s *Store) Undirected() bool { return s.undirected }

// other returns the endpoint of r opposite to id (valid in undirected mode,
// where adjacency entries carry edges of either orientation).
func (r *rel) other(id NodeID) NodeID {
	if r.src == id {
		return r.dst
	}
	return r.src
}

// Oracle exposes the timestamp oracle (shared with delta stores so delta
// visibility uses the same clock, §5.3).
func (s *Store) Oracle() *mvto.Oracle { return s.oracle }

// Dict exposes the label/key dictionary.
func (s *Store) Dict() *Dictionary { return s.dict }

// AddCapturer registers a delta capturer to be invoked from every commit
// (§4.2 update storage). Registration is not synchronized with in-flight
// commits; callers register during setup.
func (s *Store) AddCapturer(c delta.Capturer) {
	s.capMu.Lock()
	defer s.capMu.Unlock()
	s.capturers = append(s.capturers, c)
}

func (s *Store) capture(d *delta.TxDelta) {
	if d.Empty() {
		return
	}
	s.capMu.RLock()
	caps := s.capturers
	s.capMu.RUnlock()
	for _, c := range caps {
		c.Capture(d)
	}
}

// NumNodeSlots reports the size of the node ID space (allocated slots,
// including deleted and aborted ones). CSR builds iterate this range.
func (s *Store) NumNodeSlots() uint64 { return s.nodes.Len() }

// NumRelSlots reports the allocated relationship slots.
func (s *Store) NumRelSlots() uint64 { return s.rels.Len() }

// LiveNodes reports committed, non-deleted node count.
func (s *Store) LiveNodes() int64 { return s.liveNodes.Load() }

// LiveRels reports committed, non-deleted relationship count.
func (s *Store) LiveRels() int64 { return s.liveRels.Load() }

func (s *Store) node(id NodeID) (*node, error) {
	if id >= s.nodes.Len() {
		return nil, fmt.Errorf("graph: node %d out of range %d", id, s.nodes.Len())
	}
	return s.nodes.At(id), nil
}

func (s *Store) rel(id RelID) (*rel, error) {
	if id >= s.rels.Len() {
		return nil, fmt.Errorf("graph: relationship %d out of range %d", id, s.rels.Len())
	}
	return s.rels.At(id), nil
}

// visibleVersion walks the chain newest-first and returns the version
// visible to ts, or nil. It snapshots the version slice under the chain
// lock; visibility checks themselves are atomic.
func visibleVersion(chain *mvto.VersionChain, versions *[]*objVersion, ts mvto.TS) *objVersion {
	chain.Lock()
	vs := *versions
	chain.Unlock()
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].meta.VisibleTo(ts) {
			return vs[i]
		}
	}
	return nil
}

func (n *node) visible(ts mvto.TS) *objVersion {
	return visibleVersion(&n.chain, &n.versions, ts)
}

func (r *rel) visible(ts mvto.TS) *objVersion {
	return visibleVersion(&r.chain, &r.versions, ts)
}

// newest returns the newest version of the relationship (which reflects
// its latest committed or in-flight state), or nil if it has none.
func (r *rel) newest() *objVersion {
	r.chain.Lock()
	vs := r.versions
	r.chain.Unlock()
	if len(vs) == 0 {
		return nil
	}
	return vs[len(vs)-1]
}

func (n *node) appendVersion(v *objVersion) {
	n.chain.Lock()
	n.versions = append(n.versions, v)
	n.chain.Unlock()
}

func (r *rel) appendVersion(v *objVersion) {
	r.chain.Lock()
	r.versions = append(r.versions, v)
	r.chain.Unlock()
}

func (n *node) snapshotOut() []RelID {
	n.chain.Lock()
	out := n.out
	n.chain.Unlock()
	return out
}

func (n *node) snapshotIn() []RelID {
	n.chain.Lock()
	in := n.in
	n.chain.Unlock()
	return in
}

// NodeExistsAt reports whether node id is visible at ts, without recording
// a read (snapshot read path, used by replica builds and DELTA_I capture).
func (s *Store) NodeExistsAt(id NodeID, ts mvto.TS) bool {
	n, err := s.node(id)
	if err != nil {
		return false
	}
	return n.visible(ts) != nil
}

// NodeLabelAt returns the label of node id at ts.
func (s *Store) NodeLabelAt(id NodeID, ts mvto.TS) (string, bool) {
	n, err := s.node(id)
	if err != nil {
		return "", false
	}
	if n.visible(ts) == nil {
		return "", false
	}
	return s.dict.String(n.label), true
}

// OutEdgesAt returns the outgoing edges of node id visible at ts, sorted by
// destination, or nil if the node itself is not visible. This is the
// snapshot read used to build CSRs and by DELTA_I's adjacency capture; it
// does not record reads (it belongs to replica maintenance, not to a
// transactional reader).
func (s *Store) OutEdgesAt(id NodeID, ts mvto.TS) []delta.Edge {
	n, err := s.node(id)
	if err != nil || n.visible(ts) == nil {
		return nil
	}
	outIDs := n.snapshotOut()
	edges := make([]delta.Edge, 0, len(outIDs))
	for _, rid := range outIDs {
		r := s.rels.At(rid)
		if rv := r.visible(ts); rv != nil {
			dst := r.dst
			if s.undirected {
				dst = r.other(id)
			}
			edges = append(edges, delta.Edge{Dst: dst, W: rv.weight})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Dst < edges[j].Dst })
	return edges
}

// InEdgesAt returns (src, weight) pairs of incoming edges visible at ts.
// In undirected mode edges have no orientation and InEdgesAt equals
// OutEdgesAt.
func (s *Store) InEdgesAt(id NodeID, ts mvto.TS) []delta.Edge {
	if s.undirected {
		return s.OutEdgesAt(id, ts)
	}
	n, err := s.node(id)
	if err != nil || n.visible(ts) == nil {
		return nil
	}
	inIDs := n.snapshotIn()
	edges := make([]delta.Edge, 0, len(inIDs))
	for _, rid := range inIDs {
		r := s.rels.At(rid)
		if rv := r.visible(ts); rv != nil {
			edges = append(edges, delta.Edge{Dst: r.src, W: rv.weight})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Dst < edges[j].Dst })
	return edges
}

// DegreeAt reports the visible out-degree of node id at ts.
func (s *Store) DegreeAt(id NodeID, ts mvto.TS) int {
	n, err := s.node(id)
	if err != nil || n.visible(ts) == nil {
		return 0
	}
	deg := 0
	for _, rid := range n.snapshotOut() {
		if s.rels.At(rid).visible(ts) != nil {
			deg++
		}
	}
	return deg
}

// ForEachNodeAt calls fn for every node visible at ts, in ID order.
func (s *Store) ForEachNodeAt(ts mvto.TS, fn func(id NodeID, label uint32) bool) {
	limit := s.nodes.Len()
	s.nodes.ForEach(limit, func(i uint64, n *node) bool {
		if n.visible(ts) == nil {
			return true
		}
		return fn(i, n.label)
	})
}

var _ delta.AdjacencySource = (*Store)(nil)
