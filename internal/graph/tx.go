package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
	"h2tap/internal/obs"
)

// Transaction errors (beyond the mvto protocol errors, which are wrapped).
var (
	// ErrNotFound reports an access to a node or relationship that is not
	// visible to the transaction.
	ErrNotFound = errors.New("graph: object not found")
	// ErrWriteConflict reports a write to an object whose newest version is
	// newer than the writing transaction (a write-write conflict under
	// timestamp ordering).
	ErrWriteConflict = errors.New("graph: write-write conflict with newer version")
	// ErrMustAbort reports a commit attempt on a transaction that failed
	// partway through a multi-object operation and can only abort.
	ErrMustAbort = errors.New("graph: transaction must abort")
	// ErrDuplicateEdge reports an insert of a relationship that already
	// exists. The replica model identifies an edge by (source,
	// destination) — delta records store only destination IDs for deletes
	// (§5.1) — so the main graph keeps (src, dst) pairs unique.
	ErrDuplicateEdge = errors.New("graph: relationship already exists")
)

// beginWrite performs the §2.3 Update/Delete protocol against an object's
// version chain for transaction ts: verify the newest version is writable
// (unlocked or self-locked, visible, not read by a newer transaction),
// close its validity window at ts, and append the prepared next version
// (which the caller created locked by ts). The old version stays unlocked,
// so readers with timestamps in [bts, ts) keep reading it — "the old
// version of o is unlocked for read transactions", §2.3 — while the lock on
// the new version excludes concurrent writers.
// prep, if non-nil, runs under the chain lock after all checks pass and
// before the append, letting the caller derive the next version's payload
// from the verified newest version without a read-then-write race.
func beginWrite(chain *mvto.VersionChain, versions *[]*objVersion, ts mvto.TS, next *objVersion, prep func(newest *objVersion)) (*objVersion, error) {
	chain.Lock()
	defer chain.Unlock()
	vs := *versions
	if len(vs) == 0 {
		return nil, ErrNotFound
	}
	newest := vs[len(vs)-1]
	if holder := newest.meta.LockedBy(); holder != 0 && holder != ts {
		return nil, mvto.ErrLocked
	}
	if !newest.meta.VisibleTo(ts) {
		if newest.meta.BTS() > ts {
			return nil, ErrWriteConflict
		}
		return nil, ErrNotFound // deleted (tombstone) or self-deleted
	}
	if err := newest.meta.CheckWrite(ts); err != nil {
		return nil, err
	}
	if prep != nil {
		prep(newest)
	}
	newest.meta.SetETS(ts)
	*versions = append(vs, next)
	return newest, nil
}

func removeVersion(chain *mvto.VersionChain, versions *[]*objVersion, v *objVersion) {
	chain.Lock()
	defer chain.Unlock()
	vs := *versions
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i] == v {
			*versions = append(vs[:i], vs[i+1:]...)
			return
		}
	}
}

// RelInfo describes one relationship from a transactional read.
type RelInfo struct {
	ID     RelID
	Src    NodeID
	Dst    NodeID
	Weight float64
	Label  string
}

// Tx is a read-write transaction on the Store. It follows the MVTO access
// conditions of §2.3 and, at commit, hands its topology footprint to the
// store's delta capturers (§4.2). A Tx is used by one goroutine.
//
// The Tx itself is allocated fresh per Begin (so a stale handle kept past
// Commit/Abort sees a terminal status, never a recycled transaction), but
// everything it accumulates — delta builder, op log, version-publication
// hooks, built delta — lives in a pooled txState recycled across
// transactions, keeping the commit hot path allocation-free.
type Tx struct {
	s        *Store
	m        mvto.Txn // by value: status stays terminal after finish
	st       *txState // pooled accumulation state; nil once finished
	poisoned error
	trace    *obs.Req // request trace for commit-path spans; nil = untraced
}

// SetTrace attaches a request trace to the transaction; commit-path spans
// (delta build, commit gate, WAL append, delta capture, MVTO publish) are
// recorded against it. A nil trace (the default) keeps the commit hot path
// allocation- and clock-free. The caller owns the trace's lifetime and must
// clear it (SetTrace(nil)) before the trace is finished if the transaction
// outlives the request.
func (tx *Tx) SetTrace(r *obs.Req) { tx.trace = r }

// txHook is the version-publication work of one write operation, held in a
// reusable array instead of per-op closures. Commit unlocks the appended
// version and settles the live counter; abort removes the appended version
// from its chain, reopens the superseded version's validity window, and
// unlocks — exactly the pairs the closure-based hooks used to register.
type txHook struct {
	chain    *mvto.VersionChain
	versions *[]*objVersion
	v        *objVersion   // version this transaction appended
	old      *objVersion   // superseded version (nil for inserts)
	live     *atomic.Int64 // live-object counter (nil for property updates)
	delta    int64         // counter bump on commit
}

func (h *txHook) commit(ts mvto.TS) {
	h.v.meta.Unlock(ts)
	if h.live != nil {
		h.live.Add(h.delta)
	}
}

func (h *txHook) abort(ts mvto.TS) {
	removeVersion(h.chain, h.versions, h.v)
	if h.old != nil {
		h.old.meta.SetETS(mvto.Infinity)
	}
	h.v.meta.Unlock(ts)
}

// verChunkSize is the version-arena granularity: one allocation hands out
// this many objVersions. Versions outlive the transaction (they join the
// store's chains), so the arena amortizes allocation, it does not recycle.
const verChunkSize = 32

// txState is the pooled per-transaction accumulation state.
type txState struct {
	ts       mvto.TS
	b        *delta.Builder
	d        delta.TxDelta // reusable Build target
	ops      []LoggedOp    // logical op log, populated when a logger is registered
	hooks    []txHook
	verChunk []objVersion  // bump arena for version objects
	publish  func(mvto.TS) // prebound: runs hooks forward
	rollback func()        // prebound: runs hooks in reverse with st.ts
}

var txStatePool = sync.Pool{New: func() any {
	st := &txState{b: delta.NewBuilder()}
	st.publish = func(ts mvto.TS) {
		for i := range st.hooks {
			st.hooks[i].commit(ts)
		}
	}
	st.rollback = func() {
		for i := len(st.hooks) - 1; i >= 0; i-- {
			st.hooks[i].abort(st.ts)
		}
	}
	return st
}}

// addHook records one write's publication/rollback work.
func (tx *Tx) addHook(h txHook) { tx.st.hooks = append(tx.st.hooks, h) }

// newVersion hands out one version object from the state's bump arena.
func (st *txState) newVersion() *objVersion {
	if len(st.verChunk) == 0 {
		st.verChunk = make([]objVersion, verChunkSize)
	}
	v := &st.verChunk[0]
	st.verChunk = st.verChunk[1:]
	return v
}

// release returns the transaction's state to the pool, dropping every
// pointer into the store so pooled state pins nothing.
func (tx *Tx) release() {
	st := tx.st
	tx.st = nil
	clear(st.hooks)
	st.hooks = st.hooks[:0]
	clear(st.ops)
	st.ops = st.ops[:0]
	st.b.Reset()
	clear(st.d.Nodes)
	st.d.Nodes = st.d.Nodes[:0]
	txStatePool.Put(st)
}

// Begin starts a transaction.
func (s *Store) Begin() *Tx {
	tx := &Tx{s: s}
	s.oracle.BeginTxn(&tx.m)
	tx.st = txStatePool.Get().(*txState)
	tx.st.ts = tx.m.TS()
	return tx
}

// TS reports the transaction timestamp.
func (tx *Tx) TS() mvto.TS { return tx.m.TS() }

// Commit commits the transaction: object versions are finalized and
// unlocked, then the topology delta is captured by every registered
// capturer — "the updates are also captured in the delta store during
// commit at the same time as they are persisted to the main graph" (§4.2).
func (tx *Tx) Commit() error {
	st := tx.st
	if st == nil {
		return mvto.ErrTxnDone
	}
	if tx.poisoned != nil {
		tx.m.AbortWith(st.rollback)
		tx.release()
		return fmt.Errorf("%w: %v", ErrMustAbort, tx.poisoned)
	}
	ts := tx.m.TS()
	rq := tx.trace
	// Build the delta outside the gate — only logging, capture and publish
	// need its cover; everything in the gated span below is allocation-free
	// and the WAL append is batched, keeping the span a checkpoint barrier
	// must drain as short as the durability rules allow.
	sp := rq.Span("delta.build", "engine")
	d := st.b.BuildInto(ts, &st.d)
	sp.End()
	// The commit gate is held shared from write-ahead logging through
	// publication so a checkpoint barrier never splits the two (a txn in
	// the old log but not in the snapshot would vanish from durable state).
	sp = rq.Span("commit.gate", "engine")
	tx.s.commitGate.RLock()
	sp.End()
	// Write-ahead: the op log persists before the commit becomes visible.
	// A logging failure aborts the transaction.
	if len(st.ops) > 0 {
		if err := tx.s.logCommit(ts, st.ops, rq); err != nil {
			tx.s.commitGate.RUnlock()
			tx.m.AbortWith(st.rollback)
			tx.release()
			return fmt.Errorf("graph: write-ahead log: %w", err)
		}
	}
	// Capture the delta BEFORE version publication unlocks the touched
	// objects (CommitWith runs the per-op unlock hooks). Capture-then-
	// unlock means two transactions touching the same node append their
	// records in lock order = timestamp order; with capture as a commit
	// hook after the unlocks, the later transaction could append first and
	// a scan landing between the two captures would hand the replica the
	// deltas across two cycles in reverse timestamp order. The transaction
	// is already write-ahead logged, so it can no longer abort.
	sp = rq.Span("delta.capture", "engine")
	tx.s.capture(d)
	sp.End()
	sp = rq.Span("mvto.publish", "engine")
	err := tx.m.CommitWith(st.publish)
	sp.End()
	tx.s.commitGate.RUnlock()
	tx.release()
	return err
}

// Abort rolls the transaction back. No deltas are appended for aborted
// transactions (§5.1).
func (tx *Tx) Abort() error {
	st := tx.st
	if st == nil {
		return mvto.ErrTxnDone
	}
	err := tx.m.AbortWith(st.rollback)
	tx.release()
	return err
}

// AddNode creates a node with the given label and properties, returning its
// ID. The node is visible to this transaction immediately and to others
// after commit.
func (tx *Tx) AddNode(label string, props map[string]Value) (NodeID, error) {
	if tx.m.Status() != mvto.Active {
		return 0, mvto.ErrTxnDone
	}
	ts := tx.m.TS()
	v := tx.st.newVersion()
	v.props = tx.s.internProps(props)
	v.meta.InitInsert(ts)

	id := tx.s.nodes.Reserve(1)
	n := tx.s.nodes.At(id)
	n.label = tx.s.dict.Code(label)
	n.appendVersion(v)
	tx.s.labels.add(n.label, id)

	tx.addHook(txHook{
		chain: &n.chain, versions: &n.versions, v: v,
		live: &tx.s.liveNodes, delta: 1,
	})
	tx.st.b.InsertNode(id)
	tx.logOp(LoggedOp{Kind: OpAddNode, ID: id, Label: label, Props: props})
	return id, nil
}

// AddRel creates a relationship src→dst with the given label and weight.
// Both endpoints must be visible to the transaction; reading them is
// recorded so older transactions cannot delete them afterwards.
func (tx *Tx) AddRel(src, dst NodeID, label string, weight float64) (RelID, error) {
	if tx.m.Status() != mvto.Active {
		return 0, mvto.ErrTxnDone
	}
	ts := tx.m.TS()
	sn, err := tx.s.node(src)
	if err != nil {
		return 0, err
	}
	dn, err := tx.s.node(dst)
	if err != nil {
		return 0, err
	}
	sv, dv := sn.visible(ts), dn.visible(ts)
	if sv == nil {
		return 0, fmt.Errorf("%w: source node %d", ErrNotFound, src)
	}
	if dv == nil {
		return 0, fmt.Errorf("%w: destination node %d", ErrNotFound, dst)
	}
	sv.meta.RecordRead(ts)
	dv.meta.RecordRead(ts)

	// Fast-path duplicate check before allocating a relationship slot. This
	// alone is racy — two concurrent inserts of the same (src, dst) can both
	// pass it before either publishes — so the authoritative check runs
	// again below, after our own adjacency entry is appended.
	for _, rid := range sn.snapshotOut() {
		r := tx.s.rels.At(rid)
		dup := r.dst == dst
		if tx.s.undirected {
			dup = r.other(src) == dst
		}
		if dup && r.visible(ts) != nil {
			return 0, fmt.Errorf("%w: %d→%d", ErrDuplicateEdge, src, dst)
		}
	}

	v := tx.st.newVersion()
	v.weight = weight
	v.meta.InitInsert(ts)
	id := tx.s.rels.Reserve(1)
	r := tx.s.rels.At(id)
	r.label = tx.s.dict.Code(label)
	r.src, r.dst = src, dst
	r.appendVersion(v)

	// Adjacency lists are append-only; an aborted insert leaves a
	// permanently invisible entry, which readers filter by version.
	// Undirected edges enter both endpoints' out lists (§5.1); directed
	// edges enter the source's out list and the destination's in list.
	// The pre-append slice headers delimit the entries that published
	// before ours in each list, for the authoritative duplicate check.
	sn.chain.Lock()
	outBefore := sn.out[:len(sn.out):len(sn.out)]
	sn.out = append(sn.out, id)
	sn.chain.Unlock()
	var dnBefore []RelID
	if tx.s.undirected {
		if dst != src {
			dn.chain.Lock()
			dnBefore = dn.out[:len(dn.out):len(dn.out)]
			dn.out = append(dn.out, id)
			dn.chain.Unlock()
		}
	} else {
		dn.chain.Lock()
		dn.in = append(dn.in, id)
		dn.chain.Unlock()
	}

	// First-appender-wins duplicate resolution: now that our entry is
	// published, re-scan the entries that were appended before it. If any
	// of them is the same logical edge and potentially alive, we are the
	// second appender and must give way — the earlier appender (if still
	// in flight) will NOT see us in its own earlier-slice scan, so exactly
	// the later of two racing inserts backs off. Without this, two
	// concurrent inserts of the same (src, dst) both pass the pre-check
	// (neither can see the other's uncommitted version) and both commit,
	// leaving the store with a duplicate edge its replica model (§5.1
	// identifies edges by (src, dst)) cannot represent.
	if err := tx.dupAfterAppend(outBefore, dnBefore, src, dst, id); err != nil {
		removeVersion(&r.chain, &r.versions, v)
		v.meta.Unlock(ts)
		return 0, err
	}

	tx.addHook(txHook{
		chain: &r.chain, versions: &r.versions, v: v,
		live: &tx.s.liveRels, delta: 1,
	})
	// §5.1: a directed insert appends a single delta mapped to the source;
	// an undirected insert appends two, one mapped to each endpoint.
	tx.st.b.InsertEdge(src, dst, weight)
	if tx.s.undirected && dst != src {
		tx.st.b.InsertEdge(dst, src, weight)
	}
	tx.logOp(LoggedOp{Kind: OpAddRel, ID: id, Src: src, Dst: dst, Label: label, Weight: weight})
	return id, nil
}

// dupAfterAppend is the authoritative duplicate-edge check, run after the
// caller's own adjacency entry is published. It scans the entries that were
// appended before ours in each list and reports a conflict if any of them
// is the same logical edge and potentially alive at or after our timestamp:
//
//   - visible at ts, or committed with an end timestamp after ts (its
//     lifetime overlaps ours): a real duplicate;
//   - write-locked by another transaction: an in-flight insert or delete
//     whose outcome we cannot see — conservatively a conflict (if that
//     transaction aborts, this is a false positive; the caller retries).
//
// Entries appended after ours run the same scan and see us, so of two
// racing inserts exactly the later appender backs off.
func (tx *Tx) dupAfterAppend(outBefore, dnBefore []RelID, src, dst NodeID, self RelID) error {
	ts := tx.m.TS()
	for _, list := range [2][]RelID{outBefore, dnBefore} {
		for _, rid := range list {
			if rid == self {
				continue
			}
			r := tx.s.rels.At(rid)
			dup := r.src == src && r.dst == dst
			if tx.s.undirected {
				dup = dup || (r.src == dst && r.dst == src)
			}
			if !dup {
				continue
			}
			v := r.newest()
			if v == nil {
				continue
			}
			switch holder := v.meta.LockedBy(); {
			case holder == ts:
				// Our own earlier write in this transaction: a duplicate
				// only if it is visible to us (we inserted it; a tombstone
				// we wrote means we deleted it and may re-insert).
				if r.visible(ts) != nil {
					return fmt.Errorf("%w: %d→%d", ErrDuplicateEdge, src, dst)
				}
			case holder != 0:
				return fmt.Errorf("%w: concurrent write to edge %d→%d", ErrWriteConflict, src, dst)
			case v.meta.ETS() > ts:
				return fmt.Errorf("%w: %d→%d", ErrDuplicateEdge, src, dst)
			}
		}
	}
	return nil
}

// deleteRel performs the §2.3 Delete protocol on a relationship record.
func (tx *Tx) deleteRel(id RelID, r *rel) error {
	ts := tx.m.TS()
	tomb := tx.st.newVersion()
	tomb.meta.InitTombstone(ts)
	old, err := beginWrite(&r.chain, &r.versions, ts, tomb, nil)
	if err != nil {
		return err
	}
	tx.addHook(txHook{
		chain: &r.chain, versions: &r.versions, v: tomb, old: old,
		live: &tx.s.liveRels, delta: -1,
	})
	tx.logOp(LoggedOp{Kind: OpDeleteRel, ID: id})
	return nil
}

// DeleteRel deletes a relationship by ID.
func (tx *Tx) DeleteRel(id RelID) error {
	if tx.m.Status() != mvto.Active {
		return mvto.ErrTxnDone
	}
	r, err := tx.s.rel(id)
	if err != nil {
		return err
	}
	if err := tx.deleteRel(id, r); err != nil {
		return fmt.Errorf("delete relationship %d: %w", id, err)
	}
	tx.st.b.DeleteEdge(r.src, r.dst)
	if tx.s.undirected && r.src != r.dst {
		tx.st.b.DeleteEdge(r.dst, r.src)
	}
	return nil
}

// DeleteNode deletes a node and, cascading, every relationship attached to
// it — the paper's Delete Node operation (§6.2). The captured delta is one
// deleted-flag record for the node itself (its outgoing edges are implied,
// §5.1) plus one delete entry per incoming edge, mapped to that edge's
// source node.
//
// If a cascaded relationship delete conflicts with a concurrent
// transaction, DeleteNode returns the conflict error and the transaction is
// poisoned: it can only abort.
func (tx *Tx) DeleteNode(id NodeID) error {
	if tx.m.Status() != mvto.Active {
		return mvto.ErrTxnDone
	}
	ts := tx.m.TS()
	n, err := tx.s.node(id)
	if err != nil {
		return err
	}
	tomb := tx.st.newVersion()
	tomb.meta.InitTombstone(ts)
	old, err := beginWrite(&n.chain, &n.versions, ts, tomb, nil)
	if err != nil {
		return fmt.Errorf("delete node %d: %w", id, err)
	}
	tx.addHook(txHook{
		chain: &n.chain, versions: &n.versions, v: tomb, old: old,
		live: &tx.s.liveNodes, delta: -1,
	})

	// Cascade over attached relationships. Failures leave the transaction
	// abort-only; the registered undo hooks clean up everything done so
	// far. The node's own side needs no explicit deltas — its deleted flag
	// subsumes its outgoing edges (§5.1) — but each *other* endpoint whose
	// adjacency loses an edge gets a delete delta mapped to it.
	// tx.deleteRel distinguishes the cascade's three cases: ErrNotFound
	// means the relationship is already (visibly) gone and is skipped;
	// a lock or write conflict — including a version invisible only
	// because an in-flight transaction holds it — poisons the transaction.
	for _, rid := range n.snapshotOut() {
		r := tx.s.rels.At(rid)
		if err := tx.deleteRel(rid, r); err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			tx.poisoned = err
			return fmt.Errorf("delete node %d: cascade out-edge %d: %w", id, rid, err)
		}
		if tx.s.undirected {
			if other := r.other(id); other != id {
				tx.st.b.DeleteEdge(other, id)
			}
		}
	}
	if !tx.s.undirected {
		for _, rid := range n.snapshotIn() {
			r := tx.s.rels.At(rid)
			if r.src == id {
				continue // self-loop, already handled via the out list
			}
			if err := tx.deleteRel(rid, r); err != nil {
				if errors.Is(err, ErrNotFound) {
					continue
				}
				tx.poisoned = err
				return fmt.Errorf("delete node %d: cascade in-edge %d: %w", id, rid, err)
			}
			tx.st.b.DeleteEdge(r.src, id)
		}
	}

	tx.st.b.DeleteNode(id)
	tx.logOp(LoggedOp{Kind: OpDeleteNode, ID: id})
	return nil
}

// NodeExists reports whether node id is visible to this transaction,
// recording the read.
func (tx *Tx) NodeExists(id NodeID) bool {
	n, err := tx.s.node(id)
	if err != nil {
		return false
	}
	v := n.visible(tx.m.TS())
	if v == nil {
		return false
	}
	v.meta.RecordRead(tx.m.TS())
	return true
}

// NodeLabel returns the label of a visible node.
func (tx *Tx) NodeLabel(id NodeID) (string, error) {
	n, err := tx.s.node(id)
	if err != nil {
		return "", err
	}
	v := n.visible(tx.m.TS())
	if v == nil {
		return "", fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	v.meta.RecordRead(tx.m.TS())
	return tx.s.dict.String(n.label), nil
}

// GetNodeProp reads one property of a visible node.
func (tx *Tx) GetNodeProp(id NodeID, key string) (Value, error) {
	n, err := tx.s.node(id)
	if err != nil {
		return Value{}, err
	}
	v := n.visible(tx.m.TS())
	if v == nil {
		return Value{}, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	v.meta.RecordRead(tx.m.TS())
	code, ok := tx.s.dict.Lookup(key)
	if !ok {
		return Value{}, nil
	}
	return v.props[code], nil
}

// SetNodeProp updates one property of a node, creating a new version under
// the §2.3 Update protocol. Property changes do not alter topology and
// produce no delta (§5.1: deltas capture changes that alter the topology).
func (tx *Tx) SetNodeProp(id NodeID, key string, val Value) error {
	if tx.m.Status() != mvto.Active {
		return mvto.ErrTxnDone
	}
	ts := tx.m.TS()
	n, err := tx.s.node(id)
	if err != nil {
		return err
	}
	next := tx.st.newVersion()
	next.meta.InitInsert(ts)
	keyCode := tx.s.dict.Code(key)
	old, err := beginWrite(&n.chain, &n.versions, ts, next, func(newest *objVersion) {
		props := make(map[uint32]Value, len(newest.props)+1)
		for k, v := range newest.props {
			props[k] = v
		}
		props[keyCode] = val
		next.props = props
	})
	if err != nil {
		return fmt.Errorf("update node %d: %w", id, err)
	}
	tx.addHook(txHook{chain: &n.chain, versions: &n.versions, v: next, old: old})
	tx.logOp(LoggedOp{Kind: OpSetNodeProp, ID: id, Key: key, Val: val})
	return nil
}

// OutRels lists the visible outgoing relationships of a node, recording
// reads on them.
func (tx *Tx) OutRels(id NodeID) ([]RelInfo, error) {
	ts := tx.m.TS()
	n, err := tx.s.node(id)
	if err != nil {
		return nil, err
	}
	nv := n.visible(ts)
	if nv == nil {
		return nil, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	nv.meta.RecordRead(ts)
	var out []RelInfo
	for _, rid := range n.snapshotOut() {
		r := tx.s.rels.At(rid)
		if rv := r.visible(ts); rv != nil {
			rv.meta.RecordRead(ts)
			out = append(out, RelInfo{
				ID: rid, Src: r.src, Dst: r.dst,
				Weight: rv.weight, Label: tx.s.dict.String(r.label),
			})
		}
	}
	return out, nil
}

// Neighbors visits the visible out-neighbors of a node (a local traversal,
// the typical transactional graph read).
func (tx *Tx) Neighbors(id NodeID, fn func(dst NodeID, weight float64) bool) error {
	rels, err := tx.OutRels(id)
	if err != nil {
		return err
	}
	for _, r := range rels {
		if !fn(r.Dst, r.Weight) {
			return nil
		}
	}
	return nil
}

func (s *Store) internProps(props map[string]Value) map[uint32]Value {
	if len(props) == 0 {
		return nil
	}
	m := make(map[uint32]Value, len(props))
	for k, v := range props {
		m[s.dict.Code(k)] = v
	}
	return m
}
