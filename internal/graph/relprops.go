package graph

import (
	"fmt"

	"h2tap/internal/mvto"
)

// GetRelInfo reads a visible relationship's identity and current weight.
func (tx *Tx) GetRelInfo(id RelID) (RelInfo, error) {
	r, err := tx.s.rel(id)
	if err != nil {
		return RelInfo{}, err
	}
	rv := r.visible(tx.m.TS())
	if rv == nil {
		return RelInfo{}, fmt.Errorf("%w: relationship %d", ErrNotFound, id)
	}
	rv.meta.RecordRead(tx.m.TS())
	return RelInfo{
		ID: id, Src: r.src, Dst: r.dst,
		Weight: rv.weight, Label: tx.s.dict.String(r.label),
	}, nil
}

// GetRelProp reads one property of a visible relationship.
func (tx *Tx) GetRelProp(id RelID, key string) (Value, error) {
	r, err := tx.s.rel(id)
	if err != nil {
		return Value{}, err
	}
	rv := r.visible(tx.m.TS())
	if rv == nil {
		return Value{}, fmt.Errorf("%w: relationship %d", ErrNotFound, id)
	}
	rv.meta.RecordRead(tx.m.TS())
	code, ok := tx.s.dict.Lookup(key)
	if !ok {
		return Value{}, nil
	}
	return rv.props[code], nil
}

// SetRelProp updates one property of a relationship under the §2.3 Update
// protocol. Properties do not reach the structural replica, so no delta is
// captured (§5.1).
func (tx *Tx) SetRelProp(id RelID, key string, val Value) error {
	if tx.m.Status() != mvto.Active {
		return mvto.ErrTxnDone
	}
	ts := tx.m.TS()
	r, err := tx.s.rel(id)
	if err != nil {
		return err
	}
	next := tx.st.newVersion()
	next.meta.InitInsert(ts)
	keyCode := tx.s.dict.Code(key)
	old, err := beginWrite(&r.chain, &r.versions, ts, next, func(newest *objVersion) {
		props := make(map[uint32]Value, len(newest.props)+1)
		for k, v := range newest.props {
			props[k] = v
		}
		props[keyCode] = val
		next.props = props
		next.weight = newest.weight
	})
	if err != nil {
		return fmt.Errorf("update relationship %d: %w", id, err)
	}
	tx.addHook(txHook{chain: &r.chain, versions: &r.versions, v: next, old: old})
	tx.logOp(LoggedOp{Kind: OpSetRelProp, ID: id, Key: key, Val: val})
	return nil
}

// SetRelWeight updates a relationship's weight (edge value). Unlike plain
// properties the weight is mirrored by the structural replica, so the
// change is captured as an insert delta for the same (src, dst) pair — the
// merge's overwrite semantics turn it into a weight update on the replica.
func (tx *Tx) SetRelWeight(id RelID, weight float64) error {
	if tx.m.Status() != mvto.Active {
		return mvto.ErrTxnDone
	}
	ts := tx.m.TS()
	r, err := tx.s.rel(id)
	if err != nil {
		return err
	}
	next := tx.st.newVersion()
	next.weight = weight
	next.meta.InitInsert(ts)
	old, err := beginWrite(&r.chain, &r.versions, ts, next, func(newest *objVersion) {
		next.props = newest.props // property state carries over unchanged
	})
	if err != nil {
		return fmt.Errorf("update relationship %d weight: %w", id, err)
	}
	tx.addHook(txHook{chain: &r.chain, versions: &r.versions, v: next, old: old})
	tx.st.b.InsertEdge(r.src, r.dst, weight)
	if tx.s.undirected && r.src != r.dst {
		tx.st.b.InsertEdge(r.dst, r.src, weight)
	}
	tx.logOp(LoggedOp{Kind: OpSetRelWeight, ID: id, Weight: weight})
	return nil
}
