package graph

import (
	"fmt"

	"h2tap/internal/mvto"
)

// Two-phase commit support: PrepareCommit/Finish split Tx.Commit's sequence
// (commit gate → write-ahead log → delta capture → MVTO publish) at the
// write-ahead point, so a cross-shard coordinator can make every
// participant's operations durable (phase one) before any of them publishes
// (phase two). The commit gate is held shared for the whole span, exactly as
// Commit holds it, so a checkpoint barrier can never split a prepared
// transaction from its decision record.
//
// Deadlock discipline: a coordinator preparing on multiple stores MUST
// acquire them in a fixed global order (ascending shard index). Gate readers
// then only ever wait on gates with a strictly higher index, so every wait
// chain terminates even with concurrent checkpoint writers.

// PreparedTx is a transaction that has passed phase one: its operations are
// write-ahead logged as a prepare record and its commit gate is held. It
// must be finished exactly once via Finish.
type PreparedTx struct {
	tx   *Tx
	done bool
}

// PrepareCommit runs phase one of a two-phase commit: it acquires the
// store's commit gate (held until Finish) and write-ahead logs the
// transaction's operations via log — typically wal.Log.LogPrepare plus any
// commit guards. A nil log skips logging (volatile shards). On logging
// failure the gate is released and the transaction aborted.
//
// The transaction's MVTO write locks stay held through Finish, so between
// the phases no concurrent transaction can observe or overwrite its
// uncommitted state.
func (tx *Tx) PrepareCommit(log func(ts mvto.TS, ops []LoggedOp) error) (*PreparedTx, error) {
	st := tx.st
	if st == nil {
		return nil, mvto.ErrTxnDone
	}
	if tx.poisoned != nil {
		tx.m.AbortWith(st.rollback)
		tx.release()
		return nil, fmt.Errorf("%w: %v", ErrMustAbort, tx.poisoned)
	}
	if tx.m.Status() != mvto.Active {
		return nil, mvto.ErrTxnDone
	}
	tx.s.commitGate.RLock()
	if log != nil {
		if err := log(tx.m.TS(), st.ops); err != nil {
			tx.s.commitGate.RUnlock()
			tx.m.AbortWith(st.rollback)
			tx.release()
			return nil, fmt.Errorf("graph: prepare write-ahead log: %w", err)
		}
	}
	return &PreparedTx{tx: tx}, nil
}

// TS reports the prepared transaction's local timestamp.
func (p *PreparedTx) TS() mvto.TS { return p.tx.m.TS() }

// Ops exposes the prepared operations (for coordinator bookkeeping). The
// slice must not be modified or retained past Finish — it is pooled
// transaction state.
func (p *PreparedTx) Ops() []LoggedOp { return p.tx.st.ops }

// Finish runs phase two: with commit=true the decision is logged (decide,
// typically appending a local decision record; errors are surfaced but do
// not block publication — the coordinator's decision record is already the
// durable truth and recovery resolves the in-doubt prepare against it), the
// delta is captured and the MVTO commit publishes, exactly in Tx.Commit's
// order. With commit=false the transaction aborts; decide (if non-nil) logs
// the abort decision best-effort. The commit gate is released either way.
func (p *PreparedTx) Finish(commit bool, decide func() error) error {
	if p.done {
		return fmt.Errorf("graph: prepared transaction already finished")
	}
	p.done = true
	tx := p.tx
	st := tx.st
	if !commit {
		if decide != nil {
			decide() // best-effort: an unreadable abort record still presumes abort
		}
		err := tx.m.AbortWith(st.rollback)
		tx.release()
		tx.s.commitGate.RUnlock()
		return err
	}
	var decideErr error
	if decide != nil {
		decideErr = decide()
	}
	// Same ordering invariant as Tx.Commit: capture the delta before the
	// MVTO publish unlocks the touched objects, so concurrent captures land
	// in timestamp order.
	rq := tx.trace
	sp := rq.Span("delta.capture", "engine")
	tx.s.capture(st.b.BuildInto(tx.m.TS(), &st.d))
	sp.End()
	sp = rq.Span("mvto.publish", "engine")
	err := tx.m.CommitWith(st.publish)
	sp.End()
	tx.release()
	tx.s.commitGate.RUnlock()
	if err != nil {
		return err
	}
	if decideErr != nil {
		return fmt.Errorf("graph: decision log (transaction committed; recovery resolves via coordinator): %w", decideErr)
	}
	return nil
}
