package graph

import (
	"errors"
	"math/rand"
	"testing"

	"h2tap/internal/delta"
)

func TestUndirectedAdjacencySymmetric(t *testing.T) {
	s := NewUndirectedStore()
	if !s.Undirected() {
		t.Fatal("mode flag")
	}
	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	c, _ := tx.AddNode("P", nil)
	if _, err := tx.AddRel(a, b, "knows", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.AddRel(c, a, "knows", 3); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	ts := s.Oracle().LastCommitted()

	// Every endpoint sees the edge with the correct "other" node.
	for _, tc := range []struct {
		node NodeID
		want []delta.Edge
	}{
		{a, []delta.Edge{{Dst: b, W: 2}, {Dst: c, W: 3}}},
		{b, []delta.Edge{{Dst: a, W: 2}}},
		{c, []delta.Edge{{Dst: a, W: 3}}},
	} {
		got := s.OutEdgesAt(tc.node, ts)
		if len(got) != len(tc.want) {
			t.Fatalf("node %d edges = %+v, want %+v", tc.node, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("node %d edges = %+v, want %+v", tc.node, got, tc.want)
			}
		}
	}
	// InEdgesAt mirrors OutEdgesAt in undirected mode.
	in := s.InEdgesAt(b, ts)
	if len(in) != 1 || in[0].Dst != a {
		t.Fatalf("InEdgesAt = %+v", in)
	}
}

func TestUndirectedDuplicateEitherOrientation(t *testing.T) {
	s := NewUndirectedStore()
	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	tx.AddRel(a, b, "knows", 1)
	if _, err := tx.AddRel(b, a, "knows", 1); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("reverse-orientation duplicate = %v, want ErrDuplicateEdge", err)
	}
	tx.Abort()
}

func TestUndirectedCaptureTwoDeltas(t *testing.T) {
	s := NewUndirectedStore()
	tx0 := s.Begin()
	a, _ := tx0.AddNode("P", nil)
	b, _ := tx0.AddNode("P", nil)
	tx0.Commit()

	cap := &recordingCapturer{}
	s.AddCapturer(cap)
	tx := s.Begin()
	if _, err := tx.AddRel(a, b, "knows", 5); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	ds := cap.all()
	if len(ds) != 1 {
		t.Fatalf("captures = %d", len(ds))
	}
	// §5.1: "for an undirected graph, the transaction appends two deltas"
	// — one mapped to each endpoint.
	nodes := ds[0].Nodes
	if len(nodes) != 2 {
		t.Fatalf("node deltas = %+v, want 2", nodes)
	}
	if nodes[0].Node != a || nodes[0].Ins[0].Dst != b ||
		nodes[1].Node != b || nodes[1].Ins[0].Dst != a {
		t.Fatalf("two-delta encoding wrong: %+v", nodes)
	}
}

func TestUndirectedDeleteRelCaptureBothSides(t *testing.T) {
	s := NewUndirectedStore()
	tx0 := s.Begin()
	a, _ := tx0.AddNode("P", nil)
	b, _ := tx0.AddNode("P", nil)
	rid, _ := tx0.AddRel(a, b, "knows", 1)
	tx0.Commit()

	cap := &recordingCapturer{}
	s.AddCapturer(cap)
	tx := s.Begin()
	if err := tx.DeleteRel(rid); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	nodes := cap.all()[0].Nodes
	if len(nodes) != 2 || nodes[0].Del[0] != b || nodes[1].Del[0] != a {
		t.Fatalf("undirected delete deltas = %+v", nodes)
	}
	ts := s.Oracle().LastCommitted()
	if len(s.OutEdgesAt(a, ts)) != 0 || len(s.OutEdgesAt(b, ts)) != 0 {
		t.Fatal("edge survived on one side")
	}
}

func TestUndirectedDeleteNodeCascade(t *testing.T) {
	s := NewUndirectedStore()
	tx0 := s.Begin()
	a, _ := tx0.AddNode("P", nil)
	b, _ := tx0.AddNode("P", nil)
	c, _ := tx0.AddNode("P", nil)
	tx0.AddRel(a, b, "knows", 1)
	tx0.AddRel(c, a, "knows", 1)
	tx0.AddRel(b, c, "knows", 1)
	tx0.Commit()

	cap := &recordingCapturer{}
	s.AddCapturer(cap)
	tx := s.Begin()
	if err := tx.DeleteNode(a); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	ts := s.Oracle().LastCommitted()
	if s.NodeExistsAt(a, ts) {
		t.Fatal("node survived")
	}
	// b and c each keep exactly their mutual edge.
	if got := s.OutEdgesAt(b, ts); len(got) != 1 || got[0].Dst != c {
		t.Fatalf("b edges = %+v", got)
	}
	if got := s.OutEdgesAt(c, ts); len(got) != 1 || got[0].Dst != b {
		t.Fatalf("c edges = %+v", got)
	}
	// Deltas: a Deleted (no edge lists), plus Del entries mapped to b and c.
	var aD, bD, cD *delta.NodeDelta
	for i := range cap.all()[0].Nodes {
		nd := &cap.all()[0].Nodes[i]
		switch nd.Node {
		case a:
			aD = nd
		case b:
			bD = nd
		case c:
			cD = nd
		}
	}
	if aD == nil || !aD.Deleted || len(aD.Del) != 0 {
		t.Fatalf("deleted-node delta = %+v", aD)
	}
	if bD == nil || len(bD.Del) != 1 || bD.Del[0] != a {
		t.Fatalf("b delta = %+v", bD)
	}
	if cD == nil || len(cD.Del) != 1 || cD.Del[0] != a {
		t.Fatalf("c delta = %+v", cD)
	}
}

func TestUndirectedSelfLoop(t *testing.T) {
	s := NewUndirectedStore()
	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	if _, err := tx.AddRel(a, a, "self", 1); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	ts := s.Oracle().LastCommitted()
	if got := s.OutEdgesAt(a, ts); len(got) != 1 || got[0].Dst != a {
		t.Fatalf("self-loop edges = %+v (must appear exactly once)", got)
	}
}

func TestUndirectedBulkLoad(t *testing.T) {
	s := NewUndirectedStore()
	ts, err := s.BulkLoad(
		[]NodeSpec{{Label: "P"}, {Label: "P"}, {Label: "P"}},
		[]EdgeSpec{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.OutEdgesAt(1, ts); len(got) != 2 {
		t.Fatalf("middle node edges = %+v", got)
	}
	if got := s.OutEdgesAt(0, ts); len(got) != 1 || got[0].Dst != 1 {
		t.Fatalf("endpoint edges = %+v", got)
	}
}

// The undirected random workload keeps the adjacency symmetric and the
// model exact — the undirected counterpart of the directed model test.
func TestUndirectedRandomWorkloadSymmetry(t *testing.T) {
	s := NewUndirectedStore()
	specs := make([]NodeSpec, 24)
	for i := range specs {
		specs[i] = NodeSpec{Label: "P"}
	}
	s.BulkLoad(specs, nil)
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 500; i++ {
		tx := s.Begin()
		a := NodeID(r.Intn(int(s.NumNodeSlots())))
		b := NodeID(r.Intn(int(s.NumNodeSlots())))
		var err error
		switch r.Intn(4) {
		case 0, 1:
			_, err = tx.AddRel(a, b, "k", float64(r.Intn(9)+1))
		case 2:
			rels, oerr := tx.OutRels(a)
			if oerr != nil || len(rels) == 0 {
				tx.Abort()
				continue
			}
			err = tx.DeleteRel(rels[r.Intn(len(rels))].ID)
		case 3:
			err = tx.DeleteNode(a)
		}
		if err != nil {
			tx.Abort()
			continue
		}
		tx.Commit()
	}
	ts := s.Oracle().LastCommitted()
	// Symmetry: u has edge to v with weight w iff v has edge to u with w.
	type key struct{ u, v NodeID }
	seen := map[key]float64{}
	for u := NodeID(0); u < s.NumNodeSlots(); u++ {
		for _, e := range s.OutEdgesAt(u, ts) {
			seen[key{u, e.Dst}] = e.W
		}
	}
	for k, w := range seen {
		if k.u == k.v {
			continue
		}
		if w2, ok := seen[key{k.v, k.u}]; !ok || w2 != w {
			t.Fatalf("asymmetric edge %d—%d: %v vs %v (present %v)", k.u, k.v, w, w2, ok)
		}
	}
}
