package graph

import (
	"h2tap/internal/mvto"
)

// ExportAt produces a consistent logical snapshot of the graph at ts: every
// visible node and relationship with labels, properties and weights, in ID
// order. It is the inverse of Restore and feeds WAL compaction (checkpoint
// = snapshot + log tail).
func (s *Store) ExportAt(ts mvto.TS) ([]RestoredNode, []RestoredRel) {
	var nodes []RestoredNode
	limit := s.nodes.Len()
	s.nodes.ForEach(limit, func(id uint64, n *node) bool {
		v := n.visible(ts)
		if v == nil {
			return true
		}
		nodes = append(nodes, RestoredNode{
			ID:    id,
			Label: s.dict.String(n.label),
			Props: s.externProps(v.props),
		})
		return true
	})

	var rels []RestoredRel
	s.rels.ForEach(s.rels.Len(), func(id uint64, r *rel) bool {
		v := r.visible(ts)
		if v == nil {
			return true
		}
		rels = append(rels, RestoredRel{
			ID: id, Src: r.src, Dst: r.dst,
			Label:  s.dict.String(r.label),
			Weight: v.weight,
			Props:  s.externProps(v.props),
		})
		return true
	})
	return nodes, rels
}

func (s *Store) externProps(props map[uint32]Value) map[string]Value {
	if len(props) == 0 {
		return nil
	}
	out := make(map[string]Value, len(props))
	for code, v := range props {
		out[s.dict.String(code)] = v
	}
	return out
}
