package graph

import (
	"reflect"
	"testing"
)

// queryFixture: Persons alice(30), bob(25), carol(35); Posts p1, p2.
// alice-knows->bob, bob-knows->carol, alice-likes->p1 (w 2), carol-likes->p2 (w 5).
func queryFixture(t *testing.T) (*Store, map[string]NodeID) {
	t.Helper()
	s := NewStore()
	tx := s.Begin()
	ids := map[string]NodeID{}
	add := func(name, label string, age int64) {
		props := map[string]Value{"name": Str(name)}
		if age > 0 {
			props["age"] = Int(age)
		}
		id, err := tx.AddNode(label, props)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	add("alice", "Person", 30)
	add("bob", "Person", 25)
	add("carol", "Person", 35)
	add("p1", "Post", 0)
	add("p2", "Post", 0)
	rel := func(a, b, label string, w float64) {
		if _, err := tx.AddRel(ids[a], ids[b], label, w); err != nil {
			t.Fatal(err)
		}
	}
	rel("alice", "bob", "knows", 1)
	rel("bob", "carol", "knows", 1)
	rel("alice", "p1", "likes", 2)
	rel("carol", "p2", "likes", 5)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s, ids
}

func TestMatchLabel(t *testing.T) {
	s, ids := queryFixture(t)
	tx := s.Begin()
	defer tx.Abort()
	got, err := tx.Match("Person").Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{ids["alice"], ids["bob"], ids["carol"]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Match(Person) = %v, want %v", got, want)
	}
	if n, _ := tx.Match("Comment").Count(); n != 0 {
		t.Fatalf("unknown label count = %d", n)
	}
}

func TestWherePropertyFilters(t *testing.T) {
	s, ids := queryFixture(t)
	tx := s.Begin()
	defer tx.Abort()
	got, err := tx.Match("Person").Where("age", IntRange(26, 40)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{ids["alice"], ids["carol"]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("age filter = %v, want %v", got, want)
	}
	one, _ := tx.Match("Person").Where("name", Eq(Str("bob"))).Collect()
	if len(one) != 1 || one[0] != ids["bob"] {
		t.Fatalf("name filter = %v", one)
	}
	all, _ := tx.Match("Person").Where("age", Exists()).Count()
	if all != 3 {
		t.Fatalf("Exists count = %d", all)
	}
}

func TestOutExpansion(t *testing.T) {
	s, ids := queryFixture(t)
	tx := s.Begin()
	defer tx.Abort()
	// alice --knows--> {bob}; any-label --> {bob, p1}.
	knows, _ := tx.From(ids["alice"]).Out("knows").Collect()
	if !reflect.DeepEqual(knows, []NodeID{ids["bob"]}) {
		t.Fatalf("knows = %v", knows)
	}
	anyOut, _ := tx.From(ids["alice"]).Out("").Count()
	if anyOut != 2 {
		t.Fatalf("any-label out = %d", anyOut)
	}
	// Two-hop: Persons known by someone alice knows.
	twoHop, _ := tx.From(ids["alice"]).Out("knows").Out("knows").Collect()
	if !reflect.DeepEqual(twoHop, []NodeID{ids["carol"]}) {
		t.Fatalf("two-hop = %v", twoHop)
	}
	// Expansion + label filter: posts liked by any Person.
	likedPosts, _ := tx.Match("Person").Out("likes").WhereLabel("Post").Count()
	if likedPosts != 2 {
		t.Fatalf("liked posts = %d", likedPosts)
	}
}

func TestOutWhereWeight(t *testing.T) {
	s, ids := queryFixture(t)
	tx := s.Begin()
	defer tx.Abort()
	heavy, _ := tx.Match("Person").OutWhere("likes", func(w float64) bool { return w >= 5 }).Collect()
	if !reflect.DeepEqual(heavy, []NodeID{ids["p2"]}) {
		t.Fatalf("heavy likes = %v", heavy)
	}
}

func TestLimitAndDedup(t *testing.T) {
	s, ids := queryFixture(t)
	tx := s.Begin()
	// bob also likes p1 → p1 reachable twice, must appear once.
	if _, err := tx.AddRel(ids["bob"], ids["p1"], "likes", 1); err != nil {
		t.Fatal(err)
	}
	posts, _ := tx.Match("Person").Out("likes").Collect()
	if len(posts) != 2 {
		t.Fatalf("deduplicated posts = %v", posts)
	}
	limited, _ := tx.Match("Person").Limit(2).Collect()
	if len(limited) != 2 {
		t.Fatalf("limit = %v", limited)
	}
	tx.Abort()
}

func TestQuerySeesOwnWrites(t *testing.T) {
	s, ids := queryFixture(t)
	tx := s.Begin()
	dave, _ := tx.AddNode("Person", map[string]Value{"age": Int(40)})
	tx.AddRel(ids["carol"], dave, "knows", 1)
	got, _ := tx.From(ids["carol"]).Out("knows").Collect()
	if !reflect.DeepEqual(got, []NodeID{dave}) {
		t.Fatalf("own writes invisible to traversal: %v", got)
	}
	// Other transactions don't see them.
	other := s.Begin()
	defer other.Abort()
	if n, _ := other.Match("Person").Count(); n != 3 {
		t.Fatalf("uncommitted node leaked into Match: %d", n)
	}
	tx.Abort()
}

func TestQueryRecordsReads(t *testing.T) {
	// A Match by a newer transaction must block older writers (rts).
	s, ids := queryFixture(t)
	older := s.Begin()
	newer := s.Begin()
	if _, err := newer.Match("Person").Collect(); err != nil {
		t.Fatal(err)
	}
	if err := older.SetNodeProp(ids["alice"], "age", Int(99)); err == nil {
		t.Fatal("older write allowed after newer Match read")
	}
	older.Abort()
	newer.Abort()
}

func TestCollectProps(t *testing.T) {
	s, ids := queryFixture(t)
	tx := s.Begin()
	defer tx.Abort()
	names, err := tx.Match("Person").CollectProps("name")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0].AsString() != "alice" {
		t.Fatalf("names = %v", names)
	}
	// Missing key yields nil values, not errors.
	missing, err := tx.From(ids["p1"]).CollectProps("age")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0].Kind != KindNil {
		t.Fatalf("missing prop = %v", missing)
	}
}

func TestRestoreErrorPaths(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	tx.AddNode("P", nil)
	tx.Commit()
	if err := s.Restore(nil, nil, 5); err == nil {
		t.Fatal("Restore on non-empty store accepted")
	}

	s2 := NewStore()
	err := s2.Restore(
		[]RestoredNode{{ID: 0, Label: "P"}},
		[]RestoredRel{{ID: 0, Src: 0, Dst: 7}}, 5)
	if err == nil {
		t.Fatal("Restore with out-of-range endpoint accepted")
	}

	s3 := NewStore()
	err = s3.Restore(
		[]RestoredNode{{ID: 1, Label: "P"}}, // ID 0 is a hole
		[]RestoredRel{{ID: 0, Src: 0, Dst: 1}}, 5)
	if err == nil {
		t.Fatal("Restore with edge from hole node accepted")
	}
}

func TestExportAtSnapshots(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("P", map[string]Value{"x": Int(1)})
	b, _ := tx.AddNode("P", nil)
	tx.AddRel(a, b, "k", 2)
	tx.Commit()
	preTS := s.Oracle().LastCommitted()
	del := s.Begin()
	del.DeleteNode(b)
	del.Commit()

	// Export at the old snapshot sees both nodes; at the new one, one.
	n1, r1 := s.ExportAt(preTS)
	if len(n1) != 2 || len(r1) != 1 {
		t.Fatalf("old snapshot export = %d/%d", len(n1), len(r1))
	}
	if n1[0].Props["x"].AsInt() != 1 {
		t.Fatalf("export lost props: %+v", n1[0])
	}
	n2, r2 := s.ExportAt(s.Oracle().LastCommitted())
	if len(n2) != 1 || len(r2) != 0 {
		t.Fatalf("new snapshot export = %d/%d", len(n2), len(r2))
	}
}

func TestGroupCountByLabel(t *testing.T) {
	s, ids := queryFixture(t)
	ts := s.Oracle().LastCommitted()
	got := s.GroupCountByLabel(ts)
	if got["Person"] != 3 || got["Post"] != 2 {
		t.Fatalf("group count = %v", got)
	}
	// Deletion shifts the counts at newer snapshots only.
	del := s.Begin()
	if err := del.DeleteNode(ids["p1"]); err != nil {
		t.Fatal(err)
	}
	del.Commit()
	if got := s.GroupCountByLabel(s.Oracle().LastCommitted()); got["Post"] != 1 {
		t.Fatalf("post-delete group count = %v", got)
	}
	if got := s.GroupCountByLabel(ts); got["Post"] != 2 {
		t.Fatalf("old snapshot group count = %v", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	s, _ := queryFixture(t)
	hist := s.DegreeHistogramAt(s.Oracle().LastCommitted())
	// Degrees: alice 2, bob 1, carol 1, p1 0, p2 0.
	// Buckets: 0 → [deg 0]=2, 1 → [deg 1]=2, 2 → [deg 2]=1.
	want := []int{2, 2, 1}
	if !reflect.DeepEqual(hist, want) {
		t.Fatalf("histogram = %v, want %v", hist, want)
	}
}
