package graph

import (
	"sort"
	"sync"

	"h2tap/internal/mvto"
)

// labelIndex maps label codes to the IDs of nodes ever created with that
// label — the access path behind the paper's "retrieving nodes with
// specific labels" transactional workload (§1). Node labels are immutable,
// so posting lists are append-only; deleted and uncommitted nodes are
// filtered by MVTO visibility at read time, like adjacency entries.
type labelIndex struct {
	mu    sync.RWMutex
	lists map[uint32][]NodeID
}

func newLabelIndex() *labelIndex {
	return &labelIndex{lists: make(map[uint32][]NodeID)}
}

func (ix *labelIndex) add(label uint32, id NodeID) {
	ix.mu.Lock()
	ix.lists[label] = append(ix.lists[label], id)
	ix.mu.Unlock()
}

func (ix *labelIndex) snapshot(label uint32) []NodeID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.lists[label]
}

// NodesByLabelAt returns the IDs of nodes with the given label visible at
// ts, in ID order. Backed by the label index: cost is proportional to the
// label's population, not the whole node table.
func (s *Store) NodesByLabelAt(label string, ts mvto.TS) []NodeID {
	code, ok := s.dict.Lookup(label)
	if !ok {
		return nil
	}
	candidates := s.labels.snapshot(code)
	out := make([]NodeID, 0, len(candidates))
	for _, id := range candidates {
		if s.NodeExistsAt(id, ts) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountByLabelAt reports how many nodes with the label are visible at ts.
func (s *Store) CountByLabelAt(label string, ts mvto.TS) int {
	return len(s.NodesByLabelAt(label, ts))
}
