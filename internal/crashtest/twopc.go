package crashtest

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"h2tap"
	"h2tap/internal/faultinject"
	"h2tap/internal/shard"
	"h2tap/internal/vfs"
)

// 2PC crash enumeration: the same crash-point methodology as the
// single-domain harness, applied to a 3-shard cluster whose workload commits
// cross-shard transactions through the two-phase protocol. Crashing at every
// persist point sweeps through every stage of 2PC — per-shard prepare
// records, the coordinator decision record, per-shard local decisions and
// publication — plus shard WAL rotations. The core invariant is atomicity
// ACROSS shards: the recovered cluster state must equal the golden state
// after m whole logical transactions (m = completed, or completed+1 when the
// in-flight transaction's outcome became durable). A recovery that kept one
// shard's half of a cross-shard transaction while dropping another's would
// fingerprint as none of the golden states and fail the prefix check.

// twopcShards is the cluster width under test: three shards means every
// cross-shard commit writes at least two prepare records plus a coordinator
// decision, with a third shard idle — so recovery must also leave untouched
// shards alone.
const twopcShards = 3

// ClusterFingerprint renders a sharded database's committed state as the
// concatenation of every shard's canonical fingerprint. Ghost stand-in rows
// are part of shard state and are included — they commit and abort with
// their transaction, so they too must be all-or-nothing.
func ClusterFingerprint(c *shard.Cluster) string {
	var sb strings.Builder
	for i := 0; i < c.Shards(); i++ {
		fmt.Fprintf(&sb, "shard%d\n%s", i, Fingerprint(c.Domain(i).Store()))
	}
	return sb.String()
}

// twopcWorkload replays the deterministic sharded scenario on fsys: six
// transactions (five of them cross-shard), two propagation sweeps and a
// checkpoint. Node placement hashes the allocation sequence, so IDs and
// shard assignments are identical across runs.
func twopcWorkload(dir string, fsys vfs.FS, st *runState) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("crashtest: 2pc workload panic: %v", r)
		}
	}()
	db, err := h2tap.Open(h2tap.Options{
		Shards:          twopcShards,
		PersistDir:      dir,
		PersistPoolSize: poolSize,
		SyncWAL:         true,
		FS:              fsys,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	st.fps = append(st.fps, ClusterFingerprint(db.Cluster()))

	commit := func(fn func(tx *h2tap.ClusterTx) error) error {
		tx, err := db.BeginSharded()
		if err != nil {
			return err
		}
		if err := fn(tx); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		st.completed++
		st.fps = append(st.fps, ClusterFingerprint(db.Cluster()))
		return nil
	}

	// Eight nodes: hashed placement over three shards guarantees at least
	// two shards are populated, so the edges below include cross-shard ones.
	nodes := make([]uint64, 8)
	if err := commit(func(tx *h2tap.ClusterTx) error {
		for i := range nodes {
			var err error
			if nodes[i], err = tx.AddNode("Person", map[string]h2tap.Value{"i": h2tap.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// A ring visits every node: with ≥2 populated shards some hops cross.
	if err := commit(func(tx *h2tap.ClusterTx) error {
		for i := range nodes {
			if _, err := tx.AddRel(nodes[i], nodes[(i+1)%len(nodes)], "ring", 1); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if _, err := db.Propagate(); err != nil {
		return err
	}
	if err := commit(func(tx *h2tap.ClusterTx) error {
		if err := tx.SetNodeProp(nodes[0], "i", h2tap.Int(100)); err != nil {
			return err
		}
		_, err := tx.AddRel(nodes[0], nodes[4], "chord", 2)
		return err
	}); err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if err := commit(func(tx *h2tap.ClusterTx) error {
		// Cascades across shards: node 3's ring edges live in two shards and
		// its ghost rows elsewhere must go with it atomically.
		return tx.DeleteNode(nodes[3])
	}); err != nil {
		return err
	}
	if _, err := db.Propagate(); err != nil {
		return err
	}
	if err := commit(func(tx *h2tap.ClusterTx) error {
		if _, err := tx.AddRel(nodes[5], nodes[0], "back", 1); err != nil {
			return err
		}
		return tx.SetNodeProp(nodes[6], "i", h2tap.Int(60))
	}); err != nil {
		return err
	}
	if err := commit(func(tx *h2tap.ClusterTx) error {
		_, err := tx.AddRel(nodes[7], nodes[2], "far", 3)
		return err
	}); err != nil {
		return err
	}
	return db.Close()
}

// TwopcGoldenRun replays the sharded workload with no faults, returning the
// persist-point count and the fingerprint after each committed transaction.
func TwopcGoldenRun(dir string) (points int64, fps []string, err error) {
	cfs := faultinject.New(vfs.OS())
	var st runState
	if err := twopcWorkload(dir, cfs, &st); err != nil {
		return 0, nil, err
	}
	return cfs.Ops(), st.fps, nil
}

// TwopcRunPoint crashes the sharded workload at one persist operation,
// recovers, and checks the cross-shard invariants.
func TwopcRunPoint(dir string, point int64, tear faultinject.TearMode, golden []string) Result {
	ffs := faultinject.New(vfs.OS())
	ffs.CrashAt(point, tear)
	var st runState
	_ = twopcWorkload(dir, ffs, &st)

	res := Result{Point: point, Tear: tear, Completed: st.completed, Recovered: -1}
	res.Recovered, res.Err = twopcRecoverAndCheck(dir, golden, st.completed)
	return res
}

// twopcRecoverAndCheck re-opens the crashed cluster and asserts:
//
//   - Committed prefix, atomically across shards: the recovered composite
//     fingerprint equals golden[completed] or golden[completed+1] — never a
//     state mixing one shard's half of a transaction with another's absence.
//   - In-doubt resolution is the coordinator's decision: an in-flight
//     cross-shard transaction either committed on every shard (its decision
//     record was durable) or aborted on every shard (presumed abort).
//   - Service resumes: a post-recovery cross-shard commit succeeds, and a
//     stitched analytics run covers exactly the recovered edges.
//   - Durability holds again across a second restart.
func twopcRecoverAndCheck(dir string, golden []string, completed int) (int, error) {
	open := func() (*h2tap.DB, error) {
		return h2tap.Open(h2tap.Options{
			Shards:          twopcShards,
			PersistDir:      dir,
			PersistPoolSize: poolSize,
		})
	}
	db, err := open()
	if err != nil {
		return -1, fmt.Errorf("recovery open: %w", err)
	}
	defer db.Close()

	fp := ClusterFingerprint(db.Cluster())
	m := -1
	for i, g := range golden {
		if g == fp {
			m = i
			break
		}
	}
	if m < 0 {
		return -1, errors.New("recovered cluster state is not a committed prefix (cross-shard atomicity violated)")
	}
	if m < completed || m > completed+1 {
		return m, fmt.Errorf("recovered %d committed transactions, want %d or %d", m, completed, completed+1)
	}

	// Every shard's durable delta image must sit at a transaction boundary.
	for i := 0; i < db.Cluster().Shards(); i++ {
		if err := db.Cluster().Domain(i).DS().Validate(); err != nil {
			return m, fmt.Errorf("shard %d durable delta image inconsistent: %w", i, err)
		}
	}

	// Service resumes with a cross-shard probe: two fresh nodes plus an edge
	// between them (placement-hashed, so possibly cross-shard; both layouts
	// must work).
	tx, err := db.BeginSharded()
	if err != nil {
		return m, fmt.Errorf("post-recovery begin: %w", err)
	}
	pa, err := tx.AddNode("Probe", map[string]h2tap.Value{"m": h2tap.Int(int64(m))})
	if err != nil {
		tx.Abort()
		return m, fmt.Errorf("post-recovery insert: %w", err)
	}
	pb, err := tx.AddNode("Probe", nil)
	if err != nil {
		tx.Abort()
		return m, fmt.Errorf("post-recovery insert: %w", err)
	}
	if _, err := tx.AddRel(pa, pb, "probe", 1); err != nil {
		tx.Abort()
		return m, fmt.Errorf("post-recovery insert: %w", err)
	}
	if err := tx.Commit(); err != nil {
		return m, fmt.Errorf("post-recovery commit: %w", err)
	}

	// A stitched analytics run must see exactly the recovered edges: every
	// relationship is stored once, in its owner shard, so the composite edge
	// count equals the summed per-shard live counts.
	st, err := db.RunAnalyticsStitched(h2tap.WCC, pa)
	if err != nil {
		return m, fmt.Errorf("post-recovery stitched analytics: %w", err)
	}
	var wantEdges int64
	for i := 0; i < db.Cluster().Shards(); i++ {
		wantEdges += db.Cluster().Domain(i).Store().LiveRels()
	}
	if st.Edges != wantEdges {
		return m, fmt.Errorf("stitched composite has %d edges, recovered stores hold %d", st.Edges, wantEdges)
	}

	if err := db.Checkpoint(); err != nil {
		return m, fmt.Errorf("post-recovery checkpoint: %w", err)
	}
	after := ClusterFingerprint(db.Cluster())
	if err := db.Close(); err != nil {
		return m, fmt.Errorf("close after recovery: %w", err)
	}
	db2, err := open()
	if err != nil {
		return m, fmt.Errorf("second recovery: %w", err)
	}
	defer db2.Close()
	if ClusterFingerprint(db2.Cluster()) != after {
		return m, errors.New("post-recovery commit lost across a second restart")
	}
	return m, nil
}

// TwopcEnumerate sweeps crash points through the sharded workload for each
// tear mode, exactly like Enumerate does for the single-domain one.
func TwopcEnumerate(baseDir string, maxPerMode int, tears []faultinject.TearMode) (*Report, error) {
	points, golden, err := TwopcGoldenRun(filepath.Join(baseDir, "golden"))
	if err != nil {
		return nil, fmt.Errorf("crashtest: 2pc golden run: %w", err)
	}
	if len(tears) == 0 {
		tears = []faultinject.TearMode{faultinject.TearAll, faultinject.TearHalf}
	}
	rep := &Report{Points: points}
	for _, tear := range tears {
		for _, p := range samplePoints(points, maxPerMode) {
			dir := filepath.Join(baseDir, fmt.Sprintf("2pc-p%04d-%s", p, tear))
			res := TwopcRunPoint(dir, p, tear, golden)
			rep.Results = append(rep.Results, res)
			if res.Err != nil {
				rep.Failures++
			}
		}
	}
	return rep, nil
}
