package crashtest

import (
	"testing"

	"h2tap/internal/faultinject"
	"h2tap/internal/vfs"
)

// TestGroupCommitCleanRun checks the workload itself before any crashes are
// injected: all commits ack, recovery on the untouched directory sees every
// one of them, and the fsync slowdown actually produces multi-record batches
// (otherwise the enumeration never exercises a torn batch).
func TestGroupCommitCleanRun(t *testing.T) {
	dir := t.TempDir()
	fsys := faultinject.New(vfs.SlowSync(vfs.OS(), gcFsyncDelay))
	p := &gcProgress{started: make(map[gcMark]bool), acked: make(map[gcMark]bool)}
	if err := groupCommitWorkload(dir, fsys, p); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if len(p.acked) != gcWorkers*gcPerWorker {
		t.Fatalf("clean run acked %d commits, want %d", len(p.acked), gcWorkers*gcPerWorker)
	}
	n, err := recoverAndCheckGC(dir, p)
	if err != nil {
		t.Fatalf("clean-run recovery: %v", err)
	}
	if n != gcWorkers*gcPerWorker {
		t.Fatalf("recovered %d commits, want %d", n, gcWorkers*gcPerWorker)
	}
	t.Logf("clean run: %d persist points for %d commits", fsys.Ops(), n)
}

// TestGroupCommitCrashEnumeration crashes the concurrent
// committers-vs-Checkpoint workload at every persist point (an evenly
// spaced sample in -short mode), in both tear modes, and requires the
// group-commit recovery invariants — acked commits durable, no invented
// commits, per-worker contiguous prefixes, service resumption — at every
// point.
func TestGroupCommitCrashEnumeration(t *testing.T) {
	maxPerMode := 0
	if testing.Short() {
		maxPerMode = 20
	}
	rep, err := EnumerateGroupCommit(t.TempDir(), maxPerMode, nil)
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	// 20 commits + 3 checkpoints must expose a healthy spread of persist
	// points even when batching collapses many commits into one flush.
	if rep.Points < 20 {
		t.Fatalf("workload has %d persist points, want >= 20", rep.Points)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Errorf("crash at op %d/%d (%s), %d commits acked: %v",
				r.Point, rep.Points, r.Tear, r.Completed, r.Err)
		}
	}
	t.Logf("enumerated %d crashes over %d persist points, %d failures",
		len(rep.Results), rep.Points, rep.Failures)
}
