package crashtest

import (
	"testing"

	"h2tap/internal/faultinject"
	"h2tap/internal/vfs"
)

// TestTwopcGoldenDeterministic checks the sharded workload's determinism:
// hashed node placement, ascending-order prepares and fixed transaction
// shapes must land crash point N on the same persist operation — and produce
// the same per-commit cluster fingerprints — in every run.
func TestTwopcGoldenDeterministic(t *testing.T) {
	p1, fps1, err := TwopcGoldenRun(t.TempDir() + "/a")
	if err != nil {
		t.Fatalf("2pc golden run: %v", err)
	}
	p2, fps2, err := TwopcGoldenRun(t.TempDir() + "/b")
	if err != nil {
		t.Fatalf("2pc golden run: %v", err)
	}
	if p1 != p2 {
		t.Fatalf("persist points differ across runs: %d vs %d", p1, p2)
	}
	if len(fps1) != len(fps2) {
		t.Fatalf("fingerprint counts differ: %d vs %d", len(fps1), len(fps2))
	}
	for i := range fps1 {
		if fps1[i] != fps2[i] {
			t.Fatalf("fingerprint %d differs across runs:\n%s\nvs\n%s", i, fps1[i], fps2[i])
		}
	}
	// Floor: three shard WALs plus a coordinator log over six transactions
	// must expose well over 30 persist points (prepares, decisions, local
	// decisions, pool writes, rotation).
	if p1 < 30 {
		t.Fatalf("sharded workload has %d persist points, want >= 30", p1)
	}
	t.Logf("2pc workload: %d persist points, %d commits", p1, len(fps1)-1)
}

// TestTwopcCrashEnumeration sweeps crashes through every persist point of
// the sharded workload (a sample in -short mode) in both tear modes. Every
// point must recover to a whole-transaction prefix — the same transaction
// count on every shard — resolve any in-doubt 2PC transaction to the
// coordinator's decision, and resume cross-shard service.
func TestTwopcCrashEnumeration(t *testing.T) {
	maxPerMode := 0
	if testing.Short() {
		maxPerMode = 16
	}
	rep, err := TwopcEnumerate(t.TempDir(), maxPerMode, nil)
	if err != nil {
		t.Fatalf("2pc enumerate: %v", err)
	}
	if rep.Points < 30 {
		t.Fatalf("sharded workload has %d persist points, want >= 30", rep.Points)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Errorf("crash at op %d/%d (%s), %d commits completed: %v",
				r.Point, rep.Points, r.Tear, r.Completed, r.Err)
		}
	}
	t.Logf("enumerated %d 2pc crashes over %d persist points, %d failures",
		len(rep.Results), rep.Points, rep.Failures)
}

// TestTwopcInjectedFailureIsSurfacedNotFatal exercises the transient-error
// path (FailAt: the persist op errors, no crash): the sharded workload must
// surface the error — a failed prepare or coordinator append aborts the
// transaction on every shard — and the directory must still recover.
func TestTwopcInjectedFailureIsSurfacedNotFatal(t *testing.T) {
	points, golden, err := TwopcGoldenRun(t.TempDir())
	if err != nil {
		t.Fatalf("2pc golden run: %v", err)
	}
	for _, p := range samplePoints(points, 10) {
		dir := t.TempDir()
		ffs := faultinject.New(vfs.OS())
		ffs.FailAt(p)
		var st runState
		werr := twopcWorkload(dir, ffs, &st)
		if werr == nil {
			t.Errorf("fail at op %d: sharded workload succeeded, want surfaced error", p)
			continue
		}
		if m, rerr := twopcRecoverAndCheck(dir, golden, st.completed); rerr != nil {
			t.Errorf("fail at op %d: recovery after injected error (got %d commits): %v", p, m, rerr)
		}
	}
}
