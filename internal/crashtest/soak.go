package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"h2tap"
	"h2tap/internal/faultinject"
	"h2tap/internal/shard"
	"h2tap/internal/vfs"
)

// Randomized shard-fault storm: concurrent single- and cross-shard
// committers plus a stitched-analytics reader hammer a 3-shard cluster while
// a chaos controller repeatedly crashes or fails one fault domain at a time
// (a shard's directory, or the 2PC coordinator log), waits for the
// quarantine to latch, heals the simulated device and recovers the victim
// online — all without restarting the cluster. This is the concurrency
// counterpart of the deterministic enumerations: the same invariants, but
// raced under -race against live traffic and core swaps.
//
// Each writer owns its nodes and writes a monotonically increasing counter,
// so the end-of-storm ledger check needs no cross-goroutine coordination:
// every node's final value must be in [last acked, last attempted] — acked
// writes are never lost, nothing is fabricated, and an errored write may
// surface only if its log record became durable before the fault (lost
// ack). Cross-shard pairs must additionally agree: their two halves carry
// the same counter, so a torn 2PC commit would show unequal values.

// StormConfig parameterizes ShardStorm. Zero values select the defaults in
// parentheses.
type StormConfig struct {
	Dir      string        // storm directory (required)
	Writers  int           // single-shard writers per shard (2)
	Cross    int           // cross-shard writer goroutines (3)
	Duration time.Duration // storm length (2s)
	Seed     int64         // chaos RNG seed (1)
}

// StormReport summarizes a storm.
type StormReport struct {
	Acked      int64 // committed transactions (single + cross)
	CrossAcked int64 // committed cross-shard transactions
	Sheds      int64 // structured sheds (ErrShardDown / ErrCoordinatorDown)
	OtherErrs  int64 // raw injected errors surfaced mid-quarantine
	Stitches   int64 // successful stitched analytics runs
	Degraded   int64 // stitches that excluded a down shard

	ShardFaults int64 // injected shard-scoped faults
	CoordFaults int64 // injected coordinator-scoped faults
	Recoveries  int64 // successful online RecoverShard calls
	RecoveryMax time.Duration
	RecoverySum time.Duration
}

// stormNode is one writer-owned cell of the ledger. Only its writer
// mutates it; the final check reads it after the writer's goroutine joins.
type stormNode struct {
	node        uint64
	key         string
	lastAcked   int64
	lastAttempt int64
	pair        *stormNode // other half of a cross-shard pair, nil for single
}

// ShardStorm runs the randomized fault storm and verifies the ledger, the
// stitched view and durable convergence at the end.
func ShardStorm(cfg StormConfig) (*StormReport, error) {
	if cfg.Writers <= 0 {
		cfg.Writers = 2
	}
	if cfg.Cross <= 0 {
		cfg.Cross = 3
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rep := &StormReport{}

	ffs := faultinject.New(vfs.OS())
	need := cfg.Writers + cfg.Cross + 2 // own nodes per shard: singles, cross halves, analytics src
	db, perShard, err := sfSetupN(cfg.Dir, ffs, need)
	if err != nil {
		return nil, fmt.Errorf("storm setup: %w", err)
	}
	defer db.Close()
	c := db.Cluster()

	// Carve writer-owned nodes out of the per-shard pools.
	var cells []*stormNode
	singles := make([]*stormNode, 0, sfShards*cfg.Writers)
	for s := 0; s < sfShards; s++ {
		for w := 0; w < cfg.Writers; w++ {
			n := &stormNode{node: perShard[s][w], key: "n"}
			singles = append(singles, n)
			cells = append(cells, n)
		}
	}
	crossPairs := make([][2]*stormNode, 0, cfg.Cross)
	for w := 0; w < cfg.Cross; w++ {
		s1, s2 := w%sfShards, (w+1)%sfShards
		a := &stormNode{node: perShard[s1][cfg.Writers+w/sfShards], key: fmt.Sprintf("c%d", w)}
		b := &stormNode{node: perShard[s2][cfg.Writers+w/sfShards], key: fmt.Sprintf("c%d", w)}
		a.pair, b.pair = b, a
		crossPairs = append(crossPairs, [2]*stormNode{a, b})
		cells = append(cells, a, b)
	}

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		acked    atomic.Int64
		xacked   atomic.Int64
		sheds    atomic.Int64
		otherEs  atomic.Int64
		stitches atomic.Int64
		degraded atomic.Int64
		anErr    atomic.Pointer[error]
	)
	classify := func(err error) {
		if errors.Is(err, shard.ErrShardDown) || errors.Is(err, shard.ErrCoordinatorDown) {
			sheds.Add(1)
		} else {
			// A fault can surface raw (mid-commit, before the quarantine
			// latched); the ledger check at the end is what proves these
			// never corrupted anything.
			otherEs.Add(1)
		}
	}

	// Single-shard writers.
	for _, cell := range singles {
		cell := cell
		wg.Add(1)
		go func() {
			defer wg.Done()
			for val := int64(1); ; val++ {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := db.BeginSharded()
				if err != nil {
					classify(err)
					continue
				}
				cell.lastAttempt = val
				if err := tx.SetNodeProp(cell.node, cell.key, h2tap.Int(val)); err != nil {
					tx.Abort() //nolint:errcheck
					classify(err)
					continue
				}
				if err := tx.Commit(); err != nil {
					classify(err)
					continue
				}
				cell.lastAcked = val
				acked.Add(1)
			}
		}()
	}
	// Cross-shard writers: both halves get the same counter in one 2PC
	// transaction.
	for _, pair := range crossPairs {
		a, b := pair[0], pair[1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for val := int64(1); ; val++ {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := db.BeginSharded()
				if err != nil {
					classify(err)
					continue
				}
				a.lastAttempt, b.lastAttempt = val, val
				err = tx.SetNodeProp(a.node, a.key, h2tap.Int(val))
				if err == nil {
					err = tx.SetNodeProp(b.node, b.key, h2tap.Int(val))
				}
				if err != nil {
					tx.Abort() //nolint:errcheck
					classify(err)
					continue
				}
				if err := tx.Commit(); err != nil {
					classify(err)
					continue
				}
				a.lastAcked, b.lastAcked = val, val
				acked.Add(1)
				xacked.Add(1)
			}
		}()
	}
	// Stitched-analytics reader: the healthy subgraph must keep serving
	// throughout the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := perShard[0][need-1]
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, err := db.RunAnalyticsStitched(h2tap.BFS, src)
			if err != nil {
				// Every shard down at once (overlapping quarantines: latches
				// are lazy and a racing commit may re-quarantine a shard the
				// controller just recovered) sheds the whole stitch; anything
				// else is a real failure.
				if errors.Is(err, shard.ErrShardDown) {
					sheds.Add(1)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				e := fmt.Errorf("stitched analytics during storm: %w", err)
				anErr.CompareAndSwap(nil, &e)
				return
			}
			stitches.Add(1)
			if len(st.Excluded) > 0 {
				degraded.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Chaos controller: one victim at a time, heal + online recovery, repeat.
	rng := rand.New(rand.NewSource(cfg.Seed))
	deadline := time.Now().Add(cfg.Duration)
	tears := []faultinject.TearMode{faultinject.TearNone, faultinject.TearHalf, faultinject.TearAll}
	var stormErr error
	for time.Now().Before(deadline) && stormErr == nil {
		time.Sleep(time.Duration(5+rng.Intn(20)) * time.Millisecond)
		if rng.Float64() < 0.25 {
			// Coordinator fault: cross-shard commits must latch off while
			// single-shard traffic continues; RecoverCoordinator repairs it.
			rep.CoordFaults++
			ffs.SetScope(coordPath(cfg.Dir))
			if rng.Float64() < 0.5 {
				ffs.FailIn(1 + int64(rng.Intn(4)))
			} else {
				ffs.CrashIn(1+int64(rng.Intn(4)), tears[rng.Intn(len(tears))])
			}
			waitUntil(2*time.Second, func() bool { return c.CoordErr() != nil })
			ffs.Heal()
			if c.CoordErr() != nil {
				if err := db.RecoverCoordinator(); err != nil {
					stormErr = fmt.Errorf("RecoverCoordinator: %w", err)
				}
			}
			continue
		}
		victim := rng.Intn(sfShards)
		rep.ShardFaults++
		ffs.SetScope(sfShardDir(cfg.Dir, victim))
		if rng.Float64() < 0.3 {
			ffs.FailIn(1 + int64(rng.Intn(24)))
		} else {
			ffs.CrashIn(1+int64(rng.Intn(24)), tears[rng.Intn(len(tears))])
		}
		down := waitUntil(2*time.Second, func() bool {
			st, _ := c.Domain(victim).Health()
			return st == shard.ShardDown
		})
		// Let traffic shed against the quarantined shard for a moment.
		if down {
			time.Sleep(time.Duration(2+rng.Intn(10)) * time.Millisecond)
		}
		ffs.Heal()
		if st, _ := c.Domain(victim).Health(); st == shard.ShardDown {
			t0 := time.Now()
			if err := db.RecoverShard(victim); err != nil {
				stormErr = fmt.Errorf("RecoverShard(%d): %w", victim, err)
				break
			}
			lat := time.Since(t0)
			rep.Recoveries++
			rep.RecoverySum += lat
			if lat > rep.RecoveryMax {
				rep.RecoveryMax = lat
			}
		}
	}

	// Wind down: stop the traffic first (an in-flight cross-shard commit
	// that raced a recovery may re-quarantine its shard, by design), then
	// heal and bring every domain back.
	close(stop)
	wg.Wait()
	ffs.Heal()
	if stormErr == nil {
		// Coordinator first: its reconciliation may quarantine shards whose
		// in-memory abort contradicts a durably committed decision; the shard
		// loop below then recovers them.
		if c.CoordErr() != nil {
			if err := db.RecoverCoordinator(); err != nil {
				stormErr = fmt.Errorf("final RecoverCoordinator: %w", err)
			}
		}
	}
	if stormErr == nil {
		for i := 0; i < sfShards; i++ {
			if st, _ := c.Domain(i).Health(); st == shard.ShardDown {
				if err := db.RecoverShard(i); err != nil {
					stormErr = fmt.Errorf("final RecoverShard(%d): %w", i, err)
				} else {
					rep.Recoveries++
				}
			}
		}
	}
	rep.Acked = acked.Load()
	rep.CrossAcked = xacked.Load()
	rep.Sheds = sheds.Load()
	rep.OtherErrs = otherEs.Load()
	rep.Stitches = stitches.Load()
	rep.Degraded = degraded.Load()
	if stormErr != nil {
		return rep, stormErr
	}
	if p := anErr.Load(); p != nil {
		return rep, *p
	}
	if rep.Acked == 0 || rep.CrossAcked == 0 {
		return rep, fmt.Errorf("storm made no progress (acked %d, cross %d)", rep.Acked, rep.CrossAcked)
	}

	// Everything healthy, stitch covers the whole cluster again.
	for i := 0; i < sfShards; i++ {
		if st, cause := c.Domain(i).Health(); st != shard.ShardHealthy {
			return rep, fmt.Errorf("shard %d ended the storm %s: %v", i, st, cause)
		}
	}
	st, err := db.RunAnalyticsStitched(h2tap.WCC, perShard[0][0])
	if err != nil {
		return rep, fmt.Errorf("final stitch: %w", err)
	}
	if len(st.Excluded) != 0 {
		return rep, fmt.Errorf("final stitch excludes shards %v after full recovery", st.Excluded)
	}

	// Ledger on the live cluster, then again after a cold restart.
	if err := stormLedgerCheck(db, cells); err != nil {
		return rep, err
	}
	if err := db.Close(); err != nil {
		return rep, fmt.Errorf("close: %w", err)
	}
	db2, err := h2tap.Open(h2tap.Options{Shards: sfShards, PersistDir: cfg.Dir, PersistPoolSize: poolSize})
	if err != nil {
		return rep, fmt.Errorf("restart: %w", err)
	}
	defer db2.Close()
	for i := 0; i < sfShards; i++ {
		if err := db2.Cluster().Domain(i).DS().Validate(); err != nil {
			return rep, fmt.Errorf("shard %d durable delta image inconsistent: %w", i, err)
		}
	}
	if err := stormLedgerCheck(db2, cells); err != nil {
		return rep, fmt.Errorf("after restart: %w", err)
	}
	return rep, nil
}

// stormLedgerCheck verifies every writer-owned cell: acked never lost,
// nothing fabricated, cross-shard halves agree.
func stormLedgerCheck(db *h2tap.DB, cells []*stormNode) error {
	tx, err := db.BeginSharded()
	if err != nil {
		return fmt.Errorf("ledger begin: %w", err)
	}
	defer tx.Abort() //nolint:errcheck // read-only
	vals := make(map[*stormNode]int64, len(cells))
	for _, cell := range cells {
		v, err := tx.GetNodeProp(cell.node, cell.key)
		if err != nil {
			return fmt.Errorf("ledger read node %d: %w", cell.node, err)
		}
		got := v.AsInt()
		vals[cell] = got
		if got < cell.lastAcked {
			return fmt.Errorf("node %d key %s: value %d below last acked %d (acked commit lost)",
				cell.node, cell.key, got, cell.lastAcked)
		}
		if got > cell.lastAttempt {
			return fmt.Errorf("node %d key %s: value %d beyond last attempt %d (fabricated write)",
				cell.node, cell.key, got, cell.lastAttempt)
		}
	}
	for _, cell := range cells {
		if cell.pair != nil && vals[cell] != vals[cell.pair] {
			return fmt.Errorf("cross-shard pair %d/%d: halves disagree (%d vs %d) — 2PC atomicity violated",
				cell.node, cell.pair.node, vals[cell], vals[cell.pair])
		}
	}
	return nil
}

// waitUntil polls cond every millisecond up to d.
func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}
