package crashtest

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"h2tap"
	"h2tap/internal/faultinject"
	"h2tap/internal/shard"
	"h2tap/internal/vfs"
)

// Shard fault-domain enumeration: fault injection scoped to ONE shard's
// directory — modeling that shard's device failing while the rest of the
// machine keeps working — at every in-scope persist point, in transient
// (FailAt) and crash (CrashAt × tear mode) flavors. Unlike the whole-process
// crash enumeration, the cluster stays up: the invariants under test are the
// fault-domain ones of DESIGN.md §5j.
//
//   - Isolation: after the target shard quarantines, writes touching it shed
//     with ErrShardDown carrying the shard index; single-shard transactions
//     on healthy shards keep committing and stitched analytics keep serving
//     (with the Down shard excluded from the composite).
//   - No half-exposure: every scripted transaction — acked or not — is
//     all-or-nothing across shards when read back after recovery.
//   - Acked durability: a transaction whose Commit returned nil is fully
//     visible after recovery and after a full restart.
//   - Online convergence: RecoverShard reopens the target from its own WAL,
//     checkpoint and the coordinator's decisions while the cluster serves,
//     and the resulting cluster state fingerprints identically to a cold
//     restart of the same directory — online recovery reaches exactly the
//     durable state.

// sfShards is the cluster width; three shards gives the enumeration a down
// shard plus two healthy ones, so both healthy-only and mixed cross-shard
// transactions exist at every point.
const sfShards = 3

// sfMode is one fault flavor of the enumeration.
type sfMode struct {
	Fail bool // transient injected error instead of a crash
	Tear faultinject.TearMode
}

func (m sfMode) String() string {
	if m.Fail {
		return "fail"
	}
	return "crash-" + m.Tear.String()
}

// sfModes is the covering set: one transient flavor plus both tear modes of
// the scoped-crash model.
var sfModes = []sfMode{
	{Fail: true},
	{Tear: faultinject.TearHalf},
	{Tear: faultinject.TearAll},
}

// sfWrite is one property write a scripted transaction attempts; the
// (node, key, value) triple makes applied-ness checkable after the fact.
type sfWrite struct {
	node uint64
	key  string
}

// sfTx is the ledger entry for one scripted transaction.
type sfTx struct {
	writes []sfWrite
	val    int64
	cross  bool
	acked  bool
	err    error
}

// sfRun drives the scripted scenario and accumulates the ledger.
type sfRun struct {
	db  *h2tap.DB
	txs []*sfTx
}

// runTx executes one scripted transaction: every write sets its key to the
// same value, plus optional extra ops from build. The outcome lands in the
// ledger; scripted transactions are allowed to fail (that is the point).
func (r *sfRun) runTx(val int64, writes []sfWrite, build func(tx *h2tap.ClusterTx) error) {
	t := &sfTx{writes: writes, val: val}
	r.txs = append(r.txs, t)
	tx, err := r.db.BeginSharded()
	if err != nil {
		t.err = err
		return
	}
	seen := map[int]bool{}
	for _, w := range writes {
		seen[shard.NewPartitioner(sfShards).ShardOf(w.node)] = true
		if err := tx.SetNodeProp(w.node, w.key, h2tap.Int(val)); err != nil {
			tx.Abort()
			t.err = err
			return
		}
	}
	t.cross = len(seen) > 1
	if build != nil {
		if err := build(tx); err != nil {
			tx.Abort()
			t.err = err
			return
		}
	}
	if err := tx.Commit(); err != nil {
		t.err = err
		return
	}
	t.acked = true
}

// sfShardDir is the scope prefix for one shard's fault domain.
func sfShardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// sfSetup opens a 3-shard cluster on fsys and builds the base graph: at
// least four nodes per shard, a cross-shard ring over all of them, one
// propagation (engines up) and a checkpoint (so later recovery replays
// checkpoint + WAL, not WAL alone). Placement hashes the allocation
// sequence, so the layout is identical across runs.
func sfSetup(dir string, fsys vfs.FS) (*h2tap.DB, [][]uint64, error) {
	return sfSetupN(dir, fsys, 4)
}

// sfSetupN is sfSetup with a configurable per-shard node floor (the chaos
// storm needs enough nodes to give every writer goroutine its own).
func sfSetupN(dir string, fsys vfs.FS, minPerShard int) (*h2tap.DB, [][]uint64, error) {
	db, err := h2tap.Open(h2tap.Options{
		Shards:          sfShards,
		PersistDir:      dir,
		PersistPoolSize: poolSize,
		SyncWAL:         true,
		FS:              fsys,
	})
	if err != nil {
		return nil, nil, err
	}
	p := shard.NewPartitioner(sfShards)
	perShard := make([][]uint64, sfShards)
	var all []uint64
	tx, err := db.BeginSharded()
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	for {
		full := true
		for _, l := range perShard {
			if len(l) < minPerShard {
				full = false
			}
		}
		if full {
			break
		}
		g, err := tx.AddNode("N", map[string]h2tap.Value{"seq": h2tap.Int(int64(len(all)))})
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		perShard[p.ShardOf(g)] = append(perShard[p.ShardOf(g)], g)
		all = append(all, g)
	}
	// Ring each shard's own nodes. Keeping the setup rels intra-shard means
	// the script's cross-shard AddRels can never collide with them.
	for _, l := range perShard {
		for i := range l {
			if _, err := tx.AddRel(l[i], l[(i+1)%len(l)], "ring", 1); err != nil {
				db.Close()
				return nil, nil, err
			}
		}
	}
	if err := tx.Commit(); err != nil {
		db.Close()
		return nil, nil, err
	}
	if _, err := db.Propagate(); err != nil {
		db.Close()
		return nil, nil, err
	}
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, perShard, nil
}

// sfScript is the faulted phase: a fixed mix of single-shard transactions on
// the target, single-shard transactions on healthy shards, cross-shard
// transactions involving the target and cross-shard transactions among the
// healthy pair, interleaved with propagations and a checkpoint. Errors from
// propagate/checkpoint are expected once the target is down and ignored;
// the ledger records each transaction's fate.
func sfScript(r *sfRun, perShard [][]uint64, target int) {
	h1, h2 := (target+1)%sfShards, (target+2)%sfShards
	s := perShard[target]
	a, b := perShard[h1], perShard[h2]

	r.runTx(1001, []sfWrite{{s[0], "v"}}, nil)
	r.runTx(1002, []sfWrite{{a[0], "v"}}, nil)
	r.runTx(1003, []sfWrite{{s[1], "x"}, {a[1], "x"}}, func(tx *h2tap.ClusterTx) error {
		_, err := tx.AddRel(s[1], a[1], "x1", 1)
		return err
	})
	r.db.Propagate() //nolint:errcheck // expected to degrade once the target is down
	r.runTx(1005, []sfWrite{{s[0], "v2"}}, nil)
	r.runTx(1006, []sfWrite{{a[2], "y"}, {b[2], "y"}}, func(tx *h2tap.ClusterTx) error {
		_, err := tx.AddRel(a[2], b[2], "y1", 1)
		return err
	})
	r.db.Checkpoint() //nolint:errcheck // quarantines the target, healthy shards rotate
	r.runTx(1008, []sfWrite{{s[2], "z"}, {b[0], "z"}}, func(tx *h2tap.ClusterTx) error {
		_, err := tx.AddRel(b[0], s[2], "z1", 1)
		return err
	})
	r.runTx(1009, []sfWrite{{b[1], "v"}}, nil)
	r.db.Propagate() //nolint:errcheck
	r.runTx(1011, []sfWrite{{s[0], "w"}}, nil)
}

// sfVerifyLedger checks the ledger against the live cluster: acked
// transactions fully visible, unacked ones all-or-nothing (an in-flight
// transaction whose outcome became durable before the fault may surface
// whole — never torn across shards).
func sfVerifyLedger(db *h2tap.DB, txs []*sfTx) error {
	tx, err := db.BeginSharded()
	if err != nil {
		return fmt.Errorf("ledger read begin: %w", err)
	}
	defer tx.Abort() //nolint:errcheck // read-only
	for i, t := range txs {
		applied := 0
		for _, w := range t.writes {
			v, err := tx.GetNodeProp(w.node, w.key)
			if err != nil {
				return fmt.Errorf("ledger read node %d: %w", w.node, err)
			}
			if v.String() == h2tap.Int(t.val).String() {
				applied++
			}
		}
		switch {
		case t.acked && applied != len(t.writes):
			return fmt.Errorf("tx %d (val %d): acked but only %d/%d writes visible (acked commit lost)",
				i, t.val, applied, len(t.writes))
		case !t.acked && applied != 0 && applied != len(t.writes):
			return fmt.Errorf("tx %d (val %d): %d/%d writes visible (half-exposed across shards; commit error was %v)",
				i, t.val, applied, len(t.writes), t.err)
		}
	}
	return nil
}

// ShardFaultGolden replays setup + script against the target shard's scope
// with no fault armed, returning the number of in-scope persist points the
// script covers (the enumeration domain) and verifying the no-fault run
// acks every transaction.
func ShardFaultGolden(dir string, target int) (int64, error) {
	ffs := faultinject.New(vfs.OS())
	ffs.SetScope(sfShardDir(dir, target))
	db, perShard, err := sfSetup(dir, ffs)
	if err != nil {
		return 0, fmt.Errorf("golden setup: %w", err)
	}
	defer db.Close()
	ops0 := ffs.Ops()
	r := &sfRun{db: db}
	sfScript(r, perShard, target)
	points := ffs.Ops() - ops0
	for i, t := range r.txs {
		if !t.acked {
			return 0, fmt.Errorf("golden run: tx %d failed with no fault armed: %v", i, t.err)
		}
	}
	if err := db.Close(); err != nil {
		return 0, fmt.Errorf("golden close: %w", err)
	}
	return points, nil
}

// ShardFaultRunPoint injects one scoped fault at the point-th in-scope
// persist operation of the script and checks every fault-domain invariant.
// Completed reports acked scripted transactions; Recovered is 1 when the
// target quarantined and RecoverShard brought it back, 0 when the transient
// fault was absorbed without quarantine.
func ShardFaultRunPoint(dir string, target int, point int64, mode sfMode) Result {
	res := Result{Point: point, Tear: mode.Tear, Recovered: -1}
	ffs := faultinject.New(vfs.OS())
	ffs.SetScope(sfShardDir(dir, target))
	db, perShard, err := sfSetup(dir, ffs)
	if err != nil {
		res.Err = fmt.Errorf("setup: %w", err)
		return res
	}
	defer db.Close()
	if mode.Fail {
		ffs.FailIn(point)
	} else {
		ffs.CrashIn(point, mode.Tear)
	}

	r := &sfRun{db: db}
	sfScript(r, perShard, target)
	for _, t := range r.txs {
		if t.acked {
			res.Completed++
		}
	}

	res.Recovered, res.Err = sfCheck(db, ffs, dir, target, perShard, r.txs)
	return res
}

// sfCheck runs the post-script probes, recovery and verification; see the
// package comment above for the invariants.
func sfCheck(db *h2tap.DB, ffs *faultinject.FS, dir string, target int, perShard [][]uint64, txs []*sfTx) (int, error) {
	c := db.Cluster()
	h1 := (target + 1) % sfShards
	downSt, _ := c.Domain(target).Health()

	// Isolation probes: healthy shards must keep acking single-shard
	// commits; a Down target must shed with the structured error.
	for i := 0; i < sfShards; i++ {
		probe := &sfTx{writes: []sfWrite{{perShard[i][3], "probe"}}, val: 2000 + int64(i)}
		txs = append(txs, probe)
		tx, err := db.BeginSharded()
		if err != nil {
			return -1, fmt.Errorf("probe begin: %w", err)
		}
		err = tx.SetNodeProp(perShard[i][3], "probe", h2tap.Int(probe.val))
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort() //nolint:errcheck
		}
		probe.err = err
		switch {
		case i == target && downSt == shard.ShardDown:
			if err == nil {
				return -1, fmt.Errorf("shard %d is down but a write to it committed", target)
			}
			if !errors.Is(err, shard.ErrShardDown) {
				return -1, fmt.Errorf("write to down shard %d failed without ErrShardDown: %v", target, err)
			}
			var sde *shard.ShardDownError
			if !errors.As(err, &sde) || sde.Shard != target {
				return -1, fmt.Errorf("ShardDownError names wrong shard (got %v, want %d)", err, target)
			}
		case err != nil:
			return -1, fmt.Errorf("healthy shard %d refused a single-shard commit: %w", i, err)
		default:
			probe.acked = true
		}
	}

	// Degraded stitched analytics: the healthy subgraph keeps serving with
	// the Down shard excluded.
	if downSt == shard.ShardDown {
		st, err := db.RunAnalyticsStitched(h2tap.WCC, perShard[h1][0])
		if err != nil {
			return -1, fmt.Errorf("stitched analytics with shard %d down: %w", target, err)
		}
		found := false
		for _, e := range st.Excluded {
			if e == target {
				found = true
			}
		}
		if !found {
			return -1, fmt.Errorf("stitch with shard %d down did not exclude it (excluded %v)", target, st.Excluded)
		}
	}

	// Online recovery: clear the simulated device fault, reopen the shard in
	// place while the cluster stays up.
	ffs.Heal()
	recovered := 0
	if downSt == shard.ShardDown {
		if err := db.RecoverShard(target); err != nil {
			return -1, fmt.Errorf("RecoverShard(%d): %w", target, err)
		}
		if st, cause := c.Domain(target).Health(); st != shard.ShardHealthy {
			return -1, fmt.Errorf("shard %d still %s after recovery: %v", target, st, cause)
		}
		if got := c.Domain(target).Recoveries(); got != 1 {
			return -1, fmt.Errorf("shard %d recovery count %d, want 1", target, got)
		}
		recovered = 1
	}

	// The ledger must hold on the recovered live cluster.
	if err := sfVerifyLedger(db, txs); err != nil {
		return recovered, err
	}

	// Service is fully restored: a cross-shard commit touching the target
	// acks, and a stitch covers every shard again.
	post := &sfTx{writes: []sfWrite{{perShard[target][0], "post"}, {perShard[h1][0], "post"}}, val: 3000}
	txs = append(txs, post)
	tx, err := db.BeginSharded()
	if err != nil {
		return recovered, fmt.Errorf("post-recovery begin: %w", err)
	}
	for _, w := range post.writes {
		if err := tx.SetNodeProp(w.node, w.key, h2tap.Int(post.val)); err != nil {
			tx.Abort()
			return recovered, fmt.Errorf("post-recovery write: %w", err)
		}
	}
	if _, err := tx.AddRel(perShard[target][0], perShard[h1][0], "post", 1); err != nil {
		tx.Abort()
		return recovered, fmt.Errorf("post-recovery rel: %w", err)
	}
	if err := tx.Commit(); err != nil {
		return recovered, fmt.Errorf("post-recovery cross-shard commit: %w", err)
	}
	post.acked = true
	st, err := db.RunAnalyticsStitched(h2tap.WCC, perShard[target][0])
	if err != nil {
		return recovered, fmt.Errorf("post-recovery stitch: %w", err)
	}
	if len(st.Excluded) != 0 {
		return recovered, fmt.Errorf("post-recovery stitch still excludes shards %v", st.Excluded)
	}
	var wantEdges int64
	for i := 0; i < sfShards; i++ {
		wantEdges += c.Domain(i).Store().LiveRels()
	}
	if st.Edges != wantEdges {
		return recovered, fmt.Errorf("post-recovery composite has %d edges, stores hold %d", st.Edges, wantEdges)
	}

	// Convergence: the online-recovered state must fingerprint identically
	// to a cold restart of the same directory — RecoverShard reached exactly
	// the durable state (scoped faults never touch the coordinator, so no
	// in-doubt decision can make the two diverge).
	fpOnline := ClusterFingerprint(c)
	if err := db.Close(); err != nil {
		return recovered, fmt.Errorf("close after recovery: %w", err)
	}
	db2, err := h2tap.Open(h2tap.Options{Shards: sfShards, PersistDir: dir, PersistPoolSize: poolSize})
	if err != nil {
		return recovered, fmt.Errorf("cold restart: %w", err)
	}
	defer db2.Close()
	if fpRestart := ClusterFingerprint(db2.Cluster()); fpRestart != fpOnline {
		return recovered, fmt.Errorf("online recovery diverges from cold restart:\n--- online ---\n%s--- restart ---\n%s",
			fpOnline, fpRestart)
	}
	for i := 0; i < sfShards; i++ {
		if err := db2.Cluster().Domain(i).DS().Validate(); err != nil {
			return recovered, fmt.Errorf("shard %d durable delta image inconsistent after restart: %w", i, err)
		}
	}
	if err := sfVerifyLedger(db2, txs); err != nil {
		return recovered, fmt.Errorf("after restart: %w", err)
	}
	return recovered, nil
}

// ShardFaultEnumerate sweeps scoped faults over every in-scope persist point
// of the script (or an evenly spaced sample of maxPerMode points per mode)
// for one target shard, across the transient + both-tear-modes flavor set.
func ShardFaultEnumerate(baseDir string, target, maxPerMode int) (*Report, error) {
	points, err := ShardFaultGolden(filepath.Join(baseDir, "golden"), target)
	if err != nil {
		return nil, fmt.Errorf("crashtest: shard-fault golden run: %w", err)
	}
	rep := &Report{Points: points}
	for _, mode := range sfModes {
		for _, p := range samplePoints(points, maxPerMode) {
			dir := filepath.Join(baseDir, fmt.Sprintf("sf%d-p%04d-%s", target, p, mode))
			res := ShardFaultRunPoint(dir, target, p, mode)
			if res.Err != nil {
				res.Err = fmt.Errorf("shard %d, %s at in-scope op %d: %w", target, mode, p, res.Err)
				rep.Failures++
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

// sfModeNames lists the flavor set for test logs.
func sfModeNames() string {
	names := make([]string, len(sfModes))
	for i, m := range sfModes {
		names[i] = m.String()
	}
	return strings.Join(names, ",")
}
