package crashtest

import (
	"testing"

	"h2tap/internal/faultinject"
	"h2tap/internal/htap"
)

// TestGPUGoldenDeterministic checks the assumption the GPU-fault
// enumeration rests on: replaying the workload fault-free yields the same
// per-operation occurrence counts every time, so occurrence N of an
// operation lands on the same device call in every run.
func TestGPUGoldenDeterministic(t *testing.T) {
	for _, replica := range []htap.ReplicaKind{htap.StaticCSR, htap.DynamicHash} {
		c1, err := GPUGoldenRun(replica)
		if err != nil {
			t.Fatalf("golden run (%v): %v", replica, err)
		}
		c2, err := GPUGoldenRun(replica)
		if err != nil {
			t.Fatalf("golden run (%v): %v", replica, err)
		}
		for _, op := range faultinject.GPUOps {
			if c1[op] != c2[op] {
				t.Errorf("%v: op %q count differs across runs: %d vs %d", replica, op, c1[op], c2[op])
			}
		}
		// The workload must exercise launches and the replica-apply op of
		// its kind; a zero count means the enumeration would skip the op.
		if c1[faultinject.GPULaunch] == 0 {
			t.Errorf("%v: workload never launches a kernel", replica)
		}
		apply := faultinject.GPUReplaceStreamed
		if replica == htap.DynamicHash {
			apply = faultinject.GPUIngest
		}
		if c1[apply] == 0 {
			t.Errorf("%v: workload never exercises %q", replica, apply)
		}
		t.Logf("%v: %v", replica, c1)
	}
}

// TestGPUFaultEnumeration injects transient and persistent faults at every
// occurrence of every device operation (an evenly spaced sample in -short
// mode), on both replica kinds, and requires every propagation invariant —
// failure-atomic consumption, degraded availability, post-heal convergence,
// zero scrub divergence — to hold at every point.
func TestGPUFaultEnumeration(t *testing.T) {
	maxPerOp := 0
	if testing.Short() {
		maxPerOp = 4
	}
	rep, err := EnumerateGPUFaults(maxPerOp)
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("enumeration produced no fault runs")
	}
	injected := 0
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Errorf("%v fault at %s#%d (%v): %v", r.Kind, r.Op, r.N, r.Replica, r.Err)
		}
		if r.Injected > 0 {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("no run actually injected a fault")
	}
	t.Logf("%d fault runs (%d injected a fault), per-op counts %v, %d failures",
		len(rep.Results), injected, rep.PerOp, rep.Failures)
}
