package crashtest

import (
	"errors"
	"fmt"
	"path/filepath"

	"h2tap"
	"h2tap/internal/faultinject"
	"h2tap/internal/shard"
	"h2tap/internal/vfs"
)

// Coordinator fault enumeration: fault injection scoped to the 2PC
// coordinator's decision log (coord.wal), hitting every decision append of a
// cross-shard-heavy script in transient and crash flavors. The decision
// append is the 2PC commit point, so this sweeps the protocol's most
// delicate window. Invariants:
//
//   - Presumed abort, no phantom commit: a cross-shard transaction whose
//     commit errored is all-or-nothing after restart. With a transient fail
//     the decision append never applied, so the transaction must be fully
//     absent. A crash may leave the decision record durable before the error
//     surfaces (tear-all, or a tear that hits the sync after a complete
//     write — the classic lost ack), in which case the transaction may
//     surface whole: the coordinator log is the commit point and recovery on
//     every shard obeys it uniformly. It never surfaces on a strict subset
//     of its shards.
//   - Failure latches narrowly: after the coordinator log latches, further
//     cross-shard commits fail fast with ErrCoordinatorDown while
//     single-shard commits on every shard keep acking.
//   - Online repair: Heal + RecoverCoordinator restores cross-shard commits
//     without restarting the cluster; a restart also clears the latch (the
//     torn tail is trimmed) and holds its state across a second restart.

// coordPath is where the cluster keeps its decision log (see shard.Open).
func coordPath(dir string) string { return filepath.Join(dir, "coord.wal") }

// cfScript runs the cross-shard-heavy phase: six transactions, each writing
// one node on two different shards (every commit appends one coordinator
// decision).
func cfScript(r *sfRun, perShard [][]uint64) {
	for i := 0; i < 6; i++ {
		s1, s2 := i%sfShards, (i+1)%sfShards
		val := 1100 + int64(i)
		key := fmt.Sprintf("c%d", i)
		r.runTx(val, []sfWrite{{perShard[s1][i%4], key}, {perShard[s2][(i+1)%4], key}}, nil)
	}
}

// CoordFaultGolden counts the coordinator-scoped persist points of the
// script and verifies the no-fault run acks every transaction.
func CoordFaultGolden(dir string) (int64, error) {
	ffs := faultinject.New(vfs.OS())
	ffs.SetScope(coordPath(dir))
	db, perShard, err := sfSetup(dir, ffs)
	if err != nil {
		return 0, fmt.Errorf("golden setup: %w", err)
	}
	defer db.Close()
	ops0 := ffs.Ops()
	r := &sfRun{db: db}
	cfScript(r, perShard)
	points := ffs.Ops() - ops0
	for i, t := range r.txs {
		if !t.acked {
			return 0, fmt.Errorf("golden run: tx %d failed with no fault armed: %v", i, t.err)
		}
	}
	if err := db.Close(); err != nil {
		return 0, fmt.Errorf("golden close: %w", err)
	}
	return points, nil
}

// CoordFaultRunPoint injects one fault at the point-th coordinator-log
// operation and checks the invariants above.
func CoordFaultRunPoint(dir string, point int64, mode sfMode) Result {
	res := Result{Point: point, Tear: mode.Tear, Recovered: -1}
	ffs := faultinject.New(vfs.OS())
	ffs.SetScope(coordPath(dir))
	db, perShard, err := sfSetup(dir, ffs)
	if err != nil {
		res.Err = fmt.Errorf("setup: %w", err)
		return res
	}
	defer db.Close()
	if mode.Fail {
		ffs.FailIn(point)
	} else {
		ffs.CrashIn(point, mode.Tear)
	}

	r := &sfRun{db: db}
	cfScript(r, perShard)
	for _, t := range r.txs {
		if t.acked {
			res.Completed++
		}
	}

	res.Recovered, res.Err = cfCheck(db, ffs, dir, perShard, r.txs, mode)
	return res
}

// cfCheck probes the latched cluster, repairs it online, and verifies the
// ledger across restarts.
func cfCheck(db *h2tap.DB, ffs *faultinject.FS, dir string, perShard [][]uint64, txs []*sfTx, mode sfMode) (int, error) {
	c := db.Cluster()
	latched := c.CoordErr() != nil
	if !latched {
		return 0, errors.New("coordinator-scoped fault fired but the decision log never latched")
	}

	// Only cross-shard commits are refused; every shard still acks
	// single-shard traffic.
	for i := 0; i < sfShards; i++ {
		probe := &sfTx{writes: []sfWrite{{perShard[i][3], "probe"}}, val: 2100 + int64(i)}
		txs = append(txs, probe)
		tx, err := db.BeginSharded()
		if err != nil {
			return -1, fmt.Errorf("probe begin: %w", err)
		}
		if err := tx.SetNodeProp(perShard[i][3], "probe", h2tap.Int(probe.val)); err != nil {
			tx.Abort()
			return -1, fmt.Errorf("latched coordinator blocked a single-shard write on shard %d: %w", i, err)
		}
		if err := tx.Commit(); err != nil {
			return -1, fmt.Errorf("latched coordinator blocked a single-shard commit on shard %d: %w", i, err)
		}
		probe.acked = true
	}
	crossTx, err := db.BeginSharded()
	if err != nil {
		return -1, fmt.Errorf("cross probe begin: %w", err)
	}
	if err := crossTx.SetNodeProp(perShard[0][0], "cx", h2tap.Int(1)); err == nil {
		err = crossTx.SetNodeProp(perShard[1][0], "cx", h2tap.Int(1))
	}
	if err != nil {
		crossTx.Abort()
		return -1, fmt.Errorf("cross probe build: %w", err)
	}
	if err := crossTx.Commit(); err == nil {
		return -1, errors.New("cross-shard commit acked while the coordinator log was latched")
	} else if !errors.Is(err, shard.ErrCoordinatorDown) {
		return -1, fmt.Errorf("latched cross-shard commit failed without ErrCoordinatorDown: %v", err)
	}

	// Online repair: heal the device, reopen the decision log in place.
	ffs.Heal()
	if err := db.RecoverCoordinator(); err != nil {
		return -1, fmt.Errorf("RecoverCoordinator: %w", err)
	}
	if err := c.CoordErr(); err != nil {
		return -1, fmt.Errorf("coordinator still latched after recovery: %v", err)
	}
	// Reconciliation may have quarantined participants of a heuristic abort
	// whose decision was durably committed (lost ack); recover them so the
	// resurrected transaction is applied online, not just after restart.
	for i := 0; i < sfShards; i++ {
		if st, _ := c.Domain(i).Health(); st == shard.ShardDown {
			if err := db.RecoverShard(i); err != nil {
				return -1, fmt.Errorf("post-reconcile RecoverShard(%d): %w", i, err)
			}
		}
	}
	repaired := &sfTx{writes: []sfWrite{{perShard[0][1], "fix"}, {perShard[1][1], "fix"}}, val: 2200}
	txs = append(txs, repaired)
	tx, err := db.BeginSharded()
	if err != nil {
		return -1, fmt.Errorf("post-repair begin: %w", err)
	}
	for _, w := range repaired.writes {
		if err := tx.SetNodeProp(w.node, w.key, h2tap.Int(repaired.val)); err != nil {
			tx.Abort()
			return -1, fmt.Errorf("post-repair write: %w", err)
		}
	}
	if err := tx.Commit(); err != nil {
		return 1, fmt.Errorf("cross-shard commit still failing after RecoverCoordinator: %w", err)
	}
	repaired.acked = true

	// Restart and verify the ledger. An errored cross-shard transaction must
	// be all-or-nothing; with a transient fail its decision record was never
	// durable, so presumed abort means fully absent.
	if err := db.Close(); err != nil {
		return 1, fmt.Errorf("close: %w", err)
	}
	db2, err := h2tap.Open(h2tap.Options{Shards: sfShards, PersistDir: dir, PersistPoolSize: poolSize})
	if err != nil {
		return 1, fmt.Errorf("restart: %w", err)
	}
	defer db2.Close()
	if err := db2.Cluster().CoordErr(); err != nil {
		return 1, fmt.Errorf("coordinator latched after restart: %v", err)
	}
	if err := sfVerifyLedger(db2, txs); err != nil {
		return 1, fmt.Errorf("after restart: %w", err)
	}
	if mode.Fail {
		// Strict presumed abort: the transient fail never applied the
		// decision append, so no errored transaction may have surfaced.
		// (Crash flavors can leave the record durable before erroring — a
		// lost ack — so there the ledger's all-or-nothing check is the
		// invariant, not absence.)
		rtx, err := db2.BeginSharded()
		if err != nil {
			return 1, fmt.Errorf("presumed-abort read begin: %w", err)
		}
		for i, t := range txs {
			if t.acked {
				continue
			}
			for _, w := range t.writes {
				v, err := rtx.GetNodeProp(w.node, w.key)
				if err != nil {
					rtx.Abort()
					return 1, fmt.Errorf("presumed-abort read: %w", err)
				}
				if v.String() == h2tap.Int(t.val).String() {
					rtx.Abort()
					return 1, fmt.Errorf("tx %d (val %d): phantom commit — decision append errored without durability yet the transaction surfaced", i, t.val)
				}
			}
		}
		rtx.Abort() //nolint:errcheck
	}

	// Durability across a second restart.
	fp := ClusterFingerprint(db2.Cluster())
	if err := db2.Close(); err != nil {
		return 1, fmt.Errorf("second close: %w", err)
	}
	db3, err := h2tap.Open(h2tap.Options{Shards: sfShards, PersistDir: dir, PersistPoolSize: poolSize})
	if err != nil {
		return 1, fmt.Errorf("second restart: %w", err)
	}
	defer db3.Close()
	if ClusterFingerprint(db3.Cluster()) != fp {
		return 1, errors.New("state not stable across a second restart")
	}
	return 1, nil
}

// CoordFaultEnumerate sweeps coordinator-log faults over every decision
// append of the script, in every flavor.
func CoordFaultEnumerate(baseDir string, maxPerMode int) (*Report, error) {
	points, err := CoordFaultGolden(filepath.Join(baseDir, "golden"))
	if err != nil {
		return nil, fmt.Errorf("crashtest: coord-fault golden run: %w", err)
	}
	rep := &Report{Points: points}
	for _, mode := range sfModes {
		for _, p := range samplePoints(points, maxPerMode) {
			dir := filepath.Join(baseDir, fmt.Sprintf("cf-p%04d-%s", p, mode))
			res := CoordFaultRunPoint(dir, p, mode)
			if res.Err != nil {
				res.Err = fmt.Errorf("coordinator %s at in-scope op %d: %w", mode, p, res.Err)
				rep.Failures++
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}
