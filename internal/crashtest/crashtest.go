// Package crashtest is the crash-point enumeration harness: it drives a
// deterministic commit + propagate + checkpoint workload through the public
// h2tap facade on a fault-injecting filesystem, crashes the run at every
// persist point in turn, re-opens the database from the frozen files, and
// asserts the recovery invariants:
//
//   - Committed prefix: the recovered main graph equals the state after
//     exactly m committed transactions, where m is either the number of
//     commits that had completed when the crash hit, or that plus one (the
//     in-flight commit's log record may or may not have become durable —
//     never a torn half-state, never a lost completed commit).
//   - Consistent durable delta store: the persistent delta store re-opens at
//     a transaction boundary (deltastore.Validate passes — every durable
//     record fully published, payload ranges covered by durable arrays).
//   - Service resumes: a post-recovery commit succeeds, a propagation
//     yields a replica identical to a CSR built fresh from the recovered
//     main graph, and a checkpoint compacts the log — even when the crash
//     interrupted a checkpoint and left its temp file behind.
//   - Durability holds again: the post-recovery commit survives a second
//     restart (which also replays the post-recovery checkpoint's log).
//
// The crash model (see internal/faultinject) is write-through with ordered
// writes, so crashing after operation N with nothing torn is the same
// durable state as crashing before operation N+1. Enumerating TearAll and
// TearHalf at every point therefore covers every boundary state and every
// torn-write state the model can produce.
package crashtest

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"h2tap"
	"h2tap/internal/csr"
	"h2tap/internal/faultinject"
	"h2tap/internal/graph"
	"h2tap/internal/vfs"
)

// poolSize keeps the per-run persistent pools small: one chunk per delta
// vector (the records chunk dominates at ~768 KiB) plus CSR copies.
const poolSize = 4 << 20

// Result records the outcome of one injected crash.
type Result struct {
	// Point is the 1-based persist-operation number the crash hit.
	Point int64
	// Tear is how much of the crashing operation was applied.
	Tear faultinject.TearMode
	// Completed is how many workload transactions had committed when the
	// crash hit.
	Completed int
	// Recovered is how many committed transactions the re-opened database
	// contained (-1 if recovery itself failed).
	Recovered int
	// Err is the first violated invariant, nil when all held.
	Err error
}

// Report summarizes a full enumeration.
type Report struct {
	// Points is the total number of persist points in the workload.
	Points int64
	// Results holds one entry per injected crash.
	Results []Result
	// Failures counts results with a non-nil Err.
	Failures int
}

// runState accumulates the workload's progress: how many transactions have
// committed and the canonical fingerprint after each (fps[m] is the state
// after m commits; fps[0] is the empty database).
type runState struct {
	completed int
	fps       []string
}

// Fingerprint renders the committed graph state as a canonical string:
// every visible node and relationship at the newest committed timestamp, in
// ID order, with sorted properties. Two stores fingerprint equal iff they
// hold the same committed graph.
func Fingerprint(s *graph.Store) string {
	nodes, rels := s.ExportAt(s.Oracle().LastCommitted())
	var sb strings.Builder
	for i := range nodes {
		n := &nodes[i]
		fmt.Fprintf(&sb, "n%d|%s|%s\n", n.ID, n.Label, propsKey(n.Props))
	}
	for i := range rels {
		r := &rels[i]
		fmt.Fprintf(&sb, "r%d|%d>%d|%s|%g|%s\n", r.ID, r.Src, r.Dst, r.Label, r.Weight, propsKey(r.Props))
	}
	return sb.String()
}

func propsKey(props map[string]graph.Value) string {
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(props[k].String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// workload is the deterministic scenario every run replays: seven
// transactions exercising inserts, property updates and deletes, three
// update propagations, and one checkpoint, all against a persistent
// database on fsys. It bails out at the first error (the injected crash)
// and records progress in st as it goes, so a crashed run still reports how
// many commits completed.
func workload(dir string, fsys vfs.FS, st *runState) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("crashtest: workload panic: %v", r)
		}
	}()
	db, err := h2tap.Open(h2tap.Options{
		PersistDir:      dir,
		PersistPoolSize: poolSize,
		SyncWAL:         true,
		FS:              fsys,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	st.fps = append(st.fps, Fingerprint(db.Store()))

	commit := func(fn func(tx *h2tap.Tx) error) error {
		tx := db.Begin()
		if err := fn(tx); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		st.completed++
		st.fps = append(st.fps, Fingerprint(db.Store()))
		return nil
	}

	// IDs are allocated sequentially, so they are identical across runs:
	// nodes a=0 b=1 c=2 d=3, rels a->b=0 b->c=1 c->a=2 a->c=3 d->a=4 b->a=5.
	var a, b, c, d h2tap.NodeID
	if err := commit(func(tx *h2tap.Tx) error {
		var err error
		if a, err = tx.AddNode("Person", map[string]h2tap.Value{"name": h2tap.Str("alice")}); err != nil {
			return err
		}
		if b, err = tx.AddNode("Person", map[string]h2tap.Value{"name": h2tap.Str("bob")}); err != nil {
			return err
		}
		_, err = tx.AddRel(a, b, "knows", 1)
		return err
	}); err != nil {
		return err
	}
	if err := commit(func(tx *h2tap.Tx) error {
		var err error
		if c, err = tx.AddNode("Person", map[string]h2tap.Value{"age": h2tap.Int(30)}); err != nil {
			return err
		}
		if _, err = tx.AddRel(b, c, "knows", 2); err != nil {
			return err
		}
		_, err = tx.AddRel(c, a, "knows", 0.5)
		return err
	}); err != nil {
		return err
	}
	if _, err := db.Propagate(); err != nil {
		return err
	}
	if err := commit(func(tx *h2tap.Tx) error {
		if err := tx.SetNodeProp(a, "name", h2tap.Str("alice2")); err != nil {
			return err
		}
		_, err := tx.AddRel(a, c, "likes", 2.5)
		return err
	}); err != nil {
		return err
	}
	if err := commit(func(tx *h2tap.Tx) error {
		return tx.DeleteRel(0)
	}); err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if err := commit(func(tx *h2tap.Tx) error {
		var err error
		if d, err = tx.AddNode("City", map[string]h2tap.Value{"pop": h2tap.Int(1000)}); err != nil {
			return err
		}
		_, err = tx.AddRel(d, a, "in", 1)
		return err
	}); err != nil {
		return err
	}
	if _, err := db.Propagate(); err != nil {
		return err
	}
	if err := commit(func(tx *h2tap.Tx) error {
		if err := tx.SetNodeProp(c, "age", h2tap.Int(31)); err != nil {
			return err
		}
		return tx.DeleteRel(3)
	}); err != nil {
		return err
	}
	if err := commit(func(tx *h2tap.Tx) error {
		_, err := tx.AddRel(b, a, "knows", 1.5)
		return err
	}); err != nil {
		return err
	}
	if _, err := db.Propagate(); err != nil {
		return err
	}
	return db.Close()
}

// GoldenRun replays the workload with no faults on a counting filesystem,
// returning the total number of persist points and the fingerprint after
// each committed transaction. Running it twice on fresh directories must
// yield identical results — the determinism the enumeration relies on.
func GoldenRun(dir string) (points int64, fps []string, err error) {
	cfs := faultinject.New(vfs.OS())
	var st runState
	if err := workload(dir, cfs, &st); err != nil {
		return 0, nil, err
	}
	return cfs.Ops(), st.fps, nil
}

// RunPoint crashes the workload at the given persist operation, recovers
// from the frozen files, and checks every invariant.
func RunPoint(dir string, point int64, tear faultinject.TearMode, golden []string) Result {
	ffs := faultinject.New(vfs.OS())
	ffs.CrashAt(point, tear)
	var st runState
	// The workload is expected to fail (the crash surfaces as an error
	// somewhere); its own error is irrelevant — what matters is the durable
	// state it left behind and how far it got.
	_ = workload(dir, ffs, &st)

	res := Result{Point: point, Tear: tear, Completed: st.completed, Recovered: -1}
	res.Recovered, res.Err = recoverAndCheck(dir, golden, st.completed)
	return res
}

// recoverAndCheck re-opens the crashed database on the real filesystem and
// asserts the recovery invariants. It returns the number of committed
// transactions the recovered state corresponds to.
func recoverAndCheck(dir string, golden []string, completed int) (int, error) {
	db, err := h2tap.Open(h2tap.Options{PersistDir: dir, PersistPoolSize: poolSize})
	if err != nil {
		return -1, fmt.Errorf("recovery open: %w", err)
	}
	defer db.Close()

	// Committed prefix: every completed commit is durable (its log record
	// was written and synced before Commit returned), and at most the one
	// in-flight commit may additionally have reached the log.
	fp := Fingerprint(db.Store())
	m := -1
	for i, g := range golden {
		if g == fp {
			m = i
			break
		}
	}
	if m < 0 {
		return -1, errors.New("recovered state is not a committed prefix of the workload")
	}
	if m < completed || m > completed+1 {
		return m, fmt.Errorf("recovered %d committed transactions, want %d or %d", m, completed, completed+1)
	}

	// The durable delta image must sit at a transaction boundary.
	if err := db.DeltaStore().Validate(); err != nil {
		return m, fmt.Errorf("durable delta image inconsistent: %w", err)
	}

	// Service resumes: one more transaction, then a propagation whose
	// replica matches a CSR built fresh from the recovered main graph.
	tx := db.Begin()
	id, err := tx.AddNode("Probe", map[string]h2tap.Value{"m": h2tap.Int(int64(m))})
	if err != nil {
		tx.Abort()
		return m, fmt.Errorf("post-recovery insert: %w", err)
	}
	if m > 0 {
		// Node 0 exists from the first commit on and is never deleted.
		if _, err := tx.AddRel(id, 0, "probe", 1); err != nil {
			tx.Abort()
			return m, fmt.Errorf("post-recovery insert: %w", err)
		}
	}
	if err := tx.Commit(); err != nil {
		return m, fmt.Errorf("post-recovery commit: %w", err)
	}
	if _, err := db.Propagate(); err != nil {
		return m, fmt.Errorf("post-recovery propagation: %w", err)
	}
	want := csr.Build(db.Store(), db.SnapshotTS())
	if !csr.Equal(db.Engine().HostCSR(), want) {
		return m, errors.New("post-recovery replica diverges from main graph")
	}

	// Checkpointing must work on the recovered database too — in particular
	// when the crash interrupted a checkpoint mid-flight, the leftover temp
	// file must not poison the new snapshot (the second restart below would
	// then see a corrupt or stale log).
	if err := db.Checkpoint(); err != nil {
		return m, fmt.Errorf("post-recovery checkpoint: %w", err)
	}

	// Durability holds again: the probe commit survives a second restart.
	after := Fingerprint(db.Store())
	if err := db.Close(); err != nil {
		return m, fmt.Errorf("close after recovery: %w", err)
	}
	db2, err := h2tap.Open(h2tap.Options{PersistDir: dir, PersistPoolSize: poolSize})
	if err != nil {
		return m, fmt.Errorf("second recovery: %w", err)
	}
	defer db2.Close()
	if Fingerprint(db2.Store()) != after {
		return m, errors.New("post-recovery commit lost across a second restart")
	}
	return m, nil
}

// Enumerate runs the golden workload, then crashes it at every persist
// point (or an evenly spaced sample of at most maxPerMode points per tear
// mode when maxPerMode > 0), for each tear mode in tears (default: TearAll
// and TearHalf, which together cover every boundary and torn state of the
// write-through crash model). Each crash gets a fresh directory under
// baseDir.
func Enumerate(baseDir string, maxPerMode int, tears []faultinject.TearMode) (*Report, error) {
	points, golden, err := GoldenRun(filepath.Join(baseDir, "golden"))
	if err != nil {
		return nil, fmt.Errorf("crashtest: golden run: %w", err)
	}
	if len(tears) == 0 {
		tears = []faultinject.TearMode{faultinject.TearAll, faultinject.TearHalf}
	}
	rep := &Report{Points: points}
	for _, tear := range tears {
		for _, p := range samplePoints(points, maxPerMode) {
			dir := filepath.Join(baseDir, fmt.Sprintf("p%04d-%s", p, tear))
			res := RunPoint(dir, p, tear, golden)
			rep.Results = append(rep.Results, res)
			if res.Err != nil {
				rep.Failures++
			}
		}
	}
	return rep, nil
}

// samplePoints returns 1..n, or max evenly spaced points including both
// endpoints when 0 < max < n.
func samplePoints(n int64, max int) []int64 {
	if max <= 0 || int64(max) >= n {
		pts := make([]int64, 0, n)
		for p := int64(1); p <= n; p++ {
			pts = append(pts, p)
		}
		return pts
	}
	pts := make([]int64, 0, max)
	for i := 0; i < max; i++ {
		p := 1 + int64(i)*(n-1)/int64(max-1)
		if len(pts) == 0 || pts[len(pts)-1] != p {
			pts = append(pts, p)
		}
	}
	return pts
}
