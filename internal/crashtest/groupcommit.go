// Group-commit crash enumeration: concurrent committers share WAL batches
// (their records persist in one write+fsync) while a checkpointer races
// Rotate against them, and a crash is injected at every persist point — so
// every boundary and torn state of a multi-transaction batch write gets
// tear-tested, including the batch that a rotation moved onto a fresh log.
//
// The concurrent workload is nondeterministic (which commits share a batch
// depends on scheduling), so the invariants are set-based rather than
// fingerprint-based:
//
//   - Acked durability: every commit that reported success is recovered.
//   - No invention: every recovered commit was at least started (a torn
//     batch may persist a prefix of in-flight, unacked commits — rewind
//     guarantees no acked record is lost, not that unacked ones vanish).
//   - Per-committer prefix: each worker commits sequentially, so its
//     recovered commits are a contiguous prefix of its sequence — a later
//     commit recovered without an earlier one would mean the log reordered
//     or dropped an acked record.
//   - The durable delta image validates, service resumes (commit,
//     propagate, replica equals a fresh CSR, checkpoint), and the
//     post-recovery commit survives a second restart.

package crashtest

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"h2tap"
	"h2tap/internal/csr"
	"h2tap/internal/faultinject"
	"h2tap/internal/vfs"
)

// gcWorkers/gcPerWorker size the concurrent workload: enough committers
// that batches form under the slowed fsync, small enough that the
// enumeration over every persist point stays minutes, not hours.
const (
	gcWorkers   = 4
	gcPerWorker = 5
	// gcFsyncDelay slows fsync so committers pile into shared batches
	// (without it, a fast host drains every committer in single-record
	// batches and the multi-record crash states never occur).
	gcFsyncDelay = 200 * time.Microsecond
)

// gcMark identifies one worker commit: worker w's i-th transaction.
type gcMark struct{ w, i int }

// gcProgress is the crash-surviving record of the concurrent run: which
// commits were started (Commit called) and which were acked (Commit
// returned nil).
type gcProgress struct {
	mu      sync.Mutex
	started map[gcMark]bool
	acked   map[gcMark]bool
}

func (p *gcProgress) start(m gcMark) {
	p.mu.Lock()
	p.started[m] = true
	p.mu.Unlock()
}

func (p *gcProgress) ack(m gcMark) {
	p.mu.Lock()
	p.acked[m] = true
	p.mu.Unlock()
}

// groupCommitWorkload runs gcWorkers concurrent committers (each tagging
// its nodes with its worker/sequence identity) against a durable database
// on fsys, with a checkpointer rotating the log underneath them. It returns
// the progress record; the workload's own error is irrelevant to the
// enumeration (a crash surfaces somewhere), the durable state is what gets
// checked.
func groupCommitWorkload(dir string, fsys vfs.FS, p *gcProgress) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("crashtest: group-commit workload panic: %v", r)
		}
	}()
	db, err := h2tap.Open(h2tap.Options{
		PersistDir:      dir,
		PersistPoolSize: poolSize,
		SyncWAL:         true,
		FS:              fsys,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	var wg sync.WaitGroup
	for w := 0; w < gcWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < gcPerWorker; i++ {
				m := gcMark{w: w, i: i}
				tx := db.Begin()
				if _, err := tx.AddNode("W", map[string]h2tap.Value{
					"w": h2tap.Int(int64(w)), "i": h2tap.Int(int64(i)),
				}); err != nil {
					tx.Abort()
					return
				}
				p.start(m)
				if err := tx.Commit(); err != nil {
					return // crashed log: stop, later commits never started
				}
				p.ack(m)
			}
		}(w)
	}
	// The checkpointer races Rotate (commit barrier + snapshot + log swap)
	// against the batching committers. Errors end it — after a crash every
	// persist op fails.
	ckDone := make(chan error, 1)
	go func() {
		for k := 0; k < 3; k++ {
			if err := db.Checkpoint(); err != nil {
				ckDone <- err
				return
			}
		}
		ckDone <- nil
	}()
	wg.Wait()
	ckErr := <-ckDone
	if err := db.Close(); err != nil {
		return err
	}
	return ckErr
}

// recoverAndCheckGC re-opens the crashed database on the real filesystem
// and asserts the group-commit recovery invariants.
func recoverAndCheckGC(dir string, p *gcProgress) (int, error) {
	db, err := h2tap.Open(h2tap.Options{PersistDir: dir, PersistPoolSize: poolSize})
	if err != nil {
		return -1, fmt.Errorf("recovery open: %w", err)
	}
	defer db.Close()

	// Collect the recovered marks from the worker-tagged nodes.
	recovered := make(map[gcMark]bool)
	perWorker := make(map[int]int)
	nodes, _ := db.Store().ExportAt(db.Store().Oracle().LastCommitted())
	for i := range nodes {
		n := &nodes[i]
		if n.Label != "W" {
			continue
		}
		w, okW := n.Props["w"]
		seq, okI := n.Props["i"]
		if !okW || !okI {
			return -1, fmt.Errorf("recovered worker node %d lost its tags: %v", n.ID, n.Props)
		}
		m := gcMark{w: int(w.AsInt()), i: int(seq.AsInt())}
		recovered[m] = true
		perWorker[m.w]++
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	for m := range p.acked {
		if !recovered[m] {
			return len(recovered), fmt.Errorf("acked commit w%d/i%d lost in recovery", m.w, m.i)
		}
	}
	for m := range recovered {
		if !p.started[m] {
			return len(recovered), fmt.Errorf("recovered commit w%d/i%d was never started", m.w, m.i)
		}
	}
	// Contiguity: worker w recovered n commits => they are exactly 0..n-1.
	for w, n := range perWorker {
		for i := 0; i < n; i++ {
			if !recovered[gcMark{w: w, i: i}] {
				return len(recovered), fmt.Errorf("worker %d recovered %d commits but is missing i=%d (reordered or dropped record)", w, n, i)
			}
		}
	}

	if err := db.DeltaStore().Validate(); err != nil {
		return len(recovered), fmt.Errorf("durable delta image inconsistent: %w", err)
	}

	// Service resumes.
	tx := db.Begin()
	if _, err := tx.AddNode("Probe", nil); err != nil {
		tx.Abort()
		return len(recovered), fmt.Errorf("post-recovery insert: %w", err)
	}
	if err := tx.Commit(); err != nil {
		return len(recovered), fmt.Errorf("post-recovery commit: %w", err)
	}
	if _, err := db.Propagate(); err != nil {
		return len(recovered), fmt.Errorf("post-recovery propagation: %w", err)
	}
	want := csr.Build(db.Store(), db.SnapshotTS())
	if !csr.Equal(db.Engine().HostCSR(), want) {
		return len(recovered), errors.New("post-recovery replica diverges from main graph")
	}
	if err := db.Checkpoint(); err != nil {
		return len(recovered), fmt.Errorf("post-recovery checkpoint: %w", err)
	}

	after := Fingerprint(db.Store())
	if err := db.Close(); err != nil {
		return len(recovered), fmt.Errorf("close after recovery: %w", err)
	}
	db2, err := h2tap.Open(h2tap.Options{PersistDir: dir, PersistPoolSize: poolSize})
	if err != nil {
		return len(recovered), fmt.Errorf("second recovery: %w", err)
	}
	defer db2.Close()
	if Fingerprint(db2.Store()) != after {
		return len(recovered), errors.New("post-recovery commit lost across a second restart")
	}
	return len(recovered), nil
}

// RunGroupCommitPoint crashes the concurrent workload at the given persist
// operation and checks the group-commit invariants.
func RunGroupCommitPoint(dir string, point int64, tear faultinject.TearMode) Result {
	ffs := faultinject.New(vfs.SlowSync(vfs.OS(), gcFsyncDelay))
	ffs.CrashAt(point, tear)
	p := &gcProgress{started: make(map[gcMark]bool), acked: make(map[gcMark]bool)}
	_ = groupCommitWorkload(dir, ffs, p)

	res := Result{Point: point, Tear: tear, Completed: len(p.acked), Recovered: -1}
	res.Recovered, res.Err = recoverAndCheckGC(dir, p)
	return res
}

// EnumerateGroupCommit counts the concurrent workload's persist points with
// one clean run, then crashes a run at every point (or an evenly spaced
// sample of maxPerMode points per tear mode) for each tear mode. Scheduling
// makes the op count vary slightly run to run; points past a given run's
// actual count simply never fire and the invariants are checked against the
// completed run — still a valid (crash-free) case.
func EnumerateGroupCommit(baseDir string, maxPerMode int, tears []faultinject.TearMode) (*Report, error) {
	cfs := faultinject.New(vfs.SlowSync(vfs.OS(), gcFsyncDelay))
	p := &gcProgress{started: make(map[gcMark]bool), acked: make(map[gcMark]bool)}
	if err := groupCommitWorkload(filepath.Join(baseDir, "golden"), cfs, p); err != nil {
		return nil, fmt.Errorf("crashtest: group-commit clean run: %w", err)
	}
	if len(p.acked) != gcWorkers*gcPerWorker {
		return nil, fmt.Errorf("crashtest: clean run acked %d commits, want %d", len(p.acked), gcWorkers*gcPerWorker)
	}
	points := cfs.Ops()
	if len(tears) == 0 {
		tears = []faultinject.TearMode{faultinject.TearAll, faultinject.TearHalf}
	}
	rep := &Report{Points: points}
	for _, tear := range tears {
		for _, pt := range samplePoints(points, maxPerMode) {
			dir := filepath.Join(baseDir, fmt.Sprintf("gc%04d-%s", pt, tear))
			res := RunGroupCommitPoint(dir, pt, tear)
			rep.Results = append(rep.Results, res)
			if res.Err != nil {
				rep.Failures++
			}
		}
	}
	return rep, nil
}
