package crashtest

import (
	"testing"
	"time"
)

// TestShardFaultGoldenDeterministic checks that the shard-scoped fault
// script is deterministic: the number of in-scope persist operations on the
// target shard's directory must be identical across runs, so point N always
// names the same operation.
func TestShardFaultGoldenDeterministic(t *testing.T) {
	p1, err := ShardFaultGolden(t.TempDir()+"/a", 0)
	if err != nil {
		t.Fatalf("shard-fault golden run: %v", err)
	}
	p2, err := ShardFaultGolden(t.TempDir()+"/b", 0)
	if err != nil {
		t.Fatalf("shard-fault golden run: %v", err)
	}
	if p1 != p2 {
		t.Fatalf("in-scope persist points differ across runs: %d vs %d", p1, p2)
	}
	// Floor: one shard's WAL appends, pool writes and checkpoint over the
	// script must expose a healthy number of fault points.
	if p1 < 10 {
		t.Fatalf("shard-scoped script has %d persist points, want >= 10", p1)
	}
	t.Logf("shard-fault script: %d in-scope persist points on shard 0", p1)
}

// TestShardFaultEnumeration is the tentpole proof: for every shard, fail or
// crash (both tear flavors) its fault domain at every in-scope persist point
// (a sample in -short mode). At every point the other shards must keep
// acking, the stitched view must degrade to exclude exactly the victim,
// online recovery must converge to the same fingerprint as a cold restart,
// and no acked commit may be lost nor any unacked transaction half-exposed.
func TestShardFaultEnumeration(t *testing.T) {
	maxPerMode := 0
	if testing.Short() {
		maxPerMode = 6
	}
	for target := 0; target < sfShards; target++ {
		rep, err := ShardFaultEnumerate(t.TempDir(), target, maxPerMode)
		if err != nil {
			t.Fatalf("shard %d enumerate: %v", target, err)
		}
		for _, r := range rep.Results {
			if r.Err != nil {
				t.Errorf("shard %d: %v", target, r.Err)
			}
		}
		t.Logf("shard %d: enumerated %d faults (%s) over %d in-scope points, %d failures",
			target, len(rep.Results), sfModeNames(), rep.Points, rep.Failures)
	}
}

// TestCoordFaultEnumeration sweeps the 2PC coordinator's decision log —
// the commit point of every cross-shard transaction — with the same fault
// flavors. Single-shard traffic must keep acking while cross-shard commits
// fail fast with ErrCoordinatorDown, presumed abort must hold (no phantom
// commits), and RecoverCoordinator must restore cross-shard service online.
func TestCoordFaultEnumeration(t *testing.T) {
	maxPerMode := 0
	if testing.Short() {
		maxPerMode = 4
	}
	rep, err := CoordFaultEnumerate(t.TempDir(), maxPerMode)
	if err != nil {
		t.Fatalf("coord enumerate: %v", err)
	}
	if rep.Points < 6 {
		t.Fatalf("cross-shard script appended %d coordinator decisions, want >= 6", rep.Points)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Errorf("%v", r.Err)
		}
	}
	t.Logf("enumerated %d coordinator faults over %d decision-log ops, %d failures",
		len(rep.Results), rep.Points, rep.Failures)
}

// TestShardStormShort runs a brief randomized fault storm: concurrent
// single- and cross-shard writers plus a stitched-analytics reader race a
// chaos controller that repeatedly downs one fault domain and recovers it
// online. Acked writes must never be lost, cross-shard pairs must agree,
// and the cluster must end fully healthy and durable.
func TestShardStormShort(t *testing.T) {
	d := 2 * time.Second
	if testing.Short() {
		d = time.Second
	}
	rep, err := ShardStorm(StormConfig{Dir: t.TempDir(), Duration: d, Seed: 1})
	if err != nil {
		t.Fatalf("storm: %v (report: %+v)", err, rep)
	}
	if rep.ShardFaults+rep.CoordFaults == 0 {
		t.Fatalf("storm injected no faults: %+v", rep)
	}
	t.Logf("storm: %d acked (%d cross), %d sheds, %d raw errs, %d stitches (%d degraded), "+
		"%d shard faults, %d coord faults, %d recoveries (max %v)",
		rep.Acked, rep.CrossAcked, rep.Sheds, rep.OtherErrs, rep.Stitches, rep.Degraded,
		rep.ShardFaults, rep.CoordFaults, rep.Recoveries, rep.RecoveryMax.Round(time.Microsecond))
}
