package crashtest

import (
	"testing"

	"h2tap/internal/faultinject"
	"h2tap/internal/vfs"
)

// TestGoldenDeterministic checks the assumption the enumeration rests on:
// replaying the workload on a fresh directory yields the same persist-point
// count and the same per-commit fingerprints every time, so crash point N
// lands on the same operation in every run.
func TestGoldenDeterministic(t *testing.T) {
	p1, fps1, err := GoldenRun(t.TempDir() + "/a")
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	p2, fps2, err := GoldenRun(t.TempDir() + "/b")
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if p1 != p2 {
		t.Fatalf("persist points differ across runs: %d vs %d", p1, p2)
	}
	if len(fps1) != len(fps2) {
		t.Fatalf("fingerprint counts differ: %d vs %d", len(fps1), len(fps2))
	}
	for i := range fps1 {
		if fps1[i] != fps2[i] {
			t.Fatalf("fingerprint %d differs across runs:\n%s\nvs\n%s", i, fps1[i], fps2[i])
		}
	}
	// The acceptance floor: a commit+checkpoint+propagate workload must
	// expose at least 30 distinct persist points to crash at.
	if p1 < 30 {
		t.Fatalf("workload has %d persist points, want >= 30", p1)
	}
	t.Logf("workload: %d persist points, %d commits", p1, len(fps1)-1)
}

// TestCrashEnumeration injects a crash at every persist point (an evenly
// spaced sample in -short mode), in both tear-all and tear-half modes, and
// requires every recovery invariant to hold at every point.
func TestCrashEnumeration(t *testing.T) {
	maxPerMode := 0
	if testing.Short() {
		maxPerMode = 20
	}
	rep, err := Enumerate(t.TempDir(), maxPerMode, nil)
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if rep.Points < 30 {
		t.Fatalf("workload has %d persist points, want >= 30", rep.Points)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Errorf("crash at op %d/%d (%s), %d commits completed: %v",
				r.Point, rep.Points, r.Tear, r.Completed, r.Err)
		}
	}
	t.Logf("enumerated %d crashes over %d persist points, %d failures",
		len(rep.Results), rep.Points, rep.Failures)
}

// TestInjectedFailureIsSurfacedNotFatal exercises the FailAt (transient
// I/O error, no crash) path end to end: the failing persist operation must
// surface as an error from the workload — never a silent success, never a
// panic — and the directory must still recover afterwards.
func TestInjectedFailureIsSurfacedNotFatal(t *testing.T) {
	points, golden, err := GoldenRun(t.TempDir())
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	for _, p := range samplePoints(points, 12) {
		dir := t.TempDir()
		ffs := faultinject.New(vfs.OS())
		ffs.FailAt(p)
		var st runState
		werr := workload(dir, ffs, &st)
		if werr == nil {
			t.Errorf("fail at op %d: workload succeeded, want surfaced error", p)
			continue
		}
		if m, rerr := recoverAndCheck(dir, golden, st.completed); rerr != nil {
			t.Errorf("fail at op %d: recovery after injected error (got %d commits): %v", p, m, rerr)
		}
	}
}
