// GPU-fault enumeration: the device-side sibling of the filesystem crash
// harness. A deterministic commit + propagate + analytics workload runs
// against the simulated GPU with a fault plan armed at the Nth occurrence
// of one device operation (malloc, upload, replace, replace-streamed,
// ingest, kernel launch), transient or persistent, and the propagation
// invariants are asserted after every cycle:
//
//   - Failure-atomic consumption: a failed propagation cycle consumes
//     nothing — the delta store's pending-record count is unchanged, so the
//     consumed prefix can never run ahead of the replica.
//   - No committed update lost: after the device heals, one clean
//     propagation converges (engine fresh) and a replica scrub against a
//     main-graph snapshot at the replica's own watermark finds zero
//     divergence.
//   - Degraded availability: while propagation is failing, analytics still
//     answer from the last-good replica, marked Degraded with a non-zero
//     staleness bound (unless the analytics kernel launch is itself the
//     faulted operation, which surfaces the injected error).
package crashtest

import (
	"errors"
	"fmt"
	"time"

	"h2tap/internal/faultinject"
	"h2tap/internal/gpu"
	"h2tap/internal/graph"
	"h2tap/internal/htap"
	"h2tap/internal/mvto"
)

// GPUFaultResult records the outcome of one injected-GPU-fault run.
type GPUFaultResult struct {
	// Replica is the replica kind the run used.
	Replica htap.ReplicaKind
	// Op is the faulted device operation.
	Op string
	// N is the 1-based occurrence the fault hit.
	N int64
	// Kind is Transient or Persistent.
	Kind faultinject.GPUFaultKind
	// Injected is how many times the fault actually fired.
	Injected int64
	// Err is the first violated invariant, nil when all held.
	Err error
}

// GPUFaultReport summarizes a GPU-fault enumeration.
type GPUFaultReport struct {
	// PerOp is the fault-free occurrence count of each device operation.
	PerOp map[string]int64
	// Results holds one entry per injected fault.
	Results []GPUFaultResult
	// Failures counts results with a non-nil Err.
	Failures int
}

// gpuWorkers pins the propagation worker count so the device-operation
// sequence (streamed vs plain replace, shard counts) is identical on every
// machine — the determinism the enumeration relies on.
const gpuWorkers = 2

// gpuFaultWorkload drives commits and propagations through an engine whose
// device faults according to plan, asserting the propagation invariants at
// every step. A nil plan runs fault-free (the golden run).
func gpuFaultWorkload(replica htap.ReplicaKind, plan *faultinject.GPUPlan) error {
	s := graph.NewStore()
	dev := gpu.DefaultA100()
	if plan != nil {
		dev.SetFaultInjector(plan)
	}
	cfg := htap.Config{
		Replica: replica,
		Device:  dev,
		Workers: gpuWorkers,
		// Tight policy: the enumeration exercises both a transient fault
		// absorbed by the one retry and a persistent fault exhausting it.
		Retry: htap.RetryPolicy{MaxAttempts: 2, Backoff: 50 * time.Microsecond, MaxBackoff: 100 * time.Microsecond},
	}

	// Seed data before the engine exists, covered by the initial build.
	ids := make([]graph.NodeID, 0, 8)
	if err := commitTx(s, func(tx *graph.Tx) error {
		for i := 0; i < 6; i++ {
			id, err := tx.AddNode("Person", nil)
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		for i := 0; i < 5; i++ {
			if _, err := tx.AddRel(ids[i], ids[i+1], "knows", float64(i+1)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	e, err := htap.NewEngine(s, cfg)
	if err != nil {
		// The initial replica upload faulted: nothing started, nothing to
		// lose. Only the injected fault is an acceptable cause.
		if errors.Is(err, faultinject.ErrGPUInjected) {
			return nil
		}
		return fmt.Errorf("engine start: %w", err)
	}

	// Update rounds: each commits topology changes then propagates,
	// checking the failure-atomicity invariant on every failed cycle.
	rounds := []func(tx *graph.Tx) error{
		func(tx *graph.Tx) error { // edge inserts
			if _, err := tx.AddRel(ids[5], ids[0], "knows", 6); err != nil {
				return err
			}
			_, err := tx.AddRel(ids[0], ids[2], "likes", 0.5)
			return err
		},
		func(tx *graph.Tx) error { // edge delete + node insert with edges
			if err := tx.DeleteRel(0); err != nil {
				return err
			}
			id, err := tx.AddNode("City", nil)
			if err != nil {
				return err
			}
			ids = append(ids, id)
			_, err = tx.AddRel(id, ids[1], "in", 1)
			return err
		},
		func(tx *graph.Tx) error { // node delete (drops its out-edges)
			return tx.DeleteNode(ids[3])
		},
		func(tx *graph.Tx) error { // re-wire around the deleted node
			if _, err := tx.AddRel(ids[2], ids[4], "knows", 2); err != nil {
				return err
			}
			_, err := tx.AddRel(ids[6], ids[5], "in", 3)
			return err
		},
	}
	for i, round := range rounds {
		if err := commitTx(s, round); err != nil {
			return fmt.Errorf("round %d commit: %w", i, err)
		}
		if err := propagateChecked(e, fmt.Sprintf("round %d", i)); err != nil {
			return err
		}
	}

	// Heal the device and require convergence: one clean cycle must make
	// the engine fresh again and recover it to Healthy.
	if plan != nil {
		plan.Heal()
	}
	if _, err := e.Propagate(); err != nil {
		return fmt.Errorf("healed propagate failed: %w", err)
	}
	if !e.Fresh() {
		return errors.New("engine stale after healed propagation")
	}
	if h, herr := e.Health(); h != htap.Healthy {
		return fmt.Errorf("health %v (%v) after healed propagation", h, herr)
	}
	if st := e.Staleness(); !st.Fresh() {
		return fmt.Errorf("non-zero staleness %+v after healed propagation", st)
	}

	// The decisive check: the replica must be exactly the main graph at its
	// own watermark — every committed update present, none lost to a fault.
	sr, err := e.Scrub()
	if err != nil {
		return fmt.Errorf("scrub: %w", err)
	}
	if sr.Diverged {
		return errors.New("replica diverged from main graph after faults (committed update lost)")
	}

	// A healthy analytics run closes the workload (and puts kernel
	// launches in every golden run's operation counts).
	res, err := e.RunAnalytics(htap.BFS, 0)
	if err != nil {
		return fmt.Errorf("healed analytics: %w", err)
	}
	if res.Degraded {
		return errors.New("healed analytics still marked degraded")
	}
	return nil
}

// propagateChecked runs one cycle and asserts the per-cycle invariants.
func propagateChecked(e *htap.Engine, step string) error {
	pendingBefore := pendingNow(e)
	rep, err := e.Propagate()
	if err == nil {
		if h, herr := e.Health(); h != htap.Healthy {
			return fmt.Errorf("%s: successful cycle left health %v (%v)", step, h, herr)
		}
		return nil
	}
	if !errors.Is(err, faultinject.ErrGPUInjected) {
		return fmt.Errorf("%s: propagate failed outside the injected fault: %w", step, err)
	}
	if h, _ := e.Health(); h != htap.Degraded {
		return fmt.Errorf("%s: failed cycle left health %v", step, h)
	}
	// Failure atomicity: the failed cycle must have consumed nothing.
	if after := pendingNow(e); after < pendingBefore {
		return fmt.Errorf("%s: failed cycle consumed records (%d pending before, %d after)", step, pendingBefore, after)
	}
	if rep == nil {
		return fmt.Errorf("%s: failed cycle returned no report", step)
	}
	if rep.Staleness.Fresh() && pendingBefore > 0 {
		return fmt.Errorf("%s: degraded report claims fresh with %d pending records", step, pendingBefore)
	}
	// Degraded availability: analytics still answer from the last-good
	// replica — unless the analytics kernel launch itself faults, which
	// must surface as the injected error, never as a wrong answer.
	res, aerr := e.RunAnalytics(htap.BFS, 0)
	if aerr != nil {
		if !errors.Is(aerr, faultinject.ErrGPUInjected) {
			return fmt.Errorf("%s: degraded analytics failed outside the injected fault: %w", step, aerr)
		}
		return nil
	}
	if !res.Degraded {
		return fmt.Errorf("%s: analytics under failing propagation not marked degraded", step)
	}
	if res.Staleness.Fresh() && pendingBefore > 0 {
		return fmt.Errorf("%s: degraded result claims fresh with %d pending records", step, pendingBefore)
	}
	return nil
}

// commitTx runs one transaction, aborting on error.
func commitTx(s *graph.Store, fn func(tx *graph.Tx) error) error {
	tx := s.Begin()
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// pendingNow counts unconsumed delta records from finished transactions.
func pendingNow(e *htap.Engine) int {
	last := e.Store().Oracle().LastCommitted()
	return e.DeltaStore().PendingCount(mvto.TS(last) + 1)
}

// GPUGoldenRun replays the workload fault-free on a counting plan,
// returning the per-operation occurrence counts that bound the enumeration.
func GPUGoldenRun(replica htap.ReplicaKind) (map[string]int64, error) {
	plan := faultinject.NewGPUPlan()
	if err := gpuFaultWorkload(replica, plan); err != nil {
		return nil, err
	}
	return plan.Counts(), nil
}

// RunGPUFaultPoint injects one fault — the nth occurrence of op, transient
// or persistent — into the workload and checks every invariant.
func RunGPUFaultPoint(replica htap.ReplicaKind, op string, n int64, kind faultinject.GPUFaultKind) GPUFaultResult {
	plan := faultinject.NewGPUPlan()
	plan.Arm(op, n, kind)
	res := GPUFaultResult{Replica: replica, Op: op, N: n, Kind: kind}
	res.Err = gpuFaultWorkload(replica, plan)
	res.Injected = plan.Injected()
	return res
}

// EnumerateGPUFaults runs the workload once per (replica kind, operation,
// occurrence, fault kind) combination, sampling at most maxPerOp
// occurrences per operation (0 = all).
func EnumerateGPUFaults(maxPerOp int) (*GPUFaultReport, error) {
	rep := &GPUFaultReport{PerOp: map[string]int64{}}
	for _, replica := range []htap.ReplicaKind{htap.StaticCSR, htap.DynamicHash} {
		counts, err := GPUGoldenRun(replica)
		if err != nil {
			return nil, fmt.Errorf("golden run (%v): %w", replica, err)
		}
		for op, c := range counts {
			rep.PerOp[op] += c
		}
		for _, op := range faultinject.GPUOps {
			for _, n := range samplePoints(counts[op], maxPerOp) {
				for _, kind := range []faultinject.GPUFaultKind{faultinject.Transient, faultinject.Persistent} {
					r := RunGPUFaultPoint(replica, op, n, kind)
					rep.Results = append(rep.Results, r)
					if r.Err != nil {
						rep.Failures++
					}
				}
			}
		}
	}
	return rep, nil
}
