package storage

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendAndAt(t *testing.T) {
	v := NewChunkedVector[int](4) // 16-element chunks to force directory growth
	const n = 1000
	for i := 0; i < n; i++ {
		idx := v.Append(i * 3)
		if idx != uint64(i) {
			t.Fatalf("Append #%d returned index %d", i, idx)
		}
	}
	if v.Len() != n {
		t.Fatalf("Len = %d, want %d", v.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got := *v.At(uint64(i)); got != i*3 {
			t.Fatalf("At(%d) = %d, want %d", i, got, i*3)
		}
	}
}

func TestAppendSliceSpansChunks(t *testing.T) {
	v := NewChunkedVector[uint64](3) // 8-element chunks
	xs := make([]uint64, 100)
	for i := range xs {
		xs[i] = uint64(i) * 7
	}
	start := v.AppendSlice(xs[:37])
	if start != 0 {
		t.Fatalf("first AppendSlice start = %d, want 0", start)
	}
	start2 := v.AppendSlice(xs[37:])
	if start2 != 37 {
		t.Fatalf("second AppendSlice start = %d, want 37", start2)
	}
	got := v.CopyOut(0, len(xs))
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], xs[i])
		}
	}
}

func TestAppendSliceEmpty(t *testing.T) {
	v := NewChunkedVector[int](0)
	v.Append(1)
	if got := v.AppendSlice(nil); got != 1 {
		t.Fatalf("AppendSlice(nil) = %d, want current length 1", got)
	}
	if v.Len() != 1 {
		t.Fatalf("Len changed by empty append: %d", v.Len())
	}
}

func TestReserveThenCopyIn(t *testing.T) {
	v := NewChunkedVector[byte](2) // 4-byte chunks
	start := v.Reserve(10)
	v.CopyIn(start, []byte("0123456789"))
	if string(v.CopyOut(start, 10)) != "0123456789" {
		t.Fatalf("CopyOut mismatch: %q", v.CopyOut(start, 10))
	}
}

func TestForEachLimitAndStop(t *testing.T) {
	v := NewChunkedVector[int](2)
	for i := 0; i < 20; i++ {
		v.Append(i)
	}
	var seen []int
	v.ForEach(7, func(i uint64, x *int) bool {
		seen = append(seen, *x)
		return true
	})
	if len(seen) != 7 {
		t.Fatalf("ForEach visited %d elements, want 7", len(seen))
	}
	for i, x := range seen {
		if x != i {
			t.Fatalf("visit %d saw %d", i, x)
		}
	}
	count := 0
	v.ForEach(100, func(i uint64, x *int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
}

func TestForEachFrom(t *testing.T) {
	v := NewChunkedVector[int](2) // 4-element chunks
	for i := 0; i < 20; i++ {
		v.Append(i)
	}
	var seen []int
	v.ForEachFrom(6, 15, func(i uint64, x *int) bool {
		seen = append(seen, *x)
		return true
	})
	if len(seen) != 9 || seen[0] != 6 || seen[8] != 14 {
		t.Fatalf("ForEachFrom(6,15) = %v", seen)
	}
	// start >= limit: no visits.
	v.ForEachFrom(10, 10, func(uint64, *int) bool { t.Fatal("visited"); return true })
	v.ForEachFrom(15, 10, func(uint64, *int) bool { t.Fatal("visited"); return true })
	// start mid-chunk to end.
	count := 0
	v.ForEachFrom(17, 1<<30, func(uint64, *int) bool { count++; return true })
	if count != 3 {
		t.Fatalf("tail visits = %d", count)
	}
}

func TestForEachClampsToLen(t *testing.T) {
	v := NewChunkedVector[int](2)
	for i := 0; i < 9; i++ {
		v.Append(i)
	}
	count := 0
	v.ForEach(1<<30, func(i uint64, x *int) bool { count++; return true })
	if count != 9 {
		t.Fatalf("ForEach visited %d, want 9", count)
	}
}

func TestReset(t *testing.T) {
	v := NewChunkedVector[int](2)
	for i := 0; i < 50; i++ {
		v.Append(i)
	}
	v.Reset()
	if v.Len() != 0 {
		t.Fatalf("Len after Reset = %d", v.Len())
	}
	if v.Append(42) != 0 {
		t.Fatal("append after Reset did not restart at index 0")
	}
	if *v.At(0) != 42 {
		t.Fatal("element lost after Reset+Append")
	}
}

func TestMemBytesCountsWholeChunks(t *testing.T) {
	v := NewChunkedVector[uint64](4) // 16 elements of 8 bytes = 128 bytes/chunk
	if v.MemBytes(8) != 0 {
		t.Fatalf("empty vector MemBytes = %d", v.MemBytes(8))
	}
	v.Append(1)
	if got := v.MemBytes(8); got != 128 {
		t.Fatalf("one-chunk MemBytes = %d, want 128", got)
	}
	for i := 0; i < 16; i++ {
		v.Append(uint64(i))
	}
	if got := v.MemBytes(8); got != 256 {
		t.Fatalf("two-chunk MemBytes = %d, want 256", got)
	}
}

func TestConcurrentAppendersDisjointRanges(t *testing.T) {
	v := NewChunkedVector[uint64](6)
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				val := uint64(w)<<32 | uint64(i)
				idx := v.Append(val)
				if *v.At(idx) != val {
					t.Errorf("worker %d: readback at %d mismatched", w, idx)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if v.Len() != workers*perW {
		t.Fatalf("Len = %d, want %d", v.Len(), workers*perW)
	}
	// Every (worker, i) pair must appear exactly once.
	seen := make(map[uint64]bool, workers*perW)
	v.ForEach(v.Len(), func(i uint64, x *uint64) bool {
		if seen[*x] {
			t.Errorf("duplicate element %#x", *x)
			return false
		}
		seen[*x] = true
		return true
	})
	if len(seen) != workers*perW {
		t.Fatalf("distinct elements = %d, want %d", len(seen), workers*perW)
	}
}

func TestConcurrentSliceAppends(t *testing.T) {
	v := NewChunkedVector[int](4)
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				n := 1 + r.Intn(40)
				xs := make([]int, n)
				for j := range xs {
					xs[j] = w*1_000_000 + i*100 + j
				}
				start := v.AppendSlice(xs)
				got := v.CopyOut(start, n)
				for j := range xs {
					if got[j] != xs[j] {
						t.Errorf("worker %d iter %d: slice readback mismatch", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// Property: for any sequence of appended values, CopyOut(0, n) returns them
// in order.
func TestQuickRoundTrip(t *testing.T) {
	f := func(xs []int64) bool {
		v := NewChunkedVector[int64](3)
		for _, x := range xs {
			v.Append(x)
		}
		got := v.CopyOut(0, len(xs))
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AppendSlice is equivalent to repeated Append.
func TestQuickAppendSliceEquivalence(t *testing.T) {
	f := func(a, b, c []uint64) bool {
		v1 := NewChunkedVector[uint64](2)
		v2 := NewChunkedVector[uint64](5)
		for _, s := range [][]uint64{a, b, c} {
			v1.AppendSlice(s)
			for _, x := range s {
				v2.Append(x)
			}
		}
		if v1.Len() != v2.Len() {
			return false
		}
		n := int(v1.Len())
		x1, x2 := v1.CopyOut(0, n), v2.CopyOut(0, n)
		for i := range x1 {
			if x1[i] != x2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtPanicsBeyondReserved(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At beyond reservation did not panic")
		}
	}()
	v := NewChunkedVector[int](2)
	v.Append(1)
	_ = v.At(100)
}

func BenchmarkAppend(b *testing.B) {
	v := NewChunkedVector[uint64](0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Append(uint64(i))
	}
}

func BenchmarkAppendSlice64(b *testing.B) {
	v := NewChunkedVector[uint64](0)
	xs := make([]uint64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.AppendSlice(xs)
	}
}

func BenchmarkParallelAppend(b *testing.B) {
	v := NewChunkedVector[uint64](0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.Append(1)
		}
	})
}
