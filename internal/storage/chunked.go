// Package storage provides the low-level append-only storage primitives
// shared by the main graph tables and the delta store: chunked vectors that
// grow without relocating existing elements, supporting concurrent
// reservation-based appends and lock-free reads.
//
// The delta store's append-only design (paper §5.1) depends on two
// properties these vectors guarantee: (1) an element, once written, never
// moves, so offsets recorded in delta records stay valid forever, and
// (2) appends from concurrent transactions reserve disjoint index ranges
// with a single atomic add, so there is no contention between committing
// transactions.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultChunkShift sizes chunks at 1<<16 elements, large enough to keep the
// chunk directory tiny for multi-million-element stores and small enough
// that sparse stores do not over-allocate.
const DefaultChunkShift = 16

// ChunkedVector is an append-only vector of T stored as fixed-size chunks.
// Elements never move once written. Appends are safe from multiple
// goroutines; reads are safe concurrently with appends provided the reader
// only accesses indexes below a length it observed via Len (the caller is
// responsible for ordering, which the delta store does with per-record
// ready flags).
type ChunkedVector[T any] struct {
	shift uint
	mask  uint64

	// next is the reservation cursor: indexes below next are reserved,
	// though not necessarily written yet.
	next atomic.Uint64

	// dir is the chunk directory. It is replaced wholesale (copy-on-grow)
	// under growMu, and loaded atomically by readers.
	dir    atomic.Pointer[[]*[]T]
	growMu sync.Mutex
}

// NewChunkedVector returns a vector with chunks of 1<<shift elements.
// A shift of 0 selects DefaultChunkShift.
func NewChunkedVector[T any](shift uint) *ChunkedVector[T] {
	if shift == 0 {
		shift = DefaultChunkShift
	}
	v := &ChunkedVector[T]{shift: shift, mask: (1 << shift) - 1}
	empty := make([]*[]T, 0)
	v.dir.Store(&empty)
	return v
}

// ChunkSize reports the number of elements per chunk.
func (v *ChunkedVector[T]) ChunkSize() int { return 1 << v.shift }

// Len reports the number of reserved elements. Elements below Len may still
// be in the process of being written by a concurrent appender; callers that
// need happens-before ordering must layer their own publication protocol
// (e.g. the delta store's ready flag) on top.
func (v *ChunkedVector[T]) Len() uint64 { return v.next.Load() }

// Reserve atomically reserves n consecutive indexes and returns the first.
// The reserved slots are backed by allocated chunks on return.
func (v *ChunkedVector[T]) Reserve(n int) uint64 {
	if n < 0 {
		panic(fmt.Sprintf("storage: Reserve(%d): negative count", n))
	}
	start := v.next.Add(uint64(n)) - uint64(n)
	v.ensure(start + uint64(n))
	return start
}

// ensure makes sure chunks covering indexes [0, end) exist.
func (v *ChunkedVector[T]) ensure(end uint64) {
	if end == 0 {
		return
	}
	needChunks := int((end-1)>>v.shift) + 1
	if dir := v.dir.Load(); len(*dir) >= needChunks {
		return
	}
	v.growMu.Lock()
	defer v.growMu.Unlock()
	dir := v.dir.Load()
	if len(*dir) >= needChunks {
		return
	}
	grown := make([]*[]T, needChunks)
	copy(grown, *dir)
	for i := len(*dir); i < needChunks; i++ {
		chunk := make([]T, 1<<v.shift)
		grown[i] = &chunk
	}
	v.dir.Store(&grown)
}

// EnsureLen reserves indexes up to at least n (for callers that place
// elements at recorded positions, e.g. WAL replay).
func (v *ChunkedVector[T]) EnsureLen(n uint64) {
	v.ensure(n)
	for {
		cur := v.next.Load()
		if cur >= n || v.next.CompareAndSwap(cur, n) {
			return
		}
	}
}

// At returns a pointer to element i. It panics if i has not been reserved.
func (v *ChunkedVector[T]) At(i uint64) *T {
	dir := v.dir.Load()
	ci := i >> v.shift
	if ci >= uint64(len(*dir)) {
		panic(fmt.Sprintf("storage: At(%d): index beyond reserved length %d", i, v.next.Load()))
	}
	return &(*(*dir)[ci])[i&v.mask]
}

// Append writes x to a freshly reserved slot and returns its index.
func (v *ChunkedVector[T]) Append(x T) uint64 {
	i := v.Reserve(1)
	*v.At(i) = x
	return i
}

// AppendSlice writes all of xs contiguously and returns the starting index.
// The elements occupy consecutive logical indexes even when the range spans
// chunk boundaries.
func (v *ChunkedVector[T]) AppendSlice(xs []T) uint64 {
	if len(xs) == 0 {
		return v.next.Load()
	}
	start := v.Reserve(len(xs))
	v.CopyIn(start, xs)
	return start
}

// CopyIn writes xs to reserved indexes starting at start.
func (v *ChunkedVector[T]) CopyIn(start uint64, xs []T) {
	dir := v.dir.Load()
	i := start
	for len(xs) > 0 {
		chunk := *(*dir)[i>>v.shift]
		off := i & v.mask
		n := copy(chunk[off:], xs)
		xs = xs[n:]
		i += uint64(n)
	}
}

// CopyOut reads n elements starting at start into a new slice.
func (v *ChunkedVector[T]) CopyOut(start uint64, n int) []T {
	out := make([]T, n)
	v.ReadInto(start, out)
	return out
}

// ReadInto fills dst with elements starting at start.
func (v *ChunkedVector[T]) ReadInto(start uint64, dst []T) {
	dir := v.dir.Load()
	i := start
	for len(dst) > 0 {
		ci := i >> v.shift
		if ci >= uint64(len(*dir)) {
			panic(fmt.Sprintf("storage: ReadInto(%d): index beyond reserved length %d", i, v.next.Load()))
		}
		chunk := *(*dir)[ci]
		off := i & v.mask
		n := copy(dst, chunk[off:])
		dst = dst[n:]
		i += uint64(n)
	}
}

// ForEach calls fn for each element index in [0, limit). A limit beyond Len
// is clamped. fn returning false stops the walk.
func (v *ChunkedVector[T]) ForEach(limit uint64, fn func(i uint64, x *T) bool) {
	v.ForEachFrom(0, limit, fn)
}

// ForEachFrom calls fn for each element index in [start, limit), clamped to
// Len. fn returning false stops the walk.
func (v *ChunkedVector[T]) ForEachFrom(start, limit uint64, fn func(i uint64, x *T) bool) {
	if l := v.Len(); limit > l {
		limit = l
	}
	dir := v.dir.Load()
	for i := start; i < limit; {
		chunk := *(*dir)[i>>v.shift]
		off := i & v.mask
		end := uint64(len(chunk))
		if rem := limit - i + off; rem < end {
			end = rem
		}
		for j := off; j < end; j++ {
			if !fn(i, &chunk[j]) {
				return
			}
			i++
		}
	}
}

// Reset drops all elements and chunks. Not safe concurrently with any other
// operation; callers quiesce writers first (the delta store does this when
// the cost model clears it, paper §6.4).
func (v *ChunkedVector[T]) Reset() {
	v.growMu.Lock()
	defer v.growMu.Unlock()
	empty := make([]*[]T, 0)
	v.dir.Store(&empty)
	v.next.Store(0)
}

// MemBytes estimates the heap footprint of allocated chunks, given the size
// of one element in bytes. It counts whole chunks, matching how the store
// actually reserves memory.
func (v *ChunkedVector[T]) MemBytes(elemSize uintptr) uint64 {
	dir := v.dir.Load()
	return uint64(len(*dir)) * uint64(uintptr(1<<v.shift)*elemSize)
}
