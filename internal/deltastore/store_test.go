package deltastore

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
)

func txd(ts mvto.TS, nodes ...delta.NodeDelta) *delta.TxDelta {
	return &delta.TxDelta{TS: ts, Nodes: nodes}
}

func TestCaptureAndScanBasic(t *testing.T) {
	s := NewVolatile()
	s.Capture(txd(1,
		delta.NodeDelta{Node: 5, Inserted: true, Ins: []delta.Edge{{Dst: 1, W: 2.0}}},
		delta.NodeDelta{Node: 3, Ins: []delta.Edge{{Dst: 5, W: 5.0}}},
	))
	s.Capture(txd(2,
		delta.NodeDelta{Node: 1, Del: []uint64{30, 51}},
		delta.NodeDelta{Node: 4, Deleted: true},
		delta.NodeDelta{Node: 3, Del: []uint64{4}},
	))
	if s.Records() != 5 {
		t.Fatalf("Records = %d, want 5", s.Records())
	}
	// Array footprint: inserts 2×8 + weights 2×8 + deletes 3×8.
	if got := s.ArrayBytes(); got != 2*8+2*8+3*8 {
		t.Fatalf("ArrayBytes = %d", got)
	}

	b := s.Scan(10)
	if b.Records != 5 {
		t.Fatalf("scan consumed %d records", b.Records)
	}
	if len(b.Deltas) != 4 {
		t.Fatalf("combined deltas = %d, want 4 (nodes 1,3,4,5)", len(b.Deltas))
	}
	// Sorted by node.
	for i, want := range []uint64{1, 3, 4, 5} {
		if b.Deltas[i].Node != want {
			t.Fatalf("delta %d node = %d, want %d", i, b.Deltas[i].Node, want)
		}
	}
	// Node 3 combined across two transactions: one insert, one delete.
	n3 := b.Deltas[1]
	if len(n3.Ins) != 1 || n3.Ins[0].Dst != 5 || len(n3.Del) != 1 || n3.Del[0] != 4 {
		t.Fatalf("node 3 combined = %+v", n3)
	}
	if !b.Deltas[2].Deleted {
		t.Fatal("node 4 should be deleted")
	}
	if !b.Deltas[3].Inserted {
		t.Fatal("node 5 should be inserted")
	}
}

func TestScanConsumesOnce(t *testing.T) {
	s := NewVolatile()
	s.Capture(txd(1, delta.NodeDelta{Node: 1, Ins: []delta.Edge{{Dst: 2, W: 1}}}))
	b1 := s.Scan(5)
	if b1.Records != 1 {
		t.Fatalf("first scan consumed %d", b1.Records)
	}
	b2 := s.Scan(6)
	if b2.Records != 0 || !b2.Empty() {
		t.Fatalf("second scan re-delivered: %+v", b2)
	}
}

func TestScanVisibilityWindow(t *testing.T) {
	s := NewVolatile()
	s.Capture(txd(3, delta.NodeDelta{Node: 1, Ins: []delta.Edge{{Dst: 2, W: 1}}}))
	s.Capture(txd(7, delta.NodeDelta{Node: 1, Ins: []delta.Edge{{Dst: 3, W: 1}}}))

	// Tp with ts 5: only the ts-3 delta is visible (§5.3: appended by a
	// transaction older than Tp). Equal timestamps are NOT visible.
	b := s.Scan(5)
	if b.Records != 1 || len(b.Deltas) != 1 || b.Deltas[0].Ins[0].Dst != 2 {
		t.Fatalf("scan(5) = %+v", b)
	}
	// The skipped delta shows up in the next cycle.
	b2 := s.Scan(10)
	if b2.Records != 1 || b2.Deltas[0].Ins[0].Dst != 3 {
		t.Fatalf("scan(10) = %+v", b2)
	}
	// ts == tp is not visible either.
	s.Capture(txd(20, delta.NodeDelta{Node: 9, Inserted: true}))
	if b := s.Scan(20); b.Records != 0 {
		t.Fatalf("delta with ts==tp was visible: %+v", b)
	}
}

func TestScanCombinesInTimestampOrder(t *testing.T) {
	s := NewVolatile()
	// Appended out of order (commit order differs from timestamp order):
	// newer delete first, older insert second.
	s.Capture(txd(5, delta.NodeDelta{Node: 1, Del: []uint64{2}}))
	s.Capture(txd(4, delta.NodeDelta{Node: 1, Ins: []delta.Edge{{Dst: 2, W: 1}}}))
	b := s.Scan(10)
	// ts order: insert(4) then delete(5) → final state is a delete.
	if len(b.Deltas) != 1 || len(b.Deltas[0].Del) != 1 || b.Deltas[0].Del[0] != 2 {
		t.Fatalf("ts-ordered combine failed: %+v", b.Deltas)
	}
	// The reverse ts order folds to the insert.
	s.Capture(txd(7, delta.NodeDelta{Node: 3, Ins: []delta.Edge{{Dst: 4, W: 9}}}))
	s.Capture(txd(6, delta.NodeDelta{Node: 3, Del: []uint64{4}}))
	b2 := s.Scan(10)
	if len(b2.Deltas) != 1 || len(b2.Deltas[0].Ins) != 1 || b2.Deltas[0].Ins[0].W != 9 {
		t.Fatalf("reverse ts-ordered combine failed: %+v", b2.Deltas)
	}
}

func TestPendingAt(t *testing.T) {
	s := NewVolatile()
	if s.PendingAt(100) {
		t.Fatal("empty store pending")
	}
	s.Capture(txd(5, delta.NodeDelta{Node: 1, Inserted: true}))
	if s.PendingAt(5) {
		t.Fatal("delta at ts 5 should not be pending for tp=5")
	}
	if !s.PendingAt(6) {
		t.Fatal("delta at ts 5 should be pending for tp=6")
	}
	s.Scan(6)
	if s.PendingAt(100) {
		t.Fatal("consumed delta still pending")
	}
}

func TestThresholdFlipsDeltaMode(t *testing.T) {
	s := NewVolatile()
	s.SetThreshold(3)
	s.Capture(txd(1, delta.NodeDelta{Node: 1, Inserted: true}))
	s.Capture(txd(2, delta.NodeDelta{Node: 2, Inserted: true}))
	if !s.DeltaMode() {
		t.Fatal("delta mode off below threshold")
	}
	// This txn would push records to 4 > 3: flips mode off, clears store.
	s.Capture(txd(3, delta.NodeDelta{Node: 3, Inserted: true}, delta.NodeDelta{Node: 4, Inserted: true}))
	if s.DeltaMode() {
		t.Fatal("delta mode still on past threshold")
	}
	if s.Records() != 0 {
		t.Fatalf("store not cleared on mode flip: %d records", s.Records())
	}
	if s.SkippedTxns() != 1 {
		t.Fatalf("SkippedTxns = %d", s.SkippedTxns())
	}
	// Subsequent transactions skip without clearing again.
	s.Capture(txd(4, delta.NodeDelta{Node: 5, Inserted: true}))
	if s.Records() != 0 || s.SkippedTxns() != 2 {
		t.Fatalf("post-flip capture appended: %d records, %d skipped", s.Records(), s.SkippedTxns())
	}
	// §6.4: after the CSR rebuild, delta mode comes back on.
	s.EnableDeltaMode()
	if !s.DeltaMode() {
		t.Fatal("EnableDeltaMode did not re-enable")
	}
	s.Capture(txd(5, delta.NodeDelta{Node: 6, Inserted: true}))
	if s.Records() != 1 {
		t.Fatalf("capture after re-enable: %d records", s.Records())
	}
}

func TestExactThresholdStillAppends(t *testing.T) {
	s := NewVolatile()
	s.SetThreshold(2)
	s.Capture(txd(1, delta.NodeDelta{Node: 1, Inserted: true}, delta.NodeDelta{Node: 2, Inserted: true}))
	if !s.DeltaMode() || s.Records() != 2 {
		t.Fatalf("append exactly at threshold rejected: mode=%v records=%d", s.DeltaMode(), s.Records())
	}
}

func TestEmptyDeltaIgnored(t *testing.T) {
	s := NewVolatile()
	s.Capture(&delta.TxDelta{TS: 1})
	if s.Records() != 0 {
		t.Fatal("empty tx delta appended records")
	}
}

func TestConcurrentCaptureAndScan(t *testing.T) {
	s := NewVolatile()
	const writers = 6
	const perW = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var scans sync.WaitGroup
	scans.Add(1)
	totalScanned := 0
	go func() {
		defer scans.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			b := s.Scan(mvto.TS(1 << 40)) // sees everything published
			totalScanned += b.Records
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				ts := mvto.TS(w*perW + i + 1)
				s.Capture(txd(ts, delta.NodeDelta{
					Node: uint64(i % 50),
					Ins:  []delta.Edge{{Dst: uint64(w), W: 1}},
				}))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scans.Wait()
	// One final scan sweeps stragglers.
	b := s.Scan(mvto.TS(1 << 40))
	totalScanned += b.Records
	if totalScanned != writers*perW {
		t.Fatalf("scanned %d records total, want %d", totalScanned, writers*perW)
	}
}

func TestPersistentCaptureScanRecover(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "delta.pool")
	pool, err := pmem.Create(path, 64<<20, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewPersistent(pool)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Persistent() {
		t.Fatal("store does not report persistent")
	}
	s.Capture(txd(1,
		delta.NodeDelta{Node: 5, Inserted: true, Ins: []delta.Edge{{Dst: 1, W: 2.0}}},
		delta.NodeDelta{Node: 3, Ins: []delta.Edge{{Dst: 5, W: 5.0}}},
	))
	s.Capture(txd(2, delta.NodeDelta{Node: 1, Del: []uint64{30, 51}}))
	if pool.SimTime() <= 0 {
		t.Fatal("persistent capture charged no simulated media time")
	}

	// Crash before any scan; recover and verify the scan output matches a
	// volatile store fed the same deltas.
	pool.Close()
	pool2, err := pmem.Open(path, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	s2, err := OpenPersistent(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Records() != 3 {
		t.Fatalf("recovered records = %d, want 3", s2.Records())
	}

	ref := NewVolatile()
	ref.Capture(txd(1,
		delta.NodeDelta{Node: 5, Inserted: true, Ins: []delta.Edge{{Dst: 1, W: 2.0}}},
		delta.NodeDelta{Node: 3, Ins: []delta.Edge{{Dst: 5, W: 5.0}}},
	))
	ref.Capture(txd(2, delta.NodeDelta{Node: 1, Del: []uint64{30, 51}}))

	got, want := s2.Scan(10), ref.Scan(10)
	if !reflect.DeepEqual(got.Deltas, want.Deltas) {
		t.Fatalf("recovered scan = %+v, want %+v", got.Deltas, want.Deltas)
	}
}

func TestPersistentInvalidationSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "delta.pool")
	pool, err := pmem.Create(path, 64<<20, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewPersistent(pool)
	if err != nil {
		t.Fatal(err)
	}
	s.Capture(txd(1, delta.NodeDelta{Node: 1, Ins: []delta.Edge{{Dst: 2, W: 1}}}))
	s.Capture(txd(5, delta.NodeDelta{Node: 2, Ins: []delta.Edge{{Dst: 3, W: 1}}}))
	// Consume only the first (tp=2).
	if b := s.Scan(2); b.Records != 1 {
		t.Fatalf("scan(2) consumed %d", b.Records)
	}
	pool.Close() // crash

	pool2, err := pmem.Open(path, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	s2, err := OpenPersistent(pool2)
	if err != nil {
		t.Fatal(err)
	}
	b := s2.Scan(100)
	if b.Records != 1 || b.Deltas[0].Node != 2 {
		t.Fatalf("post-recovery scan = %+v; consumed delta resurrected?", b)
	}
}

func TestPersistentModeFlagSurvives(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "delta.pool")
	pool, err := pmem.Create(path, 64<<20, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewPersistent(pool)
	if err != nil {
		t.Fatal(err)
	}
	s.SetThreshold(1)
	s.Capture(txd(1, delta.NodeDelta{Node: 1, Inserted: true}, delta.NodeDelta{Node: 2, Inserted: true}))
	if s.DeltaMode() {
		t.Fatal("mode should have flipped off")
	}
	pool.Close()

	pool2, err := pmem.Open(path, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	s2, err := OpenPersistent(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.DeltaMode() {
		t.Fatal("delta-mode flag did not survive recovery")
	}
	if s2.Threshold() != 1 {
		t.Fatalf("threshold = %d after recovery", s2.Threshold())
	}
}

// randomTxDeltas generates a reproducible stream of transaction deltas.
func randomTxDeltas(seed int64, n int) []*delta.TxDelta {
	r := rand.New(rand.NewSource(seed))
	out := make([]*delta.TxDelta, n)
	for i := range out {
		b := delta.NewBuilder()
		for k := 0; k < 1+r.Intn(4); k++ {
			node := uint64(r.Intn(40))
			switch r.Intn(4) {
			case 0:
				b.InsertEdge(node, uint64(r.Intn(40)), float64(r.Intn(10)))
			case 1:
				b.DeleteEdge(node, uint64(r.Intn(40)))
			case 2:
				b.InsertNode(node)
			case 3:
				b.DeleteNode(node)
			}
		}
		out[i] = b.Build(mvto.TS(i + 1))
	}
	return out
}

// The naive ablation store must be semantically equivalent to DELTA_FE.
func TestNaiveEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		fe := NewVolatile()
		nv := NewNaive()
		for _, d := range randomTxDeltas(seed, 200) {
			fe.Capture(d)
			nv.Capture(d)
		}
		// Scan at a midpoint and at the end; outputs must match exactly.
		for _, tp := range []mvto.TS{100, 1000} {
			a, b := fe.Scan(tp), nv.Scan(tp)
			if a.Records != b.Records {
				t.Fatalf("seed %d tp %d: consumed %d vs %d", seed, tp, a.Records, b.Records)
			}
			if !reflect.DeepEqual(a.Deltas, b.Deltas) {
				t.Fatalf("seed %d tp %d: batches differ\nfe: %+v\nnaive: %+v",
					seed, tp, a.Deltas, b.Deltas)
			}
		}
		if fe.Records() != nv.Records() {
			t.Fatalf("record counts differ: %d vs %d", fe.Records(), nv.Records())
		}
	}
}

// Persistent and volatile stores must produce identical scans for the same
// capture stream (Fig 11's premise).
func TestPersistentEquivalence(t *testing.T) {
	pool, err := pmem.Create(filepath.Join(t.TempDir(), "p.pool"), 128<<20, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ps, err := NewPersistent(pool)
	if err != nil {
		t.Fatal(err)
	}
	vs := NewVolatile()
	for _, d := range randomTxDeltas(42, 300) {
		ps.Capture(d)
		vs.Capture(d)
	}
	a, b := ps.Scan(10_000), vs.Scan(10_000)
	if !reflect.DeepEqual(a.Deltas, b.Deltas) {
		t.Fatal("persistent and volatile scans differ")
	}
}

func TestConsumedPrefixSkipsHistory(t *testing.T) {
	s := NewVolatile()
	// Two consumed cycles, then a straggler with an old timestamp that the
	// prefix must NOT skip past (its index is low but it stays valid).
	s.Capture(txd(10, delta.NodeDelta{Node: 1, Inserted: true}))
	s.Capture(txd(30, delta.NodeDelta{Node: 2, Inserted: true})) // future ts
	s.Capture(txd(11, delta.NodeDelta{Node: 3, Inserted: true}))
	b := s.Scan(20) // consumes ts 10 and 11; ts 30 stays valid at index 1
	if b.Records != 2 {
		t.Fatalf("first scan consumed %d", b.Records)
	}
	if got := s.consumedPrefix.Load(); got != 1 {
		t.Fatalf("prefix = %d, want 1 (straggler at index 1 pins it)", got)
	}
	if !s.PendingAt(31) {
		t.Fatal("straggler invisible to PendingAt")
	}
	b2 := s.Scan(31)
	if b2.Records != 1 || b2.Deltas[0].Node != 2 {
		t.Fatalf("second scan = %+v", b2)
	}
	if got := s.consumedPrefix.Load(); got != 3 {
		t.Fatalf("prefix after full consumption = %d, want 3", got)
	}
	if s.PendingAt(1 << 40) {
		t.Fatal("phantom pending")
	}
	// Prefix resets with the store.
	s.Clear()
	if s.consumedPrefix.Load() != 0 {
		t.Fatal("prefix survived Clear")
	}
}

func TestClear(t *testing.T) {
	s := NewVolatile()
	s.Capture(txd(1, delta.NodeDelta{Node: 1, Ins: []delta.Edge{{Dst: 2, W: 1}}}))
	s.Clear()
	if s.Records() != 0 || s.ArrayBytes() != 0 || s.TotalBytes() != 0 {
		t.Fatalf("Clear left data: %d records, %d bytes", s.Records(), s.ArrayBytes())
	}
	if b := s.Scan(100); !b.Empty() {
		t.Fatalf("scan after clear: %+v", b)
	}
}
