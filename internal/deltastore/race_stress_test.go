package deltastore

import (
	"sync"
	"testing"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
)

// TestCaptureRaceStress hammers Capture from many goroutines with enough
// volume to cross several chunk boundaries. It guards the regression where
// the weights array took its own reservation instead of mirroring the
// inserts reservation: concurrent committers could interleave differently
// on the two cursors, panicking at chunk boundaries and silently swapping
// weights between transactions below them.
func TestCaptureRaceStress(t *testing.T) {
	weightOf := func(i, j int) float64 { return float64((i*2+j)%251) + 0.5 }
	deltas := make([]*delta.TxDelta, 4096)
	for i := range deltas {
		deltas[i] = &delta.TxDelta{TS: mvto.TS(i + 1), Nodes: []delta.NodeDelta{{
			Node: uint64(i),
			Ins: []delta.Edge{
				{Dst: uint64(i * 3), W: weightOf(i, 0)},
				{Dst: uint64(i*3 + 1), W: weightOf(i, 1)},
			},
			Del: []uint64{uint64(i * 5)},
		}}}
	}
	s := NewVolatile()
	n := 400_000
	if testing.Short() {
		n = 100_000
	}
	var wg sync.WaitGroup
	const clients = 8
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += clients {
				s.Capture(deltas[i%len(deltas)])
			}
		}(w)
	}
	wg.Wait()
	if s.Records() != uint64(n) {
		t.Fatalf("records = %d, want %d", s.Records(), n)
	}

	// Weight integrity: every record's weights must be the ones its own
	// transaction appended (dst encodes the expected weight).
	checked := 0
	s.records.ForEach(s.records.Len(), func(_ uint64, rec *record) bool {
		for j := 0; j < int(rec.insCnt); j++ {
			dst := *s.inserts.At(rec.insOff + uint64(j))
			w := *s.weights.At(rec.insOff + uint64(j))
			i := int(dst) / 3
			if want := weightOf(i, int(dst)%3); w != want {
				t.Errorf("record node %d: weight for dst %d = %v, want %v",
					rec.node, dst, w, want)
				return false
			}
			checked++
		}
		return true
	})
	if checked != 2*n {
		t.Fatalf("checked %d weights, want %d", checked, 2*n)
	}
}
