package deltastore

import (
	"encoding/binary"
	"fmt"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
	"h2tap/internal/pmem"
)

// Persistent delta store (§6.5): the same DELTA_FE structure with a PMem
// twin. The volatile structures keep serving appends and scans at DRAM
// speed; every append writes through to persistent vectors (charging the
// simulated media cost that Fig 11 measures), and recovery rebuilds the
// volatile twin from the persistent image — "such a persistent delta store
// instantly continues to serve its purpose upon recovery".
//
// Crash consistency: array payloads and record bytes persist before the
// vector lengths advance (pmem.Vector.CommitLen), so recovery sees whole
// transactions' records or none of the tail.

// persistent record layout (48 bytes, matching RecordSize):
//
//	0  ts       u64
//	8  node     u64
//	16 insOff   u64
//	24 delOff   u64
//	32 insCnt   u32
//	36 delCnt   u32
//	40 state    u32 (same bits as the volatile state word)
//	44 pad      u32
const (
	perRecTS     = 0
	perRecNode   = 8
	perRecInsOff = 16
	perRecDelOff = 24
	perRecInsCnt = 32
	perRecDelCnt = 36
	perRecState  = 40
)

// Root block layout: offsets of the four vectors plus the delta-mode flag
// and threshold.
const (
	rootRecs      = 0
	rootIns       = 8
	rootW         = 16
	rootDels      = 24
	rootMode      = 32
	rootThreshold = 40
	rootSize      = 48
)

// persistence is the PMem twin of a Store.
type persistence struct {
	pool    *pmem.Pool
	rootOff uint64
	recs    *pmem.Vector
	ins     *pmem.Vector
	w       *pmem.Vector
	dels    *pmem.Vector
}

// Geometry of the persistent vectors. maxChunks bounds capacity at
// chunkElems*maxChunks elements per vector.
const (
	perChunkElems = 1 << 14
	perMaxChunks  = 1 << 12
)

// NewPersistent creates a PMem-backed delta store in pool. The pool's root
// is set to the store's root block so OpenPersistent can find it.
func NewPersistent(pool *pmem.Pool) (*Store, error) {
	rootOff, err := pool.Alloc(rootSize)
	if err != nil {
		return nil, fmt.Errorf("deltastore: alloc root: %w", err)
	}
	p := &persistence{pool: pool, rootOff: rootOff}
	if p.recs, err = pmem.NewVector(pool, RecordSize, perChunkElems, perMaxChunks); err != nil {
		return nil, err
	}
	if p.ins, err = pmem.NewVector(pool, 8, perChunkElems, perMaxChunks); err != nil {
		return nil, err
	}
	if p.w, err = pmem.NewVector(pool, 8, perChunkElems, perMaxChunks); err != nil {
		return nil, err
	}
	if p.dels, err = pmem.NewVector(pool, 8, perChunkElems, perMaxChunks); err != nil {
		return nil, err
	}
	for off, v := range map[uint64]uint64{
		rootRecs: p.recs.Off(), rootIns: p.ins.Off(),
		rootW: p.w.Off(), rootDels: p.dels.Off(),
	} {
		if err := pool.PutUint64(rootOff+off, v); err != nil {
			return nil, err
		}
	}
	if err := pool.PutUint64(rootOff+rootMode, 1); err != nil {
		return nil, err
	}
	if err := pool.SetRoot(rootOff, rootSize); err != nil {
		return nil, err
	}

	s := NewVolatile()
	s.persist = p
	return s, nil
}

// OpenPersistent recovers a PMem-backed delta store from pool: the
// persistent vectors are located via the pool root and the volatile twin is
// rebuilt by replaying every durable record.
func OpenPersistent(pool *pmem.Pool) (*Store, error) {
	rootOff, rootLen := pool.Root()
	if rootLen < rootSize {
		return nil, fmt.Errorf("deltastore: pool root %d bytes, want %d", rootLen, rootSize)
	}
	p := &persistence{pool: pool, rootOff: rootOff}
	var err error
	if p.recs, err = pmem.OpenVector(pool, pool.GetUint64(rootOff+rootRecs)); err != nil {
		return nil, err
	}
	if p.ins, err = pmem.OpenVector(pool, pool.GetUint64(rootOff+rootIns)); err != nil {
		return nil, err
	}
	if p.w, err = pmem.OpenVector(pool, pool.GetUint64(rootOff+rootW)); err != nil {
		return nil, err
	}
	if p.dels, err = pmem.OpenVector(pool, pool.GetUint64(rootOff+rootDels)); err != nil {
		return nil, err
	}

	s := NewVolatile()
	s.persist = p
	s.deltaMode.Store(pool.GetUint64(rootOff+rootMode) != 0)
	s.threshold.Store(pool.GetUint64(rootOff + rootThreshold))

	// Rebuild the volatile twin from the durable prefix.
	nRecs := p.recs.DurableLen()
	nIns := p.ins.DurableLen()
	nDels := p.dels.DurableLen()
	s.inserts.Reserve(int(nIns))
	s.weights.Reserve(int(nIns))
	s.deletes.Reserve(int(nDels))
	for i := uint64(0); i < nIns; i++ {
		*s.inserts.At(i) = p.ins.GetUint64(i)
		*s.weights.At(i) = p.w.GetFloat64(i)
	}
	for i := uint64(0); i < nDels; i++ {
		*s.deletes.At(i) = p.dels.GetUint64(i)
	}
	s.records.Reserve(int(nRecs))
	for i := uint64(0); i < nRecs; i++ {
		b := p.recs.Read(i)
		rec := s.records.At(i)
		rec.ts = mvto.TS(binary.LittleEndian.Uint64(b[perRecTS:]))
		rec.node = binary.LittleEndian.Uint64(b[perRecNode:])
		rec.insOff = binary.LittleEndian.Uint64(b[perRecInsOff:])
		rec.delOff = binary.LittleEndian.Uint64(b[perRecDelOff:])
		rec.insCnt = binary.LittleEndian.Uint32(b[perRecInsCnt:])
		rec.delCnt = binary.LittleEndian.Uint32(b[perRecDelCnt:])
		rec.state.Store(binary.LittleEndian.Uint32(b[perRecState:]))
	}
	return s, nil
}

// Persistent reports whether the store has a PMem twin.
func (s *Store) Persistent() bool { return s.persist != nil }

// mirror writes one record and its array payloads through to PMem at the
// same indexes the volatile twin used. On the first error it stops: the
// durable lengths have not advanced, so the durable image still ends at the
// previous transaction boundary — a consistent prefix.
func (p *persistence) mirror(i uint64, rec *record, state uint32, nd *delta.NodeDelta) error {
	insEnd := rec.insOff + uint64(rec.insCnt)
	delEnd := rec.delOff + uint64(rec.delCnt)
	if err := p.ins.EnsureLen(insEnd); err != nil {
		return err
	}
	if err := p.w.EnsureLen(insEnd); err != nil {
		return err
	}
	if err := p.dels.EnsureLen(delEnd); err != nil {
		return err
	}
	if err := p.recs.EnsureLen(i + 1); err != nil {
		return err
	}

	for j := range nd.Ins {
		if err := p.ins.PutUint64(rec.insOff+uint64(j), nd.Ins[j].Dst); err != nil {
			return err
		}
		if err := p.w.PutFloat64(rec.insOff+uint64(j), nd.Ins[j].W); err != nil {
			return err
		}
	}
	for j := range nd.Del {
		if err := p.dels.PutUint64(rec.delOff+uint64(j), nd.Del[j]); err != nil {
			return err
		}
	}

	var b [RecordSize]byte
	binary.LittleEndian.PutUint64(b[perRecTS:], uint64(rec.ts))
	binary.LittleEndian.PutUint64(b[perRecNode:], rec.node)
	binary.LittleEndian.PutUint64(b[perRecInsOff:], rec.insOff)
	binary.LittleEndian.PutUint64(b[perRecDelOff:], rec.delOff)
	binary.LittleEndian.PutUint32(b[perRecInsCnt:], rec.insCnt)
	binary.LittleEndian.PutUint32(b[perRecDelCnt:], rec.delCnt)
	binary.LittleEndian.PutUint32(b[perRecState:], state)
	return p.recs.Write(i, b[:])
}

// commitLens publishes the durable lengths after a transaction's records
// and payloads are persisted. Order matters for recovery: the record length
// (recs) goes last, so any durable record's payload ranges are covered by
// already-durable array data.
func (p *persistence) commitLens() error {
	if err := p.ins.CommitLen(); err != nil {
		return err
	}
	if err := p.w.CommitLen(); err != nil {
		return err
	}
	if err := p.dels.CommitLen(); err != nil {
		return err
	}
	return p.recs.CommitLen()
}

// invalidate persists the cleared valid bit of record i (so a recovered
// store does not re-propagate consumed deltas).
func (p *persistence) invalidate(i uint64) error {
	b := p.recs.Read(i)
	st := binary.LittleEndian.Uint32(b[perRecState:])
	binary.LittleEndian.PutUint32(b[perRecState:], st&^stValid)
	return p.recs.PersistElem(i)
}

func (p *persistence) setMode(on bool) error {
	var v uint64
	if on {
		v = 1
	}
	return p.pool.PutUint64(p.rootOff+rootMode, v)
}

func (p *persistence) setThreshold(n uint64) error {
	return p.pool.PutUint64(p.rootOff+rootThreshold, n)
}

func (p *persistence) reset() error {
	if err := p.recs.Reset(); err != nil {
		return err
	}
	if err := p.ins.Reset(); err != nil {
		return err
	}
	if err := p.w.Reset(); err != nil {
		return err
	}
	return p.dels.Reset()
}

// Validate checks the durable image's internal consistency — the invariant
// the crash harness asserts after every injected crash: every durable
// record is fully published and its payload ranges lie inside the durable
// (or at least chunk-allocated and written-before-length, see commitLens)
// array prefixes.
func (s *Store) Validate() error {
	if s.persist == nil {
		return nil
	}
	p := s.persist
	nRec := p.recs.DurableLen()
	nIns := p.ins.DurableLen()
	nW := p.w.DurableLen()
	nDel := p.dels.DurableLen()
	// commitLens publishes ins before w: at any crash the weight length may
	// lag the insert length, never lead it.
	if nW > nIns {
		return fmt.Errorf("deltastore: durable weights %d exceed inserts %d", nW, nIns)
	}
	for i := uint64(0); i < nRec; i++ {
		b := p.recs.Read(i)
		state := binary.LittleEndian.Uint32(b[perRecState:])
		if state&stReady == 0 {
			return fmt.Errorf("deltastore: durable record %d not published (state %#x)", i, state)
		}
		insOff := binary.LittleEndian.Uint64(b[perRecInsOff:])
		delOff := binary.LittleEndian.Uint64(b[perRecDelOff:])
		insCnt := uint64(binary.LittleEndian.Uint32(b[perRecInsCnt:]))
		delCnt := uint64(binary.LittleEndian.Uint32(b[perRecDelCnt:]))
		if insOff+insCnt > nIns {
			return fmt.Errorf("deltastore: record %d inserts [%d,%d) beyond durable %d",
				i, insOff, insOff+insCnt, nIns)
		}
		if insOff+insCnt > nW {
			return fmt.Errorf("deltastore: record %d weights [%d,%d) beyond durable %d",
				i, insOff, insOff+insCnt, nW)
		}
		if delOff+delCnt > nDel {
			return fmt.Errorf("deltastore: record %d deletes [%d,%d) beyond durable %d",
				i, delOff, delOff+delCnt, nDel)
		}
	}
	return nil
}
