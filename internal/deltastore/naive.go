package deltastore

import (
	"sort"
	"sync"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
)

// NaiveStore is an ablation baseline for DELTA_FE's design choices
// (DESIGN.md §5): it captures the same deltas but (a) stores each delta's
// payload as per-delta heap slices instead of the CSR-like shared arrays,
// and (b) serializes appends with a global mutex instead of atomic range
// reservation. Scan semantics are identical, which isolates the layout and
// append-path effects in the ablation benchmarks.
type NaiveStore struct {
	mu    sync.Mutex
	recs  []naiveRec
	bytes uint64
}

type naiveRec struct {
	ts    mvto.TS
	valid bool
	nd    delta.NodeDelta
}

// NewNaive returns an empty naive delta store.
func NewNaive() *NaiveStore { return &NaiveStore{} }

var _ delta.Capturer = (*NaiveStore)(nil)

// Capture appends the transaction's deltas under the global lock.
func (s *NaiveStore) Capture(d *delta.TxDelta) {
	if d.Empty() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range d.Nodes {
		nd := d.Nodes[i]
		nd.Ins = append([]delta.Edge(nil), nd.Ins...)
		nd.Del = append([]uint64(nil), nd.Del...)
		s.recs = append(s.recs, naiveRec{ts: d.TS, valid: true, nd: nd})
		s.bytes += uint64(len(nd.Ins))*16 + uint64(len(nd.Del))*8
	}
}

// Scan combines valid records visible to tp, mirroring Store.Scan.
func (s *NaiveStore) Scan(tp mvto.TS) *delta.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	type part struct {
		ts mvto.TS
		nd delta.NodeDelta
	}
	groups := make(map[uint64][]part)
	consumed := 0
	for i := range s.recs {
		r := &s.recs[i]
		if !r.valid || r.ts >= tp {
			continue
		}
		r.valid = false
		groups[r.nd.Node] = append(groups[r.nd.Node], part{ts: r.ts, nd: r.nd})
		consumed++
	}
	batch := &delta.Batch{TS: tp, Records: consumed}
	for node, parts := range groups {
		sort.Slice(parts, func(i, j int) bool { return parts[i].ts < parts[j].ts })
		nds := make([]delta.NodeDelta, len(parts))
		for i := range parts {
			nds[i] = parts[i].nd
		}
		if c := delta.Combine(node, nds); !c.Empty() {
			batch.Deltas = append(batch.Deltas, c)
		}
	}
	sort.Slice(batch.Deltas, func(i, j int) bool {
		return batch.Deltas[i].Node < batch.Deltas[j].Node
	})
	return batch
}

// Records reports the number of appended records.
func (s *NaiveStore) Records() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.recs))
}

// ArrayBytes reports the payload footprint, comparable to Store.ArrayBytes.
func (s *NaiveStore) ArrayBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
