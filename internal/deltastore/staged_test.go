package deltastore

import (
	"path/filepath"
	"testing"

	"h2tap/internal/delta"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
)

func stagedFixture() *Store {
	s := NewVolatile()
	s.Capture(txd(1,
		delta.NodeDelta{Node: 5, Inserted: true, Ins: []delta.Edge{{Dst: 1, W: 2.0}}},
		delta.NodeDelta{Node: 3, Ins: []delta.Edge{{Dst: 5, W: 5.0}}},
	))
	s.Capture(txd(2,
		delta.NodeDelta{Node: 1, Del: []uint64{30}},
		delta.NodeDelta{Node: 4, Deleted: true},
	))
	return s
}

func TestStagedScanCommitConsumes(t *testing.T) {
	s := stagedFixture()
	sc := s.StageScanWorkers(10, 1)
	if sc.Batch.Records != 4 {
		t.Fatalf("staged %d records, want 4", sc.Batch.Records)
	}
	// Staging consumes nothing: the records are still pending.
	if n := s.PendingCount(10); n != 4 {
		t.Fatalf("PendingCount after stage = %d, want 4", n)
	}
	sc.Commit()
	if n := s.PendingCount(10); n != 0 {
		t.Fatalf("PendingCount after commit = %d, want 0", n)
	}
	if b := s.Scan(10); b.Records != 0 {
		t.Fatalf("scan after commit consumed %d records", b.Records)
	}
	// Commit is idempotent.
	sc.Commit()
}

func TestStagedScanAbandonLeavesStoreUntouched(t *testing.T) {
	s := stagedFixture()
	sc := s.StageScanWorkers(10, 1)
	sc.Abandon()
	if n := s.PendingCount(10); n != 4 {
		t.Fatalf("PendingCount after abandon = %d, want 4", n)
	}
	// The next scan sees exactly what the abandoned one saw.
	b := s.Scan(10)
	if b.Records != 4 || len(b.Deltas) != len(sc.Batch.Deltas) {
		t.Fatalf("rescan after abandon: %d records, %d deltas", b.Records, len(b.Deltas))
	}
	// Commit after Abandon is a no-op.
	sc.Commit()
	if b := s.Scan(10); b.Records != 0 {
		t.Fatal("abandoned stage consumed on late Commit")
	}
}

func TestStagedScanCommitAfterClearIsNoop(t *testing.T) {
	s := stagedFixture()
	sc := s.StageScanWorkers(10, 1)
	// A committer crossing the §6.4 threshold clears the store between
	// stage and commit; the stale commit must not touch the reset store.
	s.SetThreshold(1)
	s.Capture(txd(3, delta.NodeDelta{Node: 9, Del: []uint64{1}}))
	if s.DeltaMode() {
		t.Fatal("threshold flip did not disable delta mode")
	}
	sc.Commit()
	s.EnableDeltaMode()
	if n := s.Records(); n != 0 {
		t.Fatalf("store has %d records after clear + stale commit", n)
	}
	// The store works normally afterwards.
	s.Capture(txd(4, delta.NodeDelta{Node: 2, Ins: []delta.Edge{{Dst: 7, W: 1}}}))
	if b := s.Scan(10); b.Records != 1 {
		t.Fatalf("post-clear scan consumed %d records, want 1", b.Records)
	}
}

func TestStagedScanVisibilityBound(t *testing.T) {
	s := stagedFixture()
	s.Capture(txd(7, delta.NodeDelta{Node: 8, Del: []uint64{2}}))
	sc := s.StageScanWorkers(3, 1) // ts 7 not visible
	if sc.Batch.Records != 4 {
		t.Fatalf("staged %d records, want 4", sc.Batch.Records)
	}
	sc.Commit()
	if n := s.PendingCount(10); n != 1 {
		t.Fatalf("PendingCount = %d, want the invisible record", n)
	}
}

func TestStagedScanPersistentCommitDurable(t *testing.T) {
	dir := t.TempDir()
	pool, err := pmem.Create(filepath.Join(dir, "delta.pool"), 4<<20, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewPersistent(pool)
	if err != nil {
		t.Fatal(err)
	}
	s.Capture(txd(1, delta.NodeDelta{Node: 1, Ins: []delta.Edge{{Dst: 2, W: 1}}}))
	s.Capture(txd(2, delta.NodeDelta{Node: 3, Del: []uint64{4}}))

	sc := s.StageScanWorkers(10, 1)
	sc.Commit()
	if err := s.PersistErr(); err != nil {
		t.Fatal(err)
	}
	pool.Close()

	// Recovery must see the consumption: committed records do not replay.
	pool2, err := pmem.Open(filepath.Join(dir, "delta.pool"), sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	s2, err := OpenPersistent(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if b := s2.Scan(10); b.Records != 0 {
		t.Fatalf("recovered store replayed %d consumed records", b.Records)
	}
}

func TestHighWaterFiresOncePerCrossing(t *testing.T) {
	s := NewVolatile()
	s.SetHighWater(3)
	if s.HighWater() != 3 {
		t.Fatalf("HighWater = %d", s.HighWater())
	}
	fired := 0
	s.OnHighWater(func() { fired++ })

	s.Capture(txd(1, delta.NodeDelta{Node: 1, Del: []uint64{1}}, delta.NodeDelta{Node: 2, Del: []uint64{2}}))
	if fired != 0 || s.OverHighWater() {
		t.Fatalf("below mark: fired=%d over=%v", fired, s.OverHighWater())
	}
	s.Capture(txd(2, delta.NodeDelta{Node: 3, Del: []uint64{3}}, delta.NodeDelta{Node: 4, Del: []uint64{4}}))
	if fired != 1 || !s.OverHighWater() {
		t.Fatalf("crossing: fired=%d over=%v", fired, s.OverHighWater())
	}
	// Further growth does not re-fire.
	s.Capture(txd(3, delta.NodeDelta{Node: 5, Del: []uint64{5}}))
	if fired != 1 {
		t.Fatalf("re-fired while over the mark: %d", fired)
	}
	// A store reset re-arms the trigger.
	s.EnableDeltaMode()
	s.Capture(txd(4,
		delta.NodeDelta{Node: 1, Del: []uint64{1}},
		delta.NodeDelta{Node: 2, Del: []uint64{2}},
		delta.NodeDelta{Node: 3, Del: []uint64{3}},
		delta.NodeDelta{Node: 4, Del: []uint64{4}},
	))
	if fired != 2 {
		t.Fatalf("after reset: fired=%d, want 2", fired)
	}
}
