// Package deltastore implements DELTA_FE, the paper's core contribution
// (§5): a fast and efficient append-only graph delta store with a CSR-like
// layout.
//
// The store buffers the topology changes of committed transactions as
// fixed-size *delta records* (transaction timestamp, node ID, validity and
// deleted flags, offsets and counts) whose variable-length payloads — the
// destination IDs and weights of inserted relationships and the destination
// IDs of deleted relationships — are outsourced to three shared append-only
// arrays: inserts, weights and deletes (§5.1, Fig 2). Retrieving a record's
// updates takes three array lookups.
//
// Appends never read or modify existing deltas, so committing transactions
// reserve disjoint ranges with atomic adds and proceed without contention
// (§5.1's three performance benefits). The delta store scan (§5.2) runs
// inside a propagation transaction Tp: it consumes records that are *valid*
// (not used by a previous propagation cycle) and *visible* (appended by a
// transaction older than Tp — the MVTO extension of §5.3), combines
// per-node deltas from different transactions, and marks consumed records
// invalid.
package deltastore

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
	"h2tap/internal/storage"
)

// record is one fixed-size delta record (§5.1). The state word is the
// publication point: appenders fill every other field first and store the
// state last; scanners ignore records whose ready bit is unset.
type record struct {
	ts     mvto.TS
	node   uint64
	insOff uint64
	delOff uint64
	insCnt uint32
	delCnt uint32
	state  atomic.Uint32
}

// state bits.
const (
	stReady    = 1 << iota // fully written and published
	stValid                // not yet consumed by a propagation cycle
	stDeleted              // the node was deleted
	stInserted             // the node was newly inserted
)

// RecordSize is the in-memory size of one delta record in bytes, used for
// footprint accounting.
const RecordSize = 48

// Store is the DELTA_FE delta store. The zero value is not usable; call
// NewVolatile or NewPersistent.
type Store struct {
	records *storage.ChunkedVector[record]
	inserts *storage.ChunkedVector[uint64]
	weights *storage.ChunkedVector[float64]
	deletes *storage.ChunkedVector[uint64]

	// deltaMode is the §6.4 flag: ON (true) while the cost model says
	// delta-based propagation beats a CSR rebuild. threshold is the delta
	// record count at which appenders flip it OFF; 0 means no threshold.
	deltaMode atomic.Bool
	threshold atomic.Uint64

	// clearMu lets Clear (rare) exclude appenders and scanners (frequent).
	clearMu sync.RWMutex

	// consumedPrefix is the record index below which every published
	// record has been consumed: scans and freshness checks start there
	// instead of walking the store's whole append-only history. Advanced
	// only by a committed scan (single scanner), reset by Clear.
	consumedPrefix atomic.Uint64

	// gen counts resets. A StagedScan captures it at stage time and
	// refuses to commit consumption if the store was cleared in between
	// (the staged records no longer exist).
	gen atomic.Uint64

	// highWater is the robustness backstop of the retry ladder: when the
	// record count reaches it, onHighWater fires (once per crossing,
	// re-armed by reset) so the engine can force an emergency propagation
	// or apply committer backpressure. 0 disables.
	highWater   atomic.Uint64
	hwFired     atomic.Bool
	onHighWater atomic.Value // func()

	skippedTxns atomic.Uint64

	// appendObs, when set, receives every Capture's appended record count
	// and insert/delete payload element counts. One atomic load when unset.
	appendObs atomic.Value // func(records, ins, dels int)

	persist *persistence // nil for the volatile store

	// persistBroken latches on the first PMem write failure. Mirroring
	// stops immediately — the durable image freezes at the last committed
	// transaction boundary, which recovery handles like any crash — and
	// PersistErr surfaces the cause so the facade can fail subsequent
	// commits instead of silently diverging from durable state.
	persistBroken atomic.Bool
	persistErrMu  sync.Mutex
	persistErr    error
}

// failPersist records the first persistence error and stops all mirroring.
func (s *Store) failPersist(err error) {
	s.persistErrMu.Lock()
	if s.persistErr == nil {
		s.persistErr = err
	}
	s.persistErrMu.Unlock()
	s.persistBroken.Store(true)
}

// PersistErr reports the sticky PMem write failure, if any. Once set, the
// persistent image no longer tracks the volatile store; callers that need
// durability must stop committing (the h2tap facade aborts commits on it).
func (s *Store) PersistErr() error {
	s.persistErrMu.Lock()
	defer s.persistErrMu.Unlock()
	return s.persistErr
}

// mirroring reports whether persistent mirroring is active and healthy.
func (s *Store) mirroring() bool {
	return s.persist != nil && !s.persistBroken.Load()
}

// chunkShift sizes the delta table's fixed chunks at 8192 records (≈390 KB)
// and the payload arrays at 8192 elements (64 KB): small enough that the
// first transaction after a clear does not pay a multi-megabyte first-touch
// zeroing, large enough that multi-million-delta stores stay a handful of
// directory entries.
const chunkShift = 13

// NewVolatile returns an empty DRAM-resident delta store with delta mode
// enabled.
func NewVolatile() *Store {
	s := &Store{
		records: storage.NewChunkedVector[record](chunkShift),
		inserts: storage.NewChunkedVector[uint64](chunkShift),
		weights: storage.NewChunkedVector[float64](chunkShift),
		deletes: storage.NewChunkedVector[uint64](chunkShift),
	}
	s.deltaMode.Store(true)
	return s
}

var _ delta.Capturer = (*Store)(nil)

// Records reports the number of appended delta records (including consumed
// ones — the store is append-only until cleared).
func (s *Store) Records() uint64 { return s.records.Len() }

// ArrayBytes reports the paper's delta memory footprint metric (§6.3): the
// total size of stored elements in the inserts, weights and deletes arrays,
// each element being 8 bytes.
func (s *Store) ArrayBytes() uint64 {
	return (s.inserts.Len() + s.weights.Len() + s.deletes.Len()) * 8
}

// TotalBytes reports the full footprint: array elements plus delta records.
func (s *Store) TotalBytes() uint64 {
	return s.ArrayBytes() + s.records.Len()*RecordSize
}

// DeltaMode reports whether the store is accepting deltas (§6.4).
func (s *Store) DeltaMode() bool { return s.deltaMode.Load() }

// SetThreshold installs the cost-model delta-count threshold; 0 disables
// thresholding.
func (s *Store) SetThreshold(n uint64) {
	s.threshold.Store(n)
	if s.mirroring() {
		if err := s.persist.setThreshold(n); err != nil {
			s.failPersist(err)
		}
	}
}

// Threshold reports the installed threshold.
func (s *Store) Threshold() uint64 { return s.threshold.Load() }

// SetAppendObserver installs the append observer: fn is called at the end
// of every Capture that appended records, with the record count and the
// insert/delete payload element counts. fn must be safe for concurrent use;
// committers call it directly.
func (s *Store) SetAppendObserver(fn func(records, ins, dels int)) {
	s.appendObs.Store(fn)
}

// Depth reports the number of published-but-unconsumed records: the
// replica's ingestion backlog (append high-water minus the consumed
// prefix).
func (s *Store) Depth() uint64 {
	n := s.records.Len()
	if p := s.consumedPrefix.Load(); p < n {
		return n - p
	}
	return 0
}

// SkippedTxns reports how many committing transactions skipped appending
// because delta mode was off.
func (s *Store) SkippedTxns() uint64 { return s.skippedTxns.Load() }

// Capture appends one committed transaction's deltas (§5.1). It implements
// delta.Capturer and is invoked from the transaction's commit hook, so
// everything it sees is already committed. Appending is lookup-free: the
// transaction reserves disjoint ranges in the arrays and the record table
// and publishes each record by storing its state word last.
func (s *Store) Capture(d *delta.TxDelta) {
	if d.Empty() {
		return
	}
	s.clearMu.RLock()
	defer s.clearMu.RUnlock()

	if !s.deltaMode.Load() {
		s.skippedTxns.Add(1)
		return
	}
	if th := s.threshold.Load(); th > 0 &&
		s.records.Len()+uint64(len(d.Nodes)) > th {
		// §6.4: the transaction that would exceed the threshold flips the
		// delta mode flag off instead of appending; the store is cleared
		// at once and stays off until the next CSR rebuild re-enables it.
		if s.deltaMode.CompareAndSwap(true, false) {
			s.resetLocked()
			if s.mirroring() {
				if err := s.persist.setMode(false); err != nil {
					s.failPersist(err)
				}
			}
		}
		s.skippedTxns.Add(1)
		return
	}

	// Coalesce this transaction's array payloads into single reservations.
	var insTotal, delTotal int
	for i := range d.Nodes {
		insTotal += len(d.Nodes[i].Ins)
		delTotal += len(d.Nodes[i].Del)
	}
	insBase := s.inserts.Reserve(insTotal)
	// Weights mirror inserts index-for-index, so they must share the
	// inserts reservation: taking a second independent reservation would
	// let concurrent committers interleave differently on the two cursors
	// and write their weights into each other's ranges.
	s.weights.EnsureLen(insBase + uint64(insTotal))
	delBase := s.deletes.Reserve(delTotal)
	recBase := s.records.Reserve(len(d.Nodes))

	insAt, delAt := insBase, delBase
	for i := range d.Nodes {
		nd := &d.Nodes[i]
		for j := range nd.Ins {
			*s.inserts.At(insAt + uint64(j)) = nd.Ins[j].Dst
			*s.weights.At(insAt + uint64(j)) = nd.Ins[j].W
		}
		for j := range nd.Del {
			*s.deletes.At(delAt + uint64(j)) = nd.Del[j]
		}

		rec := s.records.At(recBase + uint64(i))
		rec.ts = d.TS
		rec.node = nd.Node
		rec.insOff, rec.insCnt = insAt, uint32(len(nd.Ins))
		rec.delOff, rec.delCnt = delAt, uint32(len(nd.Del))
		state := uint32(stReady | stValid)
		if nd.Deleted {
			state |= stDeleted
		}
		if nd.Inserted {
			state |= stInserted
		}
		if s.mirroring() {
			if err := s.persist.mirror(recBase+uint64(i), rec, state, nd); err != nil {
				s.failPersist(err)
			}
		}
		rec.state.Store(state) // publication point

		insAt += uint64(len(nd.Ins))
		delAt += uint64(len(nd.Del))
	}
	if s.mirroring() {
		if err := s.persist.commitLens(); err != nil {
			s.failPersist(err)
		}
	}
	s.checkHighWater()
	if fn, ok := s.appendObs.Load().(func(records, ins, dels int)); ok && fn != nil {
		fn(len(d.Nodes), insTotal, delTotal)
	}
}

// scanHit is one record reference collected by scan pass 1; the payloads
// stay in the shared arrays until grouping materializes them. idx is the
// record's table index, needed to mirror the invalidation to PMem when the
// consumption commits.
type scanHit struct {
	node uint64
	ts   mvto.TS
	rec  *record
	idx  uint64
}

// Scan is the delta store scan (§5.2) run by a propagation transaction with
// timestamp tp, using DefaultScanWorkers for the grouping pass. It
// combines, per node, every record that is valid and visible (appended by
// a transaction older than tp and fully published), marks the consumed
// records invalid, and returns the batch sorted by node ID. Records from
// transactions newer than tp — including those appended concurrently with
// the scan — are left for the next cycle (§5.3).
//
// Scan may run concurrently with Capture but not with another Scan: update
// propagation is serialized by the engine (§4.3, one replica version at a
// time).
func (s *Store) Scan(tp mvto.TS) *delta.Batch {
	return s.ScanWorkers(tp, 0)
}

// DefaultScanWorkers is the grouping-pass worker count Scan uses:
// GOMAXPROCS.
func DefaultScanWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 1 {
		return w
	}
	return 1
}

// ScanWorkers is Scan with an explicit worker count for pass 2 (grouping,
// Combine, sorting). It stages the scan and commits consumption
// immediately — the historical all-or-nothing-free behavior. Callers that
// must be able to roll back (the engine's failure-atomic propagation) use
// StageScanWorkers and commit only after the batch has been applied.
func (s *Store) ScanWorkers(tp mvto.TS, workers int) *delta.Batch {
	sc := s.StageScanWorkers(tp, workers)
	sc.Commit()
	return sc.Batch
}

// StagedScan is a delta store scan whose consumption has not happened yet:
// the batch is materialized, but every scanned record is still valid and
// the consumed prefix has not moved. Exactly one of Commit or Abandon must
// be called; until then no other scan may run (update propagation is
// serialized by the engine, §4.3).
type StagedScan struct {
	// Batch is the combined, node-sorted delta batch of the scan.
	Batch *delta.Batch

	s         *Store
	hits      []scanHit
	newPrefix uint64
	gen       uint64
	done      bool
}

// StageScanWorkers runs scan passes 1 and 2 (§5.2) without consuming: hits
// are collected and grouped, but record valid bits and the consumed prefix
// are untouched, so Abandon leaves the store exactly as if the scan never
// ran. This is the first half of the engine's failure-atomic propagation
// protocol — delta consumption commits only after the replica swap
// succeeded.
func (s *Store) StageScanWorkers(tp mvto.TS, workers int) *StagedScan {
	if workers <= 0 {
		workers = DefaultScanWorkers()
	}
	s.clearMu.RLock()
	defer s.clearMu.RUnlock()

	// Pass 1: collect valid+visible records as lightweight references.
	limit := s.records.Len()
	start := s.consumedPrefix.Load()
	newPrefix := limit
	hits := make([]scanHit, 0, 256)
	s.forEachFrom(start, limit, func(i uint64, rec *record) bool {
		st := rec.state.Load()
		if st&stReady == 0 {
			// Not yet published; a future cycle's business — and a hole the
			// prefix cannot advance past.
			if i < newPrefix {
				newPrefix = i
			}
			return true
		}
		if rec.ts >= tp {
			// Not visible to Tp (§5.3): skipped, stays valid.
			if i < newPrefix {
				newPrefix = i
			}
			return true
		}
		if st&stValid == 0 {
			return true // already consumed in a previous cycle
		}
		hits = append(hits, scanHit{node: rec.node, ts: rec.ts, rec: rec, idx: i})
		return true
	})

	sc := &StagedScan{
		Batch:     &delta.Batch{TS: tp, Records: len(hits)},
		s:         s,
		hits:      hits,
		newPrefix: newPrefix,
		gen:       s.gen.Load(),
	}
	// Pass 2 may permute sc.hits (groupHits sorts in place); Commit's
	// invalidation walk is order-independent, so that is harmless.
	if workers > 1 && len(hits) >= 2 {
		sc.Batch.Deltas = s.groupParallel(hits, workers)
	} else {
		sc.Batch.Deltas = s.groupHits(hits)
	}
	return sc
}

// Commit consumes the staged records: valid bits are cleared (and mirrored
// to the persistent image), and the consumed prefix advances. Only one
// scanner runs at a time and appenders never revisit published records, so
// the plain read-modify-write on each state word is race-free (§5.3). If
// the store was cleared since the stage (a §6.4 rebuild-mode flip by a
// concurrent committer), Commit is a no-op: the staged records no longer
// exist and the pending rebuild covers their updates.
func (sc *StagedScan) Commit() {
	if sc.done {
		return
	}
	sc.done = true
	s := sc.s
	s.clearMu.RLock()
	defer s.clearMu.RUnlock()
	if s.gen.Load() != sc.gen {
		return
	}
	for i := range sc.hits {
		h := &sc.hits[i]
		st := h.rec.state.Load()
		h.rec.state.Store(st &^ stValid)
		if s.mirroring() {
			if err := s.persist.invalidate(h.idx); err != nil {
				s.failPersist(err)
			}
		}
	}
	if sc.newPrefix > s.consumedPrefix.Load() {
		s.consumedPrefix.Store(sc.newPrefix)
	}
}

// Abandon discards the staged scan without consuming anything: every
// staged record stays valid and the prefix stays put, so the next scan
// sees exactly what this one saw (plus anything newer) — the store is
// as-if the cycle never ran.
func (sc *StagedScan) Abandon() { sc.done = true }

// groupHits is scan pass 2: group hits by node (the sort keeps per-node
// parts in timestamp order for Combine and yields the node-sorted deltas
// Algorithm 2 consumes), combine and materialize.
func (s *Store) groupHits(hits []scanHit) []delta.Combined {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].node != hits[j].node {
			return hits[i].node < hits[j].node
		}
		return hits[i].ts < hits[j].ts
	})

	var out []delta.Combined
	for i := 0; i < len(hits); {
		j := i + 1
		for j < len(hits) && hits[j].node == hits[i].node {
			j++
		}
		var c delta.Combined
		if j == i+1 {
			// Fast path: one transaction touched this node; its NodeDelta
			// (disjoint Ins/Del by construction) only needs sorting.
			c = s.materialize(hits[i].rec)
			sort.Slice(c.Ins, func(a, b int) bool { return c.Ins[a].Dst < c.Ins[b].Dst })
			sort.Slice(c.Del, func(a, b int) bool { return c.Del[a] < c.Del[b] })
		} else {
			parts := make([]delta.NodeDelta, 0, j-i)
			for k := i; k < j; k++ {
				m := s.materialize(hits[k].rec)
				parts = append(parts, delta.NodeDelta{
					Node: m.Node, Inserted: m.Inserted, Deleted: m.Deleted,
					Ins: m.Ins, Del: m.Del,
				})
			}
			c = delta.Combine(hits[i].node, parts)
		}
		if !c.Empty() {
			out = append(out, c)
		}
		i = j
	}
	return out
}

// groupParallel shards pass 2 by node range: hits are scattered into
// node-range buckets chosen from sampled quantiles (so skewed node
// distributions still balance), each bucket is grouped by an independent
// worker via groupHits, and the per-bucket outputs concatenate — bucket
// ranges are disjoint and ascending, so the result is the same node-sorted
// delta list the serial pass produces. All hit mutation happened in pass 1;
// workers only read record payloads, which are immutable once published.
func (s *Store) groupParallel(hits []scanHit, workers int) []delta.Combined {
	// Quantile splitters from a strided sample of hit nodes.
	stride := len(hits) / 256
	if stride < 1 {
		stride = 1
	}
	sample := make([]uint64, 0, 256)
	for i := 0; i < len(hits); i += stride {
		sample = append(sample, hits[i].node)
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	splitters := make([]uint64, 0, workers-1)
	for k := 1; k < workers; k++ {
		sp := sample[k*len(sample)/workers]
		if len(splitters) == 0 || sp > splitters[len(splitters)-1] {
			splitters = append(splitters, sp)
		}
	}
	nb := len(splitters) + 1
	bucketOf := func(node uint64) int {
		return sort.Search(len(splitters), func(i int) bool { return node < splitters[i] })
	}

	// Counted scatter into one backing array, preserving arrival (and thus
	// timestamp) order within each bucket.
	counts := make([]int, nb)
	for i := range hits {
		counts[bucketOf(hits[i].node)]++
	}
	offs := make([]int, nb+1)
	for b := 0; b < nb; b++ {
		offs[b+1] = offs[b] + counts[b]
	}
	scattered := make([]scanHit, len(hits))
	cur := append([]int(nil), offs[:nb]...)
	for i := range hits {
		b := bucketOf(hits[i].node)
		scattered[cur[b]] = hits[i]
		cur[b]++
	}

	// Group each bucket in parallel, concatenate in bucket order.
	outs := make([][]delta.Combined, nb)
	var wg sync.WaitGroup
	for b := 0; b < nb; b++ {
		if counts[b] == 0 {
			continue
		}
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			outs[b] = s.groupHits(scattered[offs[b]:offs[b+1]])
		}(b)
	}
	wg.Wait()

	var total int
	for b := range outs {
		total += len(outs[b])
	}
	out := make([]delta.Combined, 0, total)
	for b := range outs {
		out = append(out, outs[b]...)
	}
	return out
}

// materialize reads one record's payload from the shared arrays — the
// three-lookup retrieval of §5.1.
func (s *Store) materialize(rec *record) delta.Combined {
	st := rec.state.Load()
	c := delta.Combined{
		Node:     rec.node,
		Deleted:  st&stDeleted != 0,
		Inserted: st&stInserted != 0,
	}
	if n := int(rec.insCnt); n > 0 {
		c.Ins = make([]delta.Edge, n)
		for j := 0; j < n; j++ {
			c.Ins[j] = delta.Edge{
				Dst: *s.inserts.At(rec.insOff + uint64(j)),
				W:   *s.weights.At(rec.insOff + uint64(j)),
			}
		}
	}
	if n := int(rec.delCnt); n > 0 {
		c.Del = make([]uint64, n)
		s.deletes.ReadInto(rec.delOff, c.Del)
	}
	return c
}

// PendingCount counts the published, still-valid records from transactions
// older than tp — the record half of the engine's staleness bound in
// Degraded mode. It walks from the consumed prefix, so its cost is
// proportional to the unconsumed tail.
func (s *Store) PendingCount(tp mvto.TS) int {
	n := 0
	s.forEachFrom(s.consumedPrefix.Load(), s.records.Len(), func(_ uint64, rec *record) bool {
		st := rec.state.Load()
		if st&stReady != 0 && st&stValid != 0 && rec.ts < tp {
			n++
		}
		return true
	})
	return n
}

// SetHighWater installs the delta-record high-water mark: when the record
// count reaches it, the OnHighWater hook fires. This is the robustness
// backstop that keeps propagation retries from hiding unbounded store
// growth. 0 disables.
func (s *Store) SetHighWater(n uint64) { s.highWater.Store(n) }

// HighWater reports the installed high-water mark.
func (s *Store) HighWater() uint64 { return s.highWater.Load() }

// OverHighWater reports whether the record count has reached the mark.
func (s *Store) OverHighWater() bool {
	hw := s.highWater.Load()
	return hw > 0 && s.records.Len() >= hw
}

// OnHighWater registers fn to run when an append pushes the record count
// to the high-water mark — once per crossing, re-armed when the store is
// cleared. fn runs on the committing goroutine and must not block; the
// engine's hook kicks off an asynchronous emergency propagation.
func (s *Store) OnHighWater(fn func()) { s.onHighWater.Store(fn) }

// checkHighWater fires the hook on a crossing.
func (s *Store) checkHighWater() {
	if !s.OverHighWater() {
		return
	}
	if !s.hwFired.CompareAndSwap(false, true) {
		return
	}
	if fn, _ := s.onHighWater.Load().(func()); fn != nil {
		fn()
	}
}

// PendingAt reports whether any published record from a transaction older
// than tp is still valid — i.e. whether a propagation at tp would have work
// to do. The engine uses it for the freshness check (§4.3).
func (s *Store) PendingAt(tp mvto.TS) bool {
	pending := false
	s.forEachFrom(s.consumedPrefix.Load(), s.records.Len(), func(_ uint64, rec *record) bool {
		st := rec.state.Load()
		if st&stReady != 0 && st&stValid != 0 && rec.ts < tp {
			pending = true
			return false
		}
		return true
	})
	return pending
}

// forEachFrom visits record indexes [start, limit).
func (s *Store) forEachFrom(start, limit uint64, fn func(i uint64, rec *record) bool) {
	s.records.ForEachFrom(start, limit, fn)
}

// Clear empties the store (all records and arrays). Used when switching to
// rebuild mode (§6.4) and by tests.
func (s *Store) Clear() {
	s.clearMu.Lock()
	defer s.clearMu.Unlock()
	s.resetLocked()
}

// EnableDeltaMode clears the store and turns delta mode back on — the §6.4
// transition after the CSR has been rebuilt.
func (s *Store) EnableDeltaMode() {
	s.clearMu.Lock()
	defer s.clearMu.Unlock()
	s.resetLocked()
	s.deltaMode.Store(true)
	if s.mirroring() {
		if err := s.persist.setMode(true); err != nil {
			s.failPersist(err)
		}
	}
}

func (s *Store) resetLocked() {
	s.gen.Add(1)
	s.hwFired.Store(false)
	s.consumedPrefix.Store(0)
	s.records.Reset()
	s.inserts.Reset()
	s.weights.Reset()
	s.deletes.Reset()
	if s.mirroring() {
		if err := s.persist.reset(); err != nil {
			s.failPersist(err)
		}
	}
}
