package deltastore

import (
	"sort"
	"testing"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
)

// combinedEq compares two Combined entries ignoring nil-vs-empty slice
// differences (the grouping fast path materializes lists directly; the slow
// path builds them through Combine).
func combinedEq(a, b delta.Combined) bool {
	if a.Node != b.Node || a.Inserted != b.Inserted || a.Deleted != b.Deleted {
		return false
	}
	if len(a.Ins) != len(b.Ins) || len(a.Del) != len(b.Del) {
		return false
	}
	for i := range a.Ins {
		if a.Ins[i] != b.Ins[i] {
			return false
		}
	}
	for i := range a.Del {
		if a.Del[i] != b.Del[i] {
			return false
		}
	}
	return true
}

// FuzzScanGrouping checks the scan's pass-2 grouping — including its
// single-record fast path and the parallel bucketed grouping — against a
// naive reference fold: collect every record per node in timestamp order and
// hand each group to delta.Combine. The fuzz input decodes to a sequence of
// transactions built through delta.Builder (so records carry exactly the
// invariants real commits produce); identical stores are scanned at worker
// counts 1, 2 and 8 and must all agree with the reference.
func FuzzScanGrouping(f *testing.F) {
	f.Add([]byte{0x00, 1, 2, 0x40, 0, 0, 0x10, 1, 2})       // ins, boundary, del
	f.Add([]byte{0x00, 1, 2, 0x00, 5, 2, 0x00, 9, 2})       // three nodes, one txn
	f.Add([]byte{0x30, 4, 0, 0x40, 0, 0, 0x20, 4, 0})       // node del, boundary, ins flag
	f.Add([]byte{0x00, 1, 1, 0x10, 1, 1, 0x40, 0, 0, 0x00, 1, 1}) // churn on one edge
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode: triples (op, node, arg). op high nibble %5 selects the
		// operation, low nibble feeds the weight; node/arg are reduced to
		// small ranges so transactions collide on nodes. Operations are
		// validity-filtered the way the graph API filters them (no duplicate
		// edge inserts, no deletes of absent objects, node IDs never
		// reused), so every decoded history is one real commits can
		// produce — the grouping fast path is only contractually defined
		// for such records.
		type nodeState struct {
			exists bool
			edges        map[uint64]bool
		}
		world := map[uint64]*nodeState{}
		at := func(n uint64) *nodeState {
			s, ok := world[n]
			if !ok {
				// Nodes start existing (pre-loaded graph) unless first
				// touched by an insert.
				s = &nodeState{exists: true, edges: map[uint64]bool{}}
				world[n] = s
			}
			return s
		}
		var txns []*delta.TxDelta
		b := delta.NewBuilder()
		endTxn := func() {
			if d := b.Build(mvto.TS(len(txns) + 1)); !d.Empty() {
				txns = append(txns, d)
			}
			b = delta.NewBuilder()
		}
		for i := 0; i+2 < len(data); i += 3 {
			kind := (data[i] >> 4) % 5
			w := float64(data[i]&0x0f) + 1
			node, arg := uint64(data[i+1]%32), uint64(data[i+2]%32)
			switch kind {
			case 0:
				if s := at(node); s.exists && !s.edges[arg] {
					s.edges[arg] = true
					b.InsertEdge(node, arg, w)
				}
			case 1:
				if s := at(node); s.exists && s.edges[arg] {
					delete(s.edges, arg)
					b.DeleteEdge(node, arg)
				}
			case 2:
				// Valid only for an untouched ID: node IDs are never
				// reused, and a previously touched ID already exists(ed).
				if _, ok := world[node]; !ok {
					world[node] = &nodeState{exists: true, edges: map[uint64]bool{}}
					b.InsertNode(node)
				}
			case 3:
				if s := at(node); s.exists {
					s.exists = false
					s.edges = map[uint64]bool{}
					b.DeleteNode(node)
				}
			case 4:
				endTxn()
			}
		}
		endTxn()
		if len(txns) == 0 {
			return
		}
		tp := mvto.TS(len(txns) + 1)

		// Reference fold: per-node groups in timestamp (= capture) order.
		perNode := map[uint64][]delta.NodeDelta{}
		records := 0
		for _, tx := range txns {
			for _, nd := range tx.Nodes {
				perNode[nd.Node] = append(perNode[nd.Node], nd)
				records++
			}
		}
		nodes := make([]uint64, 0, len(perNode))
		for n := range perNode {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		var want []delta.Combined
		for _, n := range nodes {
			if c := delta.Combine(n, perNode[n]); !c.Empty() {
				want = append(want, c)
			}
		}

		for _, workers := range []int{1, 2, 8} {
			s := NewVolatile()
			for _, tx := range txns {
				s.Capture(tx)
			}
			batch := s.ScanWorkers(tp, workers)
			if batch.Records != records {
				t.Fatalf("workers=%d: consumed %d records, want %d", workers, batch.Records, records)
			}
			if len(batch.Deltas) != len(want) {
				t.Fatalf("workers=%d: %d combined deltas, want %d\ngot  %+v\nwant %+v",
					workers, len(batch.Deltas), len(want), batch.Deltas, want)
			}
			for i := range want {
				if !combinedEq(batch.Deltas[i], want[i]) {
					t.Fatalf("workers=%d: delta %d differs\ngot  %+v\nwant %+v",
						workers, i, batch.Deltas[i], want[i])
				}
			}
		}
	})
}
