package deltastore

import (
	"path/filepath"
	"testing"

	"h2tap/internal/delta"
	"h2tap/internal/faultinject"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
	"h2tap/internal/vfs"
)

// TestPersistFailureLatchesAndFreezesDurableImage crashes the filesystem in
// the middle of a capture's mirror write. The store must latch the failure
// (PersistErr), keep serving the volatile side, stop touching PMem, and the
// frozen file must recover to exactly the pre-failure transaction boundary
// with Validate passing.
func TestPersistFailureLatchesAndFreezesDurableImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "delta.pool")
	ffs := faultinject.New(vfs.OS())
	pool, err := pmem.CreateOn(ffs, path, 8<<20, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewPersistent(pool)
	if err != nil {
		t.Fatal(err)
	}
	s.Capture(txd(1, delta.NodeDelta{Node: 1, Ins: []delta.Edge{{Dst: 2, W: 1}}}))
	if err := s.PersistErr(); err != nil {
		t.Fatalf("clean capture latched an error: %v", err)
	}

	// Crash mid-mirror of the second capture: some of its bytes land, but
	// no durable length advances past the first transaction.
	ffs.CrashAt(ffs.Ops()+2, faultinject.TearHalf)
	s.Capture(txd(2, delta.NodeDelta{Node: 2, Ins: []delta.Edge{{Dst: 3, W: 1}}}))
	if s.PersistErr() == nil {
		t.Fatal("mirror crash not latched")
	}

	// The volatile twin keeps serving (the engine can still propagate what
	// is in DRAM); the mirror is off, so this capture must not panic or
	// touch the crashed filesystem in a way that fails loudly.
	s.Capture(txd(3, delta.NodeDelta{Node: 3, Ins: []delta.Edge{{Dst: 4, W: 1}}}))
	if got := s.Records(); got != 3 {
		t.Fatalf("volatile records = %d, want 3", got)
	}

	// Recover from the frozen file: the durable image must be the first
	// transaction exactly, and internally consistent.
	pool2, err := pmem.Open(path, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	s2, err := OpenPersistent(pool2)
	if err != nil {
		t.Fatalf("recovery from frozen image: %v", err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("frozen image invalid: %v", err)
	}
	if got := s2.Records(); got != 1 {
		t.Fatalf("recovered %d records, want the pre-failure boundary (1)", got)
	}
}
