package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"h2tap/internal/faultinject"
	"h2tap/internal/graph"
	"h2tap/internal/vfs"
)

// commitN appends n one-node commits through the store so the log holds n
// real records, and returns the store.
func commitN(t *testing.T, l *Log, n int) *graph.Store {
	t.Helper()
	s := graph.NewStore()
	s.AddOpLogger(l)
	for i := 0; i < n; i++ {
		tx := s.Begin()
		if _, err := tx.AddNode("P", map[string]graph.Value{"i": graph.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestTornHeaderTolerated(t *testing.T) {
	l, path := openLog(t)
	commitN(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append half a header: the torn start of a third record.
	if err := os.WriteFile(path, append(append([]byte{}, whole...), 0x2a, 0x00, 0x00), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := graph.NewStore()
	st, err := ReplayFS(nil, path, s2)
	if err != nil {
		t.Fatalf("torn header must be tolerated: %v", err)
	}
	if !st.TornTail {
		t.Fatal("torn tail not reported")
	}
	if st.ValidLen != int64(len(whole)) {
		t.Fatalf("ValidLen = %d, want %d", st.ValidLen, len(whole))
	}
	if st.Records != 2 || s2.LiveNodes() != 2 {
		t.Fatalf("recovered %d records / %d nodes, want 2/2", st.Records, s2.LiveNodes())
	}
}

func TestTornPayloadTolerated(t *testing.T) {
	l, path := openLog(t)
	commitN(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Re-append the last record's header plus half its payload: a torn
	// in-flight append with a plausible size field.
	rec := whole[int64(len(whole))-tailRecordLen(t, whole):]
	torn := append(append([]byte{}, whole...), rec[:recordHeaderSize+(len(rec)-recordHeaderSize)/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := graph.NewStore()
	st, err := ReplayFS(nil, path, s2)
	if err != nil {
		t.Fatalf("torn payload must be tolerated: %v", err)
	}
	if !st.TornTail || st.ValidLen != int64(len(whole)) {
		t.Fatalf("TornTail=%v ValidLen=%d, want true/%d", st.TornTail, st.ValidLen, len(whole))
	}
	if s2.LiveNodes() != 2 {
		t.Fatalf("recovered %d nodes, want 2", s2.LiveNodes())
	}
}

// tailRecordLen returns the byte length of the last record in a valid log.
func tailRecordLen(t *testing.T, data []byte) int64 {
	t.Helper()
	off := int64(0)
	last := int64(0)
	for off < int64(len(data)) {
		size := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		last = recordHeaderSize + size
		off += last
	}
	if off != int64(len(data)) {
		t.Fatalf("log not a whole number of records")
	}
	return last
}

func TestInteriorCorruptionDetected(t *testing.T) {
	l, path := openLog(t)
	commitN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flipAt := func(name string, i int64) {
		t.Run(name, func(t *testing.T) {
			data := append([]byte{}, whole...)
			data[i] ^= 0xff
			p := filepath.Join(t.TempDir(), "bad.wal")
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			s2 := graph.NewStore()
			_, err := ReplayFS(nil, p, s2)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("interior corruption replayed with err=%v, want ErrCorrupt", err)
			}
		})
	}
	// A payload byte of the SECOND of three records: checksum mismatch with
	// a valid record after it — committed history is damaged, not torn.
	first := tailRecordLenAt(t, whole, 0)
	second := tailRecordLenAt(t, whole, first)
	flipAt("interior-payload", first+recordHeaderSize+second/2)
	// The second record's size field: the claimed payload overruns into the
	// third record; lookahead still finds valid records in the remainder.
	flipAt("interior-size", first)
	// The second record's checksum field.
	flipAt("interior-crc", first+4)
}

// TestCorruptSizeCannotSkipInteriorDamage rewrites the second record's size
// field so it claims exactly the rest of the file — plausible and in-bounds.
// A corruption check that trusted the claimed size would scan from past the
// last record, find nothing, and misread the damage as a torn tail,
// silently dropping the two committed records that follow. Replay must scan
// from the damaged record's header instead, find the valid third record
// inside the claimed window, and return ErrCorrupt.
func TestCorruptSizeCannotSkipInteriorDamage(t *testing.T) {
	l, path := openLog(t)
	commitN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := tailRecordLenAt(t, whole, 0)
	data := append([]byte{}, whole...)
	claimed := uint32(int64(len(data)) - first - recordHeaderSize)
	binary.LittleEndian.PutUint32(data[first:], claimed)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := graph.NewStore()
	if _, err := ReplayFS(nil, path, s2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt size field replayed with err=%v, want ErrCorrupt", err)
	}
}

// tailRecordLenAt returns the length of the record starting at off.
func tailRecordLenAt(t *testing.T, data []byte, off int64) int64 {
	t.Helper()
	if off+recordHeaderSize > int64(len(data)) {
		t.Fatalf("no record at %d", off)
	}
	size := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
	return recordHeaderSize + size
}

func TestTrimDiscardsTornTail(t *testing.T) {
	l, path := openLog(t)
	commitN(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := graph.NewStore()
	st, err := ReplayFS(nil, path, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornTail {
		t.Fatal("torn tail not reported")
	}
	if err := Trim(nil, path, st.ValidLen); err != nil {
		t.Fatal(err)
	}
	// Appends after a trim land on a clean boundary and replay fully.
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s3 := graph.NewStore()
	s3.Restore(nil, nil, st.MaxTS)
	s3.AddOpLogger(l2)
	tx := s3.Begin()
	tx.AddNode("Q", nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	s4 := graph.NewStore()
	st2, err := ReplayFS(nil, path, s4)
	if err != nil {
		t.Fatalf("replay after trim+append: %v", err)
	}
	if st2.TornTail || st2.Records != 2 {
		t.Fatalf("TornTail=%v Records=%d, want false/2", st2.TornTail, st2.Records)
	}
}

// TestFailedAppendRewindsAndLatches injects a write failure into one
// append: the commit must fail, the log must refuse further appends with
// ErrLogFailed, and the file must replay to exactly the pre-failure prefix
// (no partial record in the interior).
func TestFailedAppendRewindsAndLatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.wal")
	ffs := faultinject.New(vfs.OS())
	l, err := Open(path, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	s := commitN(t, l, 2)

	// Next mutating operation (the third commit's single append write)
	// fails.
	ffs.FailAt(ffs.Ops() + 1)
	tx := s.Begin()
	tx.AddNode("P", nil)
	if err := tx.Commit(); err == nil {
		t.Fatal("commit with failed append reported success")
	}

	// The log is latched: clean appends are refused, Err reports it.
	tx2 := s.Begin()
	tx2.AddNode("P", nil)
	if err := tx2.Commit(); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append on failed log: %v, want ErrLogFailed", err)
	}
	if l.Err() == nil {
		t.Fatal("Err() nil on failed log")
	}
	l.Close()

	s2 := graph.NewStore()
	st, err := ReplayFS(nil, path, s2)
	if err != nil {
		t.Fatalf("replay after failed append: %v", err)
	}
	if st.Records != 2 || st.TornTail {
		t.Fatalf("Records=%d TornTail=%v, want 2/false (rewound to record boundary)", st.Records, st.TornTail)
	}
}

// TestRotateUnderConcurrentCommits hammers the log with committing
// goroutines while rotating it (Rotate takes the store's commit barrier
// itself, exactly as DB.Checkpoint relies on) and checks that replay
// recovers every committed transaction — none lost to the swap, no
// maintenance window needed.
func TestRotateUnderConcurrentCommits(t *testing.T) {
	l, path := openLog(t)
	s := graph.NewStore()
	s.AddOpLogger(l)

	const workers, perWorker = 4, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := s.Begin()
				if _, err := tx.AddNode("W", nil); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if err := l.Rotate(s); err != nil {
				t.Errorf("rotate %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := graph.NewStore()
	if _, err := ReplayFS(nil, path, s2); err != nil {
		t.Fatal(err)
	}
	if got := s2.LiveNodes(); got != workers*perWorker {
		t.Fatalf("recovered %d nodes, want %d", got, workers*perWorker)
	}
}
