package wal

import (
	"bytes"
	"testing"

	"h2tap/internal/graph"
)

// FuzzDecodeCommit hardens the log decoder against arbitrary bytes: it must
// never panic, and anything it accepts must re-encode to the same bytes
// (round-trip stability).
func FuzzDecodeCommit(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(encodeCommit(nil, 7, []graph.LoggedOp{
		{Kind: graph.OpAddNode, ID: 1, Label: "P", Props: map[string]graph.Value{"k": graph.Int(3)}},
		{Kind: graph.OpAddRel, ID: 2, Src: 1, Dst: 0, Label: "e", Weight: 1.5},
		{Kind: graph.OpDeleteRel, ID: 2},
		{Kind: graph.OpSetNodeProp, ID: 1, Key: "k", Val: graph.Str("v")},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		ts, ops, err := decodeCommit(b)
		if err != nil {
			return
		}
		// Accepted input must round-trip byte-for-byte unless it contains
		// props (map iteration order varies); re-decode instead.
		re := encodeCommit(nil, ts, ops)
		ts2, ops2, err := decodeCommit(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if ts2 != ts || len(ops2) != len(ops) {
			t.Fatalf("round trip changed shape: %d/%d ops, ts %d/%d", len(ops), len(ops2), ts, ts2)
		}
		hasProps := false
		for _, op := range ops {
			if len(op.Props) > 0 {
				hasProps = true
			}
		}
		if !hasProps && !bytes.Equal(re, b) {
			t.Fatalf("accepted record does not round-trip:\n in  %x\n out %x", b, re)
		}
	})
}
