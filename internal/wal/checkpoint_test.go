package wal

import (
	"os"
	"path/filepath"
	"testing"

	"h2tap/internal/csr"
	"h2tap/internal/graph"
)

func TestExportRestoreRoundTrip(t *testing.T) {
	s := graph.NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("Person", map[string]graph.Value{"name": graph.Str("ada")})
	b, _ := tx.AddNode("Post", nil)
	rid, _ := tx.AddRel(a, b, "likes", 3)
	tx.SetRelProp(rid, "since", graph.Int(2021))
	tx.Commit()
	del := s.Begin()
	c, _ := del.AddNode("Person", nil)
	_ = c
	del.Commit()
	d2 := s.Begin()
	d2.DeleteNode(c)
	d2.Commit()

	ts := s.Oracle().LastCommitted()
	nodes, rels := s.ExportAt(ts)
	if len(nodes) != 2 || len(rels) != 1 {
		t.Fatalf("export = %d nodes, %d rels", len(nodes), len(rels))
	}
	if rels[0].Props["since"].AsInt() != 2021 {
		t.Fatalf("rel props lost: %+v", rels[0].Props)
	}

	s2 := graph.NewStore()
	if err := s2.Restore(nodes, rels, ts); err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(csr.Build(s2, s2.Oracle().LastCommitted()), csr.Build(s, ts)) {
		t.Fatal("restored topology differs")
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "graph.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewStore()
	s.AddOpLogger(l)

	// Generate churn: many inserts and deletes that a compacted log
	// collapses away.
	var rids []graph.RelID
	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	tx.Commit()
	for i := 0; i < 200; i++ {
		tx := s.Begin()
		rid, err := tx.AddRel(a, b, "k", float64(i))
		if err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		tx2 := s.Begin()
		if err := tx2.DeleteRel(rid); err != nil {
			t.Fatal(err)
		}
		tx2.Commit()
		rids = append(rids, rid)
	}
	before, _ := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Compact.
	nl, err := Checkpoint(path, s, s.Oracle().LastCommitted(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := nl.Size()
	if after >= before/4 {
		t.Fatalf("compaction shrunk %d → %d only", before, after)
	}
	// Post-checkpoint commits append to the new log (the closed old handle
	// is replaced, not accumulated).
	s.SetOpLoggers(nl)
	tx3 := s.Begin()
	if _, err := tx3.AddRel(a, b, "k", 42); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	nl.Close()

	// Recovery replays snapshot + tail.
	s2 := graph.NewStore()
	if _, err := Replay(path, s2); err != nil {
		t.Fatal(err)
	}
	ts := s2.Oracle().LastCommitted()
	if s2.LiveNodes() != 2 || s2.LiveRels() != 1 {
		t.Fatalf("recovered live = %d/%d", s2.LiveNodes(), s2.LiveRels())
	}
	edges := s2.OutEdgesAt(a, ts)
	if len(edges) != 1 || edges[0].W != 42 {
		t.Fatalf("tail commit lost: %+v", edges)
	}
	// ID space preserved: the next rel slot continues beyond the churn.
	tx4 := s2.Begin()
	rid, err := tx4.AddRel(b, a, "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rid <= rids[len(rids)-1] {
		t.Fatalf("post-recovery rel id %d reuses churned id space", rid)
	}
	tx4.Commit()
}

// TestRotateIgnoresStaleTemp leaves a .tmp behind — as a checkpoint that
// crashed before its rename would — and checks the next rotation truncates
// it: stale records must never be renamed into the live log, where they
// would replay as resurrected old state or a corrupt prefix.
func TestRotateIgnoresStaleTemp(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stale func(t *testing.T, tmp string)
	}{
		{"complete-old-snapshot", func(t *testing.T, tmp string) {
			ol, err := Open(tmp, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ss := graph.NewStore()
			ss.AddOpLogger(ol)
			for i := 0; i < 5; i++ {
				tx := ss.Begin()
				if _, err := tx.AddNode("Stale", nil); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if err := ol.Close(); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn-garbage", func(t *testing.T, tmp string) {
			if err := os.WriteFile(tmp, []byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "graph.wal")
			l, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			s := graph.NewStore()
			s.AddOpLogger(l)
			tx := s.Begin()
			tx.AddNode("P", nil)
			tx.AddNode("P", nil)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			tc.stale(t, path+".tmp")

			if err := l.Rotate(s); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			s2 := graph.NewStore()
			st, err := ReplayFS(nil, path, s2)
			if err != nil {
				t.Fatalf("replay after rotate over stale temp: %v", err)
			}
			if st.Records != 1 || st.TornTail || s2.LiveNodes() != 2 {
				t.Fatalf("Records=%d TornTail=%v nodes=%d, want 1/false/2 (stale temp bytes leaked into the log)", st.Records, st.TornTail, s2.LiveNodes())
			}
		})
	}
}

func TestCheckpointOnDoubleRegisteredStore(t *testing.T) {
	// The facade registers one logger for the store's lifetime; this test
	// covers the documented pattern of swapping in the checkpointed log.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.wal")
	l, _ := Open(path, Options{})
	s := graph.NewStore()
	s.AddOpLogger(l)
	tx := s.Begin()
	tx.AddNode("P", nil)
	tx.Commit()
	l.Close()
	nl, err := Checkpoint(path, s, s.Oracle().LastCommitted(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	s2 := graph.NewStore()
	if _, err := Replay(path, s2); err != nil {
		t.Fatal(err)
	}
	if s2.LiveNodes() != 1 {
		t.Fatal("checkpointed snapshot wrong")
	}
}
