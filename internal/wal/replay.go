package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
	"h2tap/internal/vfs"
)

// nodeState / relState hold the folded final state of one object while
// scanning the log.
type nodeState struct {
	alive bool
	label string
	props map[string]graph.Value
}

type relState struct {
	alive    bool
	src, dst uint64
	label    string
	weight   float64
	props    map[string]graph.Value
}

// ReplayStats describes the outcome of a replay.
type ReplayStats struct {
	// MaxTS is the highest replayed transaction timestamp.
	MaxTS mvto.TS
	// Records is the number of valid commit records applied.
	Records int
	// ValidLen is the byte offset of the end of the last valid record — the
	// length the log should be trimmed to before appending resumes.
	ValidLen int64
	// TornTail reports that bytes beyond ValidLen were discarded as a torn
	// tail (an in-flight commit interrupted by the crash).
	TornTail bool
	// InDoubt lists the distributed transactions whose prepare record had no
	// local decision record — the crash hit between the 2PC phases. The
	// decide callback's answer (the coordinator's durable decision) was
	// applied; presumed-abort without one.
	InDoubt []uint64
	// InDoubtCommitted counts the InDoubt transactions the decide callback
	// resolved to commit.
	InDoubtCommitted int
	// MaxGtx is the highest distributed transaction ID seen in any prepare
	// or decision record (for resuming the coordinator's gtx counter).
	MaxGtx uint64
}

// Replay reads the log at path, folds every valid commit record into final
// object states, materializes them into the (empty) store, and returns the
// highest replayed timestamp. A torn or truncated tail ends the replay
// cleanly; interior corruption returns ErrCorrupt.
func Replay(path string, s *graph.Store) (mvto.TS, error) {
	st, err := ReplayFS(nil, path, s)
	return st.MaxTS, err
}

// ReplayFS is Replay on an injectable filesystem, reporting replay stats.
//
// Corruption policy: a record that fails its checksum (or is cut short) at
// the physical end of the log is a torn tail — exactly the state an
// interrupted append leaves — and is discarded. The same failure with a
// valid record *after* it is interior corruption: committed transactions
// would be silently dropped while later ones survive, breaking the
// committed-prefix guarantee, so replay returns ErrCorrupt instead of
// guessing. The check scans forward from immediately after the damaged
// record's header — not from where its (possibly corrupted) size field says
// the record ends, which a bit-flip could push past a valid following
// record. This errs conservative: a torn tail whose partial payload happens
// to embed a decodable record is reported as corruption rather than
// trimmed, instead of interior damage ever being silently dropped.
//
// Records are streamed through a bounded buffer — recovery memory is
// O(largest record) plus the folded graph state, not O(log size); only the
// corruption check reads the remainder of the log at once.
func ReplayFS(fsys vfs.FS, path string, s *graph.Store) (ReplayStats, error) {
	return ReplayResolved(fsys, path, s, nil)
}

// ReplayResolved is ReplayFS for a participant shard of a 2PC cluster:
// prepare records are held aside until a decision record resolves them, and
// transactions still in doubt at the end of the log are resolved by decide —
// the coordinator's durable decision — or presumed aborted when decide is
// nil or reports no decision.
//
// Fold order: a prepare left in doubt by a crash held its MVTO write locks
// until the end of that incarnation's history, but after an ONLINE shard
// recovery the replacement incarnation serves on — later records in the
// same log legitimately touch the in-doubt transaction's objects. Folding
// its operations at end-of-log would clobber those newer committed writes,
// so a coordinator-committed in-doubt transaction is folded at its
// timestamp position instead: immediately before the first later record,
// using the shard-local timestamps both carry. (Recovery also resumes the
// timestamp oracle past every timestamp seen in the log — applied or not —
// so cross-incarnation timestamps never collide; see the recPrepare case.)
//
// Decision authority: when decide is available it overrides a local abort
// decision record. A participant appends a local abort only while the
// coordinator's commit decision was never acknowledged; if that decision
// nevertheless became durable (a lost ack — crash after a full append), the
// coordinator log is the commit point and every shard's recovery must obey
// it uniformly, or a transaction could resurrect on the shards that folded
// it by timestamp and stay aborted on the ones that saw their local abort
// record first.
func ReplayResolved(fsys vfs.FS, path string, s *graph.Store, decide func(gtx uint64) bool) (ReplayStats, error) {
	if fsys == nil {
		fsys = vfs.OS()
	}
	var st ReplayStats
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return st, fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	nodes := make(map[uint64]*nodeState)
	rels := make(map[uint64]*relState)
	var maxTS mvto.TS
	records := 0

	// Pending 2PC transactions: prepared but not yet decided at the current
	// scan position, in prepare order for deterministic end-of-log folding.
	// applied marks a transaction already folded at its timestamp position
	// (coordinator-committed, passed by a later record); it must not fold
	// again when its decision record or the end of the log arrives.
	type prepared struct {
		gtx     uint64
		ts      mvto.TS
		ops     []graph.LoggedOp
		applied bool
	}
	var pending []prepared
	applyOps := func(ts mvto.TS, ops []graph.LoggedOp) {
		if ts > maxTS {
			maxTS = ts
		}
		records++
		for i := range ops {
			foldOp(nodes, rels, &ops[i])
		}
	}

	// tailOrCorrupt decides the fate of a damaged record at off: torn tail
	// if nothing decodable follows the record's header, interior corruption
	// otherwise. after holds every byte read beyond the header so far; the
	// rest of the file is drained to complete the scan window.
	tailOrCorrupt := func(off int64, after []byte, what string) error {
		rest, err := io.ReadAll(r)
		if err != nil {
			return fmt.Errorf("wal: replay read: %w", err)
		}
		scan := make([]byte, 0, len(after)+len(rest))
		scan = append(append(scan, after...), rest...)
		if scanForRecord(scan) {
			return fmt.Errorf("%w: %s at offset %d before further valid records", ErrCorrupt, what, off)
		}
		st.TornTail = true
		return nil
	}

	var off int64
	hdr := make([]byte, recordHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				break // clean end of log
			}
			if err == io.ErrUnexpectedEOF {
				st.TornTail = true // torn header
				break
			}
			return st, fmt.Errorf("wal: replay read: %w", err)
		}
		size := int(binary.LittleEndian.Uint32(hdr))
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if size > 1<<30 {
			if err := tailOrCorrupt(off, nil, "implausible record size"); err != nil {
				return st, err
			}
			break
		}
		if cap(payload) < size {
			payload = make([]byte, size)
		}
		payload = payload[:size]
		n, err := io.ReadFull(r, payload)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Record extends past the physical end of the log: a torn tail,
			// unless a corrupted size field is hiding valid records inside
			// the bytes it claims.
			if err := tailOrCorrupt(off, payload[:n], "over-long record"); err != nil {
				return st, err
			}
			break
		} else if err != nil {
			return st, fmt.Errorf("wal: replay read: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if err := tailOrCorrupt(off, payload, "checksum mismatch"); err != nil {
				return st, err
			}
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return st, err
		}
		switch rec.kind {
		case recPrepare:
			if rec.gtx > st.MaxGtx {
				st.MaxGtx = rec.gtx
			}
			// Resume the oracle past this timestamp even if the transaction
			// ends up presumed-aborted: the next incarnation must never hand
			// out a timestamp at or below one already written to the log, or
			// a later replay could fold the resurrected transaction above
			// writes that semantically superseded it.
			if rec.ts > maxTS {
				maxTS = rec.ts
			}
			pending = append(pending, prepared{gtx: rec.gtx, ts: rec.ts, ops: rec.ops})
		case recDecision:
			if rec.gtx > st.MaxGtx {
				st.MaxGtx = rec.gtx
			}
			// The coordinator's durable decision overrides a local abort
			// record (see the decision-authority note above).
			commit := rec.commit
			if !commit && decide != nil && decide(rec.gtx) {
				commit = true
			}
			for i := range pending {
				if pending[i].gtx == rec.gtx {
					if commit && !pending[i].applied {
						applyOps(pending[i].ts, pending[i].ops)
					}
					pending = append(pending[:i], pending[i+1:]...)
					break
				}
			}
		default:
			// Fold coordinator-committed pending transactions that precede
			// this record in timestamp order first: after an online recovery
			// they no longer hold their write locks, so this record may
			// overwrite their objects and must fold after them.
			for i := range pending {
				if !pending[i].applied && pending[i].ts < rec.ts && decide != nil && decide(pending[i].gtx) {
					applyOps(pending[i].ts, pending[i].ops)
					pending[i].applied = true
				}
			}
			applyOps(rec.ts, rec.ops)
		}
		off += int64(recordHeaderSize + size)
	}
	st.ValidLen = off

	// Resolve transactions left in doubt by a crash between prepare and the
	// local decision: the coordinator's decision is authoritative, absence of
	// one means it never committed anywhere (presumed abort).
	for _, p := range pending {
		st.InDoubt = append(st.InDoubt, p.gtx)
		if p.applied {
			st.InDoubtCommitted++
			continue
		}
		if decide != nil && decide(p.gtx) {
			applyOps(p.ts, p.ops)
			st.InDoubtCommitted++
		}
	}

	// Materialize the fold.
	var rn []graph.RestoredNode
	for id, st := range nodes {
		if st.alive {
			rn = append(rn, graph.RestoredNode{ID: id, Label: st.label, Props: st.props})
		}
	}
	var rr []graph.RestoredRel
	for id, st := range rels {
		if !st.alive {
			continue
		}
		// A relationship whose endpoint died without an explicit delete op
		// cannot exist (the cascade always logs the rel deletes, so this is
		// belt and braces for hand-written logs).
		if n, ok := nodes[st.src]; !ok || !n.alive {
			continue
		}
		if n, ok := nodes[st.dst]; !ok || !n.alive {
			continue
		}
		rr = append(rr, graph.RestoredRel{
			ID: id, Src: st.src, Dst: st.dst,
			Label: st.label, Weight: st.weight, Props: st.props,
		})
	}
	sort.Slice(rn, func(i, j int) bool { return rn[i].ID < rn[j].ID })
	sort.Slice(rr, func(i, j int) bool { return rr[i].ID < rr[j].ID })
	if err := s.Restore(rn, rr, maxTS); err != nil {
		return st, fmt.Errorf("wal: replay restore: %w", err)
	}
	st.MaxTS = maxTS
	st.Records = records
	return st, nil
}

// recordHeaderSize is the fixed per-record header: u32 payload size + u32
// payload CRC.
const recordHeaderSize = 8

// scanForRecord reports whether any byte offset in b starts a fully valid
// record (plausible size, complete payload, matching checksum, decodable).
// Used to distinguish interior corruption from a torn tail: a torn tail is
// the end of history, so nothing valid can follow it.
func scanForRecord(b []byte) bool {
	for off := 0; off+recordHeaderSize <= len(b); off++ {
		size := int(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if size > 1<<30 || off+recordHeaderSize+size > len(b) {
			continue
		}
		payload := b[off+recordHeaderSize : off+recordHeaderSize+size]
		if crc32.ChecksumIEEE(payload) != sum {
			continue
		}
		if _, err := decodeRecord(payload); err == nil {
			return true
		}
	}
	return false
}

func foldOp(nodes map[uint64]*nodeState, rels map[uint64]*relState, op *graph.LoggedOp) {
	switch op.Kind {
	case graph.OpAddNode:
		st := &nodeState{alive: true, label: op.Label}
		if len(op.Props) > 0 {
			st.props = make(map[string]graph.Value, len(op.Props))
			for k, v := range op.Props {
				st.props[k] = v
			}
		}
		nodes[op.ID] = st
	case graph.OpAddRel:
		rels[op.ID] = &relState{
			alive: true, src: op.Src, dst: op.Dst,
			label: op.Label, weight: op.Weight,
		}
	case graph.OpDeleteNode:
		if st, ok := nodes[op.ID]; ok {
			st.alive = false
		}
	case graph.OpDeleteRel:
		if st, ok := rels[op.ID]; ok {
			st.alive = false
		}
	case graph.OpSetNodeProp:
		if st, ok := nodes[op.ID]; ok && st.alive {
			if st.props == nil {
				st.props = make(map[string]graph.Value)
			}
			st.props[op.Key] = op.Val
		}
	case graph.OpSetRelProp:
		if st, ok := rels[op.ID]; ok && st.alive {
			if st.props == nil {
				st.props = make(map[string]graph.Value)
			}
			st.props[op.Key] = op.Val
		}
	case graph.OpSetRelWeight:
		if st, ok := rels[op.ID]; ok && st.alive {
			st.weight = op.Weight
		}
	}
}
