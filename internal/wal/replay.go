package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
	"h2tap/internal/vfs"
)

// nodeState / relState hold the folded final state of one object while
// scanning the log.
type nodeState struct {
	alive bool
	label string
	props map[string]graph.Value
}

type relState struct {
	alive    bool
	src, dst uint64
	label    string
	weight   float64
	props    map[string]graph.Value
}

// ReplayStats describes the outcome of a replay.
type ReplayStats struct {
	// MaxTS is the highest replayed transaction timestamp.
	MaxTS mvto.TS
	// Records is the number of valid commit records applied.
	Records int
	// ValidLen is the byte offset of the end of the last valid record — the
	// length the log should be trimmed to before appending resumes.
	ValidLen int64
	// TornTail reports that bytes beyond ValidLen were discarded as a torn
	// tail (an in-flight commit interrupted by the crash).
	TornTail bool
}

// Replay reads the log at path, folds every valid commit record into final
// object states, materializes them into the (empty) store, and returns the
// highest replayed timestamp. A torn or truncated tail ends the replay
// cleanly; interior corruption returns ErrCorrupt.
func Replay(path string, s *graph.Store) (mvto.TS, error) {
	st, err := ReplayFS(nil, path, s)
	return st.MaxTS, err
}

// ReplayFS is Replay on an injectable filesystem, reporting replay stats.
//
// Corruption policy: a record that fails its checksum (or is cut short) at
// the physical end of the log is a torn tail — exactly the state an
// interrupted append leaves — and is discarded. The same failure with a
// valid record *after* it is interior corruption: committed transactions
// would be silently dropped while later ones survive, breaking the
// committed-prefix guarantee, so replay returns ErrCorrupt instead of
// guessing. The check scans forward from the bad record for any decodable
// record (a superset of one-record lookahead, so a corrupted size field
// cannot disguise interior damage as a tail).
func ReplayFS(fsys vfs.FS, path string, s *graph.Store) (ReplayStats, error) {
	if fsys == nil {
		fsys = vfs.OS()
	}
	var st ReplayStats
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return st, fmt.Errorf("wal: replay open: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return st, fmt.Errorf("wal: replay read: %w", err)
	}

	nodes := make(map[uint64]*nodeState)
	rels := make(map[uint64]*relState)
	var maxTS mvto.TS
	records := 0

	off := 0
	for {
		if off+recordHeaderSize > len(data) {
			st.TornTail = off < len(data)
			break // EOF or torn header: end of valid log
		}
		size := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		bodyOff := off + recordHeaderSize
		if size > 1<<30 || bodyOff+size > len(data) {
			// Implausible or over-long size: a torn tail only if no valid
			// record hides in the remaining bytes.
			if scanForRecord(data[bodyOff:]) {
				return st, fmt.Errorf("%w: damaged record header at offset %d before further valid records", ErrCorrupt, off)
			}
			st.TornTail = true
			break
		}
		payload := data[bodyOff : bodyOff+size]
		if crc32.ChecksumIEEE(payload) != sum {
			if scanForRecord(data[bodyOff+size:]) {
				return st, fmt.Errorf("%w: checksum mismatch at offset %d before further valid records", ErrCorrupt, off)
			}
			st.TornTail = true
			break
		}
		ts, ops, err := decodeCommit(payload)
		if err != nil {
			return st, err
		}
		if ts > maxTS {
			maxTS = ts
		}
		records++
		for i := range ops {
			foldOp(nodes, rels, &ops[i])
		}
		off = bodyOff + size
	}
	st.ValidLen = int64(off)

	// Materialize the fold.
	var rn []graph.RestoredNode
	for id, st := range nodes {
		if st.alive {
			rn = append(rn, graph.RestoredNode{ID: id, Label: st.label, Props: st.props})
		}
	}
	var rr []graph.RestoredRel
	for id, st := range rels {
		if !st.alive {
			continue
		}
		// A relationship whose endpoint died without an explicit delete op
		// cannot exist (the cascade always logs the rel deletes, so this is
		// belt and braces for hand-written logs).
		if n, ok := nodes[st.src]; !ok || !n.alive {
			continue
		}
		if n, ok := nodes[st.dst]; !ok || !n.alive {
			continue
		}
		rr = append(rr, graph.RestoredRel{
			ID: id, Src: st.src, Dst: st.dst,
			Label: st.label, Weight: st.weight, Props: st.props,
		})
	}
	sort.Slice(rn, func(i, j int) bool { return rn[i].ID < rn[j].ID })
	sort.Slice(rr, func(i, j int) bool { return rr[i].ID < rr[j].ID })
	if err := s.Restore(rn, rr, maxTS); err != nil {
		return st, fmt.Errorf("wal: replay restore: %w", err)
	}
	st.MaxTS = maxTS
	st.Records = records
	return st, nil
}

// recordHeaderSize is the fixed per-record header: u32 payload size + u32
// payload CRC.
const recordHeaderSize = 8

// scanForRecord reports whether any byte offset in b starts a fully valid
// record (plausible size, complete payload, matching checksum, decodable).
// Used to distinguish interior corruption from a torn tail: a torn tail is
// the end of history, so nothing valid can follow it.
func scanForRecord(b []byte) bool {
	for off := 0; off+recordHeaderSize <= len(b); off++ {
		size := int(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if size > 1<<30 || off+recordHeaderSize+size > len(b) {
			continue
		}
		payload := b[off+recordHeaderSize : off+recordHeaderSize+size]
		if crc32.ChecksumIEEE(payload) != sum {
			continue
		}
		if _, _, err := decodeCommit(payload); err == nil {
			return true
		}
	}
	return false
}

func foldOp(nodes map[uint64]*nodeState, rels map[uint64]*relState, op *graph.LoggedOp) {
	switch op.Kind {
	case graph.OpAddNode:
		st := &nodeState{alive: true, label: op.Label}
		if len(op.Props) > 0 {
			st.props = make(map[string]graph.Value, len(op.Props))
			for k, v := range op.Props {
				st.props[k] = v
			}
		}
		nodes[op.ID] = st
	case graph.OpAddRel:
		rels[op.ID] = &relState{
			alive: true, src: op.Src, dst: op.Dst,
			label: op.Label, weight: op.Weight,
		}
	case graph.OpDeleteNode:
		if st, ok := nodes[op.ID]; ok {
			st.alive = false
		}
	case graph.OpDeleteRel:
		if st, ok := rels[op.ID]; ok {
			st.alive = false
		}
	case graph.OpSetNodeProp:
		if st, ok := nodes[op.ID]; ok && st.alive {
			if st.props == nil {
				st.props = make(map[string]graph.Value)
			}
			st.props[op.Key] = op.Val
		}
	case graph.OpSetRelProp:
		if st, ok := rels[op.ID]; ok && st.alive {
			if st.props == nil {
				st.props = make(map[string]graph.Value)
			}
			st.props[op.Key] = op.Val
		}
	case graph.OpSetRelWeight:
		if st, ok := rels[op.ID]; ok && st.alive {
			st.weight = op.Weight
		}
	}
}
