package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
)

// nodeState / relState hold the folded final state of one object while
// scanning the log.
type nodeState struct {
	alive bool
	label string
	props map[string]graph.Value
}

type relState struct {
	alive    bool
	src, dst uint64
	label    string
	weight   float64
	props    map[string]graph.Value
}

// Replay reads the log at path, folds every valid commit record into final
// object states, materializes them into the (empty) store, and returns the
// highest replayed timestamp. A torn or truncated tail ends the replay
// cleanly; interior corruption returns ErrCorrupt.
func Replay(path string, s *graph.Store) (mvto.TS, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()

	nodes := make(map[uint64]*nodeState)
	rels := make(map[uint64]*relState)
	var maxTS mvto.TS
	records := 0

	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			break // EOF or torn header: end of valid log
		}
		size := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if size > 1<<30 {
			return 0, fmt.Errorf("%w: record size %d", ErrCorrupt, size)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload: treat as tail
		}
		if crc32.ChecksumIEEE(payload) != sum {
			// A checksum mismatch on the *last* record is a torn tail; in
			// the middle it would be interior corruption, but distinguishing
			// requires lookahead — stop replay either way, matching the
			// "prefix of committed transactions" guarantee.
			break
		}
		ts, ops, err := decodeCommit(payload)
		if err != nil {
			return 0, err
		}
		if ts > maxTS {
			maxTS = ts
		}
		records++
		for i := range ops {
			foldOp(nodes, rels, &ops[i])
		}
	}

	// Materialize the fold.
	var rn []graph.RestoredNode
	for id, st := range nodes {
		if st.alive {
			rn = append(rn, graph.RestoredNode{ID: id, Label: st.label, Props: st.props})
		}
	}
	var rr []graph.RestoredRel
	for id, st := range rels {
		if !st.alive {
			continue
		}
		// A relationship whose endpoint died without an explicit delete op
		// cannot exist (the cascade always logs the rel deletes, so this is
		// belt and braces for hand-written logs).
		if n, ok := nodes[st.src]; !ok || !n.alive {
			continue
		}
		if n, ok := nodes[st.dst]; !ok || !n.alive {
			continue
		}
		rr = append(rr, graph.RestoredRel{
			ID: id, Src: st.src, Dst: st.dst,
			Label: st.label, Weight: st.weight, Props: st.props,
		})
	}
	sort.Slice(rn, func(i, j int) bool { return rn[i].ID < rn[j].ID })
	sort.Slice(rr, func(i, j int) bool { return rr[i].ID < rr[j].ID })
	if err := s.Restore(rn, rr, maxTS); err != nil {
		return 0, fmt.Errorf("wal: replay restore: %w", err)
	}
	return maxTS, nil
}

func foldOp(nodes map[uint64]*nodeState, rels map[uint64]*relState, op *graph.LoggedOp) {
	switch op.Kind {
	case graph.OpAddNode:
		st := &nodeState{alive: true, label: op.Label}
		if len(op.Props) > 0 {
			st.props = make(map[string]graph.Value, len(op.Props))
			for k, v := range op.Props {
				st.props[k] = v
			}
		}
		nodes[op.ID] = st
	case graph.OpAddRel:
		rels[op.ID] = &relState{
			alive: true, src: op.Src, dst: op.Dst,
			label: op.Label, weight: op.Weight,
		}
	case graph.OpDeleteNode:
		if st, ok := nodes[op.ID]; ok {
			st.alive = false
		}
	case graph.OpDeleteRel:
		if st, ok := rels[op.ID]; ok {
			st.alive = false
		}
	case graph.OpSetNodeProp:
		if st, ok := nodes[op.ID]; ok && st.alive {
			if st.props == nil {
				st.props = make(map[string]graph.Value)
			}
			st.props[op.Key] = op.Val
		}
	case graph.OpSetRelProp:
		if st, ok := rels[op.ID]; ok && st.alive {
			if st.props == nil {
				st.props = make(map[string]graph.Value)
			}
			st.props[op.Key] = op.Val
		}
	case graph.OpSetRelWeight:
		if st, ok := rels[op.ID]; ok && st.alive {
			st.weight = op.Weight
		}
	}
}
