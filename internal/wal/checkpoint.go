package wal

import (
	"fmt"
	"os"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
)

// Checkpoint compacts the log: it exports the store's committed snapshot at
// ts, writes it as a single synthetic commit record into a fresh log file,
// and atomically renames it over path. Replaying the compacted log yields
// exactly the snapshot, and subsequent commits append after it — the
// standard snapshot-plus-tail recovery scheme that keeps an append-only log
// from growing without bound.
//
// The caller must quiesce writers to the log being replaced (the h2tap
// facade checkpoints from its maintenance path; tests call it directly).
// The returned Log is open for appending and replaces the old handle.
func Checkpoint(path string, s *graph.Store, ts mvto.TS, opts Options) (*Log, error) {
	nodes, rels := s.ExportAt(ts)
	ops := make([]graph.LoggedOp, 0, len(nodes)+len(rels))
	for i := range nodes {
		ops = append(ops, graph.LoggedOp{
			Kind: graph.OpAddNode, ID: nodes[i].ID,
			Label: nodes[i].Label, Props: nodes[i].Props,
		})
	}
	for i := range rels {
		r := &rels[i]
		ops = append(ops, graph.LoggedOp{
			Kind: graph.OpAddRel, ID: r.ID,
			Src: r.Src, Dst: r.Dst, Label: r.Label, Weight: r.Weight,
		})
		// Relationship property state is re-established with explicit
		// property ops (OpAddRel carries no props).
		for k, v := range r.Props {
			ops = append(ops, graph.LoggedOp{
				Kind: graph.OpSetRelProp, ID: r.ID, Key: k, Val: v,
			})
		}
	}

	tmp := path + ".checkpoint"
	nl, err := Open(tmp, Options{SyncEveryCommit: true})
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := nl.LogCommit(ts, ops); err != nil {
		nl.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := nl.Close(); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: checkpoint swap: %w", err)
	}
	return Open(path, opts)
}

// Size reports the log's current byte size.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
