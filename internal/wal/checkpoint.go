package wal

import (
	"fmt"
	"path/filepath"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
	"h2tap/internal/vfs"
)

// snapshotOps flattens the store's committed snapshot at ts into the logged
// operations that reproduce it on replay.
func snapshotOps(s *graph.Store, ts mvto.TS) []graph.LoggedOp {
	nodes, rels := s.ExportAt(ts)
	ops := make([]graph.LoggedOp, 0, len(nodes)+len(rels))
	for i := range nodes {
		ops = append(ops, graph.LoggedOp{
			Kind: graph.OpAddNode, ID: nodes[i].ID,
			Label: nodes[i].Label, Props: nodes[i].Props,
		})
	}
	for i := range rels {
		r := &rels[i]
		ops = append(ops, graph.LoggedOp{
			Kind: graph.OpAddRel, ID: r.ID,
			Src: r.Src, Dst: r.Dst, Label: r.Label, Weight: r.Weight,
		})
		// Relationship property state is re-established with explicit
		// property ops (OpAddRel carries no props).
		for k, v := range r.Props {
			ops = append(ops, graph.LoggedOp{
				Kind: graph.OpSetRelProp, ID: r.ID, Key: k, Val: v,
			})
		}
	}
	return ops
}

// writeSnapshotLog writes one synthetic commit record carrying the snapshot
// into a fresh file at tmp, fsyncs it, and closes it. The open truncates:
// a leftover tmp from a checkpoint that crashed before its rename must not
// leave stale bytes ahead of the new snapshot (they would be renamed into
// the live log and read back as a corrupt prefix or resurrected state). On
// any failure the partial file is removed.
func writeSnapshotLog(fsys vfs.FS, tmp string, ts mvto.TS, ops []graph.LoggedOp) error {
	nl, err := Open(tmp, Options{SyncEveryCommit: true, FS: fsys, truncate: true})
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := nl.LogCommit(ts, ops); err != nil {
		nl.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := nl.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	return nil
}

// swapIn renames tmp over path and fsyncs the parent directory so the
// rename itself is durable. A crash at any point leaves either the old or
// the new log intact at path — never a mix, never neither.
func swapIn(fsys vfs.FS, tmp, path string) error {
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: checkpoint swap: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("wal: checkpoint dir sync: %w", err)
	}
	return nil
}

// Checkpoint compacts the log: it exports the store's committed snapshot at
// ts, writes it as a single synthetic commit record into a temp file
// (fsynced), and atomically renames it over path. Replaying the compacted
// log yields exactly the snapshot, and subsequent commits append after it —
// the standard snapshot-plus-tail recovery scheme that keeps an append-only
// log from growing without bound.
//
// The caller must quiesce writers to the log being replaced (the h2tap
// facade uses Rotate instead, which excludes committing transactions via
// the store's commit barrier). The returned Log is open for appending and
// replaces the old handle.
func Checkpoint(path string, s *graph.Store, ts mvto.TS, opts Options) (*Log, error) {
	fsys := opts.fs()
	tmp := path + ".tmp"
	if err := writeSnapshotLog(fsys, tmp, ts, snapshotOps(s, ts)); err != nil {
		return nil, err
	}
	if err := swapIn(fsys, tmp, path); err != nil {
		return nil, err
	}
	return Open(path, opts)
}

// Rotate checkpoints the log in place: the store's committed snapshot is
// written to a temp file, renamed over the log's path, and the log's handle
// swapped to the new file. Rotate runs under the store's commit barrier
// (graph.Store.WithCommitBarrier), which it takes itself: no transaction
// can sit between logging and publishing while the snapshot is exported or
// the files are swapped, so a commit whose record is in the old log is
// always covered by the snapshot — no "maintenance window" needed. The
// append mutex is additionally held across the swap to serialize against
// Size, Close, and any logging not routed through the store.
//
// Crash atomicity matches Checkpoint: old log or new log, never a mix. On
// success a previously failed log is rehabilitated (the new file is whole
// by construction).
func (l *Log) Rotate(s *graph.Store) error {
	return s.WithCommitBarrier(func() error { return l.rotateLocked(s) })
}

// rotateLocked is Rotate's body; the caller holds the store commit barrier.
// It takes ioMu before mu (the package lock order) so a batch flush in
// progress completes against the old file before the handles swap; a batch
// that staged before the swap and flushes after it simply lands in the new
// log, *after* the snapshot that cannot yet cover it — exactly where replay
// needs it.
func (l *Log) rotateLocked(s *graph.Store) error {
	ts := s.Oracle().LastCommitted()
	ops := snapshotOps(s, ts)
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp := l.path + ".tmp"
	if err := writeSnapshotLog(l.fs, tmp, ts, ops); err != nil {
		return err
	}
	if err := swapIn(l.fs, tmp, l.path); err != nil {
		return err
	}
	f, err := l.fs.OpenFile(l.path, openRDWR, 0o644)
	if err != nil {
		// The old handle now points at the unlinked pre-checkpoint inode:
		// appending there would lose commits, so the log goes failed.
		l.failed = fmt.Errorf("wal: reopen after rotate: %w", err)
		return l.failed
	}
	off, err := f.Seek(0, ioSeekEnd)
	if err != nil {
		f.Close()
		l.failed = fmt.Errorf("wal: seek after rotate: %w", err)
		return l.failed
	}
	old := l.f
	l.f, l.off, l.failed = f, off, nil
	old.Close()
	return nil
}

// Size reports the log's current byte size.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
