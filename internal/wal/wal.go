// Package wal provides write-ahead logging and recovery for the main
// property graph — the durability the paper's Poseidon store gets from
// keeping the main graph in persistent memory (§6.1, §6.5). Committed
// transactions append one length-prefixed, checksummed record carrying
// their logical operations; Replay folds the log into the final graph state
// and materializes it via graph.Store.Restore, ID-faithfully (holes from
// aborted transactions stay holes).
//
// Crash consistency: a record is applied only if fully written and its
// checksum matches; a torn tail is truncated, which is exactly the state an
// uncommitted transaction should leave behind (the logger runs *before* the
// MVTO commit publishes anything).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
	"h2tap/internal/vfs"
)

// Open flags, aliased so every file operation in this package goes through
// the injectable vfs layer rather than the os package directly.
const (
	openRDWR   = os.O_RDWR
	openCreate = os.O_CREATE
	openTrunc  = os.O_TRUNC
	ioSeekEnd  = io.SeekEnd
)

// ErrCorrupt reports a record whose checksum or structure is invalid before
// the log's tail (tails are tolerated, interior corruption is not).
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrLogFailed reports an append attempt on a log that has already hit an
// I/O error. A failed append may leave bytes whose relation to durable
// state is unknown; refusing further appends keeps the in-memory store from
// silently diverging from what recovery would rebuild.
var ErrLogFailed = errors.New("wal: log failed")

// Log is an append-only write-ahead log.
type Log struct {
	mu      sync.Mutex
	fs      vfs.FS
	path    string
	f       vfs.File
	off     int64 // end of the last fully appended record
	sync    bool
	failed  error
	buf     []byte // record assembly buffer (header + payload)
	payload []byte // payload encoding buffer

	appends     uint64 // records successfully appended
	appendBytes uint64 // bytes of those records (header + payload)
	syncs       uint64 // fsyncs issued by successful appends
}

// Stats is a snapshot of the log's append counters.
type Stats struct {
	Appends     uint64 // commit records successfully appended
	AppendBytes uint64 // bytes written by those appends (header + payload)
	Syncs       uint64 // fsyncs issued on the append path
}

// Stats snapshots the append counters for metrics exposition.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Appends: l.appends, AppendBytes: l.appendBytes, Syncs: l.syncs}
}

// Options configures Open.
type Options struct {
	// SyncEveryCommit fsyncs after each commit record (durability over
	// throughput). Without it the OS decides when bytes hit the platter,
	// as in most group-commit systems.
	SyncEveryCommit bool
	// FS overrides the filesystem (nil selects the real one). The
	// fault-injection harness uses it to crash individual appends and
	// syncs on the production code path.
	FS vfs.FS
	// truncate discards any existing content when opening. Checkpointing
	// sets it for the snapshot temp file so a leftover .tmp from a crashed
	// earlier checkpoint can never leave stale records ahead of the new
	// snapshot.
	truncate bool
}

func (o Options) fs() vfs.FS {
	if o.FS != nil {
		return o.FS
	}
	return vfs.OS()
}

// Open opens or creates a log at path for appending.
func Open(path string, opts Options) (*Log, error) {
	fsys := opts.fs()
	flag := openRDWR | openCreate
	if opts.truncate {
		flag |= openTrunc
	}
	f, err := fsys.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{fs: fsys, path: path, f: f, off: off, sync: opts.SyncEveryCommit}, nil
}

// Trim truncates the log at path to n bytes. Recovery calls it to discard a
// torn tail before reopening the log for appending, so the next append
// cannot land after garbage and turn a tolerated torn tail into interior
// corruption.
func Trim(fsys vfs.FS, path string, n int64) error {
	if fsys == nil {
		fsys = vfs.OS()
	}
	f, err := fsys.OpenFile(path, openRDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: trim open: %w", err)
	}
	if err := f.Truncate(n); err != nil {
		f.Close()
		return fmt.Errorf("wal: trim: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: trim sync: %w", err)
	}
	return f.Close()
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

var _ graph.OpLogger = (*Log)(nil)

// Err reports the log's sticky failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// LogCommit appends one commit record with the transaction's operations.
// It implements graph.OpLogger and runs before the commit publishes.
//
// The header and payload go out in a single write so no crash can separate
// them. If the write or sync fails, the log rewinds to the record start
// (truncate + seek) so a partial record cannot sit in the interior of the
// file, and the log is marked failed: later appends return ErrLogFailed
// instead of committing transactions whose durability is unknown.
func (l *Log) LogCommit(ts mvto.TS, ops []graph.LoggedOp) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("%w: %v", ErrLogFailed, l.failed)
	}
	l.payload = encodeCommit(l.payload[:0], ts, ops)
	return l.appendPayloadLocked()
}

// fail marks the log failed and rewinds to the last record boundary,
// best-effort: if the medium refuses the truncate too, the partial bytes
// stay, but the failed flag guarantees nothing is appended after them and
// replay treats them as a torn tail.
func (l *Log) fail(err error) {
	l.failed = err
	if terr := l.f.Truncate(l.off); terr == nil {
		l.f.Seek(l.off, io.SeekStart)
	}
}

// Payload encoding: ts u64, opCount u32, then per op:
// kind u8, id u64, then kind-specific fields. Strings are u16 length +
// bytes; values are kind u8 + payload; props are u16 count + (key, value).

func encodeCommit(b []byte, ts mvto.TS, ops []graph.LoggedOp) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(ts))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ops)))
	for i := range ops {
		b = encodeOp(b, &ops[i])
	}
	return b
}

func encodeOp(b []byte, op *graph.LoggedOp) []byte {
	b = append(b, byte(op.Kind))
	b = binary.LittleEndian.AppendUint64(b, op.ID)
	switch op.Kind {
	case graph.OpAddNode:
		b = appendString(b, op.Label)
		b = appendProps(b, op.Props)
	case graph.OpAddRel:
		b = binary.LittleEndian.AppendUint64(b, op.Src)
		b = binary.LittleEndian.AppendUint64(b, op.Dst)
		b = appendString(b, op.Label)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(op.Weight))
	case graph.OpDeleteNode, graph.OpDeleteRel:
		// id only
	case graph.OpSetNodeProp, graph.OpSetRelProp:
		b = appendString(b, op.Key)
		b = appendValue(b, op.Val)
	case graph.OpSetRelWeight:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(op.Weight))
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v graph.Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case graph.KindInt, graph.KindBool:
		b = binary.LittleEndian.AppendUint64(b, uint64(v.AsInt()))
	case graph.KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.AsFloat()))
	case graph.KindString:
		b = appendString(b, v.AsString())
	}
	return b
}

func appendProps(b []byte, props map[string]graph.Value) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(props)))
	for k, v := range props {
		b = appendString(b, k)
		b = appendValue(b, v)
	}
	return b
}

// decoder is a bounds-checked cursor over one record payload.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) value() graph.Value {
	switch graph.Kind(d.u8()) {
	case graph.KindInt:
		return graph.Int(int64(d.u64()))
	case graph.KindBool:
		return graph.Bool(d.u64() != 0)
	case graph.KindFloat:
		return graph.Float(math.Float64frombits(d.u64()))
	case graph.KindString:
		return graph.Str(d.str())
	case graph.KindNil:
		return graph.Value{}
	default:
		d.fail()
		return graph.Value{}
	}
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func decodeCommit(b []byte) (mvto.TS, []graph.LoggedOp, error) {
	d := &decoder{b: b}
	ts := mvto.TS(d.u64())
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<26 {
		return 0, nil, ErrCorrupt
	}
	ops, err := decodeOps(d, n)
	if err != nil {
		return 0, nil, err
	}
	if d.off != len(b) {
		return 0, nil, ErrCorrupt
	}
	return ts, ops, nil
}
