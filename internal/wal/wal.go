// Package wal provides write-ahead logging and recovery for the main
// property graph — the durability the paper's Poseidon store gets from
// keeping the main graph in persistent memory (§6.1, §6.5). Committed
// transactions append one length-prefixed, checksummed record carrying
// their logical operations; Replay folds the log into the final graph state
// and materializes it via graph.Store.Restore, ID-faithfully (holes from
// aborted transactions stay holes).
//
// Crash consistency: a record is applied only if fully written and its
// checksum matches; a torn tail is truncated, which is exactly the state an
// uncommitted transaction should leave behind (the logger runs *before* the
// MVTO commit publishes anything).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
)

// ErrCorrupt reports a record whose checksum or structure is invalid before
// the log's tail (tails are tolerated, interior corruption is not).
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only write-ahead log.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	sync bool
	buf  []byte
}

// Options configures Open.
type Options struct {
	// SyncEveryCommit fsyncs after each commit record (durability over
	// throughput). Without it the OS decides when bytes hit the platter,
	// as in most group-commit systems.
	SyncEveryCommit bool
}

// Open opens or creates a log at path for appending.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{f: f, sync: opts.SyncEveryCommit}, nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

var _ graph.OpLogger = (*Log)(nil)

// LogCommit appends one commit record with the transaction's operations.
// It implements graph.OpLogger and runs before the commit publishes.
func (l *Log) LogCommit(ts mvto.TS, ops []graph.LoggedOp) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = encodeCommit(l.buf[:0], ts, ops)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(l.buf)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(l.buf))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append header: %w", err)
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: append payload: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Payload encoding: ts u64, opCount u32, then per op:
// kind u8, id u64, then kind-specific fields. Strings are u16 length +
// bytes; values are kind u8 + payload; props are u16 count + (key, value).

func encodeCommit(b []byte, ts mvto.TS, ops []graph.LoggedOp) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(ts))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ops)))
	for i := range ops {
		b = encodeOp(b, &ops[i])
	}
	return b
}

func encodeOp(b []byte, op *graph.LoggedOp) []byte {
	b = append(b, byte(op.Kind))
	b = binary.LittleEndian.AppendUint64(b, op.ID)
	switch op.Kind {
	case graph.OpAddNode:
		b = appendString(b, op.Label)
		b = appendProps(b, op.Props)
	case graph.OpAddRel:
		b = binary.LittleEndian.AppendUint64(b, op.Src)
		b = binary.LittleEndian.AppendUint64(b, op.Dst)
		b = appendString(b, op.Label)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(op.Weight))
	case graph.OpDeleteNode, graph.OpDeleteRel:
		// id only
	case graph.OpSetNodeProp, graph.OpSetRelProp:
		b = appendString(b, op.Key)
		b = appendValue(b, op.Val)
	case graph.OpSetRelWeight:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(op.Weight))
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v graph.Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case graph.KindInt, graph.KindBool:
		b = binary.LittleEndian.AppendUint64(b, uint64(v.AsInt()))
	case graph.KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.AsFloat()))
	case graph.KindString:
		b = appendString(b, v.AsString())
	}
	return b
}

func appendProps(b []byte, props map[string]graph.Value) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(props)))
	for k, v := range props {
		b = appendString(b, k)
		b = appendValue(b, v)
	}
	return b
}

// decoder is a bounds-checked cursor over one record payload.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) value() graph.Value {
	switch graph.Kind(d.u8()) {
	case graph.KindInt:
		return graph.Int(int64(d.u64()))
	case graph.KindBool:
		return graph.Bool(d.u64() != 0)
	case graph.KindFloat:
		return graph.Float(math.Float64frombits(d.u64()))
	case graph.KindString:
		return graph.Str(d.str())
	case graph.KindNil:
		return graph.Value{}
	default:
		d.fail()
		return graph.Value{}
	}
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func decodeCommit(b []byte) (mvto.TS, []graph.LoggedOp, error) {
	d := &decoder{b: b}
	ts := mvto.TS(d.u64())
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<26 {
		return 0, nil, ErrCorrupt
	}
	ops := make([]graph.LoggedOp, 0, n)
	for i := 0; i < n; i++ {
		var op graph.LoggedOp
		op.Kind = graph.OpKind(d.u8())
		op.ID = d.u64()
		switch op.Kind {
		case graph.OpAddNode:
			op.Label = d.str()
			if cnt := int(d.u16()); cnt > 0 {
				op.Props = make(map[string]graph.Value, cnt)
				for j := 0; j < cnt; j++ {
					k := d.str()
					op.Props[k] = d.value()
				}
			}
		case graph.OpAddRel:
			op.Src = d.u64()
			op.Dst = d.u64()
			op.Label = d.str()
			op.Weight = math.Float64frombits(d.u64())
		case graph.OpDeleteNode, graph.OpDeleteRel:
		case graph.OpSetNodeProp, graph.OpSetRelProp:
			op.Key = d.str()
			op.Val = d.value()
		case graph.OpSetRelWeight:
			op.Weight = math.Float64frombits(d.u64())
		default:
			return 0, nil, ErrCorrupt
		}
		if d.err != nil {
			return 0, nil, d.err
		}
		ops = append(ops, op)
	}
	if d.off != len(b) {
		return 0, nil, ErrCorrupt
	}
	return ts, ops, nil
}
