// Package wal provides write-ahead logging and recovery for the main
// property graph — the durability the paper's Poseidon store gets from
// keeping the main graph in persistent memory (§6.1, §6.5). Committed
// transactions append one length-prefixed, checksummed record carrying
// their logical operations; Replay folds the log into the final graph state
// and materializes it via graph.Store.Restore, ID-faithfully (holes from
// aborted transactions stay holes).
//
// Crash consistency: a record is applied only if fully written and its
// checksum matches; a torn tail is truncated, which is exactly the state an
// uncommitted transaction should leave behind (the logger runs *before* the
// MVTO commit publishes anything).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
	"h2tap/internal/obs"
	"h2tap/internal/vfs"
)

// openFiles counts WAL file handles open across the process, exposed as a
// runtime-health gauge (per-shard WALs + coordinator log + main log).
var openFiles atomic.Int64

// OpenFiles reports the number of currently open WAL file handles.
func OpenFiles() int64 { return openFiles.Load() }

// Open flags, aliased so every file operation in this package goes through
// the injectable vfs layer rather than the os package directly.
const (
	openRDWR   = os.O_RDWR
	openCreate = os.O_CREATE
	openTrunc  = os.O_TRUNC
	ioSeekEnd  = io.SeekEnd
)

// ErrCorrupt reports a record whose checksum or structure is invalid before
// the log's tail (tails are tolerated, interior corruption is not).
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrLogFailed reports an append attempt on a log that has already hit an
// I/O error. A failed append may leave bytes whose relation to durable
// state is unknown; refusing further appends keeps the in-memory store from
// silently diverging from what recovery would rebuild.
var ErrLogFailed = errors.New("wal: log failed")

// Log is an append-only write-ahead log with leader/follower group commit.
//
// Committers frame their record into the current staging batch under mu;
// the first committer into an empty slot becomes the batch's leader. The
// leader detaches the batch and issues ONE Write carrying every staged
// record back to back — and, when SyncEveryCommit is set, ONE Sync for the
// whole batch — under ioMu, then wakes the followers with the shared
// outcome. Committers arriving while a flush is in progress stage into the
// next batch, so batch size adapts to device latency with no artificial
// delay. Per-record framing is unchanged (each record carries its own
// size+checksum header), so the on-disk format is byte-identical to the
// serialized log and replay, torn-tail tolerance and corruption detection
// are untouched.
//
// Failure semantics match the serialized path: a failed write or sync
// rewinds the file to the last durable batch boundary (truncate + seek) so
// no partial batch sits in the interior, every committer in the failed
// batch gets the error, and the log latches failed: later appends return
// ErrLogFailed rather than committing transactions whose durability is
// unknown.
//
// Ordering: records from different batches can land out of timestamp
// order, but never out of *causal* order. A transaction can only read or
// write state published by another after that writer's LogCommit returned
// durable (MVTO write locks are held across LogCommit and unlock IS
// publication), so any two records whose relative order matters are
// separated by a completed flush and appear in file order; replay folds
// the rest commutatively.
type Log struct {
	// ioMu serializes file I/O — batch flush, rotate, close — and defines
	// the order batches land in the file. Lock order: ioMu before mu.
	ioMu sync.Mutex
	// mu guards staging state: the current batch, the sticky failure, the
	// durable offset and the counters.
	mu     sync.Mutex
	fs     vfs.FS
	path   string
	f      vfs.File
	off    int64 // end of the last fully flushed batch
	sync   bool
	failed error

	gc   GroupCommit // normalized (MaxBatch >= 1)
	cur  *batch      // staging batch accepting joiners; nil when none
	pool sync.Pool   // *batch recycling (buffer + channels)

	appends     uint64 // records successfully appended
	appendBytes uint64 // bytes of those records (header + payload)
	syncs       uint64 // fsyncs issued by successful flushes
	batches     uint64 // successful batch flushes
	maxBatch    uint64 // largest records-per-flush observed
	flushNanos  uint64 // wall nanoseconds spent inside write+sync
	batchSeq    uint64 // batches ever started; stamps batch.seq

	closed bool // file handle released (for the open-files gauge)

	// Enqueue-to-ack wait per append (staging through flush outcome),
	// lock-free so the follower path records without retaking mu. Always
	// on: group-commit queueing stays observable when tracing is sampled
	// out. waitMin uses 0 as the unset sentinel.
	waitSum atomic.Uint64
	waitMin atomic.Uint64
	waitMax atomic.Uint64
}

// batch is one group-commit unit: framed records from one or more
// committers, flushed by a single leader.
type batch struct {
	buf  []byte       // framed records, in join order
	n    int          // records staged
	seq  uint64       // batch sequence number, for trace correlation
	err  error        // flush outcome; written before done tokens are sent
	refs atomic.Int32 // members still to read err; the last one recycles
	// done carries n-1 tokens from the leader, one per follower, sent
	// after err is set. Buffered to MaxBatch so the leader never blocks.
	done chan struct{}
	// full (capacity 1) wakes a leader lingering on MaxDelay when the
	// batch fills early.
	full chan struct{}
	// Leader-stamped flush timeline, written before err and therefore
	// ordered for followers by the done-channel send. Traced members turn
	// these into wal.write / wal.fsync spans after the ack; zero values
	// mean the flush never reached that point.
	flushStart time.Time
	writeEnd   time.Time
	syncEnd    time.Time
}

// Stats is a snapshot of the log's append counters.
type Stats struct {
	Appends     uint64 // commit records successfully appended
	AppendBytes uint64 // bytes written by those appends (header + payload)
	Syncs       uint64 // fsyncs issued on the append path
	Batches     uint64 // group-commit flushes issued (Appends/Batches = mean batch)
	MaxBatch    uint64 // largest records-per-flush observed
	FlushNanos  uint64 // wall nanoseconds spent inside batch write+sync
	// Enqueue-to-ack wait per append: from entering the staging batch to
	// learning the flush outcome. Sum over all appends plus the observed
	// extremes, so group-commit queueing is visible even when request
	// tracing is sampled out. Min is 0 until the first append completes.
	WaitNanosSum uint64
	WaitNanosMin uint64
	WaitNanosMax uint64
	// Failed is the log's sticky failure latch, nil while healthy. A
	// latched log refuses every append with ErrLogFailed; exposing the
	// cause here lets health surfaces report it without waiting for the
	// next commit attempt to trip over it.
	Failed error
}

// Stats snapshots the append counters for metrics exposition.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends: l.appends, AppendBytes: l.appendBytes, Syncs: l.syncs,
		Batches: l.batches, MaxBatch: l.maxBatch, FlushNanos: l.flushNanos,
		WaitNanosSum: l.waitSum.Load(), WaitNanosMin: l.waitMin.Load(),
		WaitNanosMax: l.waitMax.Load(),
		Failed:       l.failed,
	}
}

// noteWait folds one append's enqueue-to-ack wait into the lock-free
// wait counters.
func (l *Log) noteWait(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	l.waitSum.Add(ns)
	for {
		old := l.waitMin.Load()
		if old != 0 && old <= ns {
			break
		}
		if l.waitMin.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := l.waitMax.Load()
		if old >= ns {
			break
		}
		if l.waitMax.CompareAndSwap(old, ns) {
			break
		}
	}
}

// GroupCommit tunes the leader/follower batched flush.
type GroupCommit struct {
	// MaxBatch caps the records one flush covers (default 64). 1 gives
	// every record its own write+fsync — the serialized pre-group-commit
	// behavior, kept as the benchmark baseline.
	MaxBatch int
	// MaxDelay, when positive, lets a leader wait up to this long for
	// followers to fill the batch before flushing. Zero (the default)
	// flushes immediately; batching still happens because committers
	// arriving during a flush stage into the next batch. The delay is
	// spent holding the caller's commit-gate share, so keep it small
	// relative to any checkpoint cadence.
	MaxDelay time.Duration
}

func (g GroupCommit) normalized() GroupCommit {
	if g.MaxBatch <= 0 {
		g.MaxBatch = 64
	}
	if g.MaxDelay < 0 {
		g.MaxDelay = 0
	}
	return g
}

// Options configures Open.
type Options struct {
	// SyncEveryCommit fsyncs after each commit batch (durability over
	// throughput). Without it the OS decides when bytes hit the platter,
	// as in most group-commit systems.
	SyncEveryCommit bool
	// GroupCommit tunes the batched flush (zero value = defaults).
	GroupCommit GroupCommit
	// FS overrides the filesystem (nil selects the real one). The
	// fault-injection harness uses it to crash individual appends and
	// syncs on the production code path.
	FS vfs.FS
	// truncate discards any existing content when opening. Checkpointing
	// sets it for the snapshot temp file so a leftover .tmp from a crashed
	// earlier checkpoint can never leave stale records ahead of the new
	// snapshot.
	truncate bool
}

func (o Options) fs() vfs.FS {
	if o.FS != nil {
		return o.FS
	}
	return vfs.OS()
}

// Open opens or creates a log at path for appending.
func Open(path string, opts Options) (*Log, error) {
	fsys := opts.fs()
	flag := openRDWR | openCreate
	if opts.truncate {
		flag |= openTrunc
	}
	f, err := fsys.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l := &Log{
		fs: fsys, path: path, f: f, off: off,
		sync: opts.SyncEveryCommit, gc: opts.GroupCommit.normalized(),
	}
	l.pool.New = func() any {
		return &batch{
			done: make(chan struct{}, l.gc.MaxBatch),
			full: make(chan struct{}, 1),
		}
	}
	openFiles.Add(1)
	return l, nil
}

// Trim truncates the log at path to n bytes. Recovery calls it to discard a
// torn tail before reopening the log for appending, so the next append
// cannot land after garbage and turn a tolerated torn tail into interior
// corruption.
func Trim(fsys vfs.FS, path string, n int64) error {
	if fsys == nil {
		fsys = vfs.OS()
	}
	f, err := fsys.OpenFile(path, openRDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: trim open: %w", err)
	}
	if err := f.Truncate(n); err != nil {
		f.Close()
		return fmt.Errorf("wal: trim: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: trim sync: %w", err)
	}
	return f.Close()
}

// Close syncs and closes the log. Both steps always run and both failures
// surface: a sync error (including one on an already-failed log) no longer
// swallows the close error, which on many filesystems is the last chance to
// learn that buffered bytes never reached the device.
func (l *Log) Close() error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	if !l.closed {
		l.closed = true
		openFiles.Add(-1)
	}
	return errors.Join(syncErr, closeErr)
}

var _ graph.OpLogger = (*Log)(nil)

// Err reports the log's sticky failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// encBuf is a pooled payload-encoding buffer, interned per committer so the
// hot commit path performs no per-record allocation.
type encBuf struct{ b []byte }

var encPool = sync.Pool{New: func() any { return new(encBuf) }}

// LogCommit appends one commit record with the transaction's operations.
// It implements graph.OpLogger and runs before the commit publishes; it
// returns only once the record's batch is durably flushed (per the sync
// policy) or failed.
func (l *Log) LogCommit(ts mvto.TS, ops []graph.LoggedOp) error {
	return l.LogCommitTraced(ts, ops, nil)
}

// LogCommitTraced is LogCommit carrying a request trace: the append's
// enqueue → write → fsync → ack breakdown is recorded as spans with the
// batch sequence number and the record's position in it, so co-batched
// requests are correlatable. rq may be nil.
func (l *Log) LogCommitTraced(ts mvto.TS, ops []graph.LoggedOp, rq *obs.Req) error {
	e := encPool.Get().(*encBuf)
	e.b = encodeCommit(e.b[:0], ts, ops)
	err := l.append(e.b, rq)
	encPool.Put(e)
	return err
}

// append frames payload as one record into the current staging batch and
// blocks until the batch containing it is flushed or failed. The caller
// owns payload only until append returns. With rq non-nil the member's
// share of the batch timeline is recorded as request spans.
func (l *Log) append(payload []byte, rq *obs.Req) error {
	start := time.Now()
	l.mu.Lock()
	if l.failed != nil {
		l.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrLogFailed, l.failed)
	}
	b := l.cur
	leader := b == nil
	if leader {
		b = l.pool.Get().(*batch)
		l.batchSeq++
		b.seq = l.batchSeq
		l.cur = b
	}
	b.refs.Add(1)
	hdr := len(b.buf)
	b.buf = append(b.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(b.buf[hdr:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b.buf[hdr+4:], crc32.ChecksumIEEE(payload))
	b.buf = append(b.buf, payload...)
	b.n++
	pos := b.n - 1
	full := b.n >= l.gc.MaxBatch
	if full {
		// Close the batch: later committers start — and lead — the next
		// one while this one flushes.
		l.cur = nil
	}
	l.mu.Unlock()

	if leader {
		if l.gc.MaxDelay > 0 && !full {
			t := time.NewTimer(l.gc.MaxDelay)
			select {
			case <-b.full:
			case <-t.C:
			}
			t.Stop()
		}
		err := l.flush(b, rq, start, pos)
		l.noteWait(time.Since(start))
		return err
	}
	if full && l.gc.MaxDelay > 0 {
		// Wake a leader lingering on MaxDelay; buffered, never blocks.
		select {
		case b.full <- struct{}{}:
		default:
		}
	}
	<-b.done
	err := b.err
	if rq != nil {
		// Safe before release: this member's reference keeps the batch out
		// of the pool, and the done-channel send ordered the leader's
		// timestamp stamps before this read.
		b.recordSpans(rq, start, time.Now(), pos, l.sync)
	}
	l.release(b)
	l.noteWait(time.Since(start))
	return err
}

// flush writes (and per the sync policy syncs) one batch as a single I/O
// unit under ioMu, settles the counters, and wakes the batch's followers
// with the shared outcome. Only the batch's leader calls it; start/pos
// describe the leader's own membership for trace recording.
func (l *Log) flush(b *batch, rq *obs.Req, memberStart time.Time, pos int) error {
	l.ioMu.Lock()
	l.mu.Lock()
	if l.cur == b {
		// Nobody filled the batch while the leader got here: detach it so
		// staging for the next batch proceeds during the I/O below.
		l.cur = nil
	}
	n := b.n
	if l.failed != nil {
		// An earlier batch failed after this one staged; nothing in this
		// one may land after bytes of unknown durability.
		err := fmt.Errorf("%w: %v", ErrLogFailed, l.failed)
		l.mu.Unlock()
		l.ioMu.Unlock()
		b.flushStart, b.writeEnd, b.syncEnd = time.Time{}, time.Time{}, time.Time{}
		b.err = err
		if rq != nil {
			b.recordSpans(rq, memberStart, time.Now(), pos, l.sync)
		}
		l.wake(b, n)
		return err
	}
	f := l.f
	l.mu.Unlock()

	start := time.Now()
	b.flushStart = start
	b.writeEnd, b.syncEnd = time.Time{}, time.Time{}
	var ioErr error
	stage := ""
	if _, werr := f.Write(b.buf); werr != nil {
		ioErr, stage = werr, "append"
	} else {
		b.writeEnd = time.Now()
		if l.sync {
			if serr := f.Sync(); serr != nil {
				ioErr, stage = serr, "sync"
			} else {
				b.syncEnd = time.Now()
			}
		}
	}
	dur := time.Since(start)

	l.mu.Lock()
	var err error
	if ioErr != nil {
		l.fail(ioErr)
		err = fmt.Errorf("wal: %s: %w", stage, ioErr)
	} else {
		l.off += int64(len(b.buf))
		l.appends += uint64(n)
		l.appendBytes += uint64(len(b.buf))
		if l.sync {
			l.syncs++
		}
		l.batches++
		if uint64(n) > l.maxBatch {
			l.maxBatch = uint64(n)
		}
		l.flushNanos += uint64(dur.Nanoseconds())
	}
	l.mu.Unlock()
	l.ioMu.Unlock()
	b.err = err
	if rq != nil {
		b.recordSpans(rq, memberStart, time.Now(), pos, l.sync)
	}
	l.wake(b, n)
	return err
}

// recordSpans turns one member's view of the batch timeline into request
// spans: wal.enqueue (staging + waiting behind the previous flush),
// wal.write, wal.fsync (sync policy permitting) and wal.ack (flush end to
// member wakeup). Batch sequence and record position ride as args so every
// co-batched request points at the same flush.
func (b *batch) recordSpans(rq *obs.Req, start, ack time.Time, pos int, synced bool) {
	seqArg := obs.L("batch", strconv.FormatUint(b.seq, 10))
	posArg := obs.L("pos", strconv.Itoa(pos))
	if b.flushStart.IsZero() {
		// The flush never started (failed latch): everything was queueing.
		rq.AddSpan("wal.enqueue", "wal", start, ack, seqArg, posArg)
		return
	}
	rq.AddSpan("wal.enqueue", "wal", start, b.flushStart, seqArg, posArg)
	if b.writeEnd.IsZero() {
		rq.AddSpan("wal.write", "wal", b.flushStart, ack, seqArg)
		return
	}
	rq.AddSpan("wal.write", "wal", b.flushStart, b.writeEnd, seqArg)
	last := b.writeEnd
	if synced {
		if b.syncEnd.IsZero() {
			rq.AddSpan("wal.fsync", "wal-fsync", b.writeEnd, ack, seqArg)
			return
		}
		rq.AddSpan("wal.fsync", "wal-fsync", b.writeEnd, b.syncEnd, seqArg)
		last = b.syncEnd
	}
	rq.AddSpan("wal.ack", "wal", last, ack, seqArg)
}

// wake hands the settled batch to its n-1 followers (b.err must be set
// first; the channel send orders the read) and drops the leader's own
// reference.
func (l *Log) wake(b *batch, n int) {
	for i := 1; i < n; i++ {
		b.done <- struct{}{}
	}
	l.release(b)
}

// release drops one member's reference to the batch; the last member
// recycles it — buffer, channels and all — into the pool.
func (l *Log) release(b *batch) {
	if b.refs.Add(-1) != 0 {
		return
	}
	b.buf = b.buf[:0]
	b.n = 0
	b.err = nil
	select { // drop a full-signal no leader consumed
	case <-b.full:
	default:
	}
	l.pool.Put(b)
}

// fail marks the log failed and rewinds to the last durable batch boundary,
// best-effort: if the medium refuses the truncate too, the partial bytes
// stay, but the failed flag guarantees nothing is appended after them and
// replay treats them as a torn tail.
func (l *Log) fail(err error) {
	l.failed = err
	if terr := l.f.Truncate(l.off); terr == nil {
		l.f.Seek(l.off, io.SeekStart)
	}
}

// Payload encoding: ts u64, opCount u32, then per op:
// kind u8, id u64, then kind-specific fields. Strings are u16 length +
// bytes; values are kind u8 + payload; props are u16 count + (key, value).

func encodeCommit(b []byte, ts mvto.TS, ops []graph.LoggedOp) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(ts))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ops)))
	for i := range ops {
		b = encodeOp(b, &ops[i])
	}
	return b
}

func encodeOp(b []byte, op *graph.LoggedOp) []byte {
	b = append(b, byte(op.Kind))
	b = binary.LittleEndian.AppendUint64(b, op.ID)
	switch op.Kind {
	case graph.OpAddNode:
		b = appendString(b, op.Label)
		b = appendProps(b, op.Props)
	case graph.OpAddRel:
		b = binary.LittleEndian.AppendUint64(b, op.Src)
		b = binary.LittleEndian.AppendUint64(b, op.Dst)
		b = appendString(b, op.Label)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(op.Weight))
	case graph.OpDeleteNode, graph.OpDeleteRel:
		// id only
	case graph.OpSetNodeProp, graph.OpSetRelProp:
		b = appendString(b, op.Key)
		b = appendValue(b, op.Val)
	case graph.OpSetRelWeight:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(op.Weight))
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v graph.Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case graph.KindInt, graph.KindBool:
		b = binary.LittleEndian.AppendUint64(b, uint64(v.AsInt()))
	case graph.KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.AsFloat()))
	case graph.KindString:
		b = appendString(b, v.AsString())
	}
	return b
}

func appendProps(b []byte, props map[string]graph.Value) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(props)))
	for k, v := range props {
		b = appendString(b, k)
		b = appendValue(b, v)
	}
	return b
}

// decoder is a bounds-checked cursor over one record payload.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) value() graph.Value {
	switch graph.Kind(d.u8()) {
	case graph.KindInt:
		return graph.Int(int64(d.u64()))
	case graph.KindBool:
		return graph.Bool(d.u64() != 0)
	case graph.KindFloat:
		return graph.Float(math.Float64frombits(d.u64()))
	case graph.KindString:
		return graph.Str(d.str())
	case graph.KindNil:
		return graph.Value{}
	default:
		d.fail()
		return graph.Value{}
	}
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func decodeCommit(b []byte) (mvto.TS, []graph.LoggedOp, error) {
	d := &decoder{b: b}
	ts := mvto.TS(d.u64())
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<26 {
		return 0, nil, ErrCorrupt
	}
	ops, err := decodeOps(d, n)
	if err != nil {
		return 0, nil, err
	}
	if d.off != len(b) {
		return 0, nil, ErrCorrupt
	}
	return ts, ops, nil
}
