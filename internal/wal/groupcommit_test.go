package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"h2tap/internal/faultinject"
	"h2tap/internal/graph"
	"h2tap/internal/vfs"
)

// hammer runs workers goroutines, each committing perWorker one-node
// transactions through a store attached to l, and returns how many commits
// reported success. With allMustSucceed it fails the test on any commit
// error.
func hammer(t *testing.T, l *Log, workers, perWorker int, allMustSucceed bool) int {
	t.Helper()
	s := graph.NewStore()
	s.AddOpLogger(l)
	var ok atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := s.Begin()
				if _, err := tx.AddNode("G", nil); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					if allMustSucceed {
						t.Errorf("commit: %v", err)
					}
					continue
				}
				ok.Add(1)
			}
		}()
	}
	wg.Wait()
	return int(ok.Load())
}

// TestGroupCommitFormsBatches drives concurrent committers against a log
// whose fsync has a visible latency: while one leader flushes, the others
// must stage into the next batch, so at least one flush carries multiple
// records and every record still replays.
func TestGroupCommitFormsBatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.wal")
	l, err := Open(path, Options{
		SyncEveryCommit: true,
		FS:              vfs.SlowSync(vfs.OS(), 2*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 20
	hammer(t, l, workers, perWorker, true)
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Appends != workers*perWorker {
		t.Fatalf("Appends = %d, want %d", st.Appends, workers*perWorker)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("MaxBatch = %d: concurrent committers never shared a flush", st.MaxBatch)
	}
	if st.Batches >= st.Appends {
		t.Fatalf("Batches = %d not < Appends = %d: no batching happened", st.Batches, st.Appends)
	}
	if st.Syncs != st.Batches {
		t.Fatalf("Syncs = %d, want one per batch (%d)", st.Syncs, st.Batches)
	}

	s2 := graph.NewStore()
	rst, err := ReplayFS(nil, path, s2)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Records != workers*perWorker || s2.LiveNodes() != workers*perWorker {
		t.Fatalf("Records=%d LiveNodes=%d, want %d", rst.Records, s2.LiveNodes(), workers*perWorker)
	}
}

// TestGroupCommitSerializedBaseline pins the MaxBatch=1 configuration to
// the pre-group-commit behavior: every record its own flush, even under
// concurrency. The scaling benchmark's baseline depends on this.
func TestGroupCommitSerializedBaseline(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "graph.wal"), Options{
		SyncEveryCommit: true,
		GroupCommit:     GroupCommit{MaxBatch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 4, 10
	hammer(t, l, workers, perWorker, true)
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st.MaxBatch != 1 {
		t.Fatalf("MaxBatch = %d, want 1 (serialized)", st.MaxBatch)
	}
	if st.Batches != workers*perWorker || st.Syncs != workers*perWorker {
		t.Fatalf("Batches=%d Syncs=%d, want %d each", st.Batches, st.Syncs, workers*perWorker)
	}
}

// TestGroupCommitMaxDelay exercises the lingering-leader path: a lone
// committer must still return once MaxDelay expires, and a filling batch
// must release the leader early (bounded by the test timeout).
func TestGroupCommitMaxDelay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "graph.wal"), Options{
		SyncEveryCommit: true,
		GroupCommit:     GroupCommit{MaxBatch: 4, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, l, 4, 8, true)
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Appends != 32 {
		t.Fatalf("Appends = %d, want 32", st.Appends)
	}
	if st.MaxBatch > 4 {
		t.Fatalf("MaxBatch = %d exceeds configured cap 4", st.MaxBatch)
	}
}

// TestGroupCommitFailureRewindsBatch injects one sync failure under
// concurrent committers: every member of the failed batch must see the
// error, the log must latch, and the file must replay to exactly the set
// of commits that reported success — the whole failed batch rewound, no
// torn tail, no resurrected transaction.
func TestGroupCommitFailureRewindsBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.wal")
	ffs := faultinject.New(vfs.OS())
	l, err := Open(path, Options{SyncEveryCommit: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	// Fail a persist op somewhere inside the concurrent run.
	ffs.FailAt(ffs.Ops() + 20)
	acked := hammer(t, l, 8, 10, false)
	if l.Err() == nil {
		t.Fatal("log did not latch after injected failure")
	}
	if acked >= 80 {
		t.Fatalf("acked = %d, expected at least one failed commit", acked)
	}
	// Latched log refuses clean appends.
	if err := l.append([]byte{1}, nil); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append on failed log: %v, want ErrLogFailed", err)
	}
	l.Close()

	s2 := graph.NewStore()
	st, err := ReplayFS(nil, path, s2)
	if err != nil {
		t.Fatalf("replay after batch failure: %v", err)
	}
	if st.TornTail {
		t.Fatal("torn tail after rewind: failed batch left partial bytes")
	}
	if st.Records != acked || s2.LiveNodes() != int64(acked) {
		t.Fatalf("Records=%d LiveNodes=%d, want exactly the %d acked commits",
			st.Records, s2.LiveNodes(), acked)
	}
}

// TestGroupCommitRotateRace batches commits while Rotate swaps the file
// underneath: a batch staged before the swap may flush into the new log,
// where it lands after the snapshot — replay must still recover every
// acked commit.
func TestGroupCommitRotateRace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.wal")
	l, err := Open(path, Options{
		SyncEveryCommit: true,
		FS:              vfs.SlowSync(vfs.OS(), time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewStore()
	s.AddOpLogger(l)
	const workers, perWorker = 6, 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := s.Begin()
				if _, err := tx.AddNode("R", nil); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			if err := l.Rotate(s); err != nil {
				t.Errorf("rotate %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := graph.NewStore()
	if _, err := ReplayFS(nil, path, s2); err != nil {
		t.Fatal(err)
	}
	if s2.LiveNodes() != workers*perWorker {
		t.Fatalf("LiveNodes = %d, want %d", s2.LiveNodes(), workers*perWorker)
	}
}

// failingFile makes Sync and Close fail with distinct errors so the test
// can tell which ones Close surfaces.
type failingFile struct {
	vfs.File
	syncErr  error
	closeErr error
}

func (f failingFile) Sync() error { return f.syncErr }
func (f failingFile) Close() error {
	f.File.Close()
	return f.closeErr
}

type failingFS struct {
	vfs.FS
	syncErr  error
	closeErr error
}

func (s failingFS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	f, err := s.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return failingFile{File: f, syncErr: s.syncErr, closeErr: s.closeErr}, nil
}

// TestCloseSurfacesBothErrors is the satellite-1 regression: when the
// final Sync fails AND the Close fails, both errors must reach the caller
// (the close error used to be swallowed on the sync-failure path).
func TestCloseSurfacesBothErrors(t *testing.T) {
	errSync := errors.New("sync exploded")
	errClose := errors.New("close exploded")
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "graph.wal"), Options{
		FS: failingFS{FS: vfs.OS(), syncErr: errSync, closeErr: errClose},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := l.Close()
	if !errors.Is(got, errSync) {
		t.Fatalf("Close = %v, missing sync error", got)
	}
	if !errors.Is(got, errClose) {
		t.Fatalf("Close = %v, missing close error (swallowed)", got)
	}
}

// TestStickyFailureThenClose drives the log into its latched state via a
// real injected append failure, then closes it: Close must not panic, must
// run both sync and close, and the sticky failure must still be readable
// via Err.
func TestStickyFailureThenClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.wal")
	ffs := faultinject.New(vfs.OS())
	l, err := Open(path, Options{SyncEveryCommit: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	s := commitN(t, l, 1)
	ffs.FailAt(ffs.Ops() + 1)
	tx := s.Begin()
	tx.AddNode("X", nil)
	if err := tx.Commit(); err == nil {
		t.Fatal("commit with injected failure succeeded")
	}
	if l.Err() == nil {
		t.Fatal("failure did not latch")
	}
	if err := l.Close(); err != nil {
		// The injected fault plane fails only the targeted op; close
		// itself is clean here.
		t.Fatalf("close after sticky failure: %v", err)
	}
	if l.Err() == nil {
		t.Fatal("sticky failure cleared by Close")
	}
}
