package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"h2tap/internal/csr"
	"h2tap/internal/graph"
)

func openLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func TestLogReplayRoundTrip(t *testing.T) {
	l, path := openLog(t)
	s := graph.NewStore()
	s.AddOpLogger(l)

	tx := s.Begin()
	a, _ := tx.AddNode("Person", map[string]graph.Value{
		"name": graph.Str("ada"), "age": graph.Int(36),
		"score": graph.Float(2.5), "vip": graph.Bool(true),
	})
	b, _ := tx.AddNode("Post", nil)
	rid, _ := tx.AddRel(a, b, "likes", 2)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin()
	tx2.SetNodeProp(a, "age", graph.Int(37))
	tx2.SetRelWeight(rid, 9)
	tx2.SetRelProp(rid, "since", graph.Int(2020))
	tx2.Commit()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover into a fresh store.
	s2 := graph.NewStore()
	maxTS, err := Replay(path, s2)
	if err != nil {
		t.Fatal(err)
	}
	if maxTS == 0 {
		t.Fatal("no timestamp recovered")
	}
	ts := s2.Oracle().LastCommitted()
	if s2.LiveNodes() != 2 || s2.LiveRels() != 1 {
		t.Fatalf("recovered %d/%d", s2.LiveNodes(), s2.LiveRels())
	}
	rt := s2.Begin()
	defer rt.Abort()
	if v, _ := rt.GetNodeProp(a, "age"); v.AsInt() != 37 {
		t.Fatalf("age = %v", v)
	}
	if v, _ := rt.GetNodeProp(a, "name"); v.AsString() != "ada" {
		t.Fatalf("name = %v", v)
	}
	if v, _ := rt.GetNodeProp(a, "vip"); !v.AsBool() {
		t.Fatalf("vip = %v", v)
	}
	if v, _ := rt.GetRelProp(rid, "since"); v.AsInt() != 2020 {
		t.Fatalf("since = %v", v)
	}
	edges := s2.OutEdgesAt(a, ts)
	if len(edges) != 1 || edges[0].Dst != b || edges[0].W != 9 {
		t.Fatalf("recovered edges = %+v", edges)
	}
	// New transactions work and are newer than everything replayed.
	tx3 := s2.Begin()
	if tx3.TS() <= maxTS {
		t.Fatalf("post-recovery ts %d not beyond %d", tx3.TS(), maxTS)
	}
	if _, err := tx3.AddRel(b, a, "replyOf", 1); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
}

func TestReplayIDFaithfulAcrossAborts(t *testing.T) {
	l, path := openLog(t)
	s := graph.NewStore()
	s.AddOpLogger(l)

	tx := s.Begin()
	tx.AddNode("P", nil) // id 0
	tx.Commit()
	ab := s.Begin()
	ab.AddNode("P", nil) // id 1, aborted → hole
	ab.Abort()
	tx2 := s.Begin()
	id2, _ := tx2.AddNode("P", nil) // id 2
	tx2.Commit()
	if id2 != 2 {
		t.Fatalf("id2 = %d", id2)
	}
	l.Close()

	s2 := graph.NewStore()
	if _, err := Replay(path, s2); err != nil {
		t.Fatal(err)
	}
	ts := s2.Oracle().LastCommitted()
	if !s2.NodeExistsAt(0, ts) || s2.NodeExistsAt(1, ts) || !s2.NodeExistsAt(2, ts) {
		t.Fatal("ID placement not faithful: hole from aborted txn lost")
	}
	if s2.NumNodeSlots() != 3 {
		t.Fatalf("slots = %d", s2.NumNodeSlots())
	}
}

func TestReplayAfterDeletes(t *testing.T) {
	l, path := openLog(t)
	s := graph.NewStore()
	s.AddOpLogger(l)

	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	c, _ := tx.AddNode("P", nil)
	tx.AddRel(a, b, "k", 1)
	tx.AddRel(b, c, "k", 1)
	tx.AddRel(c, a, "k", 1)
	tx.Commit()
	del := s.Begin()
	if err := del.DeleteNode(b); err != nil { // cascades both b-edges
		t.Fatal(err)
	}
	del.Commit()
	l.Close()

	s2 := graph.NewStore()
	if _, err := Replay(path, s2); err != nil {
		t.Fatal(err)
	}
	// Recovered graph must equal the original's final snapshot, CSR-wise.
	want := csr.Build(s, s.Oracle().LastCommitted())
	got := csr.Build(s2, s2.Oracle().LastCommitted())
	if !csr.Equal(got, want) {
		t.Fatal("recovered topology differs")
	}
	if s2.LiveNodes() != 2 || s2.LiveRels() != 1 {
		t.Fatalf("recovered live = %d/%d", s2.LiveNodes(), s2.LiveRels())
	}
}

func TestReplayBulkLoad(t *testing.T) {
	l, path := openLog(t)
	s := graph.NewStore()
	s.AddOpLogger(l)
	_, err := s.BulkLoad(
		[]graph.NodeSpec{{Label: "A"}, {Label: "B"}},
		[]graph.EdgeSpec{{Src: 0, Dst: 1, Label: "e", Weight: 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	s2 := graph.NewStore()
	if _, err := Replay(path, s2); err != nil {
		t.Fatal(err)
	}
	ts := s2.Oracle().LastCommitted()
	if got := s2.OutEdgesAt(0, ts); len(got) != 1 || got[0].W != 3 {
		t.Fatalf("bulk recovery edges = %+v", got)
	}
	if lbl, _ := s2.NodeLabelAt(1, ts); lbl != "B" {
		t.Fatalf("label = %q", lbl)
	}
}

func TestTornTailTolerated(t *testing.T) {
	l, path := openLog(t)
	s := graph.NewStore()
	s.AddOpLogger(l)
	tx := s.Begin()
	tx.AddNode("P", nil)
	tx.Commit()
	tx2 := s.Begin()
	tx2.AddNode("P", nil)
	tx2.Commit()
	l.Close()

	// Chop bytes off the end: the last record becomes torn.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := graph.NewStore()
	if _, err := Replay(path, s2); err != nil {
		t.Fatal(err)
	}
	if s2.LiveNodes() != 1 {
		t.Fatalf("torn-tail recovery kept %d nodes, want the intact prefix (1)", s2.LiveNodes())
	}
}

func TestCorruptTailStopsReplay(t *testing.T) {
	l, path := openLog(t)
	s := graph.NewStore()
	s.AddOpLogger(l)
	tx := s.Begin()
	tx.AddNode("P", nil)
	tx.Commit()
	l.Close()

	// Flip a payload byte: checksum fails, record dropped.
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xff
	os.WriteFile(path, b, 0o644)

	s2 := graph.NewStore()
	if _, err := Replay(path, s2); err != nil {
		t.Fatal(err)
	}
	if s2.LiveNodes() != 0 {
		t.Fatal("corrupt record applied")
	}
}

func TestSyncEveryCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.wal")
	l, err := Open(path, Options{SyncEveryCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewStore()
	s.AddOpLogger(l)
	tx := s.Begin()
	tx.AddNode("P", nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	s2 := graph.NewStore()
	if _, err := Replay(path, s2); err != nil {
		t.Fatal(err)
	}
	if s2.LiveNodes() != 1 {
		t.Fatal("synced commit lost")
	}
}

// Property: a random committed workload recovers to a topology identical to
// the live store's final snapshot, and the recovered store keeps working
// (merge==rebuild machinery intact).
func TestReplayEquivalenceRandomWorkload(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		l, path := openLog(t)
		s := graph.NewStore()
		s.AddOpLogger(l)
		specs := make([]graph.NodeSpec, 12)
		for i := range specs {
			specs[i] = graph.NodeSpec{Label: "P"}
		}
		if _, err := s.BulkLoad(specs, nil); err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			tx := s.Begin()
			a := uint64(r.Intn(int(s.NumNodeSlots())))
			var err error
			switch r.Intn(10) {
			case 0, 1, 2, 3:
				_, err = tx.AddRel(a, uint64(r.Intn(int(s.NumNodeSlots()))), "k", float64(r.Intn(9)+1))
			case 4, 5:
				var id uint64
				id, err = tx.AddNode("P", map[string]graph.Value{"i": graph.Int(int64(i))})
				if err == nil {
					_, err = tx.AddRel(a, id, "k", 1)
				}
			case 6:
				rels, oerr := tx.OutRels(a)
				if oerr != nil || len(rels) == 0 {
					tx.Abort()
					continue
				}
				err = tx.DeleteRel(rels[r.Intn(len(rels))].ID)
			case 7:
				err = tx.DeleteNode(a)
			case 8:
				err = tx.SetNodeProp(a, "x", graph.Int(int64(i)))
			case 9:
				rels, oerr := tx.OutRels(a)
				if oerr != nil || len(rels) == 0 {
					tx.Abort()
					continue
				}
				err = tx.SetRelWeight(rels[0].ID, float64(r.Intn(9)+1))
			}
			if err != nil {
				tx.Abort()
				continue
			}
			tx.Commit()
		}
		l.Close()

		s2 := graph.NewStore()
		if _, err := Replay(path, s2); err != nil {
			t.Fatal(err)
		}
		want := csr.Build(s, s.Oracle().LastCommitted())
		got := csr.Build(s2, s2.Oracle().LastCommitted())
		if !csr.Equal(got, want) {
			t.Fatalf("seed %d: recovered topology differs", seed)
		}
		if s2.LiveNodes() != s.LiveNodes() || s2.LiveRels() != s.LiveRels() {
			t.Fatalf("seed %d: live counts differ: %d/%d vs %d/%d", seed,
				s2.LiveNodes(), s2.LiveRels(), s.LiveNodes(), s.LiveRels())
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ops := []graph.LoggedOp{
		{Kind: graph.OpAddNode, ID: 7, Label: "Person", Props: map[string]graph.Value{
			"s": graph.Str("x"), "i": graph.Int(-5), "f": graph.Float(1.25), "b": graph.Bool(true),
		}},
		{Kind: graph.OpAddRel, ID: 3, Src: 7, Dst: 9, Label: "knows", Weight: 2.5},
		{Kind: graph.OpDeleteRel, ID: 3},
		{Kind: graph.OpDeleteNode, ID: 9},
		{Kind: graph.OpSetNodeProp, ID: 7, Key: "k", Val: graph.Int(1)},
		{Kind: graph.OpSetRelWeight, ID: 3, Weight: 4},
	}
	b := encodeCommit(nil, 42, ops)
	ts, got, err := decodeCommit(b)
	if err != nil {
		t.Fatal(err)
	}
	if ts != 42 {
		t.Fatalf("ts = %d", ts)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", got, ops)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := decodeCommit([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
	good := encodeCommit(nil, 1, []graph.LoggedOp{{Kind: graph.OpDeleteNode, ID: 1}})
	if _, _, err := decodeCommit(append(good, 0xff)); err == nil {
		t.Fatal("trailing junk accepted")
	}
}
