package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
	"h2tap/internal/obs"
	"h2tap/internal/vfs"
)

// Two-phase-commit record extension (sharded mode). A plain commit record's
// payload starts with the transaction timestamp; mvto.Infinity is never a
// real timestamp, so it doubles as an escape marker introducing a typed
// record:
//
//	prepare:  [marker u64][kind=1 u8][gtx u64][ts u64][opCount u32][ops…]
//	decision: [marker u64][kind=2 u8][gtx u64][outcome u8]
//
// A participant shard appends a prepare record (synced per the log's sync
// policy) during phase one, the coordinator appends a commit decision to its
// own log (the atomic commit point of the distributed transaction), and each
// participant then appends a local decision record before publishing. Replay
// applies a prepared transaction's operations only when a decision says
// commit — a local decision record, or the coordinator's via the decide
// callback for transactions left in doubt by a crash between the phases.
// Logs that never see a 2PC transaction are byte-identical to the pre-shard
// format.

const twopcMarker = uint64(math.MaxUint64) // == uint64(mvto.Infinity)

// Typed record kinds behind the marker.
const (
	recPrepare  byte = 1
	recDecision byte = 2
)

// Decision outcomes.
const (
	outcomeAbort  byte = 0
	outcomeCommit byte = 1
)

// LogPrepare appends a phase-one prepare record for distributed transaction
// gtx: the participant's local timestamp and operations, durable before the
// coordinator may decide commit. It rides the same group-commit batches as
// LogCommit and shares its failure semantics.
func (l *Log) LogPrepare(gtx uint64, ts mvto.TS, ops []graph.LoggedOp) error {
	return l.LogPrepareTraced(gtx, ts, ops, nil)
}

// LogPrepareTraced is LogPrepare carrying a request trace for the append's
// enqueue/write/fsync/ack breakdown. rq may be nil.
func (l *Log) LogPrepareTraced(gtx uint64, ts mvto.TS, ops []graph.LoggedOp, rq *obs.Req) error {
	e := encPool.Get().(*encBuf)
	b := e.b[:0]
	b = binary.LittleEndian.AppendUint64(b, twopcMarker)
	b = append(b, recPrepare)
	b = binary.LittleEndian.AppendUint64(b, gtx)
	b = binary.LittleEndian.AppendUint64(b, uint64(ts))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ops)))
	for i := range ops {
		b = encodeOp(b, &ops[i])
	}
	e.b = b
	err := l.append(e.b, rq)
	encPool.Put(e)
	return err
}

// LogDecision appends a phase-two decision record for gtx. On a coordinator
// log it is the commit point of the distributed transaction (the group
// commit batches concurrent cross-shard decisions into one coordinator
// fsync); on a participant log it resolves that shard's prepare record so
// replay needs no coordinator consultation.
func (l *Log) LogDecision(gtx uint64, commit bool) error {
	return l.LogDecisionTraced(gtx, commit, nil)
}

// LogDecisionTraced is LogDecision carrying a request trace. rq may be nil.
func (l *Log) LogDecisionTraced(gtx uint64, commit bool, rq *obs.Req) error {
	e := encPool.Get().(*encBuf)
	b := e.b[:0]
	b = binary.LittleEndian.AppendUint64(b, twopcMarker)
	b = append(b, recDecision)
	b = binary.LittleEndian.AppendUint64(b, gtx)
	if commit {
		b = append(b, outcomeCommit)
	} else {
		b = append(b, outcomeAbort)
	}
	e.b = b
	err := l.append(e.b, rq)
	encPool.Put(e)
	return err
}

// record is one decoded log record of any kind.
type record struct {
	kind   byte // 0 = plain commit
	ts     mvto.TS
	ops    []graph.LoggedOp
	gtx    uint64
	commit bool
}

// decodeRecord decodes a payload of any record type. Plain commit payloads
// (first u64 != marker) decode exactly as before the 2PC extension.
func decodeRecord(b []byte) (record, error) {
	if len(b) >= 8 && binary.LittleEndian.Uint64(b) == twopcMarker {
		d := &decoder{b: b, off: 8}
		switch d.u8() {
		case recPrepare:
			gtx := d.u64()
			ts := mvto.TS(d.u64())
			if ts == mvto.Infinity {
				return record{}, ErrCorrupt
			}
			n := int(d.u32())
			if d.err != nil || n < 0 || n > 1<<26 {
				return record{}, ErrCorrupt
			}
			ops, err := decodeOps(d, n)
			if err != nil {
				return record{}, err
			}
			if d.off != len(b) {
				return record{}, ErrCorrupt
			}
			return record{kind: recPrepare, gtx: gtx, ts: ts, ops: ops}, nil
		case recDecision:
			gtx := d.u64()
			outcome := d.u8()
			if d.err != nil || d.off != len(b) || outcome > outcomeCommit {
				return record{}, ErrCorrupt
			}
			return record{kind: recDecision, gtx: gtx, commit: outcome == outcomeCommit}, nil
		default:
			return record{}, ErrCorrupt
		}
	}
	ts, ops, err := decodeCommit(b)
	if err != nil {
		return record{}, err
	}
	return record{ts: ts, ops: ops}, nil
}

// DecisionSet is the folded content of a coordinator log: the final outcome
// of every decided distributed transaction and the highest gtx seen.
type DecisionSet struct {
	Outcomes map[uint64]bool // gtx -> committed
	MaxGtx   uint64
	// ValidLen/TornTail mirror ReplayStats for torn-tail trimming.
	ValidLen int64
	TornTail bool
}

// Decided reports the outcome recorded for gtx; ok is false when the
// coordinator never decided it (presumed abort).
func (d *DecisionSet) Decided(gtx uint64) (commit, ok bool) {
	if d == nil {
		return false, false
	}
	commit, ok = d.Outcomes[gtx]
	return commit, ok
}

// ReadDecisions streams a coordinator log and folds its decision records.
// A missing file yields an empty set. Torn tails are tolerated exactly like
// ReplayFS; interior corruption returns ErrCorrupt.
func ReadDecisions(fsys vfs.FS, path string) (*DecisionSet, error) {
	if fsys == nil {
		fsys = vfs.OS()
	}
	ds := &DecisionSet{Outcomes: make(map[uint64]bool)}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return ds, nil
		}
		return nil, fmt.Errorf("wal: decisions open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	err = streamRecords(r, ds, func(rec record) error {
		if rec.kind != recDecision {
			return fmt.Errorf("%w: non-decision record in coordinator log", ErrCorrupt)
		}
		// Later records win, though a coordinator never re-decides.
		ds.Outcomes[rec.gtx] = rec.commit
		if rec.gtx > ds.MaxGtx {
			ds.MaxGtx = rec.gtx
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// streamRecords drives the shared framed-record scan loop over r, calling fn
// for each valid record and recording ValidLen/TornTail in ds. It applies
// the same torn-tail-vs-interior-corruption policy as ReplayFS.
func streamRecords(r *bufio.Reader, ds *DecisionSet, fn func(record) error) error {
	tailOrCorrupt := func(off int64, after []byte, what string) error {
		rest, err := io.ReadAll(r)
		if err != nil {
			return fmt.Errorf("wal: decisions read: %w", err)
		}
		scan := make([]byte, 0, len(after)+len(rest))
		scan = append(append(scan, after...), rest...)
		if scanForRecord(scan) {
			return fmt.Errorf("%w: %s at offset %d before further valid records", ErrCorrupt, what, off)
		}
		ds.TornTail = true
		return nil
	}
	var off int64
	hdr := make([]byte, recordHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				ds.TornTail = true
				break
			}
			return fmt.Errorf("wal: decisions read: %w", err)
		}
		size := int(binary.LittleEndian.Uint32(hdr))
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if size > 1<<30 {
			if err := tailOrCorrupt(off, nil, "implausible record size"); err != nil {
				return err
			}
			break
		}
		if cap(payload) < size {
			payload = make([]byte, size)
		}
		payload = payload[:size]
		n, err := io.ReadFull(r, payload)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if err := tailOrCorrupt(off, payload[:n], "over-long record"); err != nil {
				return err
			}
			break
		} else if err != nil {
			return fmt.Errorf("wal: decisions read: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if err := tailOrCorrupt(off, payload, "checksum mismatch"); err != nil {
				return err
			}
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += int64(recordHeaderSize + size)
	}
	ds.ValidLen = off
	return nil
}

// decodeOps decodes n operations from d (the shared op wire format).
func decodeOps(d *decoder, n int) ([]graph.LoggedOp, error) {
	ops := make([]graph.LoggedOp, 0, n)
	for i := 0; i < n; i++ {
		var op graph.LoggedOp
		op.Kind = graph.OpKind(d.u8())
		op.ID = d.u64()
		switch op.Kind {
		case graph.OpAddNode:
			op.Label = d.str()
			if cnt := int(d.u16()); cnt > 0 {
				op.Props = make(map[string]graph.Value, cnt)
				for j := 0; j < cnt; j++ {
					k := d.str()
					op.Props[k] = d.value()
				}
			}
		case graph.OpAddRel:
			op.Src = d.u64()
			op.Dst = d.u64()
			op.Label = d.str()
			op.Weight = math.Float64frombits(d.u64())
		case graph.OpDeleteNode, graph.OpDeleteRel:
		case graph.OpSetNodeProp, graph.OpSetRelProp:
			op.Key = d.str()
			op.Val = d.value()
		case graph.OpSetRelWeight:
			op.Weight = math.Float64frombits(d.u64())
		default:
			return nil, ErrCorrupt
		}
		if d.err != nil {
			return nil, d.err
		}
		ops = append(ops, op)
	}
	return ops, nil
}
