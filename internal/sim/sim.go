// Package sim provides the calibrated hardware cost models that stand in
// for the paper's testbed hardware (NVIDIA A100 over PCIe 4.0, Intel Optane
// DCPMM). The reproduction computes every result for real on the host; what
// these models provide are *simulated durations* for the operations that,
// in the paper, ran on hardware we do not have: device transfers, GPU
// kernel execution, and persistent-memory stores.
//
// Simulated durations are kept as a distinct type so callers can never
// silently mix them with measured wall time; latency breakdowns report the
// two side by side (see Latency).
package sim

import (
	"fmt"
	"time"
)

// Duration is a simulated duration, produced by a cost model rather than by
// a wall clock.
type Duration time.Duration

// String formats like time.Duration.
func (d Duration) String() string { return time.Duration(d).String() }

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return time.Duration(d).Seconds() }

// Milliseconds reports the duration in fractional milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(time.Millisecond) }

// Latency is a composite latency: wall time actually measured on the host
// plus simulated time charged by hardware cost models. Experiment harnesses
// report Total; EXPERIMENTS.md notes which component dominates where.
type Latency struct {
	Wall time.Duration
	Sim  Duration
}

// Total is the combined latency as if the simulated hardware were real and
// the operations ran back to back.
func (l Latency) Total() time.Duration { return l.Wall + time.Duration(l.Sim) }

// Add accumulates another latency into l.
func (l *Latency) Add(o Latency) {
	l.Wall += o.Wall
	l.Sim += o.Sim
}

// AddWall accumulates measured host time.
func (l *Latency) AddWall(d time.Duration) { l.Wall += d }

// AddSim accumulates simulated device time.
func (l *Latency) AddSim(d Duration) { l.Sim += d }

// String renders the breakdown.
func (l Latency) String() string {
	return fmt.Sprintf("%v (wall %v + sim %v)", l.Total(), l.Wall, l.Sim)
}

// PCIeModel models a host<->device interconnect: a fixed per-transfer
// latency plus a streaming bandwidth term.
type PCIeModel struct {
	Latency      Duration // per-transfer setup cost
	BytesPerSec  float64  // sustained copy bandwidth
	PinnedFactor float64  // multiplier <1 applied when staging from pinned memory; 0 means 1
}

// Transfer returns the simulated time to move n bytes across the link.
func (m PCIeModel) Transfer(n int64) Duration {
	if n < 0 {
		panic(fmt.Sprintf("sim: Transfer(%d): negative size", n))
	}
	bw := m.BytesPerSec
	if bw <= 0 {
		panic("sim: PCIeModel with non-positive bandwidth")
	}
	f := m.PinnedFactor
	if f <= 0 {
		f = 1
	}
	secs := float64(n) / bw * f
	return m.Latency + Duration(secs*float64(time.Second))
}

// KernelModel models a GPU kernel class: a launch overhead plus a
// throughput in units of work per second. Work is whatever the kernel
// counts — traversed edges for graph kernels, touched elements for
// memory-bound kernels.
type KernelModel struct {
	Launch     Duration
	WorkPerSec float64
}

// Run returns the simulated execution time for the given amount of work.
func (m KernelModel) Run(work float64) Duration {
	if work < 0 {
		panic(fmt.Sprintf("sim: Run(%g): negative work", work))
	}
	if m.WorkPerSec <= 0 {
		panic("sim: KernelModel with non-positive throughput")
	}
	return m.Launch + Duration(work/m.WorkPerSec*float64(time.Second))
}

// MediaModel models a storage medium's byte-addressable write path: a per
// flush-line latency and a sustained write bandwidth. It is used by the
// simulated persistent-memory arena to charge the extra cost of persisting
// (flush + fence) relative to plain DRAM stores.
type MediaModel struct {
	FlushLatency Duration // per cache-line flush+fence
	BytesPerSec  float64  // sustained write bandwidth
	LineSize     int      // flush granularity in bytes; 0 means 64
}

// PersistCost returns the simulated extra time to persist n bytes starting
// at an arbitrary offset (whole lines are flushed).
func (m MediaModel) PersistCost(n int) Duration {
	if n <= 0 {
		return 0
	}
	line := m.LineSize
	if line == 0 {
		line = 64
	}
	lines := (n + line - 1) / line
	d := Duration(lines) * m.FlushLatency
	if m.BytesPerSec > 0 {
		d += Duration(float64(n) / m.BytesPerSec * float64(time.Second))
	}
	return d
}

// Defaults calibrated against the paper's testbed (§6.1) and its measured
// figures (§1, §6.6, Table 1):
//
//   - PCIe 4.0 x16 to the A100: §6.6 reports copying the SF10 CSR (≈17 GB)
//     in 720.64 ms → ≈24 GB/s sustained, which matches PCIe 4.0 practice.
//   - GPU graph kernel throughputs are fitted to Table 1 on Graph 500
//     scale 24 (≈260 M directed edges): BFS 0.07 s ≈ 3.7 G edges/s,
//     SSSP 0.13 s over ≈2 effective passes ≈ 4 G edges/s, and PR 0.30 s
//     over 10 iterations ≈ 8.7 G edges/s.
//   - DCPMM AppDirect write path: ≈2.3 GB/s per DIMM sustained and ≈100 ns
//     extra per flushed line, the commonly reported Optane figures.
func DefaultPCIe() PCIeModel {
	return PCIeModel{Latency: Duration(10 * time.Microsecond), BytesPerSec: 24e9}
}

// Kernel classes used by the analytics package.
const (
	KernelBFS      = "bfs"
	KernelPageRank = "pagerank"
	KernelSSSP     = "sssp"
	KernelWCC      = "wcc"
	KernelCDLP     = "cdlp"
	KernelLCC      = "lcc"
	KernelIngest   = "ingest" // dynamic-structure batched update ingestion
)

// DefaultKernels returns the calibrated kernel models keyed by class.
func DefaultKernels() map[string]KernelModel {
	launch := Duration(20 * time.Microsecond)
	return map[string]KernelModel{
		KernelBFS:      {Launch: launch, WorkPerSec: 3.7e9},
		KernelPageRank: {Launch: launch, WorkPerSec: 8.7e9},
		KernelSSSP:     {Launch: launch, WorkPerSec: 4.0e9},
		KernelWCC:      {Launch: launch, WorkPerSec: 6.0e9},
		KernelCDLP:     {Launch: launch, WorkPerSec: 2.5e9}, // label histogram per edge
		KernelLCC:      {Launch: launch, WorkPerSec: 5.0e9}, // per neighbor-pair probe
		KernelIngest:   {Launch: launch, WorkPerSec: 2.0e9},
	}
}

// DefaultPMem returns the calibrated DCPMM write model.
func DefaultPMem() MediaModel {
	return MediaModel{
		FlushLatency: Duration(100 * time.Nanosecond),
		BytesPerSec:  2.3e9,
		LineSize:     64,
	}
}
