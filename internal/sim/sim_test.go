package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPCIeTransferLinearInBytes(t *testing.T) {
	m := PCIeModel{Latency: Duration(time.Microsecond), BytesPerSec: 1e9}
	d1 := m.Transfer(1e9) // 1 GB at 1 GB/s = 1s + latency
	want := Duration(time.Second + time.Microsecond)
	if d1 != want {
		t.Fatalf("Transfer(1GB) = %v, want %v", d1, want)
	}
	if m.Transfer(0) != Duration(time.Microsecond) {
		t.Fatalf("Transfer(0) should be pure latency, got %v", m.Transfer(0))
	}
}

func TestPCIePinnedFactor(t *testing.T) {
	m := PCIeModel{BytesPerSec: 1e9, PinnedFactor: 0.5}
	if got, want := m.Transfer(1e9), Duration(500*time.Millisecond); got != want {
		t.Fatalf("pinned Transfer = %v, want %v", got, want)
	}
}

func TestTransferMonotone(t *testing.T) {
	m := DefaultPCIe()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return m.Transfer(x) <= m.Transfer(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelRun(t *testing.T) {
	m := KernelModel{Launch: Duration(10 * time.Microsecond), WorkPerSec: 1e6}
	if got, want := m.Run(1e6), Duration(time.Second+10*time.Microsecond); got != want {
		t.Fatalf("Run = %v, want %v", got, want)
	}
	if m.Run(0) != Duration(10*time.Microsecond) {
		t.Fatal("zero work should cost launch overhead only")
	}
}

func TestMediaPersistCostLineRounding(t *testing.T) {
	m := MediaModel{FlushLatency: Duration(100 * time.Nanosecond), LineSize: 64}
	if m.PersistCost(0) != 0 {
		t.Fatal("PersistCost(0) != 0")
	}
	if got, want := m.PersistCost(1), Duration(100*time.Nanosecond); got != want {
		t.Fatalf("1 byte = %v, want one line %v", got, want)
	}
	if got, want := m.PersistCost(65), Duration(200*time.Nanosecond); got != want {
		t.Fatalf("65 bytes = %v, want two lines %v", got, want)
	}
}

func TestMediaDefaultLineSize(t *testing.T) {
	m := MediaModel{FlushLatency: Duration(time.Nanosecond)}
	if m.PersistCost(64) != m.PersistCost(1) {
		t.Fatalf("default line size: 64 bytes %v vs 1 byte %v should match",
			m.PersistCost(64), m.PersistCost(1))
	}
	if m.PersistCost(65) <= m.PersistCost(64) {
		t.Fatal("crossing default line boundary should cost more")
	}
}

func TestLatencyAccumulation(t *testing.T) {
	var l Latency
	l.AddWall(2 * time.Millisecond)
	l.AddSim(Duration(3 * time.Millisecond))
	l.Add(Latency{Wall: time.Millisecond, Sim: Duration(time.Millisecond)})
	if l.Wall != 3*time.Millisecond || l.Sim != Duration(4*time.Millisecond) {
		t.Fatalf("accumulated latency = %+v", l)
	}
	if l.Total() != 7*time.Millisecond {
		t.Fatalf("Total = %v, want 7ms", l.Total())
	}
}

func TestDefaultsCalibration(t *testing.T) {
	// §6.6: SF10 CSR (~17.3 GB) copied to GPU in 720.64 ms. The default
	// model should land in the same regime (±25%).
	const sf10CSRBytes = 17.3e9
	got := DefaultPCIe().Transfer(int64(sf10CSRBytes)).Seconds()
	if got < 0.54 || got > 0.90 {
		t.Fatalf("SF10 CSR transfer = %.3fs, want ≈0.72s", got)
	}

	// Table 1: BFS on Graph500 scale 24 (≈260M directed edges after dedup,
	// counted once per traversal) ran in 0.07 s on the A100.
	kb := DefaultKernels()[KernelBFS]
	if got := kb.Run(260e6).Seconds(); got < 0.05 || got > 0.10 {
		t.Fatalf("BFS kernel = %.3fs, want ≈0.07s", got)
	}
	// PR: 10 iterations over 260M edges in 0.30 s.
	kp := DefaultKernels()[KernelPageRank]
	if got := kp.Run(10 * 260e6).Seconds(); got < 0.2 || got > 0.45 {
		t.Fatalf("PR kernel = %.3fs, want ≈0.30s", got)
	}
}

func TestNegativeInputsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"transfer": func() { DefaultPCIe().Transfer(-1) },
		"kernel":   func() { DefaultKernels()[KernelBFS].Run(-1) },
		"zero-bw":  func() { (PCIeModel{}).Transfer(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
