// Package vfs abstracts the filesystem surface the durability layers (the
// write-ahead log and the simulated persistent-memory pools) use to reach
// stable storage. Production code takes an FS and defaults to the real OS
// filesystem; the fault-injection harness (internal/faultinject) wraps one
// to fail, tear, or crash individual persist operations, so the exact code
// paths that run in production are the ones that get crashed under test.
package vfs

import (
	"io"
	"os"
)

// File is the file surface the durability layers need: sequential and
// positional reads and writes, truncation, and explicit synchronization.
// *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Truncate changes the file size (used to rewind a partially appended
	// log record).
	Truncate(size int64) error
	// Sync flushes the file to stable storage.
	Sync() error
	// Stat reports file metadata.
	Stat() (os.FileInfo, error)
}

// FS is the directory-level surface: opening files plus the metadata
// operations crash-atomic rename schemes depend on.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat reports metadata for name.
	Stat(name string) (os.FileInfo, error)
	// MkdirAll creates name and any missing parents.
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs the directory at name, making preceding renames and
	// file creations within it durable.
	SyncDir(name string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real OS filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
