package vfs

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
)

// ErrDiskFull is the error a BudgetFS returns once its byte budget is
// exhausted. It wraps syscall.ENOSPC so callers that classify storage
// errors the POSIX way (errors.Is(err, syscall.ENOSPC)) see a realistic
// disk-full condition rather than a generic injected error.
var ErrDiskFull = fmt.Errorf("vfs: disk full: %w", syscall.ENOSPC)

// BudgetFS wraps an FS and simulates a volume running out of space: once
// the cumulative bytes written to files under Prefix exceed the budget,
// every further write there fails with ErrDiskFull. A write straddling the
// boundary is applied partially (the bytes that still fit land, the rest do
// not) and still returns ErrDiskFull — exactly the short-write shape a real
// ENOSPC produces, which is what makes the WAL's rewind-and-latch path
// worth exercising under it.
//
// Unlike a crash, the medium stays readable and metadata operations keep
// working; only data writes are refused. SetBudget refills the budget at
// runtime (the operator freed space), composing with faultinject.FS on
// either side.
type BudgetFS struct {
	inner FS

	mu        sync.Mutex
	prefix    string
	remaining int64
	exhausted bool
}

// DiskBudget wraps inner so writes under prefix fail with ErrDiskFull after
// budget bytes. An empty prefix budgets every path.
func DiskBudget(inner FS, budget int64, prefix string) *BudgetFS {
	return &BudgetFS{inner: inner, prefix: prefix, remaining: budget}
}

// SetBudget resets the remaining byte budget (simulating freed space) and
// clears the exhausted latch.
func (b *BudgetFS) SetBudget(n int64) {
	b.mu.Lock()
	b.remaining = n
	b.exhausted = false
	b.mu.Unlock()
}

// Remaining reports the bytes still writable before ErrDiskFull.
func (b *BudgetFS) Remaining() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remaining
}

// Exhausted reports whether any write has hit the budget since the last
// SetBudget.
func (b *BudgetFS) Exhausted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.exhausted
}

// charge reserves up to n bytes and reports how many fit.
func (b *BudgetFS) charge(n int) (allowed int, full bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if int64(n) <= b.remaining {
		b.remaining -= int64(n)
		return n, false
	}
	allowed = int(b.remaining)
	b.remaining = 0
	b.exhausted = true
	return allowed, true
}

var _ FS = (*BudgetFS)(nil)

func (b *BudgetFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := b.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	budgeted := b.prefix == "" || strings.HasPrefix(name, b.prefix)
	b.mu.Unlock()
	if !budgeted {
		return f, nil
	}
	return &budgetFile{File: f, fs: b}, nil
}

func (b *BudgetFS) Rename(oldname, newname string) error { return b.inner.Rename(oldname, newname) }
func (b *BudgetFS) Remove(name string) error             { return b.inner.Remove(name) }
func (b *BudgetFS) Stat(name string) (os.FileInfo, error) {
	return b.inner.Stat(name)
}
func (b *BudgetFS) MkdirAll(name string, perm os.FileMode) error {
	return b.inner.MkdirAll(name, perm)
}
func (b *BudgetFS) SyncDir(name string) error { return b.inner.SyncDir(name) }

// budgetFile charges data writes against the shared budget.
type budgetFile struct {
	File
	fs *BudgetFS
}

func (f *budgetFile) Write(p []byte) (int, error) {
	allowed, full := f.fs.charge(len(p))
	if !full {
		return f.File.Write(p)
	}
	var n int
	if allowed > 0 {
		n, _ = f.File.Write(p[:allowed])
	}
	return n, ErrDiskFull
}

func (f *budgetFile) WriteAt(p []byte, off int64) (int, error) {
	allowed, full := f.fs.charge(len(p))
	if !full {
		return f.File.WriteAt(p, off)
	}
	var n int
	if allowed > 0 {
		n, _ = f.File.WriteAt(p[:allowed], off)
	}
	return n, ErrDiskFull
}
