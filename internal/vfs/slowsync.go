package vfs

import (
	"os"
	"time"
)

// SlowSync wraps fs so every File.Sync sleeps for d before delegating —
// a deterministic stand-in for a storage device with a fixed flush
// latency. The WAL group-commit tests and benchmarks use it to make fsync
// the bottleneck regardless of how fast the host's page cache is, so batch
// formation (and the serialized baseline's flat-line) is observable on any
// machine.
func SlowSync(fs FS, d time.Duration) FS {
	return slowSyncFS{fs: fs, d: d}
}

type slowSyncFS struct {
	fs FS
	d  time.Duration
}

func (s slowSyncFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := s.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{File: f, d: s.d}, nil
}

func (s slowSyncFS) Rename(oldname, newname string) error { return s.fs.Rename(oldname, newname) }
func (s slowSyncFS) Remove(name string) error             { return s.fs.Remove(name) }
func (s slowSyncFS) Stat(name string) (os.FileInfo, error) {
	return s.fs.Stat(name)
}
func (s slowSyncFS) MkdirAll(name string, perm os.FileMode) error {
	return s.fs.MkdirAll(name, perm)
}
func (s slowSyncFS) SyncDir(name string) error { return s.fs.SyncDir(name) }

type slowSyncFile struct {
	File
	d time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.d)
	return f.File.Sync()
}
