package ldbc

import (
	"reflect"
	"sort"
	"testing"

	"h2tap/internal/graph"
)

func TestSNBDeterministic(t *testing.T) {
	a := GenerateSNB(SNBConfig{SF: 1, Downscale: 50, Seed: 7})
	b := GenerateSNB(SNBConfig{SF: 1, Downscale: 50, Seed: 7})
	if !reflect.DeepEqual(a.Edges, b.Edges) || len(a.Nodes) != len(b.Nodes) {
		t.Fatal("same seed produced different datasets")
	}
	c := GenerateSNB(SNBConfig{SF: 1, Downscale: 50, Seed: 8})
	if reflect.DeepEqual(a.Edges, c.Edges) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSNBComposition(t *testing.T) {
	d := GenerateSNB(SNBConfig{SF: 1, Downscale: 50, Seed: 1})
	if len(d.Persons)+len(d.Posts) != d.NumNodes() {
		t.Fatal("node partition inconsistent")
	}
	if len(d.Posts) <= len(d.Persons) {
		t.Fatalf("posts (%d) should outnumber persons (%d)", len(d.Posts), len(d.Persons))
	}
	// All edge endpoints valid; no self-loops; no duplicate (src,dst).
	type key struct{ s, d uint64 }
	seen := map[key]bool{}
	for _, e := range d.Edges {
		if e.Src >= uint64(d.NumNodes()) || e.Dst >= uint64(d.NumNodes()) {
			t.Fatalf("edge endpoint out of range: %+v", e)
		}
		if e.Src == e.Dst {
			t.Fatalf("self-loop: %+v", e)
		}
		k := key{e.Src, e.Dst}
		if seen[k] {
			t.Fatalf("duplicate edge %+v", e)
		}
		seen[k] = true
	}
}

func TestSNBScaling(t *testing.T) {
	d1 := GenerateSNB(SNBConfig{SF: 1, Downscale: 50, Seed: 1})
	d3 := GenerateSNB(SNBConfig{SF: 3, Downscale: 50, Seed: 1})
	if d3.NumNodes() < 2*d1.NumNodes() || d3.NumEdges() < 2*d1.NumEdges() {
		t.Fatalf("SF3 (%d nodes, %d edges) not ≈3× SF1 (%d, %d)",
			d3.NumNodes(), d3.NumEdges(), d1.NumNodes(), d1.NumEdges())
	}
}

func TestSNBDegreeSkew(t *testing.T) {
	d := GenerateSNB(SNBConfig{SF: 1, Downscale: 10, Seed: 1})
	deg := make(map[uint64]int)
	for _, e := range d.Edges {
		deg[e.Src]++
	}
	var degs []int
	for _, p := range d.Persons {
		degs = append(degs, deg[p])
	}
	sort.Ints(degs)
	lo := degs[len(degs)/10]              // 10th percentile
	hi := degs[len(degs)-1-len(degs)/100] // 99th percentile
	if hi < lo*3 {
		t.Fatalf("degree distribution not skewed: p10=%d p99=%d", lo, hi)
	}
}

func TestSNBLoadsIntoStore(t *testing.T) {
	d := GenerateSNB(SNBConfig{SF: 1, Downscale: 100, Seed: 1})
	s := graph.NewStore()
	ts, err := d.Load(s)
	if err != nil {
		t.Fatal(err)
	}
	if s.LiveNodes() != int64(d.NumNodes()) || s.LiveRels() != int64(d.NumEdges()) {
		t.Fatalf("loaded %d/%d, want %d/%d",
			s.LiveNodes(), s.LiveRels(), d.NumNodes(), d.NumEdges())
	}
	persons := s.NodesByLabelAt(LabelPerson, ts)
	if len(persons) != len(d.Persons) {
		t.Fatalf("Person nodes = %d, want %d", len(persons), len(d.Persons))
	}
}

func TestRMATBasics(t *testing.T) {
	d := GenerateRMAT(RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 3})
	if d.NumNodes() != 1024 {
		t.Fatalf("nodes = %d", d.NumNodes())
	}
	if d.NumEdges() < 4*1024 || d.NumEdges() > 8*1024 {
		t.Fatalf("edges = %d, want within (4k, 8k] after dedup", d.NumEdges())
	}
	type key struct{ s, d uint64 }
	seen := map[key]bool{}
	for _, e := range d.Edges {
		if e.Src == e.Dst {
			t.Fatal("self-loop survived")
		}
		if e.Src >= 1024 || e.Dst >= 1024 {
			t.Fatal("endpoint out of range")
		}
		k := key{e.Src, e.Dst}
		if seen[k] {
			t.Fatal("duplicate edge survived")
		}
		seen[k] = true
		if e.Weight < 1 {
			t.Fatal("non-positive weight")
		}
	}
}

func TestRMATSkew(t *testing.T) {
	d := GenerateRMAT(RMATConfig{Scale: 12, Seed: 1})
	deg := make([]int, 1<<12)
	for _, e := range d.Edges {
		deg[e.Src]++
	}
	sort.Ints(deg)
	max := deg[len(deg)-1]
	median := deg[len(deg)/2]
	if max < median*5 {
		t.Fatalf("RMAT not skewed: max=%d median=%d", max, median)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := GenerateRMAT(RMATConfig{Scale: 8, Seed: 9})
	b := GenerateRMAT(RMATConfig{Scale: 8, Seed: 9})
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Fatal("same seed differs")
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"snb-zero-sf": func() { GenerateSNB(SNBConfig{SF: 0}) },
		"rmat-scale":  func() { GenerateRMAT(RMATConfig{Scale: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
