// Package ldbc generates the evaluation datasets of §6.2 — an LDBC Social
// Network Benchmark–like property graph at configurable scale factors, and
// a Graph 500–style RMAT graph for the analytics workload (§6.2's
// Graphalytics runs) — deterministically and fully synthetic (DESIGN.md §2
// documents the substitution for the real LDBC datasets).
//
// The SNB-like graph preserves what the update-handling experiments depend
// on: entity types (Person, Post) connected by knows/likes/hasCreator
// relationships, a heavily skewed (Zipfian) degree distribution so the
// LoDeg/HiDeg windows of §6.3 are meaningful, and linear scaling of nodes
// and edges with the scale factor (Fig 9's x-axis).
package ldbc

import (
	"fmt"
	"math/rand"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
)

// Labels used by the generated property graph.
const (
	LabelPerson = "Person"
	LabelPost   = "Post"

	RelKnows      = "knows"
	RelLikes      = "likes"
	RelHasCreator = "hasCreator"
)

// Dataset is a generated graph ready for bulk loading.
type Dataset struct {
	Nodes   []graph.NodeSpec
	Edges   []graph.EdgeSpec
	Persons []uint64 // node IDs labeled Person
	Posts   []uint64 // node IDs labeled Post
}

// NumNodes reports the node count.
func (d *Dataset) NumNodes() int { return len(d.Nodes) }

// NumEdges reports the edge count.
func (d *Dataset) NumEdges() int { return len(d.Edges) }

// Load bulk-loads the dataset into a fresh position in the store and
// returns the load commit timestamp.
func (d *Dataset) Load(s *graph.Store) (mvto.TS, error) {
	return s.BulkLoad(d.Nodes, d.Edges)
}

// SNBConfig parameterizes the SNB-like generator.
type SNBConfig struct {
	// SF is the scale factor (the paper uses 1, 3, 10, 30).
	SF float64
	// Downscale divides the per-SF node budgets so experiments fit
	// laptop-scale runs; 0 selects the default of 10. Downscale 1
	// approaches the real SNB topology sizes.
	Downscale int
	// Seed makes generation deterministic; same seed, same graph.
	Seed int64
}

// Per-SF budgets before downscaling, approximating SNB's composition
// (persons ≪ posts, person degree dominated by likes).
const (
	personsPerSF = 10_000
	postsPerSF   = 40_000
	knowsMean    = 20 // knows edges per person (Zipf-skewed)
	likesMean    = 28 // likes edges per person (Zipf-skewed)
)

// GenerateSNB produces the SNB-like dataset.
func GenerateSNB(cfg SNBConfig) *Dataset {
	if cfg.SF <= 0 {
		panic(fmt.Sprintf("ldbc: non-positive scale factor %v", cfg.SF))
	}
	down := cfg.Downscale
	if down == 0 {
		down = 10
	}
	nPersons := int(personsPerSF*cfg.SF) / down
	if nPersons < 10 {
		nPersons = 10
	}
	nPosts := int(postsPerSF*cfg.SF) / down
	if nPosts < 20 {
		nPosts = 20
	}
	r := rand.New(rand.NewSource(cfg.Seed ^ 0x534e42))

	d := &Dataset{
		Nodes:   make([]graph.NodeSpec, 0, nPersons+nPosts),
		Persons: make([]uint64, 0, nPersons),
		Posts:   make([]uint64, 0, nPosts),
	}
	for i := 0; i < nPersons; i++ {
		d.Persons = append(d.Persons, uint64(len(d.Nodes)))
		d.Nodes = append(d.Nodes, graph.NodeSpec{
			Label: LabelPerson,
			Props: map[string]graph.Value{
				"id":        graph.Int(int64(i)),
				"birthYear": graph.Int(int64(1950 + r.Intn(60))),
			},
		})
	}
	for i := 0; i < nPosts; i++ {
		d.Posts = append(d.Posts, uint64(len(d.Nodes)))
		d.Nodes = append(d.Nodes, graph.NodeSpec{
			Label: LabelPost,
			Props: map[string]graph.Value{
				"id":     graph.Int(int64(i)),
				"length": graph.Int(int64(r.Intn(2000))),
			},
		})
	}

	// Zipf-skewed degrees: a few celebrities, a long tail — the skew the
	// LoDeg/HiDeg windows of §6.3 slide over. Destination choice is also
	// skewed (popular people / viral posts).
	degZipf := rand.NewZipf(r, 1.3, 4, uint64(knowsMean*4))
	likeZipf := rand.NewZipf(r, 1.2, 4, uint64(likesMean*4))
	personPick := rand.NewZipf(r, 1.1, 8, uint64(nPersons-1))
	postPick := rand.NewZipf(r, 1.1, 8, uint64(nPosts-1))

	addUnique := func(src uint64, used map[uint64]bool, dst uint64, label string, w float64) {
		if dst == src || used[dst] {
			return
		}
		used[dst] = true
		d.Edges = append(d.Edges, graph.EdgeSpec{Src: src, Dst: dst, Label: label, Weight: w})
	}

	for _, p := range d.Persons {
		used := make(map[uint64]bool)
		nKnows := int(degZipf.Uint64()) + 1
		for k := 0; k < nKnows; k++ {
			q := d.Persons[personPick.Uint64()]
			addUnique(p, used, q, RelKnows, 1+float64(r.Intn(9)))
		}
		nLikes := int(likeZipf.Uint64()) + 1
		for k := 0; k < nLikes; k++ {
			q := d.Posts[postPick.Uint64()]
			addUnique(p, used, q, RelLikes, 1)
		}
	}
	// Every post has a creator (gives posts out-degree 1).
	for _, post := range d.Posts {
		creator := d.Persons[personPick.Uint64()]
		d.Edges = append(d.Edges, graph.EdgeSpec{
			Src: post, Dst: creator, Label: RelHasCreator, Weight: 1,
		})
	}
	return d
}

// RMATConfig parameterizes the Graph 500–style recursive-matrix generator.
type RMATConfig struct {
	// Scale: 2^Scale vertices (Graph 500 scale 24 in the paper; the
	// default harness uses a smaller scale, same generator).
	Scale int
	// EdgeFactor: edges per vertex (Graph 500 uses 16). 0 selects 16.
	EdgeFactor int
	// A, B, C are the RMAT quadrant probabilities (defaults 0.57, 0.19,
	// 0.19 — the Graph 500 values).
	A, B, C float64
	Seed    int64
}

// GenerateRMAT produces a weighted directed RMAT graph with duplicate edges
// and self-loops removed (keeping the main graph's simple-edge invariant).
func GenerateRMAT(cfg RMATConfig) *Dataset {
	if cfg.Scale <= 0 || cfg.Scale > 30 {
		panic(fmt.Sprintf("ldbc: bad RMAT scale %d", cfg.Scale))
	}
	if cfg.EdgeFactor == 0 {
		cfg.EdgeFactor = 16
	}
	if cfg.A == 0 && cfg.B == 0 && cfg.C == 0 {
		cfg.A, cfg.B, cfg.C = 0.57, 0.19, 0.19
	}
	n := 1 << cfg.Scale
	m := n * cfg.EdgeFactor
	r := rand.New(rand.NewSource(cfg.Seed ^ 0x524d4154))

	d := &Dataset{Nodes: make([]graph.NodeSpec, n), Edges: make([]graph.EdgeSpec, 0, m)}
	for i := range d.Nodes {
		d.Nodes[i] = graph.NodeSpec{Label: "Vertex"}
	}
	seen := make(map[uint64]bool, m)
	for k := 0; k < m; k++ {
		var src, dst uint64
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			p := r.Float64()
			switch {
			case p < cfg.A: // top-left
			case p < cfg.A+cfg.B: // top-right
				dst |= 1 << bit
			case p < cfg.A+cfg.B+cfg.C: // bottom-left
				src |= 1 << bit
			default: // bottom-right
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		if src == dst {
			continue
		}
		key := src<<32 | dst
		if seen[key] {
			continue
		}
		seen[key] = true
		d.Edges = append(d.Edges, graph.EdgeSpec{
			Src: src, Dst: dst, Label: "edge", Weight: 1 + float64(r.Intn(9)),
		})
	}
	return d
}
