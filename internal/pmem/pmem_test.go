package pmem

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"h2tap/internal/sim"
)

func testPool(t *testing.T, capacity int64) *Pool {
	t.Helper()
	p, err := Create(filepath.Join(t.TempDir(), "test.pool"), capacity, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.pool")
	p, err := Create(path, 1<<20, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	off, err := p.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if off%64 != 0 {
		t.Fatalf("allocation not cache-line aligned: %d", off)
	}
	if err := p.Store(off, []byte("hello persistent world")); err != nil {
		t.Fatal(err)
	}
	if err := p.SetRoot(off, 22); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(path, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	rOff, rLen := p2.Root()
	if rOff != off || rLen != 22 {
		t.Fatalf("recovered root = (%d, %d), want (%d, 22)", rOff, rLen, off)
	}
	if got := string(p2.View(rOff, rLen)); got != "hello persistent world" {
		t.Fatalf("recovered data = %q", got)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, sim.DefaultPMem()); !errors.Is(err, ErrBadPool) {
		t.Fatalf("Open(garbage) = %v, want ErrBadPool", err)
	}
	if _, err := Open(filepath.Join(dir, "missing"), sim.DefaultPMem()); err == nil {
		t.Fatal("Open(missing) succeeded")
	}
}

func TestAllocExhaustion(t *testing.T) {
	p := testPool(t, headerSize+256)
	if _, err := p.Alloc(200); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(200); !errors.Is(err, ErrOutOfSpace) {
		t.Fatalf("over-allocation = %v, want ErrOutOfSpace", err)
	}
}

func TestAllocCursorSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.pool")
	p, err := Create(path, 1<<20, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Alloc(100)
	b, _ := p.Alloc(100)
	if b <= a {
		t.Fatalf("allocations overlap: %d then %d", a, b)
	}
	// Simulated crash: drop the Pool without Close. Write-through already
	// made the cursor durable.
	p.f.Close()

	p2, err := Open(path, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	c, err := p2.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if c <= b {
		t.Fatalf("post-recovery allocation %d overlaps pre-crash %d", c, b)
	}
}

func TestPersistChargesSimTime(t *testing.T) {
	p := testPool(t, 1<<20)
	p.ResetSimTime()
	off, _ := p.Alloc(4096)
	if err := p.Persist(off, 4096); err != nil {
		t.Fatal(err)
	}
	if p.SimTime() <= 0 {
		t.Fatal("Persist charged no simulated time")
	}
	before := p.SimTime()
	if err := p.Persist(off, 0); err != nil {
		t.Fatal(err)
	}
	if p.SimTime() != before {
		t.Fatal("zero-length persist charged time")
	}
}

func TestUintFloatAccessors(t *testing.T) {
	p := testPool(t, 1<<20)
	off, _ := p.Alloc(64)
	if err := p.PutUint64(off, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	if got := p.GetUint64(off); got != 0xdeadbeefcafe {
		t.Fatalf("GetUint64 = %#x", got)
	}
	if err := p.PutFloat64(off+8, 3.25); err != nil {
		t.Fatal(err)
	}
	if got := p.GetFloat64(off + 8); got != 3.25 {
		t.Fatalf("GetFloat64 = %v", got)
	}
}

func TestViewBoundsPanic(t *testing.T) {
	p := testPool(t, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds View did not panic")
		}
	}()
	p.View(uint64(p.Capacity())-4, 8)
}

func TestVectorAppendReadRoundTrip(t *testing.T) {
	p := testPool(t, 1<<22)
	v, err := NewVector(p, 8, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	start, err := v.Reserve(n)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("first Reserve start = %d", start)
	}
	for i := uint64(0); i < n; i++ {
		if err := v.PutUint64(i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.CommitLen(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if got := v.GetUint64(i); got != i*i {
			t.Fatalf("element %d = %d, want %d", i, got, i*i)
		}
	}
	if v.Len() != n || v.DurableLen() != n {
		t.Fatalf("Len = %d, DurableLen = %d, want %d", v.Len(), v.DurableLen(), n)
	}
}

func TestVectorRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.pool")
	p, err := Create(path, 1<<22, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVector(p, 8, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	metaOff := v.Off()
	for i := 0; i < 100; i++ {
		idx, err := v.Reserve(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.PutUint64(idx, uint64(i)*7); err != nil {
			t.Fatal(err)
		}
	}
	// Persist length for the first 60 only, then write 40 more without
	// committing — those are lost on crash, as intended.
	v.cursor.Store(60)
	if err := v.CommitLen(); err != nil {
		t.Fatal(err)
	}
	p.f.Close() // crash

	p2, err := Open(path, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	v2, err := OpenVector(p2, metaOff)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Len() != 60 || v2.DurableLen() != 60 {
		t.Fatalf("recovered length = %d/%d, want 60", v2.Len(), v2.DurableLen())
	}
	for i := uint64(0); i < 60; i++ {
		if got := v2.GetUint64(i); got != i*7 {
			t.Fatalf("recovered element %d = %d, want %d", i, got, i*7)
		}
	}
	// The vector keeps working after recovery.
	idx, err := v2.Reserve(1)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 60 {
		t.Fatalf("post-recovery append index = %d, want 60", idx)
	}
}

func TestVectorFloatElements(t *testing.T) {
	p := testPool(t, 1<<22)
	v, err := NewVector(p, 8, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := v.Reserve(3)
	for i := uint64(0); i < 3; i++ {
		if err := v.PutFloat64(idx+i, float64(i)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 3; i++ {
		if got := v.GetFloat64(i); got != float64(i)+0.5 {
			t.Fatalf("float element %d = %v", i, got)
		}
	}
}

func TestVectorDirectoryFull(t *testing.T) {
	p := testPool(t, 1<<22)
	v, err := NewVector(p, 8, 4, 2) // capacity 8 elements
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Reserve(8); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Reserve(1); !errors.Is(err, ErrVectorFull) {
		t.Fatalf("over-reserve = %v, want ErrVectorFull", err)
	}
	if v.Len() != 8 {
		t.Fatalf("failed Reserve leaked cursor: Len = %d", v.Len())
	}
}

func TestVectorReset(t *testing.T) {
	p := testPool(t, 1<<22)
	v, err := NewVector(p, 8, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := v.Reserve(5)
	_ = idx
	v.CommitLen()
	if err := v.Reset(); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 0 || v.DurableLen() != 0 {
		t.Fatalf("after Reset: Len = %d, DurableLen = %d", v.Len(), v.DurableLen())
	}
	idx2, err := v.Reserve(1)
	if err != nil {
		t.Fatal(err)
	}
	if idx2 != 0 {
		t.Fatalf("append after Reset at index %d, want 0", idx2)
	}
}

func TestVectorWriteSizeMismatch(t *testing.T) {
	p := testPool(t, 1<<22)
	v, err := NewVector(p, 16, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	v.Reserve(1)
	if err := v.Write(0, make([]byte, 8)); err == nil {
		t.Fatal("Write with wrong element size succeeded")
	}
	if err := v.Write(0, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if got := v.Read(0); len(got) != 16 {
		t.Fatalf("Read returned %d bytes", len(got))
	}
}

func TestVectorGeometryValidation(t *testing.T) {
	p := testPool(t, 1<<22)
	if _, err := NewVector(p, 0, 4, 8); err == nil {
		t.Fatal("zero element size accepted")
	}
	if _, err := NewVector(p, 8, 0, 8); err == nil {
		t.Fatal("zero chunk size accepted")
	}
}
