package pmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Vector is a persistent, chunked, append-only vector of fixed-size
// elements — the persistent counterpart of storage.ChunkedVector, used by
// the PMem-backed delta store (§6.5).
//
// Layout in the pool: a metadata block holding element size, chunk
// geometry, the durable length, the number of allocated chunks, and a
// directory of chunk offsets. Chunks are allocated from the pool on demand.
// Crash consistency: element data is persisted before the durable length
// advances past it (CommitLen), so recovery sees a prefix of fully written
// elements.
type Vector struct {
	pool *Pool
	off  uint64 // metadata block offset

	elemSize   int
	chunkElems int
	maxChunks  int

	cursor  atomic.Uint64 // volatile reservation cursor (elements)
	nChunks atomic.Uint64
	growMu  sync.Mutex
}

// Metadata block field offsets.
const (
	vecElemSize   = 0
	vecChunkElems = 8
	vecLen        = 16
	vecNChunks    = 24
	vecMaxChunks  = 32
	vecDirStart   = 40
)

// ErrVectorFull reports chunk-directory exhaustion.
var ErrVectorFull = errors.New("pmem: vector chunk directory full")

// NewVector allocates a fresh persistent vector in pool. chunkElems is the
// number of elements per chunk; maxChunks bounds total capacity.
func NewVector(pool *Pool, elemSize, chunkElems, maxChunks int) (*Vector, error) {
	if elemSize <= 0 || chunkElems <= 0 || maxChunks <= 0 {
		return nil, fmt.Errorf("pmem: NewVector(%d, %d, %d): non-positive geometry",
			elemSize, chunkElems, maxChunks)
	}
	metaSize := vecDirStart + 8*maxChunks
	off, err := pool.Alloc(metaSize)
	if err != nil {
		return nil, err
	}
	meta := pool.View(off, metaSize)
	for i := range meta {
		meta[i] = 0
	}
	if err := pool.PutUint64(off+vecElemSize, uint64(elemSize)); err != nil {
		return nil, err
	}
	if err := pool.PutUint64(off+vecChunkElems, uint64(chunkElems)); err != nil {
		return nil, err
	}
	if err := pool.PutUint64(off+vecMaxChunks, uint64(maxChunks)); err != nil {
		return nil, err
	}
	if err := pool.Persist(off, metaSize); err != nil {
		return nil, err
	}
	return &Vector{
		pool: pool, off: off,
		elemSize: elemSize, chunkElems: chunkElems, maxChunks: maxChunks,
	}, nil
}

// OpenVector recovers a vector from its metadata block at off.
func OpenVector(pool *Pool, off uint64) (*Vector, error) {
	elemSize := int(pool.GetUint64(off + vecElemSize))
	chunkElems := int(pool.GetUint64(off + vecChunkElems))
	maxChunks := int(pool.GetUint64(off + vecMaxChunks))
	if elemSize <= 0 || chunkElems <= 0 || maxChunks <= 0 {
		return nil, fmt.Errorf("%w: vector metadata at %d", ErrBadPool, off)
	}
	v := &Vector{
		pool: pool, off: off,
		elemSize: elemSize, chunkElems: chunkElems, maxChunks: maxChunks,
	}
	v.cursor.Store(pool.GetUint64(off + vecLen))
	v.nChunks.Store(pool.GetUint64(off + vecNChunks))
	return v, nil
}

// Off reports the metadata block offset, for storing in root objects.
func (v *Vector) Off() uint64 { return v.off }

// ElemSize reports the element size in bytes.
func (v *Vector) ElemSize() int { return v.elemSize }

// Len reports the volatile length (reserved elements).
func (v *Vector) Len() uint64 { return v.cursor.Load() }

// DurableLen reports the persisted length visible after a crash.
func (v *Vector) DurableLen() uint64 { return v.pool.GetUint64(v.off + vecLen) }

// Reserve reserves n consecutive element slots, allocating chunks as
// needed, and returns the first index.
func (v *Vector) Reserve(n int) (uint64, error) {
	start := v.cursor.Add(uint64(n)) - uint64(n)
	if err := v.ensure(start + uint64(n)); err != nil {
		v.cursor.Add(^uint64(n - 1)) // roll back the reservation
		return 0, err
	}
	return start, nil
}

func (v *Vector) ensure(endElems uint64) error {
	if endElems == 0 {
		return nil
	}
	need := (endElems + uint64(v.chunkElems) - 1) / uint64(v.chunkElems)
	if v.nChunks.Load() >= need {
		return nil
	}
	v.growMu.Lock()
	defer v.growMu.Unlock()
	cur := v.nChunks.Load()
	for cur < need {
		if int(cur) >= v.maxChunks {
			return fmt.Errorf("%w: %d chunks", ErrVectorFull, v.maxChunks)
		}
		chunkOff, err := v.pool.Alloc(v.chunkElems * v.elemSize)
		if err != nil {
			return err
		}
		dirOff := v.off + vecDirStart + 8*cur
		if err := v.pool.PutUint64(dirOff, chunkOff); err != nil {
			return err
		}
		cur++
		if err := v.pool.PutUint64(v.off+vecNChunks, cur); err != nil {
			return err
		}
		v.nChunks.Store(cur)
	}
	return nil
}

func (v *Vector) elemOff(i uint64) uint64 {
	ci := i / uint64(v.chunkElems)
	if ci >= v.nChunks.Load() {
		panic(fmt.Sprintf("pmem: vector index %d beyond %d chunks", i, v.nChunks.Load()))
	}
	chunkOff := v.pool.GetUint64(v.off + vecDirStart + 8*ci)
	return chunkOff + (i%uint64(v.chunkElems))*uint64(v.elemSize)
}

// EnsureLen makes indexes [0, n) addressable and advances the volatile
// cursor to at least n, allocating chunks as needed. It lets a caller that
// reserved indexes elsewhere (e.g. in a volatile twin structure) mirror
// writes at the same indexes.
func (v *Vector) EnsureLen(n uint64) error {
	if err := v.ensure(n); err != nil {
		return err
	}
	for {
		cur := v.cursor.Load()
		if cur >= n || v.cursor.CompareAndSwap(cur, n) {
			return nil
		}
	}
}

// PersistElem re-persists element i (used after in-place mutation of a
// Read view, e.g. flipping a validity flag).
func (v *Vector) PersistElem(i uint64) error {
	return v.pool.Persist(v.elemOff(i), v.elemSize)
}

// Write stores element bytes at index i and persists them. len(b) must be
// the element size.
func (v *Vector) Write(i uint64, b []byte) error {
	if len(b) != v.elemSize {
		return fmt.Errorf("pmem: Write: element is %d bytes, want %d", len(b), v.elemSize)
	}
	return v.pool.Store(v.elemOff(i), b)
}

// Read returns a zero-copy view of element i.
func (v *Vector) Read(i uint64) []byte {
	return v.pool.View(v.elemOff(i), v.elemSize)
}

// PutUint64 stores a uint64 element at index i (element size must be 8).
func (v *Vector) PutUint64(i uint64, x uint64) error {
	return v.pool.PutUint64(v.elemOff(i), x)
}

// GetUint64 loads a uint64 element at index i.
func (v *Vector) GetUint64(i uint64) uint64 {
	return v.pool.GetUint64(v.elemOff(i))
}

// PutFloat64 stores a float64 element at index i (element size must be 8).
func (v *Vector) PutFloat64(i uint64, x float64) error {
	return v.pool.PutFloat64(v.elemOff(i), x)
}

// GetFloat64 loads a float64 element at index i.
func (v *Vector) GetFloat64(i uint64) float64 {
	return v.pool.GetFloat64(v.elemOff(i))
}

// CommitLen advances the durable length to the current cursor. Callers
// persist element data first; the length advance is the publication point.
func (v *Vector) CommitLen() error {
	cur := v.cursor.Load()
	v.growMu.Lock()
	defer v.growMu.Unlock()
	if v.pool.GetUint64(v.off+vecLen) >= cur {
		return nil
	}
	return v.pool.PutUint64(v.off+vecLen, cur)
}

// Reset truncates the vector to zero length (chunks are kept for reuse) and
// persists the truncation. Callers quiesce writers first.
func (v *Vector) Reset() error {
	v.growMu.Lock()
	defer v.growMu.Unlock()
	v.cursor.Store(0)
	return v.pool.PutUint64(v.off+vecLen, 0)
}

// MemBytes reports the pool bytes consumed by allocated chunks.
func (v *Vector) MemBytes() uint64 {
	return v.nChunks.Load() * uint64(v.chunkElems*v.elemSize)
}
