// Package pmem simulates byte-addressable persistent memory (the paper's
// Intel Optane DCPMM in AppDirect mode, accessed via a DAX-mounted ext4
// filesystem, §6.1).
//
// A Pool is a file-backed memory region. Stores go to an in-memory image
// and are made durable through explicit Persist calls (the analogue of
// PMDK's flush+fence), which write through to the backing file and charge
// simulated media latency from a sim.MediaModel. Recovery re-opens the file
// and validates the header, after which persistent data structures (see
// Vector) rebuild their in-memory state from their persisted metadata —
// the "instant recovery" property §6.5 relies on.
//
// The simulation preserves the two properties the paper's Fig 11 measures:
// persisting costs a small constant factor over DRAM (flush latency and
// media bandwidth, charged per Persist), and contents survive crashes
// (write-through plus a crash-consistent allocation header).
package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"h2tap/internal/sim"
	"h2tap/internal/vfs"
)

const (
	magic         = 0x504d454d48325450 // "PMEMH2TP"
	formatVersion = 1
	headerSize    = 4096
	allocAlign    = 64 // cache-line alignment, the persist granularity
)

// Header field offsets within the pool's first page.
const (
	hdrMagic   = 0
	hdrVersion = 8
	hdrCursor  = 16 // allocation cursor (bytes from start of pool)
	hdrRootOff = 24 // offset of the application root object
	hdrRootLen = 32
)

// Pool errors.
var (
	// ErrBadPool reports a backing file that is not a pool or has an
	// incompatible format.
	ErrBadPool = errors.New("pmem: bad pool header")
	// ErrOutOfSpace reports pool capacity exhaustion.
	ErrOutOfSpace = errors.New("pmem: out of space")
)

// Pool is a simulated persistent-memory region.
type Pool struct {
	path  string
	f     vfs.File
	data  []byte
	media sim.MediaModel

	simNanos atomic.Int64

	mu sync.Mutex // guards allocation and root updates
}

// Create makes a new pool file of the given capacity on the real
// filesystem. An existing file at path is truncated.
func Create(path string, capacity int64, media sim.MediaModel) (*Pool, error) {
	return CreateOn(vfs.OS(), path, capacity, media)
}

// CreateOn is Create on an injectable filesystem, letting the fault
// harness crash individual write-throughs (the simulated persist fences).
func CreateOn(fsys vfs.FS, path string, capacity int64, media sim.MediaModel) (*Pool, error) {
	if capacity < headerSize {
		return nil, fmt.Errorf("pmem: capacity %d below header size %d", capacity, headerSize)
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pmem: create pool: %w", err)
	}
	if err := f.Truncate(capacity); err != nil {
		f.Close()
		return nil, fmt.Errorf("pmem: size pool: %w", err)
	}
	p := &Pool{path: path, f: f, data: make([]byte, capacity), media: media}
	binary.LittleEndian.PutUint64(p.data[hdrMagic:], magic)
	binary.LittleEndian.PutUint64(p.data[hdrVersion:], formatVersion)
	binary.LittleEndian.PutUint64(p.data[hdrCursor:], headerSize)
	if err := p.writeThrough(0, headerSize); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// Open recovers an existing pool from its backing file on the real
// filesystem.
func Open(path string, media sim.MediaModel) (*Pool, error) {
	return OpenOn(vfs.OS(), path, media)
}

// OpenOn is Open on an injectable filesystem.
func OpenOn(fsys vfs.FS, path string, media sim.MediaModel) (*Pool, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pmem: open pool: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pmem: stat pool: %w", err)
	}
	data := make([]byte, st.Size())
	if _, err := f.ReadAt(data, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pmem: read pool: %w", err)
	}
	p := &Pool{path: path, f: f, data: data, media: media}
	if len(data) < headerSize ||
		binary.LittleEndian.Uint64(data[hdrMagic:]) != magic ||
		binary.LittleEndian.Uint64(data[hdrVersion:]) != formatVersion {
		f.Close()
		return nil, ErrBadPool
	}
	return p, nil
}

// Close flushes and closes the backing file.
func (p *Pool) Close() error {
	if err := p.f.Sync(); err != nil {
		p.f.Close()
		return fmt.Errorf("pmem: sync on close: %w", err)
	}
	return p.f.Close()
}

// Capacity reports the pool size in bytes.
func (p *Pool) Capacity() int64 { return int64(len(p.data)) }

// Allocated reports the allocation cursor.
func (p *Pool) Allocated() uint64 {
	return binary.LittleEndian.Uint64(p.data[hdrCursor:])
}

// SimTime reports the accumulated simulated media time charged by Persist
// calls since the pool was opened or ResetSimTime was called.
func (p *Pool) SimTime() sim.Duration { return sim.Duration(p.simNanos.Load()) }

// ResetSimTime zeroes the simulated-time accumulator.
func (p *Pool) ResetSimTime() { p.simNanos.Store(0) }

// Alloc reserves n bytes, cache-line aligned, and returns the offset. The
// updated cursor is persisted so allocation survives crashes.
func (p *Pool) Alloc(n int) (uint64, error) {
	if n < 0 {
		return 0, fmt.Errorf("pmem: Alloc(%d): negative size", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := binary.LittleEndian.Uint64(p.data[hdrCursor:])
	aligned := (cur + allocAlign - 1) &^ (allocAlign - 1)
	if aligned+uint64(n) > uint64(len(p.data)) {
		return 0, fmt.Errorf("%w: need %d bytes, %d free", ErrOutOfSpace, n, uint64(len(p.data))-aligned)
	}
	binary.LittleEndian.PutUint64(p.data[hdrCursor:], aligned+uint64(n))
	if err := p.writeThrough(hdrCursor, 8); err != nil {
		return 0, err
	}
	p.chargePersist(8)
	return aligned, nil
}

// SetRoot records the application root object location (persisted), the
// anchor from which recovery finds everything else.
func (p *Pool) SetRoot(off uint64, n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	binary.LittleEndian.PutUint64(p.data[hdrRootOff:], off)
	binary.LittleEndian.PutUint64(p.data[hdrRootLen:], uint64(n))
	if err := p.writeThrough(hdrRootOff, 16); err != nil {
		return err
	}
	p.chargePersist(16)
	return nil
}

// Root reports the recorded root object location.
func (p *Pool) Root() (off uint64, n int) {
	return binary.LittleEndian.Uint64(p.data[hdrRootOff:]),
		int(binary.LittleEndian.Uint64(p.data[hdrRootLen:]))
}

// View returns a zero-copy view of n bytes at off. The slice aliases pool
// memory: writes to it must be followed by Persist to become durable.
func (p *Pool) View(off uint64, n int) []byte {
	if off+uint64(n) > uint64(len(p.data)) {
		panic(fmt.Sprintf("pmem: View(%d, %d) beyond capacity %d", off, n, len(p.data)))
	}
	return p.data[off : off+uint64(n) : off+uint64(n)]
}

// Store copies b into the pool at off and persists it — the analogue of
// pmem_memcpy_persist.
func (p *Pool) Store(off uint64, b []byte) error {
	copy(p.View(off, len(b)), b)
	return p.Persist(off, len(b))
}

// Persist makes the given range durable: write-through to the backing file
// plus simulated flush+fence cost.
func (p *Pool) Persist(off uint64, n int) error {
	if n == 0 {
		return nil
	}
	if err := p.writeThrough(off, n); err != nil {
		return err
	}
	p.chargePersist(n)
	return nil
}

func (p *Pool) chargePersist(n int) {
	p.simNanos.Add(int64(p.media.PersistCost(n)))
}

func (p *Pool) writeThrough(off uint64, n int) error {
	if _, err := p.f.WriteAt(p.data[off:off+uint64(n)], int64(off)); err != nil {
		return fmt.Errorf("pmem: write-through at %d: %w", off, err)
	}
	return nil
}

// PutUint64 stores a little-endian uint64 at off and persists it.
func (p *Pool) PutUint64(off uint64, v uint64) error {
	binary.LittleEndian.PutUint64(p.View(off, 8), v)
	return p.Persist(off, 8)
}

// GetUint64 loads a little-endian uint64 at off.
func (p *Pool) GetUint64(off uint64) uint64 {
	return binary.LittleEndian.Uint64(p.View(off, 8))
}

// PutFloat64 stores a float64 at off and persists it.
func (p *Pool) PutFloat64(off uint64, v float64) error {
	return p.PutUint64(off, math.Float64bits(v))
}

// GetFloat64 loads a float64 at off.
func (p *Pool) GetFloat64(off uint64) float64 {
	return math.Float64frombits(p.GetUint64(off))
}
