// Package costmodel implements the §6.4 cost model that decides between
// delta-based update propagation and a full CSR rebuild. It fits the four
// linear correlations the paper identifies — delta store scan time vs
// number of deltas (Fig 10b), the copy part of the merge vs graph size
// (Fig 9b), the modify part of the merge vs number of deltas (Fig 10c), and
// CSR rebuild time vs graph size (Fig 9a) — and derives the delta-count
// threshold at which the rebuild becomes cheaper, which the delta store's
// delta-mode flag enforces (§6.4).
package costmodel

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Linear is a univariate linear model y = A + B·x.
type Linear struct {
	A, B float64
}

// ErrInsufficientData reports a fit attempt with fewer than two distinct
// sample points.
var ErrInsufficientData = errors.New("costmodel: need at least two distinct sample points")

// Fit computes the least-squares line through (xs, ys).
func Fit(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, fmt.Errorf("costmodel: Fit: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Linear{}, ErrInsufficientData
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Linear{}, ErrInsufficientData
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	return Linear{A: a, B: b}, nil
}

// Predict evaluates the model at x.
func (l Linear) Predict(x float64) float64 { return l.A + l.B*x }

// R2 reports the coefficient of determination of the model on (xs, ys).
func (l Linear) R2(xs, ys []float64) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		return math.NaN()
	}
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range xs {
		d := ys[i] - l.Predict(xs[i])
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Model is the four-component §6.4 cost model. Times are in seconds; delta
// counts and graph sizes (edges) are the x variables.
type Model struct {
	// Scan: delta store scan time vs number of deltas (Fig 10b).
	Scan Linear
	// Copy: the copying part of the merge vs graph size (Fig 9b).
	Copy Linear
	// Modify: the modifying part of the merge vs number of deltas (Fig 10c).
	Modify Linear
	// Rebuild: CSR rebuild time vs graph size (Fig 9a).
	Rebuild Linear
}

// DeltaOverhead predicts the update-propagation cost of the delta approach
// for n deltas on a graph of the given size: scan + merge, where merge =
// copy part (size-dependent) + modify part (delta-dependent).
func (m *Model) DeltaOverhead(nDeltas, graphEdges float64) float64 {
	return m.Scan.Predict(nDeltas) + m.Copy.Predict(graphEdges) + m.Modify.Predict(nDeltas)
}

// RebuildOverhead predicts the cost of the rebuild approach.
func (m *Model) RebuildOverhead(graphEdges float64) float64 {
	return m.Rebuild.Predict(graphEdges)
}

// Threshold computes the §6.4 delta-size threshold for a graph of the given
// size: "the minimum number of deltas for which the rebuild overhead is
// less than the delta overhead". Solving
//
//	scan(n) + modify(n) + copy(size) = rebuild(size)
//
// for n. Returns 0 (meaning "always rebuild") when the rebuild is cheaper
// even with no deltas, and MaxUint64 (never rebuild) when the per-delta
// slope is non-positive.
func (m *Model) Threshold(graphEdges float64) uint64 {
	perDelta := m.Scan.B + m.Modify.B
	fixed := m.Scan.A + m.Modify.A + m.Copy.Predict(graphEdges)
	budget := m.RebuildOverhead(graphEdges) - fixed
	if budget <= 0 {
		return 0
	}
	if perDelta <= 0 {
		return math.MaxUint64
	}
	n := budget / perDelta
	if n >= math.MaxUint64 {
		return math.MaxUint64
	}
	return uint64(n)
}

// WorkerModels holds one fitted Model per propagation worker count. With
// parallel scan/merge/rebuild the four linear coefficients all change with
// the worker count (the copy and modify slopes shrink roughly with
// parallel speedup, the rebuild slope likewise), so the merge-vs-rebuild
// threshold must be evaluated against the coefficients of the worker count
// the engine actually runs with (§6.4, extended for the parallel pipeline).
type WorkerModels struct {
	Models map[int]*Model
}

// NewWorkerModels returns an empty per-worker-count model set.
func NewWorkerModels() *WorkerModels {
	return &WorkerModels{Models: make(map[int]*Model)}
}

// Put records the model calibrated at the given worker count.
func (w *WorkerModels) Put(workers int, m *Model) {
	if w.Models == nil {
		w.Models = make(map[int]*Model)
	}
	w.Models[workers] = m
}

// For returns the model for the given worker count, falling back to the
// nearest calibrated count (ties prefer the smaller — the conservative,
// slower model). Returns nil if no model has been calibrated.
func (w *WorkerModels) For(workers int) *Model {
	if w == nil || len(w.Models) == 0 {
		return nil
	}
	if m, ok := w.Models[workers]; ok {
		return m
	}
	best, bestDist := 0, math.MaxInt
	for c := range w.Models {
		d := c - workers
		if d < 0 {
			d = -d
		}
		if d < bestDist || (d == bestDist && c < best) {
			best, bestDist = c, d
		}
	}
	return w.Models[best]
}

// Counts returns the calibrated worker counts in ascending order.
func (w *WorkerModels) Counts() []int {
	if w == nil {
		return nil
	}
	out := make([]int, 0, len(w.Models))
	for c := range w.Models {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Sample is one calibration observation.
type Sample struct {
	X float64 // deltas or edges, depending on the series
	Y float64 // seconds
}

// Calibration collects observations for the four series and fits the model.
type Calibration struct {
	ScanSamples    []Sample
	CopySamples    []Sample
	ModifySamples  []Sample
	RebuildSamples []Sample
}

// AddScan records a scan observation (n deltas, seconds).
func (c *Calibration) AddScan(n, secs float64) {
	c.ScanSamples = append(c.ScanSamples, Sample{n, secs})
}

// AddCopy records a copy observation (graph edges, seconds).
func (c *Calibration) AddCopy(edges, secs float64) {
	c.CopySamples = append(c.CopySamples, Sample{edges, secs})
}

// AddModify records a merge-modify observation (n deltas, seconds).
func (c *Calibration) AddModify(n, secs float64) {
	c.ModifySamples = append(c.ModifySamples, Sample{n, secs})
}

// AddRebuild records a rebuild observation (graph edges, seconds).
func (c *Calibration) AddRebuild(edges, secs float64) {
	c.RebuildSamples = append(c.RebuildSamples, Sample{edges, secs})
}

// Fit produces the model from the collected samples.
func (c *Calibration) Fit() (*Model, error) {
	fit := func(name string, ss []Sample) (Linear, error) {
		xs := make([]float64, len(ss))
		ys := make([]float64, len(ss))
		for i, s := range ss {
			xs[i], ys[i] = s.X, s.Y
		}
		l, err := Fit(xs, ys)
		if err != nil {
			return Linear{}, fmt.Errorf("costmodel: %s series: %w", name, err)
		}
		return l, nil
	}
	var m Model
	var err error
	if m.Scan, err = fit("scan", c.ScanSamples); err != nil {
		return nil, err
	}
	if m.Copy, err = fit("copy", c.CopySamples); err != nil {
		return nil, err
	}
	if m.Modify, err = fit("modify", c.ModifySamples); err != nil {
		return nil, err
	}
	if m.Rebuild, err = fit("rebuild", c.RebuildSamples); err != nil {
		return nil, err
	}
	return &m, nil
}

// Clone returns an independently owned copy of the model. A sharded cluster
// calibrates once and hands each shard its own copy, so a future per-shard
// refit (drift correction) cannot alias another shard's coefficients.
func (m *Model) Clone() *Model {
	if m == nil {
		return nil
	}
	c := *m
	return &c
}
