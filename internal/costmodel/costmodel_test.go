package costmodel

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	l, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.A-1) > 1e-12 || math.Abs(l.B-2) > 1e-12 {
		t.Fatalf("fit = %+v, want A=1 B=2", l)
	}
	if r2 := l.R2(xs, ys); math.Abs(r2-1) > 1e-12 {
		t.Fatalf("R2 = %v", r2)
	}
}

func TestFitNoisyLine(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 0.5+0.03*x+r.NormFloat64()*0.1)
	}
	l, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.B-0.03) > 0.005 {
		t.Fatalf("slope = %v, want ≈0.03", l.B)
	}
	if l.R2(xs, ys) < 0.9 {
		t.Fatalf("R2 = %v", l.R2(xs, ys))
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("one point = %v", err)
	}
	if _, err := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("degenerate x = %v", err)
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func modelForTest() *Model {
	return &Model{
		Scan:    Linear{A: 0.01, B: 2e-6},   // 2 µs per delta
		Copy:    Linear{A: 0.005, B: 5e-8},  // 50 ns per edge
		Modify:  Linear{A: 0.002, B: 5e-7},  // 0.5 µs per delta
		Rebuild: Linear{A: 0.05, B: 1.5e-6}, // 1.5 µs per edge
	}
}

func TestThresholdCrossover(t *testing.T) {
	m := modelForTest()
	const edges = 1e6
	th := m.Threshold(edges)
	if th == 0 || th == math.MaxUint64 {
		t.Fatalf("threshold = %d", th)
	}
	// Just below the threshold the delta approach wins; just above, rebuild
	// wins.
	below := float64(th) * 0.9
	above := float64(th) * 1.1
	if m.DeltaOverhead(below, edges) >= m.RebuildOverhead(edges) {
		t.Fatalf("delta should win below threshold: %v vs %v",
			m.DeltaOverhead(below, edges), m.RebuildOverhead(edges))
	}
	if m.DeltaOverhead(above, edges) <= m.RebuildOverhead(edges) {
		t.Fatalf("rebuild should win above threshold")
	}
}

func TestThresholdGrowsWithGraphSize(t *testing.T) {
	// Bigger graphs make rebuild costlier, so more deltas are tolerable.
	m := modelForTest()
	if m.Threshold(1e7) <= m.Threshold(1e6) {
		t.Fatalf("threshold did not grow: %d vs %d", m.Threshold(1e7), m.Threshold(1e6))
	}
}

func TestThresholdDegenerateCases(t *testing.T) {
	// Rebuild always cheaper (tiny graph, huge fixed delta cost).
	m := &Model{
		Scan:    Linear{A: 10, B: 1e-6},
		Copy:    Linear{A: 0, B: 0},
		Modify:  Linear{A: 0, B: 0},
		Rebuild: Linear{A: 0.001, B: 0},
	}
	if th := m.Threshold(100); th != 0 {
		t.Fatalf("threshold = %d, want 0 (always rebuild)", th)
	}
	// Deltas free per unit: never rebuild.
	m2 := &Model{
		Scan:    Linear{A: 0, B: 0},
		Copy:    Linear{A: 0, B: 0},
		Modify:  Linear{A: 0, B: 0},
		Rebuild: Linear{A: 1, B: 0},
	}
	if th := m2.Threshold(100); th != math.MaxUint64 {
		t.Fatalf("threshold = %d, want MaxUint64 (never rebuild)", th)
	}
}

func TestCalibrationFit(t *testing.T) {
	var c Calibration
	for i := 1; i <= 5; i++ {
		n := float64(i * 1000)
		c.AddScan(n, 0.01+2e-6*n)
		c.AddModify(n, 0.002+5e-7*n)
		e := float64(i) * 1e5
		c.AddCopy(e, 0.005+5e-8*e)
		c.AddRebuild(e, 0.05+1.5e-6*e)
	}
	m, err := c.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Scan.B-2e-6) > 1e-9 || math.Abs(m.Rebuild.B-1.5e-6) > 1e-9 {
		t.Fatalf("fitted slopes off: %+v", m)
	}
}

func TestCalibrationInsufficient(t *testing.T) {
	var c Calibration
	c.AddScan(1, 1)
	if _, err := c.Fit(); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("fit with one series point = %v", err)
	}
}

// Property: Threshold is exactly the crossover of the two overhead
// functions whenever both slopes are positive.
func TestQuickThresholdIsCrossover(t *testing.T) {
	f := func(sa, sb, ma, mb, ra, rb uint16, edges uint32) bool {
		m := &Model{
			Scan:    Linear{A: float64(sa) / 1e3, B: float64(sb)/1e6 + 1e-9},
			Modify:  Linear{A: float64(ma) / 1e3, B: float64(mb)/1e6 + 1e-9},
			Copy:    Linear{A: 0.001, B: 1e-8},
			Rebuild: Linear{A: float64(ra) / 1e3, B: float64(rb)/1e6 + 1e-9},
		}
		e := float64(edges)
		th := m.Threshold(e)
		switch th {
		case 0:
			return m.DeltaOverhead(0, e) >= m.RebuildOverhead(e)
		case math.MaxUint64:
			return false // slopes are positive, cannot happen
		default:
			at := m.DeltaOverhead(float64(th), e) - m.RebuildOverhead(e)
			// Within one per-delta step of the exact crossover.
			step := m.Scan.B + m.Modify.B
			return at <= step+1e-9
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerModels(t *testing.T) {
	var nilWM *WorkerModels
	if nilWM.For(4) != nil {
		t.Fatal("nil WorkerModels must return nil")
	}
	if nilWM.Counts() != nil {
		t.Fatal("nil WorkerModels must have no counts")
	}
	wm := NewWorkerModels()
	if wm.For(4) != nil {
		t.Fatal("empty WorkerModels must return nil")
	}
	m1 := &Model{Scan: Linear{A: 1}}
	m4 := &Model{Scan: Linear{A: 4}}
	m8 := &Model{Scan: Linear{A: 8}}
	wm.Put(1, m1)
	wm.Put(4, m4)
	wm.Put(8, m8)

	if got := wm.Counts(); len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 8 {
		t.Fatalf("Counts = %v, want [1 4 8]", got)
	}
	if wm.For(4) != m4 {
		t.Fatal("exact match must return that model")
	}
	// Nearest-count fallback; ties prefer the smaller (slower) model.
	if wm.For(3) != m4 {
		t.Fatal("3 is nearest to 4")
	}
	if wm.For(2) != m1 {
		t.Fatal("2 ties between 1 and 4: the smaller count wins")
	}
	if wm.For(6) != m4 {
		t.Fatal("6 ties between 4 and 8: the smaller count wins")
	}
	if wm.For(100) != m8 {
		t.Fatal("beyond the largest count, the largest model is nearest")
	}

	// Put on a zero-value struct allocates the map.
	var zero WorkerModels
	zero.Put(2, m1)
	if zero.For(2) != m1 {
		t.Fatal("Put on zero value must work")
	}
}
