package delta

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBuilderInsertEdgeGrouping(t *testing.T) {
	b := NewBuilder()
	b.InsertEdge(1, 2, 0.5)
	b.InsertEdge(1, 3, 0.7)
	b.InsertEdge(4, 2, 0.9)
	d := b.Build(10)
	if d.TS != 10 {
		t.Fatalf("TS = %d", d.TS)
	}
	if len(d.Nodes) != 2 {
		t.Fatalf("node deltas = %d, want 2 (grouped by source)", len(d.Nodes))
	}
	if d.Nodes[0].Node != 1 || len(d.Nodes[0].Ins) != 2 {
		t.Fatalf("node 1 delta = %+v", d.Nodes[0])
	}
	if d.Nodes[1].Node != 4 || len(d.Nodes[1].Ins) != 1 {
		t.Fatalf("node 4 delta = %+v", d.Nodes[1])
	}
}

func TestBuilderInsertThenDeleteEdgeCancels(t *testing.T) {
	b := NewBuilder()
	b.InsertEdge(1, 2, 0.5)
	b.DeleteEdge(1, 2)
	d := b.Build(1)
	if !d.Empty() {
		t.Fatalf("insert+delete of same edge should cancel, got %+v", d.Nodes)
	}
}

func TestBuilderDeleteThenReinsertSameTxn(t *testing.T) {
	// A transaction deletes an existing edge, then re-inserts it with a
	// new weight: the net effect is the insert alone (a weight update).
	b := NewBuilder()
	b.DeleteEdge(1, 2)
	b.InsertEdge(1, 2, 9)
	d := b.Build(1)
	if len(d.Nodes) != 1 {
		t.Fatalf("nodes = %+v", d.Nodes)
	}
	nd := d.Nodes[0]
	if len(nd.Del) != 0 || len(nd.Ins) != 1 || nd.Ins[0].W != 9 {
		t.Fatalf("delete-then-reinsert delta = %+v", nd)
	}
}

func TestBuilderDeleteReinsertDeleteSurvives(t *testing.T) {
	// The edge pre-existed (the first delete proves it). Delete →
	// re-insert → delete within one transaction must net to a delete:
	// cancelling the final delete against the re-insert would leave the
	// pre-existing edge alive in the replica.
	b := NewBuilder()
	b.DeleteEdge(1, 2)
	b.InsertEdge(1, 2, 9)
	b.DeleteEdge(1, 2)
	d := b.Build(1)
	if len(d.Nodes) != 1 {
		t.Fatalf("nodes = %+v", d.Nodes)
	}
	nd := d.Nodes[0]
	if len(nd.Ins) != 0 || len(nd.Del) != 1 || nd.Del[0] != 2 {
		t.Fatalf("del-ins-del delta = %+v, want a bare delete", nd)
	}
	// One more round: the delete can be superseded again.
	b.InsertEdge(1, 2, 3)
	d = b.Build(1)
	nd = d.Nodes[0]
	if len(nd.Del) != 0 || len(nd.Ins) != 1 || nd.Ins[0].W != 3 {
		t.Fatalf("del-ins-del-ins delta = %+v, want the insert", nd)
	}
}

func TestBuilderDeleteNodeSubsumesEdges(t *testing.T) {
	b := NewBuilder()
	b.InsertEdge(1, 2, 0.5)
	b.DeleteEdge(1, 3)
	b.DeleteNode(1)
	b.InsertEdge(1, 9, 1.0) // after deletion: ignored
	d := b.Build(1)
	if len(d.Nodes) != 1 {
		t.Fatalf("node deltas = %d", len(d.Nodes))
	}
	nd := d.Nodes[0]
	if !nd.Deleted || len(nd.Ins) != 0 || len(nd.Del) != 0 {
		t.Fatalf("deleted-node delta should carry no edge lists: %+v", nd)
	}
}

func TestBuilderInsertNodeWithEdges(t *testing.T) {
	b := NewBuilder()
	b.InsertNode(5)
	b.InsertEdge(5, 1, 2.0) // inserted node as source: stored on node 5
	b.InsertEdge(3, 5, 5.0) // inserted node as destination: stored on source 3
	d := b.Build(7)
	if len(d.Nodes) != 2 {
		t.Fatalf("node deltas = %d, want 2", len(d.Nodes))
	}
	if !d.Nodes[0].Inserted || d.Nodes[0].Node != 5 {
		t.Fatalf("first delta should be the inserted node: %+v", d.Nodes[0])
	}
	if d.Nodes[1].Node != 3 || d.Nodes[1].Ins[0].Dst != 5 {
		t.Fatalf("incoming edge should map to source 3: %+v", d.Nodes[1])
	}
}

func TestBuilderDropsNoopEntries(t *testing.T) {
	b := NewBuilder()
	b.InsertEdge(1, 2, 0.5)
	b.DeleteEdge(1, 2)
	b.InsertEdge(3, 4, 1.0)
	d := b.Build(1)
	if len(d.Nodes) != 1 || d.Nodes[0].Node != 3 {
		t.Fatalf("no-op node entry not dropped: %+v", d.Nodes)
	}
}

func TestCombineOrderMatters(t *testing.T) {
	// txn A inserts edge 1→2; txn B (later) deletes it. The final state is
	// "absent", which must surface as a delete: the delta store cannot
	// know whether 1→2 pre-existed in the replica, so dropping the pair
	// would leave a pre-existing edge alive (the bug class the §5.3
	// consistency guarantee rules out).
	c := Combine(1, []NodeDelta{
		{Node: 1, Ins: []Edge{{Dst: 2, W: 1}}},
		{Node: 1, Del: []uint64{2}},
	})
	if len(c.Ins) != 0 || len(c.Del) != 1 || c.Del[0] != 2 {
		t.Fatalf("insert-then-delete should fold to a delete: %+v", c)
	}
	// delete then insert → final state present with the insert's weight.
	c = Combine(1, []NodeDelta{
		{Node: 1, Del: []uint64{2}},
		{Node: 1, Ins: []Edge{{Dst: 2, W: 3}}},
	})
	if len(c.Del) != 0 || len(c.Ins) != 1 || c.Ins[0].W != 3 {
		t.Fatalf("delete-then-insert should yield the insert: %+v", c)
	}
}

func TestCombineDeleteReinsertDelete(t *testing.T) {
	// The exact sequence that exposed the last-writer-wins requirement:
	// the edge exists in the replica, then delete → reinsert → delete.
	c := Combine(464, []NodeDelta{
		{Node: 464, Del: []uint64{9}},
		{Node: 464, Ins: []Edge{{Dst: 9, W: 5}}},
		{Node: 464, Del: []uint64{9}},
	})
	if len(c.Ins) != 0 || len(c.Del) != 1 || c.Del[0] != 9 {
		t.Fatalf("del-ins-del must fold to a delete: %+v", c)
	}
}

func TestCombineNewerWeightWins(t *testing.T) {
	c := Combine(1, []NodeDelta{
		{Node: 1, Ins: []Edge{{Dst: 2, W: 1}}},
		{Node: 1, Ins: []Edge{{Dst: 2, W: 9}}},
	})
	if len(c.Ins) != 1 || c.Ins[0].W != 9 {
		t.Fatalf("want single edge with newest weight, got %+v", c.Ins)
	}
}

func TestCombineNodeDeleteWipes(t *testing.T) {
	c := Combine(1, []NodeDelta{
		{Node: 1, Ins: []Edge{{Dst: 2, W: 1}, {Dst: 3, W: 1}}},
		{Node: 1, Deleted: true},
	})
	if !c.Deleted || len(c.Ins) != 0 || len(c.Del) != 0 {
		t.Fatalf("node delete should wipe edge lists: %+v", c)
	}
}

func TestCombineInsertThenDeleteNode(t *testing.T) {
	c := Combine(5, []NodeDelta{
		{Node: 5, Inserted: true, Ins: []Edge{{Dst: 1, W: 1}}},
		{Node: 5, Deleted: true},
	})
	if c.Inserted {
		t.Fatal("node inserted then deleted in the window must not read as inserted")
	}
	if !c.Deleted {
		t.Fatal("deletion must win")
	}
}

func TestCombineDeleteThenReinsertNode(t *testing.T) {
	c := Combine(5, []NodeDelta{
		{Node: 5, Deleted: true},
		{Node: 5, Inserted: true, Ins: []Edge{{Dst: 1, W: 2}}},
	})
	if !c.Inserted || c.Deleted {
		t.Fatalf("re-insert after delete should read as inserted: %+v", c)
	}
	if len(c.Ins) != 1 {
		t.Fatalf("re-inserted edges lost: %+v", c.Ins)
	}
}

func TestCombineSortsOutputs(t *testing.T) {
	c := Combine(1, []NodeDelta{
		{Node: 1, Ins: []Edge{{Dst: 9, W: 1}, {Dst: 2, W: 1}, {Dst: 5, W: 1}}},
		{Node: 1, Del: []uint64{100, 50}},
	})
	if !sort.SliceIsSorted(c.Ins, func(i, j int) bool { return c.Ins[i].Dst < c.Ins[j].Dst }) {
		t.Fatalf("inserts not sorted: %+v", c.Ins)
	}
	if !sort.SliceIsSorted(c.Del, func(i, j int) bool { return c.Del[i] < c.Del[j] }) {
		t.Fatalf("deletes not sorted: %+v", c.Del)
	}
}

func TestCombineDeduplicatesDeletes(t *testing.T) {
	c := Combine(1, []NodeDelta{
		{Node: 1, Del: []uint64{2}},
		{Node: 1, Del: []uint64{2}},
	})
	if len(c.Del) != 1 {
		t.Fatalf("duplicate deletes not collapsed: %+v", c.Del)
	}
}

func TestBatchTransferBytes(t *testing.T) {
	b := Batch{Deltas: []Combined{
		{Node: 1, Ins: []Edge{{Dst: 2, W: 1}}, Del: []uint64{3, 4}},
		{Node: 2},
	}}
	want := int64(32+16+16) + 32
	if got := b.TransferBytes(); got != want {
		t.Fatalf("TransferBytes = %d, want %d", got, want)
	}
	var empty Batch
	if !empty.Empty() || empty.TransferBytes() != 0 {
		t.Fatal("empty batch should be empty with zero transfer")
	}
}

// Property: Combine applied to a simulated update history matches a naive
// set-based replay of the same history.
func TestQuickCombineMatchesReplay(t *testing.T) {
	type op struct {
		Kind byte  // 0 ins edge, 1 del edge, 2 ins node, 3 del node
		Dst  uint8 // edge destination
		W    uint8 // weight
	}
	f := func(ops []op) bool {
		const node = 7
		// Replay against a plain map model.
		edges := map[uint64]float64{}
		inserted, deleted := false, false
		var parts []NodeDelta
		for _, o := range ops {
			var nd NodeDelta
			nd.Node = node
			switch o.Kind % 4 {
			case 0:
				nd.Ins = []Edge{{Dst: uint64(o.Dst), W: float64(o.W)}}
				if deleted {
					// After a node delete within the window, only a node
					// re-insert makes it addressable again; edge inserts on
					// a deleted node do not occur in real histories, so
					// skip.
					continue
				}
				edges[uint64(o.Dst)] = float64(o.W)
			case 1:
				nd.Del = []uint64{uint64(o.Dst)}
				if deleted {
					continue
				}
				delete(edges, uint64(o.Dst))
			case 2:
				nd.Inserted = true
				inserted, deleted = true, false
			case 3:
				nd.Deleted = true
				deleted = true
				inserted = false
				edges = map[uint64]float64{}
			}
			parts = append(parts, nd)
		}
		c := Combine(node, parts)
		if c.Deleted != deleted || c.Inserted != inserted {
			return false
		}
		if deleted {
			return len(c.Ins) == 0 && len(c.Del) == 0
		}
		// Every model edge must appear in Ins (deletes may mention edges
		// that never existed in the window — those go to Del, which the
		// merge treats as no-ops; we only check Ins here).
		got := map[uint64]float64{}
		for _, e := range c.Ins {
			got[e.Dst] = e.W
		}
		return reflect.DeepEqual(got, edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
