// Package delta defines the topology-change types exchanged between the
// main property graph and the delta-store implementations, and the
// combined-delta batch types that update propagation hands to the replica
// data structures.
//
// A committing transaction describes its effect on the graph *topology*
// (the part the GPU replica mirrors, §5.1) as one NodeDelta per node it
// touched: relationship insertions and deletions keyed by the source node,
// node insertion/deletion flags. Delta stores persist these; the delta
// store scan (§5.2) combines per-node deltas from multiple transactions
// into Combined entries for the merge (§5.4).
package delta

import (
	"sort"

	"h2tap/internal/mvto"
)

// Edge is one directed relationship as the structural replica sees it:
// destination node and weight (edge value).
type Edge struct {
	Dst uint64
	W   float64
}

// NodeDelta captures everything one transaction did to one node's topology
// (paper §5.1: "a delta appended by a transaction T and mapped to the ID of
// a node N captures all the updates made by T on N").
type NodeDelta struct {
	Node     uint64
	Inserted bool // node newly inserted by this transaction
	Deleted  bool // node deleted; implies all its outgoing edges are gone
	Ins      []Edge
	Del      []uint64 // destination node IDs of deleted outgoing relationships
}

// TxDelta is the full topology footprint of one committed transaction.
type TxDelta struct {
	TS    mvto.TS
	Nodes []NodeDelta
}

// Empty reports whether the transaction changed no topology (e.g. it only
// touched properties); such transactions append nothing to delta stores.
func (d *TxDelta) Empty() bool { return len(d.Nodes) == 0 }

// Builder accumulates a transaction's NodeDeltas with per-node
// deduplication, preserving first-touch order.
type Builder struct {
	byNode map[uint64]int
	nodes  []NodeDelta
	// reIns marks (src, dst) inserts that superseded a same-transaction
	// delete. Such an edge existed before the transaction, so a later
	// delete of it must be recorded rather than cancelled against the
	// insert — a delete → re-insert → delete chain otherwise nets to "no
	// change" and leaves the pre-existing edge alive in the replica.
	reIns map[[2]uint64]struct{}
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{byNode: make(map[uint64]int)}
}

func (b *Builder) at(node uint64) *NodeDelta {
	if i, ok := b.byNode[node]; ok {
		return &b.nodes[i]
	}
	b.byNode[node] = len(b.nodes)
	if len(b.nodes) < cap(b.nodes) {
		// Reclaim a slot (and its Ins/Del backing arrays) left behind by an
		// earlier transaction through this pooled builder.
		b.nodes = b.nodes[:len(b.nodes)+1]
		d := &b.nodes[len(b.nodes)-1]
		d.Node = node
		d.Inserted, d.Deleted = false, false
		d.Ins = d.Ins[:0]
		d.Del = d.Del[:0]
		return d
	}
	b.nodes = append(b.nodes, NodeDelta{Node: node})
	return &b.nodes[len(b.nodes)-1]
}

// Reset clears the builder for reuse by a new transaction, retaining the
// node-slot and edge-list backing arrays. Deltas built from the previous
// use alias that storage, so Reset may only run once every capturer is done
// with them (the Capturer no-retain contract).
func (b *Builder) Reset() {
	clear(b.byNode)
	b.nodes = b.nodes[:0]
	clear(b.reIns)
}

// InsertNode records that the transaction created node.
func (b *Builder) InsertNode(node uint64) { b.at(node).Inserted = true }

// DeleteNode records that the transaction deleted node. Any edge inserts or
// deletes previously recorded for the node are dropped: the deleted flag
// subsumes them ("this avoids storing the destination node IDs for all its
// outgoing relationships", §5.1). An insert flag from the same transaction
// is cancelled too — deletion wins, matching Combine's cross-transaction
// fold (the replica treats deleting an absent node as a no-op).
func (b *Builder) DeleteNode(node uint64) {
	d := b.at(node)
	d.Deleted = true
	d.Inserted = false
	d.Ins = d.Ins[:0]
	d.Del = d.Del[:0]
	for k := range b.reIns {
		if k[0] == node {
			delete(b.reIns, k)
		}
	}
}

// InsertEdge records an inserted relationship src→dst with the given
// weight, mapped to the source node (§5.1). If the same transaction deleted
// that edge earlier, the delete is superseded: the net effect is the
// insert (a weight update from the replica's point of view). This keeps
// Ins and Del disjoint, so a NodeDelta is order-free.
func (b *Builder) InsertEdge(src, dst uint64, w float64) {
	d := b.at(src)
	if d.Deleted {
		return
	}
	for i := range d.Del {
		if d.Del[i] == dst {
			d.Del = append(d.Del[:i], d.Del[i+1:]...)
			if b.reIns == nil {
				b.reIns = make(map[[2]uint64]struct{})
			}
			b.reIns[[2]uint64{src, dst}] = struct{}{}
			break
		}
	}
	// Repeated inserts of the same destination in one transaction (weight
	// updates) collapse to the newest weight, keeping Ins duplicate-free.
	for i := range d.Ins {
		if d.Ins[i].Dst == dst {
			d.Ins[i].W = w
			return
		}
	}
	d.Ins = append(d.Ins, Edge{Dst: dst, W: w})
}

// DeleteEdge records a deleted relationship src→dst, mapped to the source
// node. If the same transaction inserted that edge earlier, the pair
// cancels out — unless that insert had itself superseded a delete (the
// edge pre-existed the transaction), in which case the delete survives.
// Del stays duplicate-free.
func (b *Builder) DeleteEdge(src, dst uint64) {
	d := b.at(src)
	if d.Deleted {
		return
	}
	for i := range d.Ins {
		if d.Ins[i].Dst == dst {
			d.Ins = append(d.Ins[:i], d.Ins[i+1:]...)
			if _, pre := b.reIns[[2]uint64{src, dst}]; !pre {
				return // the insert created the edge: net no-op
			}
			delete(b.reIns, [2]uint64{src, dst})
			break
		}
	}
	for _, have := range d.Del {
		if have == dst {
			return
		}
	}
	d.Del = append(d.Del, dst)
}

// Build finalizes the transaction's delta with the commit timestamp.
// Untouched (all-zero) node entries are dropped.
func (b *Builder) Build(ts mvto.TS) *TxDelta {
	return b.BuildInto(ts, &TxDelta{})
}

// BuildInto is Build into caller-owned storage: out's node slice is reused
// (truncated and refilled), so a pooled transaction commits without
// allocating its delta. The returned delta's edge lists alias the builder's
// storage — valid only until the builder's next Reset, which is what the
// Capturer no-retain contract guarantees capturers respect.
func (b *Builder) BuildInto(ts mvto.TS, out *TxDelta) *TxDelta {
	out.TS = ts
	out.Nodes = out.Nodes[:0]
	for i := range b.nodes {
		d := &b.nodes[i]
		if !d.Inserted && !d.Deleted && len(d.Ins) == 0 && len(d.Del) == 0 {
			continue
		}
		out.Nodes = append(out.Nodes, *d)
	}
	return out
}

// Len reports the number of node deltas accumulated so far.
func (b *Builder) Len() int { return len(b.nodes) }

// Capturer is implemented by every delta-store variant (DELTA_FE, DELTA_I,
// R) and by the no-op baseline. The main graph invokes Capture from each
// transaction's commit hook, so stores only ever see committed updates
// (§5.1: append at commit avoids undo).
//
// No-retain contract: d, d.Nodes and the edge lists inside it are only
// valid for the duration of the Capture call — the committing transaction's
// pooled builder storage backs them and is reused by a later transaction.
// A capturer that needs the data past return must copy it (every production
// capturer already encodes or materializes into its own storage).
type Capturer interface {
	Capture(d *TxDelta)
}

// AdjacencySource provides visible adjacency snapshots. DELTA_I needs it:
// its deltas store the entire post-update adjacency list of each updated
// node (§6.3), which only the main graph can supply.
type AdjacencySource interface {
	// OutEdgesAt returns the outgoing edges of node visible at ts, sorted
	// by destination, or nil if the node itself is not visible.
	OutEdgesAt(node uint64, ts mvto.TS) []Edge
}

// NopCapturer is the paper's "baseline": transactional updates with no
// delta mechanism at all.
type NopCapturer struct{}

// Capture discards the delta.
func (NopCapturer) Capture(*TxDelta) {}

// Combined is the per-node result of a delta store scan: all updates to one
// node across every valid-and-visible delta, merged in timestamp order
// (§5.2).
type Combined struct {
	Node     uint64
	Inserted bool
	Deleted  bool
	Ins      []Edge   // sorted by Dst
	Del      []uint64 // sorted
}

// Empty reports whether the combined delta is a no-op (e.g. an insert and a
// delete of the same edge in one propagation window).
func (c *Combined) Empty() bool {
	return !c.Inserted && !c.Deleted && len(c.Ins) == 0 && len(c.Del) == 0
}

// Batch is the output of one delta store scan: the combined deltas for one
// update-propagation cycle, sorted by node ID (the order Algorithm 2
// consumes them in).
type Batch struct {
	TS      mvto.TS // snapshot timestamp of the propagation transaction
	Deltas  []Combined
	Records int // delta records consumed (and invalidated) by the scan
}

// Empty reports whether the batch carries no updates.
func (b *Batch) Empty() bool { return len(b.Deltas) == 0 }

// TransferBytes reports the coalesced payload size shipped to the device
// for dynamic-structure propagation (§5.4): 8-byte destination IDs for
// inserts and deletes, 8-byte weights for inserts, plus one fixed 32-byte
// header per combined delta (node id, flags, two counts).
func (b *Batch) TransferBytes() int64 {
	var n int64
	for i := range b.Deltas {
		d := &b.Deltas[i]
		n += 32 + int64(len(d.Ins))*16 + int64(len(d.Del))*8
	}
	return n
}

// Combine folds a sequence of NodeDeltas (already restricted to one node,
// in increasing timestamp order) into a single Combined entry.
//
// Edge folding is last-writer-wins per destination: the newest insert or
// delete of (node, dst) in the window decides the edge's final state.
// Cross-transaction "cancellation" (dropping an insert/delete pair) would
// be wrong here, because whether the pair is a no-op depends on whether the
// edge existed in the replica before the window — which the delta store
// does not know. The merge makes the surviving entries safe either way: a
// delete of an absent edge is a no-op, an insert of a present edge
// overwrites its weight.
//
// A node deletion wipes accumulated edge changes (the deleted flag subsumes
// them, §5.1) and cancels an insert flag from earlier in the window.
func Combine(node uint64, parts []NodeDelta) Combined {
	c := Combined{Node: node}
	type state struct {
		present bool
		w       float64
	}
	edges := make(map[uint64]state)
	for _, p := range parts {
		if p.Inserted {
			c.Inserted = true
			c.Deleted = false
		}
		if p.Deleted {
			c.Deleted = true
			c.Inserted = false
			edges = make(map[uint64]state)
			continue
		}
		for _, e := range p.Ins {
			edges[e.Dst] = state{present: true, w: e.W}
		}
		for _, dst := range p.Del {
			edges[dst] = state{present: false}
		}
	}
	for dst, st := range edges {
		if st.present {
			c.Ins = append(c.Ins, Edge{Dst: dst, W: st.w})
		} else {
			c.Del = append(c.Del, dst)
		}
	}
	sort.Slice(c.Ins, func(i, j int) bool { return c.Ins[i].Dst < c.Ins[j].Dst })
	sort.Slice(c.Del, func(i, j int) bool { return c.Del[i] < c.Del[j] })
	return c
}
