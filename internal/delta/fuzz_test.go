package delta

import (
	"sort"
	"testing"
)

// FuzzCombineReplay drives the Builder + Combine composition with random
// multi-transaction histories on one source node and checks the result
// against a naive ground-truth replay.
//
// The harness decodes the fuzz input into an initial replica state plus a
// sequence of transactions, each a list of operations. Operations are
// filtered the way the transactional graph API filters them (an edge insert
// fails if the edge is present, a delete fails if it is absent, a node
// insert fails if the node exists), so every generated history is one the
// store can actually produce. Each transaction's surviving operations feed
// one Builder; the per-transaction deltas are folded by Combine; and the
// Combined entry is applied to the initial state with the merge semantics
// (delete of an absent edge is a no-op, insert of a present edge overwrites
// its weight, a deleted node loses all edges). The outcome must equal the
// sequential ground-truth state.
func FuzzCombineReplay(f *testing.F) {
	f.Add([]byte{0x04, 1, 0x10, 2, 0x00, 2})          // del 2, reinsert 2 in one txn
	f.Add([]byte{0x04, 1, 0x10, 2, 0x00, 2, 0x10, 2}) // del-ins-del in one txn
	f.Add([]byte{0x00, 1, 0x00, 1, 0x40, 0, 0x10, 1}) // ins, txn boundary, del
	f.Add([]byte{0x07, 1, 0x30, 0})                   // node delete
	f.Add([]byte{0x00, 0, 0x20, 0, 0x00, 5, 0x10, 5}) // node insert then edge churn
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		const node = 7
		// Ground truth: node existence and edge set. Header byte 0: initial
		// edge set (dsts 0..7, weight 1); byte 1 bit 0: initial existence.
		// A node that starts absent has no edges. Node IDs are never reused
		// by the store, so a node deleted inside the window can only be
		// inserted if it never existed before (fresh ID); the harness
		// mirrors that with everExisted.
		exists := data[1]&1 == 1
		truth := map[uint64]float64{}
		initial := map[uint64]float64{}
		if exists {
			for d := uint64(0); d < 8; d++ {
				if data[0]&(1<<d) != 0 {
					truth[d] = 1
					initial[d] = 1
				}
			}
		}
		initialExists := exists
		everExisted := exists
		data = data[2:]

		var parts []NodeDelta
		b := NewBuilder()
		endTxn := func() {
			if d := b.Build(1); !d.Empty() {
				parts = append(parts, d.Nodes...)
			}
			b = NewBuilder()
		}
		for i := 0; i+1 < len(data); i += 2 {
			kind, arg := data[i]>>4, uint64(data[i+1]%16)
			w := float64(data[i]&0x0f) + 1
			switch kind % 5 {
			case 0: // insert edge (valid only if node exists and edge absent)
				if _, present := truth[arg]; exists && !present {
					truth[arg] = w
					b.InsertEdge(node, arg, w)
				}
			case 1: // delete edge (valid only if present)
				if _, present := truth[arg]; exists && present {
					delete(truth, arg)
					b.DeleteEdge(node, arg)
				}
			case 2: // insert node (valid only if it never existed: fresh ID)
				if !everExisted {
					exists, everExisted = true, true
					b.InsertNode(node)
				}
			case 3: // delete node (valid only if present; drops its edges)
				if exists {
					exists = false
					truth = map[uint64]float64{}
					b.DeleteNode(node)
				}
			case 4: // transaction boundary
				endTxn()
			}
		}
		endTxn()

		c := Combine(node, parts)

		// Structural invariants of a Combined entry.
		if !sort.SliceIsSorted(c.Ins, func(i, j int) bool { return c.Ins[i].Dst < c.Ins[j].Dst }) {
			t.Fatalf("Ins not sorted: %+v", c.Ins)
		}
		if !sort.SliceIsSorted(c.Del, func(i, j int) bool { return c.Del[i] < c.Del[j] }) {
			t.Fatalf("Del not sorted: %+v", c.Del)
		}
		seen := map[uint64]bool{}
		for _, e := range c.Ins {
			if seen[e.Dst] {
				t.Fatalf("duplicate in Ins: %+v", c.Ins)
			}
			seen[e.Dst] = true
		}
		for _, d := range c.Del {
			if seen[d] {
				t.Fatalf("Ins/Del overlap or duplicate Del at %d: %+v / %v", d, c.Ins, c.Del)
			}
			seen[d] = true
		}

		// Apply the combined delta to the initial state with the merge
		// semantics and compare against the ground truth.
		got := map[uint64]float64{}
		gotExists := initialExists
		switch {
		case c.Deleted:
			gotExists = false
		case c.Inserted:
			gotExists = true
		}
		if !c.Deleted {
			for k, v := range initial {
				got[k] = v
			}
			for _, d := range c.Del {
				delete(got, d)
			}
			for _, e := range c.Ins {
				got[e.Dst] = e.W
			}
		}
		if gotExists != exists {
			t.Fatalf("node existence: merge says %v, truth %v (combined %+v)", gotExists, exists, c)
		}
		if exists {
			if len(got) != len(truth) {
				t.Fatalf("edge sets differ: merge %v, truth %v (combined %+v, initial %v)", got, truth, c, initial)
			}
			for d, w := range truth {
				if gw, ok := got[d]; !ok || gw != w {
					t.Fatalf("edge %d: merge (%v,%v), truth weight %v (combined %+v, initial %v)", d, gw, ok, w, c, initial)
				}
			}
		}
	})
}
