package csr

import (
	"testing"

	"h2tap/internal/delta"
)

// FuzzMerge drives Merge with fuzzer-shaped CSRs and batches: whatever the
// fuzzer produces (decoded into structurally valid inputs), the output must
// satisfy the CSR invariants and match the reference map-based merge.
func FuzzMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{9, 1, 0, 4})
	f.Add([]byte{0, 0, 0}, []byte{})
	f.Fuzz(func(t *testing.T, graphBytes, deltaBytes []byte) {
		const n = 8 // node space
		// Decode graphBytes into a valid CSR over n nodes: each byte is an
		// (src, dst) pair in nibbles; duplicates collapse.
		rows := make([]map[uint64]float64, n)
		for i := range rows {
			rows[i] = map[uint64]float64{}
		}
		for i, b := range graphBytes {
			src, dst := uint64(b>>4)%n, uint64(b&0xf)%n
			rows[src][dst] = float64(i%9 + 1)
		}
		old := &CSR{Off: make([]int64, n+1)}
		for u := 0; u < n; u++ {
			for dst := uint64(0); dst < n; dst++ {
				if w, ok := rows[u][dst]; ok {
					old.Col = append(old.Col, dst)
					old.Val = append(old.Val, w)
				}
			}
			old.Off[u+1] = int64(len(old.Col))
		}
		if err := old.Validate(); err != nil {
			t.Fatalf("setup produced invalid CSR: %v", err)
		}

		// Decode deltaBytes into one combined delta per touched node. Each
		// byte: high nibble picks node (may exceed n for new-node rows),
		// low nibble picks an action.
		byNode := map[uint64]*delta.Combined{}
		for i, b := range deltaBytes {
			node := uint64(b>>4) % (n + 3)
			d, ok := byNode[node]
			if !ok {
				d = &delta.Combined{Node: node, Inserted: node >= n}
				byNode[node] = d
			}
			if d.Deleted {
				continue
			}
			switch act := b & 0xf; {
			case act == 15:
				d.Deleted = true
				d.Inserted = false
				d.Ins, d.Del = nil, nil
			case act%2 == 0: // insert edge act/2
				dst := uint64(act/2) % n
				set(d, dst, float64(i%9+1))
			default: // delete edge act/2
				dst := uint64(act/2) % n
				unset(d, dst)
			}
		}
		batch := &delta.Batch{}
		for node := uint64(0); node < n+3; node++ {
			if d, ok := byNode[node]; ok && !d.Empty() {
				batch.Deltas = append(batch.Deltas, *d)
			}
		}

		merged, _ := Merge(old, batch)
		if err := merged.Validate(); err != nil {
			t.Fatalf("merged CSR invalid: %v\nold: %+v\nbatch: %+v", err, old, batch.Deltas)
		}
		want := refMerge(old, batch)
		if !Equal(merged, want) {
			t.Fatalf("merge differs from reference\nold: %+v\nbatch: %+v", old, batch.Deltas)
		}
	})
}

// set/unset maintain a Combined's sorted, disjoint Ins/Del lists the way a
// delta store scan would produce them.
func set(d *delta.Combined, dst uint64, w float64) {
	for i := range d.Del {
		if d.Del[i] == dst {
			d.Del = append(d.Del[:i], d.Del[i+1:]...)
			break
		}
	}
	for i := range d.Ins {
		if d.Ins[i].Dst == dst {
			d.Ins[i].W = w
			return
		}
		if d.Ins[i].Dst > dst {
			d.Ins = append(d.Ins[:i], append([]delta.Edge{{Dst: dst, W: w}}, d.Ins[i:]...)...)
			return
		}
	}
	d.Ins = append(d.Ins, delta.Edge{Dst: dst, W: w})
}

func unset(d *delta.Combined, dst uint64) {
	for i := range d.Ins {
		if d.Ins[i].Dst == dst {
			d.Ins = append(d.Ins[:i], d.Ins[i+1:]...)
			break
		}
	}
	for i := range d.Del {
		if d.Del[i] == dst {
			return
		}
		if d.Del[i] > dst {
			d.Del = append(d.Del[:i], append([]uint64{dst}, d.Del[i:]...)...)
			return
		}
	}
	d.Del = append(d.Del, dst)
}
