// Package csr implements the Compressed Sparse Row graph representation —
// the paper's representative *static* GPU data structure (§2.1) — together
// with the three operations the evaluation measures: the full rebuild from
// the main graph (Fig 9a), the copy (Fig 9b/9c), and the delta merge of
// Algorithm 2 (§5.4) that replaces the rebuild in DELTA_FE.
package csr

import (
	"fmt"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
)

// CSR is a weighted directed graph in compressed sparse row form: row
// offsets, column indices (sorted within each row) and edge values, exactly
// the three arrays of §2.1.
type CSR struct {
	Off []int64   // len = NumNodes()+1
	Col []uint64  // len = NumEdges()
	Val []float64 // parallel to Col
}

// NumNodes reports the node ID space covered by the CSR (including
// empty rows for deleted nodes).
func (c *CSR) NumNodes() int { return len(c.Off) - 1 }

// NumEdges reports the number of stored edges.
func (c *CSR) NumEdges() int64 { return int64(len(c.Col)) }

// MaxNodeID reports the largest node ID representable in this CSR — the
// "xid" of Algorithms 1 and 2.
func (c *CSR) MaxNodeID() uint64 {
	if c.NumNodes() == 0 {
		return 0
	}
	return uint64(c.NumNodes() - 1)
}

// Degree reports the out-degree of node u (0 for out-of-range IDs).
func (c *CSR) Degree(u uint64) int {
	if u >= uint64(c.NumNodes()) {
		return 0
	}
	return int(c.Off[u+1] - c.Off[u])
}

// Row returns node u's column indices and edge values. The slices alias the
// CSR's arrays; callers must not modify them.
func (c *CSR) Row(u uint64) ([]uint64, []float64) {
	if u >= uint64(c.NumNodes()) {
		return nil, nil
	}
	lo, hi := c.Off[u], c.Off[u+1]
	return c.Col[lo:hi], c.Val[lo:hi]
}

// Bytes reports the memory footprint of the three arrays.
func (c *CSR) Bytes() int64 {
	return int64(len(c.Off))*8 + int64(len(c.Col))*8 + int64(len(c.Val))*8
}

// Copy deep-copies the CSR — the "CSR copy" operation of Fig 9b, the
// memcpy-bound floor under the merge time (§6.4).
func (c *CSR) Copy() *CSR {
	n := &CSR{
		Off: make([]int64, len(c.Off)),
		Col: make([]uint64, len(c.Col)),
		Val: make([]float64, len(c.Val)),
	}
	copy(n.Off, c.Off)
	copy(n.Col, c.Col)
	copy(n.Val, c.Val)
	return n
}

// Snapshot is the read view a CSR is built from: the main graph at a
// commit timestamp.
type Snapshot interface {
	NumNodeSlots() uint64
	OutEdgesAt(id uint64, ts mvto.TS) []delta.Edge
}

// Build constructs a CSR from a snapshot of the main graph — the full
// rebuild the paper shows to be the bottleneck (§1: 11× the SSSP execution
// time at SF 10). Rows are gathered in parallel across DefaultWorkers
// workers, then laid out by sharded prefix sum (see BuildWorkers).
func Build(src Snapshot, ts mvto.TS) *CSR {
	return BuildWorkers(src, ts, 0)
}

// MergeStats describes the work split of one Merge: the copied (unchanged)
// part dominated by graph size versus the modified part dominated by delta
// count — the two components of the paper's cost model (§6.4, Fig 10).
type MergeStats struct {
	RowsCopied   int
	RowsModified int
	RowsAdded    int // new nodes beyond the old CSR's range
	EdgesCopied  int64
	EdgesMerged  int64
}

// Merge produces the new CSR from the old CSR and one propagation batch —
// Algorithm 2 — using DefaultWorkers workers (the parallel sharded merge
// for multi-core hosts, the serial single-pass merge otherwise). Both paths
// produce identical bytes; see MergeSerial for the algorithm description.
func Merge(old *CSR, batch *delta.Batch) (*CSR, MergeStats) {
	return MergeWorkers(old, batch, 0)
}

// MergeSerial is the single-threaded Algorithm 2 reference. Untouched rows
// are block-copied with shifted offsets; touched rows are three-way merged
// with their combined delta (old row minus deletes, plus/overwriting
// inserts, deleted nodes becoming empty rows); rows for newly inserted
// nodes are taken from their deltas alone. The batch's deltas must be
// sorted by node ID, which deltastore.Scan guarantees.
func MergeSerial(old *CSR, batch *delta.Batch) (*CSR, MergeStats) {
	var st MergeStats
	oldN := uint64(old.NumNodes())
	newN := oldN
	for i := range batch.Deltas {
		if id := batch.Deltas[i].Node; id >= newN {
			newN = id + 1
		}
	}

	var extraIns int64
	for i := range batch.Deltas {
		extraIns += int64(len(batch.Deltas[i].Ins))
	}
	out := &CSR{
		Off: make([]int64, newN+1),
		Col: make([]uint64, 0, int64(len(old.Col))+extraIns),
		Val: make([]float64, 0, int64(len(old.Val))+extraIns),
	}

	copyRows := func(lo, hi uint64) { // [lo, hi) unchanged rows from old
		if lo >= hi {
			return
		}
		shift := int64(len(out.Col)) - old.Off[lo]
		out.Col = append(out.Col, old.Col[old.Off[lo]:old.Off[hi]]...)
		out.Val = append(out.Val, old.Val[old.Off[lo]:old.Off[hi]]...)
		for r := lo; r < hi; r++ {
			out.Off[r+1] = old.Off[r+1] + shift
		}
		st.RowsCopied += int(hi - lo)
		st.EdgesCopied += old.Off[hi] - old.Off[lo]
	}

	pos := uint64(0)
	for i := range batch.Deltas {
		d := &batch.Deltas[i]
		if d.Node >= oldN {
			// New-node territory: flush the remaining old rows once, then
			// fall through to the tail loop below.
			break
		}
		copyRows(pos, d.Node)
		oc, ov := old.Row(d.Node)
		mergeRow(out, oc, ov, d)
		out.Off[d.Node+1] = int64(len(out.Col))
		st.RowsModified++
		pos = d.Node + 1
	}
	copyRows(pos, oldN)
	pos = oldN

	// Tail: nodes beyond the old CSR (Algorithm 2 lines 16-17). Gaps —
	// IDs allocated to nodes whose insert aborted or that were inserted
	// and deleted within the window — become empty rows.
	for i := range batch.Deltas {
		d := &batch.Deltas[i]
		if d.Node < oldN {
			continue
		}
		for ; pos < d.Node; pos++ {
			out.Off[pos+1] = int64(len(out.Col))
		}
		mergeRow(out, nil, nil, d)
		out.Off[d.Node+1] = int64(len(out.Col))
		st.RowsAdded++
		pos = d.Node + 1
	}
	for ; pos < newN; pos++ {
		out.Off[pos+1] = int64(len(out.Col))
	}
	st.EdgesMerged = int64(len(out.Col)) - st.EdgesCopied
	return out, st
}

// mergeRow appends the merged row (old row ∪ inserts, minus deletes) to
// out. Both the old row and the delta's Ins/Del are sorted, so this is a
// linear three-way merge. An insert whose destination already exists
// overwrites the weight (a delete+reinsert in one window).
func mergeRow(out *CSR, oc []uint64, ov []float64, d *delta.Combined) {
	if d.Deleted {
		return // empty row for deleted nodes
	}
	i, j, k := 0, 0, 0 // old row, Ins, Del cursors
	for i < len(oc) || j < len(d.Ins) {
		// Skip deletes that can no longer match anything.
		useOld := j >= len(d.Ins) || (i < len(oc) && oc[i] <= d.Ins[j].Dst)
		if useOld {
			dst := oc[i]
			for k < len(d.Del) && d.Del[k] < dst {
				k++
			}
			if k < len(d.Del) && d.Del[k] == dst {
				i++ // deleted edge
				continue
			}
			if j < len(d.Ins) && d.Ins[j].Dst == dst {
				// Overwrite: take the insert's weight, consume both.
				out.Col = append(out.Col, dst)
				out.Val = append(out.Val, d.Ins[j].W)
				i++
				j++
				continue
			}
			out.Col = append(out.Col, dst)
			out.Val = append(out.Val, ov[i])
			i++
			continue
		}
		out.Col = append(out.Col, d.Ins[j].Dst)
		out.Val = append(out.Val, d.Ins[j].W)
		j++
	}
}

// Equal reports whether two CSRs represent the same graph (same rows over
// the common prefix and only empty rows beyond it).
func Equal(a, b *CSR) bool {
	an, bn := a.NumNodes(), b.NumNodes()
	n := an
	if bn > n {
		n = bn
	}
	for u := 0; u < n; u++ {
		ac, av := a.Row(uint64(u))
		bc, bv := b.Row(uint64(u))
		if len(ac) != len(bc) {
			return false
		}
		for i := range ac {
			if ac[i] != bc[i] || av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// Validate checks structural invariants: monotone offsets, sorted rows,
// and column indices below the node count. It returns the first violation.
func (c *CSR) Validate() error {
	if len(c.Off) == 0 {
		return fmt.Errorf("csr: empty offsets array")
	}
	if c.Off[0] != 0 {
		return fmt.Errorf("csr: Off[0] = %d, want 0", c.Off[0])
	}
	if int(c.Off[len(c.Off)-1]) != len(c.Col) || len(c.Col) != len(c.Val) {
		return fmt.Errorf("csr: array lengths inconsistent: off end %d, col %d, val %d",
			c.Off[len(c.Off)-1], len(c.Col), len(c.Val))
	}
	for u := 0; u < c.NumNodes(); u++ {
		if c.Off[u+1] < c.Off[u] {
			return fmt.Errorf("csr: offsets not monotone at row %d", u)
		}
		row, _ := c.Row(uint64(u))
		for i := 1; i < len(row); i++ {
			if row[i] <= row[i-1] {
				return fmt.Errorf("csr: row %d not strictly sorted at %d", u, i)
			}
		}
	}
	return nil
}
