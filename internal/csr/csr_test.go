package csr

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"h2tap/internal/delta"
	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
	"h2tap/internal/mvto"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
)

// buildSmall loads a small fixed graph:
//
//	0 → 1 (w1), 0 → 2 (w2), 1 → 2 (w3), 3 isolated
func buildSmall(t *testing.T) (*graph.Store, mvto.TS) {
	t.Helper()
	s := graph.NewStore()
	ts, err := s.BulkLoad(
		[]graph.NodeSpec{{Label: "A"}, {Label: "A"}, {Label: "A"}, {Label: "A"}},
		[]graph.EdgeSpec{
			{Src: 0, Dst: 2, Weight: 2},
			{Src: 0, Dst: 1, Weight: 1},
			{Src: 1, Dst: 2, Weight: 3},
		})
	if err != nil {
		t.Fatal(err)
	}
	return s, ts
}

func TestBuildBasic(t *testing.T) {
	s, ts := buildSmall(t)
	c := Build(s, ts)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 4 || c.NumEdges() != 3 {
		t.Fatalf("dims = %d nodes, %d edges", c.NumNodes(), c.NumEdges())
	}
	col, val := c.Row(0)
	if len(col) != 2 || col[0] != 1 || col[1] != 2 || val[0] != 1 || val[1] != 2 {
		t.Fatalf("row 0 = %v %v", col, val)
	}
	if c.Degree(1) != 1 || c.Degree(3) != 0 || c.Degree(99) != 0 {
		t.Fatalf("degrees: %d %d %d", c.Degree(1), c.Degree(3), c.Degree(99))
	}
	if c.Bytes() != int64(5*8+3*8+3*8) {
		t.Fatalf("Bytes = %d", c.Bytes())
	}
}

func TestCopyIsDeep(t *testing.T) {
	s, ts := buildSmall(t)
	c := Build(s, ts)
	cp := c.Copy()
	if !Equal(c, cp) {
		t.Fatal("copy differs")
	}
	cp.Col[0] = 999
	if c.Col[0] == 999 {
		t.Fatal("copy aliases original")
	}
}

func batchOf(deltas ...delta.Combined) *delta.Batch {
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Node < deltas[j].Node })
	return &delta.Batch{Deltas: deltas}
}

func TestMergeInsertEdge(t *testing.T) {
	s, ts := buildSmall(t)
	old := Build(s, ts)
	merged, st := Merge(old, batchOf(
		delta.Combined{Node: 1, Ins: []delta.Edge{{Dst: 0, W: 9}, {Dst: 3, W: 7}}},
	))
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	col, val := merged.Row(1)
	if len(col) != 3 || col[0] != 0 || col[1] != 2 || col[2] != 3 {
		t.Fatalf("row 1 = %v", col)
	}
	if val[0] != 9 || val[1] != 3 || val[2] != 7 {
		t.Fatalf("row 1 vals = %v", val)
	}
	// Rows 0, 2, 3 copied untouched.
	if st.RowsModified != 1 || st.RowsCopied != 3 || st.RowsAdded != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if c0, _ := merged.Row(0); len(c0) != 2 {
		t.Fatalf("row 0 corrupted: %v", c0)
	}
}

func TestMergeDeleteEdgeAndNode(t *testing.T) {
	s, ts := buildSmall(t)
	old := Build(s, ts)
	merged, _ := Merge(old, batchOf(
		delta.Combined{Node: 0, Del: []uint64{1}},
		delta.Combined{Node: 1, Deleted: true},
	))
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if col, _ := merged.Row(0); len(col) != 1 || col[0] != 2 {
		t.Fatalf("row 0 after delete = %v", col)
	}
	if col, _ := merged.Row(1); len(col) != 0 {
		t.Fatalf("deleted node row = %v", col)
	}
}

func TestMergeNewNodesWithGap(t *testing.T) {
	s, ts := buildSmall(t)
	old := Build(s, ts)
	// Node 6 inserted; 4 and 5 are gaps (e.g. aborted inserts).
	merged, st := Merge(old, batchOf(
		delta.Combined{Node: 6, Inserted: true, Ins: []delta.Edge{{Dst: 0, W: 4}}},
	))
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if merged.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", merged.NumNodes())
	}
	for _, gap := range []uint64{4, 5} {
		if merged.Degree(gap) != 0 {
			t.Fatalf("gap node %d has edges", gap)
		}
	}
	if col, _ := merged.Row(6); len(col) != 1 || col[0] != 0 {
		t.Fatalf("new node row = %v", col)
	}
	if st.RowsAdded != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMergeWeightOverwrite(t *testing.T) {
	s, ts := buildSmall(t)
	old := Build(s, ts)
	// Delete + reinsert with a new weight combined into a bare insert of an
	// existing destination: the weight must be replaced, not duplicated.
	merged, _ := Merge(old, batchOf(
		delta.Combined{Node: 0, Ins: []delta.Edge{{Dst: 2, W: 42}}},
	))
	col, val := merged.Row(0)
	if len(col) != 2 || col[1] != 2 || val[1] != 42 {
		t.Fatalf("row 0 = %v %v", col, val)
	}
}

func TestMergeEmptyBatch(t *testing.T) {
	s, ts := buildSmall(t)
	old := Build(s, ts)
	merged, st := Merge(old, &delta.Batch{})
	if !Equal(old, merged) {
		t.Fatal("empty merge changed the CSR")
	}
	if st.RowsModified != 0 || st.EdgesMerged != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMergeDeleteMissingEdgeIsNoop(t *testing.T) {
	s, ts := buildSmall(t)
	old := Build(s, ts)
	merged, _ := Merge(old, batchOf(
		delta.Combined{Node: 0, Del: []uint64{77}},
	))
	if !Equal(old, merged) {
		t.Fatal("deleting a non-existent edge changed the CSR")
	}
}

func TestEqualToleratesTrailingEmptyRows(t *testing.T) {
	a := &CSR{Off: []int64{0, 1}, Col: []uint64{0}, Val: []float64{1}}
	b := &CSR{Off: []int64{0, 1, 1, 1}, Col: []uint64{0}, Val: []float64{1}}
	if !Equal(a, b) {
		t.Fatal("trailing empty rows should compare equal")
	}
	c := &CSR{Off: []int64{0, 1, 2}, Col: []uint64{0, 0}, Val: []float64{1, 1}}
	if Equal(a, c) {
		t.Fatal("different graphs compared equal")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := &CSR{Off: []int64{0, 2}, Col: []uint64{1, 2}, Val: []float64{1, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &CSR{Off: []int64{0, 2}, Col: []uint64{2, 1}, Val: []float64{1, 1}}
	if bad.Validate() == nil {
		t.Fatal("unsorted row not caught")
	}
	bad2 := &CSR{Off: []int64{0, 3}, Col: []uint64{1, 2}, Val: []float64{1, 1}}
	if bad2.Validate() == nil {
		t.Fatal("length mismatch not caught")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	s, ts := buildSmall(t)
	c := Build(s, ts)
	pool, err := pmem.Create(filepath.Join(t.TempDir(), "csr.pool"), 1<<20, sim.DefaultPMem())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.ResetSimTime()
	off, err := PersistTo(pool, c)
	if err != nil {
		t.Fatal(err)
	}
	if pool.SimTime() <= 0 {
		t.Fatal("persistent copy charged no media time")
	}
	got, err := LoadPersistent(pool, off)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(c, got) {
		t.Fatal("persistent round trip lost data")
	}
}

// The core §5 consistency invariant: merging scan batches into the old CSR
// must produce exactly the CSR a full rebuild would produce, across
// multiple propagation cycles of a random transactional workload.
func TestMergeEqualsRebuildOverRandomWorkload(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		s := graph.NewStore()
		store := deltastore.NewVolatile()
		s.AddCapturer(store)

		specs := make([]graph.NodeSpec, 24)
		for i := range specs {
			specs[i] = graph.NodeSpec{Label: "Person"}
		}
		loadTS, err := s.BulkLoad(specs, []graph.EdgeSpec{
			{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		replica := Build(s, loadTS)

		r := rand.New(rand.NewSource(seed))
		for cycle := 0; cycle < 6; cycle++ {
			for q := 0; q < 60; q++ {
				tx := s.Begin()
				a := uint64(r.Intn(int(s.NumNodeSlots())))
				b := uint64(r.Intn(int(s.NumNodeSlots())))
				var opErr error
				switch r.Intn(10) {
				case 0, 1, 2, 3, 4:
					_, opErr = tx.AddRel(a, b, "knows", float64(r.Intn(50)+1))
				case 5, 6:
					id, _ := tx.AddNode("Person", nil)
					_, opErr = tx.AddRel(a, id, "knows", 1)
				case 7, 8:
					rels, err := tx.OutRels(a)
					if err != nil || len(rels) == 0 {
						opErr = err
						if opErr == nil {
							tx.Abort()
							continue
						}
					} else {
						opErr = tx.DeleteRel(rels[r.Intn(len(rels))].ID)
					}
				case 9:
					opErr = tx.DeleteNode(a)
				}
				if opErr != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			// Propagation: scan + merge, then compare with a full rebuild
			// at the same snapshot.
			tp := s.Oracle().Begin()
			batch := store.Scan(tp.TS())
			merged, _ := Merge(replica, batch)
			if err := merged.Validate(); err != nil {
				t.Fatalf("seed %d cycle %d: merged CSR invalid: %v", seed, cycle, err)
			}
			rebuilt := Build(s, tp.TS()-1) // snapshot of all commits < tp
			if !Equal(merged, rebuilt) {
				t.Fatalf("seed %d cycle %d: merge != rebuild", seed, cycle)
			}
			tp.Commit()
			replica = merged
		}
	}
}

// The consistency invariant also holds for undirected stores (§5.1's
// two-delta encoding): both endpoint rows stay in sync through merges.
func TestMergeEqualsRebuildUndirected(t *testing.T) {
	s := graph.NewUndirectedStore()
	store := deltastore.NewVolatile()
	s.AddCapturer(store)
	specs := make([]graph.NodeSpec, 20)
	for i := range specs {
		specs[i] = graph.NodeSpec{Label: "P"}
	}
	loadTS, err := s.BulkLoad(specs, []graph.EdgeSpec{{Src: 0, Dst: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	replica := Build(s, loadTS)

	r := rand.New(rand.NewSource(5))
	for cycle := 0; cycle < 5; cycle++ {
		for q := 0; q < 60; q++ {
			tx := s.Begin()
			a := uint64(r.Intn(int(s.NumNodeSlots())))
			b := uint64(r.Intn(int(s.NumNodeSlots())))
			var err error
			switch r.Intn(8) {
			case 0, 1, 2, 3:
				_, err = tx.AddRel(a, b, "k", float64(r.Intn(9)+1))
			case 4, 5:
				id, _ := tx.AddNode("P", nil)
				_, err = tx.AddRel(a, id, "k", 1)
			case 6:
				rels, oerr := tx.OutRels(a)
				if oerr != nil || len(rels) == 0 {
					tx.Abort()
					continue
				}
				err = tx.DeleteRel(rels[r.Intn(len(rels))].ID)
			case 7:
				err = tx.DeleteNode(a)
			}
			if err != nil {
				tx.Abort()
				continue
			}
			tx.Commit()
		}
		tp := s.Oracle().Begin()
		batch := store.Scan(tp.TS())
		merged, _ := Merge(replica, batch)
		rebuilt := Build(s, tp.TS()-1)
		tp.Commit()
		if err := merged.Validate(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if !Equal(merged, rebuilt) {
			t.Fatalf("cycle %d: undirected merge != rebuild", cycle)
		}
		replica = merged
	}
}

// Reference merge: rebuild each row from a map model. Used by the quick
// check below.
func refMerge(old *CSR, batch *delta.Batch) *CSR {
	type row map[uint64]float64
	n := uint64(old.NumNodes())
	for _, d := range batch.Deltas {
		if d.Node >= n {
			n = d.Node + 1
		}
	}
	rows := make([]row, n)
	for u := uint64(0); u < uint64(old.NumNodes()); u++ {
		rows[u] = row{}
		col, val := old.Row(u)
		for i := range col {
			rows[u][col[i]] = val[i]
		}
	}
	for i := range rows {
		if rows[i] == nil {
			rows[i] = row{}
		}
	}
	for _, d := range batch.Deltas {
		if d.Deleted {
			rows[d.Node] = row{}
			continue
		}
		for _, dst := range d.Del {
			delete(rows[d.Node], dst)
		}
		for _, e := range d.Ins {
			rows[d.Node][e.Dst] = e.W
		}
	}
	out := &CSR{Off: make([]int64, n+1)}
	for u := uint64(0); u < n; u++ {
		cols := make([]uint64, 0, len(rows[u]))
		for dst := range rows[u] {
			cols = append(cols, dst)
		}
		sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
		for _, dst := range cols {
			out.Col = append(out.Col, dst)
			out.Val = append(out.Val, rows[u][dst])
		}
		out.Off[u+1] = int64(len(out.Col))
	}
	return out
}

func TestMergeMatchesReferenceOnRandomInputs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		// Random old CSR over 12 nodes.
		const n = 12
		old := &CSR{Off: make([]int64, n+1)}
		for u := 0; u < n; u++ {
			deg := r.Intn(5)
			used := map[uint64]bool{}
			var cols []uint64
			for len(cols) < deg {
				c := uint64(r.Intn(n))
				if !used[c] {
					used[c] = true
					cols = append(cols, c)
				}
			}
			sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
			for _, c := range cols {
				old.Col = append(old.Col, c)
				old.Val = append(old.Val, float64(r.Intn(9)+1))
			}
			old.Off[u+1] = int64(len(old.Col))
		}

		// Random batch over nodes 0..n+3.
		var deltas []delta.Combined
		touched := map[uint64]bool{}
		for k := 0; k < 6; k++ {
			node := uint64(r.Intn(n + 4))
			if touched[node] {
				continue
			}
			touched[node] = true
			d := delta.Combined{Node: node}
			switch r.Intn(4) {
			case 0:
				d.Deleted = true
			case 1, 2:
				used := map[uint64]bool{}
				for x := 0; x < r.Intn(4)+1; x++ {
					dst := uint64(r.Intn(n))
					if !used[dst] {
						used[dst] = true
						d.Ins = append(d.Ins, delta.Edge{Dst: dst, W: float64(r.Intn(9) + 1)})
					}
				}
				sort.Slice(d.Ins, func(i, j int) bool { return d.Ins[i].Dst < d.Ins[j].Dst })
			case 3:
				used := map[uint64]bool{}
				for x := 0; x < r.Intn(4)+1; x++ {
					dst := uint64(r.Intn(n))
					if !used[dst] {
						used[dst] = true
						d.Del = append(d.Del, dst)
					}
				}
				sort.Slice(d.Del, func(i, j int) bool { return d.Del[i] < d.Del[j] })
			}
			if node >= n && !d.Deleted {
				d.Inserted = true
				d.Del = nil
			}
			deltas = append(deltas, d)
		}
		batch := batchOf(deltas...)
		got, _ := Merge(old, batch)
		if err := got.Validate(); err != nil {
			t.Fatalf("iter %d: merged invalid: %v", iter, err)
		}
		want := refMerge(old, batch)
		if !Equal(got, want) {
			t.Fatalf("iter %d: merge differs from reference\nold: %+v\nbatch: %+v", iter, old, batch.Deltas)
		}
	}
}
