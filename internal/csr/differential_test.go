package csr

import (
	"math/rand"
	"testing"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
)

// sameBytes reports whether two CSRs are bit-identical in all three arrays
// — stronger than Equal, which only compares the represented graph.
func sameBytes(a, b *CSR) bool {
	if len(a.Off) != len(b.Off) || len(a.Col) != len(b.Col) || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.Off {
		if a.Off[i] != b.Off[i] {
			return false
		}
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// randomCSR builds a random valid CSR over n nodes.
func randomCSR(r *rand.Rand, n int) *CSR {
	c := &CSR{Off: make([]int64, n+1)}
	for u := 0; u < n; u++ {
		deg := r.Intn(6)
		if deg > n {
			deg = n
		}
		used := map[uint64]bool{}
		cols := make([]uint64, 0, deg)
		for len(cols) < deg {
			dst := uint64(r.Intn(n))
			if !used[dst] {
				used[dst] = true
				cols = append(cols, dst)
			}
		}
		sortUint64s(cols)
		for _, dst := range cols {
			c.Col = append(c.Col, dst)
			c.Val = append(c.Val, float64(r.Intn(97)+1))
		}
		c.Off[u+1] = int64(len(c.Col))
	}
	return c
}

func sortUint64s(xs []uint64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// randomBatch builds a random node-sorted propagation batch over old's node
// space plus a few new-node IDs, mixing edge inserts/deletes, overwrites,
// node deletions (tombstones) and new-node inserts.
func randomBatch(r *rand.Rand, oldN int) *delta.Batch {
	batch := &delta.Batch{}
	maxNode := oldN + r.Intn(5)
	for node := 0; node <= maxNode; node++ {
		if r.Intn(3) != 0 {
			continue // untouched row
		}
		d := delta.Combined{Node: uint64(node)}
		switch r.Intn(5) {
		case 0:
			d.Deleted = true
		default:
			used := map[uint64]bool{}
			for x := 0; x < r.Intn(5); x++ {
				dst := uint64(r.Intn(oldN + 2))
				if used[dst] {
					continue
				}
				used[dst] = true
				if r.Intn(2) == 0 {
					d.Ins = append(d.Ins, delta.Edge{Dst: dst, W: float64(r.Intn(9) + 1)})
				} else {
					d.Del = append(d.Del, dst)
				}
			}
		}
		if node >= oldN {
			d.Inserted = !d.Deleted
			d.Del = nil
		}
		sortIns(d.Ins)
		sortUint64s(d.Del)
		if d.Empty() {
			continue
		}
		batch.Deltas = append(batch.Deltas, d)
	}
	return batch
}

func sortIns(xs []delta.Edge) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].Dst < xs[j-1].Dst; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// rowsSnapshot adapts refMerge's output rows to the Snapshot interface so
// Build can be run over the post-apply state.
type rowsSnapshot struct{ c *CSR }

func (s rowsSnapshot) NumNodeSlots() uint64 { return uint64(s.c.NumNodes()) }
func (s rowsSnapshot) OutEdgesAt(id uint64, _ mvto.TS) []delta.Edge {
	col, val := s.c.Row(id)
	if len(col) == 0 {
		return nil
	}
	out := make([]delta.Edge, len(col))
	for i := range col {
		out[i] = delta.Edge{Dst: col[i], W: val[i]}
	}
	return out
}

// TestMergeDifferential is the parallel-propagation proof obligation: for
// randomized graphs and randomized delta batches, the serial merge, the
// parallel merge at several worker counts (including 1), and a Build of the
// post-apply snapshot must all produce the same Off/Col/Val bytes and the
// merges the same MergeStats.
func TestMergeDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(0xd1ff))
	workerCounts := []int{1, 2, 3, 4, 8}
	const cases = 150
	for iter := 0; iter < cases; iter++ {
		oldN := r.Intn(200) + 1
		old := randomCSR(r, oldN)
		batch := randomBatch(r, oldN)

		serial, serialSt := MergeSerial(old, batch)
		if err := serial.Validate(); err != nil {
			t.Fatalf("iter %d: serial merge invalid: %v", iter, err)
		}
		if want := refMerge(old, batch); !Equal(serial, want) {
			t.Fatalf("iter %d: serial merge differs from reference", iter)
		}

		for _, w := range workerCounts {
			par, parSt := MergeWorkers(old, batch, w)
			if !sameBytes(serial, par) {
				t.Fatalf("iter %d: %d-worker merge bytes differ from serial\nold: %+v\nbatch: %+v",
					iter, w, old, batch.Deltas)
			}
			if parSt != serialSt {
				t.Fatalf("iter %d: %d-worker merge stats = %+v, serial %+v", iter, w, parSt, serialSt)
			}
		}

		// Build of the post-apply snapshot must land on the same bytes: the
		// merged CSR's rows are already sorted and deduplicated, so building
		// from them reproduces the exact layout.
		snap := rowsSnapshot{c: serial}
		for _, w := range []int{1, 4} {
			built := BuildWorkers(snap, 0, w)
			if !sameBytes(serial, built) {
				t.Fatalf("iter %d: %d-worker build of post-apply snapshot differs from merge", iter, w)
			}
		}
	}
}

// TestMergeObservedShards checks the shard callback contract the engine's
// transfer overlap relies on: shards tile the row space exactly once and
// their byte sizes sum to the output payload (modulo the Off[0] word).
func TestMergeObservedShards(t *testing.T) {
	r := rand.New(rand.NewSource(0x5a5a))
	old := randomCSR(r, 300)
	batch := randomBatch(r, 300)
	for _, w := range []int{1, 3, 8} {
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		var shards []MergeShard
		out, _ := MergeObserved(old, batch, w, func(s MergeShard) {
			<-mu
			shards = append(shards, s)
			mu <- struct{}{}
		})
		covered := make([]bool, out.NumNodes())
		var bytes int64
		for _, s := range shards {
			for r := s.FirstRow; r < s.EndRow; r++ {
				if covered[r] {
					t.Fatalf("workers=%d: row %d covered twice", w, r)
				}
				covered[r] = true
			}
			bytes += s.Bytes
		}
		for r, ok := range covered {
			if !ok {
				t.Fatalf("workers=%d: row %d not covered by any shard", w, r)
			}
		}
		if want := out.Bytes() - 8; bytes != want {
			t.Fatalf("workers=%d: shard bytes sum %d, want %d", w, bytes, want)
		}
	}
}
