package csr

import (
	"encoding/binary"
	"fmt"
	"math"

	"h2tap/internal/pmem"
)

// Persistent CSR copy (§6.5): alongside the default volatile CSR, the
// system keeps a PMem copy used only for recovery, overwritten after each
// merge. PersistTo is that overwrite — Fig 9c measures its cost.

const pcsrHeader = 16 // numNodes u64, numEdges u64

// PersistTo writes the CSR into pool and returns the offset of the copy.
// The write is a single bulk persist, charging the media model for the full
// CSR size.
func PersistTo(pool *pmem.Pool, c *CSR) (uint64, error) {
	n := c.NumNodes()
	m := len(c.Col)
	size := pcsrHeader + (n+1)*8 + m*16
	off, err := pool.Alloc(size)
	if err != nil {
		return 0, fmt.Errorf("csr: persist: %w", err)
	}
	buf := pool.View(off, size)
	binary.LittleEndian.PutUint64(buf[0:], uint64(n))
	binary.LittleEndian.PutUint64(buf[8:], uint64(m))
	at := pcsrHeader
	for _, o := range c.Off {
		binary.LittleEndian.PutUint64(buf[at:], uint64(o))
		at += 8
	}
	for _, col := range c.Col {
		binary.LittleEndian.PutUint64(buf[at:], col)
		at += 8
	}
	for _, v := range c.Val {
		binary.LittleEndian.PutUint64(buf[at:], math.Float64bits(v))
		at += 8
	}
	if err := pool.Persist(off, size); err != nil {
		return 0, err
	}
	return off, nil
}

// LoadPersistent reads a CSR previously written with PersistTo — the
// recovery path: "the delta store can be instantly recovered … the CSR is
// also lost and would have to be rebuilt" unless this copy exists (§6.5).
func LoadPersistent(pool *pmem.Pool, off uint64) (*CSR, error) {
	hdr := pool.View(off, pcsrHeader)
	n := int(binary.LittleEndian.Uint64(hdr[0:]))
	m := int(binary.LittleEndian.Uint64(hdr[8:]))
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("csr: corrupt persistent header at %d", off)
	}
	size := pcsrHeader + (n+1)*8 + m*16
	buf := pool.View(off, size)
	c := &CSR{
		Off: make([]int64, n+1),
		Col: make([]uint64, m),
		Val: make([]float64, m),
	}
	at := pcsrHeader
	for i := range c.Off {
		c.Off[i] = int64(binary.LittleEndian.Uint64(buf[at:]))
		at += 8
	}
	for i := range c.Col {
		c.Col[i] = binary.LittleEndian.Uint64(buf[at:])
		at += 8
	}
	for i := range c.Val {
		c.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[at:]))
		at += 8
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("csr: recovered CSR invalid: %w", err)
	}
	return c, nil
}
