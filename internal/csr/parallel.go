// Parallel variants of the propagation-side CSR operations. The paper's
// §6.6 walkthrough shows the CSR merge at 2.06s of a 2M-delta cycle; the
// batch handed to Merge is sorted by node ID, so the row space splits into
// contiguous shards that workers can size, offset and write independently —
// the same embarrassingly parallel shape GraphTango exploits for batched
// streaming updates.
//
// The parallel paths are representation-preserving: for any input they
// produce the exact same Off/Col/Val bytes and MergeStats as the serial
// algorithm (enforced by TestMergeDifferential). They run in three phases:
//
//  1. size: each shard computes the merged length of every row in its range
//     (a counting replay of the three-way merge) plus a shard total;
//  2. prefix sum: an exclusive scan over the shard totals yields each
//     shard's base offset — O(workers) serial work;
//  3. write: each shard converts its local sizes into absolute offsets and
//     writes its rows into the preallocated Col/Val arrays.
package csr

import (
	"runtime"
	"sort"
	"sync"

	"h2tap/internal/delta"
	"h2tap/internal/mvto"
)

// DefaultWorkers is the worker count the parameterless entry points use:
// GOMAXPROCS, the same default the serial-era Build used for its row gather.
func DefaultWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 1 {
		return w
	}
	return 1
}

func normWorkers(w int) int {
	if w <= 0 {
		return DefaultWorkers()
	}
	return w
}

// MergeShard describes one completed shard of a parallel merge: a
// contiguous row range [FirstRow, EndRow) whose offsets and edges are fully
// written. Bytes is the device payload the shard contributes (row offsets
// plus column/value pairs); the engine uses it to overlap the simulated GPU
// transfer of finished shards with the writing of later ones.
type MergeShard struct {
	Index    int
	FirstRow uint64
	EndRow   uint64
	Bytes    int64
}

// MergeWorkers is Merge with an explicit worker count. workers <= 0 selects
// DefaultWorkers; 1 runs the serial algorithm. The output is byte-identical
// to MergeSerial for every worker count.
func MergeWorkers(old *CSR, batch *delta.Batch, workers int) (*CSR, MergeStats) {
	return MergeObserved(old, batch, workers, nil)
}

// MergeObserved is MergeWorkers plus a shard-completion callback, invoked
// once per shard (from worker goroutines, in arbitrary order) as soon as
// that shard's rows are fully written. With one worker the whole output is
// a single shard, reported after the serial merge finishes.
func MergeObserved(old *CSR, batch *delta.Batch, workers int, onShard func(MergeShard)) (*CSR, MergeStats) {
	workers = normWorkers(workers)
	if workers == 1 {
		out, st := MergeSerial(old, batch)
		if onShard != nil {
			n := uint64(out.NumNodes())
			onShard(MergeShard{Index: 0, FirstRow: 0, EndRow: n,
				Bytes: int64(n)*8 + int64(len(out.Col))*16})
		}
		return out, st
	}
	return mergeParallel(old, batch, workers, onShard)
}

func mergeParallel(old *CSR, batch *delta.Batch, workers int, onShard func(MergeShard)) (*CSR, MergeStats) {
	oldN := uint64(old.NumNodes())
	newN := oldN
	for i := range batch.Deltas {
		if id := batch.Deltas[i].Node; id >= newN {
			newN = id + 1
		}
	}
	out := &CSR{Off: make([]int64, newN+1)}
	if newN == 0 {
		out.Col = make([]uint64, 0)
		out.Val = make([]float64, 0)
		if onShard != nil {
			onShard(MergeShard{Index: 0})
		}
		return out, MergeStats{}
	}

	chunk := (newN + uint64(workers) - 1) / uint64(workers)
	nShards := int((newN + chunk - 1) / chunk)
	shardLo := func(s int) uint64 { return uint64(s) * chunk }
	shardHi := func(s int) uint64 {
		hi := uint64(s+1) * chunk
		if hi > newN {
			hi = newN
		}
		return hi
	}
	// deltaRange binary-searches the node-sorted batch for the deltas whose
	// nodes fall in [lo, hi).
	deltaRange := func(lo, hi uint64) (int, int) {
		i0 := sort.Search(len(batch.Deltas), func(i int) bool { return batch.Deltas[i].Node >= lo })
		i1 := sort.Search(len(batch.Deltas), func(i int) bool { return batch.Deltas[i].Node >= hi })
		return i0, i1
	}

	// Phase 1: per-row merged sizes (stored temporarily in Off[r+1]) plus
	// per-shard totals and stats.
	totals := make([]int64, nShards)
	stats := make([]MergeStats, nShards)
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := shardLo(s), shardHi(s)
			di, dEnd := deltaRange(lo, hi)
			var total int64
			st := &stats[s]
			for r := lo; r < hi; r++ {
				var n int64
				if di < dEnd && batch.Deltas[di].Node == r {
					d := &batch.Deltas[di]
					di++
					var oc []uint64
					if r < oldN {
						oc = old.Col[old.Off[r]:old.Off[r+1]]
						st.RowsModified++
					} else {
						st.RowsAdded++
					}
					n = int64(mergedRowLen(oc, d))
				} else if r < oldN {
					n = old.Off[r+1] - old.Off[r]
					st.RowsCopied++
					st.EdgesCopied += n
				}
				out.Off[r+1] = n
				total += n
			}
			totals[s] = total
		}(s)
	}
	wg.Wait()

	// Phase 2: exclusive prefix sum over shard totals.
	bases := make([]int64, nShards+1)
	for s := 0; s < nShards; s++ {
		bases[s+1] = bases[s] + totals[s]
	}
	total := bases[nShards]
	out.Col = make([]uint64, total)
	out.Val = make([]float64, total)

	// Phase 3: convert local sizes to absolute offsets and write rows.
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := shardLo(s), shardHi(s)
			di, dEnd := deltaRange(lo, hi)
			at := bases[s]
			for r := lo; r < hi; r++ {
				size := out.Off[r+1]
				if di < dEnd && batch.Deltas[di].Node == r {
					d := &batch.Deltas[di]
					di++
					var oc []uint64
					var ov []float64
					if r < oldN {
						oc = old.Col[old.Off[r]:old.Off[r+1]]
						ov = old.Val[old.Off[r]:old.Off[r+1]]
					}
					mergeRowInto(out.Col[at:at+size], out.Val[at:at+size], oc, ov, d)
				} else if size > 0 {
					copy(out.Col[at:at+size], old.Col[old.Off[r]:old.Off[r+1]])
					copy(out.Val[at:at+size], old.Val[old.Off[r]:old.Off[r+1]])
				}
				at += size
				out.Off[r+1] = at
			}
			if onShard != nil {
				onShard(MergeShard{
					Index:    s,
					FirstRow: lo,
					EndRow:   hi,
					Bytes:    int64(hi-lo)*8 + (bases[s+1]-bases[s])*16,
				})
			}
		}(s)
	}
	wg.Wait()

	var st MergeStats
	for s := range stats {
		st.RowsCopied += stats[s].RowsCopied
		st.RowsModified += stats[s].RowsModified
		st.RowsAdded += stats[s].RowsAdded
		st.EdgesCopied += stats[s].EdgesCopied
	}
	st.EdgesMerged = total - st.EdgesCopied
	return out, st
}

// mergedRowLen is the counting replay of mergeRow: the length the merged
// row (old row ∪ inserts, minus deletes) will have, without writing it.
// Any change here must be mirrored in mergeRow and mergeRowInto.
func mergedRowLen(oc []uint64, d *delta.Combined) int {
	if d.Deleted {
		return 0
	}
	n, i, j, k := 0, 0, 0, 0
	for i < len(oc) || j < len(d.Ins) {
		useOld := j >= len(d.Ins) || (i < len(oc) && oc[i] <= d.Ins[j].Dst)
		if useOld {
			dst := oc[i]
			for k < len(d.Del) && d.Del[k] < dst {
				k++
			}
			if k < len(d.Del) && d.Del[k] == dst {
				i++
				continue
			}
			if j < len(d.Ins) && d.Ins[j].Dst == dst {
				n++
				i++
				j++
				continue
			}
			n++
			i++
			continue
		}
		n++
		j++
	}
	return n
}

// mergeRowInto is mergeRow writing into a preallocated destination sized by
// mergedRowLen, instead of appending. Any change here must be mirrored in
// mergeRow and mergedRowLen.
func mergeRowInto(col []uint64, val []float64, oc []uint64, ov []float64, d *delta.Combined) {
	if d.Deleted {
		return
	}
	at, i, j, k := 0, 0, 0, 0
	for i < len(oc) || j < len(d.Ins) {
		useOld := j >= len(d.Ins) || (i < len(oc) && oc[i] <= d.Ins[j].Dst)
		if useOld {
			dst := oc[i]
			for k < len(d.Del) && d.Del[k] < dst {
				k++
			}
			if k < len(d.Del) && d.Del[k] == dst {
				i++
				continue
			}
			if j < len(d.Ins) && d.Ins[j].Dst == dst {
				col[at] = dst
				val[at] = d.Ins[j].W
				at++
				i++
				j++
				continue
			}
			col[at] = dst
			val[at] = ov[i]
			at++
			i++
			continue
		}
		col[at] = d.Ins[j].Dst
		val[at] = d.Ins[j].W
		at++
		j++
	}
}

// BuildWorkers is Build with an explicit worker count (workers <= 0 selects
// DefaultWorkers). Rows are gathered in parallel, row sizes prefix-summed
// per shard, and rows written in parallel — the same three phases as the
// parallel merge, producing the same bytes at every worker count.
func BuildWorkers(src Snapshot, ts mvto.TS, workers int) *CSR {
	workers = normWorkers(workers)
	n := src.NumNodeSlots()
	rows := make([][]delta.Edge, n)
	c := &CSR{Off: make([]int64, n+1)}
	if n == 0 {
		return c
	}

	chunk := (n + uint64(workers) - 1) / uint64(workers)
	nShards := int((n + chunk - 1) / chunk)
	totals := make([]int64, nShards)
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := uint64(s)*chunk, uint64(s+1)*chunk
			if hi > n {
				hi = n
			}
			var total int64
			for id := lo; id < hi; id++ {
				rows[id] = src.OutEdgesAt(id, ts)
				total += int64(len(rows[id]))
			}
			totals[s] = total
		}(s)
	}
	wg.Wait()

	bases := make([]int64, nShards+1)
	for s := 0; s < nShards; s++ {
		bases[s+1] = bases[s] + totals[s]
	}
	c.Col = make([]uint64, bases[nShards])
	c.Val = make([]float64, bases[nShards])

	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := uint64(s)*chunk, uint64(s+1)*chunk
			if hi > n {
				hi = n
			}
			at := bases[s]
			for id := lo; id < hi; id++ {
				c.Off[id] = at
				for _, e := range rows[id] {
					c.Col[at] = e.Dst
					c.Val[at] = e.W
					at++
				}
			}
		}(s)
	}
	wg.Wait()
	c.Off[n] = bases[nShards]
	return c
}
