// Package mvto implements the Multi-Version Timestamp Ordering concurrency
// control protocol described in §2.3 of the paper, as used by the Poseidon
// main graph store. Each graph object version carries metadata (txn-id
// write lock, begin/end timestamps, read timestamp); transactions obtain
// monotonically increasing timestamps from an Oracle and follow the
// insert/update/read/delete access conditions from the paper.
//
// The same timestamps order deltas in the delta store: a propagation
// transaction Tp may only consume deltas appended by transactions older
// than itself (§5.3), which this package's Oracle timestamps make a single
// integer comparison.
package mvto

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TS is a transaction timestamp. Timestamp 0 is reserved to mean "no
// transaction" (an unlocked object); Infinity marks an open end timestamp.
type TS uint64

// Infinity is the end timestamp of a version that has not been superseded.
const Infinity TS = math.MaxUint64

// Access errors returned by the protocol checks.
var (
	// ErrLocked reports that the object is write-locked by another
	// transaction.
	ErrLocked = errors.New("mvto: object locked by another transaction")
	// ErrReadByNewer reports a write denied because a newer transaction
	// already read the object (rts > t).
	ErrReadByNewer = errors.New("mvto: object read by a newer transaction")
	// ErrNotVisible reports that no version of the object is visible to the
	// reading transaction.
	ErrNotVisible = errors.New("mvto: no visible version")
	// ErrTxnDone reports an operation on a finished transaction.
	ErrTxnDone = errors.New("mvto: transaction already committed or aborted")
)

// Meta is the per-version concurrency-control metadata from §2.3. All
// fields are atomics so readers never block writers.
type Meta struct {
	txnID atomic.Uint64 // timestamp of the write transaction holding the lock; 0 if unlocked
	bts   atomic.Uint64 // begin timestamp
	ets   atomic.Uint64 // end timestamp
	rts   atomic.Uint64 // read timestamp of the newest reader
}

// InitInsert initializes the metadata for a freshly inserted version: the
// inserting transaction t holds the lock, bts=t, ets=∞ (paper §2.3 Insert).
func (m *Meta) InitInsert(t TS) {
	m.txnID.Store(uint64(t))
	m.bts.Store(uint64(t))
	m.ets.Store(uint64(Infinity))
	m.rts.Store(0)
}

// InitTombstone initializes the metadata of the deletion marker version:
// bts=ets=t, locked by t (paper §2.3 Delete).
func (m *Meta) InitTombstone(t TS) {
	m.txnID.Store(uint64(t))
	m.bts.Store(uint64(t))
	m.ets.Store(uint64(t))
	m.rts.Store(0)
}

// TryLock attempts to write-lock the version for transaction t. It succeeds
// if the version is unlocked or t already holds the lock.
func (m *Meta) TryLock(t TS) bool {
	if m.txnID.CompareAndSwap(0, uint64(t)) {
		return true
	}
	return m.txnID.Load() == uint64(t)
}

// Unlock releases t's write lock. Unlocking a version not held by t is a
// no-op, making unlock idempotent across commit/abort paths.
func (m *Meta) Unlock(t TS) {
	m.txnID.CompareAndSwap(uint64(t), 0)
}

// LockedBy reports the timestamp of the lock holder, or 0 if unlocked.
func (m *Meta) LockedBy() TS { return TS(m.txnID.Load()) }

// BTS reports the begin timestamp.
func (m *Meta) BTS() TS { return TS(m.bts.Load()) }

// ETS reports the end timestamp.
func (m *Meta) ETS() TS { return TS(m.ets.Load()) }

// RTS reports the newest reader timestamp.
func (m *Meta) RTS() TS { return TS(m.rts.Load()) }

// SetETS sets the end timestamp (used when a version is superseded at
// commit, or restored to ∞ on abort).
func (m *Meta) SetETS(t TS) { m.ets.Store(uint64(t)) }

// VisibleTo reports whether this version is visible to a reader with
// timestamp t under §2.3's Read rule: the version must not be locked by
// another transaction (a version locked by t itself is visible to t), and
// t must lie in [bts, ets).
func (m *Meta) VisibleTo(t TS) bool {
	if holder := m.txnID.Load(); holder != 0 && holder != uint64(t) {
		return false
	}
	return TS(m.bts.Load()) <= t && t < TS(m.ets.Load())
}

// RecordRead registers a read by transaction t, advancing rts monotonically
// so that no transaction older than t may subsequently write the version.
func (m *Meta) RecordRead(t TS) {
	for {
		cur := m.rts.Load()
		if cur >= uint64(t) || m.rts.CompareAndSwap(cur, uint64(t)) {
			return
		}
	}
}

// CheckWrite verifies §2.3's Update/Delete precondition for transaction t
// against this (current) version: t can lock it and no newer transaction
// has read it.
func (m *Meta) CheckWrite(t TS) error {
	if holder := m.txnID.Load(); holder != 0 && holder != uint64(t) {
		return ErrLocked
	}
	if TS(m.rts.Load()) > t {
		return ErrReadByNewer
	}
	return nil
}

// Status is the lifecycle state of a transaction.
type Status int32

// Transaction lifecycle states.
const (
	Active Status = iota
	Committed
	Aborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Oracle issues transaction timestamps and tracks the high-water mark of
// committed transactions plus the *stable* timestamp: the highest TS such
// that every transaction at or below it has finished (committed or
// aborted). LastCommitted can run ahead of in-flight older transactions —
// timestamps are allocated at Begin, so a newer transaction can commit
// while an older one is still executing — but nothing at or below StableTS
// can still be producing effects. Update propagation bounds its delta
// visibility by the stable timestamp: consuming a record whose transaction
// raced ahead of a still-running older transaction on the same node would
// otherwise hand the replica the two deltas across cycles in reverse
// timestamp order.
type Oracle struct {
	next          atomic.Uint64
	lastCommitted atomic.Uint64
	stable        atomic.Uint64

	finishMu sync.Mutex
	finished map[TS]struct{} // finished transactions above stable

	// commitObs, when set, receives every commit's latency (hook execution
	// through oracle publication). Nil-checked on the commit path so the
	// uninstrumented cost is one atomic load.
	commitObs atomic.Pointer[func(time.Duration)]
}

// SetCommitObserver installs (or, with nil, removes) the commit observer:
// fn is called after every successful Commit with the latency of the commit
// itself — hook execution (delta capture, WAL append) plus oracle
// publication. fn must be safe for concurrent use; committers call it
// directly.
func (o *Oracle) SetCommitObserver(fn func(time.Duration)) {
	if fn == nil {
		o.commitObs.Store(nil)
		return
	}
	o.commitObs.Store(&fn)
}

// NewOracle returns an oracle whose first timestamp is 1 (0 is reserved for
// "unlocked").
func NewOracle() *Oracle {
	return &Oracle{}
}

// Begin starts a transaction with a fresh unique timestamp.
func (o *Oracle) Begin() *Txn {
	return &Txn{ts: TS(o.next.Add(1)), oracle: o}
}

// BeginTxn initializes t in place as a fresh transaction — Begin for
// callers that own the Txn's storage (embedded in a larger pooled
// transaction object). Reusing a Txn whose previous incarnation might
// still be referenced is the caller's hazard to exclude: the graph layer
// embeds the Txn by value in its Tx and never recycles the Tx itself, so a
// stale handle sees a terminally Committed/Aborted status, not a stranger's
// active transaction.
func (o *Oracle) BeginTxn(t *Txn) {
	t.ts = TS(o.next.Add(1))
	t.oracle = o
	t.status.Store(int32(Active))
	t.undo = t.undo[:0]
	t.onCommit = t.onCommit[:0]
}

// Next peeks at the timestamp the next Begin would receive, without
// consuming it.
func (o *Oracle) Next() TS { return TS(o.next.Load() + 1) }

// LastCommitted reports the highest timestamp that has committed.
func (o *Oracle) LastCommitted() TS { return TS(o.lastCommitted.Load()) }

// StableTS reports the highest timestamp with no unfinished transaction at
// or below it. Every transaction with ts <= StableTS has committed (and
// published its captured deltas — capture precedes commit completion) or
// aborted.
func (o *Oracle) StableTS() TS { return TS(o.stable.Load()) }

// finish marks t's transaction finished and advances the stable timestamp
// over the contiguous run of finished transactions.
func (o *Oracle) finish(t TS) {
	o.finishMu.Lock()
	if uint64(t) > o.stable.Load() {
		if o.finished == nil {
			o.finished = make(map[TS]struct{})
		}
		o.finished[t] = struct{}{}
		s := TS(o.stable.Load())
		for {
			if _, ok := o.finished[s+1]; !ok {
				break
			}
			delete(o.finished, s+1)
			s++
		}
		o.stable.Store(uint64(s))
	}
	o.finishMu.Unlock()
}

// AdvanceTo fast-forwards the oracle past ts (recovery: new transactions
// must be newer than anything replayed from a log).
func (o *Oracle) AdvanceTo(ts TS) {
	for {
		cur := o.next.Load()
		if cur >= uint64(ts) || o.next.CompareAndSwap(cur, uint64(ts)) {
			break
		}
	}
	o.noteCommit(ts)
	// Everything replayed below ts is finished by construction.
	o.finishMu.Lock()
	if uint64(ts) > o.stable.Load() {
		o.stable.Store(uint64(ts))
		for t := range o.finished {
			if t <= ts {
				delete(o.finished, t)
			}
		}
	}
	o.finishMu.Unlock()
}

func (o *Oracle) noteCommit(t TS) {
	for {
		cur := o.lastCommitted.Load()
		if cur >= uint64(t) || o.lastCommitted.CompareAndSwap(cur, uint64(t)) {
			return
		}
	}
}

// Txn is a transaction: a timestamp plus the undo log and commit hooks that
// the storage layers register as the transaction touches objects.
//
// A Txn is used by a single goroutine; the objects it locks are protected
// from other transactions by the MVTO metadata, not by the Txn itself.
type Txn struct {
	ts     TS
	oracle *Oracle
	status atomic.Int32

	undo     []func() // applied in reverse order on abort
	onCommit []func(TS)
}

// TS reports the transaction's timestamp.
func (t *Txn) TS() TS { return t.ts }

// Status reports the transaction's lifecycle state.
func (t *Txn) Status() Status { return Status(t.status.Load()) }

// OnAbort registers an undo action to run if the transaction aborts.
// Actions run in reverse registration order.
func (t *Txn) OnAbort(fn func()) { t.undo = append(t.undo, fn) }

// OnCommit registers an action to run when the transaction commits. The
// delta store registers its append here so deltas enter the store at commit
// time and never need undoing (paper §5.1).
func (t *Txn) OnCommit(fn func(TS)) { t.onCommit = append(t.onCommit, fn) }

// Commit finishes the transaction: commit hooks run (version finalization,
// delta capture), then the oracle's committed high-water mark advances.
func (t *Txn) Commit() error { return t.CommitWith(nil) }

// CommitWith is Commit for callers that manage their own hook storage:
// publish (if non-nil) runs where the OnCommit hooks run — after the status
// flips, before the oracle advances — in addition to any registered hooks.
// A single prebound publish closure iterating a reusable hook array lets
// the hot commit path run without per-hook closure allocations.
func (t *Txn) CommitWith(publish func(TS)) error {
	obs := t.oracle.commitObs.Load()
	var start time.Time
	if obs != nil {
		start = time.Now()
	}
	if !t.status.CompareAndSwap(int32(Active), int32(Committed)) {
		return ErrTxnDone
	}
	for _, fn := range t.onCommit {
		fn(t.ts)
	}
	if publish != nil {
		publish(t.ts)
	}
	t.oracle.noteCommit(t.ts)
	t.oracle.finish(t.ts)
	t.undo = nil
	t.onCommit = nil
	if obs != nil {
		(*obs)(time.Since(start))
	}
	return nil
}

// Abort rolls the transaction back by applying the undo log in reverse.
// Aborting a finished transaction is an error.
func (t *Txn) Abort() error { return t.AbortWith(nil) }

// AbortWith is Abort for callers that manage their own undo storage:
// rollback (if non-nil) runs before the registered undo hooks, taking the
// place of undo actions that would otherwise have been registered last.
func (t *Txn) AbortWith(rollback func()) error {
	if !t.status.CompareAndSwap(int32(Active), int32(Aborted)) {
		return ErrTxnDone
	}
	if rollback != nil {
		rollback()
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.oracle.finish(t.ts)
	t.undo = nil
	t.onCommit = nil
	return nil
}

// VersionChain is a small helper owned by each logical graph object: the
// list of its versions, newest first, plus the mutex that serializes
// structural changes (appending a version). Reads walk the chain without
// taking the mutex; the atomics in Meta make that safe.
type VersionChain struct {
	mu sync.Mutex
}

// Lock serializes version-chain structural changes.
func (c *VersionChain) Lock() { c.mu.Lock() }

// Unlock releases the structural lock.
func (c *VersionChain) Unlock() { c.mu.Unlock() }
