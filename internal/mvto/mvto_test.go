package mvto

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestOracleMonotonicTimestamps(t *testing.T) {
	o := NewOracle()
	t1 := o.Begin()
	t2 := o.Begin()
	if t1.TS() == 0 {
		t.Fatal("timestamp 0 issued; 0 is reserved for unlocked")
	}
	if t2.TS() <= t1.TS() {
		t.Fatalf("timestamps not increasing: %d then %d", t1.TS(), t2.TS())
	}
}

func TestOracleConcurrentBeginUnique(t *testing.T) {
	o := NewOracle()
	const workers, per = 8, 2000
	ch := make(chan TS, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ch <- o.Begin().TS()
			}
		}()
	}
	wg.Wait()
	close(ch)
	seen := make(map[TS]bool, workers*per)
	for ts := range ch {
		if seen[ts] {
			t.Fatalf("duplicate timestamp %d", ts)
		}
		seen[ts] = true
	}
}

func TestInsertVisibility(t *testing.T) {
	o := NewOracle()
	writer := o.Begin()
	var m Meta
	m.InitInsert(writer.TS())

	// While locked by the writer, the version is visible to the writer but
	// not to others (paper §2.3 Insert: "o remains locked by T until the
	// end of T").
	if !m.VisibleTo(writer.TS()) {
		t.Fatal("inserted version not visible to inserting transaction")
	}
	reader := o.Begin()
	if m.VisibleTo(reader.TS()) {
		t.Fatal("uncommitted insert visible to another transaction")
	}

	m.Unlock(writer.TS())
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if !m.VisibleTo(reader.TS()) {
		t.Fatal("committed insert not visible to newer reader")
	}
}

func TestInsertInvisibleToOlderReader(t *testing.T) {
	o := NewOracle()
	older := o.Begin()
	writer := o.Begin()
	var m Meta
	m.InitInsert(writer.TS())
	m.Unlock(writer.TS())
	if m.VisibleTo(older.TS()) {
		t.Fatal("insert visible to a transaction older than its bts")
	}
}

func TestUpdateDeniedAfterNewerRead(t *testing.T) {
	o := NewOracle()
	var m Meta
	w0 := o.Begin()
	m.InitInsert(w0.TS())
	m.Unlock(w0.TS())
	w0.Commit()

	oldWriter := o.Begin()
	newReader := o.Begin()
	m.RecordRead(newReader.TS())
	if err := m.CheckWrite(oldWriter.TS()); !errors.Is(err, ErrReadByNewer) {
		t.Fatalf("CheckWrite after newer read = %v, want ErrReadByNewer", err)
	}
	// A writer at least as new as the reader is fine.
	newerWriter := o.Begin()
	if err := m.CheckWrite(newerWriter.TS()); err != nil {
		t.Fatalf("CheckWrite for newer writer = %v", err)
	}
}

func TestWriteDeniedWhileLocked(t *testing.T) {
	o := NewOracle()
	var m Meta
	a := o.Begin()
	b := o.Begin()
	m.InitInsert(a.TS())
	if err := m.CheckWrite(b.TS()); !errors.Is(err, ErrLocked) {
		t.Fatalf("CheckWrite on locked object = %v, want ErrLocked", err)
	}
	// The lock holder itself passes the check.
	if err := m.CheckWrite(a.TS()); err != nil {
		t.Fatalf("holder CheckWrite = %v", err)
	}
}

func TestTryLockSemantics(t *testing.T) {
	o := NewOracle()
	var m Meta
	a, b := o.Begin(), o.Begin()
	if !m.TryLock(a.TS()) {
		t.Fatal("lock of unlocked object failed")
	}
	if !m.TryLock(a.TS()) {
		t.Fatal("re-lock by holder failed")
	}
	if m.TryLock(b.TS()) {
		t.Fatal("lock stolen from holder")
	}
	m.Unlock(b.TS()) // not the holder: must be a no-op
	if m.LockedBy() != a.TS() {
		t.Fatal("unlock by non-holder released the lock")
	}
	m.Unlock(a.TS())
	if m.LockedBy() != 0 {
		t.Fatal("unlock by holder did not release")
	}
	if !m.TryLock(b.TS()) {
		t.Fatal("lock after release failed")
	}
}

func TestVersionSupersedeWindow(t *testing.T) {
	// Old version [b, u), new version [u, ∞): a reader between b and u sees
	// only the old version; a reader at/after u sees only the new one.
	o := NewOracle()
	var old, new_ Meta
	w0 := o.Begin()
	old.InitInsert(w0.TS())
	old.Unlock(w0.TS())
	w0.Commit()

	midReader := o.Begin()

	updater := o.Begin()
	new_.InitInsert(updater.TS())
	old.SetETS(updater.TS())
	new_.Unlock(updater.TS())
	updater.Commit()

	lateReader := o.Begin()

	if !old.VisibleTo(midReader.TS()) || new_.VisibleTo(midReader.TS()) {
		t.Fatal("mid reader should see old version only")
	}
	if old.VisibleTo(lateReader.TS()) || !new_.VisibleTo(lateReader.TS()) {
		t.Fatal("late reader should see new version only")
	}
}

func TestTombstoneInvisible(t *testing.T) {
	o := NewOracle()
	var m Meta
	d := o.Begin()
	m.InitTombstone(d.TS())
	m.Unlock(d.TS())
	d.Commit()
	r := o.Begin()
	if m.VisibleTo(r.TS()) {
		t.Fatal("tombstone version (bts=ets) visible to reader")
	}
	if m.VisibleTo(d.TS()) {
		t.Fatal("tombstone visible even to its writer after unlock: bts=ets window is empty")
	}
}

func TestRecordReadMonotone(t *testing.T) {
	var m Meta
	m.RecordRead(10)
	m.RecordRead(5)
	if m.RTS() != 10 {
		t.Fatalf("rts regressed to %d", m.RTS())
	}
	m.RecordRead(12)
	if m.RTS() != 12 {
		t.Fatalf("rts = %d, want 12", m.RTS())
	}
}

func TestRecordReadConcurrentMax(t *testing.T) {
	var m Meta
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				m.RecordRead(TS(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if m.RTS() != 8000 {
		t.Fatalf("concurrent rts = %d, want max 8000", m.RTS())
	}
}

func TestCommitHooksAndOrder(t *testing.T) {
	o := NewOracle()
	tx := o.Begin()
	var order []string
	tx.OnCommit(func(ts TS) {
		if ts != tx.TS() {
			t.Errorf("commit hook ts = %d, want %d", ts, tx.TS())
		}
		order = append(order, "a")
	})
	tx.OnCommit(func(TS) { order = append(order, "b") })
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("commit hooks ran %v, want [a b]", order)
	}
	if o.LastCommitted() != tx.TS() {
		t.Fatalf("LastCommitted = %d, want %d", o.LastCommitted(), tx.TS())
	}
}

func TestAbortRunsUndoInReverse(t *testing.T) {
	o := NewOracle()
	tx := o.Begin()
	var order []int
	tx.OnAbort(func() { order = append(order, 1) })
	tx.OnAbort(func() { order = append(order, 2) })
	committed := false
	tx.OnCommit(func(TS) { committed = true })
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("commit hook ran on abort")
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("undo order %v, want [2 1]", order)
	}
	if o.LastCommitted() != 0 {
		t.Fatal("aborted txn advanced LastCommitted")
	}
}

func TestDoubleFinishErrors(t *testing.T) {
	o := NewOracle()
	tx := o.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit = %v, want ErrTxnDone", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("abort after commit = %v, want ErrTxnDone", err)
	}

	tx2 := o.Begin()
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("commit after abort = %v, want ErrTxnDone", err)
	}
	if tx2.Status() != Aborted {
		t.Fatalf("status = %v, want aborted", tx2.Status())
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Active: "active", Committed: "committed", Aborted: "aborted", Status(99): "unknown",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

// Property: visibility window respects [bts, ets) exactly for unlocked
// versions.
func TestQuickVisibilityWindow(t *testing.T) {
	f := func(b, e, r uint32) bool {
		bts, ets, rts := TS(b), TS(e), TS(r)
		if bts > ets {
			bts, ets = ets, bts
		}
		var m Meta
		m.bts.Store(uint64(bts))
		m.ets.Store(uint64(ets))
		want := bts <= rts && rts < ets
		return m.VisibleTo(rts) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LastCommitted is the max of all committed timestamps regardless
// of commit order.
func TestQuickLastCommittedIsMax(t *testing.T) {
	f := func(perm []bool) bool {
		o := NewOracle()
		txs := make([]*Txn, 12)
		for i := range txs {
			txs[i] = o.Begin()
		}
		var max TS
		for i, tx := range txs {
			commit := i >= len(perm) || perm[i]
			if commit {
				tx.Commit()
				if tx.TS() > max {
					max = tx.TS()
				}
			} else {
				tx.Abort()
			}
		}
		return o.LastCommitted() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
