package deltai

import (
	"math/rand"
	"testing"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
)

func seedGraph(t *testing.T, n int) *graph.Store {
	t.Helper()
	s := graph.NewStore()
	specs := make([]graph.NodeSpec, n)
	for i := range specs {
		specs[i] = graph.NodeSpec{Label: "P"}
	}
	if _, err := s.BulkLoad(specs, nil); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCaptureStoresFullAdjacency(t *testing.T) {
	s := seedGraph(t, 4)
	di := New(s)
	s.AddCapturer(di)

	// Pre-populate node 0 with two edges (before capture registration has
	// any deltas of interest — these commits are captured too).
	tx := s.Begin()
	tx.AddRel(0, 1, "k", 1)
	tx.AddRel(0, 2, "k", 2)
	tx.Commit()
	// One more insert: DELTA_I must now store the FULL adjacency (3 edges),
	// not just the new one.
	tx2 := s.Begin()
	tx2.AddRel(0, 3, "k", 3)
	tx2.Commit()

	if di.Records() != 2 {
		t.Fatalf("records = %d, want 2 (one per txn, same node)", di.Records())
	}
	// Footprint: txn1 stored 2 edges, txn2 stored 3 → 5×16 bytes.
	if di.ArrayBytes() != 5*16 {
		t.Fatalf("ArrayBytes = %d, want 80", di.ArrayBytes())
	}
}

func TestDeletedNodeDeltaIsEmpty(t *testing.T) {
	s := seedGraph(t, 3)
	tx := s.Begin()
	tx.AddRel(0, 1, "k", 1)
	tx.AddRel(0, 2, "k", 1)
	tx.Commit()

	di := New(s)
	s.AddCapturer(di)
	del := s.Begin()
	if err := del.DeleteNode(0); err != nil {
		t.Fatal(err)
	}
	del.Commit()
	// §6.3: "the appended deltas for the deleted nodes are all empty".
	snap := di.Scan(del.TS() + 1)
	for _, row := range snap.Rows {
		if row.Node == 0 {
			if !row.Deleted || len(row.Adj) != 0 {
				t.Fatalf("deleted node row = %+v", row)
			}
			return
		}
	}
	t.Fatal("no row for deleted node")
}

func TestScanNewestWins(t *testing.T) {
	s := seedGraph(t, 4)
	di := New(s)
	s.AddCapturer(di)
	tx1 := s.Begin()
	tx1.AddRel(0, 1, "k", 1)
	tx1.Commit()
	tx2 := s.Begin()
	tx2.AddRel(0, 2, "k", 1)
	tx2.Commit()

	snap := di.Scan(tx2.TS() + 1)
	if snap.Records != 2 || len(snap.Rows) != 1 {
		t.Fatalf("snap = %+v", snap)
	}
	if len(snap.Rows[0].Adj) != 2 {
		t.Fatalf("newest full state should have 2 edges: %+v", snap.Rows[0])
	}
	// Consumed: second scan empty.
	if again := di.Scan(tx2.TS() + 1); again.Records != 0 {
		t.Fatal("scan re-consumed records")
	}
}

func TestScanVisibility(t *testing.T) {
	s := seedGraph(t, 4)
	di := New(s)
	s.AddCapturer(di)
	tx1 := s.Begin()
	tx1.AddRel(0, 1, "k", 1)
	tx1.Commit()
	tx2 := s.Begin()
	tx2.AddRel(2, 3, "k", 1)
	tx2.Commit()

	snap := di.Scan(tx2.TS()) // tx2 not visible
	if snap.Records != 1 || snap.Rows[0].Node != 0 {
		t.Fatalf("snap = %+v", snap)
	}
	snap2 := di.Scan(tx2.TS() + 1)
	if snap2.Records != 1 || snap2.Rows[0].Node != 2 {
		t.Fatalf("second cycle = %+v", snap2)
	}
}

// DELTA_I and DELTA_FE must produce the same replica, each through its own
// merge path.
func TestMergeMatchesDeltaFE(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		s := seedGraph(t, 16)
		fe := deltastore.NewVolatile()
		di := New(s)
		s.AddCapturer(fe)
		s.AddCapturer(di)
		base := csr.Build(s, s.Oracle().LastCommitted())
		feCSR, diCSR := base, base

		r := rand.New(rand.NewSource(seed))
		for cycle := 0; cycle < 4; cycle++ {
			for q := 0; q < 40; q++ {
				tx := s.Begin()
				a := uint64(r.Intn(int(s.NumNodeSlots())))
				var err error
				switch r.Intn(8) {
				case 0, 1, 2, 3:
					_, err = tx.AddRel(a, uint64(r.Intn(int(s.NumNodeSlots()))), "k", float64(r.Intn(9)+1))
				case 4, 5:
					var id uint64
					id, err = tx.AddNode("P", nil)
					if err == nil {
						_, err = tx.AddRel(a, id, "k", 1)
					}
				case 6:
					rels, oerr := tx.OutRels(a)
					if oerr != nil || len(rels) == 0 {
						tx.Abort()
						continue
					}
					err = tx.DeleteRel(rels[r.Intn(len(rels))].ID)
				case 7:
					err = tx.DeleteNode(a)
				}
				if err != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
			}
			tp := s.Oracle().Begin()
			feBatch := fe.Scan(tp.TS())
			diSnap := di.Scan(tp.TS())
			tp.Commit()
			feCSR, _ = csr.Merge(feCSR, feBatch)
			diCSR = MergeCSR(diCSR, diSnap)
			if err := diCSR.Validate(); err != nil {
				t.Fatalf("seed %d cycle %d: DELTA_I CSR invalid: %v", seed, cycle, err)
			}
			if !csr.Equal(feCSR, diCSR) {
				t.Fatalf("seed %d cycle %d: DELTA_I and DELTA_FE replicas diverge", seed, cycle)
			}
		}
	}
}

func TestFootprintGrowsWithDegree(t *testing.T) {
	// The §6.3 headline: DELTA_I footprint scales with updated-node degree,
	// DELTA_FE footprint does not.
	build := func(deg int) (feBytes, diBytes uint64) {
		s := seedGraph(t, deg+2)
		tx := s.Begin()
		for i := 0; i < deg; i++ {
			tx.AddRel(0, uint64(i+1), "k", 1)
		}
		tx.Commit()

		fe := deltastore.NewVolatile()
		di := New(s)
		s.AddCapturer(fe)
		s.AddCapturer(di)
		tx2 := s.Begin()
		tx2.AddRel(0, uint64(deg+1), "k", 1)
		tx2.Commit()
		return fe.ArrayBytes(), di.ArrayBytes()
	}
	feLo, diLo := build(4)
	feHi, diHi := build(256)
	if feLo != feHi {
		t.Fatalf("DELTA_FE footprint degree-sensitive: %d vs %d", feLo, feHi)
	}
	if diHi < diLo*10 {
		t.Fatalf("DELTA_I footprint not degree-proportional: %d vs %d", diLo, diHi)
	}
}

func TestClear(t *testing.T) {
	s := seedGraph(t, 3)
	di := New(s)
	di.Capture(&delta.TxDelta{TS: 1, Nodes: []delta.NodeDelta{{Node: 0, Ins: []delta.Edge{{Dst: 1, W: 1}}}}})
	di.Clear()
	if di.Records() != 0 || di.ArrayBytes() != 0 {
		t.Fatal("clear left data")
	}
}
