// Package deltai implements DELTA_I, the update-handling approach of the
// authors' prior work [40] that §6.3 compares DELTA_FE against: each
// committing transaction appends, per updated node, the node's *entire
// post-update adjacency list* to the delta store.
//
// The consequences the evaluation measures fall out of that design
// directly: the append cost and the delta footprint grow with the degree of
// the updated nodes (Fig 3, Fig 4 — "DELTA_I is not scalable with
// increasing node degrees"), the scan touches far more data (Fig 5), and
// deltas for deleted nodes are empty since no relationships remain after
// the cascade (§6.3 observation). DELTA_I only supports static (CSR)
// replicas; its merge replaces whole rows.
package deltai

import (
	"sort"
	"sync"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/mvto"
)

// rec is one DELTA_I delta: the full adjacency state of one node as of one
// transaction's commit.
type rec struct {
	ts      mvto.TS
	node    uint64
	deleted bool
	valid   bool
	adj     []delta.Edge
}

// Store is the DELTA_I delta store.
type Store struct {
	src delta.AdjacencySource

	mu    sync.Mutex
	recs  []rec
	bytes uint64
}

// New returns a DELTA_I store reading adjacency snapshots from src (the
// main graph).
func New(src delta.AdjacencySource) *Store {
	return &Store{src: src}
}

var _ delta.Capturer = (*Store)(nil)

// Capture appends one delta per node the transaction updated, each storing
// the node's full adjacency list at the transaction's commit timestamp —
// the expensive part of DELTA_I's update storage phase.
func (s *Store) Capture(d *delta.TxDelta) {
	if d.Empty() {
		return
	}
	// The adjacency reads happen outside the store lock (they hit the main
	// graph), but the append itself is serialized: DELTA_I predates the
	// contention-free reservation design of DELTA_FE.
	local := make([]rec, 0, len(d.Nodes))
	var localBytes uint64
	for i := range d.Nodes {
		nd := &d.Nodes[i]
		r := rec{ts: d.TS, node: nd.Node, deleted: nd.Deleted, valid: true}
		if !nd.Deleted {
			// Full post-update adjacency list — for a deleted node there
			// are no relationships left, so its delta is empty (§6.3).
			r.adj = s.src.OutEdgesAt(nd.Node, d.TS)
		}
		localBytes += uint64(len(r.adj)) * 16 // 8-byte dst + 8-byte weight
		local = append(local, r)
	}
	s.mu.Lock()
	s.recs = append(s.recs, local...)
	s.bytes += localBytes
	s.mu.Unlock()
}

// Records reports the number of appended deltas.
func (s *Store) Records() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.recs))
}

// ArrayBytes reports the adjacency payload footprint, comparable to
// DELTA_FE's ArrayBytes (Fig 4's metric).
func (s *Store) ArrayBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Row is one node's merged state from a scan: the newest visible full
// adjacency.
type Row struct {
	Node    uint64
	Deleted bool
	Adj     []delta.Edge
}

// Snapshot is the result of a DELTA_I scan.
type Snapshot struct {
	TS      mvto.TS
	Rows    []Row // sorted by node
	Records int
}

// Scan consumes valid deltas visible to tp. Each consumed delta's full
// adjacency payload is read and staged (a newer delta for the same node
// overwrites the staged row) — DELTA_I "stores more data in the update
// storage phase and, consequently, accesses more data in the update
// propagation phase" (§6.3), which is exactly this full-payload pass.
func (s *Store) Scan(tp mvto.TS) *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	type staged struct {
		ts  mvto.TS
		row Row
	}
	staging := make(map[uint64]staged)
	consumed := 0
	for i := range s.recs {
		r := &s.recs[i]
		if !r.valid || r.ts >= tp {
			continue
		}
		r.valid = false
		consumed++
		adj := make([]delta.Edge, len(r.adj))
		copy(adj, r.adj)
		if cur, ok := staging[r.node]; !ok || cur.ts < r.ts {
			staging[r.node] = staged{ts: r.ts, row: Row{Node: r.node, Deleted: r.deleted, Adj: adj}}
		}
	}
	snap := &Snapshot{TS: tp, Records: consumed, Rows: make([]Row, 0, len(staging))}
	for _, st := range staging {
		snap.Rows = append(snap.Rows, st.row)
	}
	sort.Slice(snap.Rows, func(i, j int) bool { return snap.Rows[i].Node < snap.Rows[j].Node })
	return snap
}

// Clear empties the store.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = nil
	s.bytes = 0
}

// MergeCSR applies a DELTA_I snapshot to a CSR: each row in the snapshot
// replaces the node's row wholesale (the full-state semantics), untouched
// rows are copied.
func MergeCSR(old *csr.CSR, snap *Snapshot) *csr.CSR {
	oldN := uint64(old.NumNodes())
	newN := oldN
	for i := range snap.Rows {
		if id := snap.Rows[i].Node; id >= newN {
			newN = id + 1
		}
	}
	out := &csr.CSR{Off: make([]int64, newN+1)}
	ri := 0
	for id := uint64(0); id < newN; id++ {
		if ri < len(snap.Rows) && snap.Rows[ri].Node == id {
			row := &snap.Rows[ri]
			ri++
			if !row.Deleted {
				for _, e := range row.Adj {
					out.Col = append(out.Col, e.Dst)
					out.Val = append(out.Val, e.W)
				}
			}
		} else if id < oldN {
			col, val := old.Row(id)
			out.Col = append(out.Col, col...)
			out.Val = append(out.Val, val...)
		}
		out.Off[id+1] = int64(len(out.Col))
	}
	return out
}
