// Package snapshot reads and writes portable graph snapshots as JSON Lines:
// one header line, then one line per node and per relationship. The format
// is the interchange path for h2tap-loadgen (-dump / -load) and a
// human-greppable alternative to the binary WAL.
package snapshot

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
)

// FormatVersion identifies the snapshot layout.
const FormatVersion = 1

// ErrBadSnapshot reports a malformed snapshot stream.
var ErrBadSnapshot = errors.New("snapshot: malformed input")

type header struct {
	Format     string `json:"format"`
	Version    int    `json:"version"`
	Nodes      int    `json:"nodes"`
	Rels       int    `json:"rels"`
	TS         uint64 `json:"ts"`
	Undirected bool   `json:"undirected"`
}

type line struct {
	// Type discriminates: "node" or "rel".
	Type string `json:"t"`

	ID    uint64           `json:"id"`
	Label string           `json:"label,omitempty"`
	Props map[string]propV `json:"props,omitempty"`

	// Relationship fields.
	Src    uint64  `json:"src,omitempty"`
	Dst    uint64  `json:"dst,omitempty"`
	Weight float64 `json:"w,omitempty"`
}

// propV is a typed property value in JSON.
type propV struct {
	Kind string  `json:"k"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
	B    bool    `json:"b,omitempty"`
}

func encodeValue(v graph.Value) propV {
	switch v.Kind {
	case graph.KindInt:
		return propV{Kind: "int", I: v.AsInt()}
	case graph.KindFloat:
		return propV{Kind: "float", F: v.AsFloat()}
	case graph.KindString:
		return propV{Kind: "string", S: v.AsString()}
	case graph.KindBool:
		return propV{Kind: "bool", B: v.AsBool()}
	default:
		return propV{Kind: "nil"}
	}
}

func decodeValue(p propV) (graph.Value, error) {
	switch p.Kind {
	case "int":
		return graph.Int(p.I), nil
	case "float":
		return graph.Float(p.F), nil
	case "string":
		return graph.Str(p.S), nil
	case "bool":
		return graph.Bool(p.B), nil
	case "nil":
		return graph.Value{}, nil
	default:
		return graph.Value{}, fmt.Errorf("%w: value kind %q", ErrBadSnapshot, p.Kind)
	}
}

func encodeProps(props map[string]graph.Value) map[string]propV {
	if len(props) == 0 {
		return nil
	}
	out := make(map[string]propV, len(props))
	for k, v := range props {
		out[k] = encodeValue(v)
	}
	return out
}

func decodeProps(props map[string]propV) (map[string]graph.Value, error) {
	if len(props) == 0 {
		return nil, nil
	}
	out := make(map[string]graph.Value, len(props))
	for k, p := range props {
		v, err := decodeValue(p)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// Write exports the store's committed snapshot at ts to w.
func Write(w io.Writer, s *graph.Store, ts mvto.TS) error {
	nodes, rels := s.ExportAt(ts)
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{
		Format: "h2tap-snapshot", Version: FormatVersion,
		Nodes: len(nodes), Rels: len(rels), TS: uint64(ts),
		Undirected: s.Undirected(),
	}); err != nil {
		return err
	}
	for i := range nodes {
		n := &nodes[i]
		if err := enc.Encode(line{
			Type: "node", ID: n.ID, Label: n.Label, Props: encodeProps(n.Props),
		}); err != nil {
			return err
		}
	}
	for i := range rels {
		r := &rels[i]
		if err := enc.Encode(line{
			Type: "rel", ID: r.ID, Label: r.Label, Props: encodeProps(r.Props),
			Src: r.Src, Dst: r.Dst, Weight: r.Weight,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read imports a snapshot from r into the empty store and returns the
// snapshot's timestamp.
func Read(r io.Reader, s *graph.Store) (mvto.TS, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	var hdr header
	if err := dec.Decode(&hdr); err != nil {
		return 0, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if hdr.Format != "h2tap-snapshot" || hdr.Version != FormatVersion {
		return 0, fmt.Errorf("%w: format %q v%d", ErrBadSnapshot, hdr.Format, hdr.Version)
	}
	if hdr.Undirected != s.Undirected() {
		return 0, fmt.Errorf("snapshot: orientation mismatch: snapshot undirected=%v, store undirected=%v",
			hdr.Undirected, s.Undirected())
	}
	nodes := make([]graph.RestoredNode, 0, hdr.Nodes)
	rels := make([]graph.RestoredRel, 0, hdr.Rels)
	for {
		var ln line
		if err := dec.Decode(&ln); err == io.EOF {
			break
		} else if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		props, err := decodeProps(ln.Props)
		if err != nil {
			return 0, err
		}
		switch ln.Type {
		case "node":
			nodes = append(nodes, graph.RestoredNode{ID: ln.ID, Label: ln.Label, Props: props})
		case "rel":
			rels = append(rels, graph.RestoredRel{
				ID: ln.ID, Src: ln.Src, Dst: ln.Dst,
				Label: ln.Label, Weight: ln.Weight, Props: props,
			})
		default:
			return 0, fmt.Errorf("%w: line type %q", ErrBadSnapshot, ln.Type)
		}
	}
	if len(nodes) != hdr.Nodes || len(rels) != hdr.Rels {
		return 0, fmt.Errorf("%w: header counts %d/%d, stream %d/%d",
			ErrBadSnapshot, hdr.Nodes, hdr.Rels, len(nodes), len(rels))
	}
	ts := mvto.TS(hdr.TS)
	if err := s.Restore(nodes, rels, ts); err != nil {
		return 0, err
	}
	return ts, nil
}
