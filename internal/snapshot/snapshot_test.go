package snapshot

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"h2tap/internal/csr"
	"h2tap/internal/graph"
	"h2tap/internal/ldbc"
)

func TestRoundTrip(t *testing.T) {
	s := graph.NewStore()
	tx := s.Begin()
	a, _ := tx.AddNode("Person", map[string]graph.Value{
		"name": graph.Str("ada"), "age": graph.Int(36),
		"score": graph.Float(1.5), "vip": graph.Bool(true),
	})
	b, _ := tx.AddNode("Post", nil)
	rid, _ := tx.AddRel(a, b, "likes", 2.5)
	tx.SetRelProp(rid, "since", graph.Int(2020))
	tx.Commit()
	ts := s.Oracle().LastCommitted()

	var buf bytes.Buffer
	if err := Write(&buf, s, ts); err != nil {
		t.Fatal(err)
	}

	s2 := graph.NewStore()
	gotTS, err := Read(&buf, s2)
	if err != nil {
		t.Fatal(err)
	}
	if gotTS != ts {
		t.Fatalf("ts = %d, want %d", gotTS, ts)
	}
	if !csr.Equal(csr.Build(s2, s2.Oracle().LastCommitted()), csr.Build(s, ts)) {
		t.Fatal("topology differs after round trip")
	}
	rt := s2.Begin()
	defer rt.Abort()
	if v, _ := rt.GetNodeProp(a, "age"); v.AsInt() != 36 {
		t.Fatalf("age = %v", v)
	}
	if v, _ := rt.GetNodeProp(a, "vip"); !v.AsBool() {
		t.Fatalf("vip = %v", v)
	}
	if v, _ := rt.GetRelProp(rid, "since"); v.AsInt() != 2020 {
		t.Fatalf("since = %v", v)
	}
	info, _ := rt.GetRelInfo(rid)
	if info.Weight != 2.5 {
		t.Fatalf("weight = %v", info.Weight)
	}
}

func TestRoundTripGeneratedGraph(t *testing.T) {
	ds := ldbc.GenerateSNB(ldbc.SNBConfig{SF: 1, Downscale: 100, Seed: 1})
	s := graph.NewStore()
	ts, err := ds.Load(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s, ts); err != nil {
		t.Fatal(err)
	}
	s2 := graph.NewStore()
	if _, err := Read(&buf, s2); err != nil {
		t.Fatal(err)
	}
	if s2.LiveNodes() != s.LiveNodes() || s2.LiveRels() != s.LiveRels() {
		t.Fatalf("counts differ: %d/%d vs %d/%d",
			s2.LiveNodes(), s2.LiveRels(), s.LiveNodes(), s.LiveRels())
	}
}

func TestUndirectedRoundTripAndMismatch(t *testing.T) {
	s := graph.NewUndirectedStore()
	tx := s.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	tx.AddRel(a, b, "k", 1)
	tx.Commit()
	ts := s.Oracle().LastCommitted()
	var buf bytes.Buffer
	if err := Write(&buf, s, ts); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Matching orientation loads fine, symmetry preserved.
	s2 := graph.NewUndirectedStore()
	if _, err := Read(bytes.NewReader(raw), s2); err != nil {
		t.Fatal(err)
	}
	if len(s2.OutEdgesAt(b, s2.Oracle().LastCommitted())) != 1 {
		t.Fatal("symmetry lost")
	}
	// Orientation mismatch is rejected.
	s3 := graph.NewStore()
	if _, err := Read(bytes.NewReader(raw), s3); err == nil {
		t.Fatal("orientation mismatch accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"empty":      "",
		"not-json":   "hello\n",
		"bad-format": `{"format":"other","version":1}` + "\n",
		"bad-count":  `{"format":"h2tap-snapshot","version":1,"nodes":5,"rels":0}` + "\n",
		"bad-type": `{"format":"h2tap-snapshot","version":1,"nodes":0,"rels":0}` + "\n" +
			`{"t":"blob","id":0}` + "\n",
		"bad-kind": `{"format":"h2tap-snapshot","version":1,"nodes":1,"rels":0}` + "\n" +
			`{"t":"node","id":0,"props":{"x":{"k":"complex"}}}` + "\n",
	} {
		s := graph.NewStore()
		_, err := Read(strings.NewReader(in), s)
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
		if name == "bad-kind" && !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v, want ErrBadSnapshot", name, err)
		}
	}
}
