package server

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"h2tap"
	"h2tap/internal/obs"
)

// Server is the network service layer: an HTTP/JSON front end over one
// h2tap.DB with the admission-control ladder of DESIGN.md §5g. Create with
// New, run with Start, stop with Drain (graceful) or Close (abrupt).
type Server struct {
	db  *h2tap.DB
	cfg Config
	obs *obs.Observer
	log *log.Logger

	slots    chan struct{} // global in-flight semaphore
	inflight atomic.Int64
	conns    atomic.Int64
	draining atomic.Bool

	limiter  *limiter
	sessions *sessions
	tickets  *tickets
	metrics  *metrics
	reqs     *obs.ReqTracer

	mu   sync.Mutex
	ln   net.Listener
	http *http.Server

	// testHookPreCommit, when set by tests, runs inside the admission slot
	// before each one-shot commit — it models a slow engine so overload
	// tests can saturate MaxInFlight deterministically. Always nil in
	// production.
	testHookPreCommit func()
}

// New builds a server over db. obsv may be nil (metrics off). cfg zero
// values select defaults.
func New(db *h2tap.DB, cfg Config, obsv *obs.Observer, logger *log.Logger) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		db:       db,
		cfg:      cfg,
		obs:      obsv,
		log:      logger,
		slots:    make(chan struct{}, cfg.MaxInFlight),
		limiter:  newLimiter(cfg.SessionRate, cfg.SessionBurst),
		sessions: newSessions(cfg.TxIdleTimeout),
		tickets:  newTickets(),
	}
	s.metrics = newMetrics(obsv)
	s.metrics.wireGauges(s)
	// Request tracing works even without an Observer (metrics off): the
	// server then owns its own tracer so /debug/requests still answers.
	if obsv != nil {
		s.reqs = obsv.Requests
	}
	if s.reqs == nil {
		s.reqs = obs.NewReqTracer(64, 32)
	}
	s.reqs.SetSampling(cfg.TraceSample)
	s.reqs.SetSlowThreshold(cfg.TraceSlow)
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

// mux assembles the route table. /healthz and the obs surface bypass the
// admission ladder: probes and scrapes must work exactly when the server
// is too loaded to admit API traffic.
func (s *Server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tx/begin", s.admit(s.handleTxBegin))
	mux.HandleFunc("/v1/tx/apply", s.admit(s.handleTxApply))
	mux.HandleFunc("/v1/tx/commit", s.admit(s.handleTxCommit))
	mux.HandleFunc("/v1/tx/abort", s.admit(s.handleTxAbort))
	mux.HandleFunc("/v1/commit", s.admit(s.handleCommit))
	mux.HandleFunc("/v1/analytics", s.admit(s.handleAnalytics))
	mux.HandleFunc("/v1/analytics/poll", s.admit(s.handleAnalyticsPoll))
	mux.HandleFunc("/v1/stats", s.admit(s.handleStats))
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.obs != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			s.obs.Reg.WritePrometheus(w)
		})
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			snap := s.reqs.Snapshot()
			reqs := append(snap.Recent, snap.Slow...)
			if err := obs.WriteChromeTraceMerged(w, s.obs.Tracer.Cycles(0), reqs); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
	}
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reqs.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("no route %s", r.URL.Path), 0)
	})
	return s.instrument(mux)
}

// Start binds the listener and serves in a background goroutine.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	lim := &limitListener{Listener: ln, sem: make(chan struct{}, s.cfg.MaxConns), conns: &s.conns}
	hs := &http.Server{
		Handler:           s.mux(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		ErrorLog:          log.New(discard{}, "", 0), // TLS/conn noise; real errors surface elsewhere
	}
	s.mu.Lock()
	s.ln, s.http = lim, hs
	s.mu.Unlock()
	go hs.Serve(lim) //nolint:errcheck // ErrServerClosed on shutdown
	s.logf("server: listening on %s", ln.Addr())
	return nil
}

// SetTraceSampling adjusts request-trace sampling at runtime: 1 traces
// every API request, N traces one in N (the reqtrace ablation flips this
// between runs on one live server).
func (s *Server) SetTraceSampling(n int) { s.reqs.SetSampling(n) }

// Addr reports the bound listen address.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Drain is the graceful-shutdown path, bounded by ctx (callers typically
// pass a DrainTimeout context):
//
//  1. flip the drain gate: new requests shed 503 draining
//  2. http.Server.Shutdown: stop accepting, wait for in-flight requests
//  3. abort open interactive transactions, wait for analytics watchers
//  4. checkpoint the database so recovery replays a short log
//
// On ctx expiry remaining connections are closed hard; Drain reports the
// first error but always runs every step.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	hs := s.http
	s.mu.Unlock()
	var firstErr error
	if hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			firstErr = fmt.Errorf("server: drain: %w", err)
			hs.Close() //nolint:errcheck // hard-close stragglers past the bound
		}
	}
	aborted := s.sessions.drain()
	s.tickets.drainWait()
	if err := s.db.Checkpoint(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("server: drain checkpoint: %w", err)
	}
	s.logf("server: drained (%d open transactions aborted)", aborted)
	return firstErr
}

// Close shuts down abruptly (tests and error paths; production uses Drain).
func (s *Server) Close() error {
	s.draining.Store(true)
	s.mu.Lock()
	hs := s.http
	s.mu.Unlock()
	var err error
	if hs != nil {
		err = hs.Close()
	}
	s.sessions.drain()
	s.tickets.drainWait()
	return err
}

// limitListener caps concurrently open connections: Accept blocks at the
// cap, so excess dials queue in the kernel backlog instead of fanning out
// per-connection goroutines (the first rung of the admission ladder).
type limitListener struct {
	net.Listener
	sem   chan struct{}
	conns *atomic.Int64
}

func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	l.conns.Add(1)
	return &limitConn{Conn: c, release: func() {
		l.conns.Add(-1)
		<-l.sem
	}}, nil
}

type limitConn struct {
	net.Conn
	once    sync.Once
	release func()
}

func (c *limitConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}

// discard silences the http.Server error log.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// DrainContext is a convenience: a context bounded by the configured
// DrainTimeout.
func (s *Server) DrainContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
}
