package server

import (
	"sync"
	"time"

	"h2tap"
)

// ticketEntry is one submitted analytics request. done closes when the
// engine finishes it; res/err are written exactly once before the close
// (the happens-before edge pollers rely on).
type ticketEntry struct {
	id   string
	kind string

	done chan struct{}
	res  *h2tap.Result
	err  error

	created  time.Time
	finished time.Time
}

// tickets tracks submitted analytics for the submit/poll protocol. One
// watcher goroutine per ticket bridges the engine's blocking Wait to the
// entry's done channel; the WaitGroup lets drain account for them all.
type tickets struct {
	ttl time.Duration

	mu  sync.Mutex
	m   map[string]*ticketEntry
	ops int

	watchers sync.WaitGroup
}

// ticketTTL is how long a finished ticket stays pollable.
const ticketTTL = 2 * time.Minute

var kindNames = func() map[h2tap.AnalyticsKind]string {
	m := make(map[h2tap.AnalyticsKind]string, len(analyticsKinds))
	for name, k := range analyticsKinds {
		m[k] = name
	}
	return m
}()

func newTickets() *tickets {
	return &tickets{ttl: ticketTTL, m: make(map[string]*ticketEntry)}
}

// submit enqueues the request on the engine's dispatch queue and registers
// a pollable ticket for it.
func (t *tickets) submit(db *h2tap.DB, kind h2tap.AnalyticsKind, src uint64) (*ticketEntry, error) {
	tk, err := db.Submit(kind, h2tap.NodeID(src))
	if err != nil {
		return nil, err
	}
	e := &ticketEntry{
		id:      newSessionID(),
		kind:    kindNames[kind],
		done:    make(chan struct{}),
		created: time.Now(),
	}
	t.mu.Lock()
	t.m[e.id] = e
	t.ops++
	if t.ops >= 64 {
		t.ops = 0
		t.evictLocked(time.Now())
	}
	t.mu.Unlock()
	t.watchers.Add(1)
	go func() {
		defer t.watchers.Done()
		res, werr := tk.Wait()
		e.res, e.err = res, werr
		e.finished = time.Now()
		close(e.done)
	}()
	return e, nil
}

func (t *tickets) get(id string) *ticketEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

// evictLocked drops finished tickets past their poll TTL.
func (t *tickets) evictLocked(now time.Time) {
	for id, e := range t.m {
		select {
		case <-e.done:
			if now.Sub(e.finished) > t.ttl {
				delete(t.m, id)
			}
		default:
		}
	}
}

// drainWait blocks until every watcher goroutine has finished. The engine
// queue's Close (inside DB.Close) waits for in-flight kernels, so this
// returns promptly once the queue has drained.
func (t *tickets) drainWait() {
	t.watchers.Wait()
}
