package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"h2tap"
)

// txSession is one interactive transaction held open across HTTP requests.
// A *graph.Tx is single-goroutine; busy serializes the HTTP handlers that
// touch it (a second concurrent request on the same tx is a client bug and
// gets tx_conflict rather than a data race).
type txSession struct {
	id      string
	tx      *h2tap.Tx
	created time.Time

	mu       sync.Mutex
	busy     bool
	lastUsed time.Time
	gone     bool // committed, aborted, or evicted
}

// sessions is the interactive-transaction table with idle eviction: an
// abandoned client must not pin MVTO locks and versions forever.
type sessions struct {
	idle time.Duration

	mu   sync.Mutex
	m    map[string]*txSession
	ops  int
	seal bool // draining: no new sessions
}

func newSessions(idle time.Duration) *sessions {
	return &sessions{idle: idle, m: make(map[string]*txSession)}
}

func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: session id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

var errDraining = fmt.Errorf("server: draining")

// begin registers a fresh transaction session.
func (s *sessions) begin(tx *h2tap.Tx, now time.Time) (*txSession, error) {
	ts := &txSession{id: newSessionID(), tx: tx, created: now, lastUsed: now}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seal {
		return nil, errDraining
	}
	s.m[ts.id] = ts
	s.ops++
	if s.ops >= 64 {
		s.ops = 0
		s.evictIdleLocked(now)
	}
	return ts, nil
}

// evictIdleLocked aborts sessions idle past the bound. Called with s.mu
// held; skips busy sessions (their in-flight request refreshes lastUsed).
func (s *sessions) evictIdleLocked(now time.Time) {
	for id, ts := range s.m {
		ts.mu.Lock()
		expired := !ts.busy && now.Sub(ts.lastUsed) > s.idle
		if expired {
			ts.gone = true
		}
		ts.mu.Unlock()
		if expired {
			ts.tx.Abort() //nolint:errcheck // eviction is best-effort
			delete(s.m, id)
		}
	}
}

// acquire checks a session out for one request. Exactly one request may
// hold a session at a time.
func (s *sessions) acquire(id string, now time.Time) (*txSession, string) {
	s.mu.Lock()
	ts := s.m[id]
	s.mu.Unlock()
	if ts == nil {
		return nil, codeTxNotFound
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.gone {
		return nil, codeTxNotFound
	}
	if ts.busy {
		return nil, codeTxConflict
	}
	ts.busy = true
	ts.lastUsed = now
	return ts, ""
}

// release checks a session back in; done removes it from the table (after
// commit/abort). During drain a released-but-unfinished session is aborted
// here, on the goroutine that owns the tx, so drain never races a handler.
func (s *sessions) release(ts *txSession, done bool, now time.Time) {
	s.mu.Lock()
	sealed := s.seal
	if done || sealed {
		delete(s.m, ts.id)
	}
	s.mu.Unlock()
	ts.mu.Lock()
	ts.busy = false
	ts.lastUsed = now
	abort := sealed && !done && !ts.gone
	if done || sealed {
		ts.gone = true
	}
	ts.mu.Unlock()
	if abort {
		ts.tx.Abort() //nolint:errcheck // drain is best-effort
	}
}

// drain seals the table (no new sessions) and aborts every idle open
// transaction. Busy sessions — possible only if the HTTP drain timed out —
// are aborted by their own request in release, because a *graph.Tx is
// single-goroutine and drain must not race the handler that holds it.
func (s *sessions) drain() int {
	s.mu.Lock()
	s.seal = true
	idle := make([]*txSession, 0, len(s.m))
	n := len(s.m)
	for id, ts := range s.m {
		ts.mu.Lock()
		if !ts.busy {
			ts.gone = true
			idle = append(idle, ts)
			delete(s.m, id)
		}
		ts.mu.Unlock()
	}
	s.mu.Unlock()
	for _, ts := range idle {
		ts.tx.Abort() //nolint:errcheck
	}
	return n
}

// size reports open interactive transactions (for the gauge).
func (s *sessions) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
