package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"h2tap"
)

// newTestServer boots a server over a seeded volatile database. Cleanup
// drains the server and closes the database.
func newTestServer(t *testing.T, opts h2tap.Options, cfg Config) (*Server, string, *h2tap.DB) {
	t.Helper()
	db, err := h2tap.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	var prev h2tap.NodeID
	for i := 0; i < 8; i++ {
		id, err := tx.AddNode("Person", map[string]h2tap.Value{"seq": h2tap.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if _, err := tx.AddRel(prev, id, "knows", 1); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	srv, err := New(db, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx) //nolint:errcheck
		db.Close()
	})
	return srv, "http://" + srv.Addr(), db
}

// postJSON sends a request and decodes the response into out (when non-nil),
// returning the status code and raw body.
func postJSON(t *testing.T, hc *http.Client, url string, body string, out any) (int, []byte) {
	t.Helper()
	resp, err := hc.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, raw)
		}
	}
	return resp.StatusCode, raw
}

func decodeAPIError(t *testing.T, raw []byte) apiError {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("non-structured error body: %s", raw)
	}
	if env.Error.Code == "" {
		t.Fatalf("error body missing code: %s", raw)
	}
	return env.Error
}

func TestInteractiveTransactionRoundTrip(t *testing.T) {
	_, base, db := newTestServer(t, h2tap.Options{}, Config{})
	hc := &http.Client{Timeout: 5 * time.Second}

	var begin beginResponse
	if code, _ := postJSON(t, hc, base+"/v1/tx/begin", `{}`, &begin); code != 200 {
		t.Fatalf("begin = %d", code)
	}
	if begin.Tx == "" || begin.TS == 0 {
		t.Fatalf("begin = %+v; want tx id and MVTO ts", begin)
	}

	var apply applyResponse
	body := fmt.Sprintf(`{"tx":%q,"ops":[
		{"op":"add-node","label":"Person","props":{"name":"alice","age":34,"score":1.5,"vip":true}},
		{"op":"add-node","label":"Person","props":{"name":"bob"}}]}`, begin.Tx)
	if code, raw := postJSON(t, hc, base+"/v1/tx/apply", body, &apply); code != 200 {
		t.Fatalf("apply = %d: %s", code, raw)
	}
	if len(apply.Results) != 2 || apply.Results[0].Node == nil || apply.Results[1].Node == nil {
		t.Fatalf("apply results = %+v", apply.Results)
	}
	rel := fmt.Sprintf(`{"tx":%q,"ops":[{"op":"add-rel","src":%d,"dst":%d,"label":"knows","weight":2}]}`,
		begin.Tx, *apply.Results[0].Node, *apply.Results[1].Node)
	if code, raw := postJSON(t, hc, base+"/v1/tx/apply", rel, &apply); code != 200 {
		t.Fatalf("apply rel = %d: %s", code, raw)
	}

	before := db.LastCommitted()
	var commit commitResponse
	if code, raw := postJSON(t, hc, base+"/v1/tx/commit", fmt.Sprintf(`{"tx":%q}`, begin.Tx), &commit); code != 200 {
		t.Fatalf("commit = %d: %s", code, raw)
	}
	if commit.TS == 0 || commit.TS != uint64(begin.TS) {
		t.Fatalf("commit ts = %d, begin ts = %d; want the MVTO timestamp surfaced and stable", commit.TS, begin.TS)
	}
	if db.LastCommitted() < before+1 {
		t.Fatalf("commit not visible: last committed %d -> %d", before, db.LastCommitted())
	}

	// The session is gone after commit.
	code, raw := postJSON(t, hc, base+"/v1/tx/commit", fmt.Sprintf(`{"tx":%q}`, begin.Tx), nil)
	if code != http.StatusNotFound || decodeAPIError(t, raw).Code != codeTxNotFound {
		t.Fatalf("commit of finished tx = %d: %s", code, raw)
	}
}

func TestOneShotCommitAndAbortRollback(t *testing.T) {
	_, base, db := newTestServer(t, h2tap.Options{}, Config{})
	hc := &http.Client{Timeout: 5 * time.Second}

	nodes := db.Stats().LiveNodes
	var commit commitResponse
	code, raw := postJSON(t, hc, base+"/v1/commit",
		`{"ops":[{"op":"add-node","label":"Person"},{"op":"add-node","label":"Person"}]}`, &commit)
	if code != 200 {
		t.Fatalf("one-shot commit = %d: %s", code, raw)
	}
	if commit.TS == 0 || len(commit.Results) != 2 {
		t.Fatalf("one-shot commit = %+v", commit)
	}
	if got := db.Stats().LiveNodes; got != nodes+2 {
		t.Fatalf("live nodes = %d, want %d", got, nodes+2)
	}

	// Abort rolls an interactive tx back.
	var begin beginResponse
	postJSON(t, hc, base+"/v1/tx/begin", `{}`, &begin)
	postJSON(t, hc, base+"/v1/tx/apply",
		fmt.Sprintf(`{"tx":%q,"ops":[{"op":"add-node","label":"Person"}]}`, begin.Tx), nil)
	if code, _ := postJSON(t, hc, base+"/v1/tx/abort", fmt.Sprintf(`{"tx":%q}`, begin.Tx), nil); code != 200 {
		t.Fatalf("abort = %d", code)
	}
	if got := db.Stats().LiveNodes; got != nodes+2 {
		t.Fatalf("live nodes after abort = %d, want %d", got, nodes+2)
	}
}

func TestAnalyticsWaitAndPoll(t *testing.T) {
	_, base, _ := newTestServer(t, h2tap.Options{}, Config{})
	hc := &http.Client{Timeout: 10 * time.Second}

	var res analyticsResponse
	code, raw := postJSON(t, hc, base+"/v1/analytics", `{"kind":"bfs","src":0,"wait":true}`, &res)
	if code != 200 {
		t.Fatalf("analytics wait = %d: %s", code, raw)
	}
	if res.Kind != "bfs" || res.Digest["vertices"] == nil {
		t.Fatalf("analytics = %+v", res)
	}
	if res.Staleness.TSLag != 0 || res.Staleness.PendingRecords != 0 {
		t.Fatalf("fresh run has staleness %+v", res.Staleness)
	}

	// Submit/poll protocol.
	var tk ticketResponse
	if code, raw := postJSON(t, hc, base+"/v1/analytics", `{"kind":"pagerank","src":0}`, &tk); code != http.StatusAccepted {
		t.Fatalf("analytics submit = %d: %s", code, raw)
	}
	// decode from 202 body by hand (postJSON only decodes 2xx < 300; 202 is fine)
	if tk.Ticket == "" {
		t.Fatal("no ticket")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := hc.Get(base + "/v1/analytics/poll?ticket=" + tk.Ticket)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == 200 {
			var pr analyticsResponse
			if err := json.Unmarshal(raw, &pr); err != nil || pr.Kind != "pagerank" {
				t.Fatalf("poll result: %v %s", err, raw)
			}
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("poll = %d: %s", resp.StatusCode, raw)
		}
		if time.Now().After(deadline) {
			t.Fatal("analytics never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Unknown ticket 404s.
	resp, err := hc.Get(base + "/v1/analytics/poll?ticket=nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ticket = %d", resp.StatusCode)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	_, base, _ := newTestServer(t, h2tap.Options{}, Config{})
	hc := &http.Client{Timeout: 5 * time.Second}

	resp, err := hc.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.LiveNodes != 8 || st.HealthStr != "healthy" || st.Draining {
		t.Fatalf("stats = %+v", st)
	}

	resp, err = hc.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.HasPrefix(body, []byte("ok: ")) {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestStructuredRejections(t *testing.T) {
	_, base, _ := newTestServer(t, h2tap.Options{}, Config{MaxBodyBytes: 4096})
	hc := &http.Client{Timeout: 5 * time.Second}

	cases := []struct {
		name, url, body string
		status          int
		code            string
	}{
		{"malformed JSON", "/v1/commit", `{"ops": [{`, 400, codeBadRequest},
		{"unknown field", "/v1/commit", `{"opz": []}`, 400, codeBadRequest},
		{"unknown op", "/v1/commit", `{"ops":[{"op":"explode"}]}`, 400, codeBadRequest},
		{"empty ops", "/v1/commit", `{"ops":[]}`, 400, codeBadRequest},
		{"unknown analytics", "/v1/analytics", `{"kind":"quicksort"}`, 400, codeBadRequest},
		{"missing tx", "/v1/tx/apply", `{"ops":[]}`, 400, codeBadRequest},
		{"unknown tx", "/v1/tx/commit", `{"tx":"deadbeef"}`, 404, codeTxNotFound},
		{"oversized", "/v1/commit", `{"ops":[` + strings.Repeat(`{"op":"add-node"},`, 400) + `{"op":"add-node"}]}`, 413, codeTooLarge},
	}
	for _, tc := range cases {
		code, raw := postJSON(t, hc, base+tc.url, tc.body, nil)
		if code != tc.status {
			t.Fatalf("%s: status = %d, want %d (%s)", tc.name, code, tc.status, raw)
		}
		if got := decodeAPIError(t, raw); got.Code != tc.code {
			t.Fatalf("%s: code = %q, want %q", tc.name, got.Code, tc.code)
		}
	}

	// GET on a POST route and an unknown route.
	resp, _ := hc.Get(base + "/v1/commit")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET commit = %d", resp.StatusCode)
	}
	resp, _ = hc.Get(base + "/v2/nope")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route = %d", resp.StatusCode)
	}
}

// TestPanicRecoveryMiddleware proves a handler panic becomes a structured
// 500 and the server keeps serving (no crashed process, no leaked slot).
func TestPanicRecoveryMiddleware(t *testing.T) {
	srv, base, _ := newTestServer(t, h2tap.Options{}, Config{})
	hc := &http.Client{Timeout: 5 * time.Second}

	// Reach into the mux via a crafted request that panics: simulate by
	// calling the instrument wrapper directly around a panicking handler.
	h := srv.instrument(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/stats", nil)
	rec := &recordingWriter{header: http.Header{}}
	h.ServeHTTP(rec, req)
	if rec.status != http.StatusInternalServerError {
		t.Fatalf("panic status = %d", rec.status)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.buf.Bytes(), &env); err != nil || env.Error.Code != codeInternal {
		t.Fatalf("panic body = %s", rec.buf.Bytes())
	}

	// The real server still serves.
	resp, err := hc.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz after panic = %d", resp.StatusCode)
	}
}

type recordingWriter struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (w *recordingWriter) Header() http.Header { return w.header }
func (w *recordingWriter) WriteHeader(c int) {
	if w.status == 0 {
		w.status = c
	}
}
func (w *recordingWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = 200
	}
	return w.buf.Write(b)
}

// TestTxSessionIdleEviction proves abandoned interactive transactions are
// aborted and evicted rather than pinned forever.
func TestTxSessionIdleEviction(t *testing.T) {
	srv, base, _ := newTestServer(t, h2tap.Options{}, Config{TxIdleTimeout: 30 * time.Millisecond})
	hc := &http.Client{Timeout: 5 * time.Second}

	var begin beginResponse
	postJSON(t, hc, base+"/v1/tx/begin", `{}`, &begin)
	time.Sleep(60 * time.Millisecond)
	// The sweep rides on session-table traffic; trigger it.
	srv.sessions.mu.Lock()
	srv.sessions.evictIdleLocked(time.Now())
	srv.sessions.mu.Unlock()

	code, raw := postJSON(t, hc, base+"/v1/tx/commit", fmt.Sprintf(`{"tx":%q}`, begin.Tx), nil)
	if code != http.StatusNotFound || decodeAPIError(t, raw).Code != codeTxNotFound {
		t.Fatalf("evicted tx commit = %d: %s", code, raw)
	}
}

// waitForGoroutines polls until the goroutine count returns to at most
// base+slack, failing the test otherwise. It is the leak assertion the
// overload and fault tests share.
func waitForGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d baseline (+%d slack)\n%s",
				n, base, slack, buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}
