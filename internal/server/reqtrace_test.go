package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"testing"
	"time"

	"h2tap"
	"h2tap/internal/obs"
	"h2tap/internal/vfs"
)

// fetchRequests pulls and decodes /debug/requests.
func fetchRequests(t *testing.T, base string) obs.ReqTrace {
	t.Helper()
	resp, err := http.Get(base + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/requests = %d", resp.StatusCode)
	}
	var out obs.ReqTrace
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// findCommitTrace returns the newest finished "commit" request, preferring
// the slow ring (the attribution target) over recent.
func findCommitTrace(t *testing.T, tr obs.ReqTrace) obs.ReqSnapshot {
	t.Helper()
	for _, ring := range [][]obs.ReqSnapshot{tr.Slow, tr.Recent} {
		for i := len(ring) - 1; i >= 0; i-- {
			if ring[i].Name == "commit" {
				return ring[i]
			}
		}
	}
	t.Fatalf("no commit trace retained: %+v", tr)
	return obs.ReqSnapshot{}
}

// requireSpans asserts every named span is present in the snapshot.
func requireSpans(t *testing.T, snap obs.ReqSnapshot, names ...string) {
	t.Helper()
	have := make(map[string]int, len(snap.Spans))
	for _, sp := range snap.Spans {
		have[sp.Name]++
	}
	for _, n := range names {
		if have[n] == 0 {
			t.Errorf("span %q missing from trace (have %v)", n, have)
		}
	}
}

// spanCoverage computes the fraction of the request's wall time covered by
// the union of its span intervals — the "fully attributed" acceptance bar:
// every slow millisecond should fall inside some named span.
func spanCoverage(snap obs.ReqSnapshot) float64 {
	wall := snap.End.Sub(snap.Start)
	if wall <= 0 {
		return 0
	}
	type iv struct{ s, e time.Time }
	ivs := make([]iv, 0, len(snap.Spans))
	for _, sp := range snap.Spans {
		end := sp.End
		if end.IsZero() {
			end = snap.End
		}
		if end.After(sp.Start) {
			ivs = append(ivs, iv{sp.Start, end})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s.Before(ivs[j].s) })
	var covered time.Duration
	var curS, curE time.Time
	for _, v := range ivs {
		if curE.IsZero() || v.s.After(curE) {
			covered += curE.Sub(curS)
			curS, curE = v.s, v.e
			continue
		}
		if v.e.After(curE) {
			curE = v.e
		}
	}
	covered += curE.Sub(curS)
	return float64(covered) / float64(wall)
}

// TestSlowSingleNodeCommitAttribution drives a one-shot commit through a
// WAL whose fsync takes 10ms and asserts the retained trace names every
// layer it crossed — admission rungs, MVTO begin, op application, delta
// build, commit gate, the group-commit enqueue→write→fsync→ack breakdown
// with batch correlation, capture, publish — and that those spans account
// for at least 95% of the measured wall time.
func TestSlowSingleNodeCommitAttribution(t *testing.T) {
	_, base, _ := newTestServer(t, h2tap.Options{
		PersistDir: t.TempDir(),
		SyncWAL:    true,
		FS:         vfs.SlowSync(vfs.OS(), 10*time.Millisecond),
	}, Config{TraceSample: 1, TraceSlow: 5 * time.Millisecond})

	hc := &http.Client{Timeout: 10 * time.Second}
	var cr commitResponse
	status, raw := postJSON(t, hc, base+"/v1/commit",
		`{"ops":[{"op":"add-node","label":"T"},{"op":"add-node","label":"T"}]}`, &cr)
	if status != 200 {
		t.Fatalf("commit = %d: %s", status, raw)
	}

	snap := findCommitTrace(t, fetchRequests(t, base))
	requireSpans(t, snap,
		"admission.deadline", "admission.ratelimit", "admission.semaphore",
		"mvto.begin", "engine.apply", "delta.build", "commit.gate",
		"wal.enqueue", "wal.write", "wal.fsync", "wal.ack",
		"delta.capture", "mvto.publish")
	for _, sp := range snap.Spans {
		if sp.Name == "wal.enqueue" {
			args := map[string]string{}
			for _, a := range sp.Args {
				args[a.Key] = a.Value
			}
			if args["batch"] == "" || args["pos"] == "" {
				t.Errorf("wal.enqueue missing batch/pos correlation args: %v", sp.Args)
			}
		}
	}
	if cov := spanCoverage(snap); cov < 0.95 {
		t.Errorf("span coverage %.1f%% of %.1fms wall, want >= 95%%\nspans: %+v",
			cov*100, snap.WallMs, snap.Spans)
	}
	if snap.Dominant != "wal-fsync" {
		t.Errorf("dominant phase = %q, want wal-fsync (10ms injected fsync)", snap.Dominant)
	}
}

// TestSlowCrossShardCommitAttribution does the same for a two-shard 2PC
// commit: prepare per participant, coordinator decision, decision apply per
// participant, each carrying the shard index, plus the WAL breakdown of the
// underlying prepare/decision appends.
func TestSlowCrossShardCommitAttribution(t *testing.T) {
	db, err := h2tap.Open(h2tap.Options{
		Shards:     2,
		PersistDir: t.TempDir(),
		SyncWAL:    true,
		FS:         vfs.SlowSync(vfs.OS(), 5*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, Config{Addr: "127.0.0.1:0", TraceSample: 1, TraceSlow: 5 * time.Millisecond}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close() //nolint:errcheck
		db.Close()
	})
	base := "http://" + srv.Addr()

	// Two nodes place round-robin on both shards; the rel crosses them, so
	// commit runs the full two-phase protocol.
	hc := &http.Client{Timeout: 20 * time.Second}
	var cr commitResponse
	status, raw := postJSON(t, hc, base+"/v1/commit",
		`{"ops":[{"op":"add-node","label":"A"},{"op":"add-node","label":"B"}]}`, &cr)
	if status != 200 {
		t.Fatalf("cross-shard commit = %d: %s", status, raw)
	}
	if len(cr.Results) != 2 || cr.Results[0].Node == nil || cr.Results[1].Node == nil {
		t.Fatalf("results = %+v", cr.Results)
	}
	status, raw = postJSON(t, hc, base+"/v1/commit",
		`{"ops":[{"op":"add-rel","src":`+uitoa(*cr.Results[0].Node)+`,"dst":`+uitoa(*cr.Results[1].Node)+`,"label":"x"}]}`, nil)
	if status != 200 {
		t.Fatalf("rel commit = %d: %s", status, raw)
	}

	snap := findCommitTrace(t, fetchRequests(t, base))
	requireSpans(t, snap,
		"admission.deadline", "admission.ratelimit", "admission.semaphore",
		"mvto.begin", "engine.apply",
		"2pc.prepare", "2pc.decide", "2pc.apply",
		"wal.enqueue", "wal.write", "wal.fsync", "wal.ack",
		"delta.capture", "mvto.publish")
	prepares, applies := 0, 0
	shardsSeen := map[string]bool{}
	for _, sp := range snap.Spans {
		switch sp.Name {
		case "2pc.prepare":
			prepares++
			for _, a := range sp.Args {
				if a.Key == "shard" {
					shardsSeen[a.Value] = true
				}
			}
		case "2pc.apply":
			applies++
		}
	}
	if prepares != 2 || applies != 2 {
		t.Errorf("2pc.prepare ×%d, 2pc.apply ×%d, want 2 participants each", prepares, applies)
	}
	if len(shardsSeen) != 2 {
		t.Errorf("prepare spans name shards %v, want both", shardsSeen)
	}
	gtx := ""
	for _, a := range snap.Args {
		if a.Key == "gtx" {
			gtx = a.Value
		}
	}
	if gtx == "" {
		t.Errorf("request missing gtx arg: %v", snap.Args)
	}
	if cov := spanCoverage(snap); cov < 0.95 {
		t.Errorf("span coverage %.1f%% of %.1fms wall, want >= 95%%\nspans: %+v",
			cov*100, snap.WallMs, snap.Spans)
	}
	if snap.Dominant != "2pc" {
		t.Errorf("dominant phase = %q, want 2pc", snap.Dominant)
	}
}

func uitoa(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
