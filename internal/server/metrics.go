package server

import (
	"sync"
	"time"

	"h2tap/internal/obs"
)

// metrics is the server's observability surface, registered on the shared
// obs.Registry so the service metrics scrape alongside the engine's. A nil
// Observer degrades to no-ops (same convention as the engine hot paths).
type metrics struct {
	reg *obs.Registry

	mu      sync.RWMutex
	latency map[string]*obs.Histogram // accepted-request latency per endpoint
	status  map[string]*obs.Counter   // responses per endpoint × status class
	sheds   map[string]*obs.Counter   // load sheds per ladder rung
	phase   map[string]*obs.Histogram // traced-request latency per endpoint × dominant phase

	panics *obs.Counter
}

// Endpoints pre-registered so every family is visible from the first
// scrape; unknown paths are folded into "other" to bound cardinality.
var endpointNames = []string{
	"tx_begin", "tx_apply", "tx_commit", "tx_abort",
	"commit", "analytics", "analytics_poll", "stats", "healthz", "other",
}

// Shed reasons (admission-ladder rungs) pre-registered for the same reason.
var shedReasons = []string{
	codeRateLimited, codeOverCapacity, codeBackpressure, codeDraining,
	codeDeadline, codeTooLarge, codeUnavailable,
}

var statusClasses = []string{"2xx", "4xx", "5xx"}

func newMetrics(o *obs.Observer) *metrics {
	m := &metrics{
		latency: make(map[string]*obs.Histogram),
		status:  make(map[string]*obs.Counter),
		sheds:   make(map[string]*obs.Counter),
		phase:   make(map[string]*obs.Histogram),
	}
	if o == nil {
		return m
	}
	m.reg = o.Reg
	for _, ep := range endpointNames {
		m.latency[ep] = m.reg.Histogram("h2tap_http_request_seconds",
			"Latency of accepted (admitted) API requests by endpoint.",
			nil, obs.L("endpoint", ep))
		for _, cls := range statusClasses {
			m.status[ep+" "+cls] = m.reg.Counter("h2tap_http_responses_total",
				"API responses by endpoint and status class.",
				obs.L("endpoint", ep), obs.L("class", cls))
		}
	}
	for _, r := range shedReasons {
		m.sheds[r] = m.reg.Counter("h2tap_http_shed_total",
			"Requests rejected by the admission-control ladder, by rung.",
			obs.L("reason", r))
	}
	m.panics = m.reg.Counter("h2tap_http_panics_total",
		"Handler panics recovered by the middleware.")
	return m
}

// wireGauges registers pull-based gauges over live server state.
func (m *metrics) wireGauges(s *Server) {
	if m.reg == nil {
		return
	}
	m.reg.GaugeFunc("h2tap_http_inflight",
		"API requests currently holding an admission slot.",
		func() float64 { return float64(s.inflight.Load()) })
	m.reg.GaugeFunc("h2tap_http_open_conns",
		"Open TCP connections on the service listener.",
		func() float64 { return float64(s.conns.Load()) })
	m.reg.GaugeFunc("h2tap_http_tx_sessions",
		"Open interactive transaction sessions.",
		func() float64 { return float64(s.sessions.size()) })
	m.reg.GaugeFunc("h2tap_http_rate_buckets",
		"Live per-session rate-limit buckets.",
		func() float64 { return float64(s.limiter.size()) })
}

func (m *metrics) observe(endpoint string, status int, d time.Duration, admitted bool) {
	if m.reg == nil {
		return
	}
	cls := "2xx"
	switch {
	case status >= 500:
		cls = "5xx"
	case status >= 400:
		cls = "4xx"
	}
	if c := m.status[endpoint+" "+cls]; c != nil {
		c.Inc()
	}
	if admitted {
		if h := m.latency[endpoint]; h != nil {
			h.ObserveDuration(d)
		}
	}
}

// observePhase records an admitted traced request's latency under its
// dominant phase — the phase whose spans sum largest (queued admission,
// wal-fsync, 2pc, engine, ...). Series are created lazily on first sight of
// an (endpoint, phase) pair: phases are a small closed set defined by the
// span taxonomy, so cardinality stays bounded without pre-registering the
// full cross product.
func (m *metrics) observePhase(endpoint, phase string, d time.Duration) {
	if m.reg == nil {
		return
	}
	key := endpoint + " " + phase
	m.mu.RLock()
	h := m.phase[key]
	m.mu.RUnlock()
	if h == nil {
		m.mu.Lock()
		if h = m.phase[key]; h == nil {
			h = m.reg.Histogram("h2tap_http_request_phase_seconds",
				"Latency of traced API requests by endpoint and dominant latency phase.",
				nil, obs.L("endpoint", endpoint), obs.L("phase", phase))
			m.phase[key] = h
		}
		m.mu.Unlock()
	}
	h.ObserveDuration(d)
}

func (m *metrics) shed(reason string) {
	if m.reg == nil {
		return
	}
	if c := m.sheds[reason]; c != nil {
		c.Inc()
	}
}

func (m *metrics) panicked() {
	if m.reg == nil {
		return
	}
	m.panics.Inc()
}

// endpointName folds a request path into its bounded-cardinality label.
func endpointName(path string) string {
	switch path {
	case "/v1/tx/begin":
		return "tx_begin"
	case "/v1/tx/apply":
		return "tx_apply"
	case "/v1/tx/commit":
		return "tx_commit"
	case "/v1/tx/abort":
		return "tx_abort"
	case "/v1/commit":
		return "commit"
	case "/v1/analytics":
		return "analytics"
	case "/v1/analytics/poll":
		return "analytics_poll"
	case "/v1/stats":
		return "stats"
	case "/healthz":
		return "healthz"
	default:
		return "other"
	}
}
