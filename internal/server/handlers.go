package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"h2tap"
)

// --- request/response wire types -----------------------------------------

// op is one mutation inside a transaction body.
type op struct {
	Op     string                     `json:"op"` // add-node | add-rel | del-rel | del-node | set-prop
	Label  string                     `json:"label,omitempty"`
	Props  map[string]json.RawMessage `json:"props,omitempty"`
	Src    uint64                     `json:"src,omitempty"`
	Dst    uint64                     `json:"dst,omitempty"`
	Weight float64                    `json:"weight,omitempty"`
	Rel    uint64                     `json:"rel,omitempty"`
	Node   uint64                     `json:"node,omitempty"`
	Key    string                     `json:"key,omitempty"`
	Value  json.RawMessage            `json:"value,omitempty"`
}

// opResult reports the id an op created, if any.
type opResult struct {
	Node *uint64 `json:"node,omitempty"`
	Rel  *uint64 `json:"rel,omitempty"`
}

type beginResponse struct {
	Tx string `json:"tx"`
	TS uint64 `json:"ts"`
}

type applyRequest struct {
	Tx  string `json:"tx"`
	Ops []op   `json:"ops"`
}

type applyResponse struct {
	Results []opResult `json:"results"`
}

type commitRequest struct {
	Tx  string `json:"tx,omitempty"`
	Ops []op   `json:"ops,omitempty"`
}

type commitResponse struct {
	TS      uint64     `json:"ts"`
	Results []opResult `json:"results,omitempty"`
}

type analyticsRequest struct {
	Kind string `json:"kind"`
	Src  uint64 `json:"src,omitempty"`
	Wait bool   `json:"wait,omitempty"`
}

type stalenessJSON struct {
	ReplicaTS      uint64 `json:"replica_ts"`
	LastCommitted  uint64 `json:"last_committed"`
	TSLag          uint64 `json:"ts_lag"`
	PendingRecords int    `json:"pending_records"`
}

type analyticsResponse struct {
	Kind          string         `json:"kind"`
	Degraded      bool           `json:"degraded"`
	Staleness     stalenessJSON  `json:"staleness"`
	KernelSimUs   int64          `json:"kernel_sim_us"`
	HostWallUs    int64          `json:"host_wall_us"`
	PropagationUs int64          `json:"propagation_us"`
	Digest        map[string]any `json:"digest"`
}

type ticketResponse struct {
	Ticket string `json:"ticket"`
}

// --- JSON value conversion ------------------------------------------------

// toValue maps a JSON property value onto a graph value. Whole numbers
// become Int (JSON has one number type; the graph store has two), other
// numbers Float.
func toValue(raw json.RawMessage) (h2tap.Value, error) {
	var v any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return h2tap.Value{}, err
	}
	switch t := v.(type) {
	case string:
		return h2tap.Str(t), nil
	case bool:
		return h2tap.Bool(t), nil
	case json.Number:
		if i, err := t.Int64(); err == nil {
			return h2tap.Int(i), nil
		}
		f, err := t.Float64()
		if err != nil {
			return h2tap.Value{}, err
		}
		return h2tap.Float(f), nil
	default:
		return h2tap.Value{}, fmt.Errorf("unsupported property type %T", v)
	}
}

func toProps(raw map[string]json.RawMessage) (map[string]h2tap.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	props := make(map[string]h2tap.Value, len(raw))
	for k, r := range raw {
		v, err := toValue(r)
		if err != nil {
			return nil, fmt.Errorf("property %q: %w", k, err)
		}
		props[k] = v
	}
	return props, nil
}

// --- transaction endpoints ------------------------------------------------

func (s *Server) handleTxBegin(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if s.db.Cluster() != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"interactive transactions are single-domain only; use one-shot /v1/commit on a sharded server", 0)
		return
	}
	rq := trace(r)
	sp := rq.Span("mvto.begin", "engine")
	tx := s.db.Begin()
	sp.End()
	ts, err := s.sessions.begin(tx, time.Now())
	if err != nil {
		tx.Abort() //nolint:errcheck
		s.shed(w, http.StatusServiceUnavailable, codeDraining, "server is draining", s.cfg.RetryAfterHint)
		return
	}
	writeJSON(w, http.StatusOK, beginResponse{Tx: ts.id, TS: uint64(ts.tx.TS())})
}

// withSession checks the named session out for the duration of fn. The
// request's trace (if any) is attached to the session's transaction for
// exactly that window — the tx outlives the request, so the trace must be
// detached before release (the pooled *obs.Req is recycled after Finish).
func (s *Server) withSession(w http.ResponseWriter, r *http.Request, id string, fn func(*txSession) bool) {
	if id == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing tx id", 0)
		return
	}
	rq := trace(r)
	sp := rq.Span("session.acquire", "session")
	ts, code := s.sessions.acquire(id, time.Now())
	sp.End()
	if ts == nil {
		status := http.StatusNotFound
		if code == codeTxConflict {
			status = http.StatusConflict
		}
		writeError(w, status, code, fmt.Sprintf("tx %q: %s", id, code), 0)
		return
	}
	ts.tx.SetTrace(rq)
	done := fn(ts)
	ts.tx.SetTrace(nil)
	s.sessions.release(ts, done, time.Now())
}

// applyOps runs the ops against tx, honoring ctx between ops so a deadline
// cannot be stretched by a long batch.
func applyOps(ctx context.Context, tx *h2tap.Tx, ops []op) ([]opResult, error) {
	results := make([]opResult, 0, len(ops))
	for i := range ops {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		o := &ops[i]
		var res opResult
		switch o.Op {
		case "add-node":
			props, err := toProps(o.Props)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			id, err := tx.AddNode(o.Label, props)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			n := uint64(id)
			res.Node = &n
		case "add-rel":
			w := o.Weight
			if w == 0 {
				w = 1
			}
			id, err := tx.AddRel(h2tap.NodeID(o.Src), h2tap.NodeID(o.Dst), o.Label, w)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			rid := uint64(id)
			res.Rel = &rid
		case "del-rel":
			if err := tx.DeleteRel(h2tap.RelID(o.Rel)); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case "del-node":
			if err := tx.DeleteNode(h2tap.NodeID(o.Node)); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case "set-prop":
			v, err := toValue(o.Value)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			if err := tx.SetNodeProp(h2tap.NodeID(o.Node), o.Key, v); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("op %d: unknown op %q", i, o.Op)
		}
		results = append(results, res)
	}
	return results, nil
}

func (s *Server) handleTxApply(w http.ResponseWriter, r *http.Request) {
	var req applyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.withSession(w, r, req.Tx, func(ts *txSession) bool {
		sp := trace(r).Span("engine.apply", "engine")
		results, err := applyOps(r.Context(), ts.tx, req.Ops)
		sp.End()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				// The tx survives a deadline on one apply batch; the
				// session idle timer still bounds its total life.
				s.shed(w, http.StatusGatewayTimeout, codeDeadline, "deadline exceeded applying ops", 0)
				return false
			}
			writeError(w, http.StatusBadRequest, codeBadRequest, err.Error(), 0)
			return false
		}
		writeJSON(w, http.StatusOK, applyResponse{Results: results})
		return false
	})
}

func (s *Server) handleTxCommit(w http.ResponseWriter, r *http.Request) {
	var req commitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.withSession(w, r, req.Tx, func(ts *txSession) bool {
		s.writeCommit(w, r.Context(), ts.tx, nil)
		return true
	})
}

func (s *Server) handleTxAbort(w http.ResponseWriter, r *http.Request) {
	var req commitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.withSession(w, r, req.Tx, func(ts *txSession) bool {
		ts.tx.Abort() //nolint:errcheck // abort of a live tx cannot fail meaningfully
		writeJSON(w, http.StatusOK, struct{}{})
		return true
	})
}

// handleCommit is the one-shot path: begin, apply, commit in one request.
// This is what the load generator drives; it holds no cross-request state.
func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req commitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "empty ops", 0)
		return
	}
	if s.testHookPreCommit != nil {
		s.testHookPreCommit()
	}
	if s.db.Cluster() != nil {
		s.clusterCommit(w, r.Context(), req.Ops)
		return
	}
	rq := trace(r)
	sp := rq.Span("mvto.begin", "engine")
	tx := s.db.Begin()
	sp.End()
	tx.SetTrace(rq)
	sp = rq.Span("engine.apply", "engine")
	results, err := applyOps(r.Context(), tx, req.Ops)
	sp.End()
	if err != nil {
		tx.Abort() //nolint:errcheck
		if errors.Is(err, context.DeadlineExceeded) {
			s.shed(w, http.StatusGatewayTimeout, codeDeadline, "deadline exceeded applying ops", 0)
			return
		}
		s.writeApplyError(w, err)
		return
	}
	s.writeCommit(w, r.Context(), tx, results)
}

// writeCommit commits tx and maps the outcome onto the wire: success
// surfaces the MVTO commit timestamp; ErrBackpressure becomes the
// health-aware 503 + Retry-After; anything else is a commit rejection.
func (s *Server) writeCommit(w http.ResponseWriter, ctx context.Context, tx *h2tap.Tx, results []opResult) {
	if err := ctx.Err(); err != nil {
		tx.Abort() //nolint:errcheck
		s.shed(w, http.StatusGatewayTimeout, codeDeadline, "deadline exceeded before commit", 0)
		return
	}
	ts := tx.TS()
	if err := tx.Commit(); err != nil {
		s.writeCommitError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, commitResponse{TS: uint64(ts), Results: results})
}

// writeCommitError maps a failed commit onto the wire. Availability faults
// (backpressure, a quarantined shard, a latched 2PC coordinator) are sheds:
// 503 + Retry-After, because the client did nothing wrong and the fault is
// server-side and recoverable. Everything else is a 409 commit rejection.
func (s *Server) writeCommitError(w http.ResponseWriter, err error) {
	var down *h2tap.ShardDownError
	switch {
	case errors.As(err, &down):
		s.shed(w, http.StatusServiceUnavailable, codeShardDown,
			fmt.Sprintf("shard %d is down: %v; healthy shards keep serving", down.Shard, down.Cause),
			s.cfg.RetryAfterHint)
	case errors.Is(err, h2tap.ErrCoordinatorDown):
		s.shed(w, http.StatusServiceUnavailable, codeCoordinator,
			"cross-shard commits unavailable: 2PC coordinator log failed; single-shard writes keep serving",
			s.cfg.RetryAfterHint)
	case errors.Is(err, h2tap.ErrBackpressure):
		s.shed(w, http.StatusServiceUnavailable, codeBackpressure,
			"engine degraded and delta store over high water; retry later",
			s.cfg.RetryAfterHint)
	default:
		writeError(w, http.StatusConflict, codeCommitRejected, err.Error(), 0)
	}
}

// writeApplyError maps an op-application failure. A shed error surfacing
// mid-apply (the op routed to a Down shard) gets the same 503 treatment as
// at commit; anything else is the client's malformed request.
func (s *Server) writeApplyError(w http.ResponseWriter, err error) {
	if errors.Is(err, h2tap.ErrShardDown) || errors.Is(err, h2tap.ErrBackpressure) {
		s.writeCommitError(w, err)
		return
	}
	writeError(w, http.StatusBadRequest, codeBadRequest, err.Error(), 0)
}

// clusterCommit is the one-shot path on a sharded database: a cluster
// transaction speaking global IDs, atomic across every shard it touches.
func (s *Server) clusterCommit(w http.ResponseWriter, ctx context.Context, ops []op) {
	rq := traceFromCtx(ctx)
	sp := rq.Span("mvto.begin", "engine")
	tx, err := s.db.BeginSharded()
	sp.End()
	if err != nil {
		s.shed(w, http.StatusServiceUnavailable, codeUnavailable, err.Error(), s.cfg.RetryAfterHint)
		return
	}
	tx.SetTrace(rq)
	sp = rq.Span("engine.apply", "engine")
	results, err := applyClusterOps(ctx, tx, ops)
	sp.End()
	if err != nil {
		tx.Abort() //nolint:errcheck
		if errors.Is(err, context.DeadlineExceeded) {
			s.shed(w, http.StatusGatewayTimeout, codeDeadline, "deadline exceeded applying ops", 0)
			return
		}
		s.writeApplyError(w, err)
		return
	}
	if err := ctx.Err(); err != nil {
		tx.Abort() //nolint:errcheck
		s.shed(w, http.StatusGatewayTimeout, codeDeadline, "deadline exceeded before commit", 0)
		return
	}
	if err := tx.Commit(); err != nil {
		s.writeCommitError(w, err)
		return
	}
	// Shard timestamp domains are independent; the one-shot response's TS is
	// the cluster's upper bound rather than a single-oracle commit stamp.
	writeJSON(w, http.StatusOK, commitResponse{TS: s.db.LastCommitted(), Results: results})
}

// applyClusterOps mirrors applyOps against a cluster transaction (global
// IDs; rel ops carry the owning shard inside the ID encoding).
func applyClusterOps(ctx context.Context, tx *h2tap.ClusterTx, ops []op) ([]opResult, error) {
	results := make([]opResult, 0, len(ops))
	for i := range ops {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		o := &ops[i]
		var res opResult
		switch o.Op {
		case "add-node":
			props, err := toProps(o.Props)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			id, err := tx.AddNode(o.Label, props)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			res.Node = &id
		case "add-rel":
			weight := o.Weight
			if weight == 0 {
				weight = 1
			}
			id, err := tx.AddRel(o.Src, o.Dst, o.Label, weight)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			res.Rel = &id
		case "del-rel":
			if err := tx.DeleteRel(o.Rel); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case "del-node":
			if err := tx.DeleteNode(o.Node); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case "set-prop":
			v, err := toValue(o.Value)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			if err := tx.SetNodeProp(o.Node, o.Key, v); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("op %d: unknown op %q", i, o.Op)
		}
		results = append(results, res)
	}
	return results, nil
}

// --- analytics endpoints --------------------------------------------------

var analyticsKinds = map[string]h2tap.AnalyticsKind{
	"bfs":      h2tap.BFS,
	"pagerank": h2tap.PageRank,
	"sssp":     h2tap.SSSP,
	"wcc":      h2tap.WCC,
	"cdlp":     h2tap.CDLP,
	"lcc":      h2tap.LCC,
}

func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	var req analyticsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	kind, ok := analyticsKinds[req.Kind]
	if !ok {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("unknown analytics kind %q", req.Kind), 0)
		return
	}
	entry, err := s.tickets.submit(s.db, kind, req.Src)
	if err != nil {
		// Submission failures are availability problems (engine failed to
		// start, queue closed during drain), not client errors.
		s.shed(w, http.StatusServiceUnavailable, codeUnavailable, err.Error(), s.cfg.RetryAfterHint)
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, ticketResponse{Ticket: entry.id})
		return
	}
	// The kernel runs on the engine's dispatch queue and may outlive this
	// request (the ticket stays pollable past a deadline), so the trace is
	// not threaded into the async execution — the wait span bounds the
	// whole queue + kernel time from the request's point of view. Stitched
	// runs invoked synchronously through the facade carry the trace all the
	// way into the barrier (RunAnalyticsStitchedTraced).
	sp := trace(r).Span("analytics.wait", "engine")
	select {
	case <-entry.done:
		sp.End()
		s.writeAnalytics(w, req.Kind, entry)
	case <-r.Context().Done():
		sp.End()
		// The kernel keeps running and the ticket stays pollable; only
		// this request's wait is cancelled.
		s.shed(w, http.StatusGatewayTimeout, codeDeadline,
			fmt.Sprintf("deadline waiting for analytics; poll ticket %q", entry.id), 0)
	}
}

func (s *Server) handleAnalyticsPoll(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("ticket")
	if id == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing ticket", 0)
		return
	}
	entry := s.tickets.get(id)
	if entry == nil {
		writeError(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("ticket %q", id), 0)
		return
	}
	select {
	case <-entry.done:
		s.writeAnalytics(w, entry.kind, entry)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "pending", "ticket": id})
	}
}

// writeAnalytics renders a finished ticket. Result vectors are summarized
// into a digest — the service exists to exercise HTAP under load, and
// shipping million-entry rank vectors per request would make the network
// the benchmark.
func (s *Server) writeAnalytics(w http.ResponseWriter, kind string, e *ticketEntry) {
	if e.err != nil {
		writeError(w, http.StatusServiceUnavailable, codeUnavailable, e.err.Error(), 0)
		return
	}
	res := e.res
	resp := analyticsResponse{
		Kind:     kind,
		Degraded: res.Degraded,
		Staleness: stalenessJSON{
			ReplicaTS:      uint64(res.Staleness.ReplicaTS),
			LastCommitted:  uint64(res.Staleness.LastCommitted),
			TSLag:          res.Staleness.TSLag,
			PendingRecords: res.Staleness.PendingRecords,
		},
		KernelSimUs:   time.Duration(res.KernelSim).Microseconds(),
		HostWallUs:    res.HostWall.Microseconds(),
		PropagationUs: res.Propagation.Total.Total().Microseconds(),
		Digest:        digest(res),
	}
	writeJSON(w, http.StatusOK, resp)
}

// digest compresses a result vector into a few stable summary facts.
func digest(res *h2tap.Result) map[string]any {
	d := map[string]any{}
	switch {
	case res.Levels != nil:
		reach := 0
		for _, l := range res.Levels {
			if l >= 0 {
				reach++
			}
		}
		d["vertices"] = len(res.Levels)
		d["reachable"] = reach
	case res.Ranks != nil:
		best, bestRank := 0, math.Inf(-1)
		for i, r := range res.Ranks {
			if r > bestRank {
				best, bestRank = i, r
			}
		}
		d["vertices"] = len(res.Ranks)
		d["top_vertex"] = best
		d["top_rank"] = bestRank
	case res.Dists != nil:
		reach := 0
		for _, v := range res.Dists {
			if !math.IsInf(v, 1) {
				reach++
			}
		}
		d["vertices"] = len(res.Dists)
		d["reached"] = reach
	case res.Comp != nil:
		seen := make(map[uint64]struct{})
		for _, c := range res.Comp {
			seen[c] = struct{}{}
		}
		d["vertices"] = len(res.Comp)
		d["groups"] = len(seen)
	case res.Coef != nil:
		sum := 0.0
		for _, c := range res.Coef {
			sum += c
		}
		d["vertices"] = len(res.Coef)
		if len(res.Coef) > 0 {
			d["mean_coef"] = sum / float64(len(res.Coef))
		}
	}
	return d
}

// --- stats & health -------------------------------------------------------

type statsResponse struct {
	h2tap.Stats
	HealthStr  string `json:"health"`
	InFlight   int64  `json:"http_inflight"`
	OpenConns  int64  `json:"http_open_conns"`
	TxSessions int    `json:"tx_sessions"`
	Draining   bool   `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.db.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:      st,
		HealthStr:  st.Health.String(),
		InFlight:   s.inflight.Load(),
		OpenConns:  s.conns.Load(),
		TxSessions: s.sessions.size(),
		Draining:   s.draining.Load(),
	})
}

// handleHealthz mirrors the PR-4 obs /healthz contract (200 "ok: ..." /
// 503 "degraded: ...") with the staleness detail inline, so one probe
// format works against both the obs listener and the service port. It is
// exempt from admission: an overloaded server must still answer probes.
// On a sharded database the body is JSON with the per-shard fault-domain
// breakdown; the status code keeps the same probe semantics (503 iff
// draining or not fully healthy).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if shards := s.db.ShardHealths(); shards != nil {
		s.writeShardedHealthz(w, shards)
		return
	}
	h, fault := s.db.Health()
	st := s.db.ReplicaStaleness()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	detail := fmt.Sprintf("replica_ts=%d last_committed=%d ts_lag=%d pending=%d",
		uint64(st.ReplicaTS), uint64(st.LastCommitted), st.TSLag, st.PendingRecords)
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "draining: %s\n", detail)
		return
	}
	if h == h2tap.Degraded {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded: %v; %s\n", fault, detail)
		return
	}
	fmt.Fprintf(w, "ok: %s\n", detail)
}

// healthzResponse is the sharded /healthz body: overall status plus the
// per-shard fault-domain breakdown, so a probe (or an operator's curl)
// sees which shard is quarantined and why without a separate API call.
type healthzResponse struct {
	Status string              `json:"status"` // ok | degraded | draining
	Fault  string              `json:"fault,omitempty"`
	Shards []h2tap.ShardHealth `json:"shards"`
}

func (s *Server) writeShardedHealthz(w http.ResponseWriter, shards []h2tap.ShardHealth) {
	resp := healthzResponse{Status: "ok", Shards: shards}
	status := http.StatusOK
	if h, fault := s.db.Health(); h == h2tap.Degraded {
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
		if fault != nil {
			resp.Fault = fault.Error()
		}
	}
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// --- helpers --------------------------------------------------------------

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethod, "POST required", 0)
		return false
	}
	return true
}

// decodeBody parses a JSON POST body, mapping oversize and malformed input
// onto their structured rejections.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if !requirePost(w, r) {
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit), 0)
			return false
		}
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("malformed request: %v", err), 0)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client may have gone
}
