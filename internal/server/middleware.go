package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"h2tap/internal/obs"
)

// traceCtxKey threads the request's *obs.Req through the handler path. The
// context only carries a value for traced requests; untraced requests skip
// the WithValue allocation entirely.
type traceCtxKey struct{}

// trace extracts the request trace from a handler's request; nil when the
// request was sampled out (every obs.Req method is nil-safe, so call sites
// use the result unconditionally).
func trace(r *http.Request) *obs.Req {
	return traceFromCtx(r.Context())
}

func traceFromCtx(ctx context.Context) *obs.Req {
	rq, _ := ctx.Value(traceCtxKey{}).(*obs.Req)
	return rq
}

// statusRecorder captures the response status for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// sessionKey identifies the rate-limit principal: the client-chosen
// X-Session-ID header when present, else the remote host. The header lets
// a load generator model many independent clients from one address; a real
// deployment would derive it from auth instead.
func sessionKey(r *http.Request) string {
	if id := r.Header.Get("X-Session-ID"); id != "" {
		if len(id) > 64 {
			id = id[:64]
		}
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// requestDeadline resolves the per-request deadline from the admission
// headers:
//
//	X-Timeout-Ms       relative budget, capped at MaxDeadline
//	X-Deadline-Unix-Ms absolute wall-clock deadline; a value in the past
//	                   (clock-skewed client) is shed immediately rather
//	                   than admitted and cancelled mid-flight
//
// Absent both, DefaultDeadline applies.
func (s *Server) requestDeadline(r *http.Request, now time.Time) (time.Duration, error) {
	if v := r.Header.Get("X-Deadline-Unix-Ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad X-Deadline-Unix-Ms %q", v)
		}
		d := time.UnixMilli(ms).Sub(now)
		if d <= 0 {
			return 0, nil // already expired
		}
		if d > s.cfg.MaxDeadline {
			d = s.cfg.MaxDeadline
		}
		return d, nil
	}
	if v := r.Header.Get("X-Timeout-Ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms <= 0 {
			return 0, fmt.Errorf("bad X-Timeout-Ms %q", v)
		}
		d := time.Duration(ms) * time.Millisecond
		if d > s.cfg.MaxDeadline {
			d = s.cfg.MaxDeadline
		}
		return d, nil
	}
	return s.cfg.DefaultDeadline, nil
}

// admit wraps an API handler in the admission-control ladder. Rungs, in
// order (cheapest rejection first):
//
//  1. drain gate        → 503 draining
//  2. body-size cap     → declared length here, then MaxBytesReader (413)
//  3. deadline resolve  → skewed-past deadlines shed as 504 before they
//     can consume a slot (header parse only — cheaper than admission)
//  4. per-session bucket → 429 rate_limited + exact Retry-After
//  5. global semaphore  → 429 over_capacity
//  6. deadline enforce  → context deadline threaded into the handler
//
// Health-aware shedding (backpressure → 503) happens at the commit sites,
// where ErrBackpressure actually surfaces; see handleCommit.
func (s *Server) admit(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		rq := trace(r)
		if s.draining.Load() {
			s.shed(w, http.StatusServiceUnavailable, codeDraining,
				"server is draining", s.cfg.RetryAfterHint)
			return
		}
		if r.ContentLength > s.cfg.MaxBodyBytes {
			s.shed(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes), 0)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		sp := rq.Span("admission.deadline", "admission")
		d, err := s.requestDeadline(r, now)
		sp.End()
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, err.Error(), 0)
			return
		}
		if d <= 0 {
			s.shed(w, http.StatusGatewayTimeout, codeDeadline,
				"request deadline already expired (skewed client clock?)", 0)
			return
		}

		sp = rq.Span("admission.ratelimit", "admission")
		ok, wait := s.limiter.take(sessionKey(r), now)
		sp.End()
		if !ok {
			s.shed(w, http.StatusTooManyRequests, codeRateLimited,
				"session rate limit exceeded", wait)
			return
		}

		sp = rq.Span("admission.semaphore", "admission")
		select {
		case s.slots <- struct{}{}:
			sp.End()
			s.inflight.Add(1)
			defer func() {
				s.inflight.Add(-1)
				<-s.slots
			}()
		default:
			sp.End()
			s.shed(w, http.StatusTooManyRequests, codeOverCapacity,
				fmt.Sprintf("over %d in-flight requests", s.cfg.MaxInFlight),
				s.cfg.RetryAfterHint)
			return
		}

		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next(w, r.WithContext(ctx))
	}
}

// instrument is the outermost layer: panic recovery plus per-endpoint
// latency/status accounting. A panic is converted into a structured 500 and
// the server keeps serving; the stack goes to the error log.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		ep := endpointName(r.URL.Path)
		// Only API traffic is traced: probes and the obs surface would
		// otherwise fill the recent ring (and /debug/requests readers would
		// trace themselves).
		var rq *obs.Req
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			if rq = s.reqs.Start(ep); rq != nil {
				r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, rq))
			}
		}
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panicked()
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if rec.status == 0 {
					writeError(rec, http.StatusInternalServerError, codeInternal,
						"internal error", 0)
				}
			}
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			rq.Arg("status", strconv.Itoa(status))
			dominant, _ := rq.Finish()
			// A shed is not an accepted request: keep the latency
			// histogram to admitted work so the p99 bound is about
			// requests the server agreed to serve.
			admitted := status != http.StatusTooManyRequests &&
				status != http.StatusServiceUnavailable &&
				status != http.StatusRequestEntityTooLarge
			d := time.Since(start)
			s.metrics.observe(ep, status, d, admitted)
			if rq != nil && admitted {
				s.metrics.observePhase(ep, dominant, d)
			}
		}()
		next.ServeHTTP(rec, r)
	})
}
