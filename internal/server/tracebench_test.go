package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"h2tap"
)

func BenchmarkTracedCommit(b *testing.B) {
	for _, tc := range []struct {
		name   string
		sample int
	}{{"sampledOut", 1 << 30}, {"every", 1}} {
		b.Run(tc.name, func(b *testing.B) {
			db, err := h2tap.Open(h2tap.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			srv, err := New(db, Config{Addr: "127.0.0.1:0", SessionRate: 1e9, SessionBurst: 1e9}, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			srv.SetTraceSampling(tc.sample)
			h := srv.mux()
			body := `{"ops":[{"op":"add-node","label":"T"}]}`
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/commit", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != 200 {
					b.Fatalf("commit = %d", w.Code)
				}
			}
		})
	}
}
