package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"h2tap"
)

// TestOverloadWithNetworkFaults is the acceptance-criteria test: the
// server is driven well past its configured capacity (MaxInFlight=2 with
// 32 open-throttle clients — ≥2× sustainable by construction) while
// network-fault clients run alongside (slow-loris, mid-request
// disconnects, oversized and malformed bodies, clock-skewed deadlines).
// Asserts:
//
//   - accepted-request p99 stays within a configured bound
//   - the excess is shed with structured errors + Retry-After, never
//     connection resets or panics
//   - the server still serves cleanly after the storm
//   - graceful drain completes within its deadline
//   - zero goroutines leak once the server and database are gone
func TestOverloadWithNetworkFaults(t *testing.T) {
	baseline := runtime.NumGoroutine()

	db, err := h2tap.Open(h2tap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Addr:              "127.0.0.1:0",
		MaxInFlight:       2,
		MaxConns:          256,
		SessionRate:       100000, // per-session buckets out of the way:
		SessionBurst:      200000, // this test is about the global semaphore
		ReadHeaderTimeout: 300 * time.Millisecond,
		DefaultDeadline:   2 * time.Second,
	}
	srv, err := New(db, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Model an engine where a commit costs ~2ms inside the admission slot:
	// 32 clients vs MaxInFlight=2 × 2ms ≈ 1k/s sustainable — the clients
	// offer well over 2× that, so the semaphore must shed.
	srv.testHookPreCommit = func() { time.Sleep(2 * time.Millisecond) }
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	host := srv.Addr()

	const (
		clients  = 32
		runFor   = 1500 * time.Millisecond
		p99Bound = time.Second
	)
	var (
		accepted, badBody atomic.Int64
		shedMu            sync.Mutex
		sheds             = map[string]int64{}
		retryAfterSeen    atomic.Int64
		latMu             sync.Mutex
		lats              []float64
	)
	deadline := time.Now().Add(runFor)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tr := &http.Transport{MaxIdleConnsPerHost: 2}
			defer tr.CloseIdleConnections()
			hc := &http.Client{Transport: tr, Timeout: 5 * time.Second}
			for i := 0; time.Now().Before(deadline); i++ {
				start := time.Now()
				body := fmt.Sprintf(`{"ops":[{"op":"add-node","label":"P","props":{"c":%d,"i":%d}}]}`, c, i)
				resp, err := hc.Post(base+"/v1/commit", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("transport error under overload: %v", err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					accepted.Add(1)
					latMu.Lock()
					lats = append(lats, float64(time.Since(start))/float64(time.Millisecond))
					latMu.Unlock()
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					var env errorEnvelope
					if json.Unmarshal(raw, &env) != nil || env.Error.Code == "" {
						badBody.Add(1)
						continue
					}
					if resp.Header.Get("Retry-After") != "" {
						retryAfterSeen.Add(1)
					}
					shedMu.Lock()
					sheds[env.Error.Code]++
					shedMu.Unlock()
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
					return
				}
			}
		}(c)
	}

	// Network-fault clients, concurrent with the overload.
	faultCtx, stopFaults := context.WithDeadline(context.Background(), deadline)
	defer stopFaults()
	var fwg sync.WaitGroup
	runFault := func(fn func()) {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			for faultCtx.Err() == nil {
				fn()
				time.Sleep(20 * time.Millisecond)
			}
		}()
	}
	runFault(func() { // slow-loris
		c, err := net.DialTimeout("tcp", host, time.Second)
		if err != nil {
			return
		}
		defer c.Close()
		io.WriteString(c, "POST /v1/commit HTTP/1.1\r\n") //nolint:errcheck
		for i := 0; i < 10; i++ {
			if _, err := c.Write([]byte("X")); err != nil {
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
	})
	runFault(func() { // mid-request disconnect
		c, err := net.DialTimeout("tcp", host, time.Second)
		if err != nil {
			return
		}
		io.WriteString(c, "POST /v1/commit HTTP/1.1\r\nHost: h\r\nContent-Length: 64\r\n\r\n{\"ops\"") //nolint:errcheck
		c.Close()
	})
	hcF := &http.Client{Timeout: 2 * time.Second}
	runFault(func() { // malformed body: 400, or a shed if no slot was free
		resp, err := hcF.Post(base+"/v1/commit", "application/json", strings.NewReader(`{"ops":[{]`))
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("malformed body = %d", resp.StatusCode)
			}
		}
	})
	runFault(func() { // oversized body
		resp, err := hcF.Post(base+"/v1/commit", "application/json",
			strings.NewReader(`{"ops":[`+strings.Repeat(`{"op":"add-node"},`, 1<<16)+`]}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Errorf("oversized body = %d", resp.StatusCode)
			}
		}
	})
	runFault(func() { // clock-skewed absolute deadline
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/commit", strings.NewReader(`{"ops":[{"op":"add-node"}]}`))
		req.Header.Set("X-Deadline-Unix-Ms", "1000")
		resp, err := hcF.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusGatewayTimeout {
				t.Errorf("skewed deadline = %d", resp.StatusCode)
			}
		}
	})

	wg.Wait()
	fwg.Wait()
	if t.Failed() {
		return
	}

	if accepted.Load() == 0 {
		t.Fatal("overload starved every request; admission must keep serving at capacity")
	}
	if badBody.Load() > 0 {
		t.Fatalf("%d sheds lacked the structured error envelope", badBody.Load())
	}
	shedMu.Lock()
	total := int64(0)
	for _, n := range sheds {
		total += n
	}
	shedMu.Unlock()
	if total == 0 {
		t.Fatalf("no request was shed at %d clients over MaxInFlight=2", clients)
	}
	if retryAfterSeen.Load() == 0 {
		t.Fatal("no shed carried a Retry-After header")
	}
	latMu.Lock()
	sort.Float64s(lats)
	p99 := lats[int(0.99*float64(len(lats)-1))]
	p50 := lats[len(lats)/2]
	latMu.Unlock()
	if p99 > float64(p99Bound)/float64(time.Millisecond) {
		t.Fatalf("accepted-request p99 = %.1fms, bound %v", p99, p99Bound)
	}
	t.Logf("accepted=%d sheds=%v p50=%.2fms p99=%.2fms", accepted.Load(), sheds, p50, p99)

	// Still healthy and serving after the storm.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz after storm: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after storm = %d", resp.StatusCode)
	}

	// Graceful drain completes within its deadline.
	drainStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if d := time.Since(drainStart); d > 5*time.Second {
		t.Fatalf("drain took %v", d)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitForGoroutines(t, baseline, 3)
}

// TestDrainShedsNewWork proves the drain gate: once draining, new API
// requests get structured 503 draining while the drain completes.
func TestDrainShedsNewWork(t *testing.T) {
	db, err := h2tap.Open(h2tap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := New(db, Config{Addr: "127.0.0.1:0"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	hc := &http.Client{Timeout: 2 * time.Second}

	// Open an interactive tx; drain must abort it.
	var begin beginResponse
	postJSON(t, hc, base+"/v1/tx/begin", `{}`, &begin)

	srv.draining.Store(true) // gate first, as Drain does
	code, raw := postJSON(t, hc, base+"/v1/commit", `{"ops":[{"op":"add-node"}]}`, nil)
	if code != http.StatusServiceUnavailable || decodeAPIError(t, raw).Code != codeDraining {
		t.Fatalf("during drain = %d: %s", code, raw)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := srv.sessions.size(); n != 0 {
		t.Fatalf("%d sessions survived drain", n)
	}
	// Post-drain, tx/begin on a fresh connection fails at the TCP or gate
	// level — either is acceptable; what matters is no new work lands.
	if resp, err := hc.Post(base+"/v1/tx/begin", "application/json", strings.NewReader(`{}`)); err == nil {
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("tx began after drain")
		}
	}
}

// TestDrainDurability is the restart half of the acceptance criteria:
// every commit the server acknowledged before SIGTERM-style drain is
// durable across a process restart (same persist dir).
func TestDrainDurability(t *testing.T) {
	dir := t.TempDir()
	// No per-commit fsync: graceful drain's durability comes from the
	// drain-time checkpoint + clean close, which is exactly the contract
	// under test (crash durability is internal/crashtest's domain). Small
	// pools keep the reopen (which reads whole pool files) fast.
	db, err := h2tap.Open(h2tap.Options{PersistDir: dir, PersistPoolSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, Config{Addr: "127.0.0.1:0"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	// Concurrent committers; every 200 OK is a durability promise.
	var acked atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			hc := &http.Client{Timeout: 5 * time.Second}
			for i := 0; i < 25; i++ {
				body := fmt.Sprintf(`{"ops":[{"op":"add-node","label":"P","props":{"c":%d,"i":%d}}]}`, c, i)
				resp, err := hc.Post(base+"/v1/commit", "application/json", strings.NewReader(body))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					acked.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if acked.Load() == 0 {
		t.Fatal("no commit acknowledged")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Restart: recovery must surface every acknowledged commit.
	db2, err := h2tap.Open(h2tap.Options{PersistDir: dir, PersistPoolSize: 16 << 20})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if got := db2.Stats().LiveNodes; got != acked.Load() {
		t.Fatalf("recovered %d nodes, acknowledged %d", got, acked.Load())
	}
}
