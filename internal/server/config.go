// Package server is the network service layer over the h2tap.DB facade:
// an HTTP/JSON front end with robustness as the headline feature. Every
// request passes an admission-control ladder — connection cap, read/write
// timeouts, body-size cap, drain gate, per-session token bucket, global
// in-flight semaphore, health-aware backpressure, per-request deadline —
// so overload is shed with structured 429/503 + Retry-After instead of
// collapsing the process. See DESIGN.md §5g for the ladder rationale.
package server

import (
	"fmt"
	"time"
)

// Config parameterizes the admission-control ladder and the listener.
// The zero value selects every default; Validate fills them in.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string

	// MaxConns caps simultaneously open TCP connections; excess dials
	// queue in the accept backlog instead of spawning per-conn state.
	MaxConns int
	// MaxInFlight caps concurrently executing API requests (the global
	// admission semaphore). Requests beyond it are shed with 429.
	MaxInFlight int

	// SessionRate and SessionBurst parameterize the per-session token
	// bucket: a session sustains SessionRate requests/second with bursts
	// up to SessionBurst. Sessions are keyed by the X-Session-ID header
	// (falling back to the remote host), so one greedy client cannot
	// starve the rest of the admission semaphore.
	SessionRate  float64
	SessionBurst float64

	// DefaultDeadline bounds a request that does not ask for its own
	// deadline; MaxDeadline caps what a request may ask for via the
	// X-Timeout-Ms header. Both are enforced through context.Context
	// threaded down the handler path.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// HTTP server timeouts: the slow-loris bounds.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration

	// MaxBodyBytes caps a request body; oversized bodies get 413.
	MaxBodyBytes int64

	// TxIdleTimeout evicts (aborts) interactive transaction sessions that
	// have gone quiet, so abandoned clients cannot pin MVTO state forever.
	TxIdleTimeout time.Duration

	// DrainTimeout bounds graceful drain: in-flight requests get this
	// long to finish after shutdown begins before connections are closed.
	DrainTimeout time.Duration

	// RetryAfterHint is the Retry-After a load-shed response suggests when
	// no better bound is known (token-bucket sheds compute the exact
	// next-token wait instead).
	RetryAfterHint time.Duration

	// TraceSample traces one in N API requests end to end (admission rungs,
	// engine, WAL, 2PC, stitch spans); 1 traces every request. Untraced
	// requests pay a single atomic tick — no clock reads, no allocation.
	// A fully traced request costs ~25 clock reads (~2µs of wall), so the
	// default samples 1-in-64, amortizing tracing below 1% of even a
	// loopback commit; set 1 when chasing a specific slow request.
	TraceSample int
	// TraceSlow is the wall time past which a finished traced request is
	// retained in the always-kept slow ring of /debug/requests, so a burst
	// of fast traffic cannot evict the one trace that explains the tail.
	TraceSlow time.Duration
}

// Defaults for the zero Config.
const (
	DefaultMaxConns       = 1024
	DefaultMaxInFlight    = 256
	DefaultSessionRate    = 1000.0
	DefaultSessionBurst   = 2000.0
	DefaultDeadline       = 5 * time.Second
	DefaultMaxDeadline    = 30 * time.Second
	DefaultReadHeader     = 2 * time.Second
	DefaultRead           = 10 * time.Second
	DefaultWrite          = 10 * time.Second
	DefaultIdle           = 60 * time.Second
	DefaultMaxBodyBytes   = 1 << 20
	DefaultTxIdleTimeout  = 60 * time.Second
	DefaultDrainTimeout   = 10 * time.Second
	DefaultRetryAfterHint = time.Second
	DefaultTraceSample    = 64
	DefaultTraceSlow      = 100 * time.Millisecond
)

// Validate fills defaults and rejects nonsensical combinations.
func (c *Config) Validate() error {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxConns == 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.SessionRate == 0 {
		c.SessionRate = DefaultSessionRate
	}
	if c.SessionBurst == 0 {
		c.SessionBurst = DefaultSessionBurst
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = DefaultDeadline
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = DefaultMaxDeadline
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = DefaultReadHeader
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = DefaultRead
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWrite
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdle
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.TxIdleTimeout == 0 {
		c.TxIdleTimeout = DefaultTxIdleTimeout
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.RetryAfterHint == 0 {
		c.RetryAfterHint = DefaultRetryAfterHint
	}
	if c.TraceSample == 0 {
		c.TraceSample = DefaultTraceSample
	}
	if c.TraceSlow == 0 {
		c.TraceSlow = DefaultTraceSlow
	}
	if c.TraceSample < 1 {
		return fmt.Errorf("server: TraceSample must be >= 1")
	}
	if c.MaxConns < 1 || c.MaxInFlight < 1 {
		return fmt.Errorf("server: MaxConns and MaxInFlight must be >= 1")
	}
	if c.SessionRate < 0 || c.SessionBurst < 1 {
		return fmt.Errorf("server: SessionRate must be >= 0 and SessionBurst >= 1")
	}
	if c.DefaultDeadline > c.MaxDeadline {
		return fmt.Errorf("server: DefaultDeadline %v exceeds MaxDeadline %v", c.DefaultDeadline, c.MaxDeadline)
	}
	return nil
}
