package server

import (
	"sync"
	"time"
)

// bucket is a classic token bucket: capacity `burst`, refill `rate`
// tokens/second. It is small enough to keep one per live session.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

func newBucket(rate, burst float64, now time.Time) *bucket {
	return &bucket{tokens: burst, last: now, rate: rate, burst: burst}
}

// take spends one token. When the bucket is dry it reports the wait until
// the next token accrues, which becomes the response's Retry-After.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate <= 0 {
		// Unrefillable bucket: rate 0 means "burst only"; suggest a
		// generic backoff.
		return false, time.Second
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// limiter hands out per-key token buckets and evicts idle ones lazily (no
// janitor goroutine: the sweep rides on every Nth acquisition, so the
// limiter cannot leak goroutines across server restarts).
type limiter struct {
	rate, burst float64

	mu      sync.Mutex
	buckets map[string]*limiterEntry
	ops     int
}

type limiterEntry struct {
	b        *bucket
	lastSeen time.Time
}

// limiterSweepEvery and limiterIdle bound the lazy eviction: every
// limiterSweepEvery acquisitions, entries idle longer than limiterIdle go.
const (
	limiterSweepEvery = 4096
	limiterIdle       = 5 * time.Minute
)

func newLimiter(rate, burst float64) *limiter {
	return &limiter{rate: rate, burst: burst, buckets: make(map[string]*limiterEntry)}
}

// take spends one token from key's bucket, creating it on first sight.
func (l *limiter) take(key string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	e := l.buckets[key]
	if e == nil {
		e = &limiterEntry{b: newBucket(l.rate, l.burst, now)}
		l.buckets[key] = e
	}
	e.lastSeen = now
	l.ops++
	if l.ops >= limiterSweepEvery {
		l.ops = 0
		for k, ent := range l.buckets {
			if now.Sub(ent.lastSeen) > limiterIdle {
				delete(l.buckets, k)
			}
		}
	}
	l.mu.Unlock()
	return e.b.take(now)
}

// size reports live bucket count (for the gauge).
func (l *limiter) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
