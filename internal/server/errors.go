package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// apiError is the structured error envelope every non-2xx response carries.
// Clients branch on Code; RetryAfterMs mirrors the Retry-After header with
// millisecond precision for sheds that compute an exact wait.
type apiError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

// Error codes. Shed codes (anything that maps to 429/503) name the rung of
// the admission ladder that rejected the request, so overload behavior is
// observable from the client side alone.
const (
	codeBadRequest     = "bad_request"
	codeNotFound       = "not_found"
	codeMethod         = "method_not_allowed"
	codeTooLarge       = "payload_too_large"
	codeRateLimited    = "rate_limited"      // per-session token bucket
	codeOverCapacity   = "over_capacity"     // global in-flight semaphore
	codeBackpressure   = "backpressure"      // engine Degraded + delta high water
	codeDraining       = "draining"          // graceful drain in progress
	codeDeadline       = "deadline_exceeded" // per-request deadline hit
	codeTxNotFound     = "tx_not_found"
	codeTxConflict     = "tx_conflict" // concurrent use of one interactive tx
	codeCommitRejected = "commit_rejected"
	codeInternal       = "internal"
	codeUnavailable    = "unavailable"
	codeShardDown      = "shard_down"       // write touched a quarantined shard
	codeCoordinator    = "coordinator_down" // 2PC decision log latched
)

// writeError emits the structured envelope. retryAfter <= 0 omits the
// Retry-After header.
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	e := apiError{Code: code, Message: msg}
	if retryAfter > 0 {
		e.RetryAfterMs = retryAfter.Milliseconds()
		if e.RetryAfterMs == 0 {
			e.RetryAfterMs = 1
		}
		// Retry-After is whole seconds; round up so clients never retry
		// before the hint.
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorEnvelope{Error: e}) //nolint:errcheck // best-effort body
}

// shed emits a load-shed response (429/503 family) and counts it.
func (s *Server) shed(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	s.metrics.shed(code)
	writeError(w, status, code, msg, retryAfter)
}
