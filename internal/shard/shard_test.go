package shard

import (
	"testing"

	"h2tap/internal/htap"
	"h2tap/internal/mvto"
)

func TestPartitionerRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		p := NewPartitioner(n)
		for _, g := range []uint64{0, 1, 2, 15, 255, 1 << 32, 1<<40 + 17} {
			s, l := p.ShardOf(g), p.Local(g)
			if s < 0 || s >= n {
				t.Fatalf("n=%d g=%d: shard %d out of range", n, g, s)
			}
			if back := p.Global(s, l); back != g {
				t.Fatalf("n=%d g=%d: roundtrip gave %d", n, g, back)
			}
		}
		for s := 0; s < n; s++ {
			for l := uint64(0); l < 16; l++ {
				g := p.Global(s, l)
				if p.ShardOf(g) != s || p.Local(g) != l {
					t.Fatalf("n=%d: Global(%d,%d)=%d decodes to (%d,%d)",
						n, s, l, g, p.ShardOf(g), p.Local(g))
				}
			}
		}
	}
}

func TestRegistrySplitsAndPrune(t *testing.T) {
	var r txRegistry
	r.init()

	// Both halves below the cut: consistent.
	r.add(1, map[int]mvto.TS{0: 5, 1: 7})
	r.markDone(1)
	if lag := r.splits([]mvto.TS{6, 8}, nil); lag != nil {
		t.Fatalf("fully covered tx reported lagging shards %v", lag)
	}
	// One half visible, the other not: shard 1 lags.
	if lag := r.splits([]mvto.TS{6, 7}, nil); len(lag) != 1 || lag[0] != 1 {
		t.Fatalf("torn cut: got lagging %v, want [1]", lag)
	}
	// Both halves above the cut: consistent (tx entirely invisible).
	if lag := r.splits([]mvto.TS{5, 7}, nil); lag != nil {
		t.Fatalf("fully excluded tx reported lagging shards %v", lag)
	}

	// Prune only drops entries completely below the watermark.
	r.prune([]mvto.TS{6, 7})
	if r.size() != 1 {
		t.Fatalf("prune at partial cover dropped the entry")
	}
	r.prune([]mvto.TS{6, 8})
	if r.size() != 0 {
		t.Fatalf("prune at full cover kept the entry")
	}

	// In-flight (not done) entries never prune.
	r.add(2, map[int]mvto.TS{0: 1, 1: 1})
	r.prune([]mvto.TS{100, 100})
	if r.size() != 1 {
		t.Fatalf("in-flight entry pruned")
	}
}

// buildStar creates hub plus k spoke nodes and edges hub→spoke, returning
// (hub, spokes). With several shards some edges are cross-shard.
func buildStar(t *testing.T, c *Cluster, k int) (uint64, []uint64) {
	t.Helper()
	tx := c.Begin()
	hub, err := tx.AddNode("Hub", nil)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	spokes := make([]uint64, k)
	for i := range spokes {
		if spokes[i], err = tx.AddNode("Spoke", nil); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		if _, err := tx.AddRel(hub, spokes[i], "to", 1); err != nil {
			t.Fatalf("AddRel: %v", err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return hub, spokes
}

func TestVolatileClusterStitchedBFS(t *testing.T) {
	c, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()

	hub, spokes := buildStar(t, c, 32)
	res, err := c.RunAnalytics(htap.BFS, hub)
	if err != nil {
		t.Fatalf("RunAnalytics: %v", err)
	}
	if len(res.GlobalIDs) != 33 {
		t.Fatalf("composite has %d vertices, want 33 (ghosts must be excluded)", len(res.GlobalIDs))
	}
	if res.Edges != 32 {
		t.Fatalf("composite has %d edges, want 32", res.Edges)
	}
	lvl := make(map[uint64]int32, len(res.GlobalIDs))
	for i, g := range res.GlobalIDs {
		lvl[g] = res.Levels[i]
	}
	if lvl[hub] != 0 {
		t.Fatalf("hub level %d, want 0", lvl[hub])
	}
	for _, s := range spokes {
		if lvl[s] != 1 {
			t.Fatalf("spoke %d level %d, want 1", s, lvl[s])
		}
	}
	if c.Epoch() != 1 {
		t.Fatalf("epoch %d after one stitch, want 1", c.Epoch())
	}
}

func TestSingleParticipantFastPath(t *testing.T) {
	c, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()

	// A transaction confined to one shard must not consume a 2PC ID.
	tx := c.Begin()
	if _, err := tx.AddNode("N", nil); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if got := len(tx.Participants()); got != 1 {
		t.Fatalf("participants %d, want 1", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if g := c.gtx.Load(); g != 0 {
		t.Fatalf("single-shard commit consumed 2PC id (gtx=%d)", g)
	}
	if c.reg.size() != 0 {
		t.Fatalf("single-shard commit registered with the stitcher")
	}
}

func TestCrossShardAbortLeavesNothing(t *testing.T) {
	c, err := Open(Options{Shards: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()

	// Nodes on both shards, committed.
	setup := c.Begin()
	var byShard [2][]uint64
	for len(byShard[0]) == 0 || len(byShard[1]) == 0 {
		g, err := setup.AddNode("N", nil)
		if err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		byShard[c.part.ShardOf(g)] = append(byShard[c.part.ShardOf(g)], g)
	}
	if err := setup.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	tx := c.Begin()
	if _, err := tx.AddRel(byShard[0][0], byShard[1][0], "x", 1); err != nil {
		t.Fatalf("AddRel: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	res, err := c.RunAnalytics(htap.BFS, byShard[0][0])
	if err != nil {
		t.Fatalf("RunAnalytics: %v", err)
	}
	if res.Edges != 0 {
		t.Fatalf("aborted cross-shard edge visible in composite (%d edges)", res.Edges)
	}
	if c.reg.size() != 0 {
		t.Fatalf("aborted tx still registered")
	}
}

func TestGhostReuseAcrossTransactions(t *testing.T) {
	c, err := Open(Options{Shards: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()

	setup := c.Begin()
	var onShard [2]uint64
	seen := [2]bool{}
	for !seen[0] || !seen[1] {
		g, err := setup.AddNode("N", nil)
		if err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		onShard[c.part.ShardOf(g)] = g
		seen[c.part.ShardOf(g)] = true
	}
	// Second source on shard 0 so two distinct cross edges share the ghost.
	src2 := onShard[0]
	for c.part.ShardOf(src2) != 0 || src2 == onShard[0] {
		g, err := setup.AddNode("N", nil)
		if err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		src2 = g
	}
	if err := setup.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	for _, src := range []uint64{onShard[0], src2} {
		tx := c.Begin()
		if _, err := tx.AddRel(src, onShard[1], "x", 1); err != nil {
			t.Fatalf("AddRel: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	c.ghostMu.RLock()
	ghosts := len(c.ghostFwd[0])
	c.ghostMu.RUnlock()
	if ghosts != 1 {
		t.Fatalf("two edges to one remote node made %d ghosts, want 1", ghosts)
	}
	res, err := c.RunAnalytics(htap.BFS, onShard[0])
	if err != nil {
		t.Fatalf("RunAnalytics: %v", err)
	}
	if res.Edges != 2 {
		t.Fatalf("composite edges %d, want 2", res.Edges)
	}
}

func TestPersistentReopenPreservesCrossShardState(t *testing.T) {
	dir := t.TempDir()
	open := func() *Cluster {
		c, err := Open(Options{Shards: 3, PersistDir: dir, SyncWAL: true,
			PersistPoolSize: 4 << 20})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return c
	}

	c := open()
	hub, spokes := buildStar(t, c, 24)
	before, err := c.RunAnalytics(htap.BFS, hub)
	if err != nil {
		t.Fatalf("RunAnalytics: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c = open()
	defer c.Close()
	if c.gtx.Load() == 0 {
		t.Fatalf("gtx counter not resumed past recovered 2PC ids")
	}
	after, err := c.RunAnalytics(htap.BFS, hub)
	if err != nil {
		t.Fatalf("RunAnalytics after reopen: %v", err)
	}
	if len(after.GlobalIDs) != len(before.GlobalIDs) || after.Edges != before.Edges {
		t.Fatalf("reopen changed composite: %d/%d vertices, %d/%d edges",
			len(after.GlobalIDs), len(before.GlobalIDs), after.Edges, before.Edges)
	}
	lvl := make(map[uint64]int32)
	for i, g := range after.GlobalIDs {
		lvl[g] = after.Levels[i]
	}
	for _, s := range spokes {
		if lvl[s] != 1 {
			t.Fatalf("spoke %d level %d after reopen, want 1", s, lvl[s])
		}
	}
	// Checkpoint then reopen again: rotated logs must still recover.
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c2 := open()
	defer c2.Close()
	again, err := c2.RunAnalytics(htap.BFS, hub)
	if err != nil {
		t.Fatalf("RunAnalytics after checkpointed reopen: %v", err)
	}
	if again.Edges != before.Edges {
		t.Fatalf("checkpointed reopen lost edges: %d, want %d", again.Edges, before.Edges)
	}
}

func TestDeleteNodeCascadesGhostEdges(t *testing.T) {
	c, err := Open(Options{Shards: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()

	hub, spokes := buildStar(t, c, 16)
	// Delete a spoke on a different shard than the hub: its incoming
	// cross-shard edge (stored in the hub's shard against a ghost) must go.
	var victim uint64
	found := false
	for _, s := range spokes {
		if c.part.ShardOf(s) != c.part.ShardOf(hub) {
			victim, found = s, true
			break
		}
	}
	if !found {
		t.Skip("no cross-shard spoke with this placement")
	}
	tx := c.Begin()
	if err := tx.DeleteNode(victim); err != nil {
		t.Fatalf("DeleteNode: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	res, err := c.RunAnalytics(htap.BFS, hub)
	if err != nil {
		t.Fatalf("RunAnalytics: %v", err)
	}
	if res.Edges != 15 {
		t.Fatalf("composite edges %d after delete, want 15", res.Edges)
	}
	lvl := make(map[uint64]int32)
	for i, g := range res.GlobalIDs {
		lvl[g] = res.Levels[i]
	}
	if l, ok := lvl[victim]; ok && l != -1 {
		t.Fatalf("deleted node still reachable (level %d)", l)
	}
}
