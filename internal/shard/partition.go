// Package shard partitions the H2TAP engine into N independent MVTO/delta
// domains: each shard owns its own main-graph store, timestamp oracle,
// DELTA_FE delta store, cost model and simulated GPU replica, propagating on
// an independent cadence through the existing failure-atomic stage/commit
// machinery. Single-shard transactions run entirely inside one domain;
// cross-shard transactions go through a two-phase commit coordinator layered
// on the per-shard write-ahead logs plus a coordinator decision log.
// Cross-shard analytics stitch the per-shard replicas behind a watermark
// barrier so the composite view is always a consistent committed prefix
// (DESIGN.md §5h).
package shard

// Partitioner maps the cluster-global ID space onto shards. Placement is
// encoded in the ID itself — global = local*N + shard — so the mapping is
// total, involutive and stable across process restarts with no lookup table:
// any ID ever handed out decodes to exactly one (shard, local) pair.
type Partitioner struct {
	n uint64
}

// NewPartitioner returns a partitioner over n shards (n >= 1).
func NewPartitioner(n int) Partitioner {
	if n < 1 {
		n = 1
	}
	return Partitioner{n: uint64(n)}
}

// Shards reports the shard count.
func (p Partitioner) Shards() int { return int(p.n) }

// ShardOf reports the shard owning global ID g.
func (p Partitioner) ShardOf(g uint64) int { return int(g % p.n) }

// Local converts a global ID to the owning shard's local ID.
func (p Partitioner) Local(g uint64) uint64 { return g / p.n }

// Global converts (shard, local) back to the global ID.
func (p Partitioner) Global(shard int, local uint64) uint64 {
	return local*p.n + uint64(shard)
}

// EdgeOwner reports the shard owning edge (src, dst): the source's shard —
// out-adjacency lives with the source vertex, matching the CSR row layout.
func (p Partitioner) EdgeOwner(src, dst uint64) int { return p.ShardOf(src) }

// Place picks the home shard for the seq-th freshly created node by hashing
// the allocation sequence number (splitmix64), spreading inserts uniformly
// across shards regardless of arrival pattern.
func (p Partitioner) Place(seq uint64) int {
	return int(splitmix64(seq) % p.n)
}

// splitmix64 is the SplitMix64 finalizer — a full-avalanche 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
