package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"h2tap/internal/costmodel"
	"h2tap/internal/gpu"
	"h2tap/internal/graph"
	"h2tap/internal/htap"
	"h2tap/internal/vfs"
	"h2tap/internal/wal"
)

// Ghost nodes: a cross-shard edge src@A → dst@B is stored entirely in A
// (the edge owner) against a local stand-in node for dst — a "ghost" whose
// label and gid property mark it as an alias of the remote global ID. Ghosts
// ride the normal WAL/recovery path like any node; the cluster rebuilds its
// ghost registry from the stores at open. Ghost slots are excluded from the
// stitched composite vertex set and their adjacency is translated back to
// the real global ID, so the composite is exactly the logical graph.
const (
	// GhostLabel marks ghost nodes in the per-shard stores.
	GhostLabel = "__h2tap_ghost__"
	// GhostGIDKey is the property carrying the remote global node ID.
	GhostGIDKey = "__h2tap_gid__"
)

// Options configures a cluster.
type Options struct {
	// Shards is the domain count (>= 1).
	Shards int
	// Replica selects the per-shard GPU-side structure.
	Replica htap.ReplicaKind
	// PersistDir, when non-empty, stores each shard under
	// PersistDir/shard-NNN plus the coordinator decision log at
	// PersistDir/coord.wal. Empty selects fully volatile domains.
	PersistDir string
	// PersistPoolSize bounds each per-shard persistent pool (default 1 GiB).
	PersistPoolSize int64
	// SyncWAL fsyncs shard prepare/commit records and coordinator decisions.
	SyncWAL bool
	// GroupCommit tunes group commit on every shard WAL and the coordinator
	// decision log (zero values select the wal package defaults).
	GroupCommit wal.GroupCommit
	// FS overrides the filesystem (crash harness injection).
	FS vfs.FS
	// EnableCostModel calibrates once and clones the model per shard.
	EnableCostModel bool
	// PageRankIters and Damping parameterize PageRank (defaults 10, 0.85).
	PageRankIters int
	Damping       float64
	// Retry bounds per-shard replica-apply retries.
	Retry htap.RetryPolicy
	// DeltaHighWater is the per-shard delta-store backpressure mark.
	DeltaHighWater uint64
	// Workers is the per-shard propagation worker count.
	Workers int
}

// Cluster is a sharded H2TAP engine: N independent domains, a two-phase
// commit coordinator for cross-shard transactions, and a watermark stitcher
// for cross-shard analytics.
type Cluster struct {
	opts Options
	part Partitioner

	domains []*Domain
	coord   *wal.Log // coordinator decision log; nil for volatile clusters

	gtx atomic.Uint64 // distributed transaction IDs (resumed past recovery)
	seq atomic.Uint64 // node placement sequence

	// Ghost registry. Forward maps gid -> the latest usable local ghost per
	// shard; reverse maps every ghost slot ever allocated back to its gid
	// (entries are never removed — a slot once used as a ghost is excluded
	// from the composite vertex set forever, even after abort or delete).
	ghostMu  sync.RWMutex
	ghostFwd []map[uint64]graph.NodeID
	ghostRev []map[graph.NodeID]uint64

	reg txRegistry

	engineOnce sync.Once
	engineErr  error

	epoch atomic.Uint64 // successful stitches (the composite-view epoch)

	closeOnce sync.Once
	closeErr  error
}

// Open builds or recovers a cluster. Recovery order matters: the coordinator
// decision log is read first so each shard's WAL replay can resolve in-doubt
// prepare records to the coordinator's durable decision (presumed abort
// without one); then the ghost registry and the gtx counter are rebuilt from
// the recovered stores and logs.
func Open(o Options) (*Cluster, error) {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.PersistPoolSize == 0 {
		o.PersistPoolSize = 1 << 30
	}
	// The stitcher runs kernels directly (outside any one engine), so the
	// engine's PageRank defaults are normalized here once for both paths.
	if o.PageRankIters == 0 {
		o.PageRankIters = 10
	}
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	c := &Cluster{
		opts:     o,
		part:     NewPartitioner(o.Shards),
		ghostFwd: make([]map[uint64]graph.NodeID, o.Shards),
		ghostRev: make([]map[graph.NodeID]uint64, o.Shards),
	}
	for i := range c.ghostFwd {
		c.ghostFwd[i] = make(map[uint64]graph.NodeID)
		c.ghostRev[i] = make(map[graph.NodeID]uint64)
	}
	c.reg.init()

	if o.PersistDir == "" {
		for i := 0; i < o.Shards; i++ {
			c.domains = append(c.domains, openVolatile(i))
		}
		return c, nil
	}

	fsys := o.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	if err := fsys.MkdirAll(o.PersistDir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: persist dir: %w", err)
	}
	coordPath := filepath.Join(o.PersistDir, "coord.wal")
	decisions, err := wal.ReadDecisions(fsys, coordPath)
	if err != nil {
		return nil, fmt.Errorf("shard: coordinator log: %w", err)
	}
	if decisions.TornTail {
		// A decision append interrupted mid-write: trim it. The transaction
		// it would have decided is presumed aborted everywhere.
		if err := wal.Trim(fsys, coordPath, decisions.ValidLen); err != nil {
			return nil, fmt.Errorf("shard: coordinator log trim: %w", err)
		}
	}
	decide := func(gtx uint64) bool {
		commit, ok := decisions.Decided(gtx)
		return ok && commit
	}

	maxGtx := decisions.MaxGtx
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()
	for i := 0; i < o.Shards; i++ {
		dir := filepath.Join(o.PersistDir, fmt.Sprintf("shard-%03d", i))
		d, st, err := openPersistent(fsys, i, dir, o.PersistPoolSize, o.SyncWAL, o.GroupCommit, decide)
		if err != nil {
			return nil, err
		}
		c.domains = append(c.domains, d)
		if st.MaxGtx > maxGtx {
			maxGtx = st.MaxGtx
		}
	}
	c.gtx.Store(maxGtx)
	if c.coord, err = wal.Open(coordPath, wal.Options{
		SyncEveryCommit: o.SyncWAL,
		GroupCommit:     o.GroupCommit,
		FS:              fsys,
	}); err != nil {
		return nil, fmt.Errorf("shard: coordinator log open: %w", err)
	}
	c.rebuildGhosts()
	ok = true
	return c, nil
}

// rebuildGhosts rescans every shard's recovered store for ghost nodes and
// repopulates the registry. Deleted ghosts do not export and stay out — any
// replica built after recovery no longer contains their edges either.
func (c *Cluster) rebuildGhosts() {
	for i, d := range c.domains {
		ts := d.Store.Oracle().LastCommitted()
		nodes, _ := d.Store.ExportAt(ts)
		for _, n := range nodes {
			if n.Label != GhostLabel {
				continue
			}
			v, ok := n.Props[GhostGIDKey]
			if !ok {
				continue
			}
			gid := uint64(v.AsInt())
			c.ghostFwd[i][gid] = n.ID
			c.ghostRev[i][n.ID] = gid
		}
	}
}

// Partitioner exposes the cluster's ID mapping.
func (c *Cluster) Partitioner() Partitioner { return c.part }

// Shards reports the domain count.
func (c *Cluster) Shards() int { return len(c.domains) }

// Domain exposes shard i (tests, stats).
func (c *Cluster) Domain(i int) *Domain { return c.domains[i] }

// StartEngines builds every shard's analytics engine from its current
// committed snapshot: per-shard simulated GPU device, per-shard cost model
// (calibrated once, cloned per shard), per-shard persistent CSR pool.
func (c *Cluster) StartEngines() error {
	c.engineOnce.Do(func() {
		var model *costmodel.Model
		if c.opts.EnableCostModel {
			m, err := htap.Calibrate(c.domains[0].Store)
			if err != nil {
				c.engineErr = fmt.Errorf("shard: cost model calibration: %w", err)
				return
			}
			model = m
		}
		for _, d := range c.domains {
			cfg := htap.Config{
				Replica:       c.opts.Replica,
				Device:        gpu.DefaultA100(),
				DeltaStore:    d.DS,
				CostModel:     model.Clone(),
				Workers:       c.opts.Workers,
				PersistPool:   d.csrPool,
				PageRankIters: c.opts.PageRankIters,
				Damping:       c.opts.Damping,
				Retry:         c.opts.Retry,
				HighWater:     c.opts.DeltaHighWater,
			}
			e, err := htap.NewEngineWithExistingCapturer(d.Store, cfg)
			if err != nil {
				c.engineErr = fmt.Errorf("shard %d: engine: %w", d.Index, err)
				return
			}
			d.engine.Store(e)
		}
	})
	return c.engineErr
}

// PropagateAll runs one propagation cycle on every shard (starting engines
// if needed), continuing past per-shard failures. It returns every shard's
// report and the first error.
func (c *Cluster) PropagateAll() ([]*htap.PropagationReport, error) {
	if err := c.StartEngines(); err != nil {
		return nil, err
	}
	reports := make([]*htap.PropagationReport, len(c.domains))
	var firstErr error
	for i, d := range c.domains {
		rep, err := d.Engine().Propagate()
		reports[i] = rep
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return reports, firstErr
}

// Checkpoint rotates every shard's write-ahead log to a snapshot of its
// committed state. Each rotation runs under that shard's commit barrier; the
// coordinator log is never rotated (a rotated shard log holds no prepare
// records, so old decisions are never consulted again — they are only dead
// weight, bounded by cross-shard commit volume).
func (c *Cluster) Checkpoint() error {
	for _, d := range c.domains {
		if d.wal == nil {
			continue
		}
		if err := d.wal.Rotate(d.Store); err != nil {
			return fmt.Errorf("shard %d: checkpoint: %w", d.Index, err)
		}
	}
	return nil
}

// Epoch reports the number of consistent composite views stitched so far.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// CrossTxLive reports the cross-shard transactions the stitcher is currently
// tracking (in-flight plus committed-but-not-yet-pruned).
func (c *Cluster) CrossTxLive() int { return c.reg.size() }

// GhostNodes counts the live ghost stand-in rows across all shards: registry
// entries whose local node is visible at that shard's last committed
// timestamp (the registry itself also holds dead slots, which are only
// excluded from composites, never reused).
func (c *Cluster) GhostNodes() int64 {
	c.ghostMu.RLock()
	defer c.ghostMu.RUnlock()
	var n int64
	for i, d := range c.domains {
		ts := d.Store.Oracle().LastCommitted()
		for id := range c.ghostRev[i] {
			if d.Store.NodeExistsAt(id, ts) {
				n++
			}
		}
	}
	return n
}

// Watermarks reports each shard's replica freshness watermark (zero before
// engines start).
func (c *Cluster) Watermarks() []uint64 {
	w := make([]uint64, len(c.domains))
	for i, d := range c.domains {
		if e := d.Engine(); e != nil {
			w[i] = uint64(e.ReplicaTS())
		}
	}
	return w
}

// Close closes the coordinator log and every shard's durable handles. A
// latched per-shard delta-persistence failure surfaces even on clean close.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		var firstErr error
		if c.coord != nil {
			if err := c.coord.Close(); err != nil {
				firstErr = err
			}
		}
		for _, d := range c.domains {
			if err := d.closeHandles(); err != nil && firstErr == nil {
				firstErr = err
			}
			if firstErr == nil && d.DS != nil {
				firstErr = d.DS.PersistErr()
			}
		}
		c.closeErr = firstErr
	})
	return c.closeErr
}

// ErrClusterClosed reports use after Close.
var ErrClusterClosed = errors.New("shard: cluster closed")
