package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"h2tap/internal/costmodel"
	"h2tap/internal/gpu"
	"h2tap/internal/graph"
	"h2tap/internal/htap"
	"h2tap/internal/obs"
	"h2tap/internal/vfs"
	"h2tap/internal/wal"
)

// Ghost nodes: a cross-shard edge src@A → dst@B is stored entirely in A
// (the edge owner) against a local stand-in node for dst — a "ghost" whose
// label and gid property mark it as an alias of the remote global ID. Ghosts
// ride the normal WAL/recovery path like any node; the cluster rebuilds its
// ghost registry from the stores at open. Ghost slots are excluded from the
// stitched composite vertex set and their adjacency is translated back to
// the real global ID, so the composite is exactly the logical graph.
const (
	// GhostLabel marks ghost nodes in the per-shard stores.
	GhostLabel = "__h2tap_ghost__"
	// GhostGIDKey is the property carrying the remote global node ID.
	GhostGIDKey = "__h2tap_gid__"
)

// Options configures a cluster.
type Options struct {
	// Shards is the domain count (>= 1).
	Shards int
	// Replica selects the per-shard GPU-side structure.
	Replica htap.ReplicaKind
	// PersistDir, when non-empty, stores each shard under
	// PersistDir/shard-NNN plus the coordinator decision log at
	// PersistDir/coord.wal. Empty selects fully volatile domains.
	PersistDir string
	// PersistPoolSize bounds each per-shard persistent pool (default 1 GiB).
	PersistPoolSize int64
	// SyncWAL fsyncs shard prepare/commit records and coordinator decisions.
	SyncWAL bool
	// GroupCommit tunes group commit on every shard WAL and the coordinator
	// decision log (zero values select the wal package defaults).
	GroupCommit wal.GroupCommit
	// FS overrides the filesystem (crash harness injection).
	FS vfs.FS
	// EnableCostModel calibrates once and clones the model per shard.
	EnableCostModel bool
	// PageRankIters and Damping parameterize PageRank (defaults 10, 0.85).
	PageRankIters int
	Damping       float64
	// Retry bounds per-shard replica-apply retries.
	Retry htap.RetryPolicy
	// DeltaHighWater is the per-shard delta-store backpressure mark.
	DeltaHighWater uint64
	// Workers is the per-shard propagation worker count.
	Workers int
}

// Cluster is a sharded H2TAP engine: N independent domains, a two-phase
// commit coordinator for cross-shard transactions, and a watermark stitcher
// for cross-shard analytics. Each domain is an independent failure domain
// (see HealthState); the cluster keeps serving on the healthy subset and
// RecoverShard reopens a Down shard online.
type Cluster struct {
	opts Options
	part Partitioner
	fsys vfs.FS

	domains []*Domain

	// Coordinator decision log (nil for volatile clusters). coordMu
	// serializes decision appends (read side) against whole-log reads and
	// reopen during shard/coordinator recovery (write side): a recovery
	// must never scan the log while an append is mid-flight, or a torn
	// in-progress record could be misread as interior corruption.
	coordMu   sync.RWMutex
	coord     *wal.Log
	coordPath string

	gtx atomic.Uint64 // distributed transaction IDs (resumed past recovery)
	seq atomic.Uint64 // node placement sequence

	// Heuristic aborts: cross-shard transactions aborted in memory because
	// their coordinator decision append ERRORED — without knowing whether the
	// record nevertheless became durable (a crash can land the bytes and
	// still surface an error). The coordinator log is the commit point, so
	// if the decision turns out to be durably COMMIT the in-memory abort was
	// wrong; RecoverCoordinator reconciles each entry against the reopened
	// log and quarantines the participants of contradicted aborts, forcing
	// the recoveries whose replay applies the transaction everywhere.
	heurMu     sync.Mutex
	heurAborts map[uint64][]int // gtx -> participant shard indexes

	// Ghost registry. Forward maps gid -> the latest usable local ghost per
	// shard; reverse maps every ghost slot ever allocated back to its gid
	// (entries are never removed — a slot once used as a ghost is excluded
	// from the composite vertex set forever, even after abort or delete).
	ghostMu  sync.RWMutex
	ghostFwd []map[uint64]graph.NodeID
	ghostRev []map[graph.NodeID]uint64

	reg txRegistry

	engineOnce sync.Once
	engineErr  error
	enginesUp  atomic.Bool
	model      *costmodel.Model // calibrated once; cloned per shard engine

	epoch atomic.Uint64 // successful stitches (the composite-view epoch)

	closeOnce sync.Once
	closeErr  error
}

// Open builds or recovers a cluster. Recovery order matters: the coordinator
// decision log is read first so each shard's WAL replay can resolve in-doubt
// prepare records to the coordinator's durable decision (presumed abort
// without one); then the ghost registry and the gtx counter are rebuilt from
// the recovered stores and logs.
func Open(o Options) (*Cluster, error) {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.PersistPoolSize == 0 {
		o.PersistPoolSize = 1 << 30
	}
	// The stitcher runs kernels directly (outside any one engine), so the
	// engine's PageRank defaults are normalized here once for both paths.
	if o.PageRankIters == 0 {
		o.PageRankIters = 10
	}
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	c := &Cluster{
		opts:     o,
		part:     NewPartitioner(o.Shards),
		ghostFwd: make([]map[uint64]graph.NodeID, o.Shards),
		ghostRev: make([]map[graph.NodeID]uint64, o.Shards),
	}
	for i := range c.ghostFwd {
		c.ghostFwd[i] = make(map[uint64]graph.NodeID)
		c.ghostRev[i] = make(map[graph.NodeID]uint64)
	}
	c.reg.init()

	if o.PersistDir == "" {
		for i := 0; i < o.Shards; i++ {
			c.domains = append(c.domains, openVolatile(i))
		}
		return c, nil
	}

	fsys := o.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	c.fsys = fsys
	if err := fsys.MkdirAll(o.PersistDir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: persist dir: %w", err)
	}
	c.coordPath = filepath.Join(o.PersistDir, "coord.wal")
	decisions, err := wal.ReadDecisions(fsys, c.coordPath)
	if err != nil {
		return nil, fmt.Errorf("shard: coordinator log: %w", err)
	}
	if decisions.TornTail {
		// A decision append interrupted mid-write: trim it. The transaction
		// it would have decided is presumed aborted everywhere.
		if err := wal.Trim(fsys, c.coordPath, decisions.ValidLen); err != nil {
			return nil, fmt.Errorf("shard: coordinator log trim: %w", err)
		}
	}
	decide := func(gtx uint64) bool {
		commit, ok := decisions.Decided(gtx)
		return ok && commit
	}

	maxGtx := decisions.MaxGtx
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()
	for i := 0; i < o.Shards; i++ {
		d, st, err := openPersistent(fsys, i, c.shardDir(i), o.PersistPoolSize, o.SyncWAL, o.GroupCommit, decide)
		if err != nil {
			return nil, err
		}
		c.domains = append(c.domains, d)
		if st.MaxGtx > maxGtx {
			maxGtx = st.MaxGtx
		}
	}
	c.gtx.Store(maxGtx)
	if c.coord, err = wal.Open(c.coordPath, wal.Options{
		SyncEveryCommit: o.SyncWAL,
		GroupCommit:     o.GroupCommit,
		FS:              fsys,
	}); err != nil {
		return nil, fmt.Errorf("shard: coordinator log open: %w", err)
	}
	c.rebuildGhosts()
	ok = true
	return c, nil
}

// shardDir is shard i's persistence directory.
func (c *Cluster) shardDir(i int) string {
	return filepath.Join(c.opts.PersistDir, fmt.Sprintf("shard-%03d", i))
}

// rebuildGhosts rescans every shard's recovered store for ghost nodes and
// repopulates the registry. Deleted ghosts do not export and stay out — any
// replica built after recovery no longer contains their edges either.
func (c *Cluster) rebuildGhosts() {
	for i := range c.domains {
		c.rebuildGhostsFor(i)
	}
}

// rebuildGhostsFor rebuilds shard i's slice of the ghost registry from its
// current store (initial open and online shard recovery).
func (c *Cluster) rebuildGhostsFor(i int) {
	st := c.domains[i].Store()
	ts := st.Oracle().LastCommitted()
	nodes, _ := st.ExportAt(ts)
	fwd := make(map[uint64]graph.NodeID)
	rev := make(map[graph.NodeID]uint64)
	for _, n := range nodes {
		if n.Label != GhostLabel {
			continue
		}
		v, ok := n.Props[GhostGIDKey]
		if !ok {
			continue
		}
		gid := uint64(v.AsInt())
		fwd[gid] = n.ID
		rev[n.ID] = gid
	}
	c.ghostMu.Lock()
	c.ghostFwd[i] = fwd
	c.ghostRev[i] = rev
	c.ghostMu.Unlock()
}

// Partitioner exposes the cluster's ID mapping.
func (c *Cluster) Partitioner() Partitioner { return c.part }

// Shards reports the domain count.
func (c *Cluster) Shards() int { return len(c.domains) }

// Domain exposes shard i (tests, stats).
func (c *Cluster) Domain(i int) *Domain { return c.domains[i] }

// logCoordDecision appends one decision record under the coordinator read
// lock (excluded by recovery's whole-log scan). Nil coordinator (volatile
// cluster) is a no-op.
func (c *Cluster) logCoordDecision(gtx uint64, commit bool) error {
	return c.logCoordDecisionTraced(gtx, commit, nil)
}

// logCoordDecisionTraced is logCoordDecision carrying a request trace so the
// coordinator fsync (the distributed commit point) shows up in the request's
// span breakdown. rq may be nil.
func (c *Cluster) logCoordDecisionTraced(gtx uint64, commit bool, rq *obs.Req) error {
	c.coordMu.RLock()
	defer c.coordMu.RUnlock()
	if c.coord == nil {
		return nil
	}
	return c.coord.LogDecisionTraced(gtx, commit, rq)
}

// noteHeuristicAbort records that gtx is about to attempt its coordinator
// decision append and would be aborted in memory if the append errors with
// unknown durability. Registered BEFORE the append and dropped on success:
// were it registered only after the error, a concurrent RecoverCoordinator
// could reconcile in the gap and never see the entry, leaving a durably
// committed decision to resurrect on whichever shard replays next. See the
// heurAborts field doc.
func (c *Cluster) noteHeuristicAbort(gtx uint64, parts []int) {
	c.heurMu.Lock()
	if c.heurAborts == nil {
		c.heurAborts = make(map[uint64][]int)
	}
	c.heurAborts[gtx] = append([]int(nil), parts...)
	c.heurMu.Unlock()
}

// dropHeuristicAbort clears gtx's entry once its decision append succeeded
// (the transaction committed normally; there is nothing to reconcile).
func (c *Cluster) dropHeuristicAbort(gtx uint64) {
	c.heurMu.Lock()
	delete(c.heurAborts, gtx)
	c.heurMu.Unlock()
}

// reconcileHeuristicAborts checks every recorded heuristic abort against the
// coordinator log just reread: an entry whose decision is durably COMMIT was
// aborted wrongly — the participants' live stores are missing (some of) its
// writes, so they are quarantined and their next recovery replays the
// transaction back in. Any durable decision settles its entry; an entry
// with no decision yet is kept, not dropped — its owner's append may still
// be in flight (it could land durably on the log just reopened and then
// error), and only the owner removes a note whose append succeeded.
func (c *Cluster) reconcileHeuristicAborts(decisions *wal.DecisionSet) {
	c.heurMu.Lock()
	defer c.heurMu.Unlock()
	for gtx, parts := range c.heurAborts {
		commit, ok := decisions.Decided(gtx)
		if !ok {
			continue
		}
		if commit {
			for _, i := range parts {
				c.domains[i].quarantine(fmt.Errorf(
					"shard: cross-shard tx %d aborted in memory but durably committed at the coordinator", gtx))
			}
		}
		delete(c.heurAborts, gtx)
	}
}

// CoordErr reports the coordinator decision log's sticky failure, wrapped
// in ErrCoordinatorDown (nil while healthy or volatile). A latched
// coordinator fails only cross-shard commits; single-shard traffic and
// analytics are unaffected.
func (c *Cluster) CoordErr() error {
	c.coordMu.RLock()
	defer c.coordMu.RUnlock()
	if c.coord == nil {
		return nil
	}
	if err := c.coord.Stats().Failed; err != nil {
		return fmt.Errorf("%w: %v", ErrCoordinatorDown, err)
	}
	return nil
}

// StartEngines builds every shard's analytics engine from its current
// committed snapshot: per-shard simulated GPU device, per-shard cost model
// (calibrated once, cloned per shard), per-shard persistent CSR pool.
func (c *Cluster) StartEngines() error {
	c.engineOnce.Do(func() {
		if c.opts.EnableCostModel {
			m, err := htap.Calibrate(c.domains[0].Store())
			if err != nil {
				c.engineErr = fmt.Errorf("shard: cost model calibration: %w", err)
				return
			}
			c.model = m
		}
		for _, d := range c.domains {
			e, err := c.buildEngine(d.core.Load())
			if err != nil {
				c.engineErr = fmt.Errorf("shard %d: engine: %w", d.Index, err)
				return
			}
			d.engine.Store(e)
		}
		c.enginesUp.Store(true)
	})
	return c.engineErr
}

// buildEngine constructs one shard engine over a core (initial start and
// online recovery share this wiring; the core's delta store must already be
// registered as the store's capturer).
func (c *Cluster) buildEngine(core *domainCore) (*htap.Engine, error) {
	cfg := htap.Config{
		Replica:       c.opts.Replica,
		Device:        gpu.DefaultA100(),
		DeltaStore:    core.ds,
		CostModel:     c.model.Clone(),
		Workers:       c.opts.Workers,
		PersistPool:   core.csrPool,
		PageRankIters: c.opts.PageRankIters,
		Damping:       c.opts.Damping,
		Retry:         c.opts.Retry,
		HighWater:     c.opts.DeltaHighWater,
	}
	return htap.NewEngineWithExistingCapturer(core.store, cfg)
}

// PropagateAll runs one propagation cycle on every non-Down shard (starting
// engines if needed), continuing past per-shard failures. It returns every
// shard's report (nil for skipped shards) and the first error.
func (c *Cluster) PropagateAll() ([]*htap.PropagationReport, error) {
	if err := c.StartEngines(); err != nil {
		return nil, err
	}
	reports := make([]*htap.PropagationReport, len(c.domains))
	var firstErr error
	for i, d := range c.domains {
		if st, _ := d.Health(); st == ShardDown {
			continue
		}
		rep, err := d.Engine().Propagate()
		reports[i] = rep
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return reports, firstErr
}

// Checkpoint rotates every healthy shard's write-ahead log to a snapshot of
// its committed state. Each rotation runs under that shard's commit
// barrier; the coordinator log is never rotated (a rotated shard log holds
// no prepare records, so old decisions are never consulted again — they are
// only dead weight, bounded by cross-shard commit volume). A failed
// rotation quarantines that shard and the checkpoint continues on the rest;
// the first failure is returned so callers learn about the quarantine.
func (c *Cluster) Checkpoint() error {
	var firstErr error
	for _, d := range c.domains {
		if st, _ := d.Health(); st == ShardDown {
			continue
		}
		core := d.core.Load()
		if core.wal == nil {
			continue
		}
		if err := core.wal.Rotate(core.store); err != nil {
			d.quarantine(fmt.Errorf("checkpoint rotate: %w", err))
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: checkpoint: %w", d.Index, err)
			}
		}
	}
	return firstErr
}

// RecoverShard reopens a Down shard from its own durable state — WAL,
// checkpoint, pools — while the rest of the cluster keeps serving, and
// flips it back to Healthy. The coordinator decision log is re-read (under
// the coordinator lock, so no concurrent decision append can be misread as
// corruption) to resolve any in-doubt prepare records the shard's WAL
// holds: decided-commit transactions are applied, everything else is
// presumed aborted. The shard's slice of the ghost registry is rebuilt from
// the recovered store and, if the cluster's engines are running, a fresh
// analytics engine is built so the shard rejoins the stitch barrier.
//
// The caller must have cleared the underlying fault first (freed disk
// space, remounted the device); recovery against a still-broken medium
// fails and leaves the shard Down for another attempt.
func (c *Cluster) RecoverShard(i int) error {
	if i < 0 || i >= len(c.domains) {
		return fmt.Errorf("shard: no shard %d", i)
	}
	d := c.domains[i]
	if err := d.beginRecovery(); err != nil {
		return err
	}
	ok := false
	defer func() { d.endRecovery(ok) }()
	if c.opts.PersistDir == "" {
		return fmt.Errorf("shard %d: volatile shards have no durable state to recover from", i)
	}

	// Detach the failed incarnation's handles. Best-effort: the medium that
	// latched the failure may refuse the close too; the reopen below decides
	// whether the shard is actually recoverable.
	if old := d.core.Load(); old != nil {
		old.close()
	}

	// Freeze decision appends while scanning the coordinator log.
	c.coordMu.Lock()
	decisions, err := wal.ReadDecisions(c.fsys, c.coordPath)
	c.coordMu.Unlock()
	if err != nil {
		return fmt.Errorf("shard %d: recover: coordinator log: %w", i, err)
	}
	decide := func(gtx uint64) bool {
		commit, ok := decisions.Decided(gtx)
		return ok && commit
	}

	core, st, err := openCore(c.fsys, i, c.shardDir(i), c.opts.PersistPoolSize, c.opts.SyncWAL, c.opts.GroupCommit, decide)
	if err != nil {
		return fmt.Errorf("shard %d: recover: %w", i, err)
	}

	// Resume the distributed-transaction counter past anything this shard's
	// replay (or the decision log) saw, without ever moving it backwards.
	maxGtx := st.MaxGtx
	if decisions.MaxGtx > maxGtx {
		maxGtx = decisions.MaxGtx
	}
	for {
		cur := c.gtx.Load()
		if cur >= maxGtx || c.gtx.CompareAndSwap(cur, maxGtx) {
			break
		}
	}

	// Publish the new incarnation. The shard stays Down (writes shed,
	// stitches exclude it) until endRecovery flips it Healthy, so a
	// half-wired incarnation is never served.
	d.adoptCore(core)
	if c.enginesUp.Load() {
		e, err := c.buildEngine(core)
		if err != nil {
			return fmt.Errorf("shard %d: recover: engine: %w", i, err)
		}
		d.engine.Store(e)
	}
	c.rebuildGhostsFor(i)
	ok = true
	return nil
}

// RecoverCoordinator reopens a latched coordinator decision log in place:
// the log is closed, its torn tail (if any) trimmed, and a fresh log opened
// at the same path. Cross-shard transactions whose decision append failed
// without durability stay undecided and resolve to presumed abort; ones
// whose decision turns out durably committed (a lost ack) are reconciled —
// their participants quarantine and re-recover so the commit point in the
// log wins everywhere. Cross-shard commits resume immediately; single-shard
// traffic never stopped.
func (c *Cluster) RecoverCoordinator() error {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	if c.coord == nil {
		return nil
	}
	if c.coord.Stats().Failed == nil {
		return nil
	}
	c.coord.Close() // best-effort; the latch already rewound the tail
	decisions, err := wal.ReadDecisions(c.fsys, c.coordPath)
	if err != nil {
		return fmt.Errorf("shard: recover coordinator: %w", err)
	}
	if decisions.TornTail {
		if err := wal.Trim(c.fsys, c.coordPath, decisions.ValidLen); err != nil {
			return fmt.Errorf("shard: recover coordinator trim: %w", err)
		}
	}
	log, err := wal.Open(c.coordPath, wal.Options{
		SyncEveryCommit: c.opts.SyncWAL,
		GroupCommit:     c.opts.GroupCommit,
		FS:              c.fsys,
	})
	if err != nil {
		return fmt.Errorf("shard: recover coordinator open: %w", err)
	}
	c.coord = log
	// The durable log is back in hand: settle any in-memory aborts the
	// latched coordinator forced while its decision durability was unknown.
	// Contradicted ones quarantine their participants (recover those shards
	// next — see cfCheck / ShardStorm for the full repair sequence).
	c.reconcileHeuristicAborts(decisions)
	return nil
}

// Healths snapshots every shard's health state.
func (c *Cluster) Healths() []HealthState {
	out := make([]HealthState, len(c.domains))
	for i, d := range c.domains {
		out[i], _ = d.Health()
	}
	return out
}

// Epoch reports the number of consistent composite views stitched so far.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// CrossTxLive reports the cross-shard transactions the stitcher is currently
// tracking (in-flight plus committed-but-not-yet-pruned).
func (c *Cluster) CrossTxLive() int { return c.reg.size() }

// GhostNodes counts the live ghost stand-in rows across all shards: registry
// entries whose local node is visible at that shard's last committed
// timestamp (the registry itself also holds dead slots, which are only
// excluded from composites, never reused).
func (c *Cluster) GhostNodes() int64 {
	c.ghostMu.RLock()
	defer c.ghostMu.RUnlock()
	var n int64
	for i, d := range c.domains {
		st := d.Store()
		ts := st.Oracle().LastCommitted()
		for id := range c.ghostRev[i] {
			if st.NodeExistsAt(id, ts) {
				n++
			}
		}
	}
	return n
}

// Watermarks reports each shard's replica freshness watermark (zero before
// engines start).
func (c *Cluster) Watermarks() []uint64 {
	w := make([]uint64, len(c.domains))
	for i, d := range c.domains {
		if e := d.Engine(); e != nil {
			w[i] = uint64(e.ReplicaTS())
		}
	}
	return w
}

// Close closes the coordinator log and every shard's durable handles. A
// latched per-shard delta-persistence failure surfaces even on clean close.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		var firstErr error
		c.coordMu.Lock()
		if c.coord != nil {
			if err := c.coord.Close(); err != nil {
				firstErr = err
			}
		}
		c.coordMu.Unlock()
		for _, d := range c.domains {
			if err := d.closeHandles(); err != nil && firstErr == nil {
				firstErr = err
			}
			if firstErr == nil {
				if ds := d.DS(); ds != nil {
					firstErr = ds.PersistErr()
				}
			}
		}
		c.closeErr = firstErr
	})
	return c.closeErr
}

// ErrClusterClosed reports use after Close.
var ErrClusterClosed = errors.New("shard: cluster closed")
