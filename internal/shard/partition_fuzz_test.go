package shard

import "testing"

// FuzzPartitioner checks the ID-encoding partitioner's core invariants over
// arbitrary inputs: totality (every global ID decodes to exactly one in-range
// (shard, local) pair), involutivity (encode∘decode is the identity both
// ways), placement determinism and stability (the mapping is a pure function
// of (n, input) with no hidden state, so it survives process restarts), and
// edge ownership following the source. IDs in the LDBC range (large 64-bit
// values with structured high bits) are part of the seed corpus.
func FuzzPartitioner(f *testing.F) {
	f.Add(uint64(0), uint64(0), 1)
	f.Add(uint64(1), uint64(2), 4)
	f.Add(uint64(1)<<40|17, uint64(1)<<40|18, 8) // LDBC-style structured IDs
	f.Add(^uint64(0)>>1, uint64(12345678901234), 16)
	f.Add(uint64(999983), uint64(2), 7) // prime inputs, non-power-of-two n

	f.Fuzz(func(t *testing.T, g uint64, h uint64, n int) {
		if n < 1 {
			n = 1
		}
		if n > 64 {
			n = n%64 + 1
		}
		p := NewPartitioner(n)
		if p.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", p.Shards(), n)
		}

		// Totality + involutivity on arbitrary global IDs. Guard against the
		// local*n+shard encode overflowing uint64 — such IDs are never handed
		// out (locals grow sequentially from zero), so only decoded-then-
		// re-encoded values below the overflow bound must round-trip.
		for _, id := range []uint64{g, h, g ^ h} {
			s, l := p.ShardOf(id), p.Local(id)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d) = %d out of [0,%d)", id, s, n)
			}
			if back := p.Global(s, l); back != id {
				t.Fatalf("Global(ShardOf, Local) of %d = %d", id, back)
			}
		}

		// Encode direction: every (shard, local) pair below the overflow
		// bound maps to a distinct global ID owned by that shard.
		l := g / uint64(n) // keep local*n+shard in range
		for s := 0; s < n; s++ {
			id := p.Global(s, l)
			if p.ShardOf(id) != s || p.Local(id) != l {
				t.Fatalf("n=%d Global(%d,%d)=%d decodes to (%d,%d)",
					n, s, l, id, p.ShardOf(id), p.Local(id))
			}
		}

		// Placement: deterministic (reopen-stable) and in range.
		if a, b := p.Place(g), p.Place(g); a != b {
			t.Fatalf("Place(%d) nondeterministic: %d then %d", g, a, b)
		}
		if s := p.Place(g); s < 0 || s >= n {
			t.Fatalf("Place(%d) = %d out of [0,%d)", g, s, n)
		}
		// A second partitioner over the same n is the same mapping — there
		// is no per-instance state.
		q := NewPartitioner(n)
		if p.Place(g) != q.Place(g) || p.ShardOf(g) != q.ShardOf(g) {
			t.Fatalf("partitioner mapping differs between instances")
		}

		// Edge ownership is deterministic and follows the source vertex.
		if p.EdgeOwner(g, h) != p.ShardOf(g) {
			t.Fatalf("EdgeOwner(%d,%d) = %d, want source shard %d",
				g, h, p.EdgeOwner(g, h), p.ShardOf(g))
		}
	})
}
