package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
	"h2tap/internal/htap"
	"h2tap/internal/mvto"
	"h2tap/internal/obs"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
	"h2tap/internal/vfs"
	"h2tap/internal/wal"
)

// domainCore bundles the handles that live and die together with one
// incarnation of a shard: the store, its delta store, pools and WAL. Online
// recovery builds a fresh core from the shard's durable state and swaps it
// in atomically; anything still holding the old core (an in-flight
// transaction, a pinned replica) keeps a consistent — if doomed — view, and
// the commit guard rejects publication against a superseded core.
type domainCore struct {
	store *graph.Store
	ds    *deltastore.Store

	deltaPool *pmem.Pool
	csrPool   *pmem.Pool
	wal       *wal.Log

	closeOnce sync.Once
	closeErr  error
}

// Domain is one shard: an independent MVTO timestamp domain with its own
// main-graph store, delta store, write-ahead log, persistent pools and —
// once the cluster starts its engines — its own cost model and simulated
// GPU replica. It mirrors the single-shard facade's wiring (h2tap.Open /
// StartEngine) at per-shard scope, and is an independent failure domain:
// a latched persist failure quarantines this shard (ShardDown) without
// touching its siblings.
type Domain struct {
	Index int

	core   atomic.Pointer[domainCore]
	engine atomic.Pointer[htap.Engine]

	hmu        sync.Mutex
	down       bool
	cause      error // first persist failure that latched the quarantine
	recovering bool
	redown     error // quarantine requested while a recovery was running
	recoveries atomic.Uint64
}

// poolsSentinel marks a fully initialized pool pair (same protocol as the
// single-shard facade: created and dir-fsynced only after both pools exist,
// so a mid-init crash wipes and recreates rather than half-recovers).
const poolsSentinel = "pools.ok"

// Store returns the shard's current main-graph store.
func (d *Domain) Store() *graph.Store { return d.core.Load().store }

// DS returns the shard's current delta store.
func (d *Domain) DS() *deltastore.Store { return d.core.Load().ds }

// Engine returns the shard's analytics engine (nil before StartEngines).
func (d *Domain) Engine() *htap.Engine { return d.engine.Load() }

// WAL exposes the shard's write-ahead log (nil for volatile domains).
func (d *Domain) WAL() *wal.Log { return d.core.Load().wal }

// Health reports the shard's state. Down dominates; a WAL or delta-store
// latch discovered here quarantines lazily (the failure already happened on
// a persist path, Health just surfaces it before the next commit trips).
// Degraded reflects the engine's GPU-fault ladder and clears on its own.
func (d *Domain) Health() (HealthState, error) {
	if !d.isDown() {
		if core := d.core.Load(); core != nil {
			if core.wal != nil {
				if st := core.wal.Stats(); st.Failed != nil {
					d.quarantine(fmt.Errorf("wal: %w", st.Failed))
				}
			}
			if core.ds != nil {
				if err := core.ds.PersistErr(); err != nil {
					d.quarantine(fmt.Errorf("delta store: %w", err))
				}
			}
		}
	}
	d.hmu.Lock()
	defer d.hmu.Unlock()
	if d.down {
		return ShardDown, d.cause
	}
	if e := d.engine.Load(); e != nil {
		if h, err := e.Health(); h == htap.Degraded {
			return ShardDegraded, err
		}
	}
	return ShardHealthy, nil
}

// Recoveries counts completed RecoverShard cycles on this shard.
func (d *Domain) Recoveries() uint64 { return d.recoveries.Load() }

func (d *Domain) isDown() bool {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	return d.down
}

// quarantine latches the shard Down with the given cause (first cause
// wins). Idempotent; safe from any goroutine.
//
// During an online recovery the shard is already Down, which would make a
// concurrent quarantine a silent no-op — but a quarantine raised in that
// window (a commit decision landing on the superseded core, see logDecision)
// means the core being installed may already be missing durable state, so it
// must not come up Healthy. The request is parked in redown and consumed by
// endRecovery: the recovery completes, the shard stays Down, and the next
// recovery replays with the now-visible decision and converges.
func (d *Domain) quarantine(cause error) {
	d.hmu.Lock()
	if d.recovering && d.redown == nil {
		d.redown = cause
	}
	if !d.down {
		d.down = true
		d.cause = cause
	}
	d.hmu.Unlock()
}

// downErr returns the structured shed error for this shard.
func (d *Domain) downErr() error {
	d.hmu.Lock()
	cause := d.cause
	d.hmu.Unlock()
	return &ShardDownError{Shard: d.Index, Cause: cause}
}

// beginRecovery transitions Down -> recovering, refusing if the shard is
// serving or another recovery is running.
func (d *Domain) beginRecovery() error {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	if !d.down {
		return fmt.Errorf("%w: shard %d", ErrShardNotDown, d.Index)
	}
	if d.recovering {
		return fmt.Errorf("%w: shard %d", ErrRecoveryInProgress, d.Index)
	}
	d.recovering = true
	return nil
}

// endRecovery completes (or abandons) a recovery. On success the shard
// flips back to Healthy — unless a quarantine arrived mid-recovery (see
// quarantine), in which case it stays Down under the new cause and needs
// another recovery pass.
func (d *Domain) endRecovery(ok bool) {
	d.hmu.Lock()
	d.recovering = false
	if ok {
		d.recoveries.Add(1)
		if d.redown != nil {
			d.cause = d.redown
		} else {
			d.down = false
			d.cause = nil
		}
	}
	d.redown = nil
	d.hmu.Unlock()
}

// domainGuard aborts commits once the shard is quarantined or its
// persistent delta store has latched a write failure, and applies the
// engine's backpressure signal — the per-shard equivalent of the facade's
// deltaGuard + backpressureGuard. It is bound to one core incarnation:
// after an online recovery swaps the core, transactions still attached to
// the superseded store are rejected here rather than publishing into a
// detached incarnation.
type domainGuard struct {
	d    *Domain
	core *domainCore
}

func (g domainGuard) LogCommit(mvto.TS, []graph.LoggedOp) error {
	return g.d.guardErr(g.core)
}

func (d *Domain) guardErr(core *domainCore) error {
	if d.isDown() || d.core.Load() != core {
		return d.downErr()
	}
	if err := core.ds.PersistErr(); err != nil {
		err = fmt.Errorf("shard %d: persistent delta store failed: %w", d.Index, err)
		d.quarantine(err)
		return err
	}
	if e := d.engine.Load(); e != nil && e.Backpressure() {
		return htap.ErrBackpressure
	}
	return nil
}

// walQuarantine routes commit records to the core's WAL and latches the
// shard Down when an append fails: the log itself already latched
// (ErrLogFailed), so the whole shard stops accepting writes with a
// structured cause instead of failing one commit at a time.
type walQuarantine struct {
	d    *Domain
	core *domainCore
}

func (w walQuarantine) LogCommit(ts mvto.TS, ops []graph.LoggedOp) error {
	return w.LogCommitTraced(ts, ops, nil)
}

// LogCommitTraced implements graph.TracedOpLogger: the request trace rides
// the append so a traced commit sees its enqueue/write/fsync/ack breakdown
// on the shard WAL exactly as on the single-node log.
func (w walQuarantine) LogCommitTraced(ts mvto.TS, ops []graph.LoggedOp, rq *obs.Req) error {
	err := w.core.wal.LogCommitTraced(ts, ops, rq)
	if err != nil {
		w.d.quarantine(fmt.Errorf("wal append: %w", err))
	}
	return err
}

// logPrepare appends a 2PC prepare record on this core, quarantining on
// failure (same reasoning as walQuarantine). A superseded or quarantined
// core is refused outright: its log may already be closed (or worse, a
// failed best-effort close may have left the handle writable), and a
// "durable" prepare that never reaches the current incarnation's log would
// let the coordinator commit a transaction recovery cannot reconstruct.
func (d *Domain) logPrepare(core *domainCore, gtx uint64, ts mvto.TS, ops []graph.LoggedOp, rq *obs.Req) error {
	if core.wal == nil {
		return nil
	}
	if d.isDown() || d.core.Load() != core {
		return d.downErr()
	}
	if err := core.wal.LogPrepareTraced(gtx, ts, ops, rq); err != nil {
		d.quarantine(fmt.Errorf("wal prepare append: %w", err))
		return err
	}
	return nil
}

// logDecision appends a local 2PC decision record on this core. A failed
// commit-decision append quarantines; the transaction outcome is already
// durable at the coordinator, so the error never reverses it.
//
// A commit decision arriving on a superseded core means the transaction
// outlived an online recovery of this shard: its prepare record and the
// coordinator's decision are durable, but the replacement core may have
// replayed before the decision landed and presumed abort. Quarantining
// forces another recovery, whose replay now finds the decision and applies
// the transaction — the live incarnation converges instead of silently
// missing an acked commit.
func (d *Domain) logDecision(core *domainCore, gtx uint64, commit bool, rq *obs.Req) error {
	if core.wal == nil {
		return nil
	}
	if d.core.Load() != core {
		err := fmt.Errorf("shard %d: decision for cross-shard tx %d outlived an online recovery", d.Index, gtx)
		if commit {
			d.quarantine(err)
		}
		return err
	}
	if err := core.wal.LogDecisionTraced(gtx, commit, rq); err != nil {
		if commit {
			d.quarantine(fmt.Errorf("wal decision append: %w", err))
		}
		return err
	}
	return nil
}

// openVolatile builds an in-memory domain.
func openVolatile(idx int) *Domain {
	d := &Domain{Index: idx}
	core := &domainCore{store: graph.NewStore(), ds: deltastore.NewVolatile()}
	core.store.AddCapturer(core.ds)
	d.core.Store(core)
	return d
}

// openCore builds (or recovers) one durable core under dir, replaying its
// write-ahead log with decide resolving any in-doubt 2PC prepares to the
// coordinator's durable decision. Both the initial open and online shard
// recovery run exactly this path.
func openCore(fsys vfs.FS, idx int, dir string, poolSize int64, syncWAL bool, gc wal.GroupCommit, decide func(uint64) bool) (_ *domainCore, _ wal.ReplayStats, err error) {
	core := &domainCore{store: graph.NewStore()}
	var st wal.ReplayStats
	defer func() {
		if err != nil {
			core.close()
		}
	}()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, st, fmt.Errorf("shard %d: dir: %w", idx, err)
	}
	deltaPath := filepath.Join(dir, "delta.pool")
	csrPath := filepath.Join(dir, "csr.pool")
	walPath := filepath.Join(dir, "graph.wal")
	sentinelPath := filepath.Join(dir, poolsSentinel)

	if _, serr := fsys.Stat(sentinelPath); serr == nil {
		if core.deltaPool, err = pmem.OpenOn(fsys, deltaPath, sim.DefaultPMem()); err != nil {
			return nil, st, err
		}
		if core.csrPool, err = pmem.OpenOn(fsys, csrPath, sim.DefaultPMem()); err != nil {
			return nil, st, err
		}
		if core.ds, err = deltastore.OpenPersistent(core.deltaPool); err != nil {
			return nil, st, err
		}
	} else {
		for _, stale := range []string{deltaPath, csrPath} {
			if _, err := fsys.Stat(stale); err == nil {
				if err := fsys.Remove(stale); err != nil {
					return nil, st, fmt.Errorf("shard %d: remove partial pool: %w", idx, err)
				}
			}
		}
		if core.deltaPool, err = pmem.CreateOn(fsys, deltaPath, poolSize, sim.DefaultPMem()); err != nil {
			return nil, st, err
		}
		if core.csrPool, err = pmem.CreateOn(fsys, csrPath, poolSize, sim.DefaultPMem()); err != nil {
			return nil, st, err
		}
		if core.ds, err = deltastore.NewPersistent(core.deltaPool); err != nil {
			return nil, st, err
		}
		if err = writeSentinel(fsys, sentinelPath, dir); err != nil {
			return nil, st, err
		}
	}

	// A checkpoint that crashed before its rename leaves graph.wal.tmp
	// behind; the live log is intact (rename is the commit point).
	walTmp := walPath + ".tmp"
	if _, serr := fsys.Stat(walTmp); serr == nil {
		if err := fsys.Remove(walTmp); err != nil {
			return nil, st, fmt.Errorf("shard %d: remove stale checkpoint temp: %w", idx, err)
		}
	}
	if _, serr := fsys.Stat(walPath); serr == nil {
		if st, err = wal.ReplayResolved(fsys, walPath, core.store, decide); err != nil {
			return nil, st, fmt.Errorf("shard %d: recovery: %w", idx, err)
		}
		if st.TornTail {
			if err = wal.Trim(fsys, walPath, st.ValidLen); err != nil {
				return nil, st, fmt.Errorf("shard %d: recovery trim: %w", idx, err)
			}
		}
	}
	if core.wal, err = wal.Open(walPath, wal.Options{SyncEveryCommit: syncWAL, GroupCommit: gc, FS: fsys}); err != nil {
		return nil, st, err
	}
	return core, st, nil
}

// openPersistent builds (or recovers) a durable domain under dir. It
// returns the replay stats so the cluster can resume its gtx counter past
// every ID this shard ever saw.
func openPersistent(fsys vfs.FS, idx int, dir string, poolSize int64, syncWAL bool, gc wal.GroupCommit, decide func(uint64) bool) (*Domain, wal.ReplayStats, error) {
	core, st, err := openCore(fsys, idx, dir, poolSize, syncWAL, gc, decide)
	if err != nil {
		return nil, st, err
	}
	d := &Domain{Index: idx}
	d.adoptCore(core)
	return d, st, nil
}

// adoptCore wires the guard/WAL/capture chain onto the core's store and
// publishes it as the domain's current incarnation.
func (d *Domain) adoptCore(core *domainCore) {
	core.store.AddOpLogger(domainGuard{d: d, core: core})
	if core.wal != nil {
		core.store.AddOpLogger(walQuarantine{d: d, core: core})
	}
	core.store.AddCapturer(core.ds)
	d.core.Store(core)
}

// writeSentinel durably creates the pools-initialized marker.
func writeSentinel(fsys vfs.FS, path, dir string) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("shard: pool sentinel: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shard: pool sentinel sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: pool sentinel close: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: pool sentinel dir sync: %w", err)
	}
	return nil
}

// close closes whatever durable handles the core holds. The handle fields
// are deliberately left non-nil: a transaction that pinned this core before
// an online recovery superseded it must see its late prepare/decision
// appends FAIL on the closed log (latching a quarantine that forces the
// replacement core to re-replay and converge) — a nil wal would make
// logPrepare/logDecision mistake the closed durable core for a volatile one
// and silently "succeed", acking commits whose records never reached disk.
func (c *domainCore) close() error {
	c.closeOnce.Do(func() {
		if c.wal != nil {
			if err := c.wal.Close(); err != nil {
				c.closeErr = err
			}
		}
		for _, p := range []*pmem.Pool{c.deltaPool, c.csrPool} {
			if p != nil {
				if err := p.Close(); err != nil && c.closeErr == nil {
					c.closeErr = err
				}
			}
		}
	})
	return c.closeErr
}

// closeHandles closes the current core's durable handles.
func (d *Domain) closeHandles() error {
	if core := d.core.Load(); core != nil {
		return core.close()
	}
	return nil
}
