package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
	"h2tap/internal/htap"
	"h2tap/internal/mvto"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
	"h2tap/internal/vfs"
	"h2tap/internal/wal"
)

// Domain is one shard: an independent MVTO timestamp domain with its own
// main-graph store, delta store, write-ahead log, persistent pools and —
// once the cluster starts its engines — its own cost model and simulated
// GPU replica. It mirrors the single-shard facade's wiring (h2tap.Open /
// StartEngine) at per-shard scope.
type Domain struct {
	Index int
	Store *graph.Store
	DS    *deltastore.Store

	deltaPool *pmem.Pool
	csrPool   *pmem.Pool
	wal       *wal.Log

	engine atomic.Pointer[htap.Engine]
}

// poolsSentinel marks a fully initialized pool pair (same protocol as the
// single-shard facade: created and dir-fsynced only after both pools exist,
// so a mid-init crash wipes and recreates rather than half-recovers).
const poolsSentinel = "pools.ok"

// Engine returns the shard's analytics engine (nil before StartEngines).
func (d *Domain) Engine() *htap.Engine { return d.engine.Load() }

// WAL exposes the shard's write-ahead log (nil for volatile domains).
func (d *Domain) WAL() *wal.Log { return d.wal }

// domainGuard aborts commits once the shard's persistent delta store has
// latched a write failure, and applies the engine's backpressure signal —
// the per-shard equivalent of the facade's deltaGuard + backpressureGuard.
type domainGuard struct{ d *Domain }

func (g domainGuard) LogCommit(mvto.TS, []graph.LoggedOp) error {
	return g.d.guardErr()
}

func (d *Domain) guardErr() error {
	if err := d.DS.PersistErr(); err != nil {
		return fmt.Errorf("shard %d: persistent delta store failed: %w", d.Index, err)
	}
	if e := d.engine.Load(); e != nil && e.Backpressure() {
		return htap.ErrBackpressure
	}
	return nil
}

// openVolatile builds an in-memory domain.
func openVolatile(idx int) *Domain {
	d := &Domain{Index: idx, Store: graph.NewStore(), DS: deltastore.NewVolatile()}
	d.Store.AddCapturer(d.DS)
	return d
}

// openPersistent builds (or recovers) a durable domain under dir, replaying
// its write-ahead log with decide resolving any in-doubt 2PC prepares to the
// coordinator's durable decision. It returns the replay stats so the cluster
// can resume its gtx counter past every ID this shard ever saw.
func openPersistent(fsys vfs.FS, idx int, dir string, poolSize int64, syncWAL bool, gc wal.GroupCommit, decide func(uint64) bool) (_ *Domain, _ wal.ReplayStats, err error) {
	d := &Domain{Index: idx, Store: graph.NewStore()}
	var st wal.ReplayStats
	defer func() {
		if err != nil {
			d.closeHandles()
		}
	}()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, st, fmt.Errorf("shard %d: dir: %w", idx, err)
	}
	deltaPath := filepath.Join(dir, "delta.pool")
	csrPath := filepath.Join(dir, "csr.pool")
	walPath := filepath.Join(dir, "graph.wal")
	sentinelPath := filepath.Join(dir, poolsSentinel)

	if _, serr := fsys.Stat(sentinelPath); serr == nil {
		if d.deltaPool, err = pmem.OpenOn(fsys, deltaPath, sim.DefaultPMem()); err != nil {
			return nil, st, err
		}
		if d.csrPool, err = pmem.OpenOn(fsys, csrPath, sim.DefaultPMem()); err != nil {
			return nil, st, err
		}
		if d.DS, err = deltastore.OpenPersistent(d.deltaPool); err != nil {
			return nil, st, err
		}
	} else {
		for _, stale := range []string{deltaPath, csrPath} {
			if _, err := fsys.Stat(stale); err == nil {
				if err := fsys.Remove(stale); err != nil {
					return nil, st, fmt.Errorf("shard %d: remove partial pool: %w", idx, err)
				}
			}
		}
		if d.deltaPool, err = pmem.CreateOn(fsys, deltaPath, poolSize, sim.DefaultPMem()); err != nil {
			return nil, st, err
		}
		if d.csrPool, err = pmem.CreateOn(fsys, csrPath, poolSize, sim.DefaultPMem()); err != nil {
			return nil, st, err
		}
		if d.DS, err = deltastore.NewPersistent(d.deltaPool); err != nil {
			return nil, st, err
		}
		if err = writeSentinel(fsys, sentinelPath, dir); err != nil {
			return nil, st, err
		}
	}

	// A checkpoint that crashed before its rename leaves graph.wal.tmp
	// behind; the live log is intact (rename is the commit point).
	walTmp := walPath + ".tmp"
	if _, serr := fsys.Stat(walTmp); serr == nil {
		if err := fsys.Remove(walTmp); err != nil {
			return nil, st, fmt.Errorf("shard %d: remove stale checkpoint temp: %w", idx, err)
		}
	}
	if _, serr := fsys.Stat(walPath); serr == nil {
		if st, err = wal.ReplayResolved(fsys, walPath, d.Store, decide); err != nil {
			return nil, st, fmt.Errorf("shard %d: recovery: %w", idx, err)
		}
		if st.TornTail {
			if err = wal.Trim(fsys, walPath, st.ValidLen); err != nil {
				return nil, st, fmt.Errorf("shard %d: recovery trim: %w", idx, err)
			}
		}
	}
	if d.wal, err = wal.Open(walPath, wal.Options{SyncEveryCommit: syncWAL, GroupCommit: gc, FS: fsys}); err != nil {
		return nil, st, err
	}
	d.Store.AddOpLogger(domainGuard{d})
	d.Store.AddOpLogger(d.wal)
	d.Store.AddCapturer(d.DS)
	return d, st, nil
}

// writeSentinel durably creates the pools-initialized marker.
func writeSentinel(fsys vfs.FS, path, dir string) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("shard: pool sentinel: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shard: pool sentinel sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: pool sentinel close: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: pool sentinel dir sync: %w", err)
	}
	return nil
}

// closeHandles closes whatever durable handles the domain holds.
func (d *Domain) closeHandles() error {
	var firstErr error
	if d.wal != nil {
		if err := d.wal.Close(); err != nil {
			firstErr = err
		}
		d.wal = nil
	}
	for _, p := range []*pmem.Pool{d.deltaPool, d.csrPool} {
		if p != nil {
			if err := p.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	d.deltaPool, d.csrPool = nil, nil
	return firstErr
}
